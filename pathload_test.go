package pathload_test

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fluid"

	pathload "repro"
)

// TestConfigDefaults: the zero config must select the paper's values.
func TestConfigDefaults(t *testing.T) {
	cfg := pathload.Config{}
	if got := cfg.GenerationLimit(); got != 120e6 {
		t.Errorf("GenerationLimit = %v, want 120 Mb/s (1500B/100µs)", got)
	}
	l, tt := cfg.StreamParams(48e6)
	if l != 600 || tt != 100*time.Microsecond {
		t.Errorf("StreamParams(48 Mb/s) = %dB, %v; want 600B, 100µs", l, tt)
	}
}

// TestStreamParams pins the §IV parameter selection rules.
func TestStreamParams(t *testing.T) {
	cfg := pathload.Config{}
	for _, tc := range []struct {
		rateMbps float64
		wantL    int
		wantTus  float64 // microseconds
	}{
		{96, 1200, 100},  // L = R·T/8 within bounds
		{120, 1500, 100}, // at the generation limit
		{4, 96, 192},     // L pinned at L_min, T stretched
		{0.5, 96, 1536},  // very low rate: long period
		{150, 1500, 100}, // beyond the limit: capped at MTU/T_min
	} {
		l, tt := cfg.StreamParams(tc.rateMbps * 1e6)
		if l != tc.wantL {
			t.Errorf("rate %v Mb/s: L = %d, want %d", tc.rateMbps, l, tc.wantL)
		}
		if got := float64(tt) / float64(time.Microsecond); math.Abs(got-tc.wantTus) > 0.5 {
			t.Errorf("rate %v Mb/s: T = %v, want %vµs", tc.rateMbps, tt, tc.wantTus)
		}
	}
}

// TestQuickStreamParamsInvariants: for any positive rate, L stays in
// [L_min, MTU], T ≥ T_min, and the effective rate never exceeds the
// request by more than byte rounding.
func TestQuickStreamParamsInvariants(t *testing.T) {
	cfg := pathload.Config{}
	f := func(raw float64) bool {
		rate := math.Abs(math.Mod(raw, 200e6))
		if rate < 1e4 {
			rate = 1e4
		}
		l, tt := cfg.StreamParams(rate)
		if l < pathload.DefaultMinPacket || l > pathload.DefaultMTU {
			return false
		}
		if tt < pathload.DefaultMinPeriod {
			return false
		}
		eff := float64(l) * 8 / tt.Seconds()
		limit := cfg.GenerationLimit()
		return eff <= math.Min(rate, limit)*1.02+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidation covers rejected configurations.
func TestConfigValidation(t *testing.T) {
	bad := []pathload.Config{
		{PacketsPerStream: 2},
		{StreamsPerFleet: -1},
		{FleetFraction: 1.5},
		{MinPacket: 2000, MTU: 1500},
		{MinPeriod: -time.Microsecond},
		{MinRate: 10e6, MaxRate: 5e6},
	}
	for i, cfg := range bad {
		if _, err := pathload.Run(&fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}}, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// fluidProber is a deterministic in-memory prober backed by the
// analytical fluid model: streams above the path's avail-bw get exact
// linear OWD trends, streams below get flat OWDs. It lets the full Run
// loop be tested without a simulator.
type fluidProber struct {
	path    fluid.Path
	streams int
	idle    time.Duration
	// failAfter, if positive, makes SendStream fail once that many
	// streams have been sent.
	failAfter int
	// lossRate, if set, drops that fraction of every stream's packets.
	lossRate float64
	// flagAll marks every stream as sender-flagged.
	flagAll bool
}

func (f *fluidProber) RTT() time.Duration { return 10 * time.Millisecond }

func (f *fluidProber) Idle(d time.Duration) error {
	f.idle += d
	return nil
}

func (f *fluidProber) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	f.streams++
	if f.failAfter > 0 && f.streams > f.failAfter {
		return pathload.StreamResult{}, errors.New("prober exhausted")
	}
	owds := fluid.StreamOWDs(spec.EffectiveRate(), spec.L, spec.K, f.path)
	res := pathload.StreamResult{Sent: spec.K, Flagged: f.flagAll}
	drop := int(f.lossRate * float64(spec.K))
	for i, owd := range owds {
		if drop > 0 && i%(spec.K/max(drop, 1)+1) == 0 {
			continue
		}
		res.OWDs = append(res.OWDs, pathload.OWDSample{Seq: i, OWD: time.Duration(owd * 1e9)})
	}
	return res, nil
}

// TestRunConvergesOnFluidOracle: against the noise-free fluid model the
// tool must bracket the avail-bw within the resolution, with no grey
// region.
func TestRunConvergesOnFluidOracle(t *testing.T) {
	for _, a := range []float64{2e6, 4e6, 37e6, 74e6} {
		p := &fluidProber{path: fluid.Path{{C: 155e6, A: a}}}
		res, err := pathload.Run(p, pathload.Config{})
		if err != nil {
			t.Fatalf("A=%v: %v", a, err)
		}
		if !res.Contains(a) {
			t.Errorf("A=%.0f: range [%.0f, %.0f] misses it", a, res.Lo, res.Hi)
		}
		if res.Width() > pathload.DefaultResolution+1 {
			t.Errorf("A=%.0f: width %.0f exceeds ω", a, res.Width())
		}
		if res.GreySet {
			t.Errorf("A=%.0f: spurious grey region under a noise-free oracle", a)
		}
	}
}

// TestQuickRunConvergence is the property form over random single-link
// paths.
func TestQuickRunConvergence(t *testing.T) {
	f := func(seed int64) bool {
		c := 5e6 + float64(uint64(seed)%150_000_000)
		a := float64(uint64(seed/7)%uint64(c*0.9)) + 0.05*c
		p := &fluidProber{path: fluid.Path{{C: c, A: a}}}
		res, err := pathload.Run(p, pathload.Config{})
		if err != nil {
			return false
		}
		// Packet sizes are whole bytes, so effective stream rates are
		// quantized to 8/T_min = 80 kb/s steps; the bracket can sit up
		// to one step beyond A when A falls between representable
		// rates.
		const grid = 80e3
		if res.HitMax {
			// a exceeded the probing or ADR ceiling; Hi is a lower
			// bound and bracketing is not required above it.
			return a >= res.Lo-grid
		}
		return res.Lo-grid <= a && a <= res.Hi+grid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunMultiHopFluid exercises Proposition 2: on a multi-hop path
// the tool must still find the minimum avail-bw.
func TestRunMultiHopFluid(t *testing.T) {
	path := fluid.Path{
		{C: 622e6, A: 500e6},
		{C: 100e6, A: 95e6},
		{C: 155e6, A: 74e6}, // tight
		{C: 622e6, A: 400e6},
	}
	p := &fluidProber{path: path}
	res, err := pathload.Run(p, pathload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(74e6) {
		t.Fatalf("range [%.0f, %.0f] misses the 74 Mb/s tight link", res.Lo, res.Hi)
	}
}

// TestRunADRBound: the init probe must tighten MaxRate to near the
// path's asymptotic dispersion rate.
func TestRunADRBound(t *testing.T) {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}}
	res, err := pathload.Run(p, pathload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ADR <= 0 {
		t.Fatal("no ADR recorded")
	}
	// Fluid ADR of a saturating train: C·R/(R + C − A) with R = 120M.
	want := 10e6 * 120e6 / (120e6 + 10e6 - 4e6)
	if rel := math.Abs(res.ADR-want) / want; rel > 0.05 {
		t.Errorf("ADR %.2f Mb/s, fluid predicts %.2f", res.ADR/1e6, want/1e6)
	}
	if res.Hi > want*pathload.ADRMargin+1 {
		t.Errorf("Hi %.0f exceeds the ADR-derived ceiling", res.Hi)
	}
}

// TestRunDisableInitProbe: without the init probe the first fleet
// starts from the configured bounds.
func TestRunDisableInitProbe(t *testing.T) {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}}
	res, err := pathload.Run(p, pathload.Config{DisableInitProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ADR != 0 {
		t.Fatalf("ADR %v recorded with the init probe disabled", res.ADR)
	}
	if !res.Contains(4e6) {
		t.Fatalf("range [%.0f, %.0f] misses 4 Mb/s", res.Lo, res.Hi)
	}
}

// TestRunAbortsLossyFleets: heavy loss must produce "rate too high"
// behavior, not a bogus estimate from partial streams.
func TestRunAbortsLossyFleets(t *testing.T) {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}, lossRate: 0.5}
	res, err := pathload.Run(p, pathload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	aborted := 0
	for _, f := range res.Fleets {
		if f.Verdict == pathload.FleetAborted {
			aborted++
		}
	}
	if aborted != len(res.Fleets) {
		t.Fatalf("%d of %d fleets aborted under 50%% loss, want all", aborted, len(res.Fleets))
	}
	if res.Hi > 1e6 {
		t.Errorf("Hi %.2f Mb/s after universal aborts, want driven toward MinRate", res.Hi/1e6)
	}
}

// TestRunDiscardsFlaggedStreams: sender-flagged streams must not vote,
// so an all-flagged measurement aborts every fleet.
func TestRunDiscardsFlaggedStreams(t *testing.T) {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}, flagAll: true}
	res, err := pathload.Run(p, pathload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Fleets {
		if f.Verdict != pathload.FleetAborted {
			t.Fatalf("fleet verdict %v with every stream flagged, want aborted", f.Verdict)
		}
		for _, s := range f.Streams {
			if s.Kind != pathload.StreamDiscarded {
				t.Fatalf("stream kind %v, want discarded", s.Kind)
			}
		}
	}
}

// TestRunPropagatesProberErrors: transport failures surface as errors
// with context, not silent misestimates.
func TestRunPropagatesProberErrors(t *testing.T) {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}, failAfter: 5}
	_, err := pathload.Run(p, pathload.Config{})
	if err == nil {
		t.Fatal("prober failure swallowed")
	}
}

// TestRunElapsedAccounting: Elapsed must cover stream durations plus
// inter-stream idles.
func TestRunElapsedAccounting(t *testing.T) {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}}
	res, err := pathload.Run(p, pathload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < p.idle {
		t.Fatalf("Elapsed %v below accumulated idle %v", res.Elapsed, p.idle)
	}
}

// TestRunFleetTraceShape sanity-checks the search log.
func TestRunFleetTraceShape(t *testing.T) {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}}
	cfg := pathload.Config{StreamsPerFleet: 6}
	res, err := pathload.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fleets) == 0 {
		t.Fatal("no fleets logged")
	}
	for i, f := range res.Fleets {
		if len(f.Streams) != 6 {
			t.Errorf("fleet %d logged %d streams, want 6", i, len(f.Streams))
		}
		if f.Rate <= 0 || f.L <= 0 || f.T <= 0 || f.Delta <= 0 {
			t.Errorf("fleet %d has zero-valued parameters: %+v", i, f)
		}
		if f.Delta < 9*time.Duration(pathload.DefaultPacketsPerStream)*f.T {
			t.Errorf("fleet %d Δ=%v below 9τ", i, f.Delta)
		}
	}
}

// TestResultFormatting covers String and the flag text.
func TestResultFormatting(t *testing.T) {
	r := pathload.Result{Lo: 2e6, Hi: 6e6, GreySet: true, GreyLo: 3e6, GreyHi: 5e6}
	s := r.String()
	for _, want := range []string{"2.00", "6.00", "grey"} {
		if !contains(s, want) {
			t.Errorf("Result.String() = %q missing %q", s, want)
		}
	}
	r.HitMax = true
	if !contains(r.String(), "probe limit") {
		t.Error("HitMax flag not surfaced in String()")
	}
	for _, k := range []pathload.StreamKind{pathload.StreamIncreasing, pathload.StreamNonIncreasing, pathload.StreamDiscarded, pathload.StreamKind(9)} {
		if k.String() == "" {
			t.Errorf("StreamKind %d formats empty", k)
		}
	}
	for _, v := range []pathload.Verdict{pathload.FleetBelow, pathload.FleetAbove, pathload.FleetGrey, pathload.FleetAborted, pathload.Verdict(9)} {
		if v.String() == "" {
			t.Errorf("Verdict %d formats empty", v)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestStreamSpecHelpers covers Duration and EffectiveRate.
func TestStreamSpecHelpers(t *testing.T) {
	s := pathload.StreamSpec{K: 100, L: 1200, T: 100 * time.Microsecond}
	if got := s.Duration(); got != 10*time.Millisecond {
		t.Errorf("Duration = %v, want 10ms", got)
	}
	if got := s.EffectiveRate(); math.Abs(got-96e6) > 1 {
		t.Errorf("EffectiveRate = %v, want 96 Mb/s", got)
	}
	if (pathload.StreamSpec{}).EffectiveRate() != 0 {
		t.Error("zero spec effective rate not 0")
	}
}

// TestStreamResultLossRate covers the loss arithmetic.
func TestStreamResultLossRate(t *testing.T) {
	r := pathload.StreamResult{Sent: 100}
	for i := 0; i < 90; i++ {
		r.OWDs = append(r.OWDs, pathload.OWDSample{Seq: i})
	}
	if got := r.LossRate(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("LossRate = %v, want 0.1", got)
	}
	if (pathload.StreamResult{}).LossRate() != 0 {
		t.Error("zero result loss rate not 0")
	}
}

// TestRunRespectsMaxFleets bounds the search.
func TestRunRespectsMaxFleets(t *testing.T) {
	// A path whose avail-bw sits exactly on fleet-rate boundaries can
	// ping-pong; MaxFleets must still bound the loop.
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}}
	res, err := pathload.Run(p, pathload.Config{MaxFleets: 3, Resolution: 1}) // absurd resolution
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fleets) > 3 {
		t.Fatalf("%d fleets with MaxFleets=3", len(res.Fleets))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Example-style doc test for the README quickstart snippet.
func ExampleRun() {
	p := &fluidProber{path: fluid.Path{{C: 10e6, A: 4e6}}}
	res, _ := pathload.Run(p, pathload.Config{})
	fmt.Println(res.Contains(4e6))
	// Output: true
}
