// Package pathload measures the end-to-end available bandwidth of a
// network path using SLoPS — self-loading periodic streams (Jain &
// Dovrolis, "End-to-End Available Bandwidth: Measurement Methodology,
// Dynamics, and Relation With TCP Throughput", SIGCOMM 2002).
//
// The key idea: a periodic packet stream sent at rate R exhibits an
// increasing one-way-delay trend at the receiver exactly when R exceeds
// the path's available bandwidth A. Pathload performs an iterative
// binary search over stream rates, sending fleets of N streams per
// rate, classifying each stream's delay trend with two robust
// statistics (PCT and PDT), tracking a "grey region" where the
// avail-bw itself fluctuates around the probing rate, and converging to
// a range [Lo, Hi] that brackets the avail-bw process.
//
// The package is transport-agnostic: anything that can emit a periodic
// UDP-like stream and report per-packet one-way delays implements
// Prober. Two probers ship with this repository — internal/simprobe
// (deterministic discrete-event simulator, used by the paper-figure
// reproductions) and internal/udprobe (real networks; UDP data channel,
// TCP control channel).
package pathload

import (
	"fmt"
	"time"
)

// Defaults for Config fields, from the paper (§IV).
const (
	DefaultPacketsPerStream = 100                    // K
	DefaultStreamsPerFleet  = 12                     // N
	DefaultFleetFraction    = 0.7                    // f
	DefaultPCTIncreasing    = 0.60                   // PCT above ⇒ increasing
	DefaultPCTNonIncreasing = 0.45                   // PCT below ⇒ non-increasing
	DefaultPDTIncreasing    = 0.40                   // PDT above ⇒ increasing
	DefaultPDTNonIncreasing = 0.15                   // PDT below ⇒ non-increasing
	DefaultResolution       = 1e6                    // ω, bits/s
	DefaultGreyResolution   = 1.5e6                  // χ, bits/s
	DefaultMinPeriod        = 100 * time.Microsecond // T_min
	DefaultMinPacket        = 96                     // L_min, bytes (layer-2 header amortization)
	DefaultMTU              = 1500                   // bytes
	DefaultStreamAbortLoss  = 0.10                   // abort fleet if one stream loses > 10%
	DefaultModerateLoss     = 0.03                   // a stream with > 3% loss is "moderately lossy"
	DefaultInterStreamRTTs  = 9                      // Δ = max(RTT, 9·τ) keeps mean rate ≤ R/10
	DefaultMaxFleets        = 100                    // safety cap on the iterative search
)

// Config holds every tunable of the measurement. The zero value is
// usable: all zero fields assume the paper's defaults, and MaxRate
// defaults to the highest rate the stream parameters can generate
// (MTU·8/MinPeriod).
type Config struct {
	// PacketsPerStream is K, the number of packets in one periodic
	// stream. The stream duration τ = K·T sets the averaging timescale
	// of a single avail-bw sample (§VI-C).
	PacketsPerStream int
	// StreamsPerFleet is N, the number of same-rate streams whose
	// verdicts are combined into one fleet decision (§IV). The fleet
	// duration sets the measurement timescale of the reported
	// variation range (§VI-D).
	StreamsPerFleet int
	// FleetFraction is f: at least f·N streams must agree before a
	// fleet is declared increasing or non-increasing; anything in
	// between is the grey region.
	FleetFraction float64

	// The trend-detection thresholds. Each metric sees the stream as
	// increasing above its Increasing threshold, non-increasing below
	// its NonIncreasing threshold, and ambiguous in between; streams
	// whose metrics conflict (or are both ambiguous) are discarded.
	// Setting NonIncreasing equal to Increasing collapses the ambiguous
	// band into the single-threshold rule the journal paper describes.
	// DisablePCT/DisablePDT restrict detection to a single statistic
	// (the paper's Fig. 9 sensitivity study).
	PCTIncreasing, PCTNonIncreasing float64
	PDTIncreasing, PDTNonIncreasing float64
	DisablePCT, DisablePDT          bool
	// MedianGroups overrides Γ, the number of median groups in the
	// trend preprocessing; 0 selects the paper's Γ = √K.
	MedianGroups int

	// Resolution (ω) and GreyResolution (χ) are the termination
	// criteria in bits/s.
	Resolution, GreyResolution float64
	// MinRate and MaxRate bound the binary search in bits/s. MaxRate 0
	// selects the prober's generation limit MTU·8/MinPeriod.
	MinRate, MaxRate float64
	// InitialRate optionally sets the first fleet's rate.
	InitialRate float64

	// MinPeriod is T_min, the smallest packet interspacing the sender
	// can sustain; together with MTU it caps the probing rate.
	MinPeriod time.Duration
	// MinPacket is L_min; probe packets never shrink below it so that
	// layer-2 headers do not distort the stream rate.
	MinPacket int
	// MTU caps the probe packet wire size to avoid fragmentation.
	MTU int

	// StreamAbortLoss aborts the fleet when a single stream loses more
	// than this fraction of its packets; ModerateLoss counts a stream
	// as moderately lossy, and the fleet aborts when more than half of
	// its streams are. An aborted fleet means "rate too high".
	StreamAbortLoss, ModerateLoss float64

	// InterStreamRTTs sets the idle gap between a fleet's streams:
	// Δ = max(RTT, InterStreamRTTs·τ). The default 9 keeps the mean
	// probing rate during a fleet below R/10 (§VIII non-intrusiveness).
	InterStreamRTTs int

	// MaxFleets caps the number of fleets before the search gives up
	// and reports its current bracket.
	MaxFleets int

	// DisableInitProbe skips the initialization stream. By default a
	// single short high-rate stream measures the path's asymptotic
	// dispersion rate (ADR); since A ≤ ADR ≤ C, the search's MaxRate is
	// tightened to slightly above the ADR (the paper's footnote 3 /
	// tool-paper initialization), which shortens convergence and keeps
	// early fleets from flooding slow paths.
	DisableInitProbe bool
	// InitProbePackets is the length of the initialization stream
	// (default 20 packets).
	InitProbePackets int
}

// DefaultInitProbePackets is the initialization stream length.
const DefaultInitProbePackets = 20

// ADRMargin is the safety factor applied to the measured asymptotic
// dispersion rate when tightening MaxRate: ADR ≥ A in the fluid model,
// but a finite noisy train can underestimate it.
const ADRMargin = 1.25

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.PacketsPerStream == 0 {
		c.PacketsPerStream = DefaultPacketsPerStream
	}
	if c.StreamsPerFleet == 0 {
		c.StreamsPerFleet = DefaultStreamsPerFleet
	}
	if c.FleetFraction == 0 {
		c.FleetFraction = DefaultFleetFraction
	}
	if c.PCTIncreasing == 0 {
		c.PCTIncreasing = DefaultPCTIncreasing
	}
	if c.PCTNonIncreasing == 0 {
		c.PCTNonIncreasing = DefaultPCTNonIncreasing
	}
	if c.PDTIncreasing == 0 {
		c.PDTIncreasing = DefaultPDTIncreasing
	}
	if c.PDTNonIncreasing == 0 {
		c.PDTNonIncreasing = DefaultPDTNonIncreasing
	}
	if c.Resolution == 0 {
		c.Resolution = DefaultResolution
	}
	if c.GreyResolution == 0 {
		c.GreyResolution = DefaultGreyResolution
	}
	if c.MinPeriod == 0 {
		c.MinPeriod = DefaultMinPeriod
	}
	if c.MinPacket == 0 {
		c.MinPacket = DefaultMinPacket
	}
	if c.MTU == 0 {
		c.MTU = DefaultMTU
	}
	if c.StreamAbortLoss == 0 {
		c.StreamAbortLoss = DefaultStreamAbortLoss
	}
	if c.ModerateLoss == 0 {
		c.ModerateLoss = DefaultModerateLoss
	}
	if c.InterStreamRTTs == 0 {
		c.InterStreamRTTs = DefaultInterStreamRTTs
	}
	if c.MaxFleets == 0 {
		c.MaxFleets = DefaultMaxFleets
	}
	if c.InitProbePackets == 0 {
		c.InitProbePackets = DefaultInitProbePackets
	}
	if max := c.GenerationLimit(); c.MaxRate == 0 || c.MaxRate > max {
		c.MaxRate = max
	}
	return c
}

func (c Config) validate() error {
	if c.PacketsPerStream < 4 {
		return fmt.Errorf("pathload: PacketsPerStream %d too small to detect a trend", c.PacketsPerStream)
	}
	if c.StreamsPerFleet < 1 {
		return fmt.Errorf("pathload: StreamsPerFleet must be positive, got %d", c.StreamsPerFleet)
	}
	if c.FleetFraction < 0 || c.FleetFraction > 1 {
		return fmt.Errorf("pathload: FleetFraction %v outside [0,1]", c.FleetFraction)
	}
	if c.MinPacket > c.MTU {
		return fmt.Errorf("pathload: MinPacket %d exceeds MTU %d", c.MinPacket, c.MTU)
	}
	if c.MinPeriod <= 0 {
		return fmt.Errorf("pathload: MinPeriod must be positive, got %v", c.MinPeriod)
	}
	if c.MinRate < 0 || (c.MaxRate != 0 && c.MinRate >= c.MaxRate) {
		return fmt.Errorf("pathload: rate bounds [%v, %v] invalid", c.MinRate, c.MaxRate)
	}
	return nil
}

// GenerationLimit returns the maximum stream rate the configured packet
// size and period allow: MTU·8/MinPeriod. It is the largest avail-bw
// the tool can measure (§IV).
func (c Config) GenerationLimit() float64 {
	mtu := c.MTU
	if mtu == 0 {
		mtu = DefaultMTU
	}
	period := c.MinPeriod
	if period == 0 {
		period = DefaultMinPeriod
	}
	return float64(mtu) * 8 / period.Seconds()
}

// StreamParams computes the packet size L (bytes) and interspacing T
// for a stream of the given rate (§IV "Stream Parameters"): T starts at
// MinPeriod and L = R·T/8; if L would fall below MinPacket, L is pinned
// there and T stretched; if L would exceed the MTU, L is pinned at the
// MTU and T stretched, capping the achievable rate.
func (c Config) StreamParams(rate float64) (l int, t time.Duration) {
	cfg := c.withDefaults()
	if rate <= 0 {
		return cfg.MinPacket, cfg.MinPeriod
	}
	t = cfg.MinPeriod
	l = int(rate * t.Seconds() / 8)
	if l < cfg.MinPacket {
		l = cfg.MinPacket
	}
	if l > cfg.MTU {
		l = cfg.MTU
	}
	t = time.Duration(float64(l) * 8 / rate * float64(time.Second))
	if t < cfg.MinPeriod {
		t = cfg.MinPeriod
	}
	return l, t
}
