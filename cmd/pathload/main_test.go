package main

import (
	"strings"
	"testing"
)

// TestValidateFlagMatrix pins the -monitor mode matrix: every rejected
// combination errors with the remedy in the message, every documented
// composition is accepted.
func TestValidateFlagMatrix(t *testing.T) {
	type combo struct {
		scen, mesh, senders, sched string
		budget                     float64
		stagger                    bool
		archive                    string
	}
	reject := map[string]struct {
		c    combo
		want string
	}{
		"scenario+mesh":       {combo{scen: "lossy", mesh: "star"}, "excludes -mesh"},
		"scenario+senders":    {combo{scen: "lossy", senders: "a:1"}, "excludes -senders"},
		"scenario+stagger":    {combo{scen: "lossy", stagger: true}, "-stagger"},
		"scenario+adaptive":   {combo{scen: "lossy", sched: "adaptive"}, "-schedule"},
		"scenario+budget":     {combo{scen: "lossy", budget: 1e6}, "-budget"},
		"scenario+archive":    {combo{scen: "lossy", archive: "d"}, "excludes -archive"},
		"senders+mesh":        {combo{senders: "a:1", mesh: "star"}, "excludes -mesh"},
		"senders+stagger":     {combo{senders: "a:1", stagger: true}, "needs -mesh"},
		"stagger alone":       {combo{stagger: true}, "needs -mesh"},
		"budgeted, no budget": {combo{sched: "budgeted"}, "needs -budget"},
	}
	for name, tc := range reject {
		err := validateFlagMatrix(tc.c.scen, tc.c.mesh, tc.c.senders, tc.c.sched, tc.c.budget, tc.c.stagger, tc.c.archive)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
	accept := map[string]combo{
		"bare fleet":        {},
		"scenario":          {scen: "lossy", sched: "fixed"},
		"mesh":              {mesh: "star"},
		"mesh+stagger":      {mesh: "star", stagger: true},
		"mesh+budgeted":     {mesh: "star", sched: "budgeted", budget: 2e6},
		"senders+adaptive":  {senders: "a:1,b:2", sched: "adaptive"},
		"fleet budget wrap": {budget: 2e6},
		"archive":           {archive: "data/arch:seal=1m"},
		"mesh+archive":      {mesh: "star", archive: "data/arch"},
		"senders+archive":   {senders: "a:1", archive: "data/arch"},
		"archive+budget":    {archive: "data/arch", budget: 2e6},
	}
	for name, c := range accept {
		if err := validateFlagMatrix(c.scen, c.mesh, c.senders, c.sched, c.budget, c.stagger, c.archive); err != nil {
			t.Errorf("%s: unexpected error %v", name, err)
		}
	}
}
