// Command pathload measures the available bandwidth of a simulated
// network path. It is the quickest way to see SLoPS converge: build a
// path from flags, attach cross traffic, and run the full iterative
// measurement in virtual time.
//
// Example:
//
//	pathload -hops 5 -cap 10 -util 0.6 -model pareto -v
//
// measures a five-hop path whose 10 Mb/s tight link runs at 60%
// utilization (true avail-bw 4 Mb/s).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/crosstraffic"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

func main() {
	var (
		hops    = flag.Int("hops", 5, "number of links in the path")
		capMbps = flag.Float64("cap", 10, "tight link capacity, Mb/s")
		util    = flag.Float64("util", 0.6, "tight link utilization in [0,1)")
		beta    = flag.Float64("beta", 4, "path tightness factor β = A_nt/A (≥ 1)")
		model   = flag.String("model", "pareto", "cross traffic model: poisson, pareto, cbr")
		sources = flag.Int("sources", 10, "cross-traffic sources per hop")
		seed    = flag.Int64("seed", 1, "random seed")
		k       = flag.Int("k", pathload.DefaultPacketsPerStream, "packets per stream (K)")
		n       = flag.Int("n", pathload.DefaultStreamsPerFleet, "streams per fleet (N)")
		omega   = flag.Float64("omega", pathload.DefaultResolution/1e6, "estimation resolution ω, Mb/s")
		chi     = flag.Float64("chi", pathload.DefaultGreyResolution/1e6, "grey resolution χ, Mb/s")
		verbose = flag.Bool("v", false, "log every fleet")
	)
	flag.Parse()

	var m crosstraffic.Model
	switch *model {
	case "poisson":
		m = crosstraffic.ModelPoisson
	case "pareto":
		m = crosstraffic.ModelPareto
	case "cbr":
		m = crosstraffic.ModelCBR
	default:
		fmt.Fprintf(os.Stderr, "pathload: unknown model %q\n", *model)
		os.Exit(2)
	}

	topo := experiments.Topology{
		Hops:          *hops,
		TightCap:      *capMbps * 1e6,
		TightUtil:     *util,
		Beta:          *beta,
		Model:         m,
		SourcesPerHop: *sources,
		Seed:          *seed,
	}
	net := topo.Build()
	net.Warmup(3 * netsim.Second)
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)

	start := time.Now()
	res, err := pathload.Run(prober, pathload.Config{
		PacketsPerStream: *k,
		StreamsPerFleet:  *n,
		Resolution:       *omega * 1e6,
		GreyResolution:   *chi * 1e6,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: %v\n", err)
		os.Exit(1)
	}

	if *verbose {
		for i, f := range res.Fleets {
			inc, non, dis := 0, 0, 0
			for _, s := range f.Streams {
				switch s.Kind {
				case pathload.StreamIncreasing:
					inc++
				case pathload.StreamNonIncreasing:
					non++
				default:
					dis++
				}
			}
			fmt.Printf("fleet %2d: R=%7.2f Mb/s L=%4dB T=%8v → %-7v (I=%d N=%d discard=%d)\n",
				i, f.Rate/1e6, f.L, f.T, f.Verdict, inc, non, dis)
		}
	}
	fmt.Printf("true avail-bw: %.2f Mb/s\n", topo.AvailBw()/1e6)
	fmt.Printf("measured:      %v\n", res)
	fmt.Printf("ADR init:      %.2f Mb/s\n", res.ADR/1e6)
	fmt.Printf("probe time:    %v (virtual), %v (wall)\n", res.Elapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Printf("sim events:    %d\n", net.Sim.Events())
}
