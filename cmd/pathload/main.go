// Command pathload measures the available bandwidth of a simulated
// network path. It is the quickest way to see SLoPS converge: build a
// path from flags, attach cross traffic, and run the full iterative
// measurement in virtual time.
//
// Example:
//
//	pathload -hops 5 -cap 10 -util 0.6 -model pareto -v
//
// measures a five-hop path whose 10 Mb/s tight link runs at 60%
// utilization (true avail-bw 4 Mb/s).
//
// Monitor mode measures a whole fleet of simulated paths concurrently
// and periodically, streaming one timestamped avail-bw range per path
// per round:
//
//	pathload -monitor -paths 64 -rounds 3 -interval 100ms -workers 8
//
// With -export the fleet's time series are retained in a store and
// served over HTTP — Prometheus exposition on /metrics, JSON series on
// /series, paper-style MRTG buckets on /mrtg — and the process keeps
// serving after the fleet finishes, until interrupted:
//
//	pathload -monitor -paths 16 -rounds 5 -export :9090 &
//	curl -s localhost:9090/metrics | grep availbw_window
//
// With -mesh the fleet's paths share a backbone instead of being
// independent shards: all paths run over one simulator on the chosen
// shape (star, chain, tree, disjoint), so their probe streams contend
// on the common links while the monitor streams per-path samples as
// usual:
//
//	pathload -monitor -mesh star -paths 8 -rounds 3 -export :9090
//
// The fleet's re-measurement schedule is pluggable: -schedule adaptive
// scales each path's gap by its recent windowed ρ (quiet paths probe
// rarely, volatile paths often), -budget caps the fleet's aggregate
// probe bit-rate with a token bucket (§VIII at scale), and -stagger
// (with -mesh) keeps paths that share a tight link from measuring at
// the same time:
//
//	pathload -monitor -paths 16 -rounds 5 -schedule adaptive -budget 2
//	pathload -monitor -mesh star -paths 8 -rounds 3 -stagger
//
// With -senders the monitored fleet runs on real networks instead of
// simulators: each comma-separated pathload-snd control address becomes
// one monitored path, dialed (and, after failures, re-dialed with
// backoff) by the monitor itself, so the fleet survives sender restarts
// and transient outages. -schedule, -budget, and -export compose as
// usual:
//
//	pathload -monitor -senders hostA:8365,hostB:8365 -rounds 5 -export :9090
//
// With -scenario the monitor measures one composed adversarial
// scenario from the internal/scenario library instead of a fleet:
// long-range-dependent cross traffic, a mid-run flash crowd, a
// migrating tight link, twin near-tight bottlenecks, random loss, or
// reordering. Rounds split evenly across the scenario's epochs; each
// round is graded against the analytic truth of the epoch it ran in:
//
//	pathload -monitor -scenario lossy:load=0.7,loss=0.05 -rounds 8
//
// With -agent the process joins a pathload-coord fleet instead of
// choosing its own paths: it registers under -agent-name, measures
// whatever paths the coordinator leases it (staggering co-leased paths
// that share a tight link, resuming series across lease handoffs), and
// pushes its retained series and digests back for federation:
//
//	pathload -agent localhost:8400 -agent-name a1
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/crosstraffic"
	"repro/internal/experiments"
	"repro/internal/mesh"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/schedule"
	"repro/internal/simprobe"
	"repro/internal/tsstore"
	"repro/internal/udprobe"

	pathload "repro"
)

func main() {
	var (
		hops    = flag.Int("hops", 5, "number of links in the path")
		capMbps = flag.Float64("cap", 10, "tight link capacity, Mb/s")
		util    = flag.Float64("util", 0.6, "tight link utilization in [0,1)")
		beta    = flag.Float64("beta", 4, "path tightness factor β = A_nt/A (≥ 1)")
		model   = flag.String("model", "pareto", "cross traffic model: poisson, pareto, cbr")
		sources = flag.Int("sources", 10, "cross-traffic sources per hop")
		seed    = flag.Int64("seed", 1, "random seed")
		k       = flag.Int("k", pathload.DefaultPacketsPerStream, "packets per stream (K)")
		n       = flag.Int("n", pathload.DefaultStreamsPerFleet, "streams per fleet (N)")
		omega   = flag.Float64("omega", pathload.DefaultResolution/1e6, "estimation resolution ω, Mb/s")
		chi     = flag.Float64("chi", pathload.DefaultGreyResolution/1e6, "grey resolution χ, Mb/s")
		verbose = flag.Bool("v", false, "log every fleet")

		monitor   = flag.Bool("monitor", false, "monitor a fleet of single-hop paths instead of measuring one (honors -cap -util -model -sources -seed -k -n -omega -chi)")
		paths     = flag.Int("paths", 16, "monitor: number of simulated paths")
		rounds    = flag.Int("rounds", 3, "monitor: measurements per path (≥ 1)")
		interval  = flag.Duration("interval", 100*time.Millisecond, "monitor: re-measurement gap per path")
		jitter    = flag.Float64("jitter", 0.3, "monitor: gap randomization fraction in [0,1]")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "monitor: max concurrent measurements")
		export    = flag.String("export", "", "monitor: HTTP listen address for the time-series store (e.g. :9090); keeps serving after the fleet finishes, until interrupted")
		meshName  = flag.String("mesh", "", "monitor: run the fleet over a shared backbone instead of independent paths: star, chain, tree, disjoint (fixed shape parameters; ignores -cap -util -model -sources)")
		schedName = flag.String("schedule", "fixed", "monitor: re-measurement schedule: fixed (jittered -interval), adaptive (per-path gaps scaled by recent windowed ρ), budgeted (fixed under the -budget cap)")
		budget    = flag.Float64("budget", 0, "monitor: aggregate probe bit-rate cap in Mb/s across the fleet (token bucket); wraps the chosen -schedule, required by -schedule budgeted")
		stagger   = flag.Bool("stagger", false, "monitor: with -mesh, never co-measure paths that share a tight link (contention-aware admission)")
		senders   = flag.String("senders", "", "monitor: comma-separated pathload-snd control addresses (host:port,…); each becomes one real-network path with reconnect-on-error (ignores -paths -cap -util -model -sources; excludes -mesh)")
		scen      = flag.String("scenario", "", "monitor: measure one composed scenario (name[:key=value,…], e.g. lossy:load=0.7) instead of a fleet; rounds split across its epochs (honors -rounds -k -n -omega -chi -seed; excludes -mesh -senders)")
		backoff   = flag.Duration("reconnect-backoff", 500*time.Millisecond, "monitor: with -senders, first re-dial delay after a transport failure (doubles up to 15s)")

		agentAddr = flag.String("agent", "", "run as a fleet agent of the pathload-coord at this control address (host:port); leased paths are measured and pushed to the coordinator (honors -k -n -omega -chi -interval -jitter -workers -seed -export)")
		agentName = flag.String("agent-name", "", "agent: fleet-unique agent name (default the hostname)")
		heartbeat = flag.Duration("heartbeat", 0, "agent: heartbeat cadence (0 derives min(TTL/3, epoch) from the coordinator)")
		pushEvery = flag.Duration("push", 0, "agent: contribution push cadence (0 pushes on every heartbeat)")
		secret    = flag.String("secret", "", "agent: shared authentication secret (required when the coordinator runs with -secret)")

		archiveSpec = flag.String("archive", "", "monitor/agent: durable measurement archive dir[:seal=<bytes>[k|m]][,sync]; series recover and resume across restarts (inspect with pathload-archive)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), flagMatrix)
	}
	flag.Parse()

	var m crosstraffic.Model
	switch *model {
	case "poisson":
		m = crosstraffic.ModelPoisson
	case "pareto":
		m = crosstraffic.ModelPareto
	case "cbr":
		m = crosstraffic.ModelCBR
	default:
		fmt.Fprintf(os.Stderr, "pathload: unknown model %q\n", *model)
		os.Exit(2)
	}

	if *agentAddr != "" {
		runAgent(agentOpts{
			coord: *agentAddr, name: *agentName, secret: *secret,
			heartbeat: *heartbeat, push: *pushEvery, export: *export,
			interval: *interval, jitter: *jitter, workers: *workers,
			seed: *seed, backoff: *backoff, archive: *archiveSpec,
			measure: pathload.Config{
				PacketsPerStream: *k,
				StreamsPerFleet:  *n,
				Resolution:       *omega * 1e6,
				GreyResolution:   *chi * 1e6,
			},
		})
		return
	}

	if !*monitor && *archiveSpec != "" {
		fmt.Fprintln(os.Stderr, "pathload: -archive persists a monitored or agent store; it needs -monitor or -agent")
		os.Exit(2)
	}

	if *monitor {
		if *rounds < 1 {
			fmt.Fprintln(os.Stderr, "pathload: -monitor needs -rounds ≥ 1")
			os.Exit(2)
		}
		if err := validateFlagMatrix(*scen, *meshName, *senders, *schedName, *budget, *stagger, *archiveSpec); err != nil {
			fmt.Fprintf(os.Stderr, "pathload: %v\n", err)
			os.Exit(2)
		}
		if *scen != "" {
			runScenario(*scen, *rounds, *seed, pathload.Config{
				PacketsPerStream: *k,
				StreamsPerFleet:  *n,
				Resolution:       *omega * 1e6,
				GreyResolution:   *chi * 1e6,
			})
			return
		}
		runMonitor(monitorOpts{
			paths: *paths, rounds: *rounds, workers: *workers, archive: *archiveSpec,
			interval: *interval, jitter: *jitter, export: *export, mesh: *meshName,
			schedule: *schedName, budget: *budget * 1e6, stagger: *stagger,
			senders: splitSenders(*senders), backoff: *backoff,
			capMbps: *capMbps, util: *util, model: m, sources: *sources, seed: *seed,
			measure: pathload.Config{
				PacketsPerStream: *k,
				StreamsPerFleet:  *n,
				Resolution:       *omega * 1e6,
				GreyResolution:   *chi * 1e6,
			},
		})
		return
	}

	topo := experiments.Topology{
		Hops:          *hops,
		TightCap:      *capMbps * 1e6,
		TightUtil:     *util,
		Beta:          *beta,
		Model:         m,
		SourcesPerHop: *sources,
		Seed:          *seed,
	}
	net := topo.Build()
	net.Warmup(3 * netsim.Second)
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)

	start := time.Now()
	res, err := pathload.Run(prober, pathload.Config{
		PacketsPerStream: *k,
		StreamsPerFleet:  *n,
		Resolution:       *omega * 1e6,
		GreyResolution:   *chi * 1e6,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: %v\n", err)
		os.Exit(1)
	}

	if *verbose {
		for i, f := range res.Fleets {
			inc, non, dis := 0, 0, 0
			for _, s := range f.Streams {
				switch s.Kind {
				case pathload.StreamIncreasing:
					inc++
				case pathload.StreamNonIncreasing:
					non++
				default:
					dis++
				}
			}
			fmt.Printf("fleet %2d: R=%7.2f Mb/s L=%4dB T=%8v → %-7v (I=%d N=%d discard=%d)\n",
				i, f.Rate/1e6, f.L, f.T, f.Verdict, inc, non, dis)
		}
	}
	fmt.Printf("true avail-bw: %.2f Mb/s\n", topo.AvailBw()/1e6)
	fmt.Printf("measured:      %v\n", res)
	fmt.Printf("ADR init:      %.2f Mb/s\n", res.ADR/1e6)
	fmt.Printf("probe time:    %v (virtual), %v (wall)\n", res.Elapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Printf("sim events:    %d\n", net.Sim.Events())
}

// flagMatrix documents which -monitor mode flags compose; appended to
// -h after the per-flag defaults. validateFlagMatrix enforces it.
const flagMatrix = `
Monitor-mode flag matrix (with -monitor):
  (no mode flag)   independent single-hop simulator shards; composes with
                   -schedule, -budget, -export
  -mesh <shape>    shared-backbone fleet, sequenced on one virtual clock
                   (replays byte-for-byte); composes with -schedule, -budget,
                   -export; add -stagger for contention-aware admission on the
                   live SharedSim fallback (non-deterministic interleave)
  -senders a,b,…   real-network fleet over pathload-snd daemons; composes with
                   -schedule, -budget, -export; excludes -mesh and -stagger
                   (real paths have no shared backbone, hence no conflict graph)
  -scenario spec   one composed adversarial path, rounds split across the
                   scenario's epochs; excludes -mesh, -senders, -stagger, any
                   non-fixed -schedule and -budget (a single path has no fleet
                   to schedule); fleet-wide scenarios live in
                   ` + "`repro -fig fleetscenarios`" + `
  -archive spec    durable store under every mode above except -scenario
                   (which grades against analytic truth and keeps no store):
                   samples write through to a WAL + hash-chained segments, and
                   a restarted monitor recovers the series and resumes rounds
                   where they stopped; inspect with ` + "`pathload-archive`" + `
`

// validateFlagMatrix rejects contradictory -monitor mode combinations
// up front, each error naming the remedy, so a bad invocation fails
// loudly instead of silently ignoring a flag. The accepted matrix is
// the one -h prints (flagMatrix).
func validateFlagMatrix(scen, meshName, senders, schedName string, budget float64, stagger bool, archiveSpec string) error {
	switch {
	case scen != "" && archiveSpec != "":
		return fmt.Errorf("-scenario grades rounds against analytic epoch truth and keeps no store; it excludes -archive (drop one)")
	case scen != "" && meshName != "":
		return fmt.Errorf("-scenario measures one composed path; it excludes -mesh (drop one; fleet-wide scenarios live in `repro -fig fleetscenarios`)")
	case scen != "" && senders != "":
		return fmt.Errorf("-scenario measures one composed simulated path; it excludes -senders (drop one)")
	case scen != "" && stagger:
		return fmt.Errorf("-scenario measures one path; -stagger only staggers a -mesh fleet (drop -stagger)")
	case scen != "" && schedName != "" && schedName != "fixed":
		return fmt.Errorf("-scenario runs its rounds back to back; -schedule %s only applies to a monitored fleet (drop -schedule)", schedName)
	case scen != "" && budget > 0:
		return fmt.Errorf("-scenario measures one path; the fleet-wide -budget cap only applies to a monitored fleet (drop -budget)")
	case senders != "" && meshName != "":
		return fmt.Errorf("-senders measures real paths; it excludes -mesh (drop one)")
	case senders != "" && stagger:
		return fmt.Errorf("-stagger needs -mesh: the conflict graph comes from the shared backbone, which real -senders paths do not have (drop -stagger)")
	case stagger && meshName == "":
		return fmt.Errorf("-stagger needs -mesh (the conflict graph comes from the shared backbone)")
	case schedName == "budgeted" && budget <= 0:
		return fmt.Errorf("-schedule budgeted needs -budget > 0 (the fleet's aggregate probe cap in Mb/s)")
	}
	return nil
}

// runScenario measures one composed scenario: build it, warm it up, and
// run rounds back to back, advancing the scenario's epoch at its round
// boundary so each round is graded against the truth of the epoch it
// ran in. The spec string is untrusted CLI input — scenario.Parse
// rejects malformed specs with an error (FuzzParse holds it to that).
func runScenario(spec string, rounds int, seed int64, cfg pathload.Config) {
	s, err := scenario.Parse(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: -scenario: %v\n", err)
		os.Exit(2)
	}
	inst, err := s.Build(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: -scenario: %v\n", err)
		os.Exit(1)
	}
	inst.Mesh.Warmup(3 * netsim.Second)
	prober := simprobe.New(inst.Sim(), inst.Path.Route, 10*netsim.Millisecond)

	fmt.Printf("scenario %s: %s (%d epoch(s), %d rounds)\n", s.Name, s.Info, inst.Epochs(), rounds)
	if s.FailureMode != "" {
		fmt.Printf("expected failure mode: %s\n", s.FailureMode)
	}
	slack := cfg.Resolution + cfg.GreyResolution
	if slack == 0 {
		slack = pathload.DefaultResolution + pathload.DefaultGreyResolution
	}
	fmt.Printf("epoch 0: true avail-bw %.2f Mb/s (tight hop %d)\n", inst.Truth()/1e6, inst.TightHop())

	start := time.Now()
	hit := 0
	for r := 0; r < rounds; r++ {
		for inst.Epoch() < r*inst.Epochs()/rounds {
			inst.Advance()
			inst.Sim().RunFor(3 * netsim.Second) // let the new regime settle
			fmt.Printf("epoch %d: true avail-bw now %.2f Mb/s (tight hop %d)\n",
				inst.Epoch(), inst.Truth()/1e6, inst.TightHop())
		}
		truth := inst.Truth()
		res, err := pathload.Run(prober, cfg)
		if err != nil {
			fmt.Printf("r%d e%d true %6.2f Mb/s → error: %v\n", r, inst.Epoch(), truth/1e6, err)
			continue
		}
		mark := " "
		if res.Lo-slack <= truth && truth <= res.Hi+slack {
			hit++
			mark = "*"
		}
		fmt.Printf("r%d e%d true %6.2f Mb/s → %v %s\n", r, inst.Epoch(), truth/1e6, res, mark)
		inst.Sim().RunFor(500 * netsim.Millisecond)
	}
	fmt.Printf("scenario %s: %d/%d ranges bracket the epoch truth (slack ω+χ = %.1f Mb/s) in %v wall\n",
		s.Name, hit, rounds, slack/1e6, time.Since(start).Round(time.Millisecond))
}

// monitorOpts carries the fleet-mode flags.
type monitorOpts struct {
	paths, rounds, workers int
	interval               time.Duration
	jitter                 float64
	export                 string
	archive                string
	mesh                   string
	schedule               string
	budget                 float64 // bits/s aggregate, 0 = uncapped
	stagger                bool
	senders                []string // real-network sender addresses; empty = simulate
	backoff                time.Duration
	capMbps, util          float64
	model                  crosstraffic.Model
	sources                int
	seed                   int64
	measure                pathload.Config
}

// splitSenders parses the -senders list.
func splitSenders(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// scheduler builds the fleet's re-measurement schedule from the flags:
// the named base schedule, wrapped in a token bucket when -budget caps
// the fleet's aggregate probe bit-rate.
func (o monitorOpts) scheduler() (schedule.Scheduler, error) {
	var s schedule.Scheduler
	switch o.schedule {
	case "", "fixed":
		s = nil // monitor default: Fixed from Interval/Jitter/Seed
	case "adaptive":
		s = &schedule.Adaptive{Base: o.interval, Window: 8 * o.interval}
	case "budgeted":
		if o.budget <= 0 {
			return nil, fmt.Errorf("-schedule budgeted needs -budget > 0")
		}
		s = nil
	default:
		return nil, fmt.Errorf("unknown -schedule %q (have fixed, adaptive, budgeted)", o.schedule)
	}
	if o.budget > 0 {
		inner := s
		if inner == nil {
			inner = &schedule.Fixed{Interval: o.interval, Jitter: o.jitter, Seed: o.seed}
		}
		s = &schedule.Budgeted{Inner: inner, Rate: o.budget}
	}
	return s, nil
}

// runMonitor builds the monitored fleet (independent single-hop shards
// by default, a shared backbone with -mesh), warms it up, and streams
// the monitor's samples as they complete. Every sample also lands in a
// tsstore.Store; with -export the store is served over HTTP and the
// process stays up for scraping after the fleet finishes.
func runMonitor(o monitorOpts) {
	store, closeStore, err := openMonitorStore(o.archive)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: -archive: %v\n", err)
		os.Exit(1)
	}
	defer closeStore()
	var exportURL string
	if o.export != "" {
		ln, err := net.Listen("tcp", o.export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathload: -export: %v\n", err)
			os.Exit(1)
		}
		exportURL = fmt.Sprintf("http://%s/", ln.Addr())
		go func() {
			// A scrape endpoint that died is not a degraded mode — the
			// operator asked for -export, so losing it is fatal, not a
			// log line behind a silently dead port.
			err := http.Serve(ln, store.Handler())
			fmt.Fprintf(os.Stderr, "pathload: export: serving %s failed: %v\n", exportURL, err)
			os.Exit(1)
		}()
		fmt.Printf("exporting store on %s (endpoints: /metrics /series /mrtg)\n", exportURL)
	}
	mon, avail, err := buildFleet(o, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	if err := mon.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "pathload: %v\n", err)
		os.Exit(1)
	}
	hit := 0
	total := 0
	for s := range mon.Results() {
		total++
		if s.Err != nil {
			fmt.Printf("%s\n", s)
			continue
		}
		a, known := avail[s.Path]
		if !known {
			// Real paths have no analytic ground truth to grade against.
			fmt.Printf("%-9s r%d @%-8v %v\n", s.Path, s.Round, s.At.Round(time.Millisecond), s.Result)
			continue
		}
		// Same bracketing slack as the dynamics-at-scale experiment:
		// the termination resolutions ω + χ.
		slack := o.measure.Resolution + o.measure.GreyResolution
		if slack == 0 {
			slack = pathload.DefaultResolution + pathload.DefaultGreyResolution
		}
		if s.Result.Lo-slack <= a && a <= s.Result.Hi+slack {
			hit++
		}
		fmt.Printf("%-9s r%d @%-8v true %6.2f Mb/s → %v\n",
			s.Path, s.Round, s.At.Round(time.Millisecond), a/1e6, s.Result)
	}
	mon.Wait()
	if len(avail) > 0 {
		fmt.Printf("fleet: %d paths × %d rounds in %v wall; %d/%d ranges bracket the true avail-bw\n",
			len(mon.Paths()), o.rounds, time.Since(start).Round(time.Millisecond), hit, total)
	} else {
		fmt.Printf("fleet: %d real paths × %d rounds in %v wall; %d samples\n",
			len(mon.Paths()), o.rounds, time.Since(start).Round(time.Millisecond), total)
	}

	// Per-path retained-window aggregates, read back from the store.
	fmt.Printf("\nstored series (retained window):\n")
	fmt.Printf("%-9s %6s %28s %10s %8s %8s\n", "path", "points", "window [minLo,maxHi] (Mb/s)", "mean mid", "p50", "ρ(win)")
	for _, id := range store.Paths() {
		agg := store.Retained(id)
		if agg.Digest == nil {
			fmt.Printf("%-9s %6d %28s\n", id, agg.Count, "all rounds failed")
			continue
		}
		fmt.Printf("%-9s %6d %15s[%6.2f,%6.2f] %10.2f %8.2f %8.2f\n",
			id, agg.Count, "", agg.MinLo/1e6, agg.MaxHi/1e6,
			agg.MeanMid/1e6, agg.Quantile(0.5)/1e6, agg.RelVar)
	}

	if o.export != "" {
		fmt.Printf("\nfleet done; still serving %s — curl /metrics, Ctrl-C to exit\n", exportURL)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// openMonitorStore builds the fleet's store: purely in-memory by
// default, or recovered from (and writing through to) a durable
// archive when -archive names one. The recovery report prints so an
// operator sees exactly what a restart recovered — and what a crash
// cost.
func openMonitorStore(spec string) (*tsstore.Store, func(), error) {
	if spec == "" {
		return tsstore.New(tsstore.Config{}), func() {}, nil
	}
	dir, opt, err := archive.ParseSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	store, backend, rep, err := archive.OpenStore(dir, opt, tsstore.Config{})
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("archive: %s — %s\n", dir, rep.String())
	closer := func() {
		if err := backend.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pathload: archive close: %v\n", err)
		}
		if n, last := store.BackendErrs(); n > 0 {
			fmt.Fprintf(os.Stderr, "pathload: archive dropped %d writes (last: %v)\n", n, last)
		}
	}
	return store, closer, nil
}

// buildFleet constructs the monitored fleet: either independent
// single-hop simulator shards (the default) or, with -mesh, routes over
// one shared-backbone simulator whose probe streams contend on common
// links. It returns the wired (unstarted) monitor and the per-path
// analytic avail-bw ground truth.
func buildFleet(o monitorOpts, store *tsstore.Store) (*pathload.Monitor, map[string]float64, error) {
	sched, err := o.scheduler()
	if err != nil {
		return nil, nil, err
	}
	cfg := pathload.MonitorConfig{
		Workers:   o.workers,
		Rounds:    o.rounds,
		Interval:  o.interval,
		Jitter:    o.jitter,
		Seed:      o.seed,
		Config:    o.measure,
		Store:     store,
		Scheduler: sched,
	}
	if o.archive != "" {
		// The archive recovered prior series into the store; resume each
		// path's round counter and clock from them instead of rewinding
		// to round 0.
		cfg.Resume = func(path string) pathload.PathState {
			round, at := tsstore.Resume(store, path)
			return pathload.PathState{Round: round, At: at}
		}
	}
	if o.schedule != "" && o.schedule != "fixed" || o.budget > 0 {
		fmt.Printf("schedule: %s", o.schedule)
		if o.budget > 0 {
			fmt.Printf(" under a %.2f Mb/s aggregate probe budget", o.budget/1e6)
		}
		fmt.Println()
	}
	avail := map[string]float64{}

	if len(o.senders) > 0 {
		// A real-network fleet: every sender address becomes one
		// factory-backed path the monitor dials itself, so a dead or
		// restarted pathload-snd heals the session instead of ending it.
		cfg.Reconnect = pathload.Reconnect{Backoff: o.backoff}
		mon, err := pathload.NewMonitor(cfg)
		if err != nil {
			return nil, nil, err
		}
		used := map[string]bool{}
		for i, addr := range o.senders {
			addr := addr
			id := addr
			if used[id] {
				// Two paths to the same daemon are legal (it serves
				// sessions concurrently); disambiguate the series name.
				id = fmt.Sprintf("%s#%d", addr, i)
			}
			used[id] = true
			factory := func() (pathload.Prober, error) {
				return udprobe.Dial(addr, udprobe.ProberConfig{})
			}
			if err := mon.AddPathFactory(id, factory); err != nil {
				return nil, nil, err
			}
		}
		fmt.Printf("real fleet: %d udprobe paths (reconnect backoff %v)\n", len(o.senders), o.backoff)
		return mon, avail, nil
	}

	if o.mesh != "" {
		spec, err := mesh.Shape(o.mesh, o.paths, o.seed)
		if err != nil {
			return nil, nil, err
		}
		m, err := spec.Build()
		if err != nil {
			return nil, nil, err
		}
		m.Warmup(3 * netsim.Second)
		for _, p := range m.Paths() {
			avail[p.Name] = p.AvailBw()
		}
		if o.stagger {
			// Contention-aware admission: the mesh knows which paths
			// share a tight link; never measure two of them at once.
			// Admission policies block sessions, which a sequenced
			// fleet's round barrier cannot tolerate, so -stagger selects
			// the SharedSim fallback (live, not reproducible run-to-run).
			cfg.Admission = schedule.NewStagger(m.TightOverlaps(), o.workers)
			fmt.Printf("admission: staggering tight-link-sharing paths (workers %d; non-deterministic interleave)\n", o.workers)
			mon, err := m.SharedMonitorFleet(cfg, 10*netsim.Millisecond)
			if err != nil {
				return nil, nil, err
			}
			fmt.Printf("mesh fleet: %d paths over a %s backbone (%d links, shared-link contention)\n",
				o.paths, o.mesh, len(m.Links()))
			return mon, avail, nil
		}
		mon, drv, err := m.MonitorFleet(cfg, 10*netsim.Millisecond)
		if err != nil {
			return nil, nil, err
		}
		// Per-link utilization series, one point per fleet round, onto
		// the same store the per-path samples land in (/mrtg?link=...).
		rec := m.NewLinkRecorder(store)
		drv.OnRoundBoundary(func(round int) { rec.Snapshot(round) })
		fmt.Printf("mesh fleet: %d paths over a %s backbone (%d links, sequenced — replays byte-for-byte)\n",
			o.paths, o.mesh, len(m.Links()))
		return mon, avail, nil
	}

	nets := make([]*experiments.Net, o.paths)
	sims := make([]*netsim.Simulator, o.paths)
	for i := range nets {
		// Sweep utilization across ±50% of the flag, clamped to [0.05, 0.9].
		u := o.util * (0.5 + float64(i)/float64(max(o.paths-1, 1)))
		u = math.Min(0.9, math.Max(0.05, u))
		topo := experiments.Topology{
			Hops:          1,
			TightCap:      o.capMbps * 1e6,
			TightUtil:     u,
			Model:         o.model,
			SourcesPerHop: o.sources,
			Seed:          o.seed + int64(i)*7_919_317,
		}
		nets[i] = topo.Build()
		sims[i] = nets[i].Sim
		avail[pathID(i)] = topo.AvailBw()
	}
	warm := netsim.NewLockstep(0, sims...)
	warm.AdvanceTo(3 * netsim.Second)
	warm.Close()

	mon, err := pathload.NewMonitor(cfg)
	if err != nil {
		return nil, nil, err
	}
	for i, n := range nets {
		p := simprobe.New(n.Sim, n.Links, 10*netsim.Millisecond)
		if err := mon.AddPath(pathID(i), p); err != nil {
			return nil, nil, err
		}
	}
	return mon, avail, nil
}

// pathID names fleet path i.
func pathID(i int) string { return fmt.Sprintf("path-%02d", i) }
