package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/crosstraffic"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simprobe"
	"repro/internal/udprobe"

	pathload "repro"
)

// agentOpts carries the -agent flags.
type agentOpts struct {
	coord     string // coordinator control address
	name      string
	secret    string // shared auth secret; "" = unauthenticated
	heartbeat time.Duration
	push      time.Duration
	export    string // optional local scrape address
	archive   string // optional durable store spec (-archive)
	interval  time.Duration
	jitter    float64
	workers   int
	seed      int64
	backoff   time.Duration
	measure   pathload.Config
}

// agentProvider resolves a leased path identifier to a prober factory:
//
//   - "sim:<util>[@seed]" builds a fresh single-hop 10 Mb/s Poisson
//     simulator at that utilization per (re)dial — the self-contained
//     form used by tests and demos ("sim:0.4", "sim:0.6@7").
//   - anything else is a pathload-snd control address dialed over UDP
//     (the -senders transport), re-dialed by the monitor on failure.
func agentProvider(path string) (pathload.ProberFactory, error) {
	if util, seed, ok := parseSimPath(path); ok {
		return func() (pathload.Prober, error) {
			topo := experiments.Topology{
				Hops:          1,
				TightCap:      10e6,
				TightUtil:     util,
				Model:         crosstraffic.ModelPoisson,
				SourcesPerHop: 10,
				Seed:          seed,
			}
			n := topo.Build()
			n.Warmup(3 * netsim.Second)
			return simprobe.New(n.Sim, n.Links, 10*netsim.Millisecond), nil
		}, nil
	}
	addr := path
	return func() (pathload.Prober, error) {
		return udprobe.Dial(addr, udprobe.ProberConfig{})
	}, nil
}

// parseSimPath recognizes the "sim:<util>[@seed]" form.
func parseSimPath(path string) (util float64, seed int64, ok bool) {
	spec, found := strings.CutPrefix(path, "sim:")
	if !found {
		return 0, 0, false
	}
	seed = 1
	if at := strings.IndexByte(spec, '@'); at >= 0 {
		s, err := strconv.ParseInt(spec[at+1:], 10, 64)
		if err != nil {
			return 0, 0, false
		}
		seed, spec = s, spec[:at]
	}
	u, err := strconv.ParseFloat(spec, 64)
	if err != nil || u < 0 || u >= 1 {
		return 0, 0, false
	}
	return u, seed, true
}

// runAgent joins the fleet: register with the coordinator, measure
// whatever it leases, push the series back, until interrupted.
func runAgent(o agentOpts) {
	name := o.name
	if name == "" {
		h, err := os.Hostname()
		if err != nil || h == "" {
			fmt.Fprintln(os.Stderr, "pathload: -agent needs -agent-name (no usable hostname)")
			os.Exit(2)
		}
		name = h
	}
	// With -archive the agent's local store is durable: a restarted
	// agent recovers its series and the monitor resumes each leased
	// path's rounds (the agent's reconcile path already resumes from
	// the store it is handed).
	store, closeStore, err := openMonitorStore(o.archive)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: -archive: %v\n", err)
		os.Exit(1)
	}
	defer closeStore()
	agent, err := coord.NewAgent(coord.AgentConfig{
		Coord:      o.coord,
		Name:       name,
		Secret:     o.secret,
		LocalStore: store,
		Provider:   agentProvider,
		Heartbeat:  o.heartbeat,
		PushEvery:  o.push,
		Monitor: pathload.MonitorConfig{
			Workers:   o.workers,
			Interval:  o.interval,
			Jitter:    o.jitter,
			Seed:      o.seed,
			Config:    o.measure,
			Reconnect: pathload.Reconnect{Backoff: o.backoff},
		},
		OnEvent: func(line string) { fmt.Printf("agent: %s\n", line) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload: %v\n", err)
		os.Exit(2)
	}

	if o.export != "" {
		ln, err := net.Listen("tcp", o.export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathload: -export: %v\n", err)
			os.Exit(1)
		}
		url := fmt.Sprintf("http://%s/", ln.Addr())
		go func() {
			err := http.Serve(ln, agent.Store().Handler())
			fmt.Fprintf(os.Stderr, "pathload: export: serving %s failed: %v\n", url, err)
			os.Exit(1)
		}()
		fmt.Printf("agent: exporting local store on %s\n", url)
	}

	fmt.Printf("agent: %s joining coordinator %s\n", name, o.coord)
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		agent.Stop()
	}()
	if err := agent.Run(); err != nil {
		closeStore() // os.Exit skips defers; the archive still holds the WAL tail
		fmt.Fprintf(os.Stderr, "pathload: agent: %v\n", err)
		os.Exit(1)
	}
}
