// Command pathload-snd is the real-network pathload sender daemon. Run
// it at the path's source host; it serves pathload-rcv and
// pathload -monitor -senders control sessions on the TCP control port —
// concurrently, one goroutine and one UDP data socket per session, so a
// single daemon can serve a whole monitored fleet — and emits periodic
// UDP probe streams on request. Sessions that go idle (a vanished
// receiver, a half-open connection) are reaped after -session-timeout.
//
//	pathload-snd -listen :8365
package main

import (
	"flag"
	"log"
	"time"

	"repro/internal/udprobe"
)

func main() {
	var (
		listen      = flag.String("listen", ":8365", "TCP control listen address")
		sessTimeout = flag.Duration("session-timeout", 2*time.Minute, "drop control sessions idle longer than this")
		maxSessions = flag.Int("max-sessions", 64, "concurrent control session cap; further connections are refused")
	)
	flag.Parse()

	log.SetPrefix("pathload-snd: ")
	cfg := udprobe.SenderConfig{
		SessionTimeout: *sessTimeout,
		MaxSessions:    *maxSessions,
		Logf:           log.Printf,
	}
	if err := udprobe.ListenAndServe(*listen, cfg); err != nil {
		log.Fatal(err)
	}
}
