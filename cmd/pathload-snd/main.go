// Command pathload-snd is the real-network pathload sender daemon. Run
// it at the path's source host; it waits for a pathload-rcv to connect
// on the TCP control port and emits periodic UDP probe streams on
// request.
//
//	pathload-snd -listen :8365
package main

import (
	"flag"
	"log"

	"repro/internal/udprobe"
)

func main() {
	listen := flag.String("listen", ":8365", "TCP control listen address")
	flag.Parse()

	log.SetPrefix("pathload-snd: ")
	if err := udprobe.ListenAndServe(*listen, udprobe.SenderConfig{Logf: log.Printf}); err != nil {
		log.Fatal(err)
	}
}
