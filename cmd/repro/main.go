// Command repro regenerates the figures of Jain & Dovrolis, "End-to-End
// Available Bandwidth" (SIGCOMM 2002), on the packet-level simulator.
//
// Usage:
//
//	repro -fig 5            # one figure
//	repro -all              # every figure
//	repro -all -scale 0.2   # scaled-down run counts and windows
//
// Output is plain text: one table or series per figure, in the shape of
// the paper's plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 1-3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, baseline, timescale, scale, scale10k, trajectory, contention, adaptive, scenarios, fleetscenarios")
	all := flag.Bool("all", false, "reproduce every figure")
	scale := flag.Float64("scale", 1.0, "scale factor for run counts and measurement windows (1 = paper scale)")
	seed := flag.Int64("seed", 1, "master random seed")
	benchFilter := flag.String("bench", "", "run the perf benchmark suite instead of figures (\"all\" or a name substring)")
	benchOut := flag.String("bench-out", "", "write the bench report as JSON to this file")
	benchBaseline := flag.String("bench-baseline", "", "compare the bench run against this baseline JSON and fail on regression")
	benchTolerance := flag.Float64("bench-tolerance", 50, "ns/op regression tolerance vs the baseline, in percent")
	flag.Parse()

	if *benchFilter != "" {
		os.Exit(runBench(*benchFilter, *benchOut, *benchBaseline, *benchTolerance))
	}

	opt := experiments.Options{Scale: *scale, Seed: *seed}
	if !*all && *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	figs := []string{"1", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "17", "baseline", "timescale", "scale", "trajectory", "contention", "adaptive", "scenarios", "fleetscenarios"}
	if !*all {
		figs = strings.Split(*fig, ",")
	}
	for _, f := range figs {
		start := time.Now()
		out, err := render(f, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(%s in %.1fs)\n\n", figLabel(f), time.Since(start).Seconds())
	}
}

// runBench runs the perf benchmark suite, optionally writing the JSON
// report and gating against a committed baseline. Returns the process
// exit code: 1 when the regression gate fails.
func runBench(filter, out, baseline string, tolerancePct float64) int {
	rep := bench.Run(filter)
	fmt.Print(bench.Format(rep))
	if out != "" {
		if err := bench.WriteJSON(out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		base, err := bench.ReadJSON(baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		// A filtered run only gates the benchmarks it ran.
		kept := base.Benchmarks[:0:0]
		for _, b := range base.Benchmarks {
			if bench.Matches(b.Name, filter) {
				kept = append(kept, b)
			}
		}
		base.Benchmarks = kept
		if violations := bench.Compare(base, rep, tolerancePct); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "repro: perf regression vs %s:\n", baseline)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			return 1
		}
		fmt.Printf("within %.0f%% of baseline %s\n", tolerancePct, baseline)
	}
	return 0
}

// figLabel names the figure(s) a selector covers.
func figLabel(f string) string {
	switch f {
	case "1", "2", "3":
		return "figs 1-3"
	case "15", "16":
		return "figs 15-16"
	case "17", "18":
		return "figs 17-18"
	case "scale":
		return "dynamics at scale"
	case "scale10k":
		return "dynamics at 10k paths"
	case "trajectory":
		return "avail-bw trajectories"
	case "contention":
		return "fleet self-interference"
	case "adaptive":
		return "adaptive scheduling"
	case "scenarios":
		return "scenario grading matrix"
	case "fleetscenarios":
		return "sequenced fleet scenarios"
	default:
		return "fig " + f
	}
}

// render runs one figure selector and formats its output.
func render(f string, opt experiments.Options) (string, error) {
	switch f {
	case "1", "2", "3":
		return experiments.RenderOWDTraces(experiments.OWDTraces(opt)), nil
	case "5":
		return experiments.RenderAccuracy("Fig 5: accuracy vs tight-link load and traffic model", experiments.Fig5(opt)), nil
	case "6":
		return experiments.RenderAccuracy("Fig 6: accuracy vs non-tight-link load (A = 4 Mb/s throughout)", experiments.Fig6(opt)), nil
	case "7":
		return experiments.RenderAccuracy("Fig 7: accuracy vs path tightness factor β (A = 4 Mb/s)", experiments.Fig7(opt)), nil
	case "8":
		return experiments.RenderSensitivity("Fig 8: effect of fleet fraction f (single runs)", "f", experiments.Fig8(opt)), nil
	case "9":
		return experiments.RenderSensitivity("Fig 9: effect of the PDT threshold (PDT-only detection)", "thresh", experiments.Fig9(opt)), nil
	case "10":
		return experiments.RenderVerification(experiments.Fig10(opt)), nil
	case "11":
		return experiments.RenderDynamics("Fig 11: avail-bw variability vs tight-link load (C_t = 12.4 Mb/s)", experiments.Fig11(opt)), nil
	case "12":
		return experiments.RenderDynamics("Fig 12: variability vs statistical multiplexing (u ≈ 65%)", experiments.Fig12(opt)), nil
	case "13":
		return experiments.RenderDynamics("Fig 13: variability vs stream length K", experiments.Fig13(opt)), nil
	case "14":
		return experiments.RenderDynamics("Fig 14: variability vs fleet length N", experiments.Fig14(opt)), nil
	case "15", "16":
		return experiments.RenderBTC(experiments.Fig15and16(opt)), nil
	case "17", "18":
		return experiments.RenderIntrusive(experiments.Fig17and18(opt)), nil
	case "baseline":
		return experiments.RenderBaseline(experiments.BaselineComparison(opt)), nil
	case "timescale":
		return experiments.RenderTimescale(experiments.TimescaleVariance(opt)), nil
	case "scale":
		return experiments.RenderScale(experiments.DynamicsAtScale(opt)), nil
	case "scale10k":
		return experiments.RenderScaleSummary(experiments.DynamicsAtScale10k(opt)), nil
	case "trajectory":
		return experiments.RenderTrajectory(experiments.AvailBwTrajectory(opt)), nil
	case "contention":
		return experiments.RenderContention(experiments.Contention(opt)), nil
	case "adaptive":
		return experiments.RenderAdaptive(experiments.AdaptiveSchedule(opt)), nil
	case "scenarios":
		return experiments.RenderScenarios(experiments.Scenarios(opt)), nil
	case "fleetscenarios":
		return experiments.RenderFleetScenarios(experiments.FleetScenarios(opt)), nil
	default:
		return "", fmt.Errorf("unknown figure %q", f)
	}
}
