package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/tsstore"

	pathload "repro"
)

// fixtureDir is a committed mini-archive: two sealed hash-chained
// segments plus a WAL tail, written with an injected clock so the
// bytes are reproducible. CI runs `pathload-archive verify` over it;
// TestFixtureTamperDetection proves a single flipped byte anywhere in
// sealed history fails the walk.
const fixtureDir = "testdata/mini"

// regenFixture rebuilds testdata/mini from scratch. Run with
// PATHLOAD_REGEN_FIXTURE=1 when the on-disk format changes, and
// commit the result.
func regenFixture(t *testing.T) {
	t.Helper()
	if err := os.RemoveAll(fixtureDir); err != nil {
		t.Fatal(err)
	}
	st, backend, _, err := archive.OpenStore(fixtureDir, archive.Options{
		NowUnix: func() int64 { return 1700000000 },
	}, tsstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sample := func(path string, round int, lo, hi float64) pathload.Sample {
		return pathload.Sample{
			Path:  path,
			Round: round,
			At:    time.Duration(round) * time.Second,
			Result: pathload.Result{
				Lo: lo, Hi: hi,
				Elapsed: 200 * time.Millisecond,
				Bits:    96000,
			},
		}
	}
	for r := 0; r < 3; r++ {
		st.Observe(sample("p00", r, 4e6, 6e6))
		st.Observe(sample("p01", r, 2e6, 3e6))
		st.ObserveLink("hop-01", r, time.Duration(r)*time.Second, time.Second, 0.4, 10e6)
	}
	if err := backend.Archive().Seal(); err != nil {
		t.Fatal(err)
	}
	for r := 3; r < 5; r++ {
		st.Observe(sample("p00", r, 5e6, 7e6))
	}
	if err := backend.Archive().Seal(); err != nil {
		t.Fatal(err)
	}
	// Leave a live WAL tail so verify exercises both sources.
	st.Observe(sample("p01", 3, 2.5e6, 3.5e6))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func maybeRegen(t *testing.T) {
	if os.Getenv("PATHLOAD_REGEN_FIXTURE") != "" {
		regenFixture(t)
	}
}

// TestFixtureVerifies pins the committed fixture: the integrity walk
// passes and sees the expected shape.
func TestFixtureVerifies(t *testing.T) {
	maybeRegen(t)
	rep, err := archive.Verify(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("committed fixture fails verify:\n%s", rep.String())
	}
	if len(rep.Segments) != 2 {
		t.Errorf("fixture has %d segments, want 2", len(rep.Segments))
	}
	if rep.SealedRecords != 11 || rep.WALRecords != 1 {
		t.Errorf("fixture holds %d sealed + %d tail records, want 11 + 1",
			rep.SealedRecords, rep.WALRecords)
	}
}

// TestFixtureDecodes walks the fixture through the kind decoders —
// the same code path `pathload-archive cat` uses.
func TestFixtureDecodes(t *testing.T) {
	maybeRegen(t)
	points, links := 0, 0
	err := archive.Walk(fixtureDir, func(r archive.Record, sealed bool) error {
		switch r.Kind {
		case archive.KindPoint:
			path, p, err := archive.DecodePointRecord(r)
			if err != nil {
				return err
			}
			if path == "" || p.Hi <= p.Lo {
				t.Errorf("decoded point %q %+v looks wrong", path, p)
			}
			points++
		case archive.KindLink:
			if _, _, err := archive.DecodeLinkRecord(r); err != nil {
				return err
			}
			links++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if points != 9 || links != 3 {
		t.Errorf("fixture decodes %d points + %d links, want 9 + 3", points, links)
	}
}

// TestFixtureTamperDetection copies the fixture and flips one byte at
// several offsets in every sealed segment: header, first record,
// middle, and last byte. Verify must fail each time — the acceptance
// bar for the hash chain.
func TestFixtureTamperDetection(t *testing.T) {
	maybeRegen(t)
	ents, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) != 2 {
		t.Fatalf("fixture has %d seg files, want 2: %v", len(segs), segs)
	}
	for _, seg := range segs {
		orig, err := os.ReadFile(filepath.Join(fixtureDir, seg))
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int{0, 40, len(orig) / 2, len(orig) - 1} {
			dir := t.TempDir()
			copyDir(t, fixtureDir, dir)
			tampered := append([]byte(nil), orig...)
			tampered[off] ^= 0x01
			if err := os.WriteFile(filepath.Join(dir, seg), tampered, 0o644); err != nil {
				t.Fatal(err)
			}
			rep, err := archive.Verify(dir)
			if err != nil {
				// An unparsable header is also detection — but Verify
				// reports structure problems in the report, not err.
				t.Fatalf("%s offset %d: verify errored: %v", seg, off, err)
			}
			if rep.OK() {
				t.Errorf("%s offset %d: flipped byte not detected:\n%s", seg, off, rep.String())
			}
		}
	}
}

// TestVerifyCleanCopy guards the tamper test itself: an unmodified
// copy must pass, so failures above are the flip, not the copying.
func TestVerifyCleanCopy(t *testing.T) {
	maybeRegen(t)
	dir := t.TempDir()
	copyDir(t, fixtureDir, dir)
	rep, err := archive.Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean copy fails verify:\n%s", rep.String())
	}
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	ents, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
