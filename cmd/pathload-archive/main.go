// Command pathload-archive inspects and maintains the durable
// measurement archives written by `pathload -archive` and
// `pathload-coord -archive` (internal/archive: an append-only WAL
// sealed into hash-chained segment files).
//
//	pathload-archive verify  <dir>            # integrity walk; exit 1 on tampering
//	pathload-archive compact <dir> [flags]    # drop old segments under a byte/age cap
//	pathload-archive cat     <dir>            # decode every retained record
//
// verify recomputes every record CRC, every segment's whole-file
// SHA-256, the prev-hash chain between segments, and the HEAD anchor:
// a single flipped byte anywhere in sealed history fails the walk. A
// torn WAL tail is reported but is ordinary crash fallout, not a
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/archive"
	"repro/internal/coord"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, rest := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "verify":
		err = runVerify(rest)
	case "compact":
		err = runCompact(rest)
	case "cat":
		err = runCat(rest)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "pathload-archive: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload-archive: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: pathload-archive <command> <dir> [flags]

commands:
  verify  <dir>                      integrity walk: record CRCs, segment
                                     hashes, prev-hash chain, HEAD anchor;
                                     exit 1 if anything fails
  compact <dir> -max-bytes n -max-age d
                                     drop oldest sealed segments while the
                                     archive exceeds either cap (the newest
                                     segment always survives)
  cat     <dir>                      decode every retained record, oldest
                                     first, one line each
`)
}

// runVerify walks the archive read-only and prints the report; any
// integrity problem is a non-zero exit.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: want exactly one archive dir, got %d args", fs.NArg())
	}
	rep, err := archive.Verify(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if !rep.OK() {
		os.Exit(1)
	}
	return nil
}

// runCompact applies the retention caps and reports what it removed.
// The dir may come before or after the flags (stdlib flag parsing
// stops at the first positional argument, so peel a leading dir off).
func runCompact(args []string) error {
	var dir string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		dir, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	maxBytes := fs.Int64("max-bytes", 0, "total sealed-segment byte cap (0 = unlimited)")
	maxAge := fs.Duration("max-age", 0, "oldest segment age cap (0 = unlimited)")
	fs.Parse(args)
	switch {
	case dir == "" && fs.NArg() == 1:
		dir = fs.Arg(0)
	case dir != "" && fs.NArg() == 0:
	default:
		return fmt.Errorf("compact: want exactly one archive dir")
	}
	if *maxBytes <= 0 && *maxAge <= 0 {
		return fmt.Errorf("compact: nothing to do — set -max-bytes and/or -max-age")
	}
	a, rep, err := archive.Open(dir, archive.Options{})
	if err != nil {
		return err
	}
	defer a.Close()
	fmt.Printf("opened: %s\n", rep.String())
	removed, err := a.Compact(*maxBytes, *maxAge)
	for _, idx := range removed {
		fmt.Printf("removed seg %d\n", idx)
	}
	if err != nil {
		return err
	}
	fmt.Printf("compacted: %d segments removed, %d retained\n", len(removed), len(a.Segments()))
	return nil
}

// runCat streams every retained record through the kind decoders. The
// tsstore kinds decode fully; coordinator kinds are labeled (their
// payloads reuse the SLCP wire encoding and stay opaque here beyond
// the key).
func runCat(args []string) error {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("cat: want exactly one archive dir, got %d args", fs.NArg())
	}
	return archive.Walk(fs.Arg(0), func(r archive.Record, sealed bool) error {
		src := "wal"
		if sealed {
			src = "seg"
		}
		switch r.Kind {
		case archive.KindPoint:
			path, p, err := archive.DecodePointRecord(r)
			if err != nil {
				return err
			}
			fmt.Printf("%s point %-12s round=%d at=%v span=%v lo=%.0f hi=%.0f bits=%.0f err=%q\n",
				src, path, p.Round, p.At, p.Span, p.Lo, p.Hi, p.Bits, p.Err)
		case archive.KindLink:
			link, p, err := archive.DecodeLinkRecord(r)
			if err != nil {
				return err
			}
			fmt.Printf("%s link  %-12s round=%d at=%v span=%v util=%.3f cap=%.0f\n",
				src, link, p.Round, p.At, p.Span, p.Util, p.Capacity)
		case coord.KindContribution:
			fmt.Printf("%s coord contribution %-20s %d payload bytes\n", src, r.Key, len(r.Data))
		case coord.KindLeases:
			fmt.Printf("%s coord lease snapshot %d payload bytes\n", src, len(r.Data))
		default:
			fmt.Printf("%s kind=0x%02x key=%q %d payload bytes\n", src, r.Kind, r.Key, len(r.Data))
		}
		return nil
	})
}
