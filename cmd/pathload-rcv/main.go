// Command pathload-rcv measures the available bandwidth from a
// pathload-snd host to this host. It drives the measurement over the
// TCP control channel and timestamps the UDP probe streams locally;
// clocks need not be synchronized (SLoPS uses only relative one-way
// delays).
//
//	pathload-rcv -sender srchost:8365
//
// The measurement direction is sender → receiver, i.e. the downstream
// avail-bw of this host relative to the sender.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/udprobe"

	pathload "repro"
)

func main() {
	var (
		sender = flag.String("sender", "", "pathload-snd control address (host:port)")
		k      = flag.Int("k", pathload.DefaultPacketsPerStream, "packets per stream (K)")
		n      = flag.Int("n", pathload.DefaultStreamsPerFleet, "streams per fleet (N)")
		omega  = flag.Float64("omega", pathload.DefaultResolution/1e6, "estimation resolution ω, Mb/s")
		chi    = flag.Float64("chi", pathload.DefaultGreyResolution/1e6, "grey resolution χ, Mb/s")
		maxMbs = flag.Float64("max", 0, "cap the probed rate, Mb/s (0: MTU/Tmin limit)")
		v      = flag.Bool("v", false, "log every fleet")
	)
	flag.Parse()
	log.SetPrefix("pathload-rcv: ")
	if *sender == "" {
		flag.Usage()
		os.Exit(2)
	}

	p, err := udprobe.Dial(*sender, udprobe.ProberConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	log.Printf("connected to %s (control RTT %v)", *sender, p.RTT().Round(time.Microsecond))

	start := time.Now()
	res, err := pathload.Run(p, pathload.Config{
		PacketsPerStream: *k,
		StreamsPerFleet:  *n,
		Resolution:       *omega * 1e6,
		GreyResolution:   *chi * 1e6,
		MaxRate:          *maxMbs * 1e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *v {
		for i, f := range res.Fleets {
			fmt.Printf("fleet %2d: R=%8.2f Mb/s → %v\n", i, f.Rate/1e6, f.Verdict)
		}
	}
	fmt.Printf("measured: %v\n", res)
	fmt.Printf("ADR init: %.2f Mb/s\n", res.ADR/1e6)
	fmt.Printf("elapsed:  %v\n", time.Since(start).Round(time.Millisecond))
}
