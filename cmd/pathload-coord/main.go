// Command pathload-coord is the fleet coordinator: it owns a table of
// paths, leases them to `pathload -agent` processes with
// heartbeat-renewed TTLs, rebalances when agents die, and serves the
// federated time series every agent pushes back on the usual scrape
// surface (/metrics, /series, /mrtg) plus a /coord status page.
//
// Example — two agents splitting four simulated paths:
//
//	pathload-coord -listen :8400 -export :9090 \
//	    -paths sim:0.2,sim:0.4,sim:0.6,sim:0.8 &
//	pathload -agent localhost:8400 -agent-name a1 &
//	pathload -agent localhost:8400 -agent-name a2 &
//	curl -s localhost:9090/metrics | grep availbw_samples_total
//
// Paths joined by -conflicts (groups separated by ';', members by ',')
// share a tight link: the coordinator leases each group whole, so the
// owning agent can stagger its members locally:
//
//	pathload-coord -paths a,b,c,d -conflicts a,b;c,d
//
// With -mesh the conflict groups are derived from a topology instead
// of written by hand: the paths are laid over the named backbone shape
// (star, chain, tree, disjoint) in order, and paths sharing a tight
// link conflict:
//
//	pathload-coord -paths a,b,c,d -mesh star
//
// With -archive the coordinator is durable: lease state and every
// federated contribution write through to a WAL + hash-chained
// segment archive, and a restarted coordinator restores them — agents
// re-attach to their prior conflict groups and the federated history
// continues. -secret requires agents to prove a shared secret before
// registering; -register-rate/-push-rate throttle abusive dialers
// per remote host:
//
//	pathload-coord -paths a,b -archive data/coord -secret s3same
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro/internal/archive"
	"repro/internal/coord"
	"repro/internal/mesh"
	"repro/internal/tsstore"
)

func main() {
	var (
		listen      = flag.String("listen", ":8400", "agent control listen address")
		export      = flag.String("export", "", "HTTP listen address for the federated store and /coord status (e.g. :9090)")
		paths       = flag.String("paths", "", "comma-separated path identifiers to keep measured (required); agents resolve them (sim:<util>[@seed] or a pathload-snd address)")
		conflicts   = flag.String("conflicts", "", "conflict groups: members separated by ',', groups by ';' (e.g. a,b;c,d); each group is leased whole (excludes -mesh)")
		meshName    = flag.String("mesh", "", "derive conflict groups from a backbone topology instead of -conflicts: star, chain, tree, disjoint; -paths map onto the shape in order and tight-link sharers conflict")
		meshSeed    = flag.Int64("mesh-seed", 1, "random seed for the -mesh shape")
		ttl         = flag.Duration("ttl", coord.DefaultTTL, "agent liveness TTL: an agent missing heartbeats this long loses its leases")
		epoch       = flag.Duration("epoch", coord.DefaultEpoch, "rebalance cadence")
		budget      = flag.Float64("budget", 0, "fleet-wide probe bit-rate budget in Mb/s, split across agents by leased-path count (0 = uncapped)")
		archiveSpec = flag.String("archive", "", "durable coordinator state dir[:seal=<bytes>[k|m]][,sync]: lease state and federated contributions persist and restore across restarts (inspect with pathload-archive)")
		secret      = flag.String("secret", "", "shared authentication secret agents must prove (HMAC challenge) before registering; requires protocol v2 agents")
		regRate     = flag.Float64("register-rate", 0, "per-remote-host registration rate limit in registrations/second (0 = unlimited)")
		pushRate    = flag.Float64("push-rate", 0, "per-remote-host contribution push rate limit in pushes/second (0 = unlimited)")
		rateBurst   = flag.Float64("rate-burst", 0, "token-bucket depth for -register-rate/-push-rate (0 = default)")
	)
	flag.Parse()

	pathList := splitList(*paths)
	if len(pathList) == 0 {
		fmt.Fprintln(os.Stderr, "pathload-coord: -paths is required")
		os.Exit(2)
	}
	if *meshName != "" && *conflicts != "" {
		fmt.Fprintln(os.Stderr, "pathload-coord: -mesh derives the conflict groups; it excludes -conflicts (drop one)")
		os.Exit(2)
	}
	adj := parseConflicts(*conflicts)
	if *meshName != "" {
		var err error
		adj, err = conflictsFromMesh(*meshName, pathList, *meshSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathload-coord: -mesh: %v\n", err)
			os.Exit(2)
		}
	}

	cfg := coord.ServerConfig{
		Coord: coord.Config{
			Paths:     pathList,
			Conflicts: adj,
			TTL:       *ttl,
			Epoch:     *epoch,
			Budget:    *budget * 1e6,
		},
		Store:        tsstore.Config{},
		AutoTick:     true,
		OnEvent:      func(line string) { fmt.Printf("coord: %s\n", line) },
		Secret:       *secret,
		RegisterRate: *regRate,
		PushRate:     *pushRate,
		RateBurst:    *rateBurst,
	}

	var log *coord.Log
	if *archiveSpec != "" {
		dir, opt, err := archive.ParseSpec(*archiveSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathload-coord: -archive: %v\n", err)
			os.Exit(2)
		}
		var rep coord.LogReport
		log, rep, err = coord.OpenLog(dir, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathload-coord: -archive: %v\n", err)
			os.Exit(1)
		}
		rs, problems := log.Restore()
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "pathload-coord: archive restore: %s\n", p)
		}
		fmt.Printf("coord: archive %s — %s; restored %d contributions, lease snapshot %v\n",
			dir, rep.String(), len(rs.Contributions), rs.HaveLeases)
		cfg.Persist = log
		cfg.Restore = &rs
	}

	srv, err := coord.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload-coord: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload-coord: -listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("coord: control listening on %s (%d paths, ttl %v, epoch %v)\n",
		ln.Addr(), len(pathList), *ttl, *epoch)

	if *export != "" {
		eln, err := net.Listen("tcp", *export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathload-coord: -export: %v\n", err)
			os.Exit(1)
		}
		url := fmt.Sprintf("http://%s/", eln.Addr())
		go func() {
			// Losing the scrape surface defeats the point of a
			// coordinator; fail loudly instead of serving nothing.
			err := http.Serve(eln, srv.Handler())
			fmt.Fprintf(os.Stderr, "pathload-coord: export: serving %s failed: %v\n", url, err)
			os.Exit(1)
		}()
		fmt.Printf("coord: exporting federated store on %s (endpoints: /metrics /series /mrtg /coord)\n", url)
	}

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "pathload-coord: %v\n", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// conflictsFromMesh derives the conflict adjacency from a backbone
// topology: the user's paths are laid over the named shape in order
// (mesh paths sort by name, so index i of the shape is userPaths[i])
// and two paths conflict when the shape routes them over a shared
// tight link — exactly mesh.TightOverlaps, translated back to the
// user's path identifiers.
func conflictsFromMesh(shape string, userPaths []string, seed int64) (map[string][]string, error) {
	spec, err := mesh.Shape(shape, len(userPaths), seed)
	if err != nil {
		return nil, fmt.Errorf("%v (shapes: %s)", err, strings.Join(mesh.ShapeNames(), ", "))
	}
	m, err := spec.Build()
	if err != nil {
		return nil, err
	}
	name := map[string]string{} // shape path name -> user path id
	for i, p := range m.Paths() {
		name[p.Name] = userPaths[i]
	}
	adj := map[string][]string{}
	for from, tos := range m.TightOverlaps() {
		if len(tos) == 0 {
			continue
		}
		members := make([]string, 0, len(tos))
		for _, to := range tos {
			members = append(members, name[to])
		}
		sort.Strings(members)
		adj[name[from]] = members
	}
	if len(adj) == 0 {
		return nil, nil
	}
	return adj, nil
}

// parseConflicts turns "a,b;c,d" into the adjacency shape
// schedule.ConflictGroups consumes: every pair within a ';'-separated
// group conflicts.
func parseConflicts(s string) map[string][]string {
	adj := map[string][]string{}
	for _, group := range strings.Split(s, ";") {
		members := splitList(group)
		for _, p := range members {
			for _, o := range members {
				if o != p {
					adj[p] = append(adj[p], o)
				}
			}
		}
	}
	if len(adj) == 0 {
		return nil
	}
	return adj
}
