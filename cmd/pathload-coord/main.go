// Command pathload-coord is the fleet coordinator: it owns a table of
// paths, leases them to `pathload -agent` processes with
// heartbeat-renewed TTLs, rebalances when agents die, and serves the
// federated time series every agent pushes back on the usual scrape
// surface (/metrics, /series, /mrtg) plus a /coord status page.
//
// Example — two agents splitting four simulated paths:
//
//	pathload-coord -listen :8400 -export :9090 \
//	    -paths sim:0.2,sim:0.4,sim:0.6,sim:0.8 &
//	pathload -agent localhost:8400 -agent-name a1 &
//	pathload -agent localhost:8400 -agent-name a2 &
//	curl -s localhost:9090/metrics | grep availbw_samples_total
//
// Paths joined by -conflicts (groups separated by ';', members by ',')
// share a tight link: the coordinator leases each group whole, so the
// owning agent can stagger its members locally:
//
//	pathload-coord -paths a,b,c,d -conflicts a,b;c,d
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"repro/internal/coord"
	"repro/internal/tsstore"
)

func main() {
	var (
		listen    = flag.String("listen", ":8400", "agent control listen address")
		export    = flag.String("export", "", "HTTP listen address for the federated store and /coord status (e.g. :9090)")
		paths     = flag.String("paths", "", "comma-separated path identifiers to keep measured (required); agents resolve them (sim:<util>[@seed] or a pathload-snd address)")
		conflicts = flag.String("conflicts", "", "conflict groups: members separated by ',', groups by ';' (e.g. a,b;c,d); each group is leased whole")
		ttl       = flag.Duration("ttl", coord.DefaultTTL, "agent liveness TTL: an agent missing heartbeats this long loses its leases")
		epoch     = flag.Duration("epoch", coord.DefaultEpoch, "rebalance cadence")
		budget    = flag.Float64("budget", 0, "fleet-wide probe bit-rate budget in Mb/s, split across agents by leased-path count (0 = uncapped)")
	)
	flag.Parse()

	pathList := splitList(*paths)
	if len(pathList) == 0 {
		fmt.Fprintln(os.Stderr, "pathload-coord: -paths is required")
		os.Exit(2)
	}
	srv, err := coord.NewServer(coord.ServerConfig{
		Coord: coord.Config{
			Paths:     pathList,
			Conflicts: parseConflicts(*conflicts),
			TTL:       *ttl,
			Epoch:     *epoch,
			Budget:    *budget * 1e6,
		},
		Store:    tsstore.Config{},
		AutoTick: true,
		OnEvent:  func(line string) { fmt.Printf("coord: %s\n", line) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload-coord: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathload-coord: -listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("coord: control listening on %s (%d paths, ttl %v, epoch %v)\n",
		ln.Addr(), len(pathList), *ttl, *epoch)

	if *export != "" {
		eln, err := net.Listen("tcp", *export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathload-coord: -export: %v\n", err)
			os.Exit(1)
		}
		url := fmt.Sprintf("http://%s/", eln.Addr())
		go func() {
			// Losing the scrape surface defeats the point of a
			// coordinator; fail loudly instead of serving nothing.
			err := http.Serve(eln, srv.Handler())
			fmt.Fprintf(os.Stderr, "pathload-coord: export: serving %s failed: %v\n", url, err)
			os.Exit(1)
		}()
		fmt.Printf("coord: exporting federated store on %s (endpoints: /metrics /series /mrtg /coord)\n", url)
	}

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "pathload-coord: %v\n", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// parseConflicts turns "a,b;c,d" into the adjacency shape
// schedule.ConflictGroups consumes: every pair within a ';'-separated
// group conflicts.
func parseConflicts(s string) map[string][]string {
	adj := map[string][]string{}
	for _, group := range strings.Split(s, ";") {
		members := splitList(group)
		for _, p := range members {
			for _, o := range members {
				if o != p {
					adj[p] = append(adj[p], o)
				}
			}
		}
	}
	if len(adj) == 0 {
		return nil
	}
	return adj
}
