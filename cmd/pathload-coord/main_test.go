package main

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestParseConflicts pins the hand-written grammar: groups by ';',
// members by ','; every pair within a group conflicts.
func TestParseConflicts(t *testing.T) {
	adj := parseConflicts("a,b;c,d,e")
	want := map[string][]string{
		"a": {"b"}, "b": {"a"},
		"c": {"d", "e"}, "d": {"c", "e"}, "e": {"c", "d"},
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	if !reflect.DeepEqual(adj, want) {
		t.Errorf("parseConflicts = %v, want %v", adj, want)
	}
	if got := parseConflicts(""); got != nil {
		t.Errorf("parseConflicts(\"\") = %v, want nil", got)
	}
}

// TestConflictsFromMesh derives adjacency from the canonical shapes and
// checks the shape-to-user path translation.
func TestConflictsFromMesh(t *testing.T) {
	paths := []string{"pA", "pB", "pC", "pD"}

	// Disjoint: no path shares any link; no adjacency at all.
	adj, err := conflictsFromMesh("disjoint", paths, 1)
	if err != nil {
		t.Fatalf("disjoint: %v", err)
	}
	if adj != nil {
		t.Errorf("disjoint adjacency = %v, want nil (no shared links)", adj)
	}

	// Tree: the root link is tight for everyone, so the adjacency is
	// complete — and expressed in the user's identifiers, not path-0N.
	adj, err = conflictsFromMesh("tree", paths, 1)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	if len(adj) != len(paths) {
		t.Fatalf("tree adjacency covers %d paths, want %d: %v", len(adj), len(paths), adj)
	}
	for p, members := range adj {
		if !strings.HasPrefix(p, "p") || len(p) != 2 {
			t.Errorf("tree: adjacency key %q not translated to a user path id", p)
		}
		if len(members) != len(paths)-1 {
			t.Errorf("tree: %s conflicts with %v, want all %d others", p, members, len(paths)-1)
		}
		if !sort.StringsAreSorted(members) {
			t.Errorf("tree: members of %s not sorted: %v", p, members)
		}
	}

	// Unknown shape errors and names the valid set.
	if _, err := conflictsFromMesh("pretzel", paths, 1); err == nil || !strings.Contains(err.Error(), "star") {
		t.Errorf("unknown shape: err = %v, want mention of valid shapes", err)
	}
}
