package pathload_test

import (
	"math/rand"
	"testing"
	"time"

	pathload "repro"
)

// onlineAbortStream simulates the documented online majority-so-far
// rule on a scripted lossy vector: the fleet aborts at the earliest
// stream i (1-based count i+1) where at least two and a strict
// majority of the streams so far are moderately lossy. It returns the
// number of streams actually sent and whether the fleet aborted.
func onlineAbortStream(lossy []bool) (streams int, aborted bool) {
	cum := 0
	for i := range lossy {
		if lossy[i] {
			cum++
			if cum >= 2 && 2*cum > i+1 {
				return i + 1, true
			}
		}
	}
	return len(lossy), false
}

// fullFleetAbort is the paper's §V-A fleet-level rule evaluated after
// the fact: abort iff a strict majority of all N streams was
// moderately lossy.
func fullFleetAbort(lossy []bool) bool {
	cum := 0
	for _, l := range lossy {
		if l {
			cum++
		}
	}
	return 2*cum > len(lossy)
}

// TestLossPolicyCalibration sweeps loss regimes — per-stream moderate-
// loss probabilities from 0 to 0.9 — and calibrates the online
// majority-so-far abort rule against the full-fleet rule it
// approximates:
//
//  1. The implementation (pathload.Run) agrees with the documented
//     online rule exactly — streams sent and abort verdict — on every
//     scripted vector.
//  2. Dominance: whenever the full-fleet rule would abort, the online
//     rule also aborts, after at most N streams — the online rule
//     never lets a majority-lossy fleet run to completion.
//  3. Quorum boundary: the online rule never aborts on fewer than two
//     lossy streams, and any abort point has a strict majority of
//     lossy streams so far.
//
// The sweep also quantifies what the online rule buys: the mean number
// of streams saved per aborted fleet in each regime (logged, not
// asserted — the savings are a property of the regime, the agreement
// is the contract).
func TestLossPolicyCalibration(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		trials, aborts, saved := 0, 0, 0
		fullAborts := 0
		for trial := 0; trial < 40; trial++ {
			lossy := make([]bool, n)
			for i := range lossy {
				lossy[i] = rng.Float64() < p
			}
			trials++

			wantStreams, wantAbort := onlineAbortStream(lossy)

			// 1. The implementation matches the documented rule
			// exactly: same abort decision at the same stream.
			trace := runLossFleet(t, lossy)
			gotAbort := trace.Verdict == pathload.FleetAborted
			if gotAbort != wantAbort || len(trace.Streams) != wantStreams {
				t.Fatalf("p=%.1f trial %d lossy=%v: Run sent %d streams (abort=%v), documented rule says %d (abort=%v)",
					p, trial, lossy, len(trace.Streams), gotAbort, wantStreams, wantAbort)
			}

			// 2. Dominance over the full-fleet rule.
			if fullFleetAbort(lossy) {
				fullAborts++
				if !wantAbort {
					t.Fatalf("p=%.1f trial %d lossy=%v: full-fleet rule aborts but online rule completed",
						p, trial, lossy)
				}
				if wantStreams > n {
					t.Fatalf("p=%.1f trial %d: online abort after %d > N streams", p, trial, wantStreams)
				}
				saved += n - wantStreams
			}

			// 3. Quorum boundaries at the abort point.
			if wantAbort {
				aborts++
				cum := 0
				for i := 0; i < wantStreams; i++ {
					if lossy[i] {
						cum++
					}
				}
				if cum < 2 {
					t.Fatalf("p=%.1f trial %d: aborted on %d lossy streams, quorum is 2", p, trial, cum)
				}
				if 2*cum <= wantStreams {
					t.Fatalf("p=%.1f trial %d: aborted without a strict majority (%d of %d)", p, trial, cum, wantStreams)
				}
				// And it was the earliest such stream: one stream prior
				// the condition must not hold.
				prevCum := cum
				if lossy[wantStreams-1] {
					prevCum--
				}
				if wantStreams > 1 && prevCum >= 2 && 2*prevCum > wantStreams-1 {
					t.Fatalf("p=%.1f trial %d: abort at stream %d was not the earliest", p, trial, wantStreams)
				}
			}
		}
		if fullAborts > 0 {
			t.Logf("p=%.1f: %d/%d fleets aborted online (%d under the full-fleet rule); online abort saves %.1f streams per majority-lossy fleet",
				p, aborts, trials, fullAborts, float64(saved)/float64(fullAborts))
		} else {
			t.Logf("p=%.1f: %d/%d fleets aborted online; none were majority-lossy over all %d streams", p, aborts, trials, n)
		}
	}
}

// TestLossPolicySingleStreamAbort pins the other loss boundary: one
// stream above StreamAbortLoss (10%) condemns the fleet immediately,
// independent of the majority machinery.
func TestLossPolicySingleStreamAbort(t *testing.T) {
	res, err := pathload.Run(&heavyLossScript{abortOn: 2}, pathload.Config{
		PacketsPerStream: 100,
		StreamsPerFleet:  12,
		MaxFleets:        1,
		DisableInitProbe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := res.Fleets[0]
	if trace.Verdict != pathload.FleetAborted {
		t.Fatalf("verdict = %v, want aborted", trace.Verdict)
	}
	if len(trace.Streams) != 3 {
		t.Fatalf("streams = %d, want 3 (abort at the heavy-loss stream)", len(trace.Streams))
	}
}

// heavyLossScript drops 20% of one scripted stream — above the 10%
// single-stream abort level — and nothing elsewhere.
type heavyLossScript struct {
	abortOn int
}

func (s *heavyLossScript) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	drop := 0
	if spec.Index == s.abortOn {
		drop = spec.K / 5
	}
	res := pathload.StreamResult{Sent: spec.K}
	for i := 0; i < spec.K-drop; i++ {
		res.OWDs = append(res.OWDs, pathload.OWDSample{Seq: i, OWD: 5 * time.Millisecond})
	}
	return res, nil
}

func (s *heavyLossScript) Idle(d time.Duration) error { return nil }
func (s *heavyLossScript) RTT() time.Duration         { return time.Millisecond }
