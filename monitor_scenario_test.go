package pathload_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/crosstraffic"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// scenarioPaths is the fleet size of the determinism scenario; the
// monitor must drive at least this many concurrent simulated paths.
const scenarioPaths = 64

// scenarioTopology derives path i's topology: capacities cycle through
// the paper's link classes and the utilization sweeps [0.15, 0.75], so
// every path has its own avail-bw ground truth.
func scenarioTopology(i int) experiments.Topology {
	caps := []float64{6.1e6, 10e6, 12.4e6, 24e6}
	return experiments.Topology{
		Hops:          1,
		TightCap:      caps[i%len(caps)],
		TightUtil:     0.15 + 0.60*float64(i)/float64(scenarioPaths-1),
		SourcesPerHop: 4,
		Model:         crosstraffic.ModelCBR,
		Seed:          1000 + int64(i),
	}
}

// runScenario builds the fleet, warms every shard in parallel on a
// lockstep clock, monitors all paths for two rounds, and returns the
// samples plus a canonical transcript (wall clocks excluded).
func runScenario(t *testing.T) ([]pathload.Sample, string) {
	t.Helper()
	nets := make([]*experiments.Net, scenarioPaths)
	sims := make([]*netsim.Simulator, scenarioPaths)
	for i := range nets {
		nets[i] = scenarioTopology(i).Build()
		sims[i] = nets[i].Sim
	}
	// Parallel warmup: 64 shards, one lockstep barrier.
	netsim.NewLockstep(0, sims...).AdvanceTo(2 * netsim.Second)

	m, err := pathload.NewMonitor(pathload.MonitorConfig{
		Workers:  8,
		Rounds:   2,
		Interval: 50 * time.Millisecond,
		Jitter:   0.3,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nets {
		p := simprobe.New(n.Sim, n.Links, 10*netsim.Millisecond)
		if err := m.AddPath(fmt.Sprintf("path-%02d", i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	var samples []pathload.Sample
	for s := range m.Results() {
		if s.Err != nil {
			t.Fatalf("%s round %d: %v", s.Path, s.Round, s.Err)
		}
		samples = append(samples, s)
	}
	m.Wait()

	sorted := append([]pathload.Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Path != sorted[j].Path {
			return sorted[i].Path < sorted[j].Path
		}
		return sorted[i].Round < sorted[j].Round
	})
	var b strings.Builder
	for _, s := range sorted {
		r := s.Result
		fmt.Fprintf(&b, "%s r%d @%v [%.4f,%.4f] grey=%v[%.4f,%.4f] adr=%.4f fleets=%d elapsed=%v\n",
			s.Path, s.Round, s.At, r.Lo/1e6, r.Hi/1e6, r.GreySet, r.GreyLo/1e6, r.GreyHi/1e6,
			r.ADR/1e6, len(r.Fleets), r.Elapsed)
	}
	return samples, b.String()
}

// TestMonitorScenario64Paths is the headline scenario: 64 concurrent
// simulated paths with known per-path cross traffic must each converge
// to their own avail-bw range, and the whole transcript must be
// byte-identical across independent runs (fresh simulators, same
// seeds) regardless of goroutine scheduling.
func TestMonitorScenario64Paths(t *testing.T) {
	samples, transcript := runScenario(t)

	if len(samples) != 2*scenarioPaths {
		t.Fatalf("%d samples, want %d", len(samples), 2*scenarioPaths)
	}
	slack := pathload.DefaultResolution + pathload.DefaultGreyResolution
	for _, s := range samples {
		var i int
		fmt.Sscanf(s.Path, "path-%d", &i)
		a := scenarioTopology(i).AvailBw()
		if s.Result.Lo-slack > a || s.Result.Hi+slack < a {
			t.Errorf("%s round %d: range [%.2f, %.2f] Mb/s misses true avail-bw %.2f Mb/s",
				s.Path, s.Round, s.Result.Lo/1e6, s.Result.Hi/1e6, a/1e6)
		}
	}

	_, again := runScenario(t)
	if transcript != again {
		t.Errorf("transcripts differ between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", transcript, again)
	}
}
