// Benchmarks regenerating every figure of the paper's evaluation, plus
// micro-benchmarks of the building blocks. Figure benchmarks run the
// corresponding experiment at a reduced Scale so `go test -bench .`
// finishes in minutes; `cmd/repro -all` runs them at paper scale.
// Figure benchmarks report figure-specific metrics (range centers,
// bracketing, ρ percentiles, overshoots) via b.ReportMetric, so the
// bench output doubles as a compact reproduction table.
package pathload_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simprobe"
	"repro/internal/tcpsim"

	pathload "repro"
)

// benchOpt returns the standard scaled-down options for figure
// benchmarks, varying the seed across b.N iterations.
func benchOpt(i int) experiments.Options {
	return experiments.Options{Scale: 0.08, Seed: int64(1 + i)}
}

// BenchmarkFig01OWDTraceAbove reproduces Fig. 1: a stream probing above
// the avail-bw must classify as increasing. Reported metric:
// OWD rise in milliseconds over the stream.
func BenchmarkFig01OWDTraceAbove(b *testing.B) {
	var rise float64
	for i := 0; i < b.N; i++ {
		traces := experiments.OWDTraces(benchOpt(i))
		rise = traces[0].RiseMs
		if traces[0].Kind != "I" {
			b.Fatalf("fig1 stream classified %q, want increasing", traces[0].Kind)
		}
	}
	b.ReportMetric(rise, "owd-rise-ms")
}

// BenchmarkFig02OWDTraceBelow reproduces Fig. 2: probing below the
// avail-bw must not show a trend.
func BenchmarkFig02OWDTraceBelow(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		traces := experiments.OWDTraces(benchOpt(i))
		pct = traces[1].PCT
		if traces[1].Kind == "I" {
			b.Fatalf("fig2 stream classified increasing below the avail-bw")
		}
	}
	b.ReportMetric(pct, "pct")
}

// BenchmarkFig03OWDTraceGrey reproduces Fig. 3: probing near the
// avail-bw, where the trend comes and goes with the avail-bw process.
func BenchmarkFig03OWDTraceGrey(b *testing.B) {
	var pdt float64
	for i := 0; i < b.N; i++ {
		traces := experiments.OWDTraces(benchOpt(i))
		pdt = traces[2].PDT
	}
	b.ReportMetric(pdt, "pdt")
}

// reportAccuracy folds an accuracy sweep into bracketing rate and mean
// absolute center error.
func reportAccuracy(b *testing.B, pts []experiments.AccuracyPoint) {
	b.Helper()
	brackets, centerErr := 0.0, 0.0
	for _, p := range pts {
		if p.Contained {
			brackets++
		}
		e := p.CenterErr
		if e < 0 {
			e = -e
		}
		centerErr += e
	}
	b.ReportMetric(brackets/float64(len(pts)), "bracket-rate")
	b.ReportMetric(centerErr/float64(len(pts))*100, "center-err-%")
}

// BenchmarkFig05AccuracyVsLoad reproduces Fig. 5 (accuracy across
// tight-link loads and traffic models).
func BenchmarkFig05AccuracyVsLoad(b *testing.B) {
	var pts []experiments.AccuracyPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig5(benchOpt(i))
	}
	reportAccuracy(b, pts)
}

// BenchmarkFig06AccuracyVsNonTightLoad reproduces Fig. 6.
func BenchmarkFig06AccuracyVsNonTightLoad(b *testing.B) {
	var pts []experiments.AccuracyPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig6(benchOpt(i))
	}
	reportAccuracy(b, pts)
}

// BenchmarkFig07AccuracyVsTightness reproduces Fig. 7. The interesting
// metric is the center error at β = 1 (every link tight), the paper's
// documented underestimation regime.
func BenchmarkFig07AccuracyVsTightness(b *testing.B) {
	var pts []experiments.AccuracyPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig7(benchOpt(i))
	}
	var worst float64
	for _, p := range pts {
		if p.Param == 1 && p.CenterErr < worst {
			worst = p.CenterErr
		}
	}
	reportAccuracy(b, pts)
	b.ReportMetric(worst*100, "beta1-center-err-%")
}

// BenchmarkFig08FleetFraction reproduces Fig. 8: the reported range
// width must grow with the fleet agreement fraction f.
func BenchmarkFig08FleetFraction(b *testing.B) {
	var pts []experiments.SensitivityPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig8(experiments.Options{Seed: int64(1 + i)})
	}
	b.ReportMetric(pts[0].Width()/1e6, "width-f-lo-mbps")
	b.ReportMetric(pts[len(pts)-1].Width()/1e6, "width-f-hi-mbps")
}

// BenchmarkFig09PDTThreshold reproduces Fig. 9: range centers at the
// extreme thresholds (under- and over-estimation).
func BenchmarkFig09PDTThreshold(b *testing.B) {
	var pts []experiments.SensitivityPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig9(experiments.Options{Seed: int64(1 + i)})
	}
	lo := (pts[0].Lo + pts[0].Hi) / 2
	hi := (pts[len(pts)-1].Lo + pts[len(pts)-1].Hi) / 2
	b.ReportMetric(lo/1e6, "center-thr-lo-mbps")
	b.ReportMetric(hi/1e6, "center-thr-hi-mbps")
	b.ReportMetric(pts[0].TrueA/1e6, "true-a-mbps")
}

// BenchmarkFig10MRTGVerification reproduces Fig. 10: the fraction of
// runs whose weighted pathload average lands in the quantized MRTG
// bucket.
func BenchmarkFig10MRTGVerification(b *testing.B) {
	var runs []experiments.VerificationRun
	for i := 0; i < b.N; i++ {
		runs = experiments.Fig10(benchOpt(i))
	}
	within := 0
	for _, r := range runs {
		if r.Within {
			within++
		}
	}
	b.ReportMetric(float64(within)/float64(len(runs)), "within-rate")
}

// reportRho reports the 75th-percentile ρ of the first and last
// condition of a dynamics figure — the pair the paper quotes.
func reportRho(b *testing.B, cdfs []experiments.DynamicsCDF) {
	b.Helper()
	b.ReportMetric(cdfs[0].P(75), "rho75-first")
	b.ReportMetric(cdfs[len(cdfs)-1].P(75), "rho75-last")
}

// BenchmarkFig11VariabilityVsLoad reproduces Fig. 11: ρ should rise
// several-fold from light to heavy load.
func BenchmarkFig11VariabilityVsLoad(b *testing.B) {
	var cdfs []experiments.DynamicsCDF
	for i := 0; i < b.N; i++ {
		cdfs = experiments.Fig11(benchOpt(i))
	}
	reportRho(b, cdfs)
}

// BenchmarkFig12VariabilityVsMultiplexing reproduces Fig. 12: ρ should
// fall as the tight link's statistical multiplexing grows.
func BenchmarkFig12VariabilityVsMultiplexing(b *testing.B) {
	var cdfs []experiments.DynamicsCDF
	for i := 0; i < b.N; i++ {
		cdfs = experiments.Fig12(benchOpt(i))
	}
	reportRho(b, cdfs)
}

// BenchmarkFig13VariabilityVsStreamLength reproduces Fig. 13: ρ should
// fall as the stream (averaging timescale) lengthens.
func BenchmarkFig13VariabilityVsStreamLength(b *testing.B) {
	var cdfs []experiments.DynamicsCDF
	for i := 0; i < b.N; i++ {
		cdfs = experiments.Fig13(benchOpt(i))
	}
	reportRho(b, cdfs)
}

// BenchmarkFig14VariabilityVsFleetLength reproduces Fig. 14: ρ should
// rise with the fleet length.
func BenchmarkFig14VariabilityVsFleetLength(b *testing.B) {
	var cdfs []experiments.DynamicsCDF
	for i := 0; i < b.N; i++ {
		cdfs = experiments.Fig14(benchOpt(i))
	}
	reportRho(b, cdfs)
}

// BenchmarkFig15BTCThroughput reproduces Fig. 15: BTC overshoot
// relative to the surrounding avail-bw, and the avail-bw collapse while
// it runs.
func BenchmarkFig15BTCThroughput(b *testing.B) {
	var res experiments.BTCResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig15and16(experiments.Options{Scale: 0.3, Seed: int64(1 + i)})
	}
	b.ReportMetric(res.Overshoot*100, "overshoot-%")
	var busyAvail float64
	for _, iv := range res.Intervals {
		if iv.BTCActive {
			busyAvail += iv.Avail / 2
		}
	}
	b.ReportMetric(busyAvail/1e6, "avail-during-btc-mbps")
}

// BenchmarkFig16BTCRTTInflation reproduces Fig. 16: RTT inflation under
// the BTC connection.
func BenchmarkFig16BTCRTTInflation(b *testing.B) {
	var res experiments.BTCResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig15and16(experiments.Options{Scale: 0.3, Seed: int64(1 + i)})
	}
	b.ReportMetric(res.RTTQuiet*1e3, "rtt-quiet-ms")
	b.ReportMetric(res.RTTBusyP95*1e3, "rtt-busy-p95-ms")
}

// BenchmarkFig17PathloadNonIntrusiveAvail reproduces Fig. 17: avail-bw
// change while pathload probes (should be ≈ 0).
func BenchmarkFig17PathloadNonIntrusiveAvail(b *testing.B) {
	var res experiments.IntrusiveResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig17and18(experiments.Options{Scale: 0.3, Seed: int64(1 + i)})
	}
	b.ReportMetric(res.AvailChange*100, "avail-change-%")
	b.ReportMetric(float64(res.ProbeStreamsLost), "streams-with-loss")
}

// BenchmarkFig18PathloadNonIntrusiveRTT reproduces Fig. 18: RTT change
// while pathload probes (should be ≈ 0).
func BenchmarkFig18PathloadNonIntrusiveRTT(b *testing.B) {
	var res experiments.IntrusiveResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig17and18(experiments.Options{Scale: 0.3, Seed: int64(1 + i)})
	}
	b.ReportMetric(res.RTTChange*100, "rtt-change-%")
	b.ReportMetric(float64(res.PingsLost), "pings-lost")
}

// BenchmarkBaselineCprobeVsPathload reproduces the §II separation: the
// dispersion baseline's overestimation of the avail-bw versus
// pathload's center error, at 60% tight-link load.
func BenchmarkBaselineCprobeVsPathload(b *testing.B) {
	var pts []experiments.BaselinePoint
	for i := 0; i < b.N; i++ {
		pts = experiments.BaselineComparison(experiments.Options{Seed: int64(1 + i)})
	}
	p := pts[2] // u = 60%
	b.ReportMetric((p.Cprobe-p.TrueA)/p.TrueA*100, "cprobe-overest-%")
	b.ReportMetric(((p.PathloadL+p.PathloadH)/2-p.TrueA)/p.TrueA*100, "pathload-err-%")
}

// BenchmarkTimescaleVariance reproduces the §I variance-vs-τ relation:
// the ratio of the avail-bw process σ at 10 ms and 2.56 s timescales.
func BenchmarkTimescaleVariance(b *testing.B) {
	var cdfs []experiments.TimescaleCDF
	for i := 0; i < b.N; i++ {
		cdfs = experiments.TimescaleVariance(experiments.Options{Scale: 0.3, Seed: int64(1 + i)})
	}
	for _, c := range cdfs {
		if len(c.Points) >= 2 {
			first, last := c.Points[0], c.Points[len(c.Points)-1]
			b.ReportMetric(first.StdDev/last.StdDev, "sigma-decay-"+c.Model)
		}
	}
}

// --- Ablation benchmarks (design choices DESIGN.md calls out) ---

// BenchmarkAblationTrendMetrics compares stream classification with
// PCT only, PDT only, and both, on the default topology at the true
// avail-bw boundary. Reported: bracketing of each variant's result.
func BenchmarkAblationTrendMetrics(b *testing.B) {
	variants := []struct {
		name string
		cfg  pathload.Config
	}{
		{"both", pathload.Config{}},
		{"pct-only", pathload.Config{DisablePDT: true}},
		{"pdt-only", pathload.Config{DisablePCT: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var center float64
			for i := 0; i < b.N; i++ {
				net := experiments.Topology{Seed: int64(100 + i)}.Build()
				net.Warmup(3 * netsim.Second)
				prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
				res, err := pathload.Run(prober, v.cfg)
				if err != nil {
					b.Fatal(err)
				}
				center = res.Mid() / 1e6
			}
			b.ReportMetric(center, "center-mbps")
			b.ReportMetric(4.0, "true-a-mbps")
		})
	}
}

// BenchmarkAblationMedianGroups compares the paper's Γ = √K grouping
// against coarser and finer groupings.
func BenchmarkAblationMedianGroups(b *testing.B) {
	for _, gamma := range []int{5, 10, 25} {
		b.Run(map[int]string{5: "gamma5", 10: "gamma10-paper", 25: "gamma25"}[gamma], func(b *testing.B) {
			var center float64
			for i := 0; i < b.N; i++ {
				net := experiments.Topology{Seed: int64(200 + i)}.Build()
				net.Warmup(3 * netsim.Second)
				prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
				res, err := pathload.Run(prober, pathload.Config{MedianGroups: gamma})
				if err != nil {
					b.Fatal(err)
				}
				center = res.Mid() / 1e6
			}
			b.ReportMetric(center, "center-mbps")
		})
	}
}

// BenchmarkAblationInterStreamGap measures how the Δ = 9τ inter-stream
// rule trades probing time against fleet-level interference: a smaller
// gap probes faster but self-congests.
func BenchmarkAblationInterStreamGap(b *testing.B) {
	for _, gap := range []int{1, 4, 9} {
		b.Run(map[int]string{1: "delta1tau", 4: "delta4tau", 9: "delta9tau-paper"}[gap], func(b *testing.B) {
			var center, elapsed float64
			for i := 0; i < b.N; i++ {
				net := experiments.Topology{Seed: int64(300 + i)}.Build()
				net.Warmup(3 * netsim.Second)
				prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
				res, err := pathload.Run(prober, pathload.Config{InterStreamRTTs: gap})
				if err != nil {
					b.Fatal(err)
				}
				center = res.Mid() / 1e6
				elapsed = res.Elapsed.Seconds()
			}
			b.ReportMetric(center, "center-mbps")
			b.ReportMetric(elapsed, "probe-seconds")
		})
	}
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkTrendClassification measures the per-stream analysis cost
// (median groups + PCT + PDT) at the default K = 100.
func BenchmarkTrendClassification(b *testing.B) {
	owds := make([]float64, 100)
	for i := range owds {
		owds[i] = 0.05 + 0.0001*float64(i%7) + 0.00002*float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ClassifyOWDs(owds, core.TrendConfig{})
	}
}

// BenchmarkControllerSearch measures a full binary search against a
// synthetic oracle.
func BenchmarkControllerSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctrl, err := core.NewController(core.ControllerConfig{
			MaxRate: 120e6, Resolution: 1e6, GreyResolution: 1.5e6,
		})
		if err != nil {
			b.Fatal(err)
		}
		for !ctrl.Done() {
			if ctrl.Rate() > 40e6 {
				ctrl.Record(core.VerdictAbove)
			} else {
				ctrl.Record(core.VerdictBelow)
			}
		}
	}
}

// BenchmarkSimulatorPacketForwarding measures raw simulator throughput:
// packets per second through a 5-hop path with cross traffic.
func BenchmarkSimulatorPacketForwarding(b *testing.B) {
	net := experiments.Topology{Seed: 1}.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Sim.RunFor(100 * netsim.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Sim.Events())/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkPathloadRunSimulated measures one full measurement on the
// default topology — the headline "what does a measurement cost" bench.
func BenchmarkPathloadRunSimulated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := experiments.Topology{Seed: int64(i)}.Build()
		net.Warmup(3 * netsim.Second)
		prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
		if _, err := pathload.Run(prober, pathload.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPBulkTransfer measures simulated TCP goodput processing
// cost: one second of a saturating bulk flow.
func BenchmarkTCPBulkTransfer(b *testing.B) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 100e6, 5*netsim.Millisecond, 256<<10)
	flow := tcpsim.NewFlow(sim, "bench", []*netsim.Link{link}, 5*netsim.Millisecond, tcpsim.Config{})
	flow.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunFor(netsim.Second)
	}
	b.StopTimer()
	if flow.Delivered() == 0 {
		b.Fatal("bulk flow delivered nothing")
	}
}

// BenchmarkStreamParams measures the stream parameter computation.
func BenchmarkStreamParams(b *testing.B) {
	cfg := pathload.Config{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.StreamParams(float64(1+i%100) * 1e6)
	}
}

// BenchmarkProbeStream measures the cost of one simulated probe stream
// (inject, queue, deliver, collect) including analysis.
func BenchmarkProbeStream(b *testing.B) {
	net := experiments.Topology{Seed: 5}.Build()
	net.Warmup(3 * netsim.Second)
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
	cfg := pathload.Config{}
	l, t := cfg.StreamParams(4e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prober.SendStream(pathload.StreamSpec{Rate: 4e6, K: 100, L: l, T: t}); err != nil {
			b.Fatal(err)
		}
		prober.Idle(50 * time.Millisecond)
	}
}
