package pathload

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/schedule"
)

// Monitor defaults.
const (
	// DefaultMonitorWorkers bounds how many paths measure at once.
	DefaultMonitorWorkers = 4
)

// A Driver owns a monitor's notion of time and session lifecycle: how
// sessions wait out their re-measurement gaps, where they announce
// round boundaries and end-of-life, and who advances the clock. The
// default (nil Driver) is wall time — gaps pass through the prober's
// own Idle, round boundaries and retirement are no-ops — which is
// byte-identical to the monitor's original loop. A sequenced driver
// (internal/simprobe.SequencedDriver) instead parks every session at a
// fleet round barrier and spends gaps in virtual time, so a whole
// monitored fleet over one shared simulation advances on one virtual
// clock with a scheduling-independent interleave.
//
// Call ordering per session, all from that session's goroutine:
// RoundEnd after each published non-final round, then Gap (live
// prober) or Sleep (no prober) for the scheduler's gap, and Retire
// exactly once when the session ends — whatever the cause. Drive is
// called once by the monitor, on its own goroutine, at Start.
type Driver interface {
	// RoundEnd announces that path finished round and will schedule
	// another. A barrier-based driver blocks here until every live
	// session has also finished its round.
	RoundEnd(path string, round int)
	// Gap spends the scheduler's re-measurement gap for path, whose
	// live prober is p. An error ends or heals the session exactly as a
	// failed Prober.Idle does.
	Gap(path string, p Prober, gap time.Duration) error
	// Sleep waits d for a session with no live prober (reconnect
	// backoff, gaps while the transport is down), reporting false when
	// stop closes first.
	Sleep(d time.Duration, stop <-chan struct{}) bool
	// Retire announces path's end-of-life so the driver stops waiting
	// on it. It must be safe to call whether or not the session ever
	// reached RoundEnd.
	Retire(path string)
	// Drive runs the driver's loop, returning when every session has
	// retired.
	Drive()
}

// wallDriver is the nil-Driver default: wall-clock time, no barriers.
// Its behavior is exactly the monitor's original loop, so legacy
// wall-clock runs stay byte-identical.
type wallDriver struct{}

func (wallDriver) RoundEnd(string, int) {}

func (wallDriver) Gap(_ string, p Prober, gap time.Duration) error { return p.Idle(gap) }

func (wallDriver) Sleep(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

func (wallDriver) Retire(string) {}

func (wallDriver) Drive() {}

// MonitorConfig tunes a Monitor. The zero value is usable: it measures
// every path back-to-back (no re-measurement gap) with the paper's
// measurement defaults until Stop is called.
type MonitorConfig struct {
	// Workers bounds the number of measurements in flight at once
	// across all paths (the worker pool size). 0 selects
	// DefaultMonitorWorkers.
	Workers int
	// Interval is the target idle gap between one path's consecutive
	// measurements, spent in the prober's Idle (virtual time under the
	// simulator, wall time on a real network). 0 re-measures
	// immediately.
	Interval time.Duration
	// Jitter spreads each gap uniformly over
	// [(1−Jitter)·Interval, (1+Jitter)·Interval], desynchronizing
	// paths that would otherwise probe in phase. Must lie in [0, 1].
	Jitter float64
	// Rounds is the number of measurements per path; 0 runs until
	// Stop.
	Rounds int
	// Buffer is the results channel capacity; 0 selects one slot per
	// path, which lets every path finish a round without a consumer.
	Buffer int
	// Seed derives the per-path jitter streams; a fixed seed makes the
	// schedule reproducible. 0 selects 1.
	Seed int64
	// Config is the measurement configuration applied to every round
	// on every path.
	Config Config
	// Store, when non-nil, additionally receives every sample the
	// monitor produces, before the Results channel sees it. Use it to
	// retain time series (internal/tsstore) without giving up the live
	// channel. When the sink also implements schedule.VarSource (as
	// internal/tsstore.Store does), schedulers get windowed-ρ feedback
	// from it.
	Store SampleSink
	// Scheduler decides each path's re-measurement gap. nil selects
	// schedule.Fixed{Interval, Jitter, Seed} — byte-identical to the
	// monitor's original jittered schedule. A scheduler that reports
	// ok == false ends that path's session cleanly (its schedule is
	// exhausted), independent of Rounds.
	Scheduler schedule.Scheduler
	// Admission gates measurement starts across the fleet. nil selects
	// schedule.NewWorkers(Workers), the original bounded worker pool;
	// schedule.NewStagger keeps paths that share a tight link from
	// co-probing (feed it mesh.Mesh.TightOverlaps). When Admission is
	// set, Workers only applies through the policy itself.
	Admission schedule.Admission
	// Reconnect tunes how factory-backed sessions (AddPathFactory)
	// heal after a transport failure. The zero value selects the
	// defaults documented on the Reconnect type; it is ignored for
	// paths added with AddPath.
	Reconnect Reconnect
	// Resume, when non-nil, supplies the starting PathState for every
	// path at Start (paths registered with explicit state via
	// AddPathFactoryResume keep it; all others — AddPath and
	// AddPathFactory alike — consult the hook). Wire it to
	// tsstore.Resume over a store recovered from a durable archive and
	// a restarted monitor continues every series where it left off —
	// monotone rounds, advancing path-local clocks — instead of
	// rewinding to round 0. Returning the zero PathState means a fresh
	// path; negative state makes Start fail.
	Resume func(path string) PathState
	// Driver, when non-nil, takes over time and session lifecycle (see
	// the Driver interface). Setting it restricts the monitor to
	// AddPath sessions with nil Admission: factory healing needs wall
	// time, and an admission policy that blocks a session would stall a
	// barrier-based driver's fleet round. The monitor then admits all
	// sessions unconditionally — interleave control is the driver's
	// job. nil keeps the original wall-clock loop.
	Driver Driver
}

// A ProberFactory dials a fresh Prober for one path. The monitor calls
// it whenever the path needs a (re)connection: once before the first
// round, and again after any round whose transport failed. It owns the
// probers it receives from the factory and closes those that implement
// io.Closer when they fail or when the session ends.
type ProberFactory func() (Prober, error)

// Reconnect is the heal policy for factory-backed sessions: when a
// round fails on a real transport, the session closes the prober,
// re-dials through the path's ProberFactory with exponential backoff,
// and carries on — a long-lived monitor must outlive sender restarts,
// route flaps, and idle-killed control connections.
type Reconnect struct {
	// Backoff is the wait before the first re-dial (default 500 ms);
	// it doubles after each consecutive dial failure.
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 15 s).
	MaxBackoff time.Duration
	// MaxAttempts ends the session after this many consecutive dial
	// failures, publishing a terminal error sample. 0 keeps trying
	// until Stop.
	MaxAttempts int
}

// withDefaults returns r with zero fields replaced by defaults.
func (r Reconnect) withDefaults() Reconnect {
	if r.Backoff == 0 {
		r.Backoff = 500 * time.Millisecond
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = 15 * time.Second
	}
	if r.MaxBackoff < r.Backoff {
		r.MaxBackoff = r.Backoff
	}
	return r
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c MonitorConfig) withDefaults(paths int) MonitorConfig {
	if c.Workers == 0 {
		c.Workers = DefaultMonitorWorkers
	}
	if c.Buffer == 0 {
		c.Buffer = paths
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c MonitorConfig) validate() error {
	if c.Workers < 0 || c.Rounds < 0 || c.Buffer < 0 || c.Interval < 0 {
		return fmt.Errorf("pathload: monitor config has negative Workers/Rounds/Buffer/Interval")
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		return fmt.Errorf("pathload: monitor Jitter %v outside [0,1]", c.Jitter)
	}
	if c.Reconnect.Backoff < 0 || c.Reconnect.MaxBackoff < 0 || c.Reconnect.MaxAttempts < 0 {
		return fmt.Errorf("pathload: monitor Reconnect has negative Backoff/MaxBackoff/MaxAttempts")
	}
	return schedule.Validate(c.Scheduler)
}

// A Sample is one timestamped point of a path's avail-bw time series.
type Sample struct {
	// Path is the identifier given to AddPath.
	Path string
	// Round counts the path's measurements from 0.
	Round int
	// At is the path-local time offset of the measurement start: the
	// accumulated probing, idle, and reconnect-backoff durations since
	// the session began. Under the simulator it is exact virtual time,
	// so it is reproducible run-to-run; Wall is not.
	At time.Duration
	// Wall is the wall-clock completion time of the round.
	Wall time.Time
	// Result is the measurement outcome; valid when Err is nil.
	Result Result
	// Err is the measurement error, if the round failed. The session
	// keeps running: transient failures on real networks should not
	// kill a long-lived monitor.
	Err error
}

// String formats the sample compactly, omitting the wall clock so the
// output is deterministic under the simulator.
func (s Sample) String() string {
	if s.Err != nil {
		return fmt.Sprintf("%s[%d] @%v error: %v", s.Path, s.Round, s.At, s.Err)
	}
	return fmt.Sprintf("%s[%d] @%v %v", s.Path, s.Round, s.At, s.Result)
}

// A SampleSink receives every Sample a Monitor produces, the retention
// side of the paper's dynamics viewpoint (§VI): the Results channel is
// for live consumption, a sink is for history. internal/tsstore.Store
// is the canonical implementation.
//
// Observe is called synchronously from each path's session goroutine,
// so implementations must be safe for concurrent use and should return
// quickly — a slow sink delays that path's next round. Unlike the
// Results channel, a sink sees every finished round unconditionally:
// samples a stopped or slow consumer would miss still reach the sink.
type SampleSink interface {
	Observe(Sample)
}

// PathState is where a path's session resumes counting: the next
// round number and the accumulated path-local clock. A coordinator
// agent that re-acquires a lease passes the state derived from its
// retained series (tsstore.Resume) so the path's sample stream stays
// monotone across monitor restarts instead of rewinding to round 0.
// The zero value is a fresh path.
type PathState struct {
	// Round is the round number the first new sample carries.
	Round int
	// At is the path-local time offset the first new sample starts at.
	At time.Duration
}

// session is the per-path state of a monitor.
type session struct {
	id      string
	prober  Prober         // nil on a factory-backed session awaiting (re)dial
	factory ProberFactory  // nil on AddPath sessions
	resume  PathState      // where run starts counting (zero = fresh)
	hist    sessionHistory // scheduler feedback, maintained by run
}

// closeProber releases a factory-owned prober; probers handed to
// AddPath stay the caller's to close.
func (s *session) closeProber() {
	if s.factory == nil || s.prober == nil {
		return
	}
	if c, ok := s.prober.(io.Closer); ok {
		c.Close()
	}
	s.prober = nil
}

// sessionHistory implements schedule.History for one session: the last
// finished round comes from the session's own state (always available,
// only ever touched from the session goroutine), windowed-ρ queries are
// answered by the configured Store when it can (tsstore), and report
// ok == false otherwise.
type sessionHistory struct {
	last     schedule.Round
	haveLast bool
	vars     schedule.VarSource // nil when the Store cannot answer
}

func (h *sessionHistory) LastRound(string) (schedule.Round, bool) { return h.last, h.haveLast }

func (h *sessionHistory) RelVar(path string, window time.Duration) (float64, bool) {
	if h.vars == nil {
		return 0, false
	}
	return h.vars.RelVar(path, window)
}

// A Monitor measures many paths concurrently and periodically, turning
// one-shot Run calls into streaming per-path avail-bw time series — the
// paper's "dynamics" viewpoint operationalized (§VI): each path gets a
// session whose re-measurement gaps come from a pluggable Scheduler
// (internal/schedule: fixed jittered intervals by default, ρ-adaptive
// or budgeted alternatives), an Admission policy gates how sessions
// probe simultaneously (a bounded worker pool by default, tight-link
// staggering optionally), and every finished round is published on
// Results as a timestamped Sample.
//
// Each path's Prober is only ever driven from that path's session
// goroutine, satisfying the Prober single-goroutine contract; paths
// never share measurement state, so per-path results are independent
// of worker scheduling. With deterministic probers (internal/simprobe
// on per-path simulators) the whole run is reproducible.
//
// Lifecycle: NewMonitor, AddPath (own prober) or AddPathFactory
// (monitor-dialed, reconnecting — the real-network mode) for every
// path, Start, consume Results; then either Wait (Rounds > 0) or Stop.
// Results is closed when every session has finished. Attach a
// SampleSink via MonitorConfig.Store to retain the per-path series
// beyond the channel (windowed ρ, quantiles, scrape export — see
// internal/tsstore).
type Monitor struct {
	cfg      MonitorConfig
	sessions []*session
	byID     map[string]bool
	results  chan Sample
	sched    schedule.Scheduler
	adm      schedule.Admission
	drv      Driver
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex
	started bool
}

// NewMonitor creates a monitor; add paths with AddPath, then Start.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg, byID: map[string]bool{}, stop: make(chan struct{})}, nil
}

// AddPath registers a path under a unique identifier. The monitor takes
// over the prober: it must not be used elsewhere until the monitor is
// done. Paths must be added before Start.
func (m *Monitor) AddPath(id string, p Prober) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("pathload: AddPath(%q) after Start", id)
	}
	if p == nil {
		return fmt.Errorf("pathload: AddPath(%q) with nil prober", id)
	}
	if m.byID[id] {
		return fmt.Errorf("pathload: duplicate path %q", id)
	}
	m.byID[id] = true
	m.sessions = append(m.sessions, &session{id: id, prober: p})
	return nil
}

// AddPathFactory registers a path whose prober is dialed — and, after
// transport failures, re-dialed — by the monitor itself, under the
// MonitorConfig.Reconnect policy. This is the real-network registration
// path: hand it a factory that dials a udprobe sender and the session
// heals across sender restarts instead of dying with the first broken
// control connection. Probers obtained from the factory are owned by
// the monitor and closed (when they implement io.Closer) on failure and
// at session end. Paths must be added before Start.
func (m *Monitor) AddPathFactory(id string, f ProberFactory) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("pathload: AddPathFactory(%q) after Start", id)
	}
	if f == nil {
		return fmt.Errorf("pathload: AddPathFactory(%q) with nil factory", id)
	}
	if m.byID[id] {
		return fmt.Errorf("pathload: duplicate path %q", id)
	}
	m.byID[id] = true
	m.sessions = append(m.sessions, &session{id: id, factory: f})
	return nil
}

// AddPathFactoryResume is AddPathFactory for a path with history: the
// session's rounds and path-local clock continue from st rather than
// zero. Negative state is rejected.
func (m *Monitor) AddPathFactoryResume(id string, f ProberFactory, st PathState) error {
	if st.Round < 0 || st.At < 0 {
		return fmt.Errorf("pathload: AddPathFactoryResume(%q) with negative state", id)
	}
	if err := m.AddPathFactory(id, f); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessions[len(m.sessions)-1].resume = st
	return nil
}

// Paths returns the registered path identifiers in AddPath order.
func (m *Monitor) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, len(m.sessions))
	for i, s := range m.sessions {
		ids[i] = s.id
	}
	return ids
}

// Start launches one session per path and returns immediately. Results
// must be consumed (or the Buffer sized generously) or sessions block.
func (m *Monitor) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("pathload: monitor started twice")
	}
	if len(m.sessions) == 0 {
		return fmt.Errorf("pathload: monitor has no paths")
	}
	if m.cfg.Driver != nil {
		for _, s := range m.sessions {
			if s.factory != nil {
				return fmt.Errorf("pathload: monitor Driver cannot run factory-backed path %q: redial healing needs wall time (use AddPath with a prober the driver owns)", s.id)
			}
		}
		if m.cfg.Admission != nil {
			return fmt.Errorf("pathload: monitor Driver is incompatible with an Admission policy: a session blocked in admission would stall the driver's fleet round")
		}
	}
	if m.cfg.Resume != nil {
		for _, s := range m.sessions {
			if s.resume != (PathState{}) {
				continue // explicit AddPathFactoryResume state wins
			}
			st := m.cfg.Resume(s.id)
			if st.Round < 0 || st.At < 0 {
				return fmt.Errorf("pathload: Resume(%q) returned negative state", s.id)
			}
			s.resume = st
		}
	}
	m.started = true
	m.cfg = m.cfg.withDefaults(len(m.sessions))
	m.results = make(chan Sample, m.cfg.Buffer)
	m.sched = m.cfg.Scheduler
	if m.sched == nil {
		// The original schedule: jittered Interval, per-path streams
		// derived from Seed and the path name (not registration order),
		// so adding a path does not reshuffle the others' schedules.
		m.sched = &schedule.Fixed{Interval: m.cfg.Interval, Jitter: m.cfg.Jitter, Seed: m.cfg.Seed}
	}
	if b, ok := m.sched.(schedule.FleetBinder); ok {
		ids := make([]string, len(m.sessions))
		for i, s := range m.sessions {
			ids[i] = s.id
		}
		b.Bind(ids)
	}
	m.adm = m.cfg.Admission
	if m.adm == nil {
		m.adm = schedule.NewWorkers(m.cfg.Workers)
	}
	m.drv = m.cfg.Driver
	if m.drv == nil {
		m.drv = wallDriver{}
	} else {
		// The driver owns the interleave: every session is admitted
		// unconditionally so none can stall the fleet round barrier.
		m.adm = schedule.NewWorkers(len(m.sessions))
		go m.drv.Drive()
	}
	vars, _ := m.cfg.Store.(schedule.VarSource)
	for _, s := range m.sessions {
		s.hist.vars = vars
		m.wg.Add(1)
		go m.run(s)
	}
	go func() {
		m.wg.Wait()
		close(m.results)
	}()
	return nil
}

// Results delivers one Sample per finished round, in completion order.
// The channel is closed when every session has finished (all rounds
// done, or Stop). It is nil before Start.
func (m *Monitor) Results() <-chan Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.results
}

// Stop asks every session to finish at its next boundary: a session
// mid-measurement completes the round and still delivers its sample
// (as long as the results buffer has room). It is idempotent and safe
// to call concurrently with consumption.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}

// Wait blocks until every session has finished. With Rounds == 0 that
// only happens after Stop.
func (m *Monitor) Wait() { m.wg.Wait() }

// errMonitorStopped marks a session ended by Stop mid-heal; it is never
// published.
var errMonitorStopped = errors.New("pathload: monitor stopped")

// publish delivers a finished sample to the sink and then the results
// channel. Delivery prefers the channel's buffer even when Stop has
// been called — a finished round is data — and falls back to racing
// stop only when the buffer is full (the consumer may be gone). It
// reports whether the channel accepted the sample; the sink always sees
// it first.
func (m *Monitor) publish(sample Sample) bool {
	if m.cfg.Store != nil {
		m.cfg.Store.Observe(sample)
	}
	select {
	case m.results <- sample:
		return true
	default:
	}
	select {
	case m.results <- sample:
		return true
	case <-m.stop:
		return false
	}
}

// sleep waits out d through the driver (wall time by default),
// reporting false when Stop interrupts. It is how sessions wait
// without a live prober: reconnect backoffs, and re-measurement gaps
// while the transport is down.
func (m *Monitor) sleep(d time.Duration) bool {
	return m.drv.Sleep(d, m.stop)
}

// redial restores a factory-backed session's prober, backing off
// exponentially between consecutive dial failures. It returns nil once
// the session has a live prober, errMonitorStopped when Stop came
// first, or the last dial error once Reconnect.MaxAttempts consecutive
// dials have failed. Backoff waits advance the session clock at.
// Each dial runs in its own goroutine and races m.stop, so Stop (and
// therefore Wait) is never held hostage by a factory blocked inside a
// slow dial; a dial that completes after Stop is reaped, its prober
// closed.
func (m *Monitor) redial(s *session, at *time.Duration) error {
	rc := m.cfg.Reconnect.withDefaults()
	backoff := rc.Backoff
	type dialed struct {
		p   Prober
		err error
	}
	for attempt := 1; ; attempt++ {
		select {
		case <-m.stop:
			return errMonitorStopped
		default:
		}
		ch := make(chan dialed, 1)
		go func() {
			p, err := s.factory()
			ch <- dialed{p, err}
		}()
		var d dialed
		select {
		case d = <-ch:
		case <-m.stop:
			go func() {
				if late := <-ch; late.err == nil {
					if c, ok := late.p.(io.Closer); ok {
						c.Close()
					}
				}
			}()
			return errMonitorStopped
		}
		if d.err == nil {
			s.prober = d.p
			return nil
		}
		if rc.MaxAttempts > 0 && attempt >= rc.MaxAttempts {
			return fmt.Errorf("pathload: %s: reconnect gave up after %d dials: %w", s.id, attempt, d.err)
		}
		if !m.sleep(backoff) {
			return errMonitorStopped
		}
		*at += backoff
		backoff *= 2
		if backoff > rc.MaxBackoff {
			backoff = rc.MaxBackoff
		}
	}
}

// run is one path's session loop: heal the transport if needed, pass
// admission, measure, publish, ask the scheduler for the next gap,
// idle, repeat. Factory-backed sessions never die of transport errors:
// every failed round still publishes its error sample, then the prober
// is closed and re-dialed under the Reconnect policy.
func (m *Monitor) run(s *session) {
	defer m.wg.Done()
	defer s.closeProber()
	defer m.drv.Retire(s.id)
	start := s.resume.Round
	at := s.resume.At
	for round := start; m.cfg.Rounds == 0 || round < start+m.cfg.Rounds; round++ {
		if s.prober == nil {
			if err := m.redial(s, &at); err != nil {
				if !errors.Is(err, errMonitorStopped) {
					// The dial budget is exhausted: the session ends, but
					// not silently.
					m.publish(Sample{Path: s.id, Round: round, At: at, Wall: time.Now(), Err: err})
				}
				return
			}
		}
		release, ok := m.adm.Acquire(s.id, m.stop)
		if !ok {
			return
		}
		res, err := Run(s.prober, m.cfg.Config)
		release()

		sample := Sample{Path: s.id, Round: round, At: at, Wall: time.Now(), Result: res, Err: err}
		s.hist.last = schedule.Round{Round: round, At: at, Span: res.Elapsed, Bits: res.Bits, Err: err != nil}
		s.hist.haveLast = true
		at += res.Elapsed
		if !m.publish(sample) {
			return
		}
		if err != nil {
			// On a factory-backed session a failed round condemns the
			// transport: close it now so the next round re-dials.
			s.closeProber()
		}

		if m.cfg.Rounds != 0 && round == start+m.cfg.Rounds-1 {
			return
		}
		// The fleet round boundary: a barrier-based driver parks here
		// until every live sibling has finished its round too. The stop
		// check comes after, so Stop during the barrier is seen as soon
		// as the barrier releases.
		m.drv.RoundEnd(s.id, round)
		select {
		case <-m.stop:
			return
		default:
		}
		gap, ok := m.sched.Next(s.id, &s.hist)
		if !ok {
			return // schedule exhausted: the session ends cleanly
		}
		if gap > 0 {
			if s.prober == nil {
				// Healing: the gap passes in wall time, the re-dial
				// happens at the top of the next round.
				if !m.sleep(gap) {
					return
				}
				at += gap
				continue
			}
			if err := m.drv.Gap(s.id, s.prober, gap); err != nil {
				idleErr := Sample{Path: s.id, Round: round + 1, At: at, Wall: time.Now(), Err: fmt.Errorf("pathload: idle: %w", err)}
				delivered := m.publish(idleErr)
				if s.factory == nil {
					// A prober whose clock failed is not healable here;
					// the session ends (its owner may still be using the
					// prober elsewhere after the monitor is done).
					return
				}
				if !delivered {
					return
				}
				// The idle error consumed round+1's slot; heal and carry
				// on at round+2.
				s.closeProber()
				round++
				continue
			}
			at += gap
		}
	}
}
