package pathload

import (
	"fmt"
	"time"
)

// StreamKind is a pathload-level stream verdict.
type StreamKind int

// Stream verdicts: increasing OWD trend (rate above avail-bw),
// non-increasing, or discarded (lossy/flagged, did not vote).
const (
	StreamNonIncreasing StreamKind = iota
	StreamIncreasing
	StreamDiscarded
)

// String names the stream verdict.
func (k StreamKind) String() string {
	switch k {
	case StreamNonIncreasing:
		return "N"
	case StreamIncreasing:
		return "I"
	case StreamDiscarded:
		return "discard"
	default:
		return fmt.Sprintf("StreamKind(%d)", int(k))
	}
}

// Verdict is a pathload-level fleet verdict.
type Verdict int

// Fleet verdicts: the probing rate was below the avail-bw, above it, in
// the grey region (the avail-bw fluctuated around it), or the fleet was
// aborted because of losses (treated as "rate too high").
const (
	FleetBelow Verdict = iota
	FleetAbove
	FleetGrey
	FleetAborted
)

// String names the fleet verdict.
func (v Verdict) String() string {
	switch v {
	case FleetBelow:
		return "R<A"
	case FleetAbove:
		return "R>A"
	case FleetGrey:
		return "grey"
	case FleetAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// A StreamTrace records the classification of one stream.
type StreamTrace struct {
	Kind StreamKind
	PCT  float64 // pairwise comparison test statistic
	PDT  float64 // pairwise difference test statistic
	Loss float64 // fraction of the stream's packets lost
}

// A FleetTrace records one fleet of the iterative search.
type FleetTrace struct {
	Rate    float64       // requested fleet rate, bits/s
	L       int           // probe packet size, bytes
	T       time.Duration // packet interspacing
	Delta   time.Duration // idle gap between streams
	Verdict Verdict
	Streams []StreamTrace
}

// A Result is the outcome of one pathload run.
type Result struct {
	// Lo and Hi bracket the avail-bw variation range observed during
	// the measurement, in bits/s: the paper's [Rmin, Rmax].
	Lo, Hi float64
	// GreySet reports whether a grey region was detected; GreyLo and
	// GreyHi bound it when set.
	GreySet        bool
	GreyLo, GreyHi float64
	// HitMax means no fleet ever observed an increasing trend: the
	// avail-bw is at or above Hi (which equals the probing limit).
	// HitMin is the symmetric bottom-of-range flag.
	HitMax, HitMin bool
	// ADR is the asymptotic dispersion rate measured by the
	// initialization stream (0 when the probe is disabled or failed);
	// it upper-bounds the search.
	ADR float64
	// Fleets is the full search log.
	Fleets []FleetTrace
	// Elapsed is the probing time consumed: stream durations plus
	// inter-stream idles (virtual time under the simulator).
	Elapsed time.Duration
	// Bits is the probe load injected into the path: every packet the
	// sender actually emitted (init stream and fleet streams alike)
	// times its wire size, in bits. Like Elapsed it is reported even
	// when the run errors, so schedulers and budget accounting see the
	// true cost of failed rounds (§VIII intrusiveness).
	Bits float64
}

// Mid returns the center of the reported range.
func (r Result) Mid() float64 { return (r.Lo + r.Hi) / 2 }

// Width returns Hi − Lo.
func (r Result) Width() float64 { return r.Hi - r.Lo }

// RelVar returns ρ (Eq. 12), the range width over its center — the
// paper's measure of avail-bw variability. It returns 0 for a
// zero-center range.
func (r Result) RelVar() float64 {
	if r.Mid() == 0 {
		return 0
	}
	return r.Width() / r.Mid()
}

// Contains reports whether a falls inside the reported range.
func (r Result) Contains(a float64) bool { return a >= r.Lo && a <= r.Hi }

// String formats the range in Mb/s.
func (r Result) String() string {
	s := fmt.Sprintf("avail-bw [%.2f, %.2f] Mb/s", r.Lo/1e6, r.Hi/1e6)
	if r.GreySet {
		s += fmt.Sprintf(" (grey [%.2f, %.2f])", r.GreyLo/1e6, r.GreyHi/1e6)
	}
	if r.HitMax {
		s += " (at probe limit: true avail-bw may be higher)"
	}
	return s
}
