// owdtrend visualizes the SLoPS principle (the paper's Figs. 1–3): the
// one-way delays of a periodic stream trend upward exactly when the
// stream rate exceeds the path's available bandwidth. It sends three
// streams — above, below, and near the avail-bw — over a simulated
// WAN path and prints their OWD series as ASCII strip charts.
package main

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
)

func main() {
	traces := experiments.OWDTraces(experiments.Options{Seed: 7})
	for _, tr := range traces {
		fmt.Printf("%s: stream rate %.0f Mb/s, avail-bw ≈ %.0f Mb/s → classified %q (PCT %.2f, PDT %.2f)\n",
			tr.Figure, tr.RateMbps, tr.AvailBw/1e6, tr.Kind, tr.PCT, tr.PDT)
		plot(tr.OWDms)
		fmt.Println()
	}
}

// plot renders an OWD series as a rows-of-dots strip chart.
func plot(owds []float64) {
	if len(owds) == 0 {
		fmt.Println("  (no packets received)")
		return
	}
	min, max := owds[0], owds[0]
	for _, v := range owds {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	const rows = 12
	span := max - min
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(owds)))
	}
	for i, v := range owds {
		r := int((v - min) / span * float64(rows-1))
		grid[rows-1-r][i] = '*'
	}
	for r, row := range grid {
		level := max - span*float64(r)/float64(rows-1)
		fmt.Printf("  %6.2fms |%s|\n", level, row)
	}
	fmt.Printf("           packet 0 .. %d (OWD relative to stream minimum)\n", len(owds)-1)
}
