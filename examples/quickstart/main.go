// Quickstart: measure the available bandwidth of a simulated path in a
// few lines. Builds the paper's default 5-hop topology (10 Mb/s tight
// link at 60% utilization → 4 Mb/s avail-bw) and runs one pathload
// measurement with default parameters.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

func main() {
	// A 5-hop path; the middle link is the tight one.
	net := experiments.Topology{Seed: 42}.Build()
	net.Warmup(3 * netsim.Second)

	// A prober injects probe streams at the head of the route and
	// timestamps them at the tail.
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)

	res, err := pathload.Run(prober, pathload.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true avail-bw: %.2f Mb/s\n", net.Topo.AvailBw()/1e6)
	fmt.Printf("pathload:      %v\n", res)
	fmt.Printf("fleets probed: %d, virtual probing time %v\n", len(res.Fleets), res.Elapsed)
}
