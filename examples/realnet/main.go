// realnet runs the real-network pathload tool end to end on the local
// machine: a sender daemon and a receiver-side measurement in one
// process, talking over loopback with real UDP probe streams and a
// real TCP control channel.
//
// Loopback has no meaningful bandwidth limit at these probe rates, so
// the interesting output is the tool's honesty: it converges to its
// own generation ceiling and raises the HitMax flag rather than
// reporting a fabricated avail-bw. Point pathload-snd / pathload-rcv
// at two real hosts for an actual path measurement.
//
// With -monitor the example becomes the deployment story instead of the
// one-shot: one sender daemon serves two monitored paths concurrently,
// and mid-run the daemon is killed and restarted on the same address.
// The monitor publishes the outage as error samples and the sessions
// heal — re-dialed by each path's ProberFactory under the reconnect
// policy — so the rounds after the restart succeed again.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/udprobe"

	pathload "repro"
)

func main() {
	monitor := flag.Bool("monitor", false, "run the reconnecting two-path monitor with a mid-run sender restart")
	flag.Parse()
	if *monitor {
		runMonitor()
		return
	}
	runOnce()
}

// runOnce is the original single-shot loopback measurement.
func runOnce() {
	snd, err := udprobe.NewSender("127.0.0.1:0", udprobe.SenderConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer snd.Close()
	go snd.Serve()
	fmt.Printf("sender daemon on %v\n", snd.Addr())

	p, err := udprobe.Dial(snd.Addr().String(), udprobe.ProberConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	fmt.Printf("control RTT %v\n", p.RTT().Round(time.Microsecond))

	res, err := pathload.Run(p, pathload.Config{
		PacketsPerStream: 50,
		StreamsPerFleet:  4,
		MinPeriod:        50 * time.Microsecond,
		MaxFleets:        12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ADR of loopback train: %.0f Mb/s\n", res.ADR/1e6)
	fmt.Printf("measurement: %v\n", res)
	if res.HitMax {
		fmt.Println("loopback exceeds the probing ceiling, as expected; the tool")
		fmt.Println("reports a lower bound instead of a made-up estimate.")
	}
}

// runMonitor drives a two-path reconnecting fleet through a sender
// restart.
func runMonitor() {
	snd, err := udprobe.NewSender("127.0.0.1:0", udprobe.SenderConfig{})
	if err != nil {
		log.Fatal(err)
	}
	go snd.Serve()
	addr := snd.Addr().String()
	fmt.Printf("sender daemon on %v (serving both paths concurrently)\n", addr)

	factory := func() (pathload.Prober, error) {
		return udprobe.Dial(addr, udprobe.ProberConfig{ControlTimeout: 2 * time.Second})
	}
	mon, err := pathload.NewMonitor(pathload.MonitorConfig{
		Workers:  2,
		Rounds:   8,
		Interval: 100 * time.Millisecond,
		Config: pathload.Config{
			PacketsPerStream: 30,
			StreamsPerFleet:  2,
			MaxFleets:        4,
			MinPeriod:        100 * time.Microsecond,
		},
		Reconnect: pathload.Reconnect{Backoff: 100 * time.Millisecond, MaxBackoff: 500 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []string{"path-a", "path-b"} {
		if err := mon.AddPathFactory(id, factory); err != nil {
			log.Fatal(err)
		}
	}
	if err := mon.Start(); err != nil {
		log.Fatal(err)
	}

	okBefore := map[string]bool{}
	killed, restarted := false, false
	errs, healed := 0, 0
	for s := range mon.Results() {
		fmt.Printf("  %s\n", s)
		switch {
		case s.Err == nil && !killed:
			okBefore[s.Path] = true
			if len(okBefore) == 2 {
				killed = true
				fmt.Println("-- killing the sender daemon mid-run --")
				snd.Close()
			}
		case s.Err != nil:
			errs++
			if !restarted {
				// The paths are in reconnect backoff now; bring the
				// daemon back on the very same address.
				restarted = true
				var again *udprobe.Sender
				for i := 0; again == nil; i++ {
					if again, err = udprobe.NewSender(addr, udprobe.SenderConfig{}); err != nil {
						if i >= 50 {
							log.Fatalf("restarting sender on %s: %v", addr, err)
						}
						time.Sleep(100 * time.Millisecond)
					}
				}
				snd = again
				go again.Serve()
				fmt.Println("-- sender daemon restarted on the same address --")
			}
		case s.Err == nil && restarted:
			healed++
		}
	}
	mon.Wait()
	snd.Close()

	fmt.Printf("\noutage published as %d error sample(s); %d round(s) healed after the restart\n", errs, healed)
	if errs > 0 && healed > 0 {
		fmt.Println("the fleet survived the sender restart: sessions re-dialed and kept measuring.")
	}
}
