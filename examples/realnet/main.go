// realnet runs the real-network pathload tool end to end on the local
// machine: a sender daemon and a receiver-side measurement in one
// process, talking over loopback with real UDP probe streams and a
// real TCP control channel.
//
// Loopback has no meaningful bandwidth limit at these probe rates, so
// the interesting output is the tool's honesty: it converges to its
// own generation ceiling and raises the HitMax flag rather than
// reporting a fabricated avail-bw. Point pathload-snd / pathload-rcv
// at two real hosts for an actual path measurement.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/udprobe"

	pathload "repro"
)

func main() {
	snd, err := udprobe.NewSender("127.0.0.1:0", udprobe.SenderConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer snd.Close()
	go snd.Serve()
	fmt.Printf("sender daemon on %v\n", snd.Addr())

	p, err := udprobe.Dial(snd.Addr().String(), udprobe.ProberConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	fmt.Printf("control RTT %v\n", p.RTT().Round(time.Microsecond))

	res, err := pathload.Run(p, pathload.Config{
		PacketsPerStream: 50,
		StreamsPerFleet:  4,
		MinPeriod:        50 * time.Microsecond,
		MaxFleets:        12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ADR of loopback train: %.0f Mb/s\n", res.ADR/1e6)
	fmt.Printf("measurement: %v\n", res)
	if res.HitMax {
		fmt.Println("loopback exceeds the probing ceiling, as expected; the tool")
		fmt.Println("reports a lower bound instead of a made-up estimate.")
	}
}
