// Monitor: turn one-shot measurements into streaming avail-bw time
// series over many paths at once. Builds eight simulated paths with
// different loads, registers each with a pathload.Monitor, and watches
// three rounds of per-path ranges arrive on the results channel —
// the paper's "dynamics" viewpoint (§VI) as a long-running service.
// A tsstore.Store rides along as the monitor's Store sink, retaining
// every sample, and the example ends by reading the windowed
// aggregates (min/max/mean, ρ, median) back out of the store.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simprobe"
	"repro/internal/tsstore"

	pathload "repro"
)

func main() {
	// Eight single-hop paths: a 10 Mb/s link at 20%..75% utilization,
	// each with its own simulator shard.
	const paths = 8
	nets := make([]*experiments.Net, paths)
	sims := make([]*netsim.Simulator, paths)
	for i := range nets {
		nets[i] = experiments.Topology{
			Hops:      1,
			TightCap:  10e6,
			TightUtil: 0.20 + 0.55*float64(i)/float64(paths-1),
			Seed:      100 + int64(i),
		}.Build()
		sims[i] = nets[i].Sim
	}
	// Warm every shard to steady state in parallel, on one lockstep
	// virtual clock.
	warm := netsim.NewLockstep(0, sims...)
	warm.AdvanceTo(3 * netsim.Second)
	warm.Close()

	store := tsstore.New(tsstore.Config{}) // per-path rings + digests
	mon, err := pathload.NewMonitor(pathload.MonitorConfig{
		Workers:  4,                      // at most 4 paths probing at once
		Rounds:   3,                      // 3 measurements per path
		Interval: 100 * time.Millisecond, // virtual idle gap between rounds
		Jitter:   0.3,                    // desynchronize the fleet
		Seed:     7,
		Store:    store, // retain every sample alongside the channel
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range nets {
		prober := simprobe.New(n.Sim, n.Links, 10*netsim.Millisecond)
		if err := mon.AddPath(fmt.Sprintf("path-%d", i), prober); err != nil {
			log.Fatal(err)
		}
	}
	if err := mon.Start(); err != nil {
		log.Fatal(err)
	}

	// Samples stream in completion order; At is the path-local virtual
	// time of each round, so per-path series are reproducible.
	for s := range mon.Results() {
		if s.Err != nil {
			log.Printf("%s round %d failed: %v", s.Path, s.Round, s.Err)
			continue
		}
		var i int
		fmt.Sscanf(s.Path, "path-%d", &i)
		fmt.Printf("%-7s r%d @%-7v true %5.2f Mb/s → %v\n",
			s.Path, s.Round, s.At.Round(time.Millisecond), nets[i].Topo.AvailBw()/1e6, s.Result)
	}
	mon.Wait()

	// The channel is gone, the history is not: read each path's series
	// back from the store as a windowed aggregate — the §VI summary
	// (observed variation range, mean estimate, median, windowed ρ).
	// store.Handler() would serve the same data over HTTP; see
	// `pathload -monitor -export`.
	fmt.Printf("\nretained series:\n")
	for _, id := range store.Paths() {
		agg := store.Retained(id)
		fmt.Printf("%-7s %d pts  range [%5.2f, %5.2f]  mean %5.2f  p50 %5.2f Mb/s  ρ %.2f\n",
			id, agg.Count, agg.MinLo/1e6, agg.MaxHi/1e6,
			agg.MeanMid/1e6, agg.Quantile(0.5)/1e6, agg.RelVar)
	}
}
