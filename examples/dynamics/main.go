// dynamics explores avail-bw variability the way §VI of the paper
// does: repeated pathload runs under different tight-link loads, with
// the relative variation metric ρ = (Rmax − Rmin)/center summarized as
// percentiles. Light load → narrow, stable estimates; heavy load →
// wide, volatile ones.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("avail-bw variability vs load on a 12.4 Mb/s tight link")
	fmt.Println("(each row: percentiles of ρ across repeated pathload runs)")
	fmt.Println()
	cdfs := experiments.Fig11(experiments.Options{Scale: 0.2, Seed: 3})
	fmt.Print(experiments.RenderDynamics("Fig 11 shape", cdfs))
	fmt.Println()
	fmt.Println("Reading: at 75–85% utilization the 75th-percentile ρ is several")
	fmt.Println("times its light-load value — heavily loaded paths do not just have")
	fmt.Println("less available bandwidth, they have a less predictable one.")
}
