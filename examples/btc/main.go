// btc contrasts a greedy TCP bulk transfer with pathload as avail-bw
// "measurement" instruments (the paper's §VII–§VIII): the TCP transfer
// roughly tracks the avail-bw but saturates the path, inflates RTTs by
// ≈70–100%, and steals bandwidth from competing TCP flows; pathload
// estimates the same quantity while leaving the path undisturbed.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	opt := experiments.Options{Scale: 0.2, Seed: 11}

	fmt.Println("=== greedy TCP (BTC) as the measurement instrument ===")
	fmt.Print(experiments.RenderBTC(experiments.Fig15and16(opt)))
	fmt.Println()
	fmt.Println("=== pathload as the measurement instrument ===")
	fmt.Print(experiments.RenderIntrusive(experiments.Fig17and18(opt)))
}
