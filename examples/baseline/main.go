// baseline contrasts the two measurement philosophies the paper's §II
// discusses on one simulated path: cprobe-style packet-train
// dispersion (which actually measures the asymptotic dispersion rate,
// a quantity between the avail-bw and the capacity) versus SLoPS
// (which measures the avail-bw itself). The gap between the two grows
// with load.
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

func main() {
	for _, util := range []float64{0.3, 0.6, 0.8} {
		net := experiments.Topology{TightUtil: util, Seed: 21}.Build()
		net.Warmup(3 * netsim.Second)
		prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)

		cp, err := baseline.Cprobe(prober, baseline.CprobeConfig{})
		if err != nil {
			panic(err)
		}
		pl, err := pathload.Run(prober, pathload.Config{})
		if err != nil {
			panic(err)
		}

		a := net.Topo.AvailBw()
		fmt.Printf("tight link at %.0f%% load (true avail-bw %.1f Mb/s):\n", util*100, a/1e6)
		fmt.Printf("  cprobe (train dispersion): %6.2f Mb/s  (%+.0f%% off)\n",
			cp.Estimate/1e6, (cp.Estimate-a)/a*100)
		fmt.Printf("  pathload (SLoPS):          %v\n\n", pl)
	}
	fmt.Println("Train dispersion reports the ADR, not the avail-bw — the paper's")
	fmt.Println("§II motivation for building SLoPS in the first place.")
}
