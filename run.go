package pathload

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Run performs one complete pathload measurement over the given prober
// and returns the avail-bw range. It drives the SLoPS iterative
// algorithm: propose a fleet rate, emit N streams at that rate,
// classify each stream's OWD trend, fold the stream verdicts into a
// fleet verdict (including the grey region), and bisect until the
// termination resolutions ω and χ are met.
func Run(p Prober, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}

	var res Result
	if !cfg.DisableInitProbe {
		adr, elapsed, bits, err := initProbe(p, cfg)
		res.Elapsed += elapsed
		res.Bits += bits
		if err != nil {
			return res, fmt.Errorf("pathload: init probe: %w", err)
		}
		res.ADR = adr
		if adr > 0 {
			if capped := adr * ADRMargin; capped < cfg.MaxRate {
				cfg.MaxRate = capped
			}
			if cfg.MinRate >= cfg.MaxRate {
				cfg.MinRate = 0
			}
			if cfg.InitialRate != 0 && (cfg.InitialRate <= cfg.MinRate || cfg.InitialRate >= cfg.MaxRate) {
				// The measured ADR can pull MaxRate below a user-supplied
				// InitialRate that validated fine against the static
				// bounds; zero it — like MinRate above — so the
				// controller falls back to the bracket midpoint instead
				// of rejecting a config the user could not have known
				// was stale.
				cfg.InitialRate = 0
			}
		}
	}

	ctrl, err := core.NewController(core.ControllerConfig{
		MinRate:        cfg.MinRate,
		MaxRate:        cfg.MaxRate,
		Resolution:     cfg.Resolution,
		GreyResolution: cfg.GreyResolution,
		InitialRate:    cfg.InitialRate,
	})
	if err != nil {
		// res already carries the init probe's Elapsed, Bits, and ADR;
		// callers (and the Monitor's path-local clock) rely on errored
		// runs reporting the probing time they consumed.
		return res, err
	}

	trendCfg := core.TrendConfig{
		PCTIncreasing:    cfg.PCTIncreasing,
		PCTNonIncreasing: cfg.PCTNonIncreasing,
		PDTIncreasing:    cfg.PDTIncreasing,
		PDTNonIncreasing: cfg.PDTNonIncreasing,
		DisablePCT:       cfg.DisablePCT,
		DisablePDT:       cfg.DisablePDT,
		Gamma:            cfg.MedianGroups,
	}

	for fleet := 0; !ctrl.Done() && fleet < cfg.MaxFleets; fleet++ {
		rate := ctrl.Rate()
		trace, verdict, elapsed, bits, err := runFleet(p, cfg, trendCfg, fleet, rate)
		res.Elapsed += elapsed
		res.Bits += bits
		if err != nil {
			return res, fmt.Errorf("pathload: fleet %d at %.2f Mb/s: %w", fleet, rate/1e6, err)
		}
		res.Fleets = append(res.Fleets, trace)
		ctrl.Record(coreVerdict(verdict))
	}

	cr := ctrl.Result()
	res.Lo, res.Hi = cr.Lo, cr.Hi
	res.GreySet, res.GreyLo, res.GreyHi = cr.GreySet, cr.GreyLo, cr.GreyHi
	res.HitMax, res.HitMin = cr.HitMax, cr.HitMin
	return res, nil
}

// initProbe sends one short stream at the generation limit and
// estimates the path's asymptotic dispersion rate from the received
// packets: (lastSeq−firstSeq)·L·8 over the sent span of those packets
// plus the dispersion the path added, (lastSeq−firstSeq)·T +
// (OWD_last − OWD_first). Spanning sequence numbers rather than
// counting received packets keeps the estimate loss-robust: packets
// lost between the first and last survivor carried bits across the
// same span, so dropping them from the numerator (a received−1 count)
// would understate the rate. In the fluid model the ADR of a
// saturating train satisfies A ≤ ADR ≤ C, so it upper-bounds the
// avail-bw search.
func initProbe(p Prober, cfg Config) (adr float64, elapsed time.Duration, bits float64, err error) {
	rate := cfg.GenerationLimit()
	l, t := cfg.StreamParams(rate)
	k := cfg.InitProbePackets
	spec := StreamSpec{Rate: rate, K: k, L: l, T: t, Fleet: -1}
	sr, err := p.SendStream(spec)
	elapsed = spec.Duration()
	bits = float64(sr.Sent*l) * 8
	if err != nil {
		return 0, elapsed, bits, err
	}
	if idle := p.RTT(); idle > 0 {
		if err := p.Idle(idle); err != nil {
			return 0, elapsed, bits, err
		}
		elapsed += idle
	}
	if len(sr.OWDs) < 2 {
		return 0, elapsed, bits, nil // unusable train; keep the configured MaxRate
	}
	first, last := sr.OWDs[0], sr.OWDs[len(sr.OWDs)-1]
	span := time.Duration(last.Seq-first.Seq)*t + (last.OWD - first.OWD)
	if span <= 0 {
		return 0, elapsed, bits, nil
	}
	dispersed := float64(last.Seq-first.Seq) * float64(l) * 8
	return dispersed / span.Seconds(), elapsed, bits, nil
}

// runFleet emits one fleet of N streams at the given rate and reduces
// it to a verdict. It aborts early — per the paper's loss policy (§IV):
// losses mean the probing rate overloads the path, so the fleet stops
// instead of probing on — when a single stream loses more than
// StreamAbortLoss of its packets, or when at least two streams and a
// strict majority of the streams sent so far are moderately lossy. The
// paper states the moderate-loss rule over the whole fleet; evaluating
// it online over the streams sent so far aborts at the earliest point a
// majority is established (cutting wasted probe load, §VIII), while the
// two-stream quorum keeps one unlucky stream from condemning a fleet
// that ModerateLoss is meant to tolerate.
func runFleet(p Prober, cfg Config, trendCfg core.TrendConfig, fleet int, rate float64) (FleetTrace, Verdict, time.Duration, float64, error) {
	l, t := cfg.StreamParams(rate)
	tau := time.Duration(cfg.PacketsPerStream) * t
	delta := time.Duration(cfg.InterStreamRTTs) * tau
	if rtt := p.RTT(); delta < rtt {
		delta = rtt
	}

	trace := FleetTrace{Rate: rate, L: l, T: t, Delta: delta}
	var elapsed time.Duration
	var bits float64
	var kinds []core.StreamType
	moderatelyLossy := 0
	aborted := false

	for i := 0; i < cfg.StreamsPerFleet; i++ {
		spec := StreamSpec{Rate: rate, K: cfg.PacketsPerStream, L: l, T: t, Fleet: fleet, Index: i}
		sr, err := p.SendStream(spec)
		elapsed += tau
		bits += float64(sr.Sent*spec.L) * 8
		if err != nil {
			return trace, FleetAborted, elapsed, bits, err
		}

		st := StreamTrace{Loss: sr.LossRate()}
		var kind core.StreamType
		switch {
		case sr.Flagged:
			kind = core.TypeDiscard
		case sr.LossRate() > cfg.StreamAbortLoss:
			// One badly lossy stream condemns the whole fleet.
			aborted = true
			kind = core.TypeDiscard
		default:
			var metrics core.TrendMetrics
			kind, metrics = core.ClassifyOWDs(sr.owdSeconds(), trendCfg)
			st.PCT, st.PDT = metrics.PCT, metrics.PDT
		}
		if !aborted && sr.LossRate() > cfg.ModerateLoss {
			moderatelyLossy++
			// At least two, and more than half, of the i+1 streams so
			// far are moderately lossy: the fleet majority is already
			// established, abort now rather than at stream N.
			if moderatelyLossy >= 2 && 2*moderatelyLossy > i+1 {
				aborted = true
			}
		}
		st.Kind = streamKind(kind)
		trace.Streams = append(trace.Streams, st)
		kinds = append(kinds, kind)

		if aborted {
			break
		}
		if i < cfg.StreamsPerFleet-1 {
			if err := p.Idle(delta); err != nil {
				return trace, FleetAborted, elapsed, bits, err
			}
			elapsed += delta
		}
	}

	var verdict Verdict
	if aborted {
		verdict = FleetAborted
	} else {
		verdict = fleetVerdict(core.ClassifyFleet(kinds, cfg.FleetFraction))
	}
	trace.Verdict = verdict
	return trace, verdict, elapsed, bits, nil
}

// streamKind converts the core stream verdict to the public enum.
func streamKind(t core.StreamType) StreamKind {
	switch t {
	case core.TypeIncreasing:
		return StreamIncreasing
	case core.TypeNonIncreasing:
		return StreamNonIncreasing
	default:
		return StreamDiscarded
	}
}

// fleetVerdict converts the core fleet verdict to the public enum.
func fleetVerdict(v core.FleetVerdict) Verdict {
	switch v {
	case core.VerdictBelow:
		return FleetBelow
	case core.VerdictAbove:
		return FleetAbove
	case core.VerdictGrey:
		return FleetGrey
	default:
		return FleetAborted
	}
}

// coreVerdict converts the public verdict back to the controller's.
func coreVerdict(v Verdict) core.FleetVerdict {
	switch v {
	case FleetBelow:
		return core.VerdictBelow
	case FleetAbove:
		return core.VerdictAbove
	case FleetGrey:
		return core.VerdictGrey
	default:
		return core.VerdictAborted
	}
}
