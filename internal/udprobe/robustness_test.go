package udprobe

import (
	"net"
	"testing"
	"time"

	"repro/internal/wire"

	pathload "repro"
)

// TestSenderSurvivesGarbageControl: a client speaking garbage must get
// its session dropped without taking the daemon down.
func TestSenderSurvivesGarbageControl(t *testing.T) {
	addr := startSender(t)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The daemon must still serve a well-behaved client afterwards.
	p, err := Dial(addr, ProberConfig{})
	if err != nil {
		t.Fatalf("Dial after garbage session: %v", err)
	}
	defer p.Close()
	res, err := p.SendStream(pathload.StreamSpec{K: 10, L: 150, T: 300 * time.Microsecond})
	if err != nil {
		t.Fatalf("SendStream after garbage session: %v", err)
	}
	if res.Sent != 10 {
		t.Fatalf("sent %d, want 10", res.Sent)
	}
}

// TestSenderRejectsWrongVersion: version mismatches fail the handshake
// rather than mis-measuring.
func TestSenderRejectsWrongVersion(t *testing.T) {
	addr := startSender(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{Version: 99, UDPPort: 1})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := wire.ReadMessage(conn); err == nil {
		t.Fatal("sender acknowledged an incompatible protocol version")
	}
}

// TestSenderBoundsStreamRequests: absurd K or L must terminate the
// session, not allocate gigabytes or flood the network.
func TestSenderBoundsStreamRequests(t *testing.T) {
	addr := startSender(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	udp, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	port := uint16(udp.LocalAddr().(*net.UDPAddr).Port)

	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{Version: wire.Version, UDPPort: port})); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadMessage(conn); err != nil || mt != wire.MsgHelloAck {
		t.Fatalf("handshake: %v %v", mt, err)
	}
	req := wire.StreamRequest{K: 1 << 30, L: 1 << 20, PeriodNs: 1}
	if err := wire.WriteMessage(conn, wire.MsgStreamRequest, wire.MarshalStreamRequest(req)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if mt, _, err := wire.ReadMessage(conn); err == nil && mt == wire.MsgStreamDone {
		t.Fatal("sender executed an absurd stream request")
	}
}

// TestProberTimeoutOnSilentSender: a sender that never answers must
// yield a timeout error, not a hang.
func TestProberTimeoutOnSilentSender(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Accept and stay silent.
			defer c.Close()
		}
	}()
	start := time.Now()
	_, err = Dial(ln.Addr().String(), ProberConfig{ControlTimeout: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial succeeded against a silent peer")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timeout took %v, want bounded by ControlTimeout", time.Since(start))
	}
}
