package udprobe

import (
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/wire"

	pathload "repro"
)

// ProberConfig tunes the receiver side.
type ProberConfig struct {
	// CollectSlack is added to the nominal stream duration plus RTT
	// when waiting for probe packets (default 200 ms).
	CollectSlack time.Duration
	// ControlTimeout bounds control-channel exchanges (default 10 s).
	ControlTimeout time.Duration
	// KeepAlive is the longest Idle sleeps without pinging the sender
	// (default 45 s, under the sender's default 2-minute session idle
	// timeout). Without the pings, a re-measurement gap longer than the
	// sender's timeout would get every healthy session reaped mid-gap.
	KeepAlive time.Duration
	// RTTRefresh bounds how stale the control-RTT estimate may get
	// (default 30 s). The RTT is measured at Dial, but pathload uses it
	// for the rest of the session — inter-stream gap floors and
	// collection deadlines — and control latency drifts as routes and
	// load change. A stream request finding the estimate older than
	// this re-measures it with a timed ping first; keepalive pings
	// refresh it as a side effect.
	RTTRefresh time.Duration
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.CollectSlack == 0 {
		c.CollectSlack = 200 * time.Millisecond
	}
	if c.ControlTimeout == 0 {
		c.ControlTimeout = 10 * time.Second
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = 45 * time.Second
	}
	if c.RTTRefresh == 0 {
		c.RTTRefresh = 30 * time.Second
	}
	return c
}

// A Prober measures the path from a remote sender daemon to this host.
// It implements pathload.Prober: each SendStream asks the sender to
// emit one periodic UDP stream and timestamps its arrivals locally.
// One-way delays are relative — sender and receiver clocks are never
// synchronized; SLoPS only consumes OWD differences.
type Prober struct {
	cfg     ProberConfig
	ctrl    net.Conn
	udp     *net.UDPConn
	rtt     time.Duration
	rttAt   time.Time // when rtt was last measured
	version uint16
	buf     []byte
	// gen numbers this session's stream requests. The sender echoes it
	// in every probe packet and in the StreamDone, so after an errored
	// round the receiver can discard the abandoned request's late
	// answer (and its late data packets) instead of mistaking them for
	// the current round's.
	gen uint32
}

// Dial connects to a sender daemon's control address and performs the
// hello handshake, negotiating the protocol version: it opens with the
// version-3 range hello, and if the sender is too old to parse it
// (pre-range senders drop the session on the 6-byte payload), it
// redials once and falls back to the legacy exact-version form. The
// returned prober must be closed after use.
func Dial(senderAddr string, cfg ProberConfig) (*Prober, error) {
	cfg = cfg.withDefaults()
	udp, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		return nil, fmt.Errorf("udprobe: data listen: %w", err)
	}
	port := uint16(udp.LocalAddr().(*net.UDPAddr).Port)

	p, rangeErr := dialHandshake(senderAddr, cfg, udp, wire.MarshalHelloRange(wire.HelloRange{
		Min: wire.VersionMin, Max: wire.Version, UDPPort: port,
	}), wire.VersionMin)
	if rangeErr == nil {
		return p, nil
	}
	// A legacy sender read 6 bytes where it expected 4 and hung up; a
	// modern sender that refuses [VersionMin, Version] outright would
	// refuse the narrower legacy form too, so one fallback attempt is
	// sound either way.
	p, legacyErr := dialHandshake(senderAddr, cfg, udp, wire.MarshalHello(wire.Hello{
		Version: wire.VersionMin, UDPPort: port,
	}), wire.VersionMin)
	if legacyErr != nil {
		udp.Close()
		return nil, fmt.Errorf("udprobe: hello handshake failed at both forms: range: %v; legacy: %w", rangeErr, legacyErr)
	}
	return p, nil
}

// dialHandshake runs one control connection attempt with the given
// hello payload. ackFallback is the session version implied by a
// legacy empty-payload ack — the exact version the hello proposed. On
// error the control connection is closed; the UDP socket is the
// caller's.
func dialHandshake(senderAddr string, cfg ProberConfig, udp *net.UDPConn, hello []byte, ackFallback uint16) (*Prober, error) {
	ctrl, err := net.DialTimeout("tcp", senderAddr, cfg.ControlTimeout)
	if err != nil {
		return nil, fmt.Errorf("udprobe: control dial: %w", err)
	}
	p := &Prober{cfg: cfg, ctrl: ctrl, udp: udp, buf: make([]byte, 64<<10)}
	fail := func(err error) (*Prober, error) {
		ctrl.Close()
		return nil, err
	}

	t0 := time.Now()
	if err := p.writeCtrl(wire.MsgHello, hello); err != nil {
		return fail(err)
	}
	mt, payload, err := p.readCtrl()
	if err != nil {
		return fail(fmt.Errorf("udprobe: hello handshake: %w", err))
	}
	if mt != wire.MsgHelloAck {
		return fail(fmt.Errorf("udprobe: expected hello-ack, got %v", mt))
	}
	p.rtt = time.Since(t0)
	p.rttAt = time.Now()
	ack, err := wire.UnmarshalHelloAck(payload, ackFallback)
	if err != nil {
		return fail(err)
	}
	if ack.Version < wire.VersionMin || ack.Version > wire.Version {
		return fail(fmt.Errorf("udprobe: sender chose protocol version %d outside [%d, %d]", ack.Version, wire.VersionMin, wire.Version))
	}
	p.version = ack.Version
	return p, nil
}

// NegotiatedVersion reports the protocol version the hello handshake
// settled on.
func (p *Prober) NegotiatedVersion() uint16 { return p.version }

// Close says goodbye to the sender and releases sockets.
func (p *Prober) Close() error {
	if p.ctrl != nil {
		// Best-effort farewell; the session also dies with the socket.
		p.ctrl.SetWriteDeadline(time.Now().Add(time.Second))
		_ = wire.WriteMessage(p.ctrl, wire.MsgBye, nil)
		p.ctrl.Close()
	}
	if p.udp != nil {
		p.udp.Close()
	}
	return nil
}

// RTT reports the control-channel round-trip time, pathload's floor
// for inter-stream gaps: measured at the handshake and re-measured by
// ping exchanges — keepalives, and the pre-stream refresh whenever the
// estimate is older than RTTRefresh — so a mid-session latency shift
// shows up here instead of silently mis-sizing gaps and deadlines.
func (p *Prober) RTT() time.Duration { return p.rtt }

// Idle sleeps; on a real network, waiting is waiting — but a session
// must not look dead while it waits. Sleeps longer than KeepAlive are
// chunked, with a control-channel ping between chunks so the sender's
// session idle deadline keeps being refreshed. A failed exchange is
// reported: the session is gone and the caller (a reconnecting monitor
// session) should heal rather than sleep on.
func (p *Prober) Idle(d time.Duration) error {
	for d > p.cfg.KeepAlive {
		time.Sleep(p.cfg.KeepAlive)
		d -= p.cfg.KeepAlive
		if err := p.ping(); err != nil {
			return err
		}
	}
	time.Sleep(d)
	return nil
}

// ping runs one keepalive exchange on the control channel and, when
// the exchange was clean, refreshes the control-RTT estimate from its
// timing. Like awaitStreamDone it resynchronizes rather than chokes: a
// StreamDone arriving here is necessarily the late answer to a round
// the receiver already gave up on (no request is outstanding during
// Idle), so it is drained, not fatal — but a drained frame means the
// measured time covers more than one round trip, so it does not update
// the estimate.
func (p *Prober) ping() error {
	t0 := time.Now()
	if err := p.writeCtrl(wire.MsgPing, nil); err != nil {
		return err
	}
	clean := true
	for {
		mt, _, err := p.readCtrl()
		if err != nil {
			return fmt.Errorf("udprobe: awaiting pong: %w", err)
		}
		switch mt {
		case wire.MsgPong:
			if clean {
				p.rtt = time.Since(t0)
				p.rttAt = time.Now()
			}
			return nil
		case wire.MsgStreamDone:
			// Stale answer to an abandoned round; keep draining.
			clean = false
		default:
			return fmt.Errorf("udprobe: expected pong, got %v", mt)
		}
	}
}

// SendStream asks the sender for one stream and collects its packets.
func (p *Prober) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	var res pathload.StreamResult
	if spec.Fleet < 0 {
		// Wire fleet indices are unsigned; the init-probe's -1 maps to
		// the top of the range.
		spec.Fleet = 1<<31 - 1
	}
	p.gen++
	req := wire.StreamRequest{
		Gen:      p.gen,
		Fleet:    uint32(spec.Fleet),
		Stream:   uint32(spec.Index),
		K:        uint32(spec.K),
		L:        uint32(spec.L),
		PeriodNs: uint64(spec.T.Nanoseconds()),
	}

	// A stale RTT estimate mis-sizes the collection deadline below and
	// the caller's inter-stream gaps; re-measure it first.
	if time.Since(p.rttAt) > p.cfg.RTTRefresh {
		if err := p.ping(); err != nil {
			return res, err
		}
	}
	if err := p.drainData(); err != nil {
		return res, err
	}
	if err := p.writeCtrl(wire.MsgStreamRequest, wire.MarshalStreamRequest(req)); err != nil {
		return res, err
	}

	type sample struct {
		seq int
		owd time.Duration
	}
	var got []sample
	// Duplicated datagrams must not count toward the spec.K exit
	// condition: K duplicates would end collection with real packets
	// still in flight. Dedup by seq as packets arrive.
	seen := make(map[uint32]bool, spec.K)
	deadline := time.Now().Add(spec.Duration() + p.rtt + p.cfg.CollectSlack)
	for len(got) < spec.K {
		if err := p.udp.SetReadDeadline(deadline); err != nil {
			return res, fmt.Errorf("udprobe: data deadline: %w", err)
		}
		n, err := p.udp.Read(p.buf)
		recv := time.Now()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				break // the rest are lost
			}
			return res, fmt.Errorf("udprobe: data read: %w", err)
		}
		hdr, err := wire.UnmarshalProbe(p.buf[:n])
		if err != nil {
			continue // stray datagram on our port
		}
		if hdr.Gen != req.Gen || hdr.Fleet != req.Fleet || hdr.Stream != req.Stream {
			continue // straggler from an earlier stream or abandoned round
		}
		if seen[hdr.Seq] {
			continue // duplicated datagram
		}
		seen[hdr.Seq] = true
		got = append(got, sample{
			seq: int(hdr.Seq),
			owd: time.Duration(recv.UnixNano() - hdr.SentNs),
		})
	}

	// The sender's verdict: how many packets went out, and whether the
	// pacing was disturbed. Answers are strictly ordered on the control
	// channel, but a round the receiver timed out on leaves its
	// StreamDone in flight — drain those stale answers (their Gen is
	// older than this request's) until ours arrives, resynchronizing
	// the session instead of failing every round after an error.
	done, err := p.awaitStreamDone(req.Gen)
	if err != nil {
		return res, err
	}

	sort.Slice(got, func(i, j int) bool { return got[i].seq < got[j].seq })
	res.Sent = int(done.Sent)
	res.Flagged = done.Flagged != 0
	for _, s := range got {
		res.OWDs = append(res.OWDs, pathload.OWDSample{Seq: s.seq, OWD: s.owd})
	}
	return res, nil
}

// awaitStreamDone reads control messages until the StreamDone answering
// generation gen arrives, discarding StreamDones of earlier generations
// (answers to requests this session already gave up on). Anything else
// on the channel is a protocol error.
func (p *Prober) awaitStreamDone(gen uint32) (wire.StreamDone, error) {
	for {
		mt, payload, err := p.readCtrl()
		if err != nil {
			return wire.StreamDone{}, fmt.Errorf("udprobe: awaiting stream-done: %w", err)
		}
		if mt == wire.MsgPong {
			continue // a timed-out keepalive's answer arriving late
		}
		if mt != wire.MsgStreamDone {
			return wire.StreamDone{}, fmt.Errorf("udprobe: expected stream-done, got %v", mt)
		}
		done, err := wire.UnmarshalStreamDone(payload)
		if err != nil {
			return wire.StreamDone{}, err
		}
		if done.Gen == gen {
			return done, nil
		}
		if done.Gen > gen {
			return wire.StreamDone{}, fmt.Errorf("udprobe: stream-done for future generation %d (at %d)", done.Gen, gen)
		}
		// Stale answer to an abandoned round; keep draining.
	}
}

// drainData discards stale datagrams buffered on the data socket.
func (p *Prober) drainData() error {
	for {
		if err := p.udp.SetReadDeadline(time.Now()); err != nil {
			return fmt.Errorf("udprobe: drain deadline: %w", err)
		}
		if _, err := p.udp.Read(p.buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil
			}
			return fmt.Errorf("udprobe: drain read: %w", err)
		}
	}
}

func (p *Prober) writeCtrl(t wire.MsgType, payload []byte) error {
	if err := p.ctrl.SetWriteDeadline(time.Now().Add(p.cfg.ControlTimeout)); err != nil {
		return fmt.Errorf("udprobe: control deadline: %w", err)
	}
	return wire.WriteMessage(p.ctrl, t, payload)
}

func (p *Prober) readCtrl() (wire.MsgType, []byte, error) {
	if err := p.ctrl.SetReadDeadline(time.Now().Add(p.cfg.ControlTimeout)); err != nil {
		return 0, nil, fmt.Errorf("udprobe: control deadline: %w", err)
	}
	return wire.ReadMessage(p.ctrl)
}
