package udprobe

import (
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/wire"

	pathload "repro"
)

// ProberConfig tunes the receiver side.
type ProberConfig struct {
	// CollectSlack is added to the nominal stream duration plus RTT
	// when waiting for probe packets (default 200 ms).
	CollectSlack time.Duration
	// ControlTimeout bounds control-channel exchanges (default 10 s).
	ControlTimeout time.Duration
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.CollectSlack == 0 {
		c.CollectSlack = 200 * time.Millisecond
	}
	if c.ControlTimeout == 0 {
		c.ControlTimeout = 10 * time.Second
	}
	return c
}

// A Prober measures the path from a remote sender daemon to this host.
// It implements pathload.Prober: each SendStream asks the sender to
// emit one periodic UDP stream and timestamps its arrivals locally.
// One-way delays are relative — sender and receiver clocks are never
// synchronized; SLoPS only consumes OWD differences.
type Prober struct {
	cfg  ProberConfig
	ctrl net.Conn
	udp  *net.UDPConn
	rtt  time.Duration
	buf  []byte
}

// Dial connects to a sender daemon's control address and performs the
// hello handshake. The returned prober must be closed after use.
func Dial(senderAddr string, cfg ProberConfig) (*Prober, error) {
	cfg = cfg.withDefaults()
	udp, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		return nil, fmt.Errorf("udprobe: data listen: %w", err)
	}
	ctrl, err := net.DialTimeout("tcp", senderAddr, cfg.ControlTimeout)
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("udprobe: control dial: %w", err)
	}
	p := &Prober{cfg: cfg, ctrl: ctrl, udp: udp, buf: make([]byte, 64<<10)}

	port := uint16(udp.LocalAddr().(*net.UDPAddr).Port)
	t0 := time.Now()
	if err := p.writeCtrl(wire.MsgHello, wire.MarshalHello(wire.Hello{Version: wire.Version, UDPPort: port})); err != nil {
		p.Close()
		return nil, err
	}
	mt, _, err := p.readCtrl()
	if err != nil {
		p.Close()
		return nil, fmt.Errorf("udprobe: hello handshake: %w", err)
	}
	if mt != wire.MsgHelloAck {
		p.Close()
		return nil, fmt.Errorf("udprobe: expected hello-ack, got %v", mt)
	}
	p.rtt = time.Since(t0)
	return p, nil
}

// Close says goodbye to the sender and releases sockets.
func (p *Prober) Close() error {
	if p.ctrl != nil {
		// Best-effort farewell; the session also dies with the socket.
		p.ctrl.SetWriteDeadline(time.Now().Add(time.Second))
		_ = wire.WriteMessage(p.ctrl, wire.MsgBye, nil)
		p.ctrl.Close()
	}
	if p.udp != nil {
		p.udp.Close()
	}
	return nil
}

// RTT reports the control-channel round-trip time measured at
// handshake, pathload's floor for inter-stream gaps.
func (p *Prober) RTT() time.Duration { return p.rtt }

// Idle sleeps; on a real network, waiting is waiting.
func (p *Prober) Idle(d time.Duration) error {
	time.Sleep(d)
	return nil
}

// SendStream asks the sender for one stream and collects its packets.
func (p *Prober) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	var res pathload.StreamResult
	if spec.Fleet < 0 {
		// Wire fleet indices are unsigned; the init-probe's -1 maps to
		// the top of the range.
		spec.Fleet = 1<<31 - 1
	}
	req := wire.StreamRequest{
		Fleet:    uint32(spec.Fleet),
		Stream:   uint32(spec.Index),
		K:        uint32(spec.K),
		L:        uint32(spec.L),
		PeriodNs: uint64(spec.T.Nanoseconds()),
	}

	if err := p.drainData(); err != nil {
		return res, err
	}
	if err := p.writeCtrl(wire.MsgStreamRequest, wire.MarshalStreamRequest(req)); err != nil {
		return res, err
	}

	type sample struct {
		seq int
		owd time.Duration
	}
	var got []sample
	deadline := time.Now().Add(spec.Duration() + p.rtt + p.cfg.CollectSlack)
	for len(got) < spec.K {
		if err := p.udp.SetReadDeadline(deadline); err != nil {
			return res, fmt.Errorf("udprobe: data deadline: %w", err)
		}
		n, err := p.udp.Read(p.buf)
		recv := time.Now()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				break // the rest are lost
			}
			return res, fmt.Errorf("udprobe: data read: %w", err)
		}
		hdr, err := wire.UnmarshalProbe(p.buf[:n])
		if err != nil {
			continue // stray datagram on our port
		}
		if hdr.Fleet != req.Fleet || hdr.Stream != req.Stream {
			continue // straggler from an earlier stream
		}
		got = append(got, sample{
			seq: int(hdr.Seq),
			owd: time.Duration(recv.UnixNano() - hdr.SentNs),
		})
	}

	// The sender's verdict: how many packets went out, and whether the
	// pacing was disturbed.
	mt, payload, err := p.readCtrl()
	if err != nil {
		return res, fmt.Errorf("udprobe: awaiting stream-done: %w", err)
	}
	if mt != wire.MsgStreamDone {
		return res, fmt.Errorf("udprobe: expected stream-done, got %v", mt)
	}
	done, err := wire.UnmarshalStreamDone(payload)
	if err != nil {
		return res, err
	}

	sort.Slice(got, func(i, j int) bool { return got[i].seq < got[j].seq })
	res.Sent = int(done.Sent)
	res.Flagged = done.Flagged != 0
	for i, s := range got {
		if i > 0 && got[i-1].seq == s.seq {
			continue // duplicated datagram
		}
		res.OWDs = append(res.OWDs, pathload.OWDSample{Seq: s.seq, OWD: s.owd})
	}
	return res, nil
}

// drainData discards stale datagrams buffered on the data socket.
func (p *Prober) drainData() error {
	for {
		if err := p.udp.SetReadDeadline(time.Now()); err != nil {
			return fmt.Errorf("udprobe: drain deadline: %w", err)
		}
		if _, err := p.udp.Read(p.buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil
			}
			return fmt.Errorf("udprobe: drain read: %w", err)
		}
	}
}

func (p *Prober) writeCtrl(t wire.MsgType, payload []byte) error {
	if err := p.ctrl.SetWriteDeadline(time.Now().Add(p.cfg.ControlTimeout)); err != nil {
		return fmt.Errorf("udprobe: control deadline: %w", err)
	}
	return wire.WriteMessage(p.ctrl, t, payload)
}

func (p *Prober) readCtrl() (wire.MsgType, []byte, error) {
	if err := p.ctrl.SetReadDeadline(time.Now().Add(p.cfg.ControlTimeout)); err != nil {
		return 0, nil, fmt.Errorf("udprobe: control deadline: %w", err)
	}
	return wire.ReadMessage(p.ctrl)
}
