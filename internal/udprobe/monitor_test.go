package udprobe

import (
	"testing"
	"time"

	pathload "repro"
)

// restartableSender runs a Sender daemon that can be killed and
// brought back on the same address, the shape of a daemon restart in a
// real deployment.
type restartableSender struct {
	t    *testing.T
	addr string
	snd  *Sender
	done chan struct{} // closed when the current Serve has returned
}

// serve supervises the current daemon so kill (and test cleanup) can
// wait for Serve — and every session goroutine that logs through
// t.Logf — to finish.
func (r *restartableSender) serve() {
	done := make(chan struct{})
	r.done = done
	snd := r.snd
	go func() {
		defer close(done)
		snd.Serve()
	}()
}

func startRestartable(t *testing.T) *restartableSender {
	t.Helper()
	r := &restartableSender{t: t}
	snd, err := NewSender("127.0.0.1:0", SenderConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	r.addr = snd.Addr().String()
	r.snd = snd
	r.serve()
	t.Cleanup(func() { r.kill() })
	return r
}

// kill terminates the daemon and every live session, then waits for
// them to unwind. Idempotent (Sender.Close is).
func (r *restartableSender) kill() {
	r.snd.Close()
	<-r.done
}

// restart brings the daemon back on its original address, retrying the
// bind briefly in case the port lingers.
func (r *restartableSender) restart() {
	r.t.Helper()
	var err error
	for i := 0; i < 100; i++ {
		var snd *Sender
		snd, err = NewSender(r.addr, SenderConfig{Logf: r.t.Logf})
		if err == nil {
			r.snd = snd
			r.serve()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	r.t.Fatalf("rebinding %s: %v", r.addr, err)
}

// realnetCfg keeps loopback measurements small and quick.
func realnetCfg() pathload.Config {
	return pathload.Config{
		PacketsPerStream: 20,
		StreamsPerFleet:  2,
		MaxFleets:        3,
		MinPeriod:        100 * time.Microsecond,
	}
}

// TestMonitorOverUDProbeSenderRestartHeals is the real-network monitor
// loop closed end to end: one udprobe Sender daemon serves two monitor
// paths concurrently over loopback; mid-run the daemon is killed and
// restarted. Both paths must publish error samples for the outage and
// then heal — later rounds succeed through re-dialed sessions.
func TestMonitorOverUDProbeSenderRestartHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive loopback fleet")
	}
	r := startRestartable(t)
	factory := func() (pathload.Prober, error) {
		return Dial(r.addr, ProberConfig{ControlTimeout: 2 * time.Second})
	}

	m, err := pathload.NewMonitor(pathload.MonitorConfig{
		Workers:   2,
		Interval:  20 * time.Millisecond,
		Config:    realnetCfg(),
		Reconnect: pathload.Reconnect{Backoff: 50 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"path-a", "path-b"} {
		if err := m.AddPathFactory(id, factory); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	// Phase 1: both paths measure cleanly. Phase 2: the daemon dies;
	// wait for an error sample from each path. Phase 3: the daemon is
	// back; wait for each path to succeed again.
	okBefore := map[string]bool{}
	errDuring := map[string]bool{}
	okAfter := map[string]bool{}
	phase := 1
	deadline := time.After(90 * time.Second)
	results := m.Results()
loop:
	for {
		select {
		case s, ok := <-results:
			if !ok {
				t.Fatal("results channel closed before the fleet healed")
			}
			switch phase {
			case 1:
				if s.Err != nil {
					t.Fatalf("%s errored before the outage: %v", s.Path, s.Err)
				}
				okBefore[s.Path] = true
				if len(okBefore) == 2 {
					r.kill()
					phase = 2
				}
			case 2:
				if s.Err != nil {
					errDuring[s.Path] = true
				}
				if len(errDuring) == 2 {
					r.restart()
					phase = 3
				}
			case 3:
				if s.Err == nil {
					okAfter[s.Path] = true
					if len(okAfter) == 2 {
						m.Stop()
						break loop
					}
				}
			}
		case <-deadline:
			t.Fatalf("fleet did not heal: phase %d, before=%v during=%v after=%v", phase, okBefore, errDuring, okAfter)
		}
	}
	for range results {
	}
	m.Wait()
}
