package udprobe

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"

	pathload "repro"
)

// TestHandshakeNegotiatesNewestVersion: two current-build peers must
// settle on the newest protocol version and measure normally.
func TestHandshakeNegotiatesNewestVersion(t *testing.T) {
	addr := startSender(t)
	p, err := Dial(addr, ProberConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.NegotiatedVersion(); got != wire.Version {
		t.Fatalf("negotiated version %d, want %d", got, wire.Version)
	}
	res, err := p.SendStream(pathload.StreamSpec{K: 10, L: 150, T: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 10 {
		t.Fatalf("sent %d of 10 after version-3 handshake", res.Sent)
	}
}

// TestLegacyReceiverAgainstNewSender: a version-2 receiver opens with
// the 4-byte exact hello and ignores the ack payload (as the old Dial
// code did). The new sender must accept the legacy form, ack, and
// serve streams — mixed fleets where the sender upgrades first keep
// working.
func TestLegacyReceiverAgainstNewSender(t *testing.T) {
	addr := startSender(t)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	udp, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	port := uint16(udp.LocalAddr().(*net.UDPAddr).Port)

	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{Version: wire.VersionMin, UDPPort: port})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	mt, payload, err := wire.ReadMessage(conn)
	if err != nil || mt != wire.MsgHelloAck {
		t.Fatalf("legacy hello answered with %v, %v", mt, err)
	}
	// The ack payload names the chosen version — the legacy hello's
	// exact version, not the sender's newer one.
	ack, err := wire.UnmarshalHelloAck(payload, wire.VersionMin)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Version != wire.VersionMin {
		t.Fatalf("sender chose version %d for a version-%d receiver", ack.Version, wire.VersionMin)
	}

	// A legacy receiver still measures: stream request → probes → done.
	const k = 10
	req := wire.StreamRequest{Gen: 1, K: k, L: 150, PeriodNs: 300_000}
	if err := wire.WriteMessage(conn, wire.MsgStreamRequest, wire.MarshalStreamRequest(req)); err != nil {
		t.Fatal(err)
	}
	udp.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 2048)
	for got := 0; got < k; {
		n, err := udp.Read(buf)
		if err != nil {
			t.Fatalf("after %d probes: %v", got, err)
		}
		if _, err := wire.UnmarshalProbe(buf[:n]); err == nil {
			got++
		}
	}
	mt, payload, err = wire.ReadMessage(conn)
	if err != nil || mt != wire.MsgStreamDone {
		t.Fatalf("stream answered with %v, %v", mt, err)
	}
	done, err := wire.UnmarshalStreamDone(payload)
	if err != nil || done.Sent != k {
		t.Fatalf("stream-done %+v, %v; want %d sent", done, err, k)
	}
}

// startLegacySender runs a minimal pre-range (version ≤ 2) sender: a
// 6-byte hello is unparseable to it, so it drops that session; a
// 4-byte version-2 hello gets the old empty ack, and stream requests
// are served. Each connection is one session, so the prober's
// fallback redial reaches a fresh accept.
func startLegacySender(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				mt, payload, err := wire.ReadMessage(conn)
				if err != nil || mt != wire.MsgHello {
					return
				}
				hello, err := wire.UnmarshalHello(payload) // strict 4-byte, as in version 2
				if err != nil || hello.Version != wire.VersionMin {
					return // range hello: incomprehensible, hang up
				}
				host, _, _ := net.SplitHostPort(conn.RemoteAddr().String())
				udp, err := net.DialUDP("udp", nil, &net.UDPAddr{
					IP:   net.ParseIP(host),
					Port: int(hello.UDPPort),
				})
				if err != nil {
					return
				}
				defer udp.Close()
				if err := wire.WriteMessage(conn, wire.MsgHelloAck, nil); err != nil {
					return
				}
				for {
					mt, payload, err := wire.ReadMessage(conn)
					if err != nil || mt != wire.MsgStreamRequest {
						return
					}
					req, err := wire.UnmarshalStreamRequest(payload)
					if err != nil {
						return
					}
					for i := uint32(0); i < req.K; i++ {
						buf, _ := wire.MarshalProbe(wire.ProbeHeader{
							Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream,
							Seq: i, SentNs: time.Now().UnixNano(),
						}, int(req.L))
						udp.Write(buf)
					}
					done := wire.StreamDone{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream, Sent: req.K}
					if err := wire.WriteMessage(conn, wire.MsgStreamDone, wire.MarshalStreamDone(done)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestNewReceiverFallsBackToLegacySender: against a pre-range sender
// the range hello dies, the prober must redial with the legacy exact
// form, settle on the old version, and measure — mixed fleets where
// the receiver upgrades first keep working too.
func TestNewReceiverFallsBackToLegacySender(t *testing.T) {
	addr := startLegacySender(t)
	p, err := Dial(addr, ProberConfig{ControlTimeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("Dial against a legacy sender: %v", err)
	}
	defer p.Close()
	if got := p.NegotiatedVersion(); got != wire.VersionMin {
		t.Fatalf("negotiated version %d against a legacy sender, want %d", got, wire.VersionMin)
	}
	res, err := p.SendStream(pathload.StreamSpec{K: 10, L: 150, T: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 10 {
		t.Fatalf("sent %d of 10 over the fallback session", res.Sent)
	}
}

// TestSenderRejectsDisjointVersionRange: a receiver advertising only
// versions newer than this build must be refused at the handshake, not
// mis-served.
func TestSenderRejectsDisjointVersionRange(t *testing.T) {
	addr := startSender(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.HelloRange{Min: wire.Version + 1, Max: wire.Version + 9, UDPPort: 1}
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHelloRange(hello)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := wire.ReadMessage(conn); err == nil {
		t.Fatal("sender acknowledged a version range it cannot speak")
	}
}

// startLaggedSender runs a control server whose replies (pong and
// stream-done) wait for the current value of *lagNs first — a control
// path whose latency the test can shift mid-session.
func startLaggedSender(t *testing.T, lagNs *atomic.Int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		mt, payload, err := wire.ReadMessage(conn)
		if err != nil || mt != wire.MsgHello {
			return
		}
		hello, err := wire.ParseHello(payload)
		if err != nil {
			return
		}
		version, err := wire.Negotiate(hello.Min, hello.Max)
		if err != nil {
			return
		}
		host, _, _ := net.SplitHostPort(conn.RemoteAddr().String())
		udp, err := net.DialUDP("udp", nil, &net.UDPAddr{IP: net.ParseIP(host), Port: int(hello.UDPPort)})
		if err != nil {
			return
		}
		defer udp.Close()
		if err := wire.WriteMessage(conn, wire.MsgHelloAck, wire.MarshalHelloAck(wire.HelloAck{Version: version})); err != nil {
			return
		}
		for {
			mt, payload, err := wire.ReadMessage(conn)
			if err != nil {
				return
			}
			time.Sleep(time.Duration(lagNs.Load()))
			switch mt {
			case wire.MsgPing:
				if err := wire.WriteMessage(conn, wire.MsgPong, nil); err != nil {
					return
				}
			case wire.MsgStreamRequest:
				req, err := wire.UnmarshalStreamRequest(payload)
				if err != nil {
					return
				}
				for i := uint32(0); i < req.K; i++ {
					buf, _ := wire.MarshalProbe(wire.ProbeHeader{
						Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream,
						Seq: i, SentNs: time.Now().UnixNano(),
					}, int(req.L))
					udp.Write(buf)
				}
				done := wire.StreamDone{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream, Sent: req.K}
				if err := wire.WriteMessage(conn, wire.MsgStreamDone, wire.MarshalStreamDone(done)); err != nil {
					return
				}
			default:
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestRTTRefreshTracksControlLatencyShift: the control path's latency
// rises mid-session; a prober that only measured the RTT at Dial would
// keep sizing gaps and deadlines with the stale value forever. The
// pre-stream refresh must fold the new latency into RTT().
func TestRTTRefreshTracksControlLatencyShift(t *testing.T) {
	var lagNs atomic.Int64
	addr := startLaggedSender(t, &lagNs)

	p, err := Dial(addr, ProberConfig{
		ControlTimeout: 3 * time.Second,
		RTTRefresh:     time.Nanosecond, // always stale: every stream re-measures
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	dialRTT := p.RTT()
	if dialRTT > 20*time.Millisecond {
		t.Fatalf("loopback dial RTT %v implausibly high, the shift below would prove nothing", dialRTT)
	}

	// The control path degrades after the handshake.
	const shift = 50 * time.Millisecond
	lagNs.Store(int64(shift))

	if _, err := p.SendStream(pathload.StreamSpec{K: 5, L: 150, T: 300 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if got := p.RTT(); got < shift {
		t.Fatalf("RTT() = %v after a %v control latency shift (dial-time estimate was %v) — the estimate was never refreshed", got, shift, dialRTT)
	}
}

// TestIdleKeepaliveRefreshesRTT: keepalive pings during a long Idle
// must refresh the estimate too, so a session that merely waits
// between rounds also tracks latency drift.
func TestIdleKeepaliveRefreshesRTT(t *testing.T) {
	var lagNs atomic.Int64
	addr := startLaggedSender(t, &lagNs)

	p, err := Dial(addr, ProberConfig{
		ControlTimeout: 3 * time.Second,
		KeepAlive:      20 * time.Millisecond, // chunk the idle into keepalive pings
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const shift = 40 * time.Millisecond
	lagNs.Store(int64(shift))
	if err := p.Idle(60 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := p.RTT(); got < shift {
		t.Fatalf("RTT() = %v after idle keepalives under a %v latency shift — keepalives did not refresh the estimate", got, shift)
	}
}
