// Package udprobe implements pathload on real networks: a sender
// daemon that emits periodic UDP probe streams on request, and a
// receiver-side Prober that drives the measurement over a TCP control
// channel and timestamps arrivals.
//
// Timing on a garbage-collected runtime is the hard part (the reason
// the paper-figure evaluation runs on the simulator instead): a GC
// pause or scheduler preemption in the middle of a stream stretches an
// interspacing and fakes a delay trend. The sender defends itself the
// way the original tool does — it timestamps every packet at emission,
// paces with a hybrid sleep/spin loop pinned to an OS thread, and
// flags streams whose actual interspacings deviated, so the analysis
// discards them instead of misreading them.
package udprobe

import (
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/wire"
)

// SenderConfig tunes the sender daemon.
type SenderConfig struct {
	// MaxK and MaxL bound per-stream resource use against malformed or
	// hostile requests (defaults 10000 packets and 64 kB).
	MaxK, MaxL int
	// SpinThreshold is the remaining-wait below which the pacer spins
	// instead of sleeping (default 500 µs).
	SpinThreshold time.Duration
	// GapFactor flags a stream when any actual interspacing exceeds
	// GapFactor·T + SpinThreshold (default 3).
	GapFactor float64
	// SessionTimeout bounds how long a control session may sit idle
	// between messages before the daemon drops it (default 2 minutes).
	// A vanished receiver — half-open TCP, no MsgBye — would otherwise
	// hold its session goroutine and data socket forever.
	SessionTimeout time.Duration
	// MaxSessions caps concurrent control sessions (default 64);
	// connections beyond the cap are refused at accept.
	MaxSessions int
	// EmitConcurrency caps how many probe streams may pace onto the
	// wire at once (default 1: stream emissions are serialized).
	// Concurrent streams share the NIC, so their pacing loops skew each
	// other's interspacings — two overlapping sessions each measuring a
	// clean path would flag or, worse, subtly bias each other's
	// streams. Sessions beyond the cap wait their turn at the admission
	// gate; the control channel's stream-done reply is late, but the
	// packets that do go out are paced truthfully. Raise it only on
	// hosts with known NIC headroom.
	EmitConcurrency int
	// Logf, if set, receives diagnostics.
	Logf func(format string, args ...any)
}

func (c SenderConfig) withDefaults() SenderConfig {
	if c.MaxK == 0 {
		c.MaxK = 10_000
	}
	if c.MaxL == 0 {
		c.MaxL = 64 << 10
	}
	if c.SpinThreshold == 0 {
		c.SpinThreshold = 500 * time.Microsecond
	}
	if c.GapFactor == 0 {
		c.GapFactor = 3
	}
	if c.SessionTimeout == 0 {
		c.SessionTimeout = 2 * time.Minute
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.EmitConcurrency == 0 {
		c.EmitConcurrency = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// A Sender is the pathload sender daemon: it accepts control sessions
// and emits probe streams toward each session's receiver.
type Sender struct {
	cfg SenderConfig
	ln  net.Listener

	// emitSem is the emission admission gate: a session must hold a
	// slot while its pacing loop runs, so at most EmitConcurrency
	// streams contend for the NIC at once.
	emitSem chan struct{}
	quit    chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewSender listens for control connections on addr (e.g. ":8365").
func NewSender(addr string, cfg SenderConfig) (*Sender, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("udprobe: control listen: %w", err)
	}
	cfg = cfg.withDefaults()
	return &Sender{
		cfg:     cfg,
		ln:      ln,
		emitSem: make(chan struct{}, cfg.EmitConcurrency),
		quit:    make(chan struct{}),
		conns:   map[net.Conn]struct{}{},
	}, nil
}

// Addr returns the control listener's address.
func (s *Sender) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting control sessions and terminates the live ones:
// their connections are closed, so in-flight session loops unwind at
// their next control read. It is idempotent.
func (s *Sender) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// track registers a session connection; it reports false when the
// sender is closed or at its session cap, in which case the caller must
// drop the connection.
func (s *Sender) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.cfg.MaxSessions {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Sender) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Serve accepts and serves control sessions until the listener closes.
// Sessions run concurrently, one goroutine and one UDP data socket
// each, so a single daemon can serve a whole monitored fleet of
// receivers. Stream emissions, though, pass through the sender's
// admission gate (EmitConcurrency, default 1): concurrent pacing loops
// share the host's NIC and would skew each other's interspacings, so
// overlapping requests take turns on the wire. The per-packet
// timestamps and the Flagged verdict still expose any stream the
// remaining contention disturbed, and fleet-side admission policies
// (pathload.MonitorConfig.Admission) decide how much simultaneous
// probing to request in the first place.
func (s *Sender) Serve() error {
	defer s.wg.Wait()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("udprobe: accept: %w", err)
		}
		if !s.track(conn) {
			s.cfg.Logf("udprobe: refusing session from %v (closed or at the %d-session cap)", conn.RemoteAddr(), s.cfg.MaxSessions)
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			if err := s.serveSession(conn); err != nil {
				s.cfg.Logf("udprobe: session from %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// readSession reads one control message under the session idle
// deadline.
func (s *Sender) readSession(conn net.Conn) (wire.MsgType, []byte, error) {
	if err := conn.SetReadDeadline(time.Now().Add(s.cfg.SessionTimeout)); err != nil {
		return 0, nil, fmt.Errorf("session deadline: %w", err)
	}
	return wire.ReadMessage(conn)
}

// serveSession handles one control session.
func (s *Sender) serveSession(conn net.Conn) error {
	defer conn.Close()

	t, payload, err := s.readSession(conn)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if t != wire.MsgHello {
		return fmt.Errorf("expected hello, got %v", t)
	}
	// Either hello form: the version-3 range hello or the legacy
	// 4-byte exact-version hello (a degenerate range).
	hello, err := wire.ParseHello(payload)
	if err != nil {
		return err
	}
	version, err := wire.Negotiate(hello.Min, hello.Max)
	if err != nil {
		return err
	}

	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return fmt.Errorf("parsing peer address: %w", err)
	}
	dst, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, fmt.Sprint(hello.UDPPort)))
	if err != nil {
		return fmt.Errorf("resolving receiver data address: %w", err)
	}
	udp, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return fmt.Errorf("opening data socket: %w", err)
	}
	defer udp.Close()

	// The ack names the chosen version. Legacy receivers discard the
	// ack payload, so they interoperate without noticing it.
	if err := wire.WriteMessage(conn, wire.MsgHelloAck, wire.MarshalHelloAck(wire.HelloAck{Version: version})); err != nil {
		return err
	}

	for {
		t, payload, err := s.readSession(conn)
		if err != nil {
			return fmt.Errorf("reading control message: %w", err)
		}
		switch t {
		case wire.MsgStreamRequest:
			req, err := wire.UnmarshalStreamRequest(payload)
			if err != nil {
				return err
			}
			done, err := s.emitStream(udp, req)
			if err != nil {
				return fmt.Errorf("emitting stream %d/%d: %w", req.Fleet, req.Stream, err)
			}
			if err := wire.WriteMessage(conn, wire.MsgStreamDone, wire.MarshalStreamDone(done)); err != nil {
				return err
			}
		case wire.MsgPing:
			// Keepalive across a long re-measurement gap; reading it
			// already refreshed the session idle deadline.
			if err := wire.WriteMessage(conn, wire.MsgPong, nil); err != nil {
				return err
			}
		case wire.MsgBye:
			return nil
		default:
			return fmt.Errorf("unexpected control message %v", t)
		}
	}
}

// emitStream paces one periodic stream onto the data socket.
func (s *Sender) emitStream(udp *net.UDPConn, req wire.StreamRequest) (wire.StreamDone, error) {
	done := wire.StreamDone{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream}
	if int(req.K) > s.cfg.MaxK || int(req.L) > s.cfg.MaxL || req.K == 0 || int(req.L) < wire.ProbeHeaderSize {
		return done, fmt.Errorf("stream request out of bounds: K=%d L=%d", req.K, req.L)
	}
	period := time.Duration(req.PeriodNs)
	if period <= 0 {
		return done, fmt.Errorf("non-positive period %v", period)
	}

	// Admission gate: wait for an emission slot so overlapping sessions
	// cannot skew each other's pacing.
	select {
	case s.emitSem <- struct{}{}:
		defer func() { <-s.emitSem }()
	case <-s.quit:
		return done, errors.New("sender closed while awaiting an emission slot")
	}

	// Pin the pacing loop to an OS thread: a migration mid-stream is a
	// guaranteed timing glitch.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	flagLimit := time.Duration(s.cfg.GapFactor*float64(period)) + s.cfg.SpinThreshold
	start := time.Now()
	prev := start
	flagged := false

	for i := uint32(0); i < req.K; i++ {
		target := start.Add(time.Duration(i) * period)
		sleepUntil(target, s.cfg.SpinThreshold)

		now := time.Now()
		buf, err := wire.MarshalProbe(wire.ProbeHeader{
			Gen:    req.Gen,
			Fleet:  req.Fleet,
			Stream: req.Stream,
			Seq:    i,
			SentNs: now.UnixNano(),
		}, int(req.L))
		if err != nil {
			return done, err
		}
		if _, err := udp.Write(buf); err != nil {
			// A send failure mid-stream invalidates the stream but not
			// the session; report what was sent.
			s.cfg.Logf("udprobe: data send: %v", err)
			flagged = true
			break
		}
		if i > 0 && now.Sub(prev) > flagLimit {
			flagged = true
		}
		prev = now
		done.Sent++
	}
	if flagged {
		done.Flagged = 1
	}
	return done, nil
}

// sleepUntil sleeps coarsely and then spins for the final approach, the
// standard defense against timer granularity and scheduler wake-up
// latency.
func sleepUntil(target time.Time, spin time.Duration) {
	for {
		rem := time.Until(target)
		if rem <= 0 {
			return
		}
		if rem > spin {
			time.Sleep(rem - spin)
			continue
		}
		// Busy-wait the last stretch.
		for time.Now().Before(target) {
		}
		return
	}
}

// ListenAndServe runs a sender daemon until its listener fails.
func ListenAndServe(addr string, cfg SenderConfig) error {
	s, err := NewSender(addr, cfg)
	if err != nil {
		return err
	}
	log.Printf("pathload sender: control on %v", s.Addr())
	return s.Serve()
}
