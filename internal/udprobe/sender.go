// Package udprobe implements pathload on real networks: a sender
// daemon that emits periodic UDP probe streams on request, and a
// receiver-side Prober that drives the measurement over a TCP control
// channel and timestamps arrivals.
//
// Timing on a garbage-collected runtime is the hard part (the reason
// the paper-figure evaluation runs on the simulator instead): a GC
// pause or scheduler preemption in the middle of a stream stretches an
// interspacing and fakes a delay trend. The sender defends itself the
// way the original tool does — it timestamps every packet at emission,
// paces with a hybrid sleep/spin loop pinned to an OS thread, and
// flags streams whose actual interspacings deviated, so the analysis
// discards them instead of misreading them.
package udprobe

import (
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"time"

	"repro/internal/wire"
)

// SenderConfig tunes the sender daemon.
type SenderConfig struct {
	// MaxK and MaxL bound per-stream resource use against malformed or
	// hostile requests (defaults 10000 packets and 64 kB).
	MaxK, MaxL int
	// SpinThreshold is the remaining-wait below which the pacer spins
	// instead of sleeping (default 500 µs).
	SpinThreshold time.Duration
	// GapFactor flags a stream when any actual interspacing exceeds
	// GapFactor·T + SpinThreshold (default 3).
	GapFactor float64
	// Logf, if set, receives diagnostics.
	Logf func(format string, args ...any)
}

func (c SenderConfig) withDefaults() SenderConfig {
	if c.MaxK == 0 {
		c.MaxK = 10_000
	}
	if c.MaxL == 0 {
		c.MaxL = 64 << 10
	}
	if c.SpinThreshold == 0 {
		c.SpinThreshold = 500 * time.Microsecond
	}
	if c.GapFactor == 0 {
		c.GapFactor = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// A Sender is the pathload sender daemon: it accepts control sessions
// and emits probe streams toward the session's receiver.
type Sender struct {
	cfg SenderConfig
	ln  net.Listener
}

// NewSender listens for control connections on addr (e.g. ":8365").
func NewSender(addr string, cfg SenderConfig) (*Sender, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("udprobe: control listen: %w", err)
	}
	return &Sender{cfg: cfg.withDefaults(), ln: ln}, nil
}

// Addr returns the control listener's address.
func (s *Sender) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting control sessions.
func (s *Sender) Close() error { return s.ln.Close() }

// Serve accepts and serves control sessions until the listener closes.
// Sessions are served one at a time: concurrent measurements through
// one sender would perturb each other by construction.
func (s *Sender) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("udprobe: accept: %w", err)
		}
		if err := s.serveSession(conn); err != nil {
			s.cfg.Logf("udprobe: session from %v: %v", conn.RemoteAddr(), err)
		}
	}
}

// serveSession handles one control session.
func (s *Sender) serveSession(conn net.Conn) error {
	defer conn.Close()

	t, payload, err := wire.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if t != wire.MsgHello {
		return fmt.Errorf("expected hello, got %v", t)
	}
	hello, err := wire.UnmarshalHello(payload)
	if err != nil {
		return err
	}
	if hello.Version != wire.Version {
		return fmt.Errorf("protocol version %d, want %d", hello.Version, wire.Version)
	}

	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return fmt.Errorf("parsing peer address: %w", err)
	}
	dst, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, fmt.Sprint(hello.UDPPort)))
	if err != nil {
		return fmt.Errorf("resolving receiver data address: %w", err)
	}
	udp, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return fmt.Errorf("opening data socket: %w", err)
	}
	defer udp.Close()

	if err := wire.WriteMessage(conn, wire.MsgHelloAck, nil); err != nil {
		return err
	}

	for {
		t, payload, err := wire.ReadMessage(conn)
		if err != nil {
			return fmt.Errorf("reading control message: %w", err)
		}
		switch t {
		case wire.MsgStreamRequest:
			req, err := wire.UnmarshalStreamRequest(payload)
			if err != nil {
				return err
			}
			done, err := s.emitStream(udp, req)
			if err != nil {
				return fmt.Errorf("emitting stream %d/%d: %w", req.Fleet, req.Stream, err)
			}
			if err := wire.WriteMessage(conn, wire.MsgStreamDone, wire.MarshalStreamDone(done)); err != nil {
				return err
			}
		case wire.MsgBye:
			return nil
		default:
			return fmt.Errorf("unexpected control message %v", t)
		}
	}
}

// emitStream paces one periodic stream onto the data socket.
func (s *Sender) emitStream(udp *net.UDPConn, req wire.StreamRequest) (wire.StreamDone, error) {
	done := wire.StreamDone{Fleet: req.Fleet, Stream: req.Stream}
	if int(req.K) > s.cfg.MaxK || int(req.L) > s.cfg.MaxL || req.K == 0 || int(req.L) < wire.ProbeHeaderSize {
		return done, fmt.Errorf("stream request out of bounds: K=%d L=%d", req.K, req.L)
	}
	period := time.Duration(req.PeriodNs)
	if period <= 0 {
		return done, fmt.Errorf("non-positive period %v", period)
	}

	// Pin the pacing loop to an OS thread: a migration mid-stream is a
	// guaranteed timing glitch.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	flagLimit := time.Duration(s.cfg.GapFactor*float64(period)) + s.cfg.SpinThreshold
	start := time.Now()
	prev := start
	flagged := false

	for i := uint32(0); i < req.K; i++ {
		target := start.Add(time.Duration(i) * period)
		sleepUntil(target, s.cfg.SpinThreshold)

		now := time.Now()
		buf, err := wire.MarshalProbe(wire.ProbeHeader{
			Fleet:  req.Fleet,
			Stream: req.Stream,
			Seq:    i,
			SentNs: now.UnixNano(),
		}, int(req.L))
		if err != nil {
			return done, err
		}
		if _, err := udp.Write(buf); err != nil {
			// A send failure mid-stream invalidates the stream but not
			// the session; report what was sent.
			s.cfg.Logf("udprobe: data send: %v", err)
			flagged = true
			break
		}
		if i > 0 && now.Sub(prev) > flagLimit {
			flagged = true
		}
		prev = now
		done.Sent++
	}
	if flagged {
		done.Flagged = 1
	}
	return done, nil
}

// sleepUntil sleeps coarsely and then spins for the final approach, the
// standard defense against timer granularity and scheduler wake-up
// latency.
func sleepUntil(target time.Time, spin time.Duration) {
	for {
		rem := time.Until(target)
		if rem <= 0 {
			return
		}
		if rem > spin {
			time.Sleep(rem - spin)
			continue
		}
		// Busy-wait the last stretch.
		for time.Now().Before(target) {
		}
		return
	}
}

// ListenAndServe runs a sender daemon until its listener fails.
func ListenAndServe(addr string, cfg SenderConfig) error {
	s, err := NewSender(addr, cfg)
	if err != nil {
		return err
	}
	log.Printf("pathload sender: control on %v", s.Addr())
	return s.Serve()
}
