package udprobe

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"

	pathload "repro"
)

// scriptedSender is a hand-driven sender daemon for robustness tests:
// it speaks the control protocol on one session and lets the test
// script exactly which datagrams each stream request produces.
type scriptedSender struct {
	t  *testing.T
	ln net.Listener
	// handle receives each StreamRequest with the session's UDP data
	// socket and returns the StreamDone to answer with.
	handle func(req wire.StreamRequest, udp *net.UDPConn) wire.StreamDone

	mu   sync.Mutex
	conn net.Conn
	done chan struct{}
}

func startScripted(t *testing.T, handle func(wire.StreamRequest, *net.UDPConn) wire.StreamDone) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedSender{t: t, ln: ln, handle: handle, done: make(chan struct{})}
	// Cleanup tears the session down and waits for serve — which calls
	// t.Error/t.Logf — to return before the test completes.
	t.Cleanup(func() {
		ln.Close()
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
		}
		s.mu.Unlock()
		<-s.done
	})
	go s.serve()
	return ln.Addr().String()
}

func (s *scriptedSender) serve() {
	defer close(s.done)
	conn, err := s.ln.Accept()
	if err != nil {
		return
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	defer conn.Close()

	mt, payload, err := wire.ReadMessage(conn)
	if err != nil || mt != wire.MsgHello {
		return
	}
	hello, err := wire.ParseHello(payload)
	if err != nil {
		return
	}
	version, err := wire.Negotiate(hello.Min, hello.Max)
	if err != nil {
		return
	}
	host, _, _ := net.SplitHostPort(conn.RemoteAddr().String())
	dst, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, strconv.Itoa(int(hello.UDPPort))))
	if err != nil {
		return
	}
	udp, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return
	}
	defer udp.Close()
	if err := wire.WriteMessage(conn, wire.MsgHelloAck, wire.MarshalHelloAck(wire.HelloAck{Version: version})); err != nil {
		return
	}

	for {
		mt, payload, err := wire.ReadMessage(conn)
		if err != nil || mt == wire.MsgBye {
			return
		}
		if mt != wire.MsgStreamRequest {
			return
		}
		req, err := wire.UnmarshalStreamRequest(payload)
		if err != nil {
			return
		}
		done := s.handle(req, udp)
		if err := wire.WriteMessage(conn, wire.MsgStreamDone, wire.MarshalStreamDone(done)); err != nil {
			return
		}
	}
}

// sendProbe emits one probe datagram for the request.
func sendProbe(t *testing.T, udp *net.UDPConn, h wire.ProbeHeader, size int) {
	t.Helper()
	buf, err := wire.MarshalProbe(h, size)
	if err != nil {
		t.Error(err)
		return
	}
	if _, err := udp.Write(buf); err != nil {
		t.Logf("scripted send: %v", err)
	}
}

// TestProberDedupsAndFiltersDatagrams: every real packet arrives twice,
// interleaved with stray garbage, a wrong-stream straggler, and a
// stale-generation packet. Collection must still gather all K real
// packets: duplicates must not count toward the K exit condition (K
// duplicates would otherwise end collection with real packets still in
// flight), and the noise must be filtered, not collected.
func TestProberDedupsAndFiltersDatagrams(t *testing.T) {
	const K = 20
	addr := startScripted(t, func(req wire.StreamRequest, udp *net.UDPConn) wire.StreamDone {
		for i := uint32(0); i < req.K; i++ {
			h := wire.ProbeHeader{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream, Seq: i, SentNs: time.Now().UnixNano()}
			sendProbe(t, udp, h, int(req.L))
			sendProbe(t, udp, h, int(req.L)) // duplicated datagram
			if i == 2 {
				udp.Write([]byte("not a probe packet")) // stray
			}
			if i == 4 {
				// Straggler from another stream of the same fleet.
				sendProbe(t, udp, wire.ProbeHeader{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream + 7, Seq: i, SentNs: time.Now().UnixNano()}, int(req.L))
			}
			if i == 6 {
				// Late packet from an abandoned earlier round.
				sendProbe(t, udp, wire.ProbeHeader{Gen: req.Gen - 1, Fleet: req.Fleet, Stream: req.Stream, Seq: i, SentNs: time.Now().UnixNano()}, int(req.L))
			}
			time.Sleep(time.Duration(req.PeriodNs))
		}
		return wire.StreamDone{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream, Sent: req.K}
	})

	p, err := Dial(addr, ProberConfig{CollectSlack: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	res, err := p.SendStream(pathload.StreamSpec{K: K, L: 150, T: 500 * time.Microsecond, Fleet: 2, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != K {
		t.Errorf("Sent = %d, want %d", res.Sent, K)
	}
	if len(res.OWDs) != K {
		t.Fatalf("collected %d OWD samples, want %d: duplicates ended collection early or noise leaked in", len(res.OWDs), K)
	}
	for i, s := range res.OWDs {
		if s.Seq != i {
			t.Fatalf("OWDs[%d].Seq = %d, want %d (distinct, ordered)", i, s.Seq, i)
		}
	}
}

// TestProberResyncsAfterLateStreamDone: a sender whose StreamDone
// arrives after the receiver's control timeout fails that round — and
// must NOT poison the next one. The generation tag lets the next round
// discard the stale answer and use its own.
func TestProberResyncsAfterLateStreamDone(t *testing.T) {
	first := true
	addr := startScripted(t, func(req wire.StreamRequest, udp *net.UDPConn) wire.StreamDone {
		for i := uint32(0); i < req.K; i++ {
			sendProbe(t, udp, wire.ProbeHeader{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream, Seq: i, SentNs: time.Now().UnixNano()}, int(req.L))
		}
		if first {
			first = false
			// Answer the first round only after the prober has given up
			// on it: the done goes out stale.
			time.Sleep(700 * time.Millisecond)
		}
		return wire.StreamDone{Gen: req.Gen, Fleet: req.Fleet, Stream: req.Stream, Sent: req.K}
	})

	// CollectSlack must outlast the scripted 700 ms stale-done delay:
	// round two's packets are only emitted once the sender wakes up.
	p, err := Dial(addr, ProberConfig{ControlTimeout: 300 * time.Millisecond, CollectSlack: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	spec := pathload.StreamSpec{K: 10, L: 150, T: 200 * time.Microsecond, Fleet: 0, Index: 0}
	if _, err := p.SendStream(spec); err == nil {
		t.Fatal("first round should time out awaiting its stream-done")
	}

	// The second round must resynchronize past the stale done.
	spec.Index = 1
	res, err := p.SendStream(spec)
	if err != nil {
		t.Fatalf("round after a timed-out stream-done failed: %v", err)
	}
	if len(res.OWDs) != spec.K {
		t.Errorf("resynced round collected %d samples, want %d", len(res.OWDs), spec.K)
	}
}

// TestProberKeepAliveSurvivesLongIdle: an Idle longer than the
// sender's session timeout must not get the session reaped — the
// prober's keepalive pings refresh the idle deadline. The control
// prober, idling without keepalives, loses its session.
func TestProberKeepAliveSurvivesLongIdle(t *testing.T) {
	addr, _ := startSenderCfg(t, SenderConfig{Logf: t.Logf, SessionTimeout: 300 * time.Millisecond})
	spec := pathload.StreamSpec{K: 10, L: 150, T: 300 * time.Microsecond}

	alive, err := Dial(addr, ProberConfig{KeepAlive: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	if err := alive.Idle(time.Second); err != nil {
		t.Fatalf("keepalive idle: %v", err)
	}
	if _, err := alive.SendStream(spec); err != nil {
		t.Fatalf("stream after a keepalive-bridged gap: %v", err)
	}

	// Control: no pings within the gap → the daemon reaps the session.
	reaped, err := Dial(addr, ProberConfig{KeepAlive: time.Hour, ControlTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer reaped.Close()
	if err := reaped.Idle(time.Second); err != nil {
		t.Fatalf("plain sleep cannot fail locally: %v", err)
	}
	if _, err := reaped.SendStream(spec); err == nil {
		t.Fatal("session idled past the sender timeout without keepalives yet survived — the keepalive test proves nothing")
	}
}

// TestSenderServesConcurrentSessions: one daemon, two receivers at
// once. The second Dial must hand-shake while the first session is
// still open, and streams driven concurrently through both sessions
// must each arrive complete on their own data sockets.
func TestSenderServesConcurrentSessions(t *testing.T) {
	addr := startSender(t)

	p1, err := Dial(addr, ProberConfig{ControlTimeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("Dial p1: %v", err)
	}
	defer p1.Close()
	// With the old one-session-at-a-time daemon this Dial would hang
	// until p1 said goodbye.
	p2, err := Dial(addr, ProberConfig{ControlTimeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("Dial p2 while p1's session is open: %v", err)
	}
	defer p2.Close()

	type outcome struct {
		res pathload.StreamResult
		err error
	}
	run := func(p *Prober, fleet int, out chan<- outcome) {
		var last outcome
		for i := 0; i < 3; i++ {
			spec := pathload.StreamSpec{K: 30, L: 200, T: 300 * time.Microsecond, Fleet: fleet, Index: i}
			last.res, last.err = p.SendStream(spec)
			if last.err != nil {
				break
			}
		}
		out <- last
	}
	c1 := make(chan outcome, 1)
	c2 := make(chan outcome, 1)
	go run(p1, 1, c1)
	go run(p2, 2, c2)
	for name, c := range map[string]chan outcome{"p1": c1, "p2": c2} {
		o := <-c
		if o.err != nil {
			t.Fatalf("%s concurrent stream: %v", name, o.err)
		}
		if got := len(o.res.OWDs); got < 30*9/10 {
			t.Errorf("%s received %d of 30 packets on loopback", name, got)
		}
	}
}

// TestSenderSessionIdleTimeout: a receiver that vanishes without a
// MsgBye (half-open TCP) must not hold its session forever — the
// daemon's idle deadline reaps it, and fresh sessions keep working.
func TestSenderSessionIdleTimeout(t *testing.T) {
	addr, _ := startSenderCfg(t, SenderConfig{Logf: t.Logf, SessionTimeout: 200 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	udp, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	port := uint16(udp.LocalAddr().(*net.UDPAddr).Port)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{Version: wire.Version, UDPPort: port})); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadMessage(conn); err != nil || mt != wire.MsgHelloAck {
		t.Fatalf("handshake: %v %v", mt, err)
	}

	// Go silent. The daemon must drop the session at its idle deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, _, err := wire.ReadMessage(conn); err == nil {
		t.Fatal("idle session received an unexpected message instead of being dropped")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("idle session dropped only after %v, want the 200ms session timeout to reap it", waited)
	}

	// The daemon is not wedged: a well-behaved receiver still measures.
	p, err := Dial(addr, ProberConfig{})
	if err != nil {
		t.Fatalf("Dial after idle-session reap: %v", err)
	}
	defer p.Close()
	if _, err := p.SendStream(pathload.StreamSpec{K: 10, L: 150, T: 300 * time.Microsecond}); err != nil {
		t.Fatalf("SendStream after idle-session reap: %v", err)
	}
}

// TestSenderEmissionGateSerializesOverlappingStreams: two sessions
// firing stream requests at the same instant must not pace onto the
// wire simultaneously — concurrent pacing loops skew each other's
// interspacings. The admission gate (EmitConcurrency = 1) serializes
// them, so the two streams' sender-timestamp windows are disjoint.
func TestSenderEmissionGateSerializesOverlappingStreams(t *testing.T) {
	addr, _ := startSenderCfg(t, SenderConfig{Logf: t.Logf})

	type window struct {
		lo, hi int64 // SentNs extremes observed on this session's data socket
		sent   int
		err    error
	}
	const k, periodNs = 100, 500_000 // 50 ms emission per stream

	session := func(fleet uint32, release <-chan struct{}, out chan<- window) {
		var w window
		defer func() { out <- w }()
		fail := func(err error) { w.err = err }

		conn, err := net.Dial("tcp", addr)
		if err != nil {
			fail(err)
			return
		}
		defer conn.Close()
		udp, err := net.ListenUDP("udp", &net.UDPAddr{})
		if err != nil {
			fail(err)
			return
		}
		defer udp.Close()
		port := uint16(udp.LocalAddr().(*net.UDPAddr).Port)
		if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{Version: wire.Version, UDPPort: port})); err != nil {
			fail(err)
			return
		}
		if mt, _, err := wire.ReadMessage(conn); err != nil || mt != wire.MsgHelloAck {
			fail(fmt.Errorf("handshake: %v %v", mt, err))
			return
		}

		<-release // line both sessions up on the same instant
		req := wire.StreamRequest{Gen: 1, Fleet: fleet, K: k, L: 200, PeriodNs: periodNs}
		if err := wire.WriteMessage(conn, wire.MsgStreamRequest, wire.MarshalStreamRequest(req)); err != nil {
			fail(err)
			return
		}
		buf := make([]byte, 2048)
		udp.SetReadDeadline(time.Now().Add(5 * time.Second))
		for w.sent < k {
			n, err := udp.Read(buf)
			if err != nil {
				fail(fmt.Errorf("after %d probes: %w", w.sent, err))
				return
			}
			h, err := wire.UnmarshalProbe(buf[:n])
			if err != nil {
				continue
			}
			if w.sent == 0 || h.SentNs < w.lo {
				w.lo = h.SentNs
			}
			if h.SentNs > w.hi {
				w.hi = h.SentNs
			}
			w.sent++
		}
	}

	release := make(chan struct{})
	c1 := make(chan window, 1)
	c2 := make(chan window, 1)
	go session(1, release, c1)
	go session(2, release, c2)
	time.Sleep(100 * time.Millisecond) // both handshakes done
	close(release)

	w1, w2 := <-c1, <-c2
	for name, w := range map[string]window{"s1": w1, "s2": w2} {
		if w.err != nil {
			t.Fatalf("%s: %v", name, w.err)
		}
		if w.sent != k {
			t.Fatalf("%s received %d of %d probes on loopback", name, w.sent, k)
		}
	}
	// Overlapping emission windows mean both pacing loops ran at once —
	// exactly the mutual skew the gate exists to prevent.
	if lo, hi := max(w1.lo, w2.lo), min(w1.hi, w2.hi); lo <= hi {
		t.Fatalf("emission windows overlap by %v: s1=[%d,%d] s2=[%d,%d]",
			time.Duration(hi-lo), w1.lo, w1.hi, w2.lo, w2.hi)
	}
}
