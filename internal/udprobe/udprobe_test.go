package udprobe

import (
	"testing"
	"time"

	pathload "repro"
)

// startSender runs a sender daemon on loopback and returns its control
// address. Cleanup waits for Serve — and so for every session goroutine
// that might still call t.Logf — to return before the test completes.
func startSender(t *testing.T) string {
	t.Helper()
	addr, _ := startSenderCfg(t, SenderConfig{Logf: t.Logf})
	return addr
}

// startSenderCfg is startSender with an explicit config; it also
// returns the Sender for tests that drive its lifecycle.
func startSenderCfg(t *testing.T, cfg SenderConfig) (string, *Sender) {
	t.Helper()
	s, err := NewSender("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve()
	}()
	t.Cleanup(func() {
		s.Close()
		<-done
	})
	return s.Addr().String(), s
}

// TestStreamRoundTrip exercises the full control + data path over
// loopback: every probe packet should arrive, in order, with sane
// relative OWDs.
func TestStreamRoundTrip(t *testing.T) {
	addr := startSender(t)
	p, err := Dial(addr, ProberConfig{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer p.Close()

	spec := pathload.StreamSpec{
		Rate:  10e6,
		K:     50,
		L:     200,
		T:     200 * time.Microsecond,
		Fleet: 0,
		Index: 0,
	}
	res, err := p.SendStream(spec)
	if err != nil {
		t.Fatalf("SendStream: %v", err)
	}
	if res.Sent != spec.K {
		t.Errorf("sent %d packets, want %d", res.Sent, spec.K)
	}
	if len(res.OWDs) < spec.K*9/10 {
		t.Errorf("received %d of %d packets on loopback", len(res.OWDs), spec.K)
	}
	for i := 1; i < len(res.OWDs); i++ {
		if res.OWDs[i].Seq <= res.OWDs[i-1].Seq {
			t.Fatalf("OWD samples not strictly ordered by seq: %d then %d",
				res.OWDs[i-1].Seq, res.OWDs[i].Seq)
		}
	}
	t.Logf("loopback stream: %d/%d received, flagged=%v, first OWD %v",
		len(res.OWDs), spec.K, res.Flagged, res.OWDs[0].OWD)
}

// TestSequentialStreams checks that stream boundaries are respected:
// stragglers from stream n must not contaminate stream n+1.
func TestSequentialStreams(t *testing.T) {
	addr := startSender(t)
	p, err := Dial(addr, ProberConfig{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer p.Close()

	for i := 0; i < 3; i++ {
		spec := pathload.StreamSpec{K: 20, L: 150, T: 300 * time.Microsecond, Fleet: 1, Index: i}
		res, err := p.SendStream(spec)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if len(res.OWDs) > spec.K {
			t.Errorf("stream %d: %d samples exceed K=%d (cross-stream contamination)", i, len(res.OWDs), spec.K)
		}
		if err := p.Idle(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMeasureLoopback runs the complete pathload search against the
// loopback interface. Loopback capacity is effectively unbounded, so
// the tool must finish with its HitMax flag raised rather than invent
// a number.
func TestMeasureLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive loopback measurement")
	}
	addr := startSender(t)
	p, err := Dial(addr, ProberConfig{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer p.Close()

	res, err := pathload.Run(p, pathload.Config{
		PacketsPerStream: 50,
		StreamsPerFleet:  3,
		MaxFleets:        10,
		MinPeriod:        50 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("loopback measurement: %v (ADR %.0f Mb/s)", res, res.ADR/1e6)
}
