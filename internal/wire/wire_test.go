package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// TestProbeRoundTrip checks encode/decode of a probe header plus
// padding.
func TestProbeRoundTrip(t *testing.T) {
	h := ProbeHeader{Gen: 9, Fleet: 3, Stream: 7, Seq: 42, SentNs: 1_234_567_890_123}
	buf, err := MarshalProbe(h, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 200 {
		t.Fatalf("marshaled size %d, want 200", len(buf))
	}
	got, err := UnmarshalProbe(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %+v, want %+v", got, h)
	}
}

// TestQuickProbeRoundTrip is the property form.
func TestQuickProbeRoundTrip(t *testing.T) {
	f := func(gen, fleet, stream, seq uint32, sent int64, pad uint16) bool {
		size := ProbeHeaderSize + int(pad)%1400
		h := ProbeHeader{Gen: gen, Fleet: fleet, Stream: stream, Seq: seq, SentNs: sent}
		buf, err := MarshalProbe(h, size)
		if err != nil {
			return false
		}
		got, err := UnmarshalProbe(buf)
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestProbeErrors covers undersized buffers and foreign datagrams.
func TestProbeErrors(t *testing.T) {
	if _, err := MarshalProbe(ProbeHeader{}, ProbeHeaderSize-1); err == nil {
		t.Error("undersized marshal accepted")
	}
	if _, err := UnmarshalProbe(make([]byte, 4)); !errors.Is(err, ErrNotProbe) {
		t.Errorf("short datagram error = %v, want ErrNotProbe", err)
	}
	garbage := make([]byte, ProbeHeaderSize)
	if _, err := UnmarshalProbe(garbage); !errors.Is(err, ErrNotProbe) {
		t.Errorf("bad magic error = %v, want ErrNotProbe", err)
	}
}

// TestControlRoundTrips round-trips every message type through a
// buffer.
func TestControlRoundTrips(t *testing.T) {
	var buf bytes.Buffer

	hello := Hello{Version: Version, UDPPort: 4242}
	req := StreamRequest{Gen: 5, Fleet: 1, Stream: 2, K: 100, L: 300, PeriodNs: 100_000}
	done := StreamDone{Gen: 5, Fleet: 1, Stream: 2, Sent: 100, Flagged: 1}

	if err := WriteMessage(&buf, MsgHello, MarshalHello(hello)); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, MsgStreamRequest, MarshalStreamRequest(req)); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, MsgStreamDone, MarshalStreamDone(done)); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, MsgBye, nil); err != nil {
		t.Fatal(err)
	}

	mt, p, err := ReadMessage(&buf)
	if err != nil || mt != MsgHello {
		t.Fatalf("first message %v, %v", mt, err)
	}
	if got, err := UnmarshalHello(p); err != nil || got != hello {
		t.Fatalf("hello round trip %+v, %v", got, err)
	}
	mt, p, err = ReadMessage(&buf)
	if err != nil || mt != MsgStreamRequest {
		t.Fatalf("second message %v, %v", mt, err)
	}
	if got, err := UnmarshalStreamRequest(p); err != nil || got != req {
		t.Fatalf("request round trip %+v, %v", got, err)
	}
	mt, p, err = ReadMessage(&buf)
	if err != nil || mt != MsgStreamDone {
		t.Fatalf("third message %v, %v", mt, err)
	}
	if got, err := UnmarshalStreamDone(p); err != nil || got != done {
		t.Fatalf("done round trip %+v, %v", got, err)
	}
	if mt, _, err = ReadMessage(&buf); err != nil || mt != MsgBye {
		t.Fatalf("fourth message %v, %v", mt, err)
	}
}

// TestQuickStreamRequestRoundTrip is the property form for the largest
// payload.
func TestQuickStreamRequestRoundTrip(t *testing.T) {
	f := func(gen, fleet, stream, k, l uint32, period uint64) bool {
		req := StreamRequest{Gen: gen, Fleet: fleet, Stream: stream, K: k, L: l, PeriodNs: period}
		got, err := UnmarshalStreamRequest(MarshalStreamRequest(req))
		return err == nil && got == req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReadMessageErrors covers truncation, bad magic, and oversized
// frames.
func TestReadMessageErrors(t *testing.T) {
	if _, _, err := ReadMessage(strings.NewReader("abc")); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := ReadMessage(bytes.NewReader(make([]byte, 7))); err == nil {
		t.Error("zero magic accepted")
	}
	// Valid header claiming a payload that never arrives.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgHello, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:9]
	if _, _, err := ReadMessage(bytes.NewReader(trunc)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload error = %v, want unexpected EOF", err)
	}
	// Oversized write refused.
	if err := WriteMessage(io.Discard, MsgHello, make([]byte, 4096)); err == nil {
		t.Error("oversized payload accepted")
	}
}

// TestPayloadSizeValidation checks strict payload lengths.
func TestPayloadSizeValidation(t *testing.T) {
	if _, err := UnmarshalHello([]byte{1}); err == nil {
		t.Error("short hello accepted")
	}
	if _, err := UnmarshalStreamRequest(make([]byte, 27)); err == nil {
		t.Error("short stream-request accepted")
	}
	if _, err := UnmarshalStreamDone(make([]byte, 18)); err == nil {
		t.Error("long stream-done accepted")
	}
	// Version-1 payloads (pre-Gen layouts) must be rejected, not
	// misparsed: the handshake version gate is backed by strict sizes.
	if _, err := UnmarshalStreamRequest(make([]byte, 24)); err == nil {
		t.Error("v1 stream-request accepted")
	}
	if _, err := UnmarshalStreamDone(make([]byte, 13)); err == nil {
		t.Error("v1 stream-done accepted")
	}
}

// TestMsgTypeString covers diagnostics formatting.
func TestMsgTypeString(t *testing.T) {
	for _, mt := range []MsgType{MsgHello, MsgHelloAck, MsgStreamRequest, MsgStreamDone, MsgBye} {
		if s := mt.String(); s == "" || strings.HasPrefix(s, "MsgType(") {
			t.Errorf("MsgType %d formats as %q", mt, s)
		}
	}
	if !strings.HasPrefix(MsgType(99).String(), "MsgType(") {
		t.Error("unknown message type should format with its number")
	}
}

// TestNegotiate pins the version-choice rule: highest version inside
// both ranges, error when they miss each other.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		min, max uint16
		want     uint16
		ok       bool
	}{
		{VersionMin, Version, Version, true},       // same build
		{VersionMin, VersionMin, VersionMin, true}, // legacy exact hello in range
		{Version, Version + 5, Version, true},      // newer peer meets us at our max
		{VersionMin - 1, VersionMin, VersionMin, true},
		{Version + 1, Version + 9, 0, false}, // peer too new throughout
		{0, VersionMin - 1, 0, false},        // peer too old throughout
	}
	for _, c := range cases {
		got, err := Negotiate(c.min, c.max)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Negotiate(%d, %d) = %d, %v; want %d", c.min, c.max, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Negotiate(%d, %d) accepted a disjoint range", c.min, c.max)
		}
	}
}

// TestParseHelloForms: the sender-side parser must take both hello
// generations and reject everything else.
func TestParseHelloForms(t *testing.T) {
	legacy, err := ParseHello(MarshalHello(Hello{Version: 2, UDPPort: 7777}))
	if err != nil || legacy != (HelloRange{Min: 2, Max: 2, UDPPort: 7777}) {
		t.Fatalf("legacy hello parsed as %+v, %v", legacy, err)
	}
	ranged, err := ParseHello(MarshalHelloRange(HelloRange{Min: 2, Max: 3, UDPPort: 8888}))
	if err != nil || ranged != (HelloRange{Min: 2, Max: 3, UDPPort: 8888}) {
		t.Fatalf("range hello parsed as %+v, %v", ranged, err)
	}
	if _, err := ParseHello(make([]byte, 5)); err == nil {
		t.Error("5-byte hello accepted")
	}
	if _, err := ParseHello(MarshalHelloRange(HelloRange{Min: 3, Max: 2})); err == nil {
		t.Error("inverted version range accepted")
	}
}

// TestHelloAckForms: the 2-byte chosen-version ack and the legacy
// empty ack (which implies the proposed version) both decode.
func TestHelloAckForms(t *testing.T) {
	ack, err := UnmarshalHelloAck(MarshalHelloAck(HelloAck{Version: 3}), 2)
	if err != nil || ack.Version != 3 {
		t.Fatalf("ack round trip: %+v, %v", ack, err)
	}
	ack, err = UnmarshalHelloAck(nil, 2)
	if err != nil || ack.Version != 2 {
		t.Fatalf("legacy empty ack: %+v, %v", ack, err)
	}
	if _, err := UnmarshalHelloAck([]byte{1}, 2); err == nil {
		t.Error("1-byte ack accepted")
	}
}
