package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzProbeRoundTrip: any header marshalled at any size must decode
// back bit-for-bit, and the padding must stay zero.
func FuzzProbeRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0), int64(0), ProbeHeaderSize)
	f.Add(uint32(1), uint32(3), uint32(11), uint32(99), int64(1_700_000_000_000_000_000), 96)
	f.Add(uint32(1<<31), uint32(1<<31), uint32(1<<31), uint32(1<<31), int64(-1), 1500)
	f.Fuzz(func(t *testing.T, gen, fleet, stream, seq uint32, sentNs int64, size int) {
		if size > 64*1024 {
			size = 64 * 1024 // cap allocations, not coverage
		}
		h := ProbeHeader{Gen: gen, Fleet: fleet, Stream: stream, Seq: seq, SentNs: sentNs}
		buf, err := MarshalProbe(h, size)
		if size < ProbeHeaderSize {
			if err == nil {
				t.Fatalf("MarshalProbe accepted size %d below header size", size)
			}
			return
		}
		if err != nil {
			t.Fatalf("MarshalProbe(%+v, %d): %v", h, size, err)
		}
		if len(buf) != size {
			t.Fatalf("marshalled %d bytes, want %d", len(buf), size)
		}
		got, err := UnmarshalProbe(buf)
		if err != nil {
			t.Fatalf("UnmarshalProbe round-trip: %v", err)
		}
		if got != h {
			t.Fatalf("round-trip changed header: %+v → %+v", h, got)
		}
		for i, b := range buf[ProbeHeaderSize:] {
			if b != 0 {
				t.Fatalf("padding byte %d is %#x, want zero", ProbeHeaderSize+i, b)
			}
		}
	})
}

// FuzzUnmarshalProbe: arbitrary datagrams must never panic, and
// anything that decodes must re-encode to the same header bytes.
func FuzzUnmarshalProbe(f *testing.F) {
	valid, _ := MarshalProbe(ProbeHeader{Gen: 9, Fleet: 1, Stream: 2, Seq: 3, SentNs: 4}, 96)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SLPS"))
	f.Add(bytes.Repeat([]byte{0xff}, ProbeHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalProbe(data)
		if err != nil {
			if !errors.Is(err, ErrNotProbe) {
				t.Fatalf("non-probe error is not ErrNotProbe: %v", err)
			}
			return
		}
		re, err := MarshalProbe(h, ProbeHeaderSize)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(re, data[:ProbeHeaderSize]) {
			t.Fatalf("decode/encode not idempotent:\n got %x\nwant %x", re, data[:ProbeHeaderSize])
		}
	})
}

// FuzzControlStream: arbitrary byte streams through ReadMessage must
// never panic or over-allocate, and every frame that parses must
// re-encode to an identical frame.
func FuzzControlStream(f *testing.F) {
	frame := func(t MsgType, payload []byte) []byte {
		var b bytes.Buffer
		if err := WriteMessage(&b, t, payload); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(frame(MsgHello, MarshalHello(Hello{Version: Version, UDPPort: 9999})))
	f.Add(frame(MsgStreamRequest, MarshalStreamRequest(StreamRequest{Gen: 4, Fleet: 1, Stream: 2, K: 100, L: 300, PeriodNs: 100_000})))
	f.Add(frame(MsgStreamDone, MarshalStreamDone(StreamDone{Gen: 4, Fleet: 1, Stream: 2, Sent: 100, Flagged: 1})))
	f.Add(frame(MsgBye, nil))
	f.Add([]byte{0x53, 0x4c, 0x50, 0x53, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b bytes.Buffer
		if err := WriteMessage(&b, typ, payload); err != nil {
			t.Fatalf("re-encoding a frame that just parsed: %v", err)
		}
		wire := 7 + len(payload)
		if !bytes.Equal(b.Bytes(), data[:wire]) {
			t.Fatalf("frame not idempotent:\n got %x\nwant %x", b.Bytes(), data[:wire])
		}
	})
}

// FuzzPayloadRoundTrips: the three fixed-layout control payloads must
// round-trip through their unmarshal/marshal pairs whenever they
// decode at all.
func FuzzPayloadRoundTrips(f *testing.F) {
	f.Add(MarshalHello(Hello{Version: 1, UDPPort: 55555}))
	f.Add(MarshalHelloRange(HelloRange{Min: 2, Max: 3, UDPPort: 55555}))
	f.Add(MarshalStreamRequest(StreamRequest{Gen: 2, Fleet: 7, Stream: 3, K: 100, L: 1500, PeriodNs: 1 << 40}))
	f.Add(MarshalStreamDone(StreamDone{Gen: 2, Fleet: 7, Stream: 3, Sent: 99, Flagged: 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := UnmarshalHello(data); err == nil {
			if !bytes.Equal(MarshalHello(h), data) {
				t.Fatalf("hello round-trip mismatch for %x", data)
			}
		}
		if h, err := UnmarshalHelloRange(data); err == nil {
			if !bytes.Equal(MarshalHelloRange(h), data) {
				t.Fatalf("range hello round-trip mismatch for %x", data)
			}
		}
		if q, err := UnmarshalStreamRequest(data); err == nil {
			if !bytes.Equal(MarshalStreamRequest(q), data) {
				t.Fatalf("stream-request round-trip mismatch for %x", data)
			}
		}
		if d, err := UnmarshalStreamDone(data); err == nil {
			if !bytes.Equal(MarshalStreamDone(d), data) {
				t.Fatalf("stream-done round-trip mismatch for %x", data)
			}
		}
	})
}

// TestReadMessageTruncated pins the error behavior the fuzzers rely
// on: truncation inside header or payload is an error, never a panic,
// and garbage lengths are rejected before allocation.
func TestReadMessageTruncated(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMessage(&b, MsgStreamDone, MarshalStreamDone(StreamDone{Sent: 5})); err != nil {
		t.Fatal(err)
	}
	full := b.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ReadMessage(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	if typ, payload, err := ReadMessage(bytes.NewReader(full)); err != nil || typ != MsgStreamDone || len(payload) != 17 {
		t.Fatalf("full frame: type %v payload %d err %v", typ, len(payload), err)
	}

	// A length field beyond maxFrame must be rejected up front.
	bad := make([]byte, 7)
	binary.BigEndian.PutUint32(bad[0:], Magic)
	bad[4] = uint8(MsgHello)
	binary.BigEndian.PutUint16(bad[5:], maxFrame+1)
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized frame: err %v, want explicit rejection", err)
	}
}
