// Package wire defines the binary formats of the real-network pathload
// tool: fixed-layout probe packets on the UDP data channel and
// length-prefixed control messages on the TCP control channel. All
// integers are big-endian. The formats are versioned through a magic
// number so incompatible peers fail fast instead of mis-measuring.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies pathload probe packets and control streams.
const Magic uint32 = 0x534c5053 // "SLPS"

// ProbeHeaderSize is the wire size of a probe packet header; probe
// packets are padded to the stream's configured packet size L.
const ProbeHeaderSize = 4 + 4 + 4 + 4 + 8

// A ProbeHeader leads every UDP probe packet.
type ProbeHeader struct {
	Fleet  uint32 // fleet index within a measurement
	Stream uint32 // stream index within the fleet
	Seq    uint32 // packet index within the stream
	SentNs int64  // sender timestamp, nanoseconds (sender clock)
}

// MarshalProbe encodes h into a buffer of the given total packet size,
// zero-padding the remainder. size must fit the header.
func MarshalProbe(h ProbeHeader, size int) ([]byte, error) {
	if size < ProbeHeaderSize {
		return nil, fmt.Errorf("wire: probe size %d below header size %d", size, ProbeHeaderSize)
	}
	buf := make([]byte, size)
	binary.BigEndian.PutUint32(buf[0:], Magic)
	binary.BigEndian.PutUint32(buf[4:], h.Fleet)
	binary.BigEndian.PutUint32(buf[8:], h.Stream)
	binary.BigEndian.PutUint32(buf[12:], h.Seq)
	binary.BigEndian.PutUint64(buf[16:], uint64(h.SentNs))
	return buf, nil
}

// ErrNotProbe reports a datagram that is not a pathload probe.
var ErrNotProbe = errors.New("wire: not a pathload probe packet")

// UnmarshalProbe decodes a probe packet header.
func UnmarshalProbe(buf []byte) (ProbeHeader, error) {
	if len(buf) < ProbeHeaderSize {
		return ProbeHeader{}, fmt.Errorf("%w: %d bytes", ErrNotProbe, len(buf))
	}
	if binary.BigEndian.Uint32(buf[0:]) != Magic {
		return ProbeHeader{}, ErrNotProbe
	}
	return ProbeHeader{
		Fleet:  binary.BigEndian.Uint32(buf[4:]),
		Stream: binary.BigEndian.Uint32(buf[8:]),
		Seq:    binary.BigEndian.Uint32(buf[12:]),
		SentNs: int64(binary.BigEndian.Uint64(buf[16:])),
	}, nil
}

// Control message types.
type MsgType uint8

// Control channel messages. The receiver (measurement initiator) sends
// StreamRequest; the sender answers each stream with StreamDone after
// emitting it.
const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgStreamRequest
	MsgStreamDone
	MsgBye
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgStreamRequest:
		return "stream-request"
	case MsgStreamDone:
		return "stream-done"
	case MsgBye:
		return "bye"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Version is the control protocol version.
const Version uint16 = 1

// A Hello opens a control session and advertises the UDP port the
// receiver listens on.
type Hello struct {
	Version uint16
	UDPPort uint16
}

// A StreamRequest asks the sender to emit one periodic stream.
type StreamRequest struct {
	Fleet    uint32
	Stream   uint32
	K        uint32 // packets
	L        uint32 // packet size, bytes (UDP payload)
	PeriodNs uint64 // packet interspacing
}

// A StreamDone reports how the sender actually paced the stream.
type StreamDone struct {
	Fleet   uint32
	Stream  uint32
	Sent    uint32 // packets emitted
	Flagged uint8  // 1 if pacing was disturbed (context switch etc.)
}

// Maximum control frame payload; defends against garbage lengths.
const maxFrame = 1024

// WriteMessage writes a length-prefixed control frame:
// [magic u32][type u8][len u16][payload].
func WriteMessage(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("wire: control payload %d exceeds limit %d", len(payload), maxFrame)
	}
	hdr := make([]byte, 7)
	binary.BigEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = uint8(t)
	binary.BigEndian.PutUint16(hdr[5:], uint16(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("wire: writing control header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wire: writing control payload: %w", err)
		}
	}
	return nil
}

// ReadMessage reads one control frame.
func ReadMessage(r io.Reader) (MsgType, []byte, error) {
	hdr := make([]byte, 7)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != Magic {
		return 0, nil, errors.New("wire: bad control magic")
	}
	t := MsgType(hdr[4])
	n := binary.BigEndian.Uint16(hdr[5:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("wire: control payload %d exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading control payload: %w", err)
	}
	return t, payload, nil
}

// MarshalHello encodes a Hello payload.
func MarshalHello(h Hello) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint16(buf[0:], h.Version)
	binary.BigEndian.PutUint16(buf[2:], h.UDPPort)
	return buf
}

// UnmarshalHello decodes a Hello payload.
func UnmarshalHello(buf []byte) (Hello, error) {
	if len(buf) != 4 {
		return Hello{}, fmt.Errorf("wire: hello payload %d bytes, want 4", len(buf))
	}
	return Hello{
		Version: binary.BigEndian.Uint16(buf[0:]),
		UDPPort: binary.BigEndian.Uint16(buf[2:]),
	}, nil
}

// MarshalStreamRequest encodes a StreamRequest payload.
func MarshalStreamRequest(q StreamRequest) []byte {
	buf := make([]byte, 24)
	binary.BigEndian.PutUint32(buf[0:], q.Fleet)
	binary.BigEndian.PutUint32(buf[4:], q.Stream)
	binary.BigEndian.PutUint32(buf[8:], q.K)
	binary.BigEndian.PutUint32(buf[12:], q.L)
	binary.BigEndian.PutUint64(buf[16:], q.PeriodNs)
	return buf
}

// UnmarshalStreamRequest decodes a StreamRequest payload.
func UnmarshalStreamRequest(buf []byte) (StreamRequest, error) {
	if len(buf) != 24 {
		return StreamRequest{}, fmt.Errorf("wire: stream-request payload %d bytes, want 24", len(buf))
	}
	return StreamRequest{
		Fleet:    binary.BigEndian.Uint32(buf[0:]),
		Stream:   binary.BigEndian.Uint32(buf[4:]),
		K:        binary.BigEndian.Uint32(buf[8:]),
		L:        binary.BigEndian.Uint32(buf[12:]),
		PeriodNs: binary.BigEndian.Uint64(buf[16:]),
	}, nil
}

// MarshalStreamDone encodes a StreamDone payload.
func MarshalStreamDone(d StreamDone) []byte {
	buf := make([]byte, 13)
	binary.BigEndian.PutUint32(buf[0:], d.Fleet)
	binary.BigEndian.PutUint32(buf[4:], d.Stream)
	binary.BigEndian.PutUint32(buf[8:], d.Sent)
	buf[12] = d.Flagged
	return buf
}

// UnmarshalStreamDone decodes a StreamDone payload.
func UnmarshalStreamDone(buf []byte) (StreamDone, error) {
	if len(buf) != 13 {
		return StreamDone{}, fmt.Errorf("wire: stream-done payload %d bytes, want 13", len(buf))
	}
	return StreamDone{
		Fleet:   binary.BigEndian.Uint32(buf[0:]),
		Stream:  binary.BigEndian.Uint32(buf[4:]),
		Sent:    binary.BigEndian.Uint32(buf[8:]),
		Flagged: buf[12],
	}, nil
}
