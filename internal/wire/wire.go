// Package wire defines the binary formats of the real-network pathload
// tool: fixed-layout probe packets on the UDP data channel and
// length-prefixed control messages on the TCP control channel. All
// integers are big-endian. The formats are versioned through a magic
// number so incompatible peers fail fast instead of mis-measuring.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies pathload probe packets and control streams.
const Magic uint32 = 0x534c5053 // "SLPS"

// ProbeHeaderSize is the wire size of a probe packet header; probe
// packets are padded to the stream's configured packet size L.
const ProbeHeaderSize = 4 + 4 + 4 + 4 + 4 + 8

// A ProbeHeader leads every UDP probe packet.
type ProbeHeader struct {
	Gen    uint32 // request generation, echoed from the StreamRequest
	Fleet  uint32 // fleet index within a measurement
	Stream uint32 // stream index within the fleet
	Seq    uint32 // packet index within the stream
	SentNs int64  // sender timestamp, nanoseconds (sender clock)
}

// MarshalProbe encodes h into a buffer of the given total packet size,
// zero-padding the remainder. size must fit the header.
func MarshalProbe(h ProbeHeader, size int) ([]byte, error) {
	if size < ProbeHeaderSize {
		return nil, fmt.Errorf("wire: probe size %d below header size %d", size, ProbeHeaderSize)
	}
	buf := make([]byte, size)
	binary.BigEndian.PutUint32(buf[0:], Magic)
	binary.BigEndian.PutUint32(buf[4:], h.Gen)
	binary.BigEndian.PutUint32(buf[8:], h.Fleet)
	binary.BigEndian.PutUint32(buf[12:], h.Stream)
	binary.BigEndian.PutUint32(buf[16:], h.Seq)
	binary.BigEndian.PutUint64(buf[20:], uint64(h.SentNs))
	return buf, nil
}

// ErrNotProbe reports a datagram that is not a pathload probe.
var ErrNotProbe = errors.New("wire: not a pathload probe packet")

// UnmarshalProbe decodes a probe packet header.
func UnmarshalProbe(buf []byte) (ProbeHeader, error) {
	if len(buf) < ProbeHeaderSize {
		return ProbeHeader{}, fmt.Errorf("%w: %d bytes", ErrNotProbe, len(buf))
	}
	if binary.BigEndian.Uint32(buf[0:]) != Magic {
		return ProbeHeader{}, ErrNotProbe
	}
	return ProbeHeader{
		Gen:    binary.BigEndian.Uint32(buf[4:]),
		Fleet:  binary.BigEndian.Uint32(buf[8:]),
		Stream: binary.BigEndian.Uint32(buf[12:]),
		Seq:    binary.BigEndian.Uint32(buf[16:]),
		SentNs: int64(binary.BigEndian.Uint64(buf[20:])),
	}, nil
}

// Control message types.
type MsgType uint8

// Control channel messages. The receiver (measurement initiator) sends
// StreamRequest; the sender answers each stream with StreamDone after
// emitting it. Ping/Pong (payload-less) keep an idle session alive
// across long re-measurement gaps: any message resets the sender's
// session idle deadline.
const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgStreamRequest
	MsgStreamDone
	MsgBye
	MsgPing
	MsgPong
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgStreamRequest:
		return "stream-request"
	case MsgStreamDone:
		return "stream-done"
	case MsgBye:
		return "bye"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Version is the newest control protocol version this build speaks.
// Version 2 added the Gen request-generation tag to StreamRequest,
// StreamDone, and ProbeHeader — so receivers can resynchronize a
// control channel after an errored round and reject data-plane
// stragglers across rounds that reuse fleet/stream indices — and the
// Ping/Pong session keepalive. Version 3 keeps every version-2 message
// layout and adds the range handshake: a 6-byte hello advertising a
// [min, max] version range and a hello-ack carrying the version the
// sender chose, so mixed-version fleets negotiate instead of
// hard-failing on any skew.
const Version uint16 = 3

// VersionMin is the oldest protocol version this build still speaks.
// Version 1 payload layouts (pre-Gen) are gone; 2 is the floor.
const VersionMin uint16 = 2

// ErrVersionMismatch reports peers whose version ranges do not
// intersect.
var ErrVersionMismatch = errors.New("wire: no protocol version in common")

// Negotiate picks the version for a session with a peer advertising
// [peerMin, peerMax]: the highest version inside both that range and
// this build's [VersionMin, Version].
func Negotiate(peerMin, peerMax uint16) (uint16, error) {
	chosen := Version
	if peerMax < chosen {
		chosen = peerMax
	}
	if chosen < VersionMin || chosen < peerMin {
		return 0, fmt.Errorf("%w: peer speaks [%d, %d], this build [%d, %d]",
			ErrVersionMismatch, peerMin, peerMax, VersionMin, Version)
	}
	return chosen, nil
}

// A Hello opens a control session and advertises the UDP port the
// receiver listens on. This is the legacy (version ≤ 2) exact-version
// form; version-3 peers open with a HelloRange instead and fall back
// to this one for old senders.
type Hello struct {
	Version uint16
	UDPPort uint16
}

// A HelloRange is the version-3 session opener: the receiver proposes
// a whole version range and the sender picks.
type HelloRange struct {
	Min, Max uint16
	UDPPort  uint16
}

// A HelloAck answers a hello with the version the sender chose for the
// session. Legacy (version ≤ 2) senders ack with an empty payload,
// implying the exact version the hello proposed; legacy receivers
// ignore the ack payload entirely, which is what makes adding it
// backward compatible.
type HelloAck struct {
	Version uint16
}

// A StreamRequest asks the sender to emit one periodic stream. Gen is
// an opaque receiver-chosen generation number the sender echoes in the
// matching StreamDone and in every probe packet of the stream; a
// receiver that gave up on an earlier request uses it to tell the stale
// answer from the one it is waiting for.
type StreamRequest struct {
	Gen      uint32
	Fleet    uint32
	Stream   uint32
	K        uint32 // packets
	L        uint32 // packet size, bytes (UDP payload)
	PeriodNs uint64 // packet interspacing
}

// A StreamDone reports how the sender actually paced the stream.
type StreamDone struct {
	Gen     uint32 // echoed from the StreamRequest
	Fleet   uint32
	Stream  uint32
	Sent    uint32 // packets emitted
	Flagged uint8  // 1 if pacing was disturbed (context switch etc.)
}

// Maximum control frame payload; defends against garbage lengths.
const maxFrame = 1024

// WriteMessage writes a length-prefixed control frame:
// [magic u32][type u8][len u16][payload].
func WriteMessage(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("wire: control payload %d exceeds limit %d", len(payload), maxFrame)
	}
	hdr := make([]byte, 7)
	binary.BigEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = uint8(t)
	binary.BigEndian.PutUint16(hdr[5:], uint16(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("wire: writing control header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wire: writing control payload: %w", err)
		}
	}
	return nil
}

// ReadMessage reads one control frame.
func ReadMessage(r io.Reader) (MsgType, []byte, error) {
	hdr := make([]byte, 7)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != Magic {
		return 0, nil, errors.New("wire: bad control magic")
	}
	t := MsgType(hdr[4])
	n := binary.BigEndian.Uint16(hdr[5:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("wire: control payload %d exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading control payload: %w", err)
	}
	return t, payload, nil
}

// MarshalHello encodes a Hello payload.
func MarshalHello(h Hello) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint16(buf[0:], h.Version)
	binary.BigEndian.PutUint16(buf[2:], h.UDPPort)
	return buf
}

// UnmarshalHello decodes a Hello payload.
func UnmarshalHello(buf []byte) (Hello, error) {
	if len(buf) != 4 {
		return Hello{}, fmt.Errorf("wire: hello payload %d bytes, want 4", len(buf))
	}
	return Hello{
		Version: binary.BigEndian.Uint16(buf[0:]),
		UDPPort: binary.BigEndian.Uint16(buf[2:]),
	}, nil
}

// MarshalHelloRange encodes a version-3 range hello:
// [min u16][max u16][udp port u16].
func MarshalHelloRange(h HelloRange) []byte {
	buf := make([]byte, 6)
	binary.BigEndian.PutUint16(buf[0:], h.Min)
	binary.BigEndian.PutUint16(buf[2:], h.Max)
	binary.BigEndian.PutUint16(buf[4:], h.UDPPort)
	return buf
}

// UnmarshalHelloRange decodes a version-3 range hello payload.
func UnmarshalHelloRange(buf []byte) (HelloRange, error) {
	if len(buf) != 6 {
		return HelloRange{}, fmt.Errorf("wire: range hello payload %d bytes, want 6", len(buf))
	}
	h := HelloRange{
		Min:     binary.BigEndian.Uint16(buf[0:]),
		Max:     binary.BigEndian.Uint16(buf[2:]),
		UDPPort: binary.BigEndian.Uint16(buf[4:]),
	}
	if h.Min > h.Max {
		return HelloRange{}, fmt.Errorf("wire: inverted hello version range [%d, %d]", h.Min, h.Max)
	}
	return h, nil
}

// ParseHello accepts either hello form — the 6-byte version range or
// the legacy 4-byte exact version (which parses as the degenerate
// range [v, v]) — so one sender code path serves both generations of
// receivers.
func ParseHello(buf []byte) (HelloRange, error) {
	switch len(buf) {
	case 4:
		h, err := UnmarshalHello(buf)
		if err != nil {
			return HelloRange{}, err
		}
		return HelloRange{Min: h.Version, Max: h.Version, UDPPort: h.UDPPort}, nil
	case 6:
		return UnmarshalHelloRange(buf)
	default:
		return HelloRange{}, fmt.Errorf("wire: hello payload %d bytes, want 4 (legacy) or 6 (range)", len(buf))
	}
}

// MarshalHelloAck encodes a hello-ack payload carrying the chosen
// version.
func MarshalHelloAck(a HelloAck) []byte {
	buf := make([]byte, 2)
	binary.BigEndian.PutUint16(buf, a.Version)
	return buf
}

// UnmarshalHelloAck decodes a hello-ack payload. An empty payload is a
// legacy ack: the sender accepted exactly the version the hello
// proposed, reported here as fallback.
func UnmarshalHelloAck(buf []byte, fallback uint16) (HelloAck, error) {
	switch len(buf) {
	case 0:
		return HelloAck{Version: fallback}, nil
	case 2:
		return HelloAck{Version: binary.BigEndian.Uint16(buf)}, nil
	default:
		return HelloAck{}, fmt.Errorf("wire: hello-ack payload %d bytes, want 0 (legacy) or 2", len(buf))
	}
}

// MarshalStreamRequest encodes a StreamRequest payload.
func MarshalStreamRequest(q StreamRequest) []byte {
	buf := make([]byte, 28)
	binary.BigEndian.PutUint32(buf[0:], q.Gen)
	binary.BigEndian.PutUint32(buf[4:], q.Fleet)
	binary.BigEndian.PutUint32(buf[8:], q.Stream)
	binary.BigEndian.PutUint32(buf[12:], q.K)
	binary.BigEndian.PutUint32(buf[16:], q.L)
	binary.BigEndian.PutUint64(buf[20:], q.PeriodNs)
	return buf
}

// UnmarshalStreamRequest decodes a StreamRequest payload.
func UnmarshalStreamRequest(buf []byte) (StreamRequest, error) {
	if len(buf) != 28 {
		return StreamRequest{}, fmt.Errorf("wire: stream-request payload %d bytes, want 28", len(buf))
	}
	return StreamRequest{
		Gen:      binary.BigEndian.Uint32(buf[0:]),
		Fleet:    binary.BigEndian.Uint32(buf[4:]),
		Stream:   binary.BigEndian.Uint32(buf[8:]),
		K:        binary.BigEndian.Uint32(buf[12:]),
		L:        binary.BigEndian.Uint32(buf[16:]),
		PeriodNs: binary.BigEndian.Uint64(buf[20:]),
	}, nil
}

// MarshalStreamDone encodes a StreamDone payload.
func MarshalStreamDone(d StreamDone) []byte {
	buf := make([]byte, 17)
	binary.BigEndian.PutUint32(buf[0:], d.Gen)
	binary.BigEndian.PutUint32(buf[4:], d.Fleet)
	binary.BigEndian.PutUint32(buf[8:], d.Stream)
	binary.BigEndian.PutUint32(buf[12:], d.Sent)
	buf[16] = d.Flagged
	return buf
}

// UnmarshalStreamDone decodes a StreamDone payload.
func UnmarshalStreamDone(buf []byte) (StreamDone, error) {
	if len(buf) != 17 {
		return StreamDone{}, fmt.Errorf("wire: stream-done payload %d bytes, want 17", len(buf))
	}
	return StreamDone{
		Gen:     binary.BigEndian.Uint32(buf[0:]),
		Fleet:   binary.BigEndian.Uint32(buf[4:]),
		Stream:  binary.BigEndian.Uint32(buf[8:]),
		Sent:    binary.BigEndian.Uint32(buf[12:]),
		Flagged: buf[16],
	}, nil
}
