package mesh

import (
	"fmt"

	"repro/internal/netsim"
)

// Backbone shape parameters, shared by the constructors below so every
// shape's ground truth is easy to reason about. In Star and Tree the
// shared link is every path's tight link, so contention between fleet
// streams lands exactly on the hop the measurement is estimating — the
// worst, and most interesting, case for fleet self-interference; Chain
// mixes tight-link and quiet-link sharing across neighbor pairs.
const (
	accessCap  = 100e6 // bits/s, edge links (never tight)
	accessUtil = 0.10
	coreCap    = 10e6   // bits/s, star core and chain hops
	coreUtil   = 0.55   // A = 4.5 Mb/s on a loaded core hop
	quietUtil  = 0.35   // the lightly loaded alternate chain hops
	aggCap     = 24e6   // bits/s, tree aggregation links
	aggUtil    = 0.35   // A = 15.6 Mb/s, never tight
	rootCap    = 12.4e6 // bits/s, tree root
	rootUtil   = 0.50   // A = 6.2 Mb/s, tight for every tree path
	soloCap    = 10e6   // bits/s, disjoint per-path links
	soloUtil   = 0.50   // A = 5 Mb/s
)

// pathName names fleet path i consistently across shapes.
func pathName(i int) string { return fmt.Sprintf("path-%02d", i) }

// Star builds n paths that all traverse one shared core link: full
// overlap. Each path enters on its own lightly loaded access link; the
// 10 Mb/s core at 55% utilization is every path's tight link
// (A = 4.5 Mb/s).
func Star(n int, seed int64) Spec {
	mustPaths("Star", n)
	s := Spec{Seed: seed}
	s.Links = append(s.Links, LinkSpec{Name: "core", Capacity: coreCap, Util: coreUtil, Prop: 10 * netsim.Millisecond})
	for i := 0; i < n; i++ {
		in := fmt.Sprintf("in-%02d", i)
		s.Links = append(s.Links, LinkSpec{Name: in, Capacity: accessCap, Util: accessUtil, Prop: 2 * netsim.Millisecond})
		s.Routes = append(s.Routes, RouteSpec{Name: pathName(i), Links: []string{in, "core"}})
	}
	return s
}

// Chain builds the parking-lot pattern: n+1 backbone hops in a row,
// path i traversing hops i and i+1, so adjacent paths overlap in
// exactly one link and non-adjacent paths are disjoint. Hop
// utilizations alternate 55%/35%, making each path's tight link its
// even-numbered hop (A = 4.5 Mb/s). The link a neighbor pair shares is
// their mutual tight link for odd-even pairs (paths 1 and 2 share the
// loaded hop 2) but a quiet hop for even-odd pairs (paths 0 and 1
// share the lightly loaded hop 1), so a chain sweep exercises both
// tight-link and non-tight-link contention.
func Chain(n int, seed int64) Spec {
	mustPaths("Chain", n)
	s := Spec{Seed: seed}
	for h := 0; h <= n; h++ {
		util := coreUtil
		if h%2 == 1 {
			util = quietUtil
		}
		s.Links = append(s.Links, LinkSpec{Name: fmt.Sprintf("hop-%02d", h), Capacity: coreCap, Util: util, Prop: 5 * netsim.Millisecond})
	}
	for i := 0; i < n; i++ {
		s.Routes = append(s.Routes, RouteSpec{
			Name:  pathName(i),
			Links: []string{fmt.Sprintf("hop-%02d", i), fmt.Sprintf("hop-%02d", i+1)},
		})
	}
	return s
}

// TreeFanout is the number of leaves per aggregation link in Tree.
const TreeFanout = 2

// Tree builds a two-level aggregation tree: each path climbs its own
// leaf link, shares an aggregation link with up to TreeFanout−1
// siblings, and every path crosses the single root. The root is the
// tight link for all paths (A = 6.2 Mb/s), so group siblings contend
// on two hops and cross-group paths on one.
func Tree(n int, seed int64) Spec {
	mustPaths("Tree", n)
	s := Spec{Seed: seed}
	s.Links = append(s.Links, LinkSpec{Name: "root", Capacity: rootCap, Util: rootUtil, Prop: 10 * netsim.Millisecond})
	groups := (n + TreeFanout - 1) / TreeFanout
	for g := 0; g < groups; g++ {
		s.Links = append(s.Links, LinkSpec{Name: fmt.Sprintf("agg-%02d", g), Capacity: aggCap, Util: aggUtil, Prop: 4 * netsim.Millisecond})
	}
	for i := 0; i < n; i++ {
		leaf := fmt.Sprintf("leaf-%02d", i)
		s.Links = append(s.Links, LinkSpec{Name: leaf, Capacity: accessCap, Util: accessUtil, Prop: 1 * netsim.Millisecond})
		s.Routes = append(s.Routes, RouteSpec{
			Name:  pathName(i),
			Links: []string{leaf, fmt.Sprintf("agg-%02d", i/TreeFanout), "root"},
		})
	}
	return s
}

// Disjoint builds n parallel single-link paths with no shared links —
// the control group: co-probing a disjoint fleet must not shift any
// path's estimate beyond its solo error band. A = 5 Mb/s per path.
func Disjoint(n int, seed int64) Spec {
	mustPaths("Disjoint", n)
	s := Spec{Seed: seed}
	for i := 0; i < n; i++ {
		lone := fmt.Sprintf("lone-%02d", i)
		s.Links = append(s.Links, LinkSpec{Name: lone, Capacity: soloCap, Util: soloUtil, Prop: 10 * netsim.Millisecond})
		s.Routes = append(s.Routes, RouteSpec{Name: pathName(i), Links: []string{lone}})
	}
	return s
}

// ShapeNames lists the built-in backbone shapes in presentation order.
func ShapeNames() []string { return []string{"star", "chain", "tree", "disjoint"} }

// Shape builds the named backbone with n paths. Unknown names and
// non-positive fleet sizes error (the direct constructors panic
// instead: a zero-path fleet there is a programming bug, here it may
// be a user's flag).
func Shape(name string, n int, seed int64) (Spec, error) {
	if n < 1 {
		return Spec{}, fmt.Errorf("mesh: shape %q needs at least one path, got %d", name, n)
	}
	switch name {
	case "star":
		return Star(n, seed), nil
	case "chain":
		return Chain(n, seed), nil
	case "tree":
		return Tree(n, seed), nil
	case "disjoint":
		return Disjoint(n, seed), nil
	default:
		return Spec{}, fmt.Errorf("mesh: unknown shape %q (have %v)", name, ShapeNames())
	}
}

// mustPaths guards the shape constructors against empty fleets.
func mustPaths(shape string, n int) {
	if n < 1 {
		panic(fmt.Sprintf("mesh: %s needs at least one path, got %d", shape, n))
	}
}
