// Package mesh builds shared-backbone fleet topologies: N monitored
// paths declared as routes over one pool of links, on one simulator.
//
// It generalizes the single-path chain of internal/experiments.Topology
// to a link graph. Paths that share links contend — their probe streams
// queue against each other and against cross traffic on the common
// hops — which is the scenario family the per-path-shard fleet designs
// (netsim.Lockstep) cannot express. Every built path still carries its
// analytic ground truth: the tight link over its route and the
// end-to-end available bandwidth A = min over the route of C_l·(1−u_l),
// valid in the absence of co-probing; fleet experiments measure how far
// co-probing moves the estimate from exactly that baseline.
//
// Parameterized backbone shapes (Star, Chain, Tree, Disjoint) cover the
// canonical contention patterns; arbitrary Spec route lists cover the
// rest.
package mesh

import (
	"fmt"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// Defaults for zero Spec fields.
const (
	// DefaultSourcesPerLink is the cross-traffic multiplexing degree per
	// link. Bursty aggregates of a few sources keep SLoPS trends
	// detectable (smooth high-multiplexing CBR defeats them at low
	// utilization).
	DefaultSourcesPerLink = 6
)

// A LinkSpec declares one link of the shared pool.
type LinkSpec struct {
	// Name identifies the link in routes; unique within a Spec.
	Name string
	// Capacity is C_l in bits/s.
	Capacity float64
	// Util is the link's mean cross-traffic utilization u_l in [0, 1).
	Util float64
	// Prop is the propagation delay.
	Prop netsim.Time
	// BufBytes bounds the drop-tail queue; 0 means unbounded.
	BufBytes int
	// Loss erases arriving packets with this probability in [0, 1)
	// (wire erasure, counted apart from buffer drops).
	Loss float64
	// Reorder delays transmitted packets by ReorderDelay with this
	// probability in [0, 1), letting later packets overtake them.
	Reorder float64
	// ReorderDelay is the extra delivery delay of reordered packets;
	// required positive when Reorder > 0.
	ReorderDelay netsim.Time
}

// availBw returns the link's analytic available bandwidth C_l·(1−u_l).
func (l LinkSpec) availBw() float64 { return l.Capacity * (1 - l.Util) }

// A RouteSpec declares one monitored path as a sequence of link names.
type RouteSpec struct {
	// Name identifies the path; unique within a Spec.
	Name string
	// Links are the traversed link names, in order. Links may appear in
	// any number of routes; that is the point.
	Links []string
}

// A Spec declares a whole shared-backbone fleet topology.
type Spec struct {
	Links  []LinkSpec
	Routes []RouteSpec
	// SourcesPerLink is the number of independent cross-traffic sources
	// per link; 0 selects DefaultSourcesPerLink.
	SourcesPerLink int
	// Model selects the cross-traffic interarrival family (the zero
	// value is Poisson).
	Model crosstraffic.Model
	// Sizes overrides the cross-traffic packet size distribution; nil
	// selects the paper's trimodal mix.
	Sizes crosstraffic.SizeDist
	// Seed makes the build reproducible; per-link traffic seeds are
	// derived from it.
	Seed int64
}

// Validate checks the spec for structural errors: duplicate or missing
// names, empty routes, out-of-range parameters.
func (s Spec) Validate() error {
	if len(s.Links) == 0 {
		return fmt.Errorf("mesh: spec has no links")
	}
	if len(s.Routes) == 0 {
		return fmt.Errorf("mesh: spec has no routes")
	}
	links := map[string]bool{}
	for _, l := range s.Links {
		if l.Name == "" {
			return fmt.Errorf("mesh: link with empty name")
		}
		if links[l.Name] {
			return fmt.Errorf("mesh: duplicate link %q", l.Name)
		}
		links[l.Name] = true
		if l.Capacity <= 0 {
			return fmt.Errorf("mesh: link %q: capacity must be positive, got %v", l.Name, l.Capacity)
		}
		if l.Util < 0 || l.Util >= 1 {
			return fmt.Errorf("mesh: link %q: utilization %v outside [0, 1)", l.Name, l.Util)
		}
		if l.Prop < 0 || l.BufBytes < 0 {
			return fmt.Errorf("mesh: link %q: negative propagation delay or buffer", l.Name)
		}
		if l.Loss < 0 || l.Loss >= 1 {
			return fmt.Errorf("mesh: link %q: loss %v outside [0, 1)", l.Name, l.Loss)
		}
		if l.Reorder < 0 || l.Reorder >= 1 {
			return fmt.Errorf("mesh: link %q: reorder %v outside [0, 1)", l.Name, l.Reorder)
		}
		if l.Reorder > 0 && l.ReorderDelay <= 0 {
			return fmt.Errorf("mesh: link %q: reorder needs a positive ReorderDelay, got %v", l.Name, l.ReorderDelay)
		}
		if l.ReorderDelay < 0 {
			return fmt.Errorf("mesh: link %q: negative ReorderDelay %v", l.Name, l.ReorderDelay)
		}
	}
	routes := map[string]bool{}
	for _, r := range s.Routes {
		if r.Name == "" {
			return fmt.Errorf("mesh: route with empty name")
		}
		if routes[r.Name] {
			return fmt.Errorf("mesh: duplicate route %q", r.Name)
		}
		routes[r.Name] = true
		if len(r.Links) == 0 {
			return fmt.Errorf("mesh: route %q is empty", r.Name)
		}
		hops := map[string]bool{}
		for _, name := range r.Links {
			if !links[name] {
				return fmt.Errorf("mesh: route %q uses unknown link %q", r.Name, name)
			}
			if hops[name] {
				return fmt.Errorf("mesh: route %q traverses link %q twice", r.Name, name)
			}
			hops[name] = true
		}
	}
	return nil
}

// A Path is one built route with its analytic ground truth.
type Path struct {
	// Name is the route's identifier, used as the monitor path ID.
	Name string
	// Route is the traversed links, in order.
	Route []*netsim.Link
	// LinkNames mirrors Route as spec names.
	LinkNames []string
	// TightIdx is the hop index of the tight link: the route's minimum
	// of C_l·(1−u_l). When two hops tie exactly, the earliest wins —
	// the scan keeps the first minimum, matching the paper's convention
	// that "the" tight link is well defined even on balanced paths.
	TightIdx int

	avail float64
}

// TightLink returns the path's tight link.
func (p *Path) TightLink() *netsim.Link { return p.Route[p.TightIdx] }

// AvailBw returns the path's analytic end-to-end available bandwidth
// A = min over the route of C_l·(1−u_l), excluding any probe load.
func (p *Path) AvailBw() float64 { return p.avail }

// Overlap counts the links this path shares with other.
func (p *Path) Overlap(other *Path) int {
	names := map[string]bool{}
	for _, n := range p.LinkNames {
		names[n] = true
	}
	shared := 0
	for _, n := range other.LinkNames {
		if names[n] {
			shared++
		}
	}
	return shared
}

// A Mesh is a built Spec: one live simulator with the link pool wired,
// cross traffic attached and started, and per-path ground truth
// precomputed.
type Mesh struct {
	Sim  *netsim.Simulator
	Spec Spec

	links  []*netsim.Link
	byLink map[string]*netsim.Link
	paths  []*Path
	byPath map[string]*Path
	aggs   []*crosstraffic.Aggregate
}

// Build constructs the simulator, links, routes, and cross traffic.
func (s Spec) Build() (*Mesh, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.SourcesPerLink == 0 {
		s.SourcesPerLink = DefaultSourcesPerLink
	}
	sizes := s.Sizes
	if sizes == nil {
		sizes = crosstraffic.Trimodal{}
	}

	m := &Mesh{
		Sim:    netsim.NewSimulator(),
		Spec:   s,
		byLink: map[string]*netsim.Link{},
		byPath: map[string]*Path{},
	}
	specByName := map[string]LinkSpec{}
	for i, ls := range s.Links {
		link := netsim.NewLink(m.Sim, ls.Name, int64(ls.Capacity), ls.Prop, ls.BufBytes)
		if ls.Loss > 0 || ls.Reorder > 0 {
			link.Impair(netsim.Impairment{
				Loss:         ls.Loss,
				Reorder:      ls.Reorder,
				ReorderDelay: ls.ReorderDelay,
				// A distinct stride keeps impairment draws independent of
				// the per-link cross-traffic seeds derived below.
				Seed: s.Seed + int64(i)*500_009 + 17,
			})
		}
		m.links = append(m.links, link)
		m.byLink[ls.Name] = link
		specByName[ls.Name] = ls

		if rate := ls.Capacity * ls.Util; rate > 0 {
			agg := crosstraffic.NewAggregate(m.Sim, []*netsim.Link{link}, rate,
				s.SourcesPerLink, s.Model, sizes, s.Seed+int64(i)*1_000_003)
			agg.Start()
			m.aggs = append(m.aggs, agg)
		}
	}
	for _, rs := range s.Routes {
		p := &Path{Name: rs.Name}
		for hop, name := range rs.Links {
			ls := specByName[name]
			p.Route = append(p.Route, m.byLink[name])
			p.LinkNames = append(p.LinkNames, name)
			if hop == 0 || ls.availBw() < p.avail {
				p.TightIdx, p.avail = hop, ls.availBw()
			}
		}
		m.paths = append(m.paths, p)
		m.byPath[p.Name] = p
	}
	return m, nil
}

// MustBuild is Build for known-good specs (the shape constructors).
func (s Spec) MustBuild() *Mesh {
	m, err := s.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// Links returns the built links in spec order.
func (m *Mesh) Links() []*netsim.Link { return m.links }

// Link returns a link by name, or nil.
func (m *Mesh) Link(name string) *netsim.Link { return m.byLink[name] }

// Paths returns the built paths in spec order.
func (m *Mesh) Paths() []*Path { return m.paths }

// Path returns a path by name, or nil.
func (m *Mesh) Path(name string) *Path { return m.byPath[name] }

// Warmup advances the simulation so queues and bursty sources reach
// steady state. Call it before creating probers on the mesh.
func (m *Mesh) Warmup(d netsim.Time) { m.Sim.Run(m.Sim.Now() + d) }

// StopTraffic halts all cross-traffic sources.
func (m *Mesh) StopTraffic() {
	for _, a := range m.aggs {
		a.Stop()
	}
}

// Overlaps returns the fleet's path-overlap graph: for every path, the
// sibling paths it shares at least one link with, sorted, in a map
// keyed by path name. Paths with no overlaps map to nil — the graph is
// what a contention-aware layer consults to know which sessions can
// interfere at all.
func (m *Mesh) Overlaps() map[string][]string {
	return m.overlapGraph(func(a, b *Path) bool { return a.Overlap(b) > 0 })
}

// TightOverlaps restricts the overlap graph to pairs sharing a link
// that is the tight link of at least one of the two paths — the pairs
// whose co-probing lands contention exactly on a hop being estimated,
// the bias the contention experiment measures at ≈ −3 Mb/s. Feed it to
// schedule.NewStagger to keep those sessions from measuring at once.
func (m *Mesh) TightOverlaps() map[string][]string {
	return m.overlapGraph(func(a, b *Path) bool {
		ta, tb := a.LinkNames[a.TightIdx], b.LinkNames[b.TightIdx]
		for _, n := range b.LinkNames {
			if n == ta {
				return true
			}
		}
		for _, n := range a.LinkNames {
			if n == tb {
				return true
			}
		}
		return false
	})
}

// overlapGraph builds an adjacency map over the fleet's paths using
// the given pair predicate. Neighbor lists follow spec (path) order,
// so the graph is deterministic.
func (m *Mesh) overlapGraph(conflict func(a, b *Path) bool) map[string][]string {
	g := make(map[string][]string, len(m.paths))
	for _, p := range m.paths {
		g[p.Name] = nil
	}
	for i, a := range m.paths {
		for _, b := range m.paths[i+1:] {
			if conflict(a, b) {
				g[a.Name] = append(g[a.Name], b.Name)
				g[b.Name] = append(g[b.Name], a.Name)
			}
		}
	}
	return g
}

// SequencedProbers creates one deterministic co-scheduled prober per
// path, in path order, all on the mesh's simulator. Drive the returned
// sequencer while one goroutine per prober measures; the fleet's
// contention pattern is then reproducible run-to-run.
func (m *Mesh) SequencedProbers(reverseDelay netsim.Time) (*simprobe.Sequencer, []*simprobe.Prober) {
	seq := simprobe.NewSequencer(m.Sim)
	probers := make([]*simprobe.Prober, len(m.paths))
	for i, p := range m.paths {
		probers[i] = seq.NewProber(p.Route, reverseDelay)
	}
	return seq, probers
}

// MonitorFleet wires the mesh into a sequenced pathload.Monitor: one
// Sequencer-backed prober per path registered under the path's name,
// all driven by a simprobe.SequencedDriver installed as the monitor's
// Driver. Sessions park at the fleet round barrier between rounds and
// spend scheduler gaps in virtual time, so the whole monitored fleet
// advances on one virtual clock and an identical configuration replays
// byte-for-byte regardless of host scheduling. Warm the mesh up first;
// install any OnRoundBoundary hook (fleet-scenario epoch advances,
// link-counter snapshots) on the returned driver before Start; the
// caller starts and owns the returned monitor.
//
// The config must leave Admission nil (the driver owns the
// interleave) and paths must not be factory-backed — pathload.Monitor
// enforces both at Start. For a live, non-deterministic fleet (e.g.
// wall-clock admission experiments) use SharedMonitorFleet.
func (m *Mesh) MonitorFleet(cfg pathload.MonitorConfig, reverseDelay netsim.Time) (*pathload.Monitor, *simprobe.SequencedDriver, error) {
	seq, probers := m.SequencedProbers(reverseDelay)
	drv := simprobe.NewSequencedDriver(seq)
	cfg.Driver = drv
	mon, err := pathload.NewMonitor(cfg)
	if err != nil {
		return nil, nil, err
	}
	for i, p := range m.paths {
		drv.Register(p.Name, probers[i])
		if err := mon.AddPath(p.Name, probers[i]); err != nil {
			return nil, nil, err
		}
	}
	return mon, drv, nil
}

// SharedMonitorFleet is the non-deterministic fallback: one
// SharedSim-backed prober per path, registered under the path's name.
// The monitor's concurrent sessions serialize on the one simulator, so
// overlapping paths contend while samples land in the configured
// Results channel and SampleSink as usual, but the interleave follows
// the host scheduler — fleet results are live and race-free, not
// reproducible run-to-run. It is the only fleet mode compatible with
// Admission policies (schedule.NewStagger), which would stall
// MonitorFleet's round barrier.
func (m *Mesh) SharedMonitorFleet(cfg pathload.MonitorConfig, reverseDelay netsim.Time) (*pathload.Monitor, error) {
	mon, err := pathload.NewMonitor(cfg)
	if err != nil {
		return nil, err
	}
	shared := simprobe.NewSharedSim(m.Sim)
	for _, p := range m.paths {
		if err := mon.AddPath(p.Name, shared.NewProber(p.Route, reverseDelay)); err != nil {
			return nil, err
		}
	}
	return mon, nil
}
