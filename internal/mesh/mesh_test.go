package mesh

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"

	pathload "repro"
)

// TestStarGroundTruth: every star path's tight link is the shared core
// and its avail-bw is the core's C·(1−u).
func TestStarGroundTruth(t *testing.T) {
	m := Star(3, 7).MustBuild()
	if got := len(m.Paths()); got != 3 {
		t.Fatalf("%d paths, want 3", got)
	}
	for _, p := range m.Paths() {
		if p.TightLink().Name() != "core" {
			t.Errorf("%s: tight link %q, want core", p.Name, p.TightLink().Name())
		}
		if p.TightIdx != 1 {
			t.Errorf("%s: tight hop %d, want 1", p.Name, p.TightIdx)
		}
		if want := coreCap * (1 - coreUtil); p.AvailBw() != want {
			t.Errorf("%s: A = %v, want %v", p.Name, p.AvailBw(), want)
		}
	}
	// Full overlap: every pair shares exactly the core.
	ps := m.Paths()
	if got := ps[0].Overlap(ps[2]); got != 1 {
		t.Errorf("star overlap = %d, want 1", got)
	}
}

// TestChainGroundTruth: parking-lot paths alternate tight hops, and
// only adjacent paths overlap.
func TestChainGroundTruth(t *testing.T) {
	m := Chain(3, 7).MustBuild()
	want := []struct {
		tight string
		idx   int
	}{
		{"hop-00", 0}, // hops 0,1: even hop is loaded
		{"hop-02", 1}, // hops 1,2
		{"hop-02", 0}, // hops 2,3
	}
	for i, p := range m.Paths() {
		if p.TightLink().Name() != want[i].tight || p.TightIdx != want[i].idx {
			t.Errorf("%s: tight %q@%d, want %q@%d",
				p.Name, p.TightLink().Name(), p.TightIdx, want[i].tight, want[i].idx)
		}
		if wantA := coreCap * (1 - coreUtil); p.AvailBw() != wantA {
			t.Errorf("%s: A = %v, want %v", p.Name, p.AvailBw(), wantA)
		}
	}
	ps := m.Paths()
	if got := ps[0].Overlap(ps[1]); got != 1 {
		t.Errorf("adjacent chain overlap = %d, want 1", got)
	}
	if got := ps[0].Overlap(ps[2]); got != 0 {
		t.Errorf("non-adjacent chain overlap = %d, want 0", got)
	}
}

// TestTreeGroundTruth: the root is tight for every path; group
// siblings share two links, cross-group paths one.
func TestTreeGroundTruth(t *testing.T) {
	m := Tree(3, 7).MustBuild()
	for _, p := range m.Paths() {
		if p.TightLink().Name() != "root" || p.TightIdx != 2 {
			t.Errorf("%s: tight %q@%d, want root@2", p.Name, p.TightLink().Name(), p.TightIdx)
		}
		if want := rootCap * (1 - rootUtil); p.AvailBw() != want {
			t.Errorf("%s: A = %v, want %v", p.Name, p.AvailBw(), want)
		}
	}
	ps := m.Paths()
	if got := ps[0].Overlap(ps[1]); got != 2 { // agg-00 + root
		t.Errorf("sibling tree overlap = %d, want 2", got)
	}
	if got := ps[0].Overlap(ps[2]); got != 1 { // root only
		t.Errorf("cross-group tree overlap = %d, want 1", got)
	}
}

// TestDisjointGroundTruth: the control shape has no shared links.
func TestDisjointGroundTruth(t *testing.T) {
	m := Disjoint(2, 7).MustBuild()
	ps := m.Paths()
	if got := ps[0].Overlap(ps[1]); got != 0 {
		t.Errorf("disjoint overlap = %d, want 0", got)
	}
	for _, p := range ps {
		if want := soloCap * (1 - soloUtil); p.AvailBw() != want {
			t.Errorf("%s: A = %v, want %v", p.Name, p.AvailBw(), want)
		}
		if p.TightIdx != 0 {
			t.Errorf("%s: tight hop %d, want 0", p.Name, p.TightIdx)
		}
	}
}

// TestTightLinkTie: when two hops have exactly equal avail-bw the
// earliest hop wins, in either traversal order.
func TestTightLinkTie(t *testing.T) {
	// Both links have A = 5 Mb/s: 10 Mb/s at 50% and 5 Mb/s unloaded.
	links := []LinkSpec{
		{Name: "loaded", Capacity: 10e6, Util: 0.5},
		{Name: "slim", Capacity: 5e6, Util: 0},
	}
	for _, route := range [][]string{{"loaded", "slim"}, {"slim", "loaded"}} {
		m, err := (Spec{
			Links:  links,
			Routes: []RouteSpec{{Name: "p", Links: route}},
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		p := m.Path("p")
		if p.TightIdx != 0 {
			t.Errorf("route %v: tie broke to hop %d, want earliest (0)", route, p.TightIdx)
		}
		if p.TightLink().Name() != route[0] {
			t.Errorf("route %v: tight link %q, want %q", route, p.TightLink().Name(), route[0])
		}
		if p.AvailBw() != 5e6 {
			t.Errorf("route %v: A = %v, want 5e6", route, p.AvailBw())
		}
	}
}

// TestTightLinkTieMidRoute extends the tie rule to longer routes: with
// three exactly co-tight hops (different capacity/utilization pairs, the
// same C·(1−u)) the earliest still wins, and a tie that begins mid-route
// resolves to the first tied hop, not hop 0.
func TestTightLinkTieMidRoute(t *testing.T) {
	// A = 5 Mb/s three ways: 10 Mb/s @ 0.5, 5 Mb/s @ 0, 20 Mb/s @ 0.75.
	links := []LinkSpec{
		{Name: "wide", Capacity: 50e6, Util: 0.1}, // A = 45 Mb/s, never tight
		{Name: "a", Capacity: 10e6, Util: 0.5},
		{Name: "b", Capacity: 5e6, Util: 0},
		{Name: "c", Capacity: 20e6, Util: 0.75},
	}
	for _, tc := range []struct {
		route   []string
		tight   string
		tightAt int
	}{
		{[]string{"a", "b", "c"}, "a", 0},
		{[]string{"c", "b", "a"}, "c", 0},
		{[]string{"wide", "b", "a"}, "b", 1}, // tie starts mid-route
		{[]string{"wide", "c", "b"}, "c", 1},
	} {
		m, err := (Spec{
			Links:  links,
			Routes: []RouteSpec{{Name: "p", Links: tc.route}},
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		p := m.Path("p")
		if p.TightIdx != tc.tightAt || p.TightLink().Name() != tc.tight {
			t.Errorf("route %v: tight %q@%d, want %q@%d",
				tc.route, p.TightLink().Name(), p.TightIdx, tc.tight, tc.tightAt)
		}
		if p.AvailBw() != 5e6 {
			t.Errorf("route %v: A = %v, want 5e6", tc.route, p.AvailBw())
		}
	}
}

// TestImpairedLinkWiring: Build installs the spec's loss/reordering on
// the right link — packets crossing it get erased at the configured
// rate, while clean links stay untouched.
func TestImpairedLinkWiring(t *testing.T) {
	m, err := (Spec{
		Links: []LinkSpec{
			{Name: "clean", Capacity: 10e6},
			{Name: "lossy", Capacity: 10e6, Loss: 0.2, Reorder: 0.1, ReorderDelay: netsim.Millisecond},
		},
		Routes: []RouteSpec{{Name: "p", Links: []string{"clean", "lossy"}}},
		Seed:   9,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	route := m.Path("p").Route
	for i := 0; i < 2000; i++ {
		i := i
		m.Sim.Schedule(netsim.Time(i)*netsim.Millisecond, func() {
			pkt := m.Sim.NewPacket()
			pkt.Size = 500
			m.Sim.Inject(pkt, route, nil)
		})
	}
	m.Sim.RunFor(3 * netsim.Second)
	clean, lossy := m.Link("clean").Counters(), m.Link("lossy").Counters()
	if clean.RandLoss != 0 || clean.Reordered != 0 {
		t.Errorf("clean link impaired: %+v", clean)
	}
	if rate := float64(lossy.RandLoss) / 2000; rate < 0.15 || rate > 0.25 {
		t.Errorf("lossy link erased %.3f of packets, want ≈0.20", rate)
	}
	if lossy.Reordered == 0 {
		t.Error("lossy link reordered nothing")
	}
}

// TestSpecValidation exercises every structural error.
func TestSpecValidation(t *testing.T) {
	good := Spec{
		Links:  []LinkSpec{{Name: "a", Capacity: 1e6}},
		Routes: []RouteSpec{{Name: "p", Links: []string{"a"}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no links", func(s *Spec) { s.Links = nil }, "no links"},
		{"no routes", func(s *Spec) { s.Routes = nil }, "no routes"},
		{"empty link name", func(s *Spec) { s.Links[0].Name = "" }, "empty name"},
		{"dup link", func(s *Spec) { s.Links = append(s.Links, s.Links[0]) }, "duplicate link"},
		{"bad capacity", func(s *Spec) { s.Links[0].Capacity = 0 }, "capacity"},
		{"bad util", func(s *Spec) { s.Links[0].Util = 1 }, "utilization"},
		{"negative prop", func(s *Spec) { s.Links[0].Prop = -1 }, "negative"},
		{"negative buffer", func(s *Spec) { s.Links[0].BufBytes = -1 }, "negative"},
		{"negative util", func(s *Spec) { s.Links[0].Util = -0.1 }, "utilization"},
		{"loss ≥ 1", func(s *Spec) { s.Links[0].Loss = 1 }, "loss"},
		{"negative loss", func(s *Spec) { s.Links[0].Loss = -0.1 }, "loss"},
		{"reorder ≥ 1", func(s *Spec) { s.Links[0].Reorder = 1; s.Links[0].ReorderDelay = 1 }, "reorder"},
		{"negative reorder", func(s *Spec) { s.Links[0].Reorder = -0.1 }, "reorder"},
		{"reorder no delay", func(s *Spec) { s.Links[0].Reorder = 0.1 }, "ReorderDelay"},
		{"negative delay", func(s *Spec) { s.Links[0].ReorderDelay = -1 }, "ReorderDelay"},
		{"empty route name", func(s *Spec) { s.Routes[0].Name = "" }, "empty name"},
		{"dup route", func(s *Spec) { s.Routes = append(s.Routes, s.Routes[0]) }, "duplicate route"},
		{"empty route", func(s *Spec) { s.Routes[0].Links = nil }, "is empty"},
		{"unknown link", func(s *Spec) { s.Routes[0].Links = []string{"zzz"} }, "unknown link"},
		{"loop", func(s *Spec) { s.Routes[0].Links = []string{"a", "a"} }, "twice"},
	}
	for _, tc := range cases {
		s := Spec{
			Links:  append([]LinkSpec(nil), good.Links...),
			Routes: []RouteSpec{{Name: "p", Links: []string{"a"}}},
		}
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("%s: Build accepted an invalid spec", tc.name)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustBuild on invalid spec did not panic")
			}
		}()
		Spec{}.MustBuild()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-path shape did not panic")
			}
		}()
		Star(0, 1)
	}()
}

// TestShapeRegistry: every advertised shape builds, unknown names
// error.
func TestShapeRegistry(t *testing.T) {
	for _, name := range ShapeNames() {
		spec, err := Shape(name, 4, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(m.Paths()); got != 4 {
			t.Errorf("%s: %d paths, want 4", name, got)
		}
		for i, p := range m.Paths() {
			if m.Path(p.Name) != p {
				t.Errorf("%s: Path(%q) lookup broken", name, p.Name)
			}
			if p.AvailBw() <= 0 {
				t.Errorf("%s %s: non-positive avail-bw", name, p.Name)
			}
			if i > 0 && p.Name <= m.Paths()[i-1].Name {
				t.Errorf("%s: path names not ordered: %q after %q", name, p.Name, m.Paths()[i-1].Name)
			}
		}
	}
	if _, err := Shape("bogus", 2, 1); err == nil {
		t.Error("unknown shape accepted")
	}
	// Fleet size reaches Shape from user flags: it must error, not
	// panic like the direct constructors.
	if _, err := Shape("star", 0, 1); err == nil {
		t.Error("zero-path Shape accepted")
	}
	if m := Star(2, 1).MustBuild(); m.Link("core") == nil || m.Link("zzz") != nil {
		t.Error("Link lookup broken")
	}
}

// TestCrossTrafficRealizesUtil: the built cross traffic must actually
// load the core link at its configured utilization.
func TestCrossTrafficRealizesUtil(t *testing.T) {
	m := Star(2, 42).MustBuild()
	m.Warmup(2 * netsim.Second)
	before := m.Link("core").Counters()
	start := m.Sim.Now()
	m.Sim.RunFor(40 * netsim.Second)
	util := netsim.Utilization(before, m.Link("core").Counters(), m.Sim.Now()-start)
	if util < coreUtil-0.06 || util > coreUtil+0.06 {
		t.Fatalf("core utilization %.3f, want ≈ %.2f", util, coreUtil)
	}
	m.StopTraffic()
	before = m.Link("core").Counters()
	m.Sim.RunFor(5 * netsim.Second)
	if after := m.Link("core").Counters(); after.PktsIn != before.PktsIn {
		t.Fatalf("traffic kept flowing after StopTraffic")
	}
}

// TestSequencedProbersMeasure: a disjoint mesh fleet measured through
// the deterministic sequencer must recover each path's avail-bw (no
// shared links, so co-probing cannot disturb it).
func TestSequencedProbersMeasure(t *testing.T) {
	m := Disjoint(2, 11).MustBuild()
	m.Warmup(2 * netsim.Second)
	seq, probers := m.SequencedProbers(10 * netsim.Millisecond)
	cfg := pathload.Config{PacketsPerStream: 60, StreamsPerFleet: 6}

	results := make([]pathload.Result, len(probers))
	errs := make([]error, len(probers))
	var wg sync.WaitGroup
	for i, p := range probers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.Retire()
			results[i], errs[i] = pathload.Run(p, cfg)
		}()
	}
	done := make(chan struct{})
	go func() { seq.Drive(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("sequencer stalled: %v", seq)
	}
	wg.Wait()

	slack := pathload.DefaultResolution + pathload.DefaultGreyResolution
	for i, p := range m.Paths() {
		if errs[i] != nil {
			t.Fatalf("%s: %v", p.Name, errs[i])
		}
		a := p.AvailBw()
		if results[i].Lo-slack > a || results[i].Hi+slack < a {
			t.Errorf("%s: range [%.2f, %.2f] Mb/s misses A = %.2f Mb/s",
				p.Name, results[i].Lo/1e6, results[i].Hi/1e6, a/1e6)
		}
	}
}

// countingSink tallies monitor samples per path.
type countingSink struct {
	mu     sync.Mutex
	byPath map[string]int
	errors int
}

func (c *countingSink) Observe(s pathload.Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byPath == nil {
		c.byPath = map[string]int{}
	}
	c.byPath[s.Path]++
	if s.Err != nil {
		c.errors++
	}
}

// TestMonitorFleetOverMesh: the SharedSim-backed fallback fleet feeds
// a pathload.Monitor whose sessions contend on one simulator; every
// path must deliver every round, to the channel and the sink alike.
func TestMonitorFleetOverMesh(t *testing.T) {
	m := Star(4, 5).MustBuild()
	m.Warmup(2 * netsim.Second)
	sink := &countingSink{}
	mon, err := m.SharedMonitorFleet(pathload.MonitorConfig{
		Workers:  4,
		Rounds:   2,
		Interval: 20 * time.Millisecond,
		Seed:     5,
		Config:   pathload.Config{PacketsPerStream: 40, StreamsPerFleet: 4},
		Store:    sink,
	}, 10*netsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Paths(); len(got) != 4 || got[0] != "path-00" {
		t.Fatalf("monitor paths %v", got)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := range mon.Results() {
		if s.Err != nil {
			t.Errorf("%s round %d: %v", s.Path, s.Round, s.Err)
		}
		total++
	}
	mon.Wait()
	if total != 8 {
		t.Fatalf("%d samples, want 8", total)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.errors != 0 || len(sink.byPath) != 4 {
		t.Fatalf("sink saw %d paths (%d errors), want 4 paths, 0 errors", len(sink.byPath), sink.errors)
	}
	for id, n := range sink.byPath {
		if n != 2 {
			t.Errorf("%s: sink saw %d rounds, want 2", id, n)
		}
	}
	// Both fleet constructors must reject a broken config rather than
	// half-wire it.
	if _, err := m.SharedMonitorFleet(pathload.MonitorConfig{Jitter: 2}, 0); err == nil {
		t.Error("invalid monitor config accepted")
	}
	if _, _, err := m.MonitorFleet(pathload.MonitorConfig{Jitter: 2}, 0); err == nil {
		t.Error("invalid monitor config accepted by sequenced fleet")
	}
}

// TestOverlapGraphs pins the exported path-overlap graphs on the
// canonical shapes: Overlaps counts any shared link, TightOverlaps only
// links tight for at least one endpoint — the distinction the chain
// shape exists to exercise.
func TestOverlapGraphs(t *testing.T) {
	adj := func(g map[string][]string, p string) string {
		return fmt.Sprintf("%v", g[p])
	}

	// Star: one shared core, tight for everyone — both graphs are the
	// complete graph.
	star := Star(3, 1).MustBuild()
	for _, g := range []map[string][]string{star.Overlaps(), star.TightOverlaps()} {
		if got := adj(g, "path-01"); got != "[path-00 path-02]" {
			t.Errorf("star path-01 overlaps %s, want [path-00 path-02]", got)
		}
	}

	// Chain of 3: neighbors share a hop, but only the path-01/path-02
	// pair shares a link (hop-02) that is tight for either of them —
	// path-00 and path-01 share the quiet hop-01.
	chain := Chain(3, 1).MustBuild()
	over, tight := chain.Overlaps(), chain.TightOverlaps()
	if got := adj(over, "path-01"); got != "[path-00 path-02]" {
		t.Errorf("chain path-01 overlaps %s, want both neighbors", got)
	}
	if got := adj(tight, "path-01"); got != "[path-02]" {
		t.Errorf("chain path-01 tight-overlaps %s, want only path-02 (hop-01 is quiet)", got)
	}
	if got := adj(tight, "path-00"); got != "[]" {
		t.Errorf("chain path-00 tight-overlaps %s, want none", got)
	}

	// Disjoint: no shared links at all, but every path still appears in
	// the map (schedule.NewStagger wants the full roster shape).
	dis := Disjoint(3, 1).MustBuild()
	g := dis.Overlaps()
	if len(g) != 3 {
		t.Fatalf("disjoint graph has %d entries, want 3", len(g))
	}
	for p, n := range g {
		if len(n) != 0 {
			t.Errorf("disjoint %s overlaps %v, want none", p, n)
		}
	}

	// Tree: the root is tight for every path, so TightOverlaps is
	// complete even across aggregation groups.
	tree := Tree(4, 1).MustBuild()
	if got := adj(tree.TightOverlaps(), "path-00"); got != "[path-01 path-02 path-03]" {
		t.Errorf("tree path-00 tight-overlaps %s, want all siblings", got)
	}
}
