package mesh

import (
	"time"

	"repro/internal/netsim"
)

// A LinkSink receives windowed per-link utilization observations from a
// LinkRecorder. internal/tsstore.Store implements it, which puts the
// shared backbone's links on the same scrape/MRTG surface as the
// per-path samples — the dashboard answer to "which common hop is the
// fleet saturating?".
//
// at and span are virtual times (window start since simulation start,
// and window length); util is the mean utilization over the window;
// capacity is the link's rate in bits/s, so util·capacity is the
// window's mean carried load. Calls arrive from whoever fires the
// recorder — under a sequenced fleet that is the round-boundary hook,
// which runs with exclusive simulator access, so implementations only
// need the same concurrency safety as any other sink.
type LinkSink interface {
	ObserveLink(link string, round int, at, span time.Duration, util, capacity float64)
}

// A LinkRecorder snapshots every mesh link's counters and emits the
// utilization of the window since the previous snapshot to a LinkSink.
// Fire Snapshot from a SequencedDriver.OnRoundBoundary hook and the
// link series lands one point per fleet round, exactly aligned with the
// sample series the monitor is producing.
type LinkRecorder struct {
	mesh *Mesh
	sink LinkSink
	prev []netsim.LinkCounters
	at   netsim.Time
}

// NewLinkRecorder creates a recorder whose first window starts now;
// typically called after Warmup so the warmup traffic is not counted.
func (m *Mesh) NewLinkRecorder(sink LinkSink) *LinkRecorder {
	r := &LinkRecorder{mesh: m, sink: sink, prev: make([]netsim.LinkCounters, len(m.links)), at: m.Sim.Now()}
	for i, l := range m.links {
		r.prev[i] = l.Counters()
	}
	return r
}

// Snapshot closes the current window at the simulator's current time
// and emits one observation per link, tagged with round. Zero-length
// windows emit nothing. The caller must have exclusive simulator
// access (a round-boundary hook does).
func (r *LinkRecorder) Snapshot(round int) {
	now := r.mesh.Sim.Now()
	window := now - r.at
	if window <= 0 {
		return
	}
	for i, l := range r.mesh.links {
		cur := l.Counters()
		util := netsim.Utilization(r.prev[i], cur, window)
		r.sink.ObserveLink(r.mesh.Spec.Links[i].Name, round, r.at.Duration(), window.Duration(), util, float64(l.Capacity()))
		r.prev[i] = cur
	}
	r.at = now
}
