package mesh

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	pathload "repro"
	"repro/internal/netsim"
	"repro/internal/schedule"
	"repro/internal/simprobe"
)

// driverFleetConfig is a small-but-real sequenced fleet config shared by
// the lifecycle tests: virtual-time gaps, enough buffer that no session
// blocks on the channel mid-barrier.
func driverFleetConfig(paths, rounds int) pathload.MonitorConfig {
	return pathload.MonitorConfig{
		Rounds:   rounds,
		Interval: 500 * time.Millisecond,
		Seed:     7,
		Config:   pathload.Config{PacketsPerStream: 40, StreamsPerFleet: 4},
		Buffer:   paths * (rounds + 1),
	}
}

// TestMonitorDriverRejectsUnsupportedConfigs: a sequenced driver cannot
// host factory-backed (wall-clock-healing) sessions or an Admission
// policy; Start must say so before any goroutine runs, with the remedy
// in the message.
func TestMonitorDriverRejectsUnsupportedConfigs(t *testing.T) {
	m := Disjoint(2, 11).MustBuild()
	m.Warmup(2 * netsim.Second)
	seq, probers := m.SequencedProbers(10 * netsim.Millisecond)
	drv := simprobe.NewSequencedDriver(seq)
	for i, p := range m.Paths() {
		drv.Register(p.Name, probers[i])
	}

	cfg := driverFleetConfig(2, 1)
	cfg.Driver = drv
	mon, err := pathload.NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.AddPath("path-00", probers[0]); err != nil {
		t.Fatal(err)
	}
	if err := mon.AddPathFactory("path-01", func() (pathload.Prober, error) {
		return probers[1], nil
	}); err != nil {
		t.Fatal(err)
	}
	err = mon.Start()
	if err == nil || !strings.Contains(err.Error(), "factory-backed") {
		t.Fatalf("factory path under a Driver: err = %v, want factory-backed rejection", err)
	}

	cfg = driverFleetConfig(2, 1)
	cfg.Driver = drv
	cfg.Admission = schedule.NewWorkers(1)
	mon, err = pathload.NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.AddPath("path-00", probers[0]); err != nil {
		t.Fatal(err)
	}
	err = mon.Start()
	if err == nil || !strings.Contains(err.Error(), "Admission") {
		t.Fatalf("Admission under a Driver: err = %v, want Admission rejection", err)
	}
}

// TestMonitorDriverStopAtBarrier: Stop on an unbounded (Rounds == 0)
// sequenced fleet is observed as soon as the round barrier releases —
// every parked session wakes, retires its prober, the driver's Drive
// loop returns, and Results closes. The test would hang (and trip the
// timeout guard) if a session stayed parked past Stop.
func TestMonitorDriverStopAtBarrier(t *testing.T) {
	m := Star(4, 5).MustBuild()
	m.Warmup(2 * netsim.Second)
	mon, _, err := m.MonitorFleet(driverFleetConfig(4, 0), 10*netsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}

	total := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range mon.Results() {
			if s.Err != nil {
				t.Errorf("%s round %d: %v", s.Path, s.Round, s.Err)
			}
			total++
			if total == 4 {
				// One full fleet round observed; the fleet is at or
				// heading into the round barrier.
				mon.Stop()
			}
		}
		mon.Wait()
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("monitor did not shut down after Stop at the fleet round barrier")
	}
	if total < 4 {
		t.Fatalf("%d samples before close, want at least one full fleet round (4)", total)
	}
}

// flakyProber wraps a sequenced prober and fails the first SendStream
// outright, before touching the simulator — the shape of a transport
// error surfacing mid-round on one fleet member.
type flakyProber struct {
	inner *simprobe.Prober
	mu    sync.Mutex
	fails int
}

var errFlaky = errors.New("injected stream failure")

func (f *flakyProber) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	f.mu.Lock()
	if f.fails > 0 {
		f.fails--
		f.mu.Unlock()
		return pathload.StreamResult{}, errFlaky
	}
	f.mu.Unlock()
	return f.inner.SendStream(spec)
}

func (f *flakyProber) Idle(d time.Duration) error { return f.inner.Idle(d) }
func (f *flakyProber) RTT() time.Duration         { return f.inner.RTT() }

// TestMonitorDriverSurvivesProberError: a measurement error on one
// sequenced session must not wedge the fleet round barrier. The failed
// round publishes its error sample, the session parks at the barrier
// like any other, and every path — including the one that failed —
// delivers all its remaining rounds.
func TestMonitorDriverSurvivesProberError(t *testing.T) {
	m := Disjoint(2, 11).MustBuild()
	m.Warmup(2 * netsim.Second)
	seq, probers := m.SequencedProbers(10 * netsim.Millisecond)
	drv := simprobe.NewSequencedDriver(seq)

	cfg := driverFleetConfig(2, 3)
	cfg.Driver = drv
	mon, err := pathload.NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyProber{inner: probers[0], fails: 1}
	wrapped := []pathload.Prober{flaky, probers[1]}
	for i, p := range m.Paths() {
		// The driver owns the inner sequenced prober (RoundEnd/Gap/Retire
		// act on it); the monitor measures through the wrapper.
		drv.Register(p.Name, probers[i])
		if err := mon.AddPath(p.Name, wrapped[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}

	type key struct {
		path  string
		round int
	}
	got := map[key]error{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range mon.Results() {
			got[key{s.Path, s.Round}] = s.Err
		}
		mon.Wait()
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("fleet stalled after an injected prober error")
	}

	if len(got) != 6 {
		t.Fatalf("%d samples, want 6 (2 paths x 3 rounds): %v", len(got), got)
	}
	for k, err := range got {
		if k == (key{"path-00", 0}) {
			if !errors.Is(err, errFlaky) {
				t.Errorf("path-00 round 0: err = %v, want the injected failure", err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s round %d: unexpected error %v", k.path, k.round, err)
		}
	}
}
