package simprobe

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"

	pathload "repro"
)

// TestSharedSimConcurrentProbers drives several probers over routes
// through one shared bottleneck link from concurrent goroutines. Under
// -race this pins the serialization contract; functionally, every
// stream must deliver all its packets and report sane OWDs.
func TestSharedSimConcurrentProbers(t *testing.T) {
	sim := netsim.NewSimulator()
	core := netsim.NewLink(sim, "core", 100_000_000, 5*netsim.Millisecond, 0)
	shared := NewSharedSim(sim)

	const probers = 8
	var wg sync.WaitGroup
	errs := make(chan error, probers)
	for i := 0; i < probers; i++ {
		access := netsim.NewLink(sim, "access", 100_000_000, netsim.Millisecond, 0)
		p := shared.NewProber([]*netsim.Link{access, core}, 10*netsim.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < 3; s++ {
				res, err := p.SendStream(pathload.StreamSpec{Rate: 4e6, K: 25, L: 500, T: time.Millisecond, Index: s})
				if err != nil {
					errs <- err
					return
				}
				if len(res.OWDs) != 25 {
					t.Errorf("stream delivered %d/25 packets", len(res.OWDs))
				}
				for j, o := range res.OWDs {
					if o.OWD <= 0 {
						t.Errorf("packet %d has non-positive OWD %v", j, o.OWD)
					}
				}
				if err := p.Idle(5 * time.Millisecond); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedSimUniquePacketIDs: sibling probers must draw from one ID
// space so their packets stay distinguishable on shared links.
func TestSharedSimUniquePacketIDs(t *testing.T) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 50_000_000, netsim.Millisecond, 0)
	shared := NewSharedSim(sim)
	seen := map[uint64]bool{}
	var mu sync.Mutex
	link.OnTransmit(func(pkt *netsim.Packet, _ netsim.Time) {
		mu.Lock()
		defer mu.Unlock()
		if seen[pkt.ID] {
			t.Errorf("duplicate packet ID %d", pkt.ID)
		}
		seen[pkt.ID] = true
	})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		p := shared.NewProber([]*netsim.Link{link}, 10*netsim.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.SendStream(pathload.StreamSpec{Rate: 4e6, K: 20, L: 500, T: time.Millisecond}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4*20 {
		t.Fatalf("transmitted %d distinct packets, want %d", len(seen), 80)
	}
}
