package simprobe

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"

	pathload "repro"
)

// TestSharedSimConcurrentProbers drives several probers over routes
// through one shared bottleneck link from concurrent goroutines. Under
// -race this pins the serialization contract; functionally, every
// stream must deliver all its packets and report sane OWDs.
func TestSharedSimConcurrentProbers(t *testing.T) {
	sim := netsim.NewSimulator()
	core := netsim.NewLink(sim, "core", 100_000_000, 5*netsim.Millisecond, 0)
	shared := NewSharedSim(sim)

	const probers = 8
	var wg sync.WaitGroup
	errs := make(chan error, probers)
	for i := 0; i < probers; i++ {
		access := netsim.NewLink(sim, "access", 100_000_000, netsim.Millisecond, 0)
		p := shared.NewProber([]*netsim.Link{access, core}, 10*netsim.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < 3; s++ {
				res, err := p.SendStream(pathload.StreamSpec{Rate: 4e6, K: 25, L: 500, T: time.Millisecond, Index: s})
				if err != nil {
					errs <- err
					return
				}
				if len(res.OWDs) != 25 {
					t.Errorf("stream delivered %d/25 packets", len(res.OWDs))
				}
				for j, o := range res.OWDs {
					if o.OWD <= 0 {
						t.Errorf("packet %d has non-positive OWD %v", j, o.OWD)
					}
				}
				if err := p.Idle(5 * time.Millisecond); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedSimUniquePacketIDs: sibling probers must draw from one ID
// space so their packets stay distinguishable on shared links. Eight
// concurrent probers, several streams each, under -race: the ID space
// must stay collision-free however the mutex interleaves them.
func TestSharedSimUniquePacketIDs(t *testing.T) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 50_000_000, netsim.Millisecond, 0)
	shared := NewSharedSim(sim)
	seen := map[uint64]bool{}
	var mu sync.Mutex
	link.OnTransmit(func(pkt *netsim.Packet, _ netsim.Time) {
		mu.Lock()
		defer mu.Unlock()
		if seen[pkt.ID] {
			t.Errorf("duplicate packet ID %d", pkt.ID)
		}
		seen[pkt.ID] = true
	})

	const probers, streams, k = 8, 3, 20
	var wg sync.WaitGroup
	for i := 0; i < probers; i++ {
		p := shared.NewProber([]*netsim.Link{link}, 10*netsim.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < streams; s++ {
				if _, err := p.SendStream(pathload.StreamSpec{Rate: 4e6, K: k, L: 500, T: time.Millisecond, Index: s}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != probers*streams*k {
		t.Fatalf("transmitted %d distinct packets, want %d", len(seen), probers*streams*k)
	}
}

// TestSharedSimErrorsDoNotDeadlock: probers that error mid-stream must
// release the shared simulator — siblings still probing and callers of
// Locked must make progress, not deadlock on an orphaned mutex.
func TestSharedSimErrorsDoNotDeadlock(t *testing.T) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 50_000_000, netsim.Millisecond, 0)
	shared := NewSharedSim(sim)

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			i := i
			p := shared.NewProber([]*netsim.Link{link}, 10*netsim.Millisecond)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := 0; s < 4; s++ {
					spec := pathload.StreamSpec{Rate: 4e6, K: 15, L: 400, T: time.Millisecond, Index: s}
					if i%2 == 0 {
						spec.K = 0 // invalid: this prober errors out every stream
					}
					res, err := p.SendStream(spec)
					if i%2 == 0 {
						if err == nil {
							t.Error("invalid spec did not error")
						}
						continue // keep hammering the error path
					}
					if err != nil {
						t.Errorf("prober %d: %v", i, err)
						return
					}
					if len(res.OWDs) != 15 {
						t.Errorf("prober %d stream %d: %d/15 packets", i, s, len(res.OWDs))
					}
					if err := p.Idle(2 * time.Millisecond); err != nil {
						t.Errorf("prober %d idle: %v", i, err)
						return
					}
				}
			}()
		}
		// Locked must stay acquirable while the fleet churns, errors
		// included.
		for j := 0; j < 50; j++ {
			shared.Locked(func(s *netsim.Simulator) { s.RunFor(netsim.Millisecond) })
		}
		wg.Wait()
		shared.Locked(func(s *netsim.Simulator) { s.RunFor(netsim.Millisecond) })
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("shared simulator deadlocked with erroring probers")
	}
}
