package simprobe

import (
	"math"
	"testing"
	"time"

	"repro/internal/crosstraffic"
	"repro/internal/fluid"
	"repro/internal/netsim"

	pathload "repro"
)

// quietPath builds an unloaded single-link path.
func quietPath(capacity int64, buf int) (*netsim.Simulator, []*netsim.Link) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", capacity, 5*netsim.Millisecond, buf)
	return sim, []*netsim.Link{link}
}

// TestOWDsMatchFluidModel sends a stream above the avail-bw of a
// CBR-loaded link and compares the per-packet OWD slope against the
// analytical fluid model.
func TestOWDsMatchFluidModel(t *testing.T) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 10_000_000, 5*netsim.Millisecond, 0)
	// Smooth CBR load: 6 Mb/s of 100-byte packets from 50 sources.
	agg := crosstraffic.NewAggregate(sim, []*netsim.Link{link}, 6e6, 50,
		crosstraffic.ModelCBR, crosstraffic.FixedSize{Bytes: 100}, 9)
	agg.Start()
	sim.RunFor(2 * netsim.Second)

	p := New(sim, []*netsim.Link{link}, 10*netsim.Millisecond)
	const rate, l, k = 8e6, 500, 100
	res, err := p.SendStream(pathload.StreamSpec{Rate: rate, K: k, L: l, T: time.Duration(float64(l) * 8 / rate * 1e9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OWDs) != k {
		t.Fatalf("received %d packets, want %d (no losses configured)", len(res.OWDs), k)
	}

	first := res.OWDs[0].OWD.Seconds()
	last := res.OWDs[k-1].OWD.Seconds()
	gotSlope := (last - first) / float64(k-1)
	wantSlope := fluid.OWDSlope(rate, l, fluid.Path{{C: 10e6, A: 4e6}})
	if rel := math.Abs(gotSlope-wantSlope) / wantSlope; rel > 0.25 {
		t.Fatalf("OWD slope %.3g s/pkt vs fluid %.3g (rel err %.2f)", gotSlope, wantSlope, rel)
	}
}

// TestClockOffsetInvariance: a constant receiver clock offset must not
// change OWD differences — the property §IV relies on.
func TestClockOffsetInvariance(t *testing.T) {
	run := func(offset time.Duration) []pathload.OWDSample {
		sim, route := quietPath(10_000_000, 0)
		p := New(sim, route, 10*netsim.Millisecond)
		p.ClockOffset = offset
		res, err := p.SendStream(pathload.StreamSpec{Rate: 4e6, K: 20, L: 500, T: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return res.OWDs
	}
	plain := run(0)
	skewed := run(3 * time.Hour)
	if len(plain) != len(skewed) {
		t.Fatal("offset changed delivery")
	}
	for i := 1; i < len(plain); i++ {
		d0 := plain[i].OWD - plain[i-1].OWD
		d1 := skewed[i].OWD - skewed[i-1].OWD
		if d0 != d1 {
			t.Fatalf("OWD differences diverge at %d: %v vs %v", i, d0, d1)
		}
	}
	if skewed[0].OWD-plain[0].OWD != 3*time.Hour {
		t.Fatal("offset not applied")
	}
}

// TestLossReporting drops packets at a tiny buffer and checks the loss
// accounting.
func TestLossReporting(t *testing.T) {
	sim, route := quietPath(1_000_000, 2000) // tiny buffer, slow link
	p := New(sim, route, 10*netsim.Millisecond)
	// 10 Mb/s into a 1 Mb/s link: most packets must drop.
	res, err := p.SendStream(pathload.StreamSpec{Rate: 10e6, K: 50, L: 1000, T: 800 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 50 {
		t.Fatalf("sent %d, want 50", res.Sent)
	}
	if res.LossRate() < 0.5 {
		t.Fatalf("loss rate %.2f, want heavy loss through the 10:1 overload", res.LossRate())
	}
	if len(res.OWDs) == 0 {
		t.Fatal("everything lost; the first packets should fit the buffer")
	}
}

// TestIdleAdvancesVirtualTime pins the Idle contract.
func TestIdleAdvancesVirtualTime(t *testing.T) {
	sim, route := quietPath(10_000_000, 0)
	p := New(sim, route, 0)
	before := sim.Now()
	if err := p.Idle(250 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sim.Now() - before; got != 250*netsim.Millisecond {
		t.Fatalf("Idle advanced %v, want 250ms", got)
	}
}

// TestRTT sums propagation plus the reverse delay.
func TestRTT(t *testing.T) {
	sim := netsim.NewSimulator()
	route := []*netsim.Link{
		netsim.NewLink(sim, "a", 1e6, 10*netsim.Millisecond, 0),
		netsim.NewLink(sim, "b", 1e6, 15*netsim.Millisecond, 0),
	}
	p := New(sim, route, 25*netsim.Millisecond)
	if got := p.RTT(); got != 50*time.Millisecond {
		t.Fatalf("RTT = %v, want 50ms", got)
	}
}

// TestInvalidSpecRejected pins input validation.
func TestInvalidSpecRejected(t *testing.T) {
	sim, route := quietPath(10_000_000, 0)
	p := New(sim, route, 0)
	for _, spec := range []pathload.StreamSpec{
		{K: 0, L: 100, T: time.Millisecond},
		{K: 10, L: 0, T: time.Millisecond},
		{K: 10, L: 100, T: 0},
	} {
		if _, err := p.SendStream(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

// TestSeqOrderPreserved: FIFO paths deliver probes in order, and the
// result must reflect that.
func TestSeqOrderPreserved(t *testing.T) {
	sim, route := quietPath(50_000_000, 0)
	p := New(sim, route, 0)
	res, err := p.SendStream(pathload.StreamSpec{Rate: 20e6, K: 100, L: 500, T: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.OWDs {
		if s.Seq != i {
			t.Fatalf("sample %d has seq %d", i, s.Seq)
		}
	}
}
