package simprobe

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"

	pathload "repro"
)

// A SequencedDriver runs a whole pathload.Monitor fleet on one
// Sequencer: sessions park at the fleet round barrier between rounds
// (EndRound), spend their scheduler gaps in virtual time anchored at
// their own round end (IdleUntil), and retire their sequencer seats at
// end-of-life — so a monitored fleet over a shared mesh advances on one
// virtual clock with a scheduling-independent interleave and replays
// byte-for-byte run-to-run.
//
// Wiring: create the Sequencer and its probers, Register each prober
// under its monitor path name, set the driver as MonitorConfig.Driver,
// and AddPath the same probers; mesh.MonitorFleet does all of this.
// The monitor calls Drive itself at Start. Install OnRoundBoundary
// before Start to advance fleet scenarios (or snapshot link counters)
// at round boundaries with exclusive simulator access.
//
// The gap anchor is what makes the disjoint-fleet replay argument work:
// a path's round r+1 starts at its *own* round-r end plus its scheduler
// gap, not at the barrier release time, so as long as gaps comfortably
// exceed cross-path round-end skew, a path's timeline is identical
// whether its siblings are present or not.
type SequencedDriver struct {
	seq *Sequencer

	// mu guards the maps: Register writes before Start; afterwards
	// per-path entries are touched concurrently by session goroutines.
	mu      sync.Mutex
	probers map[string]*Prober
	ends    map[string]netsim.Time
}

// NewSequencedDriver creates a driver over seq. Register every path's
// prober before the monitor starts.
func NewSequencedDriver(seq *Sequencer) *SequencedDriver {
	return &SequencedDriver{
		seq:     seq,
		probers: map[string]*Prober{},
		ends:    map[string]netsim.Time{},
	}
}

// Register binds a monitor path name to its sequenced prober. The
// prober must come from the driver's own Sequencer. When the monitor
// wraps the prober (an instrumented test double), register the inner
// sequenced prober — the driver needs the seat, not the wrapper.
func (d *SequencedDriver) Register(path string, p *Prober) {
	if p == nil || p.slot == nil {
		panic(fmt.Sprintf("simprobe: SequencedDriver.Register(%q) with a non-sequenced prober", path))
	}
	if p.slot.seq != d.seq {
		panic(fmt.Sprintf("simprobe: SequencedDriver.Register(%q) with a prober from another sequencer", path))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.probers[path] = p
}

// OnRoundBoundary delegates to the sequencer's round-boundary hook.
func (d *SequencedDriver) OnRoundBoundary(fn func(round int)) { d.seq.OnRoundBoundary(fn) }

// prober returns the registered prober for path, panicking on unknown
// paths — an unregistered session would stall the whole fleet's barrier.
func (d *SequencedDriver) prober(path string) *Prober {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.probers[path]
	if p == nil {
		panic(fmt.Sprintf("simprobe: SequencedDriver: path %q was never Registered", path))
	}
	return p
}

// RoundEnd records the path's round-end instant — the gap anchor — and
// parks the session at the fleet round barrier. It runs on the session
// goroutine, which still holds the sequencer floor after its last
// measurement section, so reading the virtual clock here is safe.
func (d *SequencedDriver) RoundEnd(path string, round int) {
	p := d.prober(path)
	d.mu.Lock()
	d.ends[path] = d.seq.sim.Now()
	d.mu.Unlock()
	p.EndRound()
}

// Gap spends the scheduler's re-measurement gap in virtual time,
// anchored at the path's own round end: the session idles until
// roundEnd + gap, however late its siblings cleared the barrier.
func (d *SequencedDriver) Gap(path string, _ pathload.Prober, gap time.Duration) error {
	p := d.prober(path)
	d.mu.Lock()
	end := d.ends[path]
	d.mu.Unlock()
	p.IdleUntil(end + netsim.FromDuration(gap))
	return nil
}

// Sleep falls back to wall time. It is unreachable in a well-formed
// sequenced fleet — prober-less waits only happen on factory-backed
// sessions, which the monitor rejects under a Driver — but a stuck
// virtual wait would be worse than an honest wall one.
func (d *SequencedDriver) Sleep(dur time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// Retire releases the path's sequencer seat so Drive stops waiting for
// its next move.
func (d *SequencedDriver) Retire(path string) { d.prober(path).Retire() }

// Drive runs the sequencer loop until every session has retired. The
// monitor calls it from its own goroutine at Start.
func (d *SequencedDriver) Drive() { d.seq.Drive() }
