package simprobe

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
)

// A Sequencer co-schedules several probers over one simulator so their
// probe streams genuinely overlap in virtual time, deterministically.
//
// SharedSim serializes siblings with a mutex held across each whole
// stream, so two streams never coexist on the timeline and the
// interleaving follows the host scheduler. The Sequencer instead splits
// every prober operation into a setup (schedule my packet injections)
// and an await (wake me when they have arrived, or at a deadline), parks
// the prober goroutine between the two, and advances the event loop
// itself. While one prober waits for its stream, its siblings get the
// floor and schedule theirs at the same virtual time — the streams
// queue against each other on shared links exactly like cross traffic,
// which is what fleet self-interference experiments need to observe.
//
// Determinism comes from two rules. First, exactly one goroutine — a
// prober holding the floor, or the driver — touches the simulator at a
// time, and the floor only changes hands through Drive. Second, Drive
// acts only when every live prober is parked, and then always picks the
// lowest-numbered prober whose turn can proceed, so the global order of
// operations is a pure function of the probers' own measurement logic,
// never of host scheduling. Two runs with identical inputs produce
// identical results, packet IDs included.
//
// Lifecycle: NewSequencer, NewProber for every path, start one
// goroutine per prober (each prober stays single-goroutine), then
// Drive from the owner. Every prober goroutine must end by calling
// Retire — including on measurement error — or Drive waits forever for
// its next move; Drive returns once all probers have retired.
type Sequencer struct {
	sim *netsim.Simulator

	mu      sync.Mutex
	changed *sync.Cond
	slots   []*seqSlot
	driving bool

	// nextID hands out packet IDs; guarded by the floor, not the mutex
	// (only the goroutine holding the floor allocates).
	nextID uint64
}

// seqState tracks where a sequenced prober's goroutine is.
type seqState int

const (
	// seqRunning: the goroutine is computing outside the sequencer (or
	// has not started yet). The driver must wait for it to park.
	seqRunning seqState = iota
	// seqParkedSection: parked at the top of a section, waiting for the
	// floor to run its setup.
	seqParkedSection
	// seqParkedAwait: setup done; waiting for its condition or deadline.
	seqParkedAwait
	// seqRetired: the goroutine is done; never counted again.
	seqRetired
)

// A seqSlot is one prober's seat in the deterministic rotation.
type seqSlot struct {
	seq      *Sequencer
	id       int
	state    seqState
	cond     func() bool // nil for pure time waits
	deadline netsim.Time
	grant    chan struct{}
}

// NewSequencer wraps sim for deterministic multi-prober co-scheduling.
// The simulator may be warmed up directly before the first Drive; once
// Drive runs it must only be touched through sequenced probers.
func NewSequencer(sim *netsim.Simulator) *Sequencer {
	s := &Sequencer{sim: sim}
	s.changed = sync.NewCond(&s.mu)
	return s
}

// NewProber creates a co-scheduled prober measuring over route. Probers
// must all be created before Drive; their creation order fixes the
// deterministic turn order.
func (s *Sequencer) NewProber(route []*netsim.Link, reverseDelay netsim.Time) *Prober {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.driving {
		panic("simprobe: Sequencer.NewProber after Drive started")
	}
	p := New(s.sim, route, reverseDelay)
	sl := &seqSlot{seq: s, id: len(s.slots), state: seqRunning, grant: make(chan struct{})}
	s.slots = append(s.slots, sl)
	p.slot = sl
	return p
}

// Retire releases a sequenced prober's seat, letting Drive stop waiting
// for its next move. It must be called exactly once per sequenced
// prober, when its goroutine is done measuring — deferring it right
// after the goroutine starts covers error exits too. Retire on a
// non-sequenced prober is a no-op, so fleet code need not distinguish.
func (p *Prober) Retire() {
	if p.slot == nil {
		return
	}
	s := p.slot.seq
	s.mu.Lock()
	defer s.mu.Unlock()
	p.slot.state = seqRetired
	s.changed.Broadcast()
}

// nextPktID allocates a packet ID. Callers hold the floor.
func (s *Sequencer) nextPktID() uint64 {
	s.nextID++
	return s.nextID
}

// section is the sequenced engine: park, run setup when granted the
// floor, park again, run collect when the await is granted. Between the
// final grant and the next park this goroutine keeps the floor, so
// collect and any caller code up to the next section may read
// simulation results safely — the driver never advances the clock while
// a prober is unparked.
func (sl *seqSlot) section(setup func(sim *netsim.Simulator) (cond func() bool, deadline netsim.Time), collect func()) {
	s := sl.seq

	s.mu.Lock()
	if sl.state == seqRetired {
		s.mu.Unlock()
		panic("simprobe: sequenced prober used after Retire")
	}
	sl.state = seqParkedSection
	s.changed.Broadcast()
	s.mu.Unlock()
	<-sl.grant // floor acquired: schedule

	cond, deadline := setup(s.sim)

	s.mu.Lock()
	sl.state = seqParkedAwait
	sl.cond, sl.deadline = cond, deadline
	s.changed.Broadcast()
	s.mu.Unlock()
	<-sl.grant // condition met or deadline reached

	if collect != nil {
		collect()
	}
}

// Drive runs the co-scheduling loop until every prober has retired. It
// blocks the calling goroutine; probers run in their own goroutines and
// are granted the floor one at a time.
func (s *Sequencer) Drive() {
	s.mu.Lock()
	if s.driving {
		s.mu.Unlock()
		panic("simprobe: Sequencer.Drive called twice")
	}
	s.driving = true
	for {
		// Rule one: act only on a full picture — every live prober
		// parked, none mid-computation.
		for s.anyRunning() {
			s.changed.Wait()
		}
		if s.allRetired() {
			s.mu.Unlock()
			return
		}
		// Rule two: deterministic choice. Pending setups first (they
		// only schedule future injections, never fire events, so
		// serving them before ready awaits is safe), then the first
		// satisfied await; both by lowest slot number.
		if sl := s.lowestParkedSection(); sl != nil {
			s.grantLocked(sl)
			continue
		}
		if sl := s.firstReadyAwait(); sl != nil {
			s.grantLocked(sl)
			continue
		}
		// Everyone is waiting and nobody is ready: advance the
		// simulator toward the nearest deadline, one event at a time so
		// conditions are rechecked at every state change.
		dl, ok := s.minDeadline()
		if !ok {
			// Unreachable: non-retired slots all sit in seqParkedAwait
			// here, and every await carries a deadline.
			s.mu.Unlock()
			panic("simprobe: sequencer stalled with no deadlines")
		}
		s.mu.Unlock()
		if !s.sim.Step(dl) {
			s.sim.Run(dl) // no events before dl: just pass the time
		}
		s.mu.Lock()
	}
}

// grantLocked hands sl the floor and reacquires the lock once the
// handoff is done. The send must happen outside the mutex: the prober
// needs no lock to receive, but holding it here could deadlock with a
// sibling trying to park.
func (s *Sequencer) grantLocked(sl *seqSlot) {
	sl.state = seqRunning
	s.mu.Unlock()
	sl.grant <- struct{}{}
	s.mu.Lock()
}

// anyRunning reports whether some live prober holds or may take the
// floor outside the sequencer's control.
func (s *Sequencer) anyRunning() bool {
	for _, sl := range s.slots {
		if sl.state == seqRunning {
			return true
		}
	}
	return false
}

// allRetired reports whether every prober is done.
func (s *Sequencer) allRetired() bool {
	for _, sl := range s.slots {
		if sl.state != seqRetired {
			return false
		}
	}
	return true
}

// lowestParkedSection returns the lowest-numbered slot waiting to run a
// setup, or nil.
func (s *Sequencer) lowestParkedSection() *seqSlot {
	for _, sl := range s.slots {
		if sl.state == seqParkedSection {
			return sl
		}
	}
	return nil
}

// firstReadyAwait returns the lowest-numbered waiting slot whose
// condition holds or whose deadline has passed, or nil. Conditions read
// only state owned by their (parked) prober, so evaluating them here is
// safe.
func (s *Sequencer) firstReadyAwait() *seqSlot {
	now := s.sim.Now()
	for _, sl := range s.slots {
		if sl.state != seqParkedAwait {
			continue
		}
		if now >= sl.deadline || (sl.cond != nil && sl.cond()) {
			return sl
		}
	}
	return nil
}

// minDeadline returns the earliest deadline among waiting slots.
func (s *Sequencer) minDeadline() (netsim.Time, bool) {
	var dl netsim.Time
	found := false
	for _, sl := range s.slots {
		if sl.state != seqParkedAwait {
			continue
		}
		if !found || sl.deadline < dl {
			dl, found = sl.deadline, true
		}
	}
	return dl, found
}

// Probers returns the number of probers created on the sequencer.
func (s *Sequencer) Probers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slots)
}

// String describes the sequencer for diagnostics.
func (s *Sequencer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	retired := 0
	for _, sl := range s.slots {
		if sl.state == seqRetired {
			retired++
		}
	}
	return fmt.Sprintf("sequencer(%d probers, %d retired, t=%v)", len(s.slots), retired, s.sim.Now())
}
