package simprobe

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
)

// A Sequencer co-schedules several probers over one simulator so their
// probe streams genuinely overlap in virtual time, deterministically.
//
// SharedSim serializes siblings with a mutex held across each whole
// stream, so two streams never coexist on the timeline and the
// interleaving follows the host scheduler. The Sequencer instead splits
// every prober operation into a setup (schedule my packet injections)
// and an await (wake me when they have arrived, or at a deadline), parks
// the prober goroutine between the two, and advances the event loop
// itself. While one prober waits for its stream, its siblings get the
// floor and schedule theirs at the same virtual time — the streams
// queue against each other on shared links exactly like cross traffic,
// which is what fleet self-interference experiments need to observe.
//
// Determinism comes from two rules. First, exactly one goroutine — a
// prober holding the floor, or the driver — touches the simulator at a
// time, and the floor only changes hands through Drive. Second, Drive
// acts only when every live prober is parked, and then always picks the
// lowest-numbered prober whose turn can proceed, so the global order of
// operations is a pure function of the probers' own measurement logic,
// never of host scheduling. Two runs with identical inputs produce
// identical results, packet IDs included.
//
// Lifecycle: NewSequencer, NewProber for every path, start one
// goroutine per prober (each prober stays single-goroutine), then
// Drive from the owner. Every prober goroutine must end by calling
// Retire — including on measurement error — or Drive waits forever for
// its next move; Drive returns once all probers have retired.
type Sequencer struct {
	sim *netsim.Simulator

	mu      sync.Mutex
	changed *sync.Cond
	slots   []*seqSlot
	driving bool

	// round counts released fleet round barriers (EndRound); onRound,
	// when set, fires at each barrier with exclusive simulator access.
	round   int
	onRound func(round int)

	// nextID hands out packet IDs; guarded by the floor, not the mutex
	// (only the goroutine holding the floor allocates).
	nextID uint64
}

// seqState tracks where a sequenced prober's goroutine is.
type seqState int

const (
	// seqRunning: the goroutine is computing outside the sequencer (or
	// has not started yet). The driver must wait for it to park.
	seqRunning seqState = iota
	// seqParkedSection: parked at the top of a section, waiting for the
	// floor to run its setup.
	seqParkedSection
	// seqParkedAwait: setup done; waiting for its condition or deadline.
	seqParkedAwait
	// seqParkedRound: parked at the fleet round barrier (EndRound),
	// waiting for every live sibling to finish its round too.
	seqParkedRound
	// seqRetired: the goroutine is done; never counted again.
	seqRetired
)

// A seqSlot is one prober's seat in the deterministic rotation.
type seqSlot struct {
	seq      *Sequencer
	id       int
	state    seqState
	cond     func() bool // nil for pure time waits
	deadline netsim.Time
	grant    chan struct{}
}

// NewSequencer wraps sim for deterministic multi-prober co-scheduling.
// The simulator may be warmed up directly before the first Drive; once
// Drive runs it must only be touched through sequenced probers.
func NewSequencer(sim *netsim.Simulator) *Sequencer {
	s := &Sequencer{sim: sim}
	s.changed = sync.NewCond(&s.mu)
	return s
}

// NewProber creates a co-scheduled prober measuring over route. Probers
// must all be created before Drive; their creation order fixes the
// deterministic turn order.
func (s *Sequencer) NewProber(route []*netsim.Link, reverseDelay netsim.Time) *Prober {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.driving {
		panic("simprobe: Sequencer.NewProber after Drive started")
	}
	p := New(s.sim, route, reverseDelay)
	sl := &seqSlot{seq: s, id: len(s.slots), state: seqRunning, grant: make(chan struct{})}
	s.slots = append(s.slots, sl)
	p.slot = sl
	return p
}

// Retire releases a sequenced prober's seat, letting Drive stop waiting
// for its next move. It must be called exactly once per sequenced
// prober, when its goroutine is done measuring — deferring it right
// after the goroutine starts covers error exits too. Retire on a
// non-sequenced prober is a no-op, so fleet code need not distinguish.
func (p *Prober) Retire() {
	if p.slot == nil {
		return
	}
	s := p.slot.seq
	s.mu.Lock()
	defer s.mu.Unlock()
	p.slot.state = seqRetired
	s.changed.Broadcast()
}

// OnRoundBoundary installs the fleet round-boundary hook: fn fires
// inside Drive every time all live probers have parked at the EndRound
// barrier, with round counting released barriers from 1. At that moment
// no prober holds the floor and no await is pending, so fn has
// exclusive simulator access — it may advance the clock (e.g. settle a
// scenario epoch change with RunFor) or read link counters safely. It
// must be installed before Drive.
func (s *Sequencer) OnRoundBoundary(fn func(round int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.driving {
		panic("simprobe: Sequencer.OnRoundBoundary after Drive started")
	}
	s.onRound = fn
}

// EndRound parks a sequenced prober at the fleet round barrier: the
// call returns only when every live sibling has either called EndRound
// too or retired, so a whole monitored fleet advances round-by-round on
// one virtual clock. On a non-sequenced prober it is a no-op, like
// Retire.
func (p *Prober) EndRound() {
	if p.slot == nil {
		return
	}
	sl := p.slot
	s := sl.seq
	s.mu.Lock()
	if sl.state == seqRetired {
		s.mu.Unlock()
		panic("simprobe: sequenced prober used after Retire")
	}
	sl.state = seqParkedRound
	s.changed.Broadcast()
	s.mu.Unlock()
	<-sl.grant // every live sibling reached the barrier
}

// IdleUntil advances virtual time to the absolute instant t, or does
// nothing when t has already passed. Unlike Idle's relative gap, the
// deadline is anchored by the caller — a monitor driver anchors each
// path's next round at its own round end, which keeps a sequenced
// path's timeline independent of when its siblings cleared the round
// barrier.
func (p *Prober) IdleUntil(t netsim.Time) {
	p.section(func(sim *netsim.Simulator) (func() bool, netsim.Time) {
		if now := sim.Now(); t < now {
			return nil, now
		}
		return nil, t
	}, nil)
}

// nextPktID allocates a packet ID. Callers hold the floor.
func (s *Sequencer) nextPktID() uint64 {
	s.nextID++
	return s.nextID
}

// section is the sequenced engine: park, run setup when granted the
// floor, park again, run collect when the await is granted. Between the
// final grant and the next park this goroutine keeps the floor, so
// collect and any caller code up to the next section may read
// simulation results safely — the driver never advances the clock while
// a prober is unparked.
func (sl *seqSlot) section(setup func(sim *netsim.Simulator) (cond func() bool, deadline netsim.Time), collect func()) {
	s := sl.seq

	s.mu.Lock()
	if sl.state == seqRetired {
		s.mu.Unlock()
		panic("simprobe: sequenced prober used after Retire")
	}
	sl.state = seqParkedSection
	s.changed.Broadcast()
	s.mu.Unlock()
	<-sl.grant // floor acquired: schedule

	cond, deadline := setup(s.sim)

	s.mu.Lock()
	sl.state = seqParkedAwait
	sl.cond, sl.deadline = cond, deadline
	s.changed.Broadcast()
	s.mu.Unlock()
	<-sl.grant // condition met or deadline reached

	if collect != nil {
		collect()
	}
}

// Drive runs the co-scheduling loop until every prober has retired. It
// blocks the calling goroutine; probers run in their own goroutines and
// are granted the floor one at a time.
func (s *Sequencer) Drive() {
	s.mu.Lock()
	if s.driving {
		s.mu.Unlock()
		panic("simprobe: Sequencer.Drive called twice")
	}
	s.driving = true
	for {
		// Rule one: act only on a full picture — every live prober
		// parked, none mid-computation.
		for s.anyRunning() {
			s.changed.Wait()
		}
		if s.allRetired() {
			s.mu.Unlock()
			return
		}
		// Rule two: deterministic choice. Pending setups first (they
		// only schedule future injections, never fire events, so
		// serving them before ready awaits is safe), then the first
		// satisfied await; both by lowest slot number.
		if sl := s.lowestParkedSection(); sl != nil {
			s.grantLocked(sl)
			continue
		}
		if sl := s.firstReadyAwait(); sl != nil {
			s.grantLocked(sl)
			continue
		}
		// No section or await can proceed. If every live prober sits at
		// the round barrier, the fleet round is complete: fire the
		// boundary hook (exclusive simulator access — nothing holds the
		// floor, nothing awaits) and release them all.
		if s.allParkedRound() {
			s.releaseRoundLocked()
			continue
		}
		// Everyone is waiting and nobody is ready: advance the
		// simulator toward the nearest deadline, one event at a time so
		// conditions are rechecked at every state change.
		dl, ok := s.minDeadline()
		if !ok {
			// Unreachable: non-retired slots here sit in seqParkedAwait
			// (every await carries a deadline) or seqParkedRound (an
			// all-round fleet was released above, and a mixed fleet has
			// some await to advance toward).
			s.mu.Unlock()
			panic("simprobe: sequencer stalled with no deadlines")
		}
		s.mu.Unlock()
		if !s.sim.Step(dl) {
			s.sim.Run(dl) // no events before dl: just pass the time
		}
		s.mu.Lock()
	}
}

// grantLocked hands sl the floor and reacquires the lock once the
// handoff is done. The send must happen outside the mutex: the prober
// needs no lock to receive, but holding it here could deadlock with a
// sibling trying to park.
func (s *Sequencer) grantLocked(sl *seqSlot) {
	sl.state = seqRunning
	s.mu.Unlock()
	sl.grant <- struct{}{}
	s.mu.Lock()
}

// allParkedRound reports whether at least one live prober exists and
// every live prober is parked at the round barrier.
func (s *Sequencer) allParkedRound() bool {
	live := 0
	for _, sl := range s.slots {
		switch sl.state {
		case seqRetired:
		case seqParkedRound:
			live++
		default:
			return false
		}
	}
	return live > 0
}

// releaseRoundLocked fires the round-boundary hook and releases every
// barrier-parked prober. Like grantLocked, the hook call and the grant
// sends happen outside the mutex; the probers cannot touch the
// simulator until their grants arrive, so the hook's simulator access
// is exclusive.
func (s *Sequencer) releaseRoundLocked() {
	s.round++
	round := s.round
	hook := s.onRound
	var waiting []*seqSlot
	for _, sl := range s.slots {
		if sl.state == seqParkedRound {
			sl.state = seqRunning
			waiting = append(waiting, sl)
		}
	}
	s.mu.Unlock()
	if hook != nil {
		hook(round)
	}
	for _, sl := range waiting {
		sl.grant <- struct{}{}
	}
	s.mu.Lock()
}

// Round returns the number of fleet round barriers released so far.
func (s *Sequencer) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// anyRunning reports whether some live prober holds or may take the
// floor outside the sequencer's control.
func (s *Sequencer) anyRunning() bool {
	for _, sl := range s.slots {
		if sl.state == seqRunning {
			return true
		}
	}
	return false
}

// allRetired reports whether every prober is done.
func (s *Sequencer) allRetired() bool {
	for _, sl := range s.slots {
		if sl.state != seqRetired {
			return false
		}
	}
	return true
}

// lowestParkedSection returns the lowest-numbered slot waiting to run a
// setup, or nil.
func (s *Sequencer) lowestParkedSection() *seqSlot {
	for _, sl := range s.slots {
		if sl.state == seqParkedSection {
			return sl
		}
	}
	return nil
}

// firstReadyAwait returns the lowest-numbered waiting slot whose
// condition holds or whose deadline has passed, or nil. Conditions read
// only state owned by their (parked) prober, so evaluating them here is
// safe.
func (s *Sequencer) firstReadyAwait() *seqSlot {
	now := s.sim.Now()
	for _, sl := range s.slots {
		if sl.state != seqParkedAwait {
			continue
		}
		if now >= sl.deadline || (sl.cond != nil && sl.cond()) {
			return sl
		}
	}
	return nil
}

// minDeadline returns the earliest deadline among waiting slots.
func (s *Sequencer) minDeadline() (netsim.Time, bool) {
	var dl netsim.Time
	found := false
	for _, sl := range s.slots {
		if sl.state != seqParkedAwait {
			continue
		}
		if !found || sl.deadline < dl {
			dl, found = sl.deadline, true
		}
	}
	return dl, found
}

// Probers returns the number of probers created on the sequencer.
func (s *Sequencer) Probers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slots)
}

// String describes the sequencer for diagnostics.
func (s *Sequencer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	retired := 0
	for _, sl := range s.slots {
		if sl.state == seqRetired {
			retired++
		}
	}
	return fmt.Sprintf("sequencer(%d probers, %d retired, t=%v)", len(s.slots), retired, s.sim.Now())
}
