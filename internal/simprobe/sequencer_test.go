package simprobe

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"

	pathload "repro"
)

// driveWithWatchdog runs seq.Drive and fails the test rather than
// hanging if the rotation stalls.
func driveWithWatchdog(t *testing.T, seq *Sequencer) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		seq.Drive()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("sequencer stalled: %v", seq)
	}
}

// TestSequencerOverlapsStreams is the point of the sequencer: two
// probers' streams must coexist on the shared link in virtual time —
// packets of both in flight together — which the mutex-serialized
// SharedSim can never produce.
func TestSequencerOverlapsStreams(t *testing.T) {
	sim := netsim.NewSimulator()
	core := netsim.NewLink(sim, "core", 10_000_000, 5*netsim.Millisecond, 0)
	seq := NewSequencer(sim)

	// Record the wire size of every packet the core link serves, in
	// service order. The two probers use distinct packet sizes, so the
	// transmit log shows whether their streams interleaved.
	var sizes []int
	core.OnTransmit(func(pkt *netsim.Packet, _ netsim.Time) { sizes = append(sizes, pkt.Size) })

	pa := seq.NewProber([]*netsim.Link{core}, 10*netsim.Millisecond)
	pb := seq.NewProber([]*netsim.Link{core}, 10*netsim.Millisecond)

	var wg sync.WaitGroup
	for _, pr := range []struct {
		p *Prober
		l int
	}{{pa, 400}, {pb, 600}} {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pr.p.Retire()
			res, err := pr.p.SendStream(pathload.StreamSpec{Rate: 3e6, K: 30, L: pr.l, T: time.Millisecond})
			if err != nil {
				t.Errorf("L=%d: %v", pr.l, err)
				return
			}
			if len(res.OWDs) != 30 {
				t.Errorf("L=%d: delivered %d/30 packets", pr.l, len(res.OWDs))
			}
		}()
	}
	driveWithWatchdog(t, seq)
	wg.Wait()

	if len(sizes) != 60 {
		t.Fatalf("core served %d packets, want 60", len(sizes))
	}
	// Overlap means the size sequence alternates somewhere: a 600 after
	// a 400 before the 400s are done, etc. Count switches between the
	// two sizes; fully serialized streams would switch exactly once.
	switches := 0
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[i-1] {
			switches++
		}
	}
	if switches < 10 {
		t.Fatalf("streams barely interleaved: %d size switches in %v", switches, sizes)
	}
}

// seqTranscript runs a three-prober contended fleet and returns a
// canonical transcript of every stream's OWDs.
func seqTranscript(t *testing.T) string {
	t.Helper()
	sim := netsim.NewSimulator()
	core := netsim.NewLink(sim, "core", 10_000_000, 2*netsim.Millisecond, 0)
	seq := NewSequencer(sim)

	const probers = 3
	type rec struct {
		prober, stream int
		res            pathload.StreamResult
	}
	recs := make([][]rec, probers)
	var wg sync.WaitGroup
	for i := 0; i < probers; i++ {
		i := i
		access := netsim.NewLink(sim, fmt.Sprintf("access%d", i), 100_000_000, netsim.Millisecond, 0)
		p := seq.NewProber([]*netsim.Link{access, core}, 10*netsim.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.Retire()
			for sidx := 0; sidx < 3; sidx++ {
				res, err := p.SendStream(pathload.StreamSpec{
					Rate: 2e6 + float64(i)*1e6, K: 20, L: 300 + 100*i, T: time.Millisecond, Index: sidx,
				})
				if err != nil {
					t.Errorf("prober %d stream %d: %v", i, sidx, err)
					return
				}
				recs[i] = append(recs[i], rec{prober: i, stream: sidx, res: res})
				if err := p.Idle(3 * time.Millisecond); err != nil {
					t.Errorf("prober %d idle: %v", i, err)
					return
				}
			}
		}()
	}
	driveWithWatchdog(t, seq)
	wg.Wait()

	var b strings.Builder
	for i, rr := range recs {
		for _, r := range rr {
			fmt.Fprintf(&b, "p%d s%d:", i, r.stream)
			for _, o := range r.res.OWDs {
				fmt.Fprintf(&b, " %d/%v", o.Seq, o.OWD)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	return b.String()
}

// TestSequencerDeterministic: two independent runs of the same
// contended fleet must produce byte-identical OWD transcripts — the
// interleaving must be a function of the probers' logic, not of
// goroutine scheduling.
func TestSequencerDeterministic(t *testing.T) {
	a := seqTranscript(t)
	b := seqTranscript(t)
	if a != b {
		t.Fatalf("transcripts differ across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "p2 s2:") {
		t.Fatalf("transcript incomplete:\n%s", a)
	}
}

// TestSequencerProberErrorRetires: a prober whose measurement errors
// out mid-fleet retires and the rotation keeps serving its siblings —
// no deadlock, siblings complete.
func TestSequencerProberErrorRetires(t *testing.T) {
	sim := netsim.NewSimulator()
	core := netsim.NewLink(sim, "core", 50_000_000, netsim.Millisecond, 0)
	seq := NewSequencer(sim)

	const probers = 4
	var wg sync.WaitGroup
	okStreams := make([]int, probers)
	for i := 0; i < probers; i++ {
		i := i
		p := seq.NewProber([]*netsim.Link{core}, 10*netsim.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.Retire()
			for sidx := 0; sidx < 2; sidx++ {
				spec := pathload.StreamSpec{Rate: 2e6, K: 15, L: 400, T: time.Millisecond, Index: sidx}
				if i == 1 {
					spec.K = 0 // invalid: errors out like a broken transport
				}
				res, err := p.SendStream(spec)
				if i == 1 {
					if err == nil {
						t.Error("invalid spec did not error")
					}
					return // bail mid-fleet; deferred Retire must free the rotation
				}
				if err != nil {
					t.Errorf("prober %d: %v", i, err)
					return
				}
				okStreams[i] += len(res.OWDs)
			}
		}()
	}
	driveWithWatchdog(t, seq)
	wg.Wait()

	for i, n := range okStreams {
		if i == 1 {
			continue
		}
		if n != 2*15 {
			t.Errorf("prober %d delivered %d packets, want 30", i, n)
		}
	}
}

// TestSequencerUniquePacketIDs: sequenced siblings draw from one ID
// space, and the deterministic rotation hands IDs out reproducibly.
func TestSequencerUniquePacketIDs(t *testing.T) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 50_000_000, netsim.Millisecond, 0)
	seq := NewSequencer(sim)
	seen := map[uint64]bool{}
	link.OnTransmit(func(pkt *netsim.Packet, _ netsim.Time) {
		if seen[pkt.ID] {
			t.Errorf("duplicate packet ID %d", pkt.ID)
		}
		seen[pkt.ID] = true
	})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		p := seq.NewProber([]*netsim.Link{link}, 10*netsim.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.Retire()
			if _, err := p.SendStream(pathload.StreamSpec{Rate: 4e6, K: 20, L: 500, T: time.Millisecond}); err != nil {
				t.Error(err)
			}
		}()
	}
	driveWithWatchdog(t, seq)
	wg.Wait()
	if len(seen) != 8*20 {
		t.Fatalf("transmitted %d distinct packets, want %d", len(seen), 160)
	}
}

// TestSequencerMisuse pins the lifecycle diagnostics.
func TestSequencerMisuse(t *testing.T) {
	sim := netsim.NewSimulator()
	seq := NewSequencer(sim)
	link := netsim.NewLink(sim, "l", 1_000_000, 0, 0)
	p := seq.NewProber([]*netsim.Link{link}, 0)
	if seq.Probers() != 1 {
		t.Fatalf("Probers() = %d, want 1", seq.Probers())
	}
	p.Retire()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("section after Retire did not panic")
			}
		}()
		_ = p.Idle(time.Millisecond)
	}()
	seq.Drive() // all retired: returns immediately
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewProber after Drive did not panic")
			}
		}()
		seq.NewProber([]*netsim.Link{link}, 0)
	}()
	if s := seq.String(); !strings.Contains(s, "1 probers") {
		t.Errorf("String() = %q", s)
	}
}
