// Package simprobe adapts the discrete-event simulator to the pathload
// Prober interface: probe streams become simulated packet injections,
// one-way delays are exact arrival-minus-send times (optionally skewed
// by a configurable clock offset to exercise the relative-OWD
// property), and Idle advances virtual time.
//
// Every paper-figure reproduction measures through this prober, which
// makes the whole evaluation deterministic and immune to host GC and
// scheduler jitter — the practical obstacle to microsecond-scale
// probing from a garbage-collected runtime.
package simprobe

import (
	"fmt"
	"time"

	"repro/internal/netsim"

	pathload "repro"
)

// A Prober emits pathload streams over a simulated route.
type Prober struct {
	sim   *netsim.Simulator
	route []*netsim.Link

	// ReverseDelay models the control path back from receiver to
	// sender (stream acknowledgments, RTT).
	ReverseDelay netsim.Time
	// ClockOffset is added to every measured OWD, emulating
	// unsynchronized end-host clocks. Trend detection must be
	// invariant to it.
	ClockOffset time.Duration
	// LossTimeout is how long past the nominal stream end the receiver
	// waits for stragglers before declaring the rest lost.
	LossTimeout netsim.Time

	// shared is set when the prober belongs to a SharedSim and must
	// serialize against sibling probers; nil for a privately owned sim.
	shared *SharedSim

	nextPktID uint64
}

// lock acquires the shared-simulator mutex when the prober has
// siblings, returning the matching unlock; a private prober pays
// nothing.
func (p *Prober) lock() func() {
	if p.shared == nil {
		return func() {}
	}
	p.shared.mu.Lock()
	return p.shared.mu.Unlock
}

// pktID allocates the next probe packet ID, from the shared counter
// when several probers inject into one simulator.
func (p *Prober) pktID() uint64 {
	if p.shared != nil {
		p.shared.nextID++
		return p.shared.nextID
	}
	p.nextPktID++
	return p.nextPktID
}

// probeTag is the payload of simulated probe packets.
type probeTag struct {
	stream int
	seq    int
}

// New creates a prober that injects at the head of route and measures
// at its tail. reverseDelay models the uncongested return path.
func New(sim *netsim.Simulator, route []*netsim.Link, reverseDelay netsim.Time) *Prober {
	if len(route) == 0 {
		panic("simprobe: empty route")
	}
	return &Prober{
		sim:          sim,
		route:        route,
		ReverseDelay: reverseDelay,
		LossTimeout:  200 * netsim.Millisecond,
	}
}

// RTT returns the no-load round-trip time of the route: per-hop
// propagation plus the reverse delay. Queueing is excluded; pathload
// only needs a floor for inter-stream gaps.
func (p *Prober) RTT() time.Duration {
	var d netsim.Time
	for _, l := range p.route {
		d += l.PropDelay()
	}
	d += p.ReverseDelay
	return d.Duration()
}

// Idle advances the simulation by d, letting cross traffic evolve and
// queues drain between streams.
func (p *Prober) Idle(d time.Duration) error {
	defer p.lock()()
	p.sim.RunFor(netsim.FromDuration(d))
	return nil
}

// SendStream schedules the K packet injections of one periodic stream,
// runs the simulation until every packet has arrived or timed out, and
// returns the per-packet relative OWDs.
func (p *Prober) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	if spec.K <= 0 || spec.L <= 0 || spec.T <= 0 {
		return pathload.StreamResult{}, fmt.Errorf("simprobe: invalid stream spec %+v", spec)
	}
	defer p.lock()()
	period := netsim.FromDuration(spec.T)
	start := p.sim.Now()

	type arrival struct {
		seq int
		owd netsim.Time
	}
	var got []arrival

	for i := 0; i < spec.K; i++ {
		i := i
		pkt := &netsim.Packet{
			ID:      p.pktID(),
			Size:    spec.L,
			Payload: probeTag{stream: spec.Index, seq: i},
		}
		p.sim.Schedule(start+netsim.Time(i)*period, func() {
			p.sim.Inject(pkt, p.route, func(pk *netsim.Packet, at netsim.Time) {
				got = append(got, arrival{seq: i, owd: at - pk.SentAt})
			})
		})
	}

	// The stream finishes sending at start + K·T; give arrivals until
	// the base path delay plus a generous queueing allowance.
	deadline := start + netsim.Time(spec.K)*period + p.baseDelay(spec.L) + p.LossTimeout
	p.sim.RunUntil(func() bool { return len(got) == spec.K }, deadline)

	res := pathload.StreamResult{Sent: spec.K}
	for _, a := range got {
		res.OWDs = append(res.OWDs, pathload.OWDSample{
			Seq: a.seq,
			OWD: a.owd.Duration() + p.ClockOffset,
		})
	}
	return res, nil
}

// baseDelay returns the queue-free path traversal time for a packet of
// the given size.
func (p *Prober) baseDelay(size int) netsim.Time {
	var d netsim.Time
	for _, l := range p.route {
		d += l.PropDelay() + l.TxTime(size)
	}
	return d
}
