// Package simprobe adapts the discrete-event simulator to the pathload
// Prober interface: probe streams become simulated packet injections,
// one-way delays are exact arrival-minus-send times (optionally skewed
// by a configurable clock offset to exercise the relative-OWD
// property), and Idle advances virtual time.
//
// Every paper-figure reproduction measures through this prober, which
// makes the whole evaluation deterministic and immune to host GC and
// scheduler jitter — the practical obstacle to microsecond-scale
// probing from a garbage-collected runtime.
//
// A prober can own its simulator outright (New), share it with sibling
// probers behind a mutex (SharedSim), or share it under a deterministic
// co-scheduler whose probe streams genuinely overlap in virtual time
// (Sequencer). All three run the same measurement code; only the
// section engine — who may touch the simulator when — differs.
package simprobe

import (
	"fmt"
	"time"

	"repro/internal/netsim"

	pathload "repro"
)

// A Prober emits pathload streams over a simulated route.
type Prober struct {
	sim   *netsim.Simulator
	route []*netsim.Link

	// ReverseDelay models the control path back from receiver to
	// sender (stream acknowledgments, RTT).
	ReverseDelay netsim.Time
	// ClockOffset is added to every measured OWD, emulating
	// unsynchronized end-host clocks. Trend detection must be
	// invariant to it.
	ClockOffset time.Duration
	// LossTimeout is how long past the nominal stream end the receiver
	// waits for stragglers before declaring the rest lost.
	LossTimeout netsim.Time

	// shared is set when the prober belongs to a SharedSim and must
	// serialize against sibling probers; nil for a privately owned sim.
	shared *SharedSim
	// slot is set when the prober belongs to a Sequencer and its
	// sections are co-scheduled deterministically with its siblings'.
	slot *seqSlot

	nextPktID uint64
}

// section runs setup with exclusive simulator access, advances the
// simulation until the condition setup returns holds (or, for a nil
// condition, until the returned deadline), then runs collect, still
// exclusively. It is the one place ownership matters: a private
// simulator is driven directly, a SharedSim holds its mutex across the
// whole section, and a Sequencer parks the goroutine and lets its
// driver interleave sibling sections on the shared virtual timeline.
func (p *Prober) section(setup func(sim *netsim.Simulator) (cond func() bool, deadline netsim.Time), collect func()) {
	switch {
	case p.slot != nil:
		p.slot.section(setup, collect)
	case p.shared != nil:
		p.shared.mu.Lock()
		defer p.shared.mu.Unlock()
		directSection(p.sim, setup, collect)
	default:
		directSection(p.sim, setup, collect)
	}
}

// directSection drives a section on a simulator the caller exclusively
// owns: run setup, advance until the condition or deadline, collect.
func directSection(sim *netsim.Simulator, setup func(sim *netsim.Simulator) (cond func() bool, deadline netsim.Time), collect func()) {
	cond, deadline := setup(sim)
	if cond == nil {
		sim.Run(deadline)
	} else {
		sim.RunUntil(cond, deadline)
	}
	if collect != nil {
		collect()
	}
}

// pktID allocates the next probe packet ID, from a shared counter when
// several probers inject into one simulator. It must only be called
// inside a section's setup, where simulator access is exclusive.
func (p *Prober) pktID() uint64 {
	switch {
	case p.slot != nil:
		return p.slot.seq.nextPktID()
	case p.shared != nil:
		p.shared.nextID++
		return p.shared.nextID
	default:
		p.nextPktID++
		return p.nextPktID
	}
}

// probeTag is the payload of simulated probe packets.
type probeTag struct {
	stream int
	seq    int
}

// New creates a prober that injects at the head of route and measures
// at its tail. reverseDelay models the uncongested return path.
func New(sim *netsim.Simulator, route []*netsim.Link, reverseDelay netsim.Time) *Prober {
	if len(route) == 0 {
		panic("simprobe: empty route")
	}
	return &Prober{
		sim:          sim,
		route:        route,
		ReverseDelay: reverseDelay,
		LossTimeout:  200 * netsim.Millisecond,
	}
}

// RTT returns the no-load round-trip time of the route: per-hop
// propagation plus the reverse delay. Queueing is excluded; pathload
// only needs a floor for inter-stream gaps.
func (p *Prober) RTT() time.Duration {
	var d netsim.Time
	for _, l := range p.route {
		d += l.PropDelay()
	}
	d += p.ReverseDelay
	return d.Duration()
}

// Idle advances the simulation by d, letting cross traffic evolve and
// queues drain between streams.
func (p *Prober) Idle(d time.Duration) error {
	p.section(func(sim *netsim.Simulator) (func() bool, netsim.Time) {
		return nil, sim.Now() + netsim.FromDuration(d)
	}, nil)
	return nil
}

// arrival is one received probe packet's sequence number and OWD.
type arrival struct {
	seq int
	owd netsim.Time
}

// streamInjector injects one stream's pre-built packets in sequence
// order through a single prebound callback, so scheduling the K
// injections of a stream allocates per stream, not per packet.
type streamInjector struct {
	sim     *netsim.Simulator
	route   []*netsim.Link
	pending []*netsim.Packet
	idx     int
	sink    netsim.Sink
	fireFn  func()
}

func (inj *streamInjector) fire() {
	pkt := inj.pending[inj.idx]
	inj.pending[inj.idx] = nil
	inj.idx++
	inj.sim.Inject(pkt, inj.route, inj.sink)
}

// SendStream schedules the K packet injections of one periodic stream,
// runs the simulation until every packet has arrived or timed out, and
// returns the per-packet relative OWDs.
func (p *Prober) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	if spec.K <= 0 || spec.L <= 0 || spec.T <= 0 {
		return pathload.StreamResult{}, fmt.Errorf("simprobe: invalid stream spec %+v", spec)
	}
	period := netsim.FromDuration(spec.T)

	var got []arrival
	res := pathload.StreamResult{Sent: spec.K}

	p.section(func(sim *netsim.Simulator) (func() bool, netsim.Time) {
		start := sim.Now()
		got = make([]arrival, 0, spec.K)
		tags := make([]probeTag, spec.K)
		inj := &streamInjector{sim: sim, route: p.route, pending: make([]*netsim.Packet, spec.K)}
		inj.fireFn = inj.fire
		inj.sink = func(pk *netsim.Packet, at netsim.Time) {
			tag := pk.Payload.(*probeTag)
			got = append(got, arrival{seq: tag.seq, owd: at - pk.SentAt})
			sim.FreePacket(pk)
		}
		for i := 0; i < spec.K; i++ {
			pkt := sim.NewPacket()
			pkt.ID = p.pktID()
			pkt.Size = spec.L
			tags[i] = probeTag{stream: spec.Index, seq: i}
			pkt.Payload = &tags[i]
			inj.pending[i] = pkt
			sim.Schedule(start+netsim.Time(i)*period, inj.fireFn)
		}
		// The stream finishes sending at start + K·T; give arrivals until
		// the base path delay plus a generous queueing allowance.
		deadline := start + netsim.Time(spec.K)*period + p.baseDelay(spec.L) + p.LossTimeout
		return func() bool { return len(got) == spec.K }, deadline
	}, func() {
		res.OWDs = make([]pathload.OWDSample, 0, len(got))
		for _, a := range got {
			res.OWDs = append(res.OWDs, pathload.OWDSample{
				Seq: a.seq,
				OWD: a.owd.Duration() + p.ClockOffset,
			})
		}
	})
	return res, nil
}

// baseDelay returns the queue-free path traversal time for a packet of
// the given size.
func (p *Prober) baseDelay(size int) netsim.Time {
	var d netsim.Time
	for _, l := range p.route {
		d += l.PropDelay() + l.TxTime(size)
	}
	return d
}
