package simprobe

import (
	"sync"

	"repro/internal/netsim"
)

// A SharedSim lets several probers measure over one simulator — paths
// that traverse common links, so their probe streams queue against each
// other like any cross traffic. The netsim event loop is single-
// threaded, so concurrent probers must not drive it directly; SharedSim
// serializes them with a mutex held for the duration of each stream (or
// idle), and hands out packet IDs from one counter so probe packets
// stay distinguishable across probers.
//
// Virtual time is shared: while one prober holds the clock the others
// wait, and their next stream starts at whatever time the loop has
// reached. That is the intended semantics — interleaved measurements on
// one timeline — but it means results depend on goroutine scheduling
// and are NOT reproducible run-to-run. When determinism matters, use a
// Sequencer (overlapping paths, one simulator, deterministic
// co-scheduling) or give each path its own simulator and align them
// with netsim.Lockstep (independent paths).
type SharedSim struct {
	mu     sync.Mutex
	sim    *netsim.Simulator
	nextID uint64
}

// NewSharedSim wraps sim for use by multiple probers. The simulator
// must from now on be driven only through probers created by NewProber
// (or while holding Locked).
func NewSharedSim(sim *netsim.Simulator) *SharedSim {
	return &SharedSim{sim: sim}
}

// NewProber creates a prober on the shared simulator measuring over
// route, like New but safe to use concurrently with its siblings.
func (s *SharedSim) NewProber(route []*netsim.Link, reverseDelay netsim.Time) *Prober {
	p := New(s.sim, route, reverseDelay)
	p.shared = s
	return p
}

// Locked runs fn with exclusive access to the underlying simulator, for
// callers that need to attach traffic or advance time between
// measurements.
func (s *SharedSim) Locked(fn func(sim *netsim.Simulator)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.sim)
}
