package availproc

import (
	"math"
	"testing"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
)

// loadedLink builds a 10 Mb/s link with 6 Mb/s of Poisson load.
func loadedLink(seed int64) (*netsim.Simulator, *netsim.Link) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 10_000_000, 0, 0)
	agg := crosstraffic.NewAggregate(sim, []*netsim.Link{link}, 6e6, 10,
		crosstraffic.ModelPoisson, crosstraffic.Trimodal{}, seed)
	agg.Start()
	return sim, link
}

// TestSeriesMeanMatchesLoad: the sampled avail-bw process must average
// to C − load.
func TestSeriesMeanMatchesLoad(t *testing.T) {
	sim, link := loadedLink(1)
	s := NewSampler(sim, link, 10*netsim.Millisecond)
	s.Start()
	sim.RunFor(60 * netsim.Second)
	series, err := s.Series(netsim.Second)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	mean := sum / float64(len(series))
	if math.Abs(mean-4e6)/4e6 > 0.05 {
		t.Fatalf("process mean %.2f Mb/s, want ≈4", mean/1e6)
	}
}

// TestVarianceDecreasesWithTimescale is the paper's §I relation.
func TestVarianceDecreasesWithTimescale(t *testing.T) {
	sim, link := loadedLink(2)
	s := NewSampler(sim, link, 10*netsim.Millisecond)
	s.Start()
	sim.RunFor(120 * netsim.Second)
	pts := s.VarianceByTimescale([]netsim.Time{
		10 * netsim.Millisecond, 100 * netsim.Millisecond, netsim.Second,
	})
	if len(pts) != 3 {
		t.Fatalf("got %d timescale points, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].StdDev >= pts[i-1].StdDev {
			t.Fatalf("σ(τ=%v)=%.0f not below σ(τ=%v)=%.0f",
				pts[i].Tau, pts[i].StdDev, pts[i-1].Tau, pts[i-1].StdDev)
		}
	}
}

// TestSeriesValidation covers misaligned and oversized timescales.
func TestSeriesValidation(t *testing.T) {
	sim, link := loadedLink(3)
	s := NewSampler(sim, link, 10*netsim.Millisecond)
	s.Start()
	sim.RunFor(netsim.Second)
	if _, err := s.Series(15 * netsim.Millisecond); err == nil {
		t.Error("misaligned timescale accepted")
	}
	if _, err := s.Series(0); err == nil {
		t.Error("zero timescale accepted")
	}
	if _, err := s.Series(time10s()); err == nil {
		t.Error("timescale longer than the recording accepted")
	}
}

func time10s() netsim.Time { return 10 * netsim.Second }

// TestStopHaltsSampling: no buckets accumulate after Stop.
func TestStopHaltsSampling(t *testing.T) {
	sim, link := loadedLink(4)
	s := NewSampler(sim, link, 10*netsim.Millisecond)
	s.Start()
	sim.RunFor(netsim.Second)
	s.Stop()
	n := s.Buckets()
	sim.RunFor(netsim.Second)
	if s.Buckets() != n {
		t.Fatalf("buckets grew after Stop: %d → %d", n, s.Buckets())
	}
}

// TestSamplerValidation covers the base-interval contract.
func TestSamplerValidation(t *testing.T) {
	sim, link := loadedLink(5)
	defer func() {
		if recover() == nil {
			t.Fatal("zero base interval accepted")
		}
	}()
	NewSampler(sim, link, 0)
}

// TestIdleLinkSeries: with no traffic, A(t, τ) = C at every timescale.
func TestIdleLinkSeries(t *testing.T) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l", 10_000_000, 0, 0)
	s := NewSampler(sim, link, 10*netsim.Millisecond)
	s.Start()
	sim.RunFor(5 * netsim.Second)
	series, err := s.Series(100 * netsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range series {
		if v != 10e6 {
			t.Fatalf("idle link avail %v, want capacity", v)
		}
	}
}
