// Package availproc samples the ground-truth available-bandwidth
// process A(t, τ) of a simulated link: the paper defines avail-bw over
// an averaging timescale τ (Eq. 2–3) and observes that the variance of
// the process shrinks as τ grows — slowly, if the traffic is
// long-range dependent (§I). This package turns that definition into a
// measurement utility used by the timescale experiments and by tests
// that need exact avail-bw truth over arbitrary windows.
package availproc

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// A Sampler records a link's transmitted bytes on a fine base interval
// so the avail-bw process can be re-aggregated at any coarser
// timescale afterwards.
type Sampler struct {
	sim  *netsim.Simulator
	link *netsim.Link
	base netsim.Time

	buckets []uint64
	last    netsim.LinkCounters
	running bool
}

// NewSampler creates a sampler with the given base resolution; every
// queryable timescale must be a multiple of it.
func NewSampler(sim *netsim.Simulator, link *netsim.Link, base netsim.Time) *Sampler {
	if base <= 0 {
		panic(fmt.Sprintf("availproc: base interval must be positive, got %v", base))
	}
	return &Sampler{sim: sim, link: link, base: base}
}

// Start begins sampling at the current simulated time.
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.last = s.link.Counters()
	s.tick()
}

func (s *Sampler) tick() {
	s.sim.After(s.base, func() {
		if !s.running {
			return
		}
		cur := s.link.Counters()
		s.buckets = append(s.buckets, cur.BytesOut-s.last.BytesOut)
		s.last = cur
		s.tick()
	})
}

// Stop halts sampling; the partial bucket in progress is discarded.
func (s *Sampler) Stop() { s.running = false }

// Buckets returns the number of complete base intervals recorded.
func (s *Sampler) Buckets() int { return len(s.buckets) }

// Series returns the avail-bw process sampled at timescale τ (which
// must be a positive multiple of the base interval): one value per
// non-overlapping τ-window, A = C·(1 − u). Trailing samples that do not
// fill a window are dropped.
func (s *Sampler) Series(tau netsim.Time) ([]float64, error) {
	if tau <= 0 || tau%s.base != 0 {
		return nil, fmt.Errorf("availproc: timescale %v is not a positive multiple of base %v", tau, s.base)
	}
	group := int(tau / s.base)
	cap := float64(s.link.Capacity())
	var out []float64
	for i := 0; i+group <= len(s.buckets); i += group {
		var bytes uint64
		for j := 0; j < group; j++ {
			bytes += s.buckets[i+j]
		}
		util := float64(bytes) * 8 / (cap * tau.Seconds())
		out = append(out, cap*(1-util))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("availproc: %d base buckets cannot fill one %v window", len(s.buckets), tau)
	}
	return out, nil
}

// A TimescalePoint summarizes the avail-bw process at one timescale.
type TimescalePoint struct {
	Tau     netsim.Time
	Mean    float64
	StdDev  float64
	Windows int
}

// VarianceByTimescale evaluates the process at each timescale, the
// paper's variance-versus-τ relation. Timescales that cannot be formed
// from the recorded buckets are skipped.
func (s *Sampler) VarianceByTimescale(taus []netsim.Time) []TimescalePoint {
	var out []TimescalePoint
	for _, tau := range taus {
		series, err := s.Series(tau)
		if err != nil {
			continue
		}
		out = append(out, TimescalePoint{
			Tau:     tau,
			Mean:    stats.Mean(series),
			StdDev:  stats.StdDev(series),
			Windows: len(series),
		})
	}
	return out
}
