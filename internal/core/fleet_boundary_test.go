package core

import "testing"

// TestClassifyFleetExactThreshold pins the boundary semantics of the
// agreement rule: a fleet whose voting count lands EXACTLY on f·voting
// is declared, not grey — the comparison is ≥, matching the paper's
// "at least a fraction f of the streams".
func TestClassifyFleetExactThreshold(t *testing.T) {
	for _, tc := range []struct {
		name          string
		inc, non, dis int
		f             float64
		want          FleetVerdict
	}{
		// DefaultFleetFraction on 10 voters: need = 7 exactly.
		{"exact 7/10 increasing", 7, 3, 0, DefaultFleetFraction, VerdictAbove},
		{"exact 7/10 non-increasing", 3, 7, 0, DefaultFleetFraction, VerdictBelow},
		{"one short of 7/10", 6, 4, 0, DefaultFleetFraction, VerdictGrey},
		// Discards shrink the electorate: 7 of 10 voters, 2 discarded.
		{"exact 7/10 voters with discards", 7, 3, 2, DefaultFleetFraction, VerdictAbove},
		// 20 voters: need = 14 exactly.
		{"exact 14/20", 14, 6, 0, DefaultFleetFraction, VerdictAbove},
		{"13/20 is grey", 13, 7, 0, DefaultFleetFraction, VerdictGrey},
		// Fractional threshold: 5 voters at f = 0.7 need 3.5, so 3
		// misses and 4 clears.
		{"3/5 under fractional need", 3, 2, 0, DefaultFleetFraction, VerdictGrey},
		{"4/5 over fractional need", 4, 1, 0, DefaultFleetFraction, VerdictAbove},
		// A single surviving voter decides alone at any f.
		{"lone voter increasing", 1, 0, 11, DefaultFleetFraction, VerdictAbove},
		{"lone voter non-increasing", 0, 1, 11, 1.0, VerdictBelow},
	} {
		got := ClassifyFleet(repeat(tc.inc, tc.non, tc.dis), tc.f)
		if got != tc.want {
			t.Errorf("%s: ClassifyFleet(I=%d N=%d D=%d, f=%v) = %v, want %v",
				tc.name, tc.inc, tc.non, tc.dis, tc.f, got, tc.want)
		}
	}
}

// TestClassifyFleetGreyTies pins tie handling. With f ≤ 0.5 both camps
// can clear the threshold at once; the increasing camp is checked
// first, so losses err toward "rate too high" — the conservative
// direction for an avail-bw bound. With f > 0.5 a tie is always grey.
func TestClassifyFleetGreyTies(t *testing.T) {
	for _, tc := range []struct {
		name          string
		inc, non, dis int
		f             float64
		want          FleetVerdict
	}{
		{"6-6 tie at default f", 6, 6, 0, DefaultFleetFraction, VerdictGrey},
		{"6-6 tie at f=0.5 breaks increasing", 6, 6, 0, 0.5, VerdictAbove},
		{"5-5 tie with discards at f=0.5", 5, 5, 2, 0.5, VerdictAbove},
		{"tie at f=1 is grey", 6, 6, 0, 1.0, VerdictGrey},
		// Near-ties around the grey band.
		{"7-5 at default f is grey", 7, 5, 0, DefaultFleetFraction, VerdictGrey},
		{"5-7 at default f is grey", 5, 7, 0, DefaultFleetFraction, VerdictGrey},
	} {
		got := ClassifyFleet(repeat(tc.inc, tc.non, tc.dis), tc.f)
		if got != tc.want {
			t.Errorf("%s: ClassifyFleet(I=%d N=%d D=%d, f=%v) = %v, want %v",
				tc.name, tc.inc, tc.non, tc.dis, tc.f, got, tc.want)
		}
	}
}

// TestClassifyFleetAllAborted: fleets with no surviving voters abort
// regardless of f or fleet size — including the empty fleet and the
// single-discard fleet.
func TestClassifyFleetAllAborted(t *testing.T) {
	for _, tc := range []struct {
		name string
		dis  int
		f    float64
	}{
		{"empty fleet", 0, DefaultFleetFraction},
		{"single discard", 1, DefaultFleetFraction},
		{"full fleet discarded", 12, DefaultFleetFraction},
		{"full fleet discarded at f=1", 12, 1.0},
		{"full fleet discarded at default selector", 48, 0},
	} {
		if got := ClassifyFleet(repeat(0, 0, tc.dis), tc.f); got != VerdictAborted {
			t.Errorf("%s: ClassifyFleet = %v, want %v", tc.name, got, VerdictAborted)
		}
	}
}

// TestClassifyFleetNegativeFraction completes the panic contract for
// the lower bound (the upper bound is covered in fleet_test.go).
func TestClassifyFleetNegativeFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("f < 0 did not panic")
		}
	}()
	ClassifyFleet(repeat(1, 0, 0), -0.1)
}
