package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// defaultCfg is a paper-like controller configuration.
func defaultCfg() ControllerConfig {
	return ControllerConfig{MaxRate: 120e6, Resolution: 1e6, GreyResolution: 1.5e6}
}

// drive runs the controller against a deterministic oracle for a fixed
// avail-bw until termination, returning the result and fleet count.
func drive(t *testing.T, cfg ControllerConfig, availBw float64) Result {
	t.Helper()
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	for i := 0; !ctrl.Done(); i++ {
		if i > 200 {
			t.Fatalf("controller did not terminate after 200 fleets (bounds %v)", ctrl)
		}
		if ctrl.Rate() > availBw {
			ctrl.Record(VerdictAbove)
		} else {
			ctrl.Record(VerdictBelow)
		}
	}
	return ctrl.Result()
}

// TestConvergesToConstantAvailBw: with a perfect oracle the final
// bracket must contain A and meet the resolution.
func TestConvergesToConstantAvailBw(t *testing.T) {
	for _, a := range []float64{0.5e6, 4e6, 37e6, 74e6, 119e6} {
		res := drive(t, defaultCfg(), a)
		if a < res.Lo || a > res.Hi {
			t.Errorf("A=%v: bracket [%v, %v] misses it", a, res.Lo, res.Hi)
		}
		if res.Width() > defaultCfg().Resolution+1 {
			t.Errorf("A=%v: width %v exceeds resolution", a, res.Width())
		}
		if res.GreySet {
			t.Errorf("A=%v: spurious grey region", a)
		}
	}
}

// TestQuickConvergence is the property form over random avail-bws and
// resolutions.
func TestQuickConvergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := ControllerConfig{
			MaxRate:        10e6 + rng.Float64()*990e6,
			Resolution:     0.1e6 + rng.Float64()*5e6,
			GreyResolution: 0.1e6 + rng.Float64()*5e6,
		}
		a := rng.Float64() * cfg.MaxRate
		ctrl, err := NewController(cfg)
		if err != nil {
			return false
		}
		for i := 0; !ctrl.Done(); i++ {
			if i > 500 {
				return false
			}
			if ctrl.Rate() > a {
				ctrl.Record(VerdictAbove)
			} else {
				ctrl.Record(VerdictBelow)
			}
		}
		res := ctrl.Result()
		return res.Lo <= a && a <= res.Hi && res.Width() <= cfg.Resolution+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTerminationIsLogarithmic: the binary search must need about
// log2(MaxRate/ω) fleets, not more.
func TestTerminationIsLogarithmic(t *testing.T) {
	res := drive(t, defaultCfg(), 37.3e6)
	bound := int(math.Ceil(math.Log2(120e6/1e6))) + 2
	if res.Fleets > bound {
		t.Fatalf("%d fleets for a clean binary search, want ≤ %d", res.Fleets, bound)
	}
}

// TestGreyRegionConvergence drives the controller against an oracle
// whose avail-bw fluctuates in a band: the final avail-bw bracket must
// cover the band within the grey resolution.
func TestGreyRegionConvergence(t *testing.T) {
	lo, hi := 30e6, 40e6
	cfg := defaultCfg()
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !ctrl.Done(); i++ {
		if i > 200 {
			t.Fatal("no termination with grey band")
		}
		r := ctrl.Rate()
		switch {
		case r > hi:
			ctrl.Record(VerdictAbove)
		case r < lo:
			ctrl.Record(VerdictBelow)
		default:
			ctrl.Record(VerdictGrey)
		}
	}
	res := ctrl.Result()
	if !res.GreySet {
		t.Fatal("no grey region detected for a fluctuating avail-bw")
	}
	if res.Lo > lo || res.Hi < hi-cfg.GreyResolution {
		t.Errorf("bracket [%v, %v] does not cover band [%v, %v]", res.Lo, res.Hi, lo, hi)
	}
	if res.Hi-res.GreyHi > cfg.GreyResolution+1 || res.GreyLo-res.Lo > cfg.GreyResolution+1 {
		t.Errorf("termination violated χ: bounds [%v %v] grey [%v %v]", res.Lo, res.Hi, res.GreyLo, res.GreyHi)
	}
}

// TestQuickGreyConvergence is the property form over random bands.
func TestQuickGreyConvergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := defaultCfg()
		lo := rng.Float64() * 100e6
		hi := lo + rng.Float64()*(cfg.MaxRate-lo)
		ctrl, err := NewController(cfg)
		if err != nil {
			return false
		}
		for i := 0; !ctrl.Done(); i++ {
			if i > 500 {
				return false
			}
			r := ctrl.Rate()
			switch {
			case r > hi:
				ctrl.Record(VerdictAbove)
			case r < lo:
				ctrl.Record(VerdictBelow)
			default:
				ctrl.Record(VerdictGrey)
			}
		}
		res := ctrl.Result()
		// The bracket must contain the band's interior.
		mid := (lo + hi) / 2
		return res.Lo <= mid && mid <= res.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAbortedMeansRateTooHigh: an aborted fleet must lower Rmax.
func TestAbortedMeansRateTooHigh(t *testing.T) {
	ctrl, err := NewController(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := ctrl.Rate()
	ctrl.Record(VerdictAborted)
	if _, hi := ctrl.Bounds(); hi != r {
		t.Fatalf("after abort at %v, Rmax = %v, want the aborted rate", r, hi)
	}
}

// TestHitMaxFlag: an avail-bw above MaxRate leaves HitMax set.
func TestHitMaxFlag(t *testing.T) {
	res := drive(t, defaultCfg(), 500e6)
	if !res.HitMax {
		t.Fatal("HitMax not set when A exceeds MaxRate")
	}
	if res.HitMin {
		t.Fatal("HitMin spuriously set")
	}
	res = drive(t, defaultCfg(), 0) // everything above
	if !res.HitMin {
		t.Fatal("HitMin not set when A is 0")
	}
}

// TestGreyClamping: verdicts that contradict the grey region must
// shrink or discard it rather than leave an inconsistent state.
func TestGreyClamping(t *testing.T) {
	ctrl, err := NewController(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Record(VerdictGrey) // grey at 60 Mb/s
	g1, g2, set := ctrl.Grey()
	if !set || g1 != 60e6 || g2 != 60e6 {
		t.Fatalf("grey = [%v, %v] set=%v after first grey fleet", g1, g2, set)
	}
	// Now probe above the grey region and say "below": Rmin rises past
	// the whole grey region, which must be discarded.
	for !ctrl.Done() {
		if ctrl.Rate() >= 100e6 {
			break
		}
		ctrl.Record(VerdictBelow)
	}
	if _, _, set := ctrl.Grey(); set {
		lo, hi, _ := ctrl.Grey()
		rmin, _ := ctrl.Bounds()
		if hi < rmin || lo < rmin {
			t.Fatalf("grey [%v, %v] left below Rmin %v", lo, hi, rmin)
		}
	}
}

// TestInvariantLoLeHi is the structural property: at every step
// Rmin ≤ Rmax and any grey region is inside them.
func TestInvariantLoLeHi(t *testing.T) {
	f := func(seed int64, script []uint8) bool {
		ctrl, err := NewController(defaultCfg())
		if err != nil {
			return false
		}
		for _, b := range script {
			if ctrl.Done() {
				break
			}
			ctrl.Record(FleetVerdict(b % 4))
			lo, hi := ctrl.Bounds()
			if lo > hi {
				return false
			}
			if glo, ghi, set := ctrl.Grey(); set && (glo < lo || ghi > hi || glo > ghi) {
				return false
			}
			if !ctrl.Done() && (ctrl.Rate() < lo || ctrl.Rate() > hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRecordAfterDoneIsNoOp documents idempotent termination.
func TestRecordAfterDoneIsNoOp(t *testing.T) {
	res := drive(t, defaultCfg(), 4e6)
	ctrl, _ := NewController(defaultCfg())
	for !ctrl.Done() {
		if ctrl.Rate() > 4e6 {
			ctrl.Record(VerdictAbove)
		} else {
			ctrl.Record(VerdictBelow)
		}
	}
	before := ctrl.Result()
	ctrl.Record(VerdictAbove)
	after := ctrl.Result()
	if before != after {
		t.Fatalf("Record after Done changed the result: %+v vs %+v", before, after)
	}
	_ = res
}

// TestConfigValidation covers every rejected configuration.
func TestConfigValidation(t *testing.T) {
	base := defaultCfg()
	bad := []ControllerConfig{
		{}, // no MaxRate
		{MaxRate: -1, Resolution: 1, GreyResolution: 1},
		{MaxRate: 10, MinRate: 10, Resolution: 1, GreyResolution: 1},
		{MaxRate: 10, MinRate: -1, Resolution: 1, GreyResolution: 1},
		{MaxRate: 10, Resolution: 0, GreyResolution: 1},
		{MaxRate: 10, Resolution: 1, GreyResolution: 0},
		{MaxRate: 10, Resolution: 1, GreyResolution: 1, InitialRate: 10},
	}
	for i, cfg := range bad {
		if _, err := NewController(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewController(base); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestInitialRate checks the override.
func TestInitialRate(t *testing.T) {
	cfg := defaultCfg()
	cfg.InitialRate = 10e6
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Rate() != 10e6 {
		t.Fatalf("initial rate %v, want 10e6", ctrl.Rate())
	}
}

// TestResultHelpers checks Mid/Width/RelVar arithmetic.
func TestResultHelpers(t *testing.T) {
	r := Result{Lo: 2e6, Hi: 6e6}
	if r.Mid() != 4e6 || r.Width() != 4e6 || r.RelVar() != 1 {
		t.Fatalf("Mid/Width/RelVar = %v/%v/%v", r.Mid(), r.Width(), r.RelVar())
	}
	if (Result{}).RelVar() != 0 {
		t.Fatal("zero result RelVar not 0")
	}
}
