package core

import "fmt"

// DefaultFleetFraction is the paper's fraction f of a fleet's streams
// that must agree before the whole fleet is declared increasing or
// non-increasing; fleets in between land in the grey region.
const DefaultFleetFraction = 0.7

// FleetVerdict is the decision about one fleet of streams probing at a
// common rate R.
type FleetVerdict int

// Fleet verdicts. VerdictAbove means R > A (the fleet showed an
// increasing trend); VerdictBelow means R < A; VerdictGrey means the
// avail-bw varied above and below R during the fleet (R is in the grey
// region); VerdictAborted means the fleet was cut short by losses and
// carries the paper's prescribed meaning "the rate is too high".
const (
	VerdictBelow FleetVerdict = iota
	VerdictAbove
	VerdictGrey
	VerdictAborted
)

// String names the fleet verdict.
func (v FleetVerdict) String() string {
	switch v {
	case VerdictBelow:
		return "R<A"
	case VerdictAbove:
		return "R>A"
	case VerdictGrey:
		return "grey"
	case VerdictAborted:
		return "aborted"
	default:
		return fmt.Sprintf("FleetVerdict(%d)", int(v))
	}
}

// ClassifyFleet reduces the verdicts of a fleet's streams to a fleet
// verdict using agreement fraction f (0 selects DefaultFleetFraction).
// Discarded streams do not vote; if every stream was discarded the
// fleet is aborted.
func ClassifyFleet(types []StreamType, f float64) FleetVerdict {
	if f == 0 {
		f = DefaultFleetFraction
	}
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("core: fleet fraction %v outside [0,1]", f))
	}
	var inc, non int
	for _, t := range types {
		switch t {
		case TypeIncreasing:
			inc++
		case TypeNonIncreasing:
			non++
		}
	}
	voting := inc + non
	if voting == 0 {
		return VerdictAborted
	}
	need := f * float64(voting)
	switch {
	case float64(inc) >= need:
		return VerdictAbove
	case float64(non) >= need:
		return VerdictBelow
	default:
		return VerdictGrey
	}
}
