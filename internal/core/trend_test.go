package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMedianGroups checks group counts, remainder distribution, and
// the Γ = √K default.
func TestMedianGroups(t *testing.T) {
	for _, tc := range []struct {
		n, gamma  int
		wantCount int
	}{
		{100, 0, 10}, // default √100
		{100, 10, 10},
		{50, 0, 7}, // ⌊√50⌋
		{10, 3, 3},
		{11, 3, 3}, // remainder absorbed
		{2, 5, 2},  // gamma capped at n
		{1, 0, 1},
		{0, 0, 0},
	} {
		in := make([]float64, tc.n)
		for i := range in {
			in[i] = float64(i)
		}
		got := MedianGroups(in, tc.gamma)
		if len(got) != tc.wantCount {
			t.Errorf("MedianGroups(n=%d, Γ=%d): %d groups, want %d", tc.n, tc.gamma, len(got), tc.wantCount)
		}
	}
}

// TestMedianGroupsValues pins a hand-computed case.
func TestMedianGroupsValues(t *testing.T) {
	in := []float64{1, 2, 100, 4, 5, 6} // outlier in group 1
	got := MedianGroups(in, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("MedianGroups = %v, want [2 5]", got)
	}
}

// TestMedianGroupsRobustToOutliers is the reason the preprocessing
// exists: one wild OWD per group must not move the medians.
func TestMedianGroupsRobustToOutliers(t *testing.T) {
	clean := make([]float64, 100)
	dirty := make([]float64, 100)
	for i := range clean {
		clean[i] = 1 + 0.01*float64(i)
		dirty[i] = clean[i]
	}
	for g := 0; g < 10; g++ {
		dirty[g*10+3] = 1e6 // one outlier per group
	}
	mc := MedianGroups(clean, 10)
	md := MedianGroups(dirty, 10)
	for i := range mc {
		if math.Abs(mc[i]-md[i]) > 0.011 {
			t.Fatalf("group %d median moved from %v to %v under outliers", i, mc[i], md[i])
		}
	}
}

// TestPCTExtremes checks the statistic's documented range behavior.
func TestPCTExtremes(t *testing.T) {
	inc := []float64{1, 2, 3, 4, 5}
	dec := []float64{5, 4, 3, 2, 1}
	flat := []float64{3, 3, 3, 3}
	if got := PCT(inc); got != 1 {
		t.Errorf("PCT(increasing) = %v, want 1", got)
	}
	if got := PCT(dec); got != 0 {
		t.Errorf("PCT(decreasing) = %v, want 0", got)
	}
	if got := PCT(flat); got != 0 {
		t.Errorf("PCT(flat) = %v, want 0 (no strict increases)", got)
	}
	if got := PCT([]float64{7}); got != 0.5 {
		t.Errorf("PCT(singleton) = %v, want the indifferent 0.5", got)
	}
}

// TestPDTExtremes checks the statistic's documented range behavior.
func TestPDTExtremes(t *testing.T) {
	if got := PDT([]float64{1, 2, 3, 4}); got != 1 {
		t.Errorf("PDT(monotone up) = %v, want 1", got)
	}
	if got := PDT([]float64{4, 3, 2, 1}); got != -1 {
		t.Errorf("PDT(monotone down) = %v, want -1", got)
	}
	if got := PDT([]float64{2, 2, 2}); got != 0 {
		t.Errorf("PDT(constant) = %v, want 0", got)
	}
	if got := PDT([]float64{1, 2, 1}); got != 0 {
		t.Errorf("PDT(up-down) = %v, want 0", got)
	}
}

// TestQuickMetricBounds: PCT ∈ [0,1], PDT ∈ [−1,1] for any input.
func TestQuickMetricBounds(t *testing.T) {
	f := func(raw []float64) bool {
		med := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// OWDs are seconds; clamp to physical magnitudes so the
				// PDT denominator cannot overflow.
				med = append(med, math.Mod(v, 1e6))
			}
		}
		p, d := PCT(med), PDT(med)
		return p >= 0 && p <= 1 && d >= -1 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPCTUnderNull: for i.i.d. noise, PCT concentrates around 0.5
// — the calibration fact behind the zone thresholds.
func TestQuickPCTUnderNull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		med := make([]float64, 10)
		for j := range med {
			med[j] = rng.Float64()
		}
		sum += PCT(med)
	}
	if mean := sum / trials; mean < 0.45 || mean > 0.55 {
		t.Fatalf("null PCT mean %v, want ≈0.5", mean)
	}
}

// TestClassifyOWDs covers the three-zone combination logic.
func TestClassifyOWDs(t *testing.T) {
	mkTrend := func(slope float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = 1 + slope*float64(i)
		}
		return out
	}
	for _, tc := range []struct {
		name string
		owds []float64
		cfg  TrendConfig
		want StreamType
	}{
		{"strong trend", mkTrend(0.01, 100), TrendConfig{}, TypeIncreasing},
		{"no trend", mkTrend(0, 100), TrendConfig{}, TypeNonIncreasing},
		{"decreasing", mkTrend(-0.01, 100), TrendConfig{}, TypeNonIncreasing},
		{"too short", mkTrend(0.01, 1), TrendConfig{}, TypeDiscard},
		{"empty", nil, TrendConfig{}, TypeDiscard},
		{"both metrics disabled", mkTrend(0.01, 100), TrendConfig{DisablePCT: true, DisablePDT: true}, TypeDiscard},
		{"pct only, trend", mkTrend(0.01, 100), TrendConfig{DisablePDT: true}, TypeIncreasing},
		{"pdt only, trend", mkTrend(0.01, 100), TrendConfig{DisablePCT: true}, TypeIncreasing},
	} {
		got, m := ClassifyOWDs(tc.owds, tc.cfg)
		if got != tc.want {
			t.Errorf("%s: classified %v (PCT %.2f PDT %.2f), want %v", tc.name, got, m.PCT, m.PDT, tc.want)
		}
	}
}

// TestClassifyConflictDiscards constructs a series whose PCT screams
// increasing while PDT denies any net rise — the classifier must
// discard rather than guess.
func TestClassifyConflictDiscards(t *testing.T) {
	// Mostly ascending pairs but a large terminal collapse: PCT high,
	// PDT strongly negative.
	med := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, -50}
	owds := expandGroups(med)
	got, m := ClassifyOWDs(owds, TrendConfig{})
	if m.PCT <= 0.6 || m.PDT >= 0.15 {
		t.Skipf("construction did not produce a conflict (PCT %.2f PDT %.2f)", m.PCT, m.PDT)
	}
	if got != TypeDiscard {
		t.Fatalf("conflicting metrics classified %v, want discard", got)
	}
}

// expandGroups turns a desired median series into a raw OWD series
// whose Γ=len(med) groups have exactly those medians.
func expandGroups(med []float64) []float64 {
	var out []float64
	for _, m := range med {
		for i := 0; i < 10; i++ {
			out = append(out, m)
		}
	}
	return out
}

// TestClassifySingleThresholdMode: setting NonIncreasing = Increasing
// collapses the ambiguous band (the Fig. 9 configuration).
func TestClassifySingleThresholdMode(t *testing.T) {
	med := make([]float64, 100)
	for i := range med {
		med[i] = 1 + 0.001*float64(i) // mild trend: PDT ≈ 1 here (no noise)
	}
	cfg := TrendConfig{DisablePCT: true, PDTIncreasing: 0.99, PDTNonIncreasing: 0.99}
	got, m := ClassifyOWDs(med, cfg)
	if got != TypeIncreasing {
		t.Fatalf("noise-free trend with PDT %.3f at threshold 0.99 classified %v", m.PDT, got)
	}
	_ = m
	// Dip a whole median group (values 50–59 form group 5 of Γ=10) so
	// the median series is not monotone: PDT drops strictly below 1 and
	// a threshold of 0.995 lands the stream in the non-increasing zone.
	for i := 50; i < 60; i++ {
		med[i] = med[40] - 0.01
	}
	cfg.PDTIncreasing, cfg.PDTNonIncreasing = 0.995, 0.995
	got, m = ClassifyOWDs(med, cfg)
	if got != TypeNonIncreasing {
		t.Fatalf("threshold 0.995 classified %v (PDT %.3f), want non-increasing", got, m.PDT)
	}
}

// TestZone checks the three-zone helper directly.
func TestZone(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want int
	}{
		{0.7, +1}, {0.66, 0}, {0.5, 0}, {0.45, 0}, {0.44, -1},
	} {
		if got := zone(tc.v, 0.66, 0.45); got != tc.want {
			t.Errorf("zone(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestStreamTypeString covers the enum formatting.
func TestStreamTypeString(t *testing.T) {
	if TypeIncreasing.String() != "I" || TypeNonIncreasing.String() != "N" || TypeDiscard.String() != "discard" {
		t.Error("stream type names changed")
	}
	if StreamType(42).String() == "" {
		t.Error("unknown stream type formats empty")
	}
}
