package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleClassifyOWDs shows the heart of SLoPS: a stream whose one-way
// delays trend upward is evidence that its rate exceeded the path's
// available bandwidth.
func ExampleClassifyOWDs() {
	// 100 one-way delays (seconds) with a clear upward trend.
	trending := make([]float64, 100)
	flat := make([]float64, 100)
	for i := range trending {
		trending[i] = 0.050 + 0.0002*float64(i)
		flat[i] = 0.050
	}
	kind1, _ := core.ClassifyOWDs(trending, core.TrendConfig{})
	kind2, _ := core.ClassifyOWDs(flat, core.TrendConfig{})
	fmt.Println(kind1, kind2)
	// Output: I N
}

// ExampleController walks the rate-adjustment algorithm against a path
// whose avail-bw is 42 Mb/s.
func ExampleController() {
	ctrl, err := core.NewController(core.ControllerConfig{
		MaxRate:        100e6,
		Resolution:     1e6,
		GreyResolution: 1.5e6,
	})
	if err != nil {
		panic(err)
	}
	const availBw = 42e6
	for !ctrl.Done() {
		if ctrl.Rate() > availBw {
			ctrl.Record(core.VerdictAbove)
		} else {
			ctrl.Record(core.VerdictBelow)
		}
	}
	res := ctrl.Result()
	fmt.Printf("bracketed: %v after %d fleets\n", res.Lo <= availBw && availBw <= res.Hi, res.Fleets)
	// Output: bracketed: true after 7 fleets
}

// ExampleClassifyFleet shows the fleet decision with the grey region.
func ExampleClassifyFleet() {
	mostlyIncreasing := []core.StreamType{
		core.TypeIncreasing, core.TypeIncreasing, core.TypeIncreasing,
		core.TypeIncreasing, core.TypeIncreasing, core.TypeNonIncreasing,
	}
	split := []core.StreamType{
		core.TypeIncreasing, core.TypeIncreasing, core.TypeIncreasing,
		core.TypeNonIncreasing, core.TypeNonIncreasing, core.TypeNonIncreasing,
	}
	fmt.Println(core.ClassifyFleet(mostlyIncreasing, 0.7))
	fmt.Println(core.ClassifyFleet(split, 0.7))
	// Output:
	// R>A
	// grey
}
