package core

import "testing"

// repeat builds a verdict slice with the given counts.
func repeat(inc, non, dis int) []StreamType {
	var out []StreamType
	for i := 0; i < inc; i++ {
		out = append(out, TypeIncreasing)
	}
	for i := 0; i < non; i++ {
		out = append(out, TypeNonIncreasing)
	}
	for i := 0; i < dis; i++ {
		out = append(out, TypeDiscard)
	}
	return out
}

// TestClassifyFleet covers the f-fraction decision including discards.
func TestClassifyFleet(t *testing.T) {
	for _, tc := range []struct {
		name          string
		inc, non, dis int
		f             float64
		want          FleetVerdict
	}{
		{"all increasing", 12, 0, 0, 0.7, VerdictAbove},
		{"all non-increasing", 0, 12, 0, 0.7, VerdictBelow},
		{"strong majority up", 9, 3, 0, 0.7, VerdictAbove},
		{"strong majority down", 3, 9, 0, 0.7, VerdictBelow},
		{"split is grey", 6, 6, 0, 0.7, VerdictGrey},
		{"just below f is grey", 8, 4, 0, 0.7, VerdictGrey},
		{"discards do not vote", 7, 0, 5, 0.7, VerdictAbove}, // 7/7 voters
		{"all discarded aborts", 0, 0, 12, 0.7, VerdictAborted},
		{"empty aborts", 0, 0, 0, 0.7, VerdictAborted},
		{"default f", 9, 3, 0, 0, VerdictAbove},
		{"f=1 demands unanimity", 11, 1, 0, 1.0, VerdictGrey},
		{"f=1 unanimous", 12, 0, 0, 1.0, VerdictAbove},
	} {
		got := ClassifyFleet(repeat(tc.inc, tc.non, tc.dis), tc.f)
		if got != tc.want {
			t.Errorf("%s: ClassifyFleet(I=%d N=%d D=%d, f=%v) = %v, want %v",
				tc.name, tc.inc, tc.non, tc.dis, tc.f, got, tc.want)
		}
	}
}

// TestClassifyFleetBadFraction documents the panic contract.
func TestClassifyFleetBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("f > 1 did not panic")
		}
	}()
	ClassifyFleet(repeat(1, 0, 0), 1.5)
}

// TestFleetVerdictString covers the enum formatting.
func TestFleetVerdictString(t *testing.T) {
	names := map[FleetVerdict]string{
		VerdictBelow:   "R<A",
		VerdictAbove:   "R>A",
		VerdictGrey:    "grey",
		VerdictAborted: "aborted",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
	if FleetVerdict(9).String() == "" {
		t.Error("unknown verdict formats empty")
	}
}
