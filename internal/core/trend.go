// Package core implements SLoPS (self-loading periodic streams), the
// available-bandwidth measurement methodology of Jain & Dovrolis
// (SIGCOMM 2002): one-way-delay trend detection for periodic probing
// streams (PCT and PDT statistics over robust median groups), stream
// and fleet classification including the grey region, and the
// iterative rate-adjustment algorithm that converges to an avail-bw
// range.
//
// The package is pure computation: it never touches clocks, sockets, or
// the simulator, which is what lets one controller drive both the
// simulated prober and the real-network tool.
package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Default decision thresholds. Each metric has an increasing zone, a
// non-increasing zone, and an ambiguous band in between, the structure
// of the pathload tool paper (Jain & Dovrolis, PAM 2002), which the
// journal version summarizes as single thresholds. The zone bounds are
// calibrated to the metrics' sampling distributions at Γ = √K = 10
// median groups:
//
//   - PCT under no trend is Binomial(9, ½)/9, centered on 0.5 with
//     discrete steps of 1/9 ≈ 0.11 — a single threshold at 0.55 fires
//     on half of all trend-free streams. Increasing requires ≥ 6/9
//     rising pairs (null probability 0.25), non-increasing ≤ 4/9.
//   - PDT under no trend is centered on 0, not 0.5: "non-increasing"
//     evidence is a PDT near zero, while a genuine mild overload
//     yields PDT ≈ 0.3–0.4 long before it approaches 1. The increasing
//     bound follows the journal text (0.4); the non-increasing bound
//     sits at 0.15 so that mildly loaded streams are not misread as
//     trend-free.
//
// Setting a metric's non-increasing threshold equal to its increasing
// threshold collapses the ambiguous band and recovers the journal
// paper's single-threshold description (the Fig. 9 sensitivity sweep).
const (
	DefaultPCTIncreasing    = 0.60
	DefaultPCTNonIncreasing = 0.45
	DefaultPDTIncreasing    = 0.40
	DefaultPDTNonIncreasing = 0.15
)

// TrendConfig controls how a stream's one-way delays are reduced to an
// increasing / non-increasing verdict.
type TrendConfig struct {
	// PCTIncreasing and PCTNonIncreasing bound the PCT zones: the
	// stream looks increasing to PCT above the former, non-increasing
	// below the latter, ambiguous in between. Zero selects defaults.
	PCTIncreasing, PCTNonIncreasing float64
	// PDTIncreasing and PDTNonIncreasing are the PDT zone bounds.
	PDTIncreasing, PDTNonIncreasing float64
	// DisablePCT ignores the PCT statistic (used by the Fig. 9 style
	// single-metric ablations).
	DisablePCT bool
	// DisablePDT ignores the PDT statistic.
	DisablePDT bool
	// Gamma overrides the number of median groups. Zero selects the
	// paper's Γ = √K.
	Gamma int
}

func (c TrendConfig) withDefaults() TrendConfig {
	if c.PCTIncreasing == 0 {
		c.PCTIncreasing = DefaultPCTIncreasing
	}
	if c.PCTNonIncreasing == 0 {
		c.PCTNonIncreasing = DefaultPCTNonIncreasing
	}
	if c.PDTIncreasing == 0 {
		c.PDTIncreasing = DefaultPDTIncreasing
	}
	if c.PDTNonIncreasing == 0 {
		c.PDTNonIncreasing = DefaultPDTNonIncreasing
	}
	return c
}

// StreamType is the verdict on a single periodic stream.
type StreamType int

// Stream verdicts. TypeIncreasing ("type I" in the paper) means the
// stream's OWDs show an increasing trend, i.e. the stream rate exceeded
// the avail-bw while the stream was in flight; TypeNonIncreasing
// ("type N") is the opposite; TypeDiscard marks streams that cannot be
// classified (excess loss, sender timing glitches) and must not vote in
// the fleet decision.
const (
	TypeNonIncreasing StreamType = iota
	TypeIncreasing
	TypeDiscard
)

// String names the stream type.
func (t StreamType) String() string {
	switch t {
	case TypeNonIncreasing:
		return "N"
	case TypeIncreasing:
		return "I"
	case TypeDiscard:
		return "discard"
	default:
		return fmt.Sprintf("StreamType(%d)", int(t))
	}
}

// TrendMetrics carries the raw statistics behind a stream verdict, for
// logging and for the evaluation harness.
type TrendMetrics struct {
	PCT     float64 // pairwise comparison test, in [0, 1]
	PDT     float64 // pairwise difference test, in [−1, 1]
	Gamma   int     // number of median groups analyzed
	Medians []float64
}

// MedianGroups partitions owds into gamma groups of consecutive values
// and returns the median of each group, the paper's outlier-robust
// preprocessing step. If gamma is 0 it defaults to √len(owds). Short
// inputs yield fewer (possibly zero) groups; groups absorb the
// remainder so every sample is used.
func MedianGroups(owds []float64, gamma int) []float64 {
	n := len(owds)
	if n == 0 {
		return nil
	}
	if gamma <= 0 {
		gamma = int(math.Sqrt(float64(n)))
	}
	if gamma > n {
		gamma = n
	}
	if gamma < 1 {
		gamma = 1
	}
	out := make([]float64, 0, gamma)
	// Distribute n samples across gamma groups as evenly as possible.
	base := n / gamma
	extra := n % gamma
	start := 0
	for g := 0; g < gamma; g++ {
		size := base
		if g < extra {
			size++
		}
		out = append(out, stats.Median(owds[start:start+size]))
		start += size
	}
	return out
}

// PCT returns the pairwise comparison test statistic of the median
// series (Eq. 8): the fraction of consecutive pairs that are strictly
// increasing. Independent OWDs give ≈ 0.5; a strong increasing trend
// approaches 1. It returns 0.5 (the indifferent value) for fewer than
// two medians.
func PCT(medians []float64) float64 {
	if len(medians) < 2 {
		return 0.5
	}
	inc := 0
	for i := 1; i < len(medians); i++ {
		if medians[i] > medians[i-1] {
			inc++
		}
	}
	return float64(inc) / float64(len(medians)-1)
}

// PDT returns the pairwise difference test statistic of the median
// series (Eq. 9): the start-to-end variation relative to the absolute
// per-step variation, in [−1, 1]. Independent OWDs give ≈ 0; a strong
// increasing trend approaches 1. It returns 0 for fewer than two
// medians or when the series is constant.
func PDT(medians []float64) float64 {
	if len(medians) < 2 {
		return 0
	}
	var absSum float64
	for i := 1; i < len(medians); i++ {
		absSum += math.Abs(medians[i] - medians[i-1])
	}
	if absSum == 0 {
		return 0
	}
	return (medians[len(medians)-1] - medians[0]) / absSum
}

// zone maps a metric value to +1 (increasing), −1 (non-increasing), or
// 0 (ambiguous) given its two thresholds.
func zone(v, incr, nonIncr float64) int {
	switch {
	case v > incr:
		return +1
	case v < nonIncr:
		return -1
	default:
		return 0
	}
}

// ClassifyOWDs reduces a stream's one-way delays (seconds, in send
// order; lost packets simply absent) to a stream verdict. Each enabled
// metric votes increasing, non-increasing, or ambiguous; the stream is
// type I when at least one metric votes increasing and none votes
// non-increasing, type N symmetrically, and discarded when the metrics
// conflict or are both ambiguous. Streams too short to form at least
// two median groups are discarded.
func ClassifyOWDs(owds []float64, cfg TrendConfig) (StreamType, TrendMetrics) {
	cfg = cfg.withDefaults()
	med := MedianGroups(owds, cfg.Gamma)
	m := TrendMetrics{PCT: PCT(med), PDT: PDT(med), Gamma: len(med), Medians: med}
	if len(med) < 2 {
		return TypeDiscard, m
	}
	if cfg.DisablePCT && cfg.DisablePDT {
		// No metric enabled: unclassifiable rather than silently
		// non-increasing.
		return TypeDiscard, m
	}

	var votes []int
	if !cfg.DisablePCT {
		votes = append(votes, zone(m.PCT, cfg.PCTIncreasing, cfg.PCTNonIncreasing))
	}
	if !cfg.DisablePDT {
		votes = append(votes, zone(m.PDT, cfg.PDTIncreasing, cfg.PDTNonIncreasing))
	}
	pos, neg := false, false
	for _, v := range votes {
		if v > 0 {
			pos = true
		}
		if v < 0 {
			neg = true
		}
	}
	switch {
	case pos && !neg:
		return TypeIncreasing, m
	case neg && !pos:
		return TypeNonIncreasing, m
	default:
		return TypeDiscard, m
	}
}
