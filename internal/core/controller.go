package core

import "fmt"

// ControllerConfig parameterizes the iterative rate-adjustment
// algorithm (§III-B refined by §IV).
type ControllerConfig struct {
	// MinRate and MaxRate bound the search, in bits/s. MaxRate must be
	// positive; it is the highest rate the prober can generate
	// (ℓ_max·8/T_min for pathload) and therefore the highest avail-bw
	// the tool can report.
	MinRate, MaxRate float64
	// Resolution is ω, the user-requested estimation resolution in
	// bits/s: without a grey region the algorithm stops once
	// Rmax − Rmin ≤ ω.
	Resolution float64
	// GreyResolution is χ: with a grey region the algorithm stops once
	// both avail-bw bounds are within χ of the corresponding
	// grey-region bounds.
	GreyResolution float64
	// InitialRate optionally sets the first fleet's rate; zero picks
	// the midpoint of [MinRate, MaxRate].
	InitialRate float64
}

func (c ControllerConfig) validate() error {
	if c.MaxRate <= 0 {
		return fmt.Errorf("core: controller MaxRate must be positive, got %v", c.MaxRate)
	}
	if c.MinRate < 0 || c.MinRate >= c.MaxRate {
		return fmt.Errorf("core: controller MinRate %v outside [0, MaxRate=%v)", c.MinRate, c.MaxRate)
	}
	if c.Resolution <= 0 {
		return fmt.Errorf("core: controller Resolution must be positive, got %v", c.Resolution)
	}
	if c.GreyResolution <= 0 {
		return fmt.Errorf("core: controller GreyResolution must be positive, got %v", c.GreyResolution)
	}
	if c.InitialRate != 0 && (c.InitialRate <= c.MinRate || c.InitialRate >= c.MaxRate) {
		return fmt.Errorf("core: controller InitialRate %v outside (%v, %v)", c.InitialRate, c.MinRate, c.MaxRate)
	}
	return nil
}

// Result is the final avail-bw estimate of a controller run.
type Result struct {
	Lo, Hi float64 // reported avail-bw range [Rmin, Rmax], bits/s
	// GreySet reports whether a grey region was detected; GreyLo and
	// GreyHi are its bounds when set.
	GreySet        bool
	GreyLo, GreyHi float64
	// HitMax is true when the avail-bw appears to be at or above
	// MaxRate (every fleet reported R < A); the true avail-bw may
	// exceed Hi. HitMin is the symmetric lower-edge flag.
	HitMax, HitMin bool
	Fleets         int // number of fleet verdicts consumed
}

// Mid returns the center of the reported range, the scalar estimate the
// evaluation compares against ground truth.
func (r Result) Mid() float64 { return (r.Lo + r.Hi) / 2 }

// Width returns Hi − Lo.
func (r Result) Width() float64 { return r.Hi - r.Lo }

// RelVar returns the paper's relative variation metric ρ (Eq. 12): the
// width of the reported range over its center. It returns 0 for a
// degenerate (zero-center) range.
func (r Result) RelVar() float64 {
	mid := r.Mid()
	if mid == 0 {
		return 0
	}
	return r.Width() / mid
}

// A Controller runs the SLoPS binary search over fleet rates. Create
// one with NewController, then alternate Rate (the rate to probe at)
// and Record (the fleet verdict at that rate) until Done.
type Controller struct {
	cfg ControllerConfig

	rmin, rmax float64
	greySet    bool
	gmin, gmax float64

	rate   float64
	fleets int
	done   bool
}

// NewController returns a controller ready to propose its first fleet
// rate. It returns an error if the configuration is invalid.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, rmin: cfg.MinRate, rmax: cfg.MaxRate}
	if cfg.InitialRate != 0 {
		c.rate = cfg.InitialRate
	} else {
		c.rate = (c.rmin + c.rmax) / 2
	}
	return c, nil
}

// Rate returns the rate (bits/s) at which the next fleet should probe.
func (c *Controller) Rate() float64 { return c.rate }

// Done reports whether the search has terminated.
func (c *Controller) Done() bool { return c.done }

// Bounds returns the current avail-bw bracket [Rmin, Rmax].
func (c *Controller) Bounds() (lo, hi float64) { return c.rmin, c.rmax }

// Grey returns the current grey-region bracket; set is false while no
// grey fleet has been observed.
func (c *Controller) Grey() (lo, hi float64, set bool) { return c.gmin, c.gmax, c.greySet }

// Record consumes the verdict of the fleet probed at the current rate
// and advances the search. Calling Record after Done is a no-op.
func (c *Controller) Record(v FleetVerdict) {
	if c.done {
		return
	}
	c.fleets++
	r := c.rate
	switch v {
	case VerdictAbove, VerdictAborted:
		// R > A; aborted fleets mean losses, which the paper treats as
		// "rate too high: decrease".
		if r < c.rmax {
			c.rmax = r
		}
		c.clampGrey()
	case VerdictBelow:
		if r > c.rmin {
			c.rmin = r
		}
		c.clampGrey()
	case VerdictGrey:
		if !c.greySet {
			c.greySet = true
			c.gmin, c.gmax = r, r
		} else if r > c.gmax {
			c.gmax = r
		} else if r < c.gmin {
			c.gmin = r
		}
	default:
		panic(fmt.Sprintf("core: unknown fleet verdict %v", v))
	}
	c.advance()
}

// clampGrey keeps the grey region inside the avail-bw bracket,
// discarding it if the bracket update contradicted it entirely.
func (c *Controller) clampGrey() {
	if !c.greySet {
		return
	}
	if c.gmax > c.rmax {
		c.gmax = c.rmax
	}
	if c.gmin < c.rmin {
		c.gmin = c.rmin
	}
	if c.gmin > c.gmax {
		c.greySet = false
	}
}

// advance selects the next fleet rate or terminates the search.
func (c *Controller) advance() {
	if c.rmax-c.rmin <= c.cfg.Resolution {
		c.done = true
		return
	}
	if !c.greySet {
		c.rate = (c.rmin + c.rmax) / 2
		return
	}
	upper := c.rmax - c.gmax // unresolved span above the grey region
	lower := c.gmin - c.rmin // unresolved span below it
	if upper <= c.cfg.GreyResolution && lower <= c.cfg.GreyResolution {
		c.done = true
		return
	}
	// Probe the wider unresolved span first (§IV: halfway between the
	// grey bound and the corresponding avail-bw bound).
	if upper >= lower {
		c.rate = (c.gmax + c.rmax) / 2
	} else {
		c.rate = (c.rmin + c.gmin) / 2
	}
}

// Result returns the estimate accumulated so far. It is meaningful once
// Done reports true, but may be inspected mid-run for logging.
func (c *Controller) Result() Result {
	return Result{
		Lo: c.rmin, Hi: c.rmax,
		GreySet: c.greySet, GreyLo: c.gmin, GreyHi: c.gmax,
		Fleets: c.fleets,
		// HitMax: no fleet ever reported R > A, so the avail-bw may
		// exceed the probe-able maximum. HitMin is symmetric.
		HitMax: c.rmax == c.cfg.MaxRate,
		HitMin: c.rmin == c.cfg.MinRate,
	}
}
