package coord

import (
	"crypto/hmac"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/tsstore"
)

// ServerConfig configures a coordinator.
type ServerConfig struct {
	// Coord declares the paths, conflicts, and timing (see Config).
	Coord Config

	// Store shapes the federated store each scrape materializes (ring
	// capacity, digest budget). The zero value uses tsstore defaults.
	Store tsstore.Config

	// Now supplies the control-plane clock. nil uses wall time measured
	// from server construction. The harness injects a scripted clock
	// here — with AutoTick off, the whole coordinator then runs on
	// virtual time and its transcript is replayable byte-for-byte.
	Now func() time.Duration

	// AutoTick, when set, runs Tick every Coord.Epoch on a background
	// goroutine. Leave unset to drive Tick manually (tests).
	AutoTick bool

	// OnEvent, when non-nil, receives every transcript line as it is
	// appended (registration, grants, steals, expirations). Called with
	// the server lock held — keep it fast.
	OnEvent func(line string)

	// Secret, when non-empty, requires every agent to prove knowledge
	// of the same shared secret through an HMAC challenge before it may
	// register. Needs protocol v2; v1 dialers are refused with a
	// versioned error frame.
	Secret string

	// RegisterRate and PushRate are per-remote-host token-bucket rates
	// in events/second (0 = unlimited); RateBurst is the bucket depth
	// (0 selects DefaultRateBurst). Rejected dialers get a versioned
	// error frame before the connection closes.
	RegisterRate float64
	PushRate     float64
	RateBurst    float64

	// Persist, when non-nil, receives every lease-state change and
	// every applied push (see Persister). Persist errors are counted
	// (PersistErrs) but never stop the control plane.
	Persist Persister

	// Restore, when non-nil, reinstates recovered state before the
	// server accepts its first connection: leases by conflict-group
	// member set (mismatches dropped with a transcript line), federated
	// contributions by the per-(path, agent) Seq replace rule.
	Restore *RestoreState
}

// Server is the coordinator: it accepts agent control sessions on a
// listener, feeds their heartbeats and pushes into the lease State and
// the tsstore Federation, and serves the federated scrape surface.
type Server struct {
	cfg   ServerConfig
	start time.Time

	mu          sync.Mutex
	st          *State
	fed         *tsstore.Federation
	persistErrs uint64
	persistErr  error

	regLim  *rateLimiter
	pushLim *rateLimiter

	connMu sync.Mutex
	conns  map[net.Conn]bool
	closed bool

	wg       sync.WaitGroup
	stopTick chan struct{}
}

// NewServer validates cfg and builds the coordinator. Serve (or a
// test's direct state access) does the rest.
func NewServer(cfg ServerConfig) (*Server, error) {
	st, err := NewState(cfg.Coord)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		st:       st,
		fed:      tsstore.NewFederation(cfg.Store),
		conns:    map[net.Conn]bool{},
		stopTick: make(chan struct{}),
	}
	if s.cfg.Now == nil {
		s.cfg.Now = func() time.Duration { return time.Since(s.start) }
	}
	s.regLim = newRateLimiter(cfg.RegisterRate, cfg.RateBurst)
	s.pushLim = newRateLimiter(cfg.PushRate, cfg.RateBurst)
	if cfg.Restore != nil {
		now := s.cfg.Now()
		if cfg.Restore.HaveLeases {
			s.emit(st.RestoreLeases(cfg.Restore.Leases, now))
		}
		for _, rc := range cfg.Restore.Contributions {
			s.fed.Push(rc.Agent, rc.Path, rc.C)
		}
	}
	if cfg.AutoTick {
		s.wg.Add(1)
		go s.tickLoop()
	}
	return s, nil
}

// PersistErrs reports how many Persist calls failed and the most
// recent error.
func (s *Server) PersistErrs() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErrs, s.persistErr
}

// persistLeases snapshots the lease state into the Persister; callers
// hold s.mu (which also serializes snapshots, so the log's last write
// is always the newest state).
func (s *Server) persistLeases() {
	if s.cfg.Persist == nil {
		return
	}
	if err := s.cfg.Persist.SaveLeases(s.st.LeaseSnapshot(s.cfg.Now())); err != nil {
		s.persistErrs++
		s.persistErr = err
	}
}

// Federation exposes the underlying federated store (tests, embedding).
func (s *Server) Federation() *tsstore.Federation { return s.fed }

// Tick advances the lease machine to the current clock reading and
// returns the transcript lines it produced.
func (s *Server) Tick() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	lines := s.st.Tick(s.cfg.Now())
	s.emit(lines)
	if len(lines) > 0 {
		s.persistLeases()
	}
	return lines
}

// emit forwards transcript lines to OnEvent; callers hold s.mu.
func (s *Server) emit(lines []string) {
	if s.cfg.OnEvent == nil {
		return
	}
	for _, l := range lines {
		s.cfg.OnEvent(l)
	}
}

// tickLoop drives AutoTick.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.st.Epoch())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Tick()
		case <-s.stopTick:
			return
		}
	}
}

// Transcript returns the lease machine's decision log so far.
func (s *Server) Transcript() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Transcript()
}

// Owner reports which agent currently leases the path.
func (s *Server) Owner(path string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Owner(path)
}

// Handler serves the coordinator's HTTP surface: the federated store's
// endpoints (/metrics, /series, /mrtg, /) plus /coord, a plain-text
// control-plane status page (agents, leases, transcript length).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.fed.Handler())
	mux.HandleFunc("/coord", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "clock %v\n", s.cfg.Now())
		for _, a := range s.st.Agents() {
			asg := s.st.Assignment(a)
			fmt.Fprintf(w, "agent %s leases=%d budget=%.0f\n", a, len(asg.Leases), asg.Budget)
		}
		for gi := range s.st.Groups() {
			owner := s.st.owner[gi]
			if owner == "" {
				owner = "-"
			}
			fmt.Fprintf(w, "group %s owner=%s\n", s.st.groupName(gi), owner)
		}
		fmt.Fprintf(w, "transcript %d lines\n", len(s.st.log))
	})
	return mux
}

// Serve accepts agent control sessions on ln until Close (or a fatal
// listener error). Each connection is handled on its own goroutine;
// Serve itself blocks, http.Server style.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return errors.New("coord: server closed")
	}
	s.conns[listenerConn{ln}] = true
	s.connMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("coord: accept: %w", err)
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = true
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(c)
		}()
	}
}

// listenerConn lets the listener ride in the conns map so Close tears
// it down with one sweep.
type listenerConn struct{ net.Listener }

func (l listenerConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (l listenerConn) Write([]byte) (int, error)        { return 0, io.EOF }
func (l listenerConn) LocalAddr() net.Addr              { return l.Addr() }
func (l listenerConn) RemoteAddr() net.Addr             { return l.Addr() }
func (l listenerConn) SetDeadline(time.Time) error      { return nil }
func (l listenerConn) SetReadDeadline(time.Time) error  { return nil }
func (l listenerConn) SetWriteDeadline(time.Time) error { return nil }

// Close stops the tick loop, closes every control connection and
// listener, and waits for the handlers to drain.
func (s *Server) Close() {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]bool{}
	s.connMu.Unlock()
	close(s.stopTick)
	s.wg.Wait()
}

// dropConn forgets a finished connection.
func (s *Server) dropConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// reject refuses a dialer with a versioned error frame; the caller
// closes the connection.
func (s *Server) reject(c net.Conn, code uint16, text string) {
	writeFrame(c, msgError, marshalError(errorMsg{Version: Version, Code: code, Text: text}))
}

// remoteHost keys rate-limit buckets: the peer address minus the
// port, so reconnecting from ephemeral ports shares one bucket.
func remoteHost(c net.Conn) string {
	addr := c.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// challenge runs the v2 auth exchange: nonce out, MAC back, constant
// time compare. It reports whether the dialer proved the secret;
// failures are answered with an error frame before returning.
func (s *Server) challenge(c net.Conn, name string) bool {
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		s.reject(c, errCodeAuth, "challenge unavailable")
		return false
	}
	if err := writeFrame(c, msgChallenge, marshalChallenge(nonce)); err != nil {
		return false
	}
	t, payload, err := readFrame(c)
	if err != nil || t != msgAuth {
		s.reject(c, errCodeAuth, "expected auth answer")
		return false
	}
	mac, err := unmarshalAuth(payload)
	if err != nil || !hmac.Equal(mac, authMAC(s.cfg.Secret, nonce, name)) {
		s.reject(c, errCodeAuth, "authentication failed")
		return false
	}
	return true
}

// handleConn speaks one agent control session: hello handshake
// (challenge/auth when a secret is configured), then a strict
// request/response loop (heartbeat → assign, push → push-ack). A
// heartbeat from an agent the lease machine expired gets a bye so the
// agent knows to re-register.
func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	defer s.dropConn(c)

	t, payload, err := readFrame(c)
	if err != nil || t != msgHello {
		return
	}
	hello, err := unmarshalHello(payload)
	if err != nil || hello.Name == "" {
		return
	}
	ver, err := Negotiate(hello.Min, hello.Max)
	if err != nil {
		s.reject(c, errCodeVersion, err.Error())
		return
	}
	host := remoteHost(c)
	if !s.regLim.allow(host, s.cfg.Now()) {
		s.reject(c, errCodeRate, "register rate limit exceeded")
		return
	}
	if s.cfg.Secret != "" {
		if ver < 2 {
			s.reject(c, errCodeVersion, "authentication requires protocol v2")
			return
		}
		if !s.challenge(c, hello.Name) {
			return
		}
	}

	s.mu.Lock()
	regErr := s.st.Register(hello.Name, s.cfg.Now())
	if regErr == nil {
		s.emit(s.st.log[len(s.st.log)-1:])
		s.persistLeases()
	}
	ack := helloAckMsg{Version: ver, TTL: s.st.TTL(), Epoch: s.st.Epoch()}
	s.mu.Unlock()
	if regErr != nil {
		return
	}
	if err := writeFrame(c, msgHelloAck, marshalHelloAck(ack)); err != nil {
		return
	}

	for {
		t, payload, err := readFrame(c)
		if err != nil {
			return
		}
		switch t {
		case msgHeartbeat:
			hb, err := unmarshalHeartbeat(payload)
			if err != nil {
				return
			}
			s.mu.Lock()
			asg, hbErr := s.st.Heartbeat(hello.Name, s.cfg.Now())
			s.mu.Unlock()
			if hbErr != nil {
				writeFrame(c, msgBye, nil)
				return
			}
			reply := assignMsg{Seq: hb.Seq, Budget: asg.Budget, Leases: asg.Leases}
			if err := writeFrame(c, msgAssign, marshalAssign(reply)); err != nil {
				return
			}
		case msgPush:
			if !s.pushLim.allow(host, s.cfg.Now()) {
				s.reject(c, errCodeRate, "push rate limit exceeded")
				return
			}
			p, err := unmarshalPush(payload)
			if err != nil {
				return
			}
			contrib, err := pushToContribution(p)
			if err != nil {
				// Structurally invalid digest: refuse the push but keep
				// the session — the agent's next snapshot may be fine.
				writeFrame(c, msgPushAck, marshalPushAck(pushAckMsg{Seq: p.Seq}))
				continue
			}
			applied := s.fed.Push(hello.Name, p.Path, contrib)
			if applied && s.cfg.Persist != nil {
				if perr := s.cfg.Persist.SaveContribution(hello.Name, p.Path, contrib); perr != nil {
					s.mu.Lock()
					s.persistErrs++
					s.persistErr = perr
					s.mu.Unlock()
				}
			}
			if err := writeFrame(c, msgPushAck, marshalPushAck(pushAckMsg{Seq: p.Seq, Applied: applied})); err != nil {
				return
			}
		case msgBye:
			return
		default:
			return
		}
	}
}
