// Package coord is the fleet control plane: a coordinator
// (cmd/pathload-coord) that owns the path table and an agent runtime
// (pathload -agent) that measures whatever it is leased.
//
// Agents register over a small versioned control protocol — a sibling
// of internal/wire's framing and range negotiation, with its own magic
// and a frame limit sized for digest pushes — then heartbeat to renew
// their lease TTLs, and periodically push tsstore contributions
// (retained points + all-time digests) that the coordinator federates
// into one global store behind the existing /metrics /series /mrtg
// scrape surface. The lease state machine itself (State) is a pure,
// clock-explicit core, which is what makes the multi-agent harness
// tests deterministic down to the byte.
package coord

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/tsstore"
)

// protoMagic identifies coordination control streams ("SLCP" — SLoPS
// control plane; distinct from wire.Magic so a prober dialed at a
// coordinator, or vice versa, fails fast instead of misparsing).
const protoMagic uint32 = 0x534c4350

// Version is the newest control-plane protocol version this build
// speaks; VersionMin the oldest. Version 1 defines hello/hello-ack
// with wire-style range negotiation, heartbeat/assign leasing, and
// contribution push/ack. Version 2 adds the authentication handshake
// (challenge/auth) and the versioned error frame — a coordinator with
// a shared secret configured refuses v1 dialers, everything else is
// wire-compatible.
const (
	Version    uint16 = 2
	VersionMin uint16 = 1
)

// ErrVersionMismatch reports peers whose version ranges do not
// intersect.
var ErrVersionMismatch = errors.New("coord: no protocol version in common")

// ErrRejected reports that the coordinator refused this agent with a
// versioned error frame (bad credentials, rate limit, version gate).
// Unlike a broken connection it is not retryable: the agent's Run loop
// stops instead of hammering the control port.
var ErrRejected = errors.New("coord: rejected by coordinator")

// Negotiate picks the session version: the highest version inside both
// the peer's advertised range and this build's — the wire.Negotiate
// rule applied to the control plane.
func Negotiate(peerMin, peerMax uint16) (uint16, error) {
	chosen := Version
	if peerMax < chosen {
		chosen = peerMax
	}
	if chosen < VersionMin || chosen < peerMin {
		return 0, fmt.Errorf("%w: peer speaks [%d, %d], this build [%d, %d]",
			ErrVersionMismatch, peerMin, peerMax, VersionMin, Version)
	}
	return chosen, nil
}

// Control message types.
type msgType uint8

const (
	msgHello     msgType = iota + 1 // agent → coord: version range + name
	msgHelloAck                     // coord → agent: chosen version + timing
	msgHeartbeat                    // agent → coord: liveness, lease renewal
	msgAssign                       // coord → agent: current lease set (heartbeat answer)
	msgPush                         // agent → coord: one path's Contribution
	msgPushAck                      // coord → agent: applied / stale
	msgBye                          // either: clean close (coord: please re-register)

	// Version 2 additions.
	msgChallenge // coord → agent: auth nonce (only when a secret is set)
	msgAuth      // agent → coord: HMAC over nonce‖name
	msgError     // coord → agent: versioned rejection, then close
)

// String names the message type.
func (t msgType) String() string {
	switch t {
	case msgHello:
		return "hello"
	case msgHelloAck:
		return "hello-ack"
	case msgHeartbeat:
		return "heartbeat"
	case msgAssign:
		return "assign"
	case msgPush:
		return "push"
	case msgPushAck:
		return "push-ack"
	case msgBye:
		return "bye"
	case msgChallenge:
		return "challenge"
	case msgAuth:
		return "auth"
	case msgError:
		return "error"
	default:
		return fmt.Sprintf("msgType(%d)", uint8(t))
	}
}

// maxFrame bounds a control frame payload. Unlike wire's 1 KiB, a push
// carries a whole retained window (up to DefaultCapacity points with
// error strings) plus a digest, so the limit is 1 MiB — still small
// enough to cap what a garbage length prefix can make us allocate.
const maxFrame = 1 << 20

// writeFrame writes one length-prefixed control frame:
// [magic u32][type u8][len u32][payload].
func writeFrame(w io.Writer, t msgType, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("coord: control payload %d exceeds limit %d", len(payload), maxFrame)
	}
	hdr := make([]byte, 9)
	binary.BigEndian.PutUint32(hdr[0:], protoMagic)
	hdr[4] = uint8(t)
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("coord: writing control header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("coord: writing control payload: %w", err)
		}
	}
	return nil
}

// readFrame reads one control frame.
func readFrame(r io.Reader) (msgType, []byte, error) {
	hdr := make([]byte, 9)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != protoMagic {
		return 0, nil, errors.New("coord: bad control magic")
	}
	t := msgType(hdr[4])
	n := binary.BigEndian.Uint32(hdr[5:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("coord: control payload %d exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("coord: reading control payload: %w", err)
	}
	return t, payload, nil
}

// --- payload encoding -------------------------------------------------
//
// Big-endian throughout; strings are u16-length-prefixed UTF-8. A
// decoder object carries the error so message decoders read linearly
// and fail atomically.

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("coord: truncated %s", what)
	}
}

func (d *decoder) u8(what string) uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail(what)
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u16(what string) uint16 {
	if d.err != nil || len(d.buf) < 2 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *decoder) dur(what string) time.Duration { return time.Duration(d.u64(what)) }

func (d *decoder) str(what string) string {
	n := int(d.u16(what))
	if d.err != nil || len(d.buf) < n {
		d.fail(what)
		return ""
	}
	v := string(d.buf[:n])
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bytes(what string) []byte {
	n := int(d.u32(what))
	if d.err != nil || len(d.buf) < n {
		d.fail(what)
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) done(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("coord: %s payload has %d trailing bytes", what, len(d.buf))
	}
	return nil
}

func appendStr(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// helloMsg opens a control session: the agent's version range and name.
type helloMsg struct {
	Min, Max uint16
	Name     string
}

func marshalHello(h helloMsg) []byte {
	buf := binary.BigEndian.AppendUint16(nil, h.Min)
	buf = binary.BigEndian.AppendUint16(buf, h.Max)
	return appendStr(buf, h.Name)
}

func unmarshalHello(b []byte) (helloMsg, error) {
	d := &decoder{buf: b}
	h := helloMsg{Min: d.u16("hello"), Max: d.u16("hello"), Name: d.str("hello")}
	if h.Min > h.Max {
		return helloMsg{}, fmt.Errorf("coord: inverted hello version range [%d, %d]", h.Min, h.Max)
	}
	return h, d.done("hello")
}

// helloAckMsg answers a hello: the chosen version plus the
// coordinator's timing contract — the agent liveness TTL and the
// rebalance epoch — so agents size their heartbeat cadence from the
// authority that enforces it.
type helloAckMsg struct {
	Version uint16
	TTL     time.Duration
	Epoch   time.Duration
}

func marshalHelloAck(a helloAckMsg) []byte {
	buf := binary.BigEndian.AppendUint16(nil, a.Version)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.TTL))
	return binary.BigEndian.AppendUint64(buf, uint64(a.Epoch))
}

func unmarshalHelloAck(b []byte) (helloAckMsg, error) {
	d := &decoder{buf: b}
	a := helloAckMsg{Version: d.u16("hello-ack"), TTL: d.dur("hello-ack"), Epoch: d.dur("hello-ack")}
	return a, d.done("hello-ack")
}

// heartbeatMsg renews the agent's TTL; Seq is echoed in the assign
// answer so an agent can match replies after a resync.
type heartbeatMsg struct {
	Seq uint64
}

func marshalHeartbeat(h heartbeatMsg) []byte {
	return binary.BigEndian.AppendUint64(nil, h.Seq)
}

func unmarshalHeartbeat(b []byte) (heartbeatMsg, error) {
	d := &decoder{buf: b}
	h := heartbeatMsg{Seq: d.u64("heartbeat")}
	return h, d.done("heartbeat")
}

// assignMsg is the heartbeat answer: the agent's complete current
// lease set (idempotent — the agent reconciles against it, so a lost
// assign is healed by the next one), its aggregate probe budget, and
// each lease's conflict group so the agent can stagger paths that
// share a tight link.
type assignMsg struct {
	Seq    uint64
	Budget float64 // bits/s across the agent's leases; 0 = uncapped
	Leases []Lease
}

func marshalAssign(a assignMsg) []byte {
	buf := binary.BigEndian.AppendUint64(nil, a.Seq)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(a.Budget))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(a.Leases)))
	for _, l := range a.Leases {
		buf = binary.BigEndian.AppendUint32(buf, uint32(l.Group))
		buf = appendStr(buf, l.Path)
	}
	return buf
}

func unmarshalAssign(b []byte) (assignMsg, error) {
	d := &decoder{buf: b}
	a := assignMsg{Seq: d.u64("assign"), Budget: d.f64("assign")}
	n := int(d.u32("assign"))
	if d.err == nil && n > maxFrame/8 {
		return assignMsg{}, fmt.Errorf("coord: assign claims %d leases", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		l := Lease{Group: int(d.u32("assign"))}
		l.Path = d.str("assign")
		a.Leases = append(a.Leases, l)
	}
	return a, d.done("assign")
}

// pushMsg carries one path's tsstore Contribution. The agent name is
// implied by the session. Point wall clocks are deliberately not on
// the wire: the deterministic export surface never renders them, and
// omitting them keeps federated snapshots reproducible.
type pushMsg struct {
	Seq          uint64
	Path         string
	Total, Errs  uint64
	Points       []tsstore.Point
	DigestBinary []byte // Digest.MarshalBinary, empty when no digest
}

// maxErrLen caps a pushed point's error text so a pathological error
// string cannot blow the frame limit.
const maxErrLen = 256

func marshalPush(p pushMsg) []byte {
	buf := binary.BigEndian.AppendUint64(nil, p.Seq)
	buf = appendStr(buf, p.Path)
	buf = binary.BigEndian.AppendUint64(buf, p.Total)
	buf = binary.BigEndian.AppendUint64(buf, p.Errs)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Points)))
	for _, pt := range p.Points {
		buf = binary.BigEndian.AppendUint64(buf, uint64(pt.Round))
		buf = binary.BigEndian.AppendUint64(buf, uint64(pt.At))
		buf = binary.BigEndian.AppendUint64(buf, uint64(pt.Span))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(pt.Lo))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(pt.Hi))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(pt.Bits))
		e := pt.Err
		if len(e) > maxErrLen {
			e = e[:maxErrLen]
		}
		buf = appendStr(buf, e)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.DigestBinary)))
	return append(buf, p.DigestBinary...)
}

func unmarshalPush(b []byte) (pushMsg, error) {
	d := &decoder{buf: b}
	p := pushMsg{Seq: d.u64("push")}
	p.Path = d.str("push")
	p.Total = d.u64("push")
	p.Errs = d.u64("push")
	n := int(d.u32("push"))
	if d.err == nil && n > maxFrame/48 {
		return pushMsg{}, fmt.Errorf("coord: push claims %d points", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		pt := tsstore.Point{
			Round: int(int64(d.u64("push"))),
			At:    d.dur("push"),
			Span:  d.dur("push"),
			Lo:    d.f64("push"),
			Hi:    d.f64("push"),
			Bits:  d.f64("push"),
			Err:   d.str("push"),
		}
		p.Points = append(p.Points, pt)
	}
	p.DigestBinary = append([]byte(nil), d.bytes("push")...)
	return p, d.done("push")
}

// pushAckMsg confirms a push; Applied is false when the federation
// already held a contribution at least as new (re-delivery).
type pushAckMsg struct {
	Seq     uint64
	Applied bool
}

func marshalPushAck(a pushAckMsg) []byte {
	buf := binary.BigEndian.AppendUint64(nil, a.Seq)
	if a.Applied {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func unmarshalPushAck(b []byte) (pushAckMsg, error) {
	d := &decoder{buf: b}
	a := pushAckMsg{Seq: d.u64("push-ack"), Applied: d.u8("push-ack") != 0}
	return a, d.done("push-ack")
}

// nonceLen is the challenge nonce size. 32 random bytes make nonce
// reuse (and therefore MAC replay) negligible over any deployment
// lifetime.
const nonceLen = 32

// challengeMsg carries the coordinator's auth nonce.
func marshalChallenge(nonce []byte) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(nonce)))
	return append(buf, nonce...)
}

func unmarshalChallenge(b []byte) ([]byte, error) {
	d := &decoder{buf: b}
	nonce := append([]byte(nil), d.bytes("challenge")...)
	if err := d.done("challenge"); err != nil {
		return nil, err
	}
	if len(nonce) != nonceLen {
		return nil, fmt.Errorf("coord: challenge nonce is %d bytes, want %d", len(nonce), nonceLen)
	}
	return nonce, nil
}

// authMsg answers a challenge with the MAC.
func marshalAuth(mac []byte) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(mac)))
	return append(buf, mac...)
}

func unmarshalAuth(b []byte) ([]byte, error) {
	d := &decoder{buf: b}
	mac := append([]byte(nil), d.bytes("auth")...)
	return mac, d.done("auth")
}

// authMAC is the proof of secret knowledge: HMAC-SHA256 keyed by the
// shared secret over nonce‖name. Binding the agent name into the MAC
// stops a snooped handshake from being replayed under another
// identity (the nonce already stops replaying it at all).
func authMAC(secret string, nonce []byte, name string) []byte {
	m := hmac.New(sha256.New, []byte(secret))
	m.Write(nonce)
	m.Write([]byte(name))
	return m.Sum(nil)
}

// Rejection codes carried by msgError.
const (
	errCodeAuth    uint16 = 1 // bad or missing credentials
	errCodeRate    uint16 = 2 // per-remote rate limit tripped
	errCodeVersion uint16 = 3 // negotiated version cannot satisfy policy
)

// errorMsg is the versioned rejection frame: the speaker's protocol
// version (so even a refused dialer learns what the coordinator
// speaks), a machine-readable code, and human-readable text.
type errorMsg struct {
	Version uint16
	Code    uint16
	Text    string
}

func marshalError(e errorMsg) []byte {
	buf := binary.BigEndian.AppendUint16(nil, e.Version)
	buf = binary.BigEndian.AppendUint16(buf, e.Code)
	return appendStr(buf, e.Text)
}

func unmarshalError(b []byte) (errorMsg, error) {
	d := &decoder{buf: b}
	e := errorMsg{Version: d.u16("error"), Code: d.u16("error"), Text: d.str("error")}
	return e, d.done("error")
}

// contributionToPush converts a tsstore Contribution into its wire
// form; digest marshaling cannot fail today but the signature keeps
// room for future digest versions.
func contributionToPush(path string, c tsstore.Contribution) (pushMsg, error) {
	p := pushMsg{Seq: c.Seq, Path: path, Total: c.Total, Errs: c.Errors, Points: c.Points}
	if c.Digest != nil {
		blob, err := c.Digest.MarshalBinary()
		if err != nil {
			return pushMsg{}, err
		}
		p.DigestBinary = blob
	}
	return p, nil
}

// pushToContribution rebuilds the Contribution a push carried.
func pushToContribution(p pushMsg) (tsstore.Contribution, error) {
	c := tsstore.Contribution{Seq: p.Seq, Total: p.Total, Errors: p.Errs, Points: p.Points}
	if len(p.DigestBinary) > 0 {
		d, err := tsstore.UnmarshalDigest(p.DigestBinary)
		if err != nil {
			return tsstore.Contribution{}, err
		}
		c.Digest = d
	}
	return c, nil
}
