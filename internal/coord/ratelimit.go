package coord

import (
	"sync"
	"time"
)

// DefaultRateBurst is the token-bucket depth when a rate is configured
// without an explicit burst: enough for a small agent fleet behind one
// NAT to register together, small enough that a dialer loop trips the
// limit within a second.
const DefaultRateBurst = 5

// rateLimiter is a per-key token bucket family on the control-plane
// clock. Keys are remote hosts (address minus port), so one
// misbehaving machine throttles only itself. A nil limiter allows
// everything — rates are opt-in.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket depth

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Duration
}

// newRateLimiter builds a limiter, or nil when rate is unset.
func newRateLimiter(rate, burst float64) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = DefaultRateBurst
	}
	return &rateLimiter{rate: rate, burst: burst, buckets: map[string]*tokenBucket{}}
}

// allow takes one token from key's bucket at the given clock reading,
// reporting whether one was available. New keys start with a full
// bucket.
func (l *rateLimiter) allow(key string, now time.Duration) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if now > b.last {
		b.tokens += l.rate * (now - b.last).Seconds()
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
