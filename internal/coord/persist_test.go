package coord

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	pathload "repro"
	"repro/internal/archive"
	"repro/internal/tsstore"
)

// TestLeaseSnapshotCodec pins the durable lease-snapshot encoding.
func TestLeaseSnapshotCodec(t *testing.T) {
	cases := []LeaseSnapshot{
		{},
		{Clock: 5 * time.Second, Agents: []string{"a1", "a2"}},
		{
			Clock:  time.Minute,
			Agents: []string{"a1"},
			Owners: []OwnerGroup{
				{Paths: []string{"p00"}, Owner: "a1"},
				{Paths: []string{"p01", "p02"}, Owner: "a1"},
			},
		},
	}
	for i, s := range cases {
		got, err := unmarshalLeaseSnapshot(marshalLeaseSnapshot(s))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("case %d: roundtrip %+v != %+v", i, got, s)
		}
	}
	if _, err := unmarshalLeaseSnapshot([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated snapshot decoded")
	}
}

// TestRestoreLeases: a snapshot taken from one State reinstates into a
// fresh State with the same configuration — same owners, fresh TTLs,
// and a subsequent Tick is a no-op (no steal storm). Entries that no
// longer fit the configuration are dropped with an explicit line.
func TestRestoreLeases(t *testing.T) {
	cfg := Config{
		Paths:     []string{"p00", "p01", "p02"},
		Conflicts: map[string][]string{"p01": {"p02"}},
		TTL:       10 * time.Second,
	}
	st1, err := NewState(cfg)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	st1.Register("a1", 0)
	st1.Register("a2", 0)
	st1.Tick(time.Second)
	snap := st1.LeaseSnapshot(2 * time.Second)
	if len(snap.Owners) != 2 || len(snap.Agents) != 2 {
		t.Fatalf("snapshot %+v", snap)
	}

	st2, err := NewState(cfg)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	lines := st2.RestoreLeases(snap, 100*time.Second)
	for _, l := range lines {
		if strings.Contains(l, "drop") {
			t.Fatalf("clean restore dropped state: %q", l)
		}
	}
	for _, p := range cfg.Paths {
		if st2.Owner(p) != st1.Owner(p) {
			t.Fatalf("%s owner %q after restore, want %q", p, st2.Owner(p), st1.Owner(p))
		}
	}
	// Restored agents carry a fresh TTL: the next tick neither expires
	// nor rebalances anything.
	if post := st2.Tick(101 * time.Second); len(post) != 0 {
		t.Fatalf("tick after restore churned leases: %v", post)
	}

	// A snapshot whose group shape no longer exists drops explicitly.
	st3, _ := NewState(Config{Paths: []string{"p00", "p01", "p02"}})
	lines = st3.RestoreLeases(snap, 0)
	var dropped bool
	for _, l := range lines {
		dropped = dropped || strings.Contains(l, "no matching conflict group")
	}
	if !dropped {
		t.Fatalf("group-shape mismatch not reported: %v", lines)
	}
	if st3.Owner("p00") == "" {
		t.Fatal("still-matching singleton group should restore")
	}

	// An owner missing from the agent list drops explicitly too.
	st4, _ := NewState(cfg)
	orphan := snap
	orphan.Agents = []string{"a1"}
	lines = st4.RestoreLeases(orphan, 0)
	dropped = false
	for _, l := range lines {
		dropped = dropped || strings.Contains(l, "owner not restored")
	}
	if st1.Owner("p00") != st1.Owner("p01") && !dropped {
		t.Fatalf("orphaned owner not reported: %v", lines)
	}
}

// mkContribution fabricates a contribution with a digest.
func mkContribution(seq, total uint64) tsstore.Contribution {
	st := tsstore.New(tsstore.Config{})
	for i := uint64(0); i < total; i++ {
		st.Observe(pathload.Sample{
			Path:  "p",
			Round: int(i),
			At:    time.Duration(i) * time.Second,
			Result: pathload.Result{
				Lo: 1e6 * float64(i+1), Hi: 2e6 * float64(i+1),
				Bits: 1000, Elapsed: time.Second,
			},
		})
	}
	return tsstore.Contribution{
		Seq:    seq,
		Total:  total,
		Errors: 0,
		Points: st.Snapshot("p"),
		Digest: st.DigestSnapshot("p"),
	}
}

// TestLogRoundtrip drives the archive-backed Persister through its
// full life cycle: save, reopen from the WAL tail, seal, reopen from
// the checkpoint, and a corrupt checkpoint falling back to a full
// sealed replay — every route recovering the same latest-per-key
// state.
func TestLogRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l1, rep, err := OpenLog(dir, archive.Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if rep.Segments != 0 || rep.TailRecords != 0 {
		t.Fatalf("fresh log report %+v", rep)
	}
	snapA := LeaseSnapshot{Clock: time.Second, Agents: []string{"a1"},
		Owners: []OwnerGroup{{Paths: []string{"p00"}, Owner: "a1"}}}
	snapB := LeaseSnapshot{Clock: 2 * time.Second, Agents: []string{"a1", "a2"},
		Owners: []OwnerGroup{{Paths: []string{"p00"}, Owner: "a2"}}}
	if err := l1.SaveLeases(snapA); err != nil {
		t.Fatal(err)
	}
	if err := l1.SaveContribution("a1", "p00", mkContribution(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l1.SaveContribution("a1", "p00", mkContribution(2, 5)); err != nil {
		t.Fatal(err)
	}
	if err := l1.SaveContribution("a2", "p01", mkContribution(7, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l1.SaveLeases(snapB); err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(l *Log, what string) {
		t.Helper()
		rs, problems := l.Restore()
		if len(problems) != 0 {
			t.Fatalf("%s: problems %v", what, problems)
		}
		if !rs.HaveLeases || !reflect.DeepEqual(rs.Leases, snapB) {
			t.Fatalf("%s: leases %+v", what, rs.Leases)
		}
		if len(rs.Contributions) != 2 {
			t.Fatalf("%s: %d contributions", what, len(rs.Contributions))
		}
		c0 := rs.Contributions[0]
		if c0.Agent != "a1" || c0.Path != "p00" || c0.C.Seq != 2 || c0.C.Total != 5 {
			t.Fatalf("%s: latest-per-key lost: %+v", what, c0)
		}
		if got := c0.C.Digest.Quantile(0.5); got <= 0 {
			t.Fatalf("%s: digest did not survive: median %v", what, got)
		}
		c1 := rs.Contributions[1]
		if c1.Agent != "a2" || c1.Path != "p01" || c1.C.Seq != 7 {
			t.Fatalf("%s: second key: %+v", what, c1)
		}
	}

	// Route 1: WAL tail replay.
	l2, rep2, err := OpenLog(dir, archive.Options{})
	if err != nil {
		t.Fatalf("OpenLog(2): %v", err)
	}
	if rep2.TailRecords != 5 || rep2.Segments != 0 {
		t.Fatalf("tail-replay report %+v", rep2)
	}
	check(l2, "tail replay")
	if err := l2.Archive().Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	l2.Close()

	// Route 2: checkpoint seed, sealed records skipped.
	l3, rep3, err := OpenLog(dir, archive.Options{})
	if err != nil {
		t.Fatalf("OpenLog(3): %v", err)
	}
	if rep3.Segments != 1 || rep3.SealedRecords != 0 || rep3.CheckpointCorrupt {
		t.Fatalf("checkpoint-seed report %+v", rep3)
	}
	check(l3, "checkpoint seed")
	l3.Close()

	// Route 3: a foreign (undecodable) checkpoint forces — and is
	// explicitly reported as — a full sealed replay.
	dir2 := t.TempDir()
	a, _, err := archive.Open(dir2, archive.Options{Checkpoint: func() []byte { return []byte("junk") }})
	if err != nil {
		t.Fatal(err)
	}
	lw := &Log{contribs: map[string][]byte{}}
	lw.a = a
	if err := lw.SaveLeases(snapB); err != nil {
		t.Fatal(err)
	}
	if err := lw.SaveContribution("a1", "p00", mkContribution(2, 5)); err != nil {
		t.Fatal(err)
	}
	if err := lw.SaveContribution("a2", "p01", mkContribution(7, 3)); err != nil {
		t.Fatal(err)
	}
	if err := a.Seal(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	l4, rep4, err := OpenLog(dir2, archive.Options{})
	if err != nil {
		t.Fatalf("OpenLog(4): %v", err)
	}
	if !rep4.CheckpointCorrupt || rep4.SealedRecords != 3 {
		t.Fatalf("corrupt-checkpoint report %+v", rep4)
	}
	check(l4, "sealed replay fallback")
	l4.Close()
}

// TestCoordinatorRestartRecovery is the coord-layer acceptance test: a
// coordinator persisting through an archive dies and is rebuilt from
// it while its agents keep running. After the restart the agents
// re-attach to their prior conflict groups (no steal, no expiry), and
// the federated history is continuous — identical to the pre-restart
// snapshot until the agents push post-restart samples on top.
func TestCoordinatorRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	coordCfg := Config{
		Paths: []string{"p00", "p01"},
		TTL:   2 * time.Second,
		Epoch: 50 * time.Millisecond,
	}

	log1, _, err := OpenLog(dir, archive.Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	srv1, err := NewServer(ServerConfig{Coord: coordCfg, AutoTick: true, Persist: log1})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv1.Serve(ln1)

	// Agents dial through an indirection so they can follow the
	// coordinator onto its post-restart listener.
	var addrMu sync.Mutex
	addr := ln1.Addr().String()
	dial := func() (net.Conn, error) {
		addrMu.Lock()
		a := addr
		addrMu.Unlock()
		return net.Dial("tcp", a)
	}
	newAgent := func(name string) *Agent {
		a, err := NewAgent(AgentConfig{
			Dial: dial,
			Name: name,
			Provider: func(string) (pathload.ProberFactory, error) {
				return func() (pathload.Prober, error) { return &stubProber{avail: 5e6}, nil }, nil
			},
			Heartbeat:   40 * time.Millisecond,
			PushEvery:   50 * time.Millisecond,
			DialBackoff: 20 * time.Millisecond,
			Monitor: pathload.MonitorConfig{
				Interval: 5 * time.Millisecond,
				Config:   pathload.Config{PacketsPerStream: 8, StreamsPerFleet: 3, DisableInitProbe: true},
			},
		})
		if err != nil {
			t.Fatalf("NewAgent(%s): %v", name, err)
		}
		return a
	}
	a1, a2 := newAgent("a1"), newAgent("a2")
	go a1.Run()
	go a2.Run()
	defer a1.Stop()
	defer a2.Stop()

	waitFor(t, "split ownership with federated pushes", func() bool {
		o0, o1 := srv1.Owner("p00"), srv1.Owner("p01")
		if o0 == "" || o1 == "" || o0 == o1 {
			return false
		}
		c0, ok0 := srv1.Federation().Contribution(o0, "p00")
		c1, ok1 := srv1.Federation().Contribution(o1, "p01")
		return ok0 && ok1 && c0.Total >= 2 && c1.Total >= 2
	})
	if n, perr := srv1.PersistErrs(); n != 0 {
		t.Fatalf("persist errors before restart: %d (%v)", n, perr)
	}

	// Kill the coordinator. Close drains every handler first, so the
	// archive holds exactly what the federation held.
	srv1.Close()
	ln1.Close()
	owners := map[string]string{"p00": srv1.Owner("p00"), "p01": srv1.Owner("p01")}
	before := srv1.Federation().Snapshot()
	log1.Close()

	// Rebuild from the archive.
	log2, _, err := OpenLog(dir, archive.Options{})
	if err != nil {
		t.Fatalf("OpenLog(2): %v", err)
	}
	defer log2.Close()
	rs, problems := log2.Restore()
	if len(problems) != 0 {
		t.Fatalf("restore problems: %v", problems)
	}
	if !rs.HaveLeases {
		t.Fatal("no lease snapshot recovered")
	}
	srv2, err := NewServer(ServerConfig{Coord: coordCfg, AutoTick: true, Persist: log2, Restore: &rs})
	if err != nil {
		t.Fatalf("NewServer(2): %v", err)
	}
	defer srv2.Close()

	// Before any agent reconnects: leases and federated history are
	// back, byte-continuous with the pre-restart state.
	for p, o := range owners {
		if got := srv2.Owner(p); got != o {
			t.Fatalf("%s owner %q after restore, want %q", p, got, o)
		}
	}
	restored := srv2.Federation().Snapshot()
	for p := range owners {
		bt, be := before.Totals(p)
		rt, re := restored.Totals(p)
		if bt != rt || be != re {
			t.Fatalf("%s: restored totals (%d, %d) != pre-restart (%d, %d)", p, rt, re, bt, be)
		}
	}

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen(2): %v", err)
	}
	go srv2.Serve(ln2)
	addrMu.Lock()
	addr = ln2.Addr().String()
	addrMu.Unlock()

	// Agents re-attach and history grows past the restored totals.
	waitFor(t, "post-restart pushes on both paths", func() bool {
		snap := srv2.Federation().Snapshot()
		for p := range owners {
			bt, _ := before.Totals(p)
			nt, _ := snap.Totals(p)
			if nt <= bt {
				return false
			}
		}
		return true
	})

	// Re-attachment must not have churned the assignment: no steals, no
	// expiries — the restored leases simply resumed.
	for _, line := range srv2.Transcript() {
		if strings.Contains(line, "steal") || strings.Contains(line, "expire") {
			t.Fatalf("restart churned leases: %q", line)
		}
	}
	for p, o := range owners {
		if got := srv2.Owner(p); got != o {
			t.Fatalf("%s owner %q after re-attach, want %q", p, got, o)
		}
	}
	if n, perr := srv2.PersistErrs(); n != 0 {
		t.Fatalf("persist errors after restart: %d (%v)", n, perr)
	}

	// The archive the two coordinator lives produced verifies clean.
	a1.Stop()
	a2.Stop()
	srv2.Close()
	rep, err := archive.Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("coordinator archive fails verify: %v", rep.Problems)
	}
}
