package coord

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestTwoProcessSmoke is the real-deployment check: build the actual
// pathload-coord and pathload binaries, run a coordinator and one
// -agent as separate processes over loopback, and scrape merged
// samples for the agent's sim paths from the coordinator's /metrics.
// It is skipped under -short (it compiles two binaries and runs real
// measurements).
func TestTwoProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process smoke test skipped in -short mode")
	}
	bin := t.TempDir()
	for _, pkg := range []string{"./cmd/pathload-coord", "./cmd/pathload"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	paths := []string{"sim:0.4@3", "sim:0.7@5"}
	coordCmd := exec.Command(filepath.Join(bin, "pathload-coord"),
		"-listen", "127.0.0.1:0",
		"-export", "127.0.0.1:0",
		"-paths", strings.Join(paths, ","),
		"-ttl", "2s",
		"-epoch", "200ms",
	)
	coordOut, err := coordCmd.StdoutPipe()
	if err != nil {
		t.Fatalf("coord stdout: %v", err)
	}
	coordCmd.Stderr = coordCmd.Stdout
	if err := coordCmd.Start(); err != nil {
		t.Fatalf("starting pathload-coord: %v", err)
	}
	defer func() {
		coordCmd.Process.Kill()
		coordCmd.Wait()
	}()

	// The coordinator announces its bound addresses on stdout; with
	// port 0 that is the only way to learn them.
	controlRe := regexp.MustCompile(`control listening on ([0-9.:]+)`)
	exportRe := regexp.MustCompile(`exporting federated store on (http://[0-9.:]+/)`)
	var controlAddr, exportURL string
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(coordOut)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	for controlAddr == "" || exportURL == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("pathload-coord exited before announcing its addresses")
			}
			if m := controlRe.FindStringSubmatch(line); m != nil {
				controlAddr = m[1]
			}
			if m := exportRe.FindStringSubmatch(line); m != nil {
				exportURL = m[1]
			}
		case <-deadline:
			t.Fatalf("timed out waiting for pathload-coord to announce its addresses")
		}
	}
	go func() { // keep draining so the child never blocks on stdout
		for range lines {
		}
	}()

	agentCmd := exec.Command(filepath.Join(bin, "pathload"),
		"-agent", controlAddr,
		"-agent-name", "smoke-a1",
		"-interval", "50ms",
		"-k", "40",
		"-n", "8",
	)
	agentLog := &strings.Builder{}
	agentCmd.Stdout = agentLog
	agentCmd.Stderr = agentLog
	if err := agentCmd.Start(); err != nil {
		t.Fatalf("starting pathload -agent: %v", err)
	}
	defer func() {
		agentCmd.Process.Kill()
		agentCmd.Wait()
	}()

	// Scrape the coordinator until every path shows merged samples.
	want := map[string]bool{}
	for _, p := range paths {
		want[fmt.Sprintf("pathload_availbw_samples_total{path=%q}", p)] = true
	}
	scrapeDeadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(scrapeDeadline) {
			t.Fatalf("timed out waiting for merged samples on %s/metrics\nagent log:\n%s", exportURL, agentLog.String())
		}
		time.Sleep(250 * time.Millisecond)
		resp, err := http.Get(exportURL + "metrics")
		if err != nil {
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			continue
		}
		missing := false
		for _, line := range strings.Split(string(body), "\n") {
			for prefix := range want {
				if strings.HasPrefix(line, prefix) {
					var v float64
					if _, err := fmt.Sscanf(line[len(prefix):], " %g", &v); err == nil && v >= 1 {
						delete(want, prefix)
					}
				}
			}
		}
		for range want {
			missing = true
		}
		if !missing {
			break
		}
	}
}
