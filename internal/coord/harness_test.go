package coord

import (
	"flag"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tsstore"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// fakeAgent drives the raw control protocol over a real loopback
// connection, one request in flight at a time — the scripted stand-in
// for `pathload -agent` that makes the harness deterministic.
type fakeAgent struct {
	t    *testing.T
	name string
	conn net.Conn
}

// dialAgent connects, registers, and verifies the handshake.
func dialAgent(t *testing.T, addr, name string) *fakeAgent {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("%s: dial: %v", name, err)
	}
	a := &fakeAgent{t: t, name: name, conn: conn}
	if err := writeFrame(conn, msgHello, marshalHello(helloMsg{Min: VersionMin, Max: Version, Name: name})); err != nil {
		t.Fatalf("%s: hello: %v", name, err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil || typ != msgHelloAck {
		t.Fatalf("%s: hello answer = %v, %v", name, typ, err)
	}
	ack, err := unmarshalHelloAck(payload)
	if err != nil || ack.Version != Version {
		t.Fatalf("%s: hello-ack = %+v, %v", name, ack, err)
	}
	return a
}

// beat heartbeats and returns the assignment answer.
func (a *fakeAgent) beat(seq uint64) assignMsg {
	a.t.Helper()
	if err := writeFrame(a.conn, msgHeartbeat, marshalHeartbeat(heartbeatMsg{Seq: seq})); err != nil {
		a.t.Fatalf("%s: heartbeat: %v", a.name, err)
	}
	typ, payload, err := readFrame(a.conn)
	if err != nil {
		a.t.Fatalf("%s: heartbeat answer: %v", a.name, err)
	}
	if typ == msgBye {
		a.t.Fatalf("%s: coordinator said bye to a live agent", a.name)
	}
	asg, err := unmarshalAssign(payload)
	if err != nil {
		a.t.Fatalf("%s: assign: %v", a.name, err)
	}
	return asg
}

// push sends one contribution and returns whether it was applied.
func (a *fakeAgent) push(path string, c tsstore.Contribution) bool {
	a.t.Helper()
	msg, err := contributionToPush(path, c)
	if err != nil {
		a.t.Fatalf("%s: contributionToPush(%s): %v", a.name, path, err)
	}
	if err := writeFrame(a.conn, msgPush, marshalPush(msg)); err != nil {
		a.t.Fatalf("%s: push %s: %v", a.name, path, err)
	}
	typ, payload, err := readFrame(a.conn)
	if err != nil || typ != msgPushAck {
		a.t.Fatalf("%s: push answer = %v, %v", a.name, typ, err)
	}
	ack, err := unmarshalPushAck(payload)
	if err != nil || ack.Seq != c.Seq {
		a.t.Fatalf("%s: push-ack = %+v, %v (want seq %d)", a.name, ack, err, c.Seq)
	}
	return ack.Applied
}

// kill drops the connection without a bye — the crashed-agent case.
func (a *fakeAgent) kill() { a.conn.Close() }

// scriptedContribution builds deterministic measurement history for
// (agent, path): `rounds` points with agent- and path-distinct values.
func scriptedContribution(agent, path string, rounds int, seq uint64) tsstore.Contribution {
	base := 1e6 * float64(1+int(agent[len(agent)-1]-'0'))
	off := 1e5 * float64(int(path[len(path)-1]-'0'))
	c := tsstore.Contribution{Seq: seq, Digest: tsstore.NewDigest(16)}
	at := time.Duration(0)
	for r := 0; r < rounds; r++ {
		lo := base + off + float64(r)*1e4
		hi := lo + 2e5
		c.Points = append(c.Points, tsstore.Point{
			Round: r, At: at, Span: 500 * time.Millisecond, Lo: lo, Hi: hi, Bits: 1e4,
		})
		c.Digest.Add((lo + hi) / 2)
		at += time.Second
	}
	c.Total = uint64(rounds)
	return c
}

// TestHarnessKillRebalanceMerge is the control plane's pinned
// end-to-end scenario: three agents over loopback TCP against a
// coordinator on a scripted clock — grants, steals on join, one agent
// killed mid-run and expired exactly at its TTL, its group re-granted
// within one tick, the dead agent re-registering, and contributions
// from all three federating — with the whole observable record
// (transcript, per-beat assignments, push outcomes, /series, /metrics)
// byte-identical to the committed golden. Run with -update to regolden
// after an intentional behavior change.
func TestHarnessKillRebalanceMerge(t *testing.T) {
	var clock atomic.Int64
	setClock := func(d time.Duration) { clock.Store(int64(d)) }

	srv, err := NewServer(ServerConfig{
		Coord: Config{
			Paths: []string{"p00", "p01", "p02", "p03", "p04", "p05"},
			Conflicts: map[string][]string{
				"p00": {"p01"},
				"p02": {"p03"},
			},
			TTL:    5 * time.Second,
			Epoch:  2 * time.Second,
			Budget: 12e6,
		},
		Store: tsstore.Config{Capacity: 16, DigestSize: 16},
		Now:   func() time.Duration { return time.Duration(clock.Load()) },
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	var report strings.Builder
	event := func(format string, args ...any) {
		fmt.Fprintf(&report, format+"\n", args...)
	}
	recordAssign := func(name string, asg assignMsg) {
		var leases []string
		for _, l := range asg.Leases {
			leases = append(leases, fmt.Sprintf("g%d:%s", l.Group, l.Path))
		}
		event("assign %s budget=%.0f [%s]", name, asg.Budget, strings.Join(leases, " "))
	}
	tick := func() {
		for _, line := range srv.Tick() {
			event("tick: %s", line)
		}
	}

	// t=0: the first agent gets the whole table.
	setClock(0)
	a1 := dialAgent(t, addr, "a1")
	tick()
	recordAssign("a1", a1.beat(1))

	// t=1s: two more agents join; the balancer steals whole groups.
	setClock(1 * time.Second)
	a2 := dialAgent(t, addr, "a2")
	a3 := dialAgent(t, addr, "a3")
	tick()
	recordAssign("a1", a1.beat(2))
	recordAssign("a2", a2.beat(1))
	recordAssign("a3", a3.beat(1))

	// Everyone pushes its first contributions.
	setClock(1500 * time.Millisecond)
	event("push a1 p04 applied=%v", a1.push("p04", scriptedContribution("a1", "p04", 3, 1)))
	event("push a1 p05 applied=%v", a1.push("p05", scriptedContribution("a1", "p05", 2, 1)))
	event("push a2 p00 applied=%v", a2.push("p00", scriptedContribution("a2", "p00", 2, 1)))
	event("push a2 p01 applied=%v", a2.push("p01", scriptedContribution("a2", "p01", 1, 1)))
	event("push a3 p02 applied=%v", a3.push("p02", scriptedContribution("a3", "p02", 2, 1)))
	event("push a3 p03 applied=%v", a3.push("p03", scriptedContribution("a3", "p03", 2, 1)))

	// t=2.5s, 3.5s: steady-state beats; a2 grows p00's series, and its
	// exact re-delivery must be a no-op.
	setClock(2500 * time.Millisecond)
	a1.beat(3)
	a2.beat(2)
	a3.beat(2)
	setClock(3500 * time.Millisecond)
	a1.beat(4)
	a2.beat(3)
	a3.beat(3)
	grown := scriptedContribution("a2", "p00", 4, 2)
	event("push a2 p00 applied=%v", a2.push("p00", grown))
	event("repush a2 p00 applied=%v", a2.push("p00", grown))

	// a2 crashes. Its TTL runs out exactly at 3.5s + 5s = 8.5s; the
	// survivors keep beating.
	a2.kill()
	setClock(5500 * time.Millisecond)
	tick() // nothing: a2 is within TTL until 8.5s
	a1.beat(5)
	a3.beat(4)
	setClock(7500 * time.Millisecond)
	a1.beat(6)
	a3.beat(5)

	// t=8.5s: the tick at the exact TTL boundary expires a2 and
	// re-grants its group in the same epoch.
	setClock(8500 * time.Millisecond)
	tick()
	recordAssign("a1", a1.beat(7))
	recordAssign("a3", a3.beat(6))
	// The new owner of p00 starts its own series; the dead agent's
	// pushed history stays federated.
	event("push a1 p00 applied=%v", a1.push("p00", scriptedContribution("a1", "p00", 1, 1)))

	// t=9s: a2 comes back from the dead and the balancer re-spreads.
	setClock(9 * time.Second)
	a2b := dialAgent(t, addr, "a2")
	tick()
	recordAssign("a1", a1.beat(8))
	recordAssign("a2", a2b.beat(1))
	recordAssign("a3", a3.beat(7))

	// The complete decision log (registrations included), then the
	// federated scrape surface, byte-for-byte.
	fmt.Fprintf(&report, "== transcript ==\n%s\n", strings.Join(srv.Transcript(), "\n"))
	h := srv.Handler()
	for _, ep := range []string{"/coord", "/series", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", ep, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", ep, rec.Code)
		}
		fmt.Fprintf(&report, "== GET %s ==\n%s", ep, rec.Body.String())
	}

	full := "== events ==\n" + report.String()
	golden := filepath.Join("testdata", "harness.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(full), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run once with -update to create it): %v", err)
	}
	if full != string(want) {
		t.Fatalf("harness record deviates from golden %s:\n--- got ---\n%s\n--- want ---\n%s", golden, full, want)
	}
}
