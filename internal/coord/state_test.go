package coord

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stateConfig is the fixture most state tests share: six paths, two
// two-path conflict groups and two singletons, 5s TTL.
func stateConfig() Config {
	return Config{
		Paths: []string{"p00", "p01", "p02", "p03", "p04", "p05"},
		Conflicts: map[string][]string{
			"p00": {"p01"},
			"p02": {"p03"},
		},
		TTL:    5 * time.Second,
		Epoch:  2 * time.Second,
		Budget: 12e6,
	}
}

// op is one scripted step of a lease state machine table case.
type op struct {
	at       time.Duration
	register string
	beat     string
	tick     bool
	// wantLines, when non-nil, must equal the tick's transcript output
	// exactly (grant/steal/expire decisions at exact TTL ticks).
	wantLines []string
	// wantOwners, when non-nil, is checked after the step: group index
	// → owner.
	wantOwners map[int]string
	// wantBeatErr expects the beat to fail with ErrUnknownAgent.
	wantBeatErr bool
}

// TestLeaseStateMachine is the table-driven coverage of grant, renew,
// expire, steal, and reassignment-after-death — each at exact clock
// ticks, since Tick is the only lease mutator and expiry is defined as
// now − lastBeat ≥ TTL.
func TestLeaseStateMachine(t *testing.T) {
	const s = time.Second
	cases := []struct {
		name string
		ops  []op
	}{
		{
			name: "first agent gets everything",
			ops: []op{
				{at: 0, register: "a1"},
				{at: 0, tick: true, wantLines: []string{
					"0s grant g0[p00 p01] -> a1",
					"0s grant g1[p02 p03] -> a1",
					"0s grant g2[p04] -> a1",
					"0s grant g3[p05] -> a1",
				}, wantOwners: map[int]string{0: "a1", 1: "a1", 2: "a1", 3: "a1"}},
			},
		},
		{
			name: "second agent steals down to balance, third rebalances again",
			ops: []op{
				{at: 0, register: "a1"},
				{at: 0, tick: true},
				{at: 1 * s, register: "a2"},
				// a1 holds 6 paths, a2 zero. Moving g0 (size 2) needs
				// 6−0 > 2: yes. Then 4 vs 2: moving g1 (size 2) needs
				// 4−2 > 2: no — legal imbalance left alone, but the
				// singleton g2 (4−2 > 1) still moves.
				{at: 1 * s, tick: true, wantLines: []string{
					"1s steal g0[p00 p01] a1 -> a2",
					"1s steal g2[p04] a1 -> a2",
				}, wantOwners: map[int]string{0: "a2", 1: "a1", 2: "a2", 3: "a1"}},
				{at: 2 * s, register: "a3"},
				// Loads 3/3/0 (ties pick the smallest name): a1's g1
				// (size 2, 3−0 > 2) moves to a3. Then 1/3/2: a2's g0
				// (size 2, 3−1 > 2 fails) stays but its g2 (size 1,
				// 2 > 1) moves to a1. Then 2/2/2: balanced, stop.
				{at: 2 * s, tick: true, wantLines: []string{
					"2s steal g1[p02 p03] a1 -> a3",
					"2s steal g2[p04] a2 -> a1",
				}, wantOwners: map[int]string{0: "a2", 1: "a3", 2: "a1", 3: "a1"}},
			},
		},
		{
			name: "renewal holds leases at the TTL boundary, silence loses them",
			ops: []op{
				{at: 0, register: "a1"},
				{at: 0, register: "a2"},
				{at: 0, tick: true, wantOwners: map[int]string{0: "a1", 1: "a2", 2: "a1", 3: "a2"}},
				{at: 4 * s, beat: "a1"},
				// a2's last beat was 0s; at 4.999…s it is still live
				// (strict ≥ TTL), at exactly 5s it is dead.
				{at: 5*s - time.Nanosecond, tick: true, wantLines: []string{}},
				{at: 5 * s, tick: true, wantLines: []string{
					"5s expire a2 (last heartbeat 0s)",
					"5s grant g1[p02 p03] -> a1",
					"5s grant g3[p05] -> a1",
				}, wantOwners: map[int]string{0: "a1", 1: "a1", 2: "a1", 3: "a1"}},
				// The expired agent's beats now fail until it re-registers.
				{at: 5 * s, beat: "a2", wantBeatErr: true},
				{at: 5 * s, register: "a2"},
				{at: 5 * s, beat: "a2"},
			},
		},
		{
			name: "dead agent's groups reassign within one tick",
			ops: []op{
				{at: 0, register: "a1"},
				{at: 0, register: "a2"},
				{at: 0, register: "a3"},
				{at: 0, tick: true, wantOwners: map[int]string{0: "a1", 1: "a2", 2: "a3", 3: "a3"}},
				{at: 4 * s, beat: "a1"},
				{at: 4 * s, beat: "a3"},
				// a2 dies; the very next tick both expires it and
				// re-grants its group (to the least-loaded live agent,
				// tie → a1) — reassignment never needs a second epoch.
				{at: 6 * s, tick: true, wantLines: []string{
					"6s expire a2 (last heartbeat 0s)",
					"6s grant g1[p02 p03] -> a1",
				}, wantOwners: map[int]string{0: "a1", 1: "a1", 2: "a3", 3: "a3"}},
			},
		},
		{
			name: "all agents dead parks every lease",
			ops: []op{
				{at: 0, register: "a1"},
				{at: 0, tick: true},
				{at: 10 * s, tick: true, wantLines: []string{
					"10s expire a1 (last heartbeat 0s)",
				}, wantOwners: map[int]string{0: "", 1: "", 2: "", 3: ""}},
				{at: 11 * s, register: "a2"},
				{at: 11 * s, tick: true, wantOwners: map[int]string{0: "a2", 1: "a2", 2: "a2", 3: "a2"}},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := NewState(stateConfig())
			if err != nil {
				t.Fatalf("NewState: %v", err)
			}
			for i, o := range tc.ops {
				switch {
				case o.register != "":
					if err := st.Register(o.register, o.at); err != nil {
						t.Fatalf("op %d: Register(%s): %v", i, o.register, err)
					}
				case o.beat != "":
					_, err := st.Heartbeat(o.beat, o.at)
					if o.wantBeatErr != (err != nil) {
						t.Fatalf("op %d: Heartbeat(%s) err = %v, want error %v", i, o.beat, err, o.wantBeatErr)
					}
					if err != nil && !errors.Is(err, ErrUnknownAgent) {
						t.Fatalf("op %d: Heartbeat(%s) err = %v, want ErrUnknownAgent", i, o.beat, err)
					}
				case o.tick:
					lines := st.Tick(o.at)
					if o.wantLines != nil && !reflect.DeepEqual(lines, o.wantLines) && !(len(lines) == 0 && len(o.wantLines) == 0) {
						t.Fatalf("op %d: Tick(%v) transcript:\n%s\nwant:\n%s",
							i, o.at, strings.Join(lines, "\n"), strings.Join(o.wantLines, "\n"))
					}
				}
				if o.wantOwners != nil {
					for gi, want := range o.wantOwners {
						got := st.owner[gi]
						if got != want {
							t.Fatalf("op %d: group %d owner = %q, want %q", i, gi, got, want)
						}
					}
				}
			}
		})
	}
}

// TestLeaseNoDoubleGrant: across an adversarial schedule of churn, no
// path is ever owned by two agents, every owner is live, and all paths
// are owned whenever any agent is live — the invariants that make a
// lease a lease.
func TestLeaseNoDoubleGrant(t *testing.T) {
	st, err := NewState(stateConfig())
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	const s = time.Second
	names := []string{"a1", "a2", "a3", "a4"}
	for step := 0; step < 200; step++ {
		now := time.Duration(step) * s / 2
		// A deterministic but uneven schedule: agents register, beat at
		// different cadences, and drop out when their index bit pattern
		// says so.
		for i, n := range names {
			if step%(i+2) == 0 {
				if _, err := st.Heartbeat(n, now); err != nil {
					st.Register(n, now)
				}
			}
		}
		st.Tick(now)

		// Double-grant impossibility: the union of every live agent's
		// assignment must cover each path exactly once, agreeing with
		// Owner; dead agents must hold nothing.
		live := map[string]bool{}
		holders := map[string][]string{}
		for _, a := range st.Agents() {
			live[a] = true
			for _, l := range st.Assignment(a).Leases {
				holders[l.Path] = append(holders[l.Path], a)
			}
		}
		for _, p := range stateConfig().Paths {
			hs := holders[p]
			if len(hs) > 1 {
				t.Fatalf("step %d: path %s leased to %v simultaneously", step, p, hs)
			}
			o := st.Owner(p)
			if o == "" {
				if len(live) > 0 {
					t.Fatalf("step %d: path %s unowned while %d agents live", step, p, len(live))
				}
				continue
			}
			if !live[o] {
				t.Fatalf("step %d: path %s owned by dead agent %s", step, p, o)
			}
			if len(hs) != 1 || hs[0] != o {
				t.Fatalf("step %d: path %s holders %v disagree with owner %s", step, p, hs, o)
			}
		}
		// Conflict groups travel whole: members share one owner.
		for _, g := range st.Groups() {
			o := st.Owner(g[0])
			for _, p := range g[1:] {
				if st.Owner(p) != o {
					t.Fatalf("step %d: group %v split between %s and %s", step, g, o, st.Owner(p))
				}
			}
		}
	}
}

// TestLeaseBudgetShares: budget splits by leased-path count and sums
// to the configured fleet budget when everything is leased.
func TestLeaseBudgetShares(t *testing.T) {
	st, err := NewState(stateConfig())
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	st.Register("a1", 0)
	st.Register("a2", 0)
	st.Tick(0)
	var sum float64
	for _, a := range st.Agents() {
		asg := st.Assignment(a)
		want := 12e6 * float64(len(asg.Leases)) / 6
		if asg.Budget != want {
			t.Fatalf("agent %s budget = %v, want %v", a, asg.Budget, want)
		}
		sum += asg.Budget
	}
	if sum != 12e6 {
		t.Fatalf("budget shares sum to %v, want 12e6", sum)
	}
}

// TestStateValidation: duplicate and empty paths, and empty tables,
// are construction-time errors.
func TestStateValidation(t *testing.T) {
	if _, err := NewState(Config{}); err == nil {
		t.Fatalf("empty path table accepted")
	}
	if _, err := NewState(Config{Paths: []string{"a", "a"}}); err == nil {
		t.Fatalf("duplicate path accepted")
	}
	if _, err := NewState(Config{Paths: []string{"a", ""}}); err == nil {
		t.Fatalf("empty path name accepted")
	}
	if err := func() error {
		st, _ := NewState(Config{Paths: []string{"a"}})
		return st.Register("", 0)
	}(); err == nil {
		t.Fatalf("empty agent name accepted")
	}
}
