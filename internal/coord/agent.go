package coord

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	pathload "repro"
	"repro/internal/schedule"
	"repro/internal/tsstore"
)

// AgentConfig configures a fleet agent (`pathload -agent`).
type AgentConfig struct {
	// Coord is the coordinator's control address (host:port); Dial, when
	// non-nil, replaces net.Dial("tcp", Coord) — tests inject pipes.
	Coord string
	Dial  func() (net.Conn, error)

	// Name is the agent's fleet-unique identity. Required.
	Name string

	// Provider dials the measurement transport for a leased path: it
	// returns the ProberFactory the Monitor will (re)connect through.
	// Required.
	Provider func(path string) (pathload.ProberFactory, error)

	// Monitor is the template for the agent's Monitor: measurement
	// Config, Interval/Jitter/Seed, Workers, Reconnect. The agent owns
	// Rounds (always 0: leases run until revoked), Store (the agent's
	// local tsstore), Scheduler (wrapped in schedule.Budgeted when the
	// coordinator grants a budget), and Admission (a Stagger over
	// co-leased conflict groups).
	Monitor pathload.MonitorConfig

	// Store shapes the agent's local retention (ring capacity, digest
	// budget). Zero value = tsstore defaults. Contributions pushed to
	// the coordinator carry this retained window.
	Store tsstore.Config

	// LocalStore, when non-nil, is used instead of building a fresh
	// store from Store — the seam that lets `pathload -agent -archive`
	// hand the agent an archive-recovered store whose series resume
	// instead of rewinding. The agent takes ownership of writes; the
	// caller keeps read access.
	LocalStore *tsstore.Store

	// Secret is the shared authentication secret. Required when the
	// coordinator is configured with one; must match it.
	Secret string

	// Heartbeat overrides the heartbeat cadence; 0 derives it from the
	// coordinator's hello-ack as min(TTL/3, Epoch).
	Heartbeat time.Duration

	// PushEvery is the contribution push cadence; 0 pushes on every
	// heartbeat.
	PushEvery time.Duration

	// DialBackoff is the wait between failed control dials (default
	// 500 ms, doubling to 15 s).
	DialBackoff time.Duration

	// OnEvent, when non-nil, receives one-line agent life-cycle events
	// (connects, lease changes, push outcomes on failure).
	OnEvent func(line string)
}

// An Agent runs leased paths through a pathload.Monitor and pushes the
// resulting series to its coordinator. The control connection and the
// measurement plane fail independently: a dropped control session is
// re-dialed with backoff while the monitor keeps measuring, and a
// revoked lease stops only the affected paths.
type Agent struct {
	cfg   AgentConfig
	store *tsstore.Store

	stop     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	mon     *pathload.Monitor // current monitor, nil when no leases
	leases  []Lease           // what mon was built from
	budget  float64
	seq     map[string]uint64 // per-path push sequence
	lastTot map[string]uint64 // Totals at last push, for change detection
	monWG   sync.WaitGroup    // drains the current monitor's Results
}

// NewAgent validates cfg and builds the agent; Run drives it.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, errors.New("coord: agent needs a name")
	}
	if cfg.Provider == nil {
		return nil, errors.New("coord: agent needs a path provider")
	}
	if cfg.Dial == nil {
		if cfg.Coord == "" {
			return nil, errors.New("coord: agent needs a coordinator address")
		}
		addr := cfg.Coord
		cfg.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 500 * time.Millisecond
	}
	store := cfg.LocalStore
	if store == nil {
		store = tsstore.New(cfg.Store)
	}
	return &Agent{
		cfg:     cfg,
		store:   store,
		stop:    make(chan struct{}),
		seq:     map[string]uint64{},
		lastTot: map[string]uint64{},
	}, nil
}

// Store exposes the agent's local retention (scrape surface, tests).
func (a *Agent) Store() *tsstore.Store { return a.store }

// Stop asks Run to wind down: the control session closes, the monitor
// stops, and Run returns. Idempotent.
func (a *Agent) Stop() { a.stopOnce.Do(func() { close(a.stop) }) }

func (a *Agent) eventf(format string, args ...any) {
	if a.cfg.OnEvent != nil {
		a.cfg.OnEvent(fmt.Sprintf(format, args...))
	}
}

// Run is the agent main loop: dial the coordinator (with backoff),
// register, then heartbeat/push until the connection breaks, and start
// over — forever, until Stop. It returns nil after Stop.
func (a *Agent) Run() error {
	defer a.stopMonitor()
	backoff := a.cfg.DialBackoff
	for {
		select {
		case <-a.stop:
			return nil
		default:
		}
		err := a.session()
		if err == nil { // Stop closed the session cleanly
			return nil
		}
		if errors.Is(err, ErrRejected) {
			// A deliberate, versioned refusal: retrying would hammer a
			// coordinator that already said no.
			a.eventf("giving up: %v", err)
			return err
		}
		a.eventf("control session lost: %v (retry in %v)", err, backoff)
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-a.stop:
			t.Stop()
			return nil
		}
		backoff *= 2
		if max := 15 * time.Second; backoff > max {
			backoff = max
		}
	}
}

// session runs one control connection to completion: nil means Stop
// ended it, any error means dial again.
func (a *Agent) session() error {
	conn, err := a.cfg.Dial()
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()

	// Stop must be able to cut a session blocked in a read.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-a.stop:
			conn.Close()
		case <-done:
		}
	}()

	if err := writeFrame(conn, msgHello, marshalHello(helloMsg{Min: VersionMin, Max: Version, Name: a.cfg.Name})); err != nil {
		return err
	}
	t, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if t == msgChallenge {
		nonce, cerr := unmarshalChallenge(payload)
		if cerr != nil {
			return cerr
		}
		if a.cfg.Secret == "" {
			return fmt.Errorf("%w: coordinator requires a shared secret and this agent has none", ErrRejected)
		}
		if err := writeFrame(conn, msgAuth, marshalAuth(authMAC(a.cfg.Secret, nonce, a.cfg.Name))); err != nil {
			return err
		}
		if t, payload, err = readFrame(conn); err != nil {
			return err
		}
	}
	if t == msgError {
		e, eerr := unmarshalError(payload)
		if eerr != nil {
			return eerr
		}
		return fmt.Errorf("%w: %s (code %d, coordinator speaks v%d)", ErrRejected, e.Text, e.Code, e.Version)
	}
	if t != msgHelloAck {
		return fmt.Errorf("coord: expected hello-ack, got %v", t)
	}
	ack, err := unmarshalHelloAck(payload)
	if err != nil {
		return err
	}
	if _, err := Negotiate(ack.Version, ack.Version); err != nil {
		return err
	}

	heartbeat := a.cfg.Heartbeat
	if heartbeat <= 0 {
		heartbeat = ack.TTL / 3
		if ack.Epoch > 0 && ack.Epoch < heartbeat {
			heartbeat = ack.Epoch
		}
		if heartbeat <= 0 {
			heartbeat = time.Second
		}
	}
	pushEvery := a.cfg.PushEvery
	if pushEvery <= 0 {
		pushEvery = heartbeat
	}
	a.eventf("registered with %s (ttl %v, heartbeat %v)", conn.RemoteAddr(), ack.TTL, heartbeat)

	hbTick := time.NewTicker(heartbeat)
	defer hbTick.Stop()
	pushTick := time.NewTicker(pushEvery)
	defer pushTick.Stop()

	var hbSeq uint64
	// Beat immediately: the first assign is what starts measuring.
	if err := a.beat(conn, &hbSeq); err != nil {
		return err
	}
	for {
		select {
		case <-a.stop:
			writeFrame(conn, msgBye, nil)
			return nil
		case <-hbTick.C:
			if err := a.beat(conn, &hbSeq); err != nil {
				return err
			}
		case <-pushTick.C:
			if err := a.pushAll(conn); err != nil {
				return err
			}
		}
	}
}

// beat sends one heartbeat and reconciles the assign answer.
func (a *Agent) beat(conn net.Conn, seq *uint64) error {
	*seq++
	if err := writeFrame(conn, msgHeartbeat, marshalHeartbeat(heartbeatMsg{Seq: *seq})); err != nil {
		return err
	}
	t, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	switch t {
	case msgAssign:
		asg, err := unmarshalAssign(payload)
		if err != nil {
			return err
		}
		return a.reconcile(asg)
	case msgBye:
		// The coordinator expired us; re-register on a fresh session.
		return errors.New("coord: coordinator expired this agent")
	default:
		return fmt.Errorf("coord: expected assign, got %v", t)
	}
}

// pushAll pushes a contribution for every path whose series changed
// since the last push, in sorted order, over the strict
// request/response session.
func (a *Agent) pushAll(conn net.Conn) error {
	a.mu.Lock()
	paths := a.store.Paths() // sorted by the store
	type upd struct {
		path string
		c    tsstore.Contribution
	}
	var updates []upd
	for _, p := range paths {
		total, errs := a.store.Totals(p)
		if total == a.lastTot[p] {
			continue
		}
		a.seq[p]++
		c := tsstore.Contribution{
			Seq:    a.seq[p],
			Total:  total,
			Errors: errs,
			Points: a.store.Snapshot(p),
			Digest: a.store.DigestSnapshot(p),
		}
		a.lastTot[p] = total
		updates = append(updates, upd{p, c})
	}
	a.mu.Unlock()

	for _, u := range updates {
		msg, err := contributionToPush(u.path, u.c)
		if err != nil {
			a.eventf("push %s: %v", u.path, err)
			continue
		}
		if err := writeFrame(conn, msgPush, marshalPush(msg)); err != nil {
			return err
		}
		t, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		if t == msgBye {
			return errors.New("coord: coordinator expired this agent")
		}
		if t != msgPushAck {
			return fmt.Errorf("coord: expected push-ack, got %v", t)
		}
		if _, err := unmarshalPushAck(payload); err != nil {
			return err
		}
	}
	return nil
}

// sameLeases reports whether two lease sets are identical up to order.
func sameLeases(a, b []Lease) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(ls []Lease) []string {
		out := make([]string, len(ls))
		for i, l := range ls {
			out[i] = fmt.Sprintf("%d\x00%s", l.Group, l.Path)
		}
		sort.Strings(out)
		return out
	}
	ka, kb := key(a), key(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// reconcile applies an assignment: when the lease set or budget
// changed, the current monitor is stopped and a new one started over
// the new leases, resuming each path's round/clock counters from the
// local store so the series stay monotone.
func (a *Agent) reconcile(asg assignMsg) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	leases := asg.Leases
	if sameLeases(a.leases, leases) && a.budget == asg.Budget {
		return nil
	}
	a.stopMonitorLocked()
	a.leases = append([]Lease(nil), leases...)
	a.budget = asg.Budget
	if len(leases) == 0 {
		a.eventf("leases revoked; idle")
		return nil
	}

	cfg := a.cfg.Monitor
	cfg.Rounds = 0
	cfg.Store = a.store
	if asg.Budget > 0 {
		inner := cfg.Scheduler
		if inner == nil {
			inner = &schedule.Fixed{Interval: cfg.Interval, Jitter: cfg.Jitter, Seed: cfg.Seed}
		}
		cfg.Scheduler = &schedule.Budgeted{Inner: inner, Rate: asg.Budget}
	}
	// Paths sharing a conflict group must stagger locally — that is the
	// contract that lets the coordinator lease whole groups.
	byGroup := map[int][]string{}
	for _, l := range leases {
		byGroup[l.Group] = append(byGroup[l.Group], l.Path)
	}
	conflicts := map[string][]string{}
	for _, members := range byGroup {
		if len(members) < 2 {
			continue
		}
		for _, p := range members {
			for _, o := range members {
				if o != p {
					conflicts[p] = append(conflicts[p], o)
				}
			}
		}
	}
	if len(conflicts) > 0 {
		cfg.Admission = schedule.NewStagger(conflicts, cfg.Workers)
	}

	mon, err := pathload.NewMonitor(cfg)
	if err != nil {
		return fmt.Errorf("coord: building monitor: %w", err)
	}
	sorted := append([]Lease(nil), leases...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	var names []string
	for _, l := range sorted {
		factory, err := a.cfg.Provider(l.Path)
		if err != nil {
			return fmt.Errorf("coord: provider for %q: %w", l.Path, err)
		}
		round, at := tsstore.Resume(a.store, l.Path)
		if err := mon.AddPathFactoryResume(l.Path, factory, pathload.PathState{Round: round, At: at}); err != nil {
			return err
		}
		names = append(names, l.Path)
	}
	if err := mon.Start(); err != nil {
		return err
	}
	a.mon = mon
	// The Results channel must drain or sessions block; the store is
	// the sink of record, so the live stream is just discarded.
	results := mon.Results()
	a.monWG.Add(1)
	go func() {
		defer a.monWG.Done()
		for range results {
		}
	}()
	a.eventf("measuring %v (budget %.0f)", names, asg.Budget)
	return nil
}

// stopMonitor stops the current monitor (if any) and waits for it.
func (a *Agent) stopMonitor() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stopMonitorLocked()
}

func (a *Agent) stopMonitorLocked() {
	if a.mon == nil {
		return
	}
	a.mon.Stop()
	a.mon.Wait()
	a.mon = nil
	a.monWG.Wait()
}
