package coord

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/tsstore"
)

// TestProtoRoundTrips: every control message must survive
// marshal → frame → unframe → unmarshal unchanged.
func TestProtoRoundTrips(t *testing.T) {
	hello := helloMsg{Min: 1, Max: 3, Name: "agent-α"}
	ack := helloAckMsg{Version: 2, TTL: 10 * time.Second, Epoch: 2 * time.Second}
	hb := heartbeatMsg{Seq: 42}
	asg := assignMsg{
		Seq:    7,
		Budget: 12e6,
		Leases: []Lease{{Path: "p00", Group: 0}, {Path: "p01", Group: 0}, {Path: "p04", Group: 2}},
	}
	digest := tsstore.NewDigest(8)
	for _, v := range []float64{1e6, 2e6, 4e6, 4e6, 8e6} {
		digest.Add(v)
	}
	push := pushMsg{
		Seq:   3,
		Path:  "p00",
		Total: 9,
		Errs:  2,
		Points: []tsstore.Point{
			{Round: 0, At: 0, Span: time.Second, Lo: 3e6, Hi: 5e6, Bits: 1e5},
			{Round: 1, At: time.Second, Span: 2 * time.Second, Err: "transport lost"},
		},
	}
	blob, err := digest.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	push.DigestBinary = blob
	pushAck := pushAckMsg{Seq: 3, Applied: true}

	var buf bytes.Buffer
	frames := []struct {
		t       msgType
		payload []byte
	}{
		{msgHello, marshalHello(hello)},
		{msgHelloAck, marshalHelloAck(ack)},
		{msgHeartbeat, marshalHeartbeat(hb)},
		{msgAssign, marshalAssign(asg)},
		{msgPush, marshalPush(push)},
		{msgPushAck, marshalPushAck(pushAck)},
		{msgBye, nil},
	}
	for _, f := range frames {
		if err := writeFrame(&buf, f.t, f.payload); err != nil {
			t.Fatalf("writeFrame(%v): %v", f.t, err)
		}
	}

	readOne := func(want msgType) []byte {
		t.Helper()
		typ, payload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if typ != want {
			t.Fatalf("readFrame type = %v, want %v", typ, want)
		}
		return payload
	}

	if got, err := unmarshalHello(readOne(msgHello)); err != nil || got != hello {
		t.Fatalf("hello round-trip = %+v, %v; want %+v", got, err, hello)
	}
	if got, err := unmarshalHelloAck(readOne(msgHelloAck)); err != nil || got != ack {
		t.Fatalf("hello-ack round-trip = %+v, %v; want %+v", got, err, ack)
	}
	if got, err := unmarshalHeartbeat(readOne(msgHeartbeat)); err != nil || got != hb {
		t.Fatalf("heartbeat round-trip = %+v, %v; want %+v", got, err, hb)
	}
	if got, err := unmarshalAssign(readOne(msgAssign)); err != nil || !reflect.DeepEqual(got, asg) {
		t.Fatalf("assign round-trip = %+v, %v; want %+v", got, err, asg)
	}
	gotPush, err := unmarshalPush(readOne(msgPush))
	if err != nil || !reflect.DeepEqual(gotPush, push) {
		t.Fatalf("push round-trip = %+v, %v; want %+v", gotPush, err, push)
	}
	c, err := pushToContribution(gotPush)
	if err != nil {
		t.Fatalf("pushToContribution: %v", err)
	}
	if c.Digest == nil || c.Digest.Count() != digest.Count() || c.Digest.Quantile(0.5) != digest.Quantile(0.5) {
		t.Fatalf("push digest did not survive: %+v", c.Digest)
	}
	if got, err := unmarshalPushAck(readOne(msgPushAck)); err != nil || got != pushAck {
		t.Fatalf("push-ack round-trip = %+v, %v; want %+v", got, err, pushAck)
	}
	readOne(msgBye)
}

// TestProtoRejectsGarbage: structurally broken frames and payloads must
// error, never panic or misparse.
func TestProtoRejectsGarbage(t *testing.T) {
	// Wrong magic.
	if _, _, err := readFrame(bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef, 1, 0, 0, 0, 0})); err == nil {
		t.Fatalf("bad magic accepted")
	}
	// Oversized length prefix.
	over := []byte{0x53, 0x4c, 0x43, 0x50, 1, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := readFrame(bytes.NewReader(over)); err == nil {
		t.Fatalf("oversized frame accepted")
	}
	// Truncated payloads for every unmarshal.
	if _, err := unmarshalHello([]byte{0, 1}); err == nil {
		t.Fatalf("truncated hello accepted")
	}
	if _, err := unmarshalHello(marshalHello(helloMsg{Min: 5, Max: 1})); err == nil {
		t.Fatalf("inverted hello range accepted")
	}
	if _, err := unmarshalAssign([]byte{0, 0, 0}); err == nil {
		t.Fatalf("truncated assign accepted")
	}
	if _, err := unmarshalPush([]byte{1, 2, 3}); err == nil {
		t.Fatalf("truncated push accepted")
	}
	// Trailing junk must be detected too.
	withJunk := append(marshalHeartbeat(heartbeatMsg{Seq: 1}), 0xff)
	if _, err := unmarshalHeartbeat(withJunk); err == nil {
		t.Fatalf("heartbeat with trailing bytes accepted")
	}
	// A push whose digest blob is corrupt must fail conversion, not
	// poison the federation.
	p := pushMsg{Seq: 1, Path: "p", DigestBinary: []byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 9}}
	if _, err := pushToContribution(p); err == nil {
		t.Fatalf("corrupt digest blob accepted")
	}
}

// TestNegotiate mirrors the wire package's rule on the control plane.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		min, max uint16
		want     uint16
		ok       bool
	}{
		{1, 1, 1, true}, // legacy v1-only peer downgrades the session
		{1, 9, 2, true}, // newest common is our Version
		{2, 9, 2, true},
		{3, 9, 0, false},
		{0, 0, 0, false},
	}
	for _, c := range cases {
		got, err := Negotiate(c.min, c.max)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("Negotiate(%d, %d) = %d, %v; want %d, ok=%v", c.min, c.max, got, err, c.want, c.ok)
		}
	}
}
