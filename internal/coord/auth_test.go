package coord

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	pathload "repro"
)

// startServer spins up a server on loopback for raw-frame clients.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	if len(cfg.Coord.Paths) == 0 {
		cfg.Coord.Paths = []string{"p00"}
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

// sendHello dials and opens a session at the given version range,
// returning the first reply frame.
func sendHello(t *testing.T, addr, name string, min, max uint16) (net.Conn, msgType, []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := writeFrame(conn, msgHello, marshalHello(helloMsg{Min: min, Max: max, Name: name})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ft, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("first reply: %v", err)
	}
	return conn, ft, payload
}

// expectError asserts the frame is a versioned rejection with code.
func expectError(t *testing.T, ft msgType, payload []byte, code uint16) {
	t.Helper()
	if ft != msgError {
		t.Fatalf("expected error frame, got %v", ft)
	}
	e, err := unmarshalError(payload)
	if err != nil {
		t.Fatalf("unmarshalError: %v", err)
	}
	if e.Code != code || e.Version != Version {
		t.Fatalf("error frame %+v, want code %d version %d", e, code, Version)
	}
}

// TestAuthHandshake walks the challenge exchange at the frame level:
// the right MAC registers, the wrong one is refused with a versioned
// auth error and never reaches the lease machine.
func TestAuthHandshake(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{Secret: "sesame"})

	conn, ft, payload := sendHello(t, addr, "good", VersionMin, Version)
	defer conn.Close()
	if ft != msgChallenge {
		t.Fatalf("expected challenge, got %v", ft)
	}
	nonce, err := unmarshalChallenge(payload)
	if err != nil {
		t.Fatalf("unmarshalChallenge: %v", err)
	}
	if err := writeFrame(conn, msgAuth, marshalAuth(authMAC("sesame", nonce, "good"))); err != nil {
		t.Fatalf("auth: %v", err)
	}
	ft, payload, err = readFrame(conn)
	if err != nil {
		t.Fatalf("hello-ack: %v", err)
	}
	if ft != msgHelloAck {
		t.Fatalf("expected hello-ack, got %v", ft)
	}
	ack, err := unmarshalHelloAck(payload)
	if err != nil || ack.Version != Version {
		t.Fatalf("ack %+v (%v)", ack, err)
	}

	bad, ft, payload := sendHello(t, addr, "bad", VersionMin, Version)
	defer bad.Close()
	if ft != msgChallenge {
		t.Fatalf("expected challenge, got %v", ft)
	}
	nonce, _ = unmarshalChallenge(payload)
	if err := writeFrame(bad, msgAuth, marshalAuth(authMAC("wrong", nonce, "bad"))); err != nil {
		t.Fatalf("auth: %v", err)
	}
	ft, payload, err = readFrame(bad)
	if err != nil {
		t.Fatalf("rejection: %v", err)
	}
	expectError(t, ft, payload, errCodeAuth)

	for _, line := range srv.Transcript() {
		if strings.Contains(line, "register bad") {
			t.Fatalf("unauthenticated agent reached the lease machine: %q", line)
		}
	}
}

// TestAuthRequiresV2: a coordinator holding a secret refuses v1-only
// dialers with a version error — it cannot challenge them.
func TestAuthRequiresV2(t *testing.T) {
	_, addr := startServer(t, ServerConfig{Secret: "sesame"})
	conn, ft, payload := sendHello(t, addr, "old", 1, 1)
	defer conn.Close()
	expectError(t, ft, payload, errCodeVersion)
}

// TestAgentStopsAfterRejection: an agent with the wrong secret gets
// ErrRejected out of Run instead of a reconnect loop.
func TestAgentStopsAfterRejection(t *testing.T) {
	_, addr := startServer(t, ServerConfig{Secret: "sesame"})
	a, err := NewAgent(AgentConfig{
		Coord:  addr,
		Name:   "a1",
		Secret: "wrong",
		Provider: func(string) (pathload.ProberFactory, error) {
			return func() (pathload.Prober, error) { return &stubProber{avail: 5e6}, nil }, nil
		},
		DialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Run() }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("Run returned %v, want ErrRejected", err)
		}
	case <-time.After(10 * time.Second):
		a.Stop()
		t.Fatal("rejected agent kept retrying")
	}
}

// TestAuthenticatedAgentEndToEnd: with matching secrets the full agent
// loop works — register, lease, measure, push.
func TestAuthenticatedAgentEndToEnd(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{
		Secret:   "sesame",
		Coord:    Config{Paths: []string{"p00"}, TTL: 2 * time.Second, Epoch: 50 * time.Millisecond},
		AutoTick: true,
	})
	a, err := NewAgent(AgentConfig{
		Coord:  addr,
		Name:   "a1",
		Secret: "sesame",
		Provider: func(string) (pathload.ProberFactory, error) {
			return func() (pathload.Prober, error) { return &stubProber{avail: 5e6}, nil }, nil
		},
		Heartbeat: 40 * time.Millisecond,
		PushEvery: 50 * time.Millisecond,
		Monitor: pathload.MonitorConfig{
			Interval: 5 * time.Millisecond,
			Config:   pathload.Config{PacketsPerStream: 8, StreamsPerFleet: 3, DisableInitProbe: true},
		},
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	go a.Run()
	defer a.Stop()
	waitFor(t, "authenticated agent federating", func() bool {
		c, ok := srv.Federation().Contribution("a1", "p00")
		return ok && c.Total >= 1
	})
}

// TestRegisterRateLimit: with the clock frozen, a burst-1 bucket
// admits the first registration from a host and refuses the second
// with a rate error.
func TestRegisterRateLimit(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		RegisterRate: 0.001,
		RateBurst:    1,
		Now:          func() time.Duration { return 0 },
	})
	c1, ft, _ := sendHello(t, addr, "a1", VersionMin, Version)
	defer c1.Close()
	if ft != msgHelloAck {
		t.Fatalf("first register: got %v", ft)
	}
	c2, ft, payload := sendHello(t, addr, "a2", VersionMin, Version)
	defer c2.Close()
	expectError(t, ft, payload, errCodeRate)
}

// TestPushRateLimit: the push bucket throttles a session that floods
// contributions.
func TestPushRateLimit(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		PushRate:  0.001,
		RateBurst: 1,
		Now:       func() time.Duration { return 0 },
	})
	conn, ft, _ := sendHello(t, addr, "a1", VersionMin, Version)
	defer conn.Close()
	if ft != msgHelloAck {
		t.Fatalf("register: got %v", ft)
	}
	push := marshalPush(pushMsg{Seq: 1, Path: "p00", Total: 1})
	if err := writeFrame(conn, msgPush, push); err != nil {
		t.Fatalf("push 1: %v", err)
	}
	ft, _, err := readFrame(conn)
	if err != nil || ft != msgPushAck {
		t.Fatalf("push 1 reply: %v %v", ft, err)
	}
	if err := writeFrame(conn, msgPush, push); err != nil {
		t.Fatalf("push 2: %v", err)
	}
	ft, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("push 2 reply: %v", err)
	}
	expectError(t, ft, payload, errCodeRate)
}

// TestRateLimiterRefill pins the token-bucket arithmetic on a scripted
// clock: a drained bucket refills at the configured rate and caps at
// the burst.
func TestRateLimiterRefill(t *testing.T) {
	l := newRateLimiter(2, 2) // 2 tokens/s, depth 2
	if !l.allow("h", 0) || !l.allow("h", 0) {
		t.Fatal("burst not honored")
	}
	if l.allow("h", 0) {
		t.Fatal("empty bucket allowed")
	}
	if l.allow("h", 400*time.Millisecond) {
		t.Fatal("allowed before a whole token refilled")
	}
	// 400ms at 2/s refilled 0.8; by 600ms it crossed 1.
	if !l.allow("h", 600*time.Millisecond) {
		t.Fatal("refilled token not granted")
	}
	// Independent hosts do not share buckets.
	if !l.allow("other", 0) {
		t.Fatal("fresh host should start with a full bucket")
	}
	if newRateLimiter(0, 5) != nil {
		t.Fatal("zero rate must disable the limiter")
	}
}
