package coord

import (
	"net"
	"testing"
	"time"

	pathload "repro"
)

// stubProber is an analytic prober for agent tests: streams above its
// avail-bw ramp, streams below arrive flat (the monitor_test fakePath
// pattern, minus the failure machinery).
type stubProber struct{ avail float64 }

func (f *stubProber) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	res := pathload.StreamResult{Sent: spec.K}
	for i := 0; i < spec.K; i++ {
		owd := 5 * time.Millisecond
		if spec.EffectiveRate() > f.avail {
			owd += time.Duration(i) * 100 * time.Microsecond
		}
		res.OWDs = append(res.OWDs, pathload.OWDSample{Seq: i, OWD: owd})
	}
	return res, nil
}
func (f *stubProber) Idle(time.Duration) error { return nil }
func (f *stubProber) RTT() time.Duration       { return time.Millisecond }

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAgentEndToEnd drives real Agents against a real Server over
// loopback: one agent measures everything, a second joining triggers a
// rebalance (with the first agent's series resuming, not rewinding),
// and the first agent dying hands its path over within the TTL.
func TestAgentEndToEnd(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Coord: Config{
			Paths: []string{"p00", "p01"},
			TTL:   700 * time.Millisecond,
			Epoch: 50 * time.Millisecond,
		},
		AutoTick: true,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	newAgent := func(name string) *Agent {
		a, err := NewAgent(AgentConfig{
			Coord: addr,
			Name:  name,
			Provider: func(string) (pathload.ProberFactory, error) {
				return func() (pathload.Prober, error) { return &stubProber{avail: 5e6}, nil }, nil
			},
			Heartbeat: 40 * time.Millisecond,
			PushEvery: 50 * time.Millisecond,
			Monitor: pathload.MonitorConfig{
				Interval: 5 * time.Millisecond,
				Config: pathload.Config{
					PacketsPerStream: 8,
					StreamsPerFleet:  3,
					DisableInitProbe: true,
				},
			},
		})
		if err != nil {
			t.Fatalf("NewAgent(%s): %v", name, err)
		}
		return a
	}

	a1 := newAgent("a1")
	a1done := make(chan error, 1)
	go func() { a1done <- a1.Run() }()
	defer a1.Stop()

	fed := srv.Federation()
	waitFor(t, "a1 measuring both paths", func() bool {
		for _, p := range []string{"p00", "p01"} {
			c, ok := fed.Contribution("a1", p)
			if !ok || c.Total < 2 {
				return false
			}
		}
		return true
	})

	// A second agent joins: the balancer must split the two singleton
	// paths one per agent, and a2's measurements must start federating.
	a2 := newAgent("a2")
	a2done := make(chan error, 1)
	go func() { a2done <- a2.Run() }()
	defer a2.Stop()
	waitFor(t, "rebalance to one path per agent", func() bool {
		o0, o1 := srv.Owner("p00"), srv.Owner("p01")
		return o0 != "" && o1 != "" && o0 != o1
	})
	var a2path string
	if srv.Owner("p00") == "a2" {
		a2path = "p00"
	} else {
		a2path = "p01"
	}
	a1path := "p00"
	if a2path == "p00" {
		a1path = "p01"
	}
	waitFor(t, "a2 contributions federated", func() bool {
		c, ok := fed.Contribution("a2", a2path)
		return ok && c.Total >= 1
	})

	// Resume contract: a1 restarted its monitor when its lease set
	// shrank, and its pushed series must continue — rounds strictly
	// increasing, never rewound to a duplicate 0.
	waitFor(t, "a1 pushing its kept path after rebalance", func() bool {
		c, ok := fed.Contribution("a1", a1path)
		return ok && c.Total >= 4
	})
	c, _ := fed.Contribution("a1", a1path)
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Round <= c.Points[i-1].Round {
			t.Fatalf("a1 %s rounds rewound after monitor restart: %d then %d",
				a1path, c.Points[i-1].Round, c.Points[i].Round)
		}
	}

	// a1 dies; within the TTL its path must be reassigned to a2 and
	// measured by it.
	a1.Stop()
	if err := <-a1done; err != nil {
		t.Fatalf("a1.Run: %v", err)
	}
	waitFor(t, "a1's path handed to a2", func() bool {
		return srv.Owner(a1path) == "a2" && srv.Owner(a2path) == "a2"
	})
	waitFor(t, "a2 measuring the inherited path", func() bool {
		c, ok := fed.Contribution("a2", a1path)
		return ok && c.Total >= 1
	})

	a2.Stop()
	if err := <-a2done; err != nil {
		t.Fatalf("a2.Run: %v", err)
	}
}

// TestAgentSurvivesCoordinatorRestart: losing the control connection
// must not kill the agent — it re-dials with backoff and re-registers
// when the coordinator returns.
func TestAgentSurvivesCoordinatorRestart(t *testing.T) {
	cfgFor := func() ServerConfig {
		return ServerConfig{
			Coord: Config{
				Paths: []string{"p00"},
				TTL:   500 * time.Millisecond,
				Epoch: 50 * time.Millisecond,
			},
			AutoTick: true,
		}
	}
	srv1, err := NewServer(cfgFor())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv1.Serve(ln1)
	addr := ln1.Addr().String()

	a, err := NewAgent(AgentConfig{
		Coord: addr,
		Name:  "a1",
		Provider: func(string) (pathload.ProberFactory, error) {
			return func() (pathload.Prober, error) { return &stubProber{avail: 5e6}, nil }, nil
		},
		Heartbeat:   40 * time.Millisecond,
		PushEvery:   50 * time.Millisecond,
		DialBackoff: 20 * time.Millisecond,
		Monitor: pathload.MonitorConfig{
			Interval: 5 * time.Millisecond,
			Config:   pathload.Config{PacketsPerStream: 8, StreamsPerFleet: 3, DisableInitProbe: true},
		},
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Run() }()
	defer a.Stop()

	waitFor(t, "first coordinator seeing pushes", func() bool {
		c, ok := srv1.Federation().Contribution("a1", "p00")
		return ok && c.Total >= 1
	})

	// Coordinator dies and is reborn on the same address.
	srv1.Close()
	ln1.Close()
	var srv2 *Server
	var ln2 net.Listener
	waitFor(t, "rebinding the coordinator address", func() bool {
		ln2, err = net.Listen("tcp", addr)
		if err != nil {
			return false
		}
		return true
	})
	srv2, err = NewServer(cfgFor())
	if err != nil {
		t.Fatalf("NewServer(2): %v", err)
	}
	defer srv2.Close()
	go srv2.Serve(ln2)

	waitFor(t, "agent re-registering with the reborn coordinator", func() bool {
		c, ok := srv2.Federation().Contribution("a1", "p00")
		return ok && c.Total >= 1
	})

	// The agent's local series kept growing across the outage; the new
	// coordinator sees a non-rewound stream.
	c, _ := srv2.Federation().Contribution("a1", "p00")
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Round <= c.Points[i-1].Round {
			t.Fatalf("rounds rewound across coordinator restart: %d then %d",
				c.Points[i-1].Round, c.Points[i].Round)
		}
	}
	a.Stop()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}
