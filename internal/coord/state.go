package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/schedule"
)

// Default timing for the lease machinery: an agent is dead after TTL
// without a heartbeat, and the coordinator reconsiders the assignment
// every Epoch.
const (
	DefaultTTL   = 10 * time.Second
	DefaultEpoch = 2 * time.Second
)

// ErrUnknownAgent reports a heartbeat (or push) from an agent the
// coordinator does not consider registered — typically one expired
// while its control connection limped. The agent's remedy is to
// re-register.
var ErrUnknownAgent = errors.New("coord: unknown agent")

// Config declares the measurement work the coordinator owns.
type Config struct {
	// Paths are the path identifiers to keep measured, fleet-wide.
	Paths []string

	// Conflicts is the link-sharing adjacency over Paths (the shape
	// mesh.TightOverlaps produces): paths connected through it must
	// never measure concurrently. The coordinator leases whole conflict
	// groups, never fragments of one, so the owning agent's local
	// Stagger policy can serialize them — cross-agent staggering would
	// need a distributed lock this plane deliberately avoids.
	Conflicts map[string][]string

	// TTL is how long an agent stays live past its last heartbeat;
	// 0 selects DefaultTTL.
	TTL time.Duration

	// Epoch is the rebalance cadence; 0 selects DefaultEpoch. Purely
	// advisory inside State (Tick decides by the clock it is handed) but
	// reported to agents in the hello handshake.
	Epoch time.Duration

	// Budget is the fleet-wide probe-bit budget in bits/s, split across
	// agents in proportion to how many paths they hold — the
	// schedule.Budgeted share rule lifted to the control plane. 0 means
	// uncapped.
	Budget float64
}

// A Lease is one granted path together with its conflict group index,
// so the holder knows which co-leased paths must stagger.
type Lease struct {
	Path  string
	Group int
}

// An Assignment is everything an agent needs to act on its leases: the
// full lease set (idempotent reconciliation target, not a delta) and
// the agent's probe-bit budget share.
type Assignment struct {
	Leases []Lease
	Budget float64
}

// agentInfo is the coordinator's book on one registered agent.
type agentInfo struct {
	lastBeat time.Duration
}

// State is the lease state machine: who is alive, which conflict group
// is leased to whom, and the decision log. It is deliberately inert —
// nothing mutates leases except Tick, every method takes the clock as
// an argument, and all iteration is in canonical (sorted) order — so a
// scripted clock replays the exact grant/steal/expire transcript every
// run, which is what the multi-agent harness pins byte-for-byte.
//
// State is not safe for concurrent use; Server wraps it in a mutex.
type State struct {
	cfg    Config
	groups [][]string     // conflict groups, canonical order (schedule.ConflictGroups)
	group  map[string]int // path → index into groups
	agents map[string]*agentInfo
	owner  []string // groups[i] is leased to owner[i]; "" = unowned
	log    []string
}

// NewState builds the state machine for cfg, partitioning cfg.Paths
// into conflict groups. It errors on duplicate or empty path names —
// a duplicate would silently double-measure — and on an empty path
// table.
func NewState(cfg Config) (*State, error) {
	if len(cfg.Paths) == 0 {
		return nil, errors.New("coord: no paths configured")
	}
	seen := map[string]bool{}
	for _, p := range cfg.Paths {
		if p == "" {
			return nil, errors.New("coord: empty path name")
		}
		if seen[p] {
			return nil, fmt.Errorf("coord: duplicate path %q", p)
		}
		seen[p] = true
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultEpoch
	}
	st := &State{
		cfg:    cfg,
		groups: schedule.ConflictGroups(cfg.Paths, cfg.Conflicts),
		group:  map[string]int{},
		agents: map[string]*agentInfo{},
	}
	st.owner = make([]string, len(st.groups))
	for gi, g := range st.groups {
		for _, p := range g {
			st.group[p] = gi
		}
	}
	return st, nil
}

// Groups returns the conflict groups in canonical order (shared
// slices; callers must not mutate).
func (st *State) Groups() [][]string { return st.groups }

// TTL and Epoch report the effective timing after defaulting.
func (st *State) TTL() time.Duration   { return st.cfg.TTL }
func (st *State) Epoch() time.Duration { return st.cfg.Epoch }

// Register adds (or refreshes) an agent at the given clock reading.
// Re-registering a live agent just renews its heartbeat — its leases
// survive, so an agent healing a dropped control connection does not
// churn the assignment.
func (st *State) Register(name string, now time.Duration) error {
	if name == "" {
		return errors.New("coord: empty agent name")
	}
	if a, ok := st.agents[name]; ok {
		a.lastBeat = now
		st.logf(now, "re-register %s", name)
		return nil
	}
	st.agents[name] = &agentInfo{lastBeat: now}
	st.logf(now, "register %s", name)
	return nil
}

// Heartbeat renews the agent's TTL and returns its current assignment.
// ErrUnknownAgent means the coordinator expired the agent; it must
// register again before its beats count.
func (st *State) Heartbeat(name string, now time.Duration) (Assignment, error) {
	a, ok := st.agents[name]
	if !ok {
		return Assignment{}, fmt.Errorf("%w: %q", ErrUnknownAgent, name)
	}
	a.lastBeat = now
	return st.Assignment(name), nil
}

// Assignment returns the agent's current leases and budget share. An
// unknown agent gets an empty assignment.
func (st *State) Assignment(name string) Assignment {
	var asg Assignment
	for gi, owner := range st.owner {
		if owner != name {
			continue
		}
		for _, p := range st.groups[gi] {
			asg.Leases = append(asg.Leases, Lease{Path: p, Group: gi})
		}
	}
	if st.cfg.Budget > 0 && len(asg.Leases) > 0 {
		asg.Budget = st.cfg.Budget * float64(len(asg.Leases)) / float64(len(st.cfg.Paths))
	}
	return asg
}

// Owner returns the agent currently leasing the path ("" when none).
func (st *State) Owner(path string) string {
	gi, ok := st.group[path]
	if !ok {
		return ""
	}
	return st.owner[gi]
}

// Agents returns the registered (not yet expired) agent names, sorted.
func (st *State) Agents() []string {
	out := make([]string, 0, len(st.agents))
	for a := range st.agents {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Tick advances the lease machine to the given clock reading — the one
// place leases change. In order:
//
//  1. Expire agents whose last heartbeat is TTL or more in the past
//     (processed in sorted name order), releasing their groups.
//  2. Grant unowned groups, in canonical group order, each to the
//     live agent with the fewest leased paths (ties to the
//     lexicographically smallest name).
//  3. Steal-balance: while some agent M holds so much more than the
//     least-loaded agent L that moving M's first (canonical) group g
//     with load(M) − load(L) > len(g) helps, move it. The condition
//     makes every move strictly decrease Σ load² — the potential
//     argument that guarantees termination — and leaves perfectly
//     legal imbalances (e.g. 2 vs 1 singleton groups) alone rather
//     than thrashing.
//
// It returns the transcript lines this tick appended, in order.
func (st *State) Tick(now time.Duration) []string {
	mark := len(st.log)

	// 1. Expirations.
	for _, name := range st.Agents() {
		a := st.agents[name]
		if now-a.lastBeat < st.cfg.TTL {
			continue
		}
		st.logf(now, "expire %s (last heartbeat %v)", name, a.lastBeat)
		delete(st.agents, name)
		for gi, owner := range st.owner {
			if owner == name {
				st.owner[gi] = ""
			}
		}
	}

	live := st.Agents()
	if len(live) > 0 {
		// 2. Grants.
		for gi, owner := range st.owner {
			if owner != "" {
				continue
			}
			target := st.leastLoaded(live)
			st.owner[gi] = target
			st.logf(now, "grant %s -> %s", st.groupName(gi), target)
		}

		// 3. Steal-balancing.
		for {
			moved := false
			maxName, maxLoad := "", -1
			minName, minLoad := "", int(^uint(0)>>1)
			for _, name := range live {
				l := st.load(name)
				if l > maxLoad || (l == maxLoad && name < maxName) {
					maxName, maxLoad = name, l
				}
				if l < minLoad || (l == minLoad && name < minName) {
					minName, minLoad = name, l
				}
			}
			if maxName == minName {
				break
			}
			for gi, owner := range st.owner {
				if owner != maxName {
					continue
				}
				if maxLoad-minLoad > len(st.groups[gi]) {
					st.owner[gi] = minName
					st.logf(now, "steal %s %s -> %s", st.groupName(gi), maxName, minName)
					moved = true
					break
				}
			}
			if !moved {
				break
			}
		}
	}

	return append([]string(nil), st.log[mark:]...)
}

// load counts the paths (not groups) leased to the agent — the unit
// budget shares are denominated in.
func (st *State) load(name string) int {
	n := 0
	for gi, owner := range st.owner {
		if owner == name {
			n += len(st.groups[gi])
		}
	}
	return n
}

// leastLoaded picks the grant target among live (sorted) agents:
// fewest leased paths, ties to the smallest name (live's order).
func (st *State) leastLoaded(live []string) string {
	best, bestLoad := live[0], st.load(live[0])
	for _, name := range live[1:] {
		if l := st.load(name); l < bestLoad {
			best, bestLoad = name, l
		}
	}
	return best
}

// groupName renders a group for the transcript: g<idx>[members...].
func (st *State) groupName(gi int) string {
	return fmt.Sprintf("g%d[%s]", gi, strings.Join(st.groups[gi], " "))
}

// logf appends one transcript line, clock-stamped.
func (st *State) logf(now time.Duration, format string, args ...any) {
	st.log = append(st.log, fmt.Sprintf("%v %s", now, fmt.Sprintf(format, args...)))
}

// Transcript returns the full decision log since construction.
func (st *State) Transcript() []string {
	return append([]string(nil), st.log...)
}
