package coord

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/tsstore"
)

// Archive record kinds in the coordinator's reserved range
// (0x20–0x2f; see archive.Record).
const (
	// KindContribution records one applied federation push. Key is
	// agent‖NUL‖path; the payload reuses the push wire encoding, so the
	// durable form and the wire form cannot drift apart.
	KindContribution uint8 = 0x20

	// KindLeases records a whole lease-state snapshot; the latest one
	// wins on restore.
	KindLeases uint8 = 0x21
)

// A LeaseSnapshot is the durable image of the lease machine: which
// agents were registered and which conflict group each owner held, at
// a clock reading. Heartbeat ages are deliberately not captured —
// restored agents restart their TTL at the restore clock, which is
// what prevents a mass expiry (and the steal storm it would trigger)
// the moment a restarted coordinator ticks.
type LeaseSnapshot struct {
	Clock  time.Duration
	Agents []string // registered agent names, sorted
	Owners []OwnerGroup
}

// An OwnerGroup is one owned conflict group, identified by its member
// set rather than its index: group indices are an artifact of the path
// table's order, and matching by members is what lets a restart with a
// reordered (but equivalent) configuration keep its leases.
type OwnerGroup struct {
	Paths []string // group members, canonical order
	Owner string
}

// A Persister receives the coordinator's durable state transitions:
// every lease-state change and every applied federation push. Errors
// are reported back so the server can count them, but never stop the
// control plane — the coordinator keeps serving on a sick disk.
type Persister interface {
	SaveLeases(s LeaseSnapshot) error
	SaveContribution(agent, path string, c tsstore.Contribution) error
}

// LeaseSnapshot captures the current lease state at the given clock
// reading.
func (st *State) LeaseSnapshot(now time.Duration) LeaseSnapshot {
	snap := LeaseSnapshot{Clock: now, Agents: st.Agents()}
	for gi, owner := range st.owner {
		if owner == "" {
			continue
		}
		snap.Owners = append(snap.Owners, OwnerGroup{
			Paths: append([]string(nil), st.groups[gi]...),
			Owner: owner,
		})
	}
	return snap
}

// RestoreLeases reinstates a snapshot into a freshly built State:
// every snapshotted agent is registered with its TTL restarted at now,
// and every owned group whose member set still exists in this
// configuration is re-leased to its prior owner. Groups that no longer
// exist (the path table or conflict shape changed) and owners that
// were not restored are dropped with an explicit transcript line —
// never silently re-granted. It returns the transcript lines it
// appended.
func (st *State) RestoreLeases(snap LeaseSnapshot, now time.Duration) []string {
	mark := len(st.log)
	for _, name := range snap.Agents {
		if name == "" {
			continue
		}
		if _, ok := st.agents[name]; !ok {
			st.agents[name] = &agentInfo{lastBeat: now}
			st.logf(now, "restore %s", name)
		}
	}
	byMembers := map[string]int{}
	for gi, g := range st.groups {
		byMembers[memberKey(g)] = gi
	}
	for _, og := range snap.Owners {
		gi, ok := byMembers[memberKey(og.Paths)]
		if !ok {
			st.logf(now, "restore drop [%s] -> %s (no matching conflict group)",
				strings.Join(og.Paths, " "), og.Owner)
			continue
		}
		if _, live := st.agents[og.Owner]; !live {
			st.logf(now, "restore drop %s -> %s (owner not restored)", st.groupName(gi), og.Owner)
			continue
		}
		st.owner[gi] = og.Owner
		st.logf(now, "restore grant %s -> %s", st.groupName(gi), og.Owner)
	}
	return append([]string(nil), st.log[mark:]...)
}

// memberKey canonicalizes a group's member set for matching.
func memberKey(paths []string) string {
	s := append([]string(nil), paths...)
	sort.Strings(s)
	return strings.Join(s, "\x00")
}

// marshalLeaseSnapshot encodes a snapshot (big-endian, proto-style).
func marshalLeaseSnapshot(s LeaseSnapshot) []byte {
	buf := binary.BigEndian.AppendUint64(nil, uint64(s.Clock))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Agents)))
	for _, a := range s.Agents {
		buf = appendStr(buf, a)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Owners)))
	for _, og := range s.Owners {
		buf = appendStr(buf, og.Owner)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(og.Paths)))
		for _, p := range og.Paths {
			buf = appendStr(buf, p)
		}
	}
	return buf
}

func unmarshalLeaseSnapshot(b []byte) (LeaseSnapshot, error) {
	d := &decoder{buf: b}
	s := LeaseSnapshot{Clock: d.dur("leases")}
	na := int(d.u32("leases"))
	if d.err == nil && na > len(d.buf) {
		return LeaseSnapshot{}, fmt.Errorf("coord: lease snapshot claims %d agents", na)
	}
	for i := 0; i < na && d.err == nil; i++ {
		s.Agents = append(s.Agents, d.str("leases"))
	}
	no := int(d.u32("leases"))
	if d.err == nil && no > len(d.buf) {
		return LeaseSnapshot{}, fmt.Errorf("coord: lease snapshot claims %d owners", no)
	}
	for i := 0; i < no && d.err == nil; i++ {
		og := OwnerGroup{Owner: d.str("leases")}
		np := int(d.u32("leases"))
		if d.err == nil && np > len(d.buf) {
			return LeaseSnapshot{}, fmt.Errorf("coord: owner group claims %d paths", np)
		}
		for j := 0; j < np && d.err == nil; j++ {
			og.Paths = append(og.Paths, d.str("leases"))
		}
		s.Owners = append(s.Owners, og)
	}
	return s, d.done("leases")
}

// --- archive-backed persister ----------------------------------------

// coordCkptMagic/-Version frame the coordinator's checkpoint blob
// ("CLCK"): the latest lease snapshot plus the latest contribution per
// (agent, path) among sealed records. Because both record kinds carry
// replace-not-accumulate state, the checkpoint IS the sealed history —
// restore never needs to re-read sealed segments when it is intact.
const (
	coordCkptMagic   uint32 = 0x434c434b
	coordCkptVersion uint16 = 1
)

// Log is the archive-backed Persister: lease snapshots and applied
// contributions stream into an archive.Archive WAL, seal into
// hash-chained segments, and come back on restart via Restore. The
// shadow maps are maintained by the archive's OnAppend hook under the
// archive lock, so checkpoints written at seal time summarize exactly
// the records sealed so far.
type Log struct {
	a        *archive.Archive
	contribs map[string][]byte // agent‖NUL‖path → latest push blob
	lease    []byte            // latest lease snapshot blob
}

// LogReport describes what OpenLog recovered.
type LogReport struct {
	archive.OpenReport

	// SealedRecords counts sealed records replayed (0 when an intact
	// checkpoint made replay unnecessary).
	SealedRecords int

	// ForeignRecords counts records of kinds this log does not own
	// (preserved in the archive, ignored here).
	ForeignRecords int

	// CheckpointCorrupt notes that the newest segment's checkpoint
	// failed to decode and recovery fell back to a full sealed replay.
	CheckpointCorrupt bool
}

// OpenLog opens (or creates) the coordinator's durable log at dir.
func OpenLog(dir string, opt archive.Options) (*Log, LogReport, error) {
	l := &Log{contribs: map[string][]byte{}}
	a, rep, err := archive.Open(dir, opt)
	if err != nil {
		return nil, LogReport{}, err
	}
	l.a = a
	out := LogReport{OpenReport: rep}

	seeded := false
	if ck := a.Checkpoint(); len(ck) > 0 {
		if err := l.decodeCheckpoint(ck); err != nil {
			out.CheckpointCorrupt = true
			l.contribs = map[string][]byte{}
			l.lease = nil
		} else {
			seeded = true
		}
	}
	apply := func(r archive.Record) {
		switch r.Kind {
		case KindContribution:
			l.contribs[r.Key] = append([]byte(nil), r.Data...)
		case KindLeases:
			l.lease = append([]byte(nil), r.Data...)
		default:
			out.ForeignRecords++
		}
	}
	if !seeded {
		if err := a.ReplaySealed(func(r archive.Record) error {
			out.SealedRecords++
			apply(r)
			return nil
		}); err != nil {
			a.Close()
			return nil, LogReport{}, err
		}
	}
	if err := a.ReplayTail(func(r archive.Record) error {
		apply(r)
		return nil
	}); err != nil {
		a.Close()
		return nil, LogReport{}, err
	}
	a.SetHooks(l.onAppend, l.checkpoint)
	return l, out, nil
}

// Archive exposes the underlying archive (seal/compact/verify).
func (l *Log) Archive() *archive.Archive { return l.a }

// Close seals nothing and closes the archive; the WAL tail carries the
// unsealed records to the next open.
func (l *Log) Close() error { return l.a.Close() }

// SaveLeases implements Persister.
func (l *Log) SaveLeases(s LeaseSnapshot) error {
	return l.a.Append(archive.Record{Kind: KindLeases, Key: "leases", Data: marshalLeaseSnapshot(s)})
}

// SaveContribution implements Persister.
func (l *Log) SaveContribution(agent, path string, c tsstore.Contribution) error {
	p, err := contributionToPush(path, c)
	if err != nil {
		return err
	}
	return l.a.Append(archive.Record{
		Kind: KindContribution,
		Key:  agent + "\x00" + path,
		Data: marshalPush(p),
	})
}

// onAppend maintains the checkpoint shadow; the archive calls it under
// its lock for every appended record.
func (l *Log) onAppend(r archive.Record) {
	switch r.Kind {
	case KindContribution:
		l.contribs[r.Key] = append([]byte(nil), r.Data...)
	case KindLeases:
		l.lease = append([]byte(nil), r.Data...)
	}
}

// checkpoint encodes the shadow state; the archive calls it under its
// lock at seal time.
func (l *Log) checkpoint() []byte {
	buf := binary.BigEndian.AppendUint32(nil, coordCkptMagic)
	buf = binary.BigEndian.AppendUint16(buf, coordCkptVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(l.lease)))
	buf = append(buf, l.lease...)
	keys := make([]string, 0, len(l.contribs))
	for k := range l.contribs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendStr(buf, k)
		blob := l.contribs[k]
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	return buf
}

func (l *Log) decodeCheckpoint(b []byte) error {
	d := &decoder{buf: b}
	if d.u32("checkpoint") != coordCkptMagic {
		return fmt.Errorf("coord: not a coordinator checkpoint")
	}
	if v := d.u16("checkpoint"); d.err == nil && v != coordCkptVersion {
		return fmt.Errorf("coord: checkpoint version %d unsupported", v)
	}
	l.lease = append([]byte(nil), d.bytes("checkpoint")...)
	if len(l.lease) == 0 {
		l.lease = nil
	}
	n := int(d.u32("checkpoint"))
	if d.err == nil && n > len(d.buf) {
		return fmt.Errorf("coord: checkpoint claims %d contributions", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str("checkpoint")
		blob := append([]byte(nil), d.bytes("checkpoint")...)
		if d.err == nil {
			l.contribs[k] = blob
		}
	}
	return d.done("checkpoint")
}

// A RestoredContribution is one recovered federation entry.
type RestoredContribution struct {
	Agent, Path string
	C           tsstore.Contribution
}

// RestoreState carries recovered coordinator state into NewServer.
type RestoreState struct {
	// Leases is the last persisted snapshot; HaveLeases distinguishes
	// "no snapshot recorded yet" from an empty one.
	Leases     LeaseSnapshot
	HaveLeases bool

	// Contributions are the latest per (agent, path), sorted by agent
	// then path.
	Contributions []RestoredContribution
}

// Restore decodes everything the log recovered into a RestoreState.
// Undecodable entries are dropped with an explicit problem line —
// recovery never invents data and never hides that it dropped some.
func (l *Log) Restore() (RestoreState, []string) {
	var rs RestoreState
	var problems []string
	if l.lease != nil {
		snap, err := unmarshalLeaseSnapshot(l.lease)
		if err != nil {
			problems = append(problems, fmt.Sprintf("lease snapshot dropped: %v", err))
		} else {
			rs.Leases, rs.HaveLeases = snap, true
		}
	}
	keys := make([]string, 0, len(l.contribs))
	for k := range l.contribs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		agent, path, ok := strings.Cut(k, "\x00")
		if !ok || agent == "" || path == "" {
			problems = append(problems, fmt.Sprintf("contribution %q dropped: malformed key", k))
			continue
		}
		p, err := unmarshalPush(l.contribs[k])
		if err == nil && p.Path != path {
			err = fmt.Errorf("payload path %q does not match key path %q", p.Path, path)
		}
		var c tsstore.Contribution
		if err == nil {
			c, err = pushToContribution(p)
		}
		if err != nil {
			problems = append(problems, fmt.Sprintf("contribution %s/%s dropped: %v", agent, path, err))
			continue
		}
		rs.Contributions = append(rs.Contributions, RestoredContribution{Agent: agent, Path: path, C: c})
	}
	return rs, problems
}
