// Package stats provides the small set of order and moment statistics
// the measurement methodology and its evaluation need: medians (stream
// preprocessing), percentiles and CDFs (variability analysis, §VI),
// coefficients of variation (§V-A), and duration-weighted means
// (Eq. 11, the MRTG comparison).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than
// two samples are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (standard deviation over
// mean). It returns 0 when the mean is 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Median returns the median of xs without modifying it. It returns 0
// for an empty slice. For even lengths it returns the mean of the two
// central order statistics.
func Median(xs []float64) float64 {
	n := len(xs)
	switch n {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between order statistics. It panics on an empty
// slice or out-of-range p: percentiles of nothing are a caller bug.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Percentiles evaluates several percentiles in one sort.
func Percentiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = Percentile(xs, p)
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	P float64 // fraction of samples ≤ X
}

// CDF returns the empirical cumulative distribution of xs as a stepwise
// set of points, one per distinct sample value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var out []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		// Collapse runs of equal values to the final (highest) P.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// WeightedMean returns Σ wᵢxᵢ / Σ wᵢ. It panics if the slices differ in
// length, and returns 0 when the total weight is 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: weighted mean: %d values vs %d weights", len(xs), len(ws)))
	}
	var sum, wsum float64
	for i, x := range xs {
		sum += x * ws[i]
		wsum += ws[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// MinMax returns the minimum and maximum of xs. It panics on an empty
// slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: min/max of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
