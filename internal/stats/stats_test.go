package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestMean covers the basics and the empty case.
func TestMean(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	} {
		if got := Mean(tc.in); !almost(got, tc.want) {
			t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestVarianceAndCoV checks moments on a known sample.
func TestVarianceAndCoV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // classic: mean 5, var 4
	if got := Variance(xs); !almost(got, 4) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := CoV(xs); !almost(got, 0.4) {
		t.Errorf("CoV = %v, want 0.4", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("CoV of zeros = %v, want 0", got)
	}
}

// TestMedian covers odd, even, and unsorted input, and immutability.
func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	} {
		if got := Median(tc.in); !almost(got, tc.want) {
			t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

// TestPercentile checks interpolation and the extremes.
func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	for _, tc := range []struct {
		p, want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	} {
		if got := Percentile(xs, tc.p); !almost(got, tc.want) {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("P50 of singleton = %v, want 7", got)
	}
}

// TestPercentilePanics documents the contract.
func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { Percentile(nil, 50) },
		"negative":     func() { Percentile([]float64{1}, -1) },
		"over hundred": func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestQuickPercentileProperties: monotone in p, bounded by min/max, and
// the 50th percentile equals the median.
func TestQuickPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		min, max := MinMax(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev || v < min-1e-9 || v > max+1e-9 {
				return false
			}
			prev = v
		}
		return almost(Percentile(xs, 50), Median(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCDF checks shape: nondecreasing X, P ending at 1, duplicate
// collapsing.
func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 3, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF collapsed to %d points, want 3", len(pts))
	}
	if pts[0].X != 1 || !almost(pts[0].P, 0.25) {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[2].X != 3 || !almost(pts[2].P, 1) {
		t.Errorf("last point %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) not nil")
	}
}

// TestQuickCDFIsDistribution: P is nondecreasing in [0,1] ending at 1.
func TestQuickCDFIsDistribution(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, v := range xs {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		pts := CDF(clean)
		if len(clean) == 0 {
			return pts == nil
		}
		prevX, prevP := math.Inf(-1), 0.0
		for _, pt := range pts {
			if pt.X <= prevX && !math.IsInf(prevX, -1) {
				return false
			}
			if pt.P <= prevP || pt.P > 1+1e-12 {
				return false
			}
			prevX, prevP = pt.X, pt.P
		}
		return almost(pts[len(pts)-1].P, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedMean checks Eq. 11-style duration weighting.
func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{10, 20}, []float64{1, 3}); !almost(got, 17.5) {
		t.Errorf("WeightedMean = %v, want 17.5", got)
	}
	if got := WeightedMean(nil, nil); got != 0 {
		t.Errorf("WeightedMean(nil) = %v, want 0", got)
	}
	if got := WeightedMean([]float64{5}, []float64{0}); got != 0 {
		t.Errorf("zero-weight mean = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

// TestQuickWeightedMeanBounds: with positive weights the result lies
// within [min, max] of the values.
func TestQuickWeightedMeanBounds(t *testing.T) {
	f := func(vals []float64, seed int64) bool {
		xs := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		ws := make([]float64, len(xs))
		for i := range ws {
			w := (seed + int64(i)) % 7
			if w < 0 {
				w = -w
			}
			ws[i] = 1 + float64(w)
		}
		m := WeightedMean(xs, ws)
		min, max := MinMax(xs)
		return m >= min-1e-6 && m <= max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentiles checks the multi-percentile helper agrees with the
// single one.
func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	ps := []float64{5, 50, 95}
	got := Percentiles(xs, ps)
	for i, p := range ps {
		if want := Percentile(xs, p); !almost(got[i], want) {
			t.Errorf("Percentiles[%v] = %v, want %v", p, got[i], want)
		}
	}
}

// TestMinMax checks extremes and the panic contract.
func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v want -1,7", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

// TestMedianAgainstSort cross-checks Median against explicit sorting
// for a spread of sizes.
func TestMedianAgainstSort(t *testing.T) {
	for n := 1; n <= 20; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64((i * 7919) % 100)
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		var want float64
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		if got := Median(xs); !almost(got, want) {
			t.Errorf("n=%d: Median = %v, want %v", n, got, want)
		}
	}
}
