package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// TestSimulatorMatchesFluidModel drives a probe stream through CBR
// cross traffic, where the fluid model is exact: above the avail-bw the
// OWD trend must be unmistakable (PCT ≈ 1), below it absent.
func TestSimulatorMatchesFluidModel(t *testing.T) {
	// Many small-packet CBR sources with random phases approximate the
	// fluid assumption; the trimodal mix would reintroduce burst noise.
	net := Topology{
		Model:         crosstraffic.ModelCBR,
		Sizes:         crosstraffic.FixedSize{Bytes: 100},
		SourcesPerHop: 40,
		Seed:          3,
	}.Build()
	net.Warmup(2 * netsim.Second)
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
	cfg := pathload.Config{}

	for _, tc := range []struct {
		rateMbps float64
		wantHigh bool // expect a clear increasing trend
	}{
		{2, false}, {3.5, false}, {5, true}, {6, true}, {8, true},
	} {
		rate := tc.rateMbps * 1e6
		l, tt := cfg.StreamParams(rate)
		sr, err := prober.SendStream(pathload.StreamSpec{Rate: rate, K: 100, L: l, T: tt})
		if err != nil {
			t.Fatal(err)
		}
		owds := make([]float64, len(sr.OWDs))
		for j, s := range sr.OWDs {
			owds[j] = s.OWD.Seconds()
		}
		kind, m := core.ClassifyOWDs(owds, core.TrendConfig{})
		first, last := owds[0], owds[len(owds)-1]
		t.Logf("R=%.1f Mb/s: PCT=%.2f PDT=%.2f rise=%.3fms → %v", tc.rateMbps, m.PCT, m.PDT, (last-first)*1e3, kind)
		if tc.wantHigh {
			// Residual beat patterns of the CBR aggregate leave some
			// PCT noise; PDT is the decisive statistic here.
			if kind != core.TypeIncreasing || m.PDT < 0.6 {
				t.Errorf("R=%.1f Mb/s above A: classified %v (PCT=%.2f PDT=%.2f), want a clear increasing trend",
					tc.rateMbps, kind, m.PCT, m.PDT)
			}
		} else if kind == core.TypeIncreasing {
			t.Errorf("R=%.1f Mb/s below A: classified increasing (PCT=%.2f PDT=%.2f)", tc.rateMbps, m.PCT, m.PDT)
		}
		prober.Idle(500 * netsim.Millisecond.Duration())
	}
}
