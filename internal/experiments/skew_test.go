package experiments

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// TestMeasurementSurvivesClockSkew: §IV's claim that unsynchronized
// clocks are harmless, end to end — the full measurement on the same
// path, with and without a gross receiver clock offset, must agree.
func TestMeasurementSurvivesClockSkew(t *testing.T) {
	run := func(offset time.Duration) pathload.Result {
		net := Topology{Seed: 31}.Build()
		net.Warmup(warmup)
		prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
		prober.ClockOffset = offset
		res, err := pathload.Run(prober, pathload.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	skewed := run(-12 * time.Hour)
	if plain.Lo != skewed.Lo || plain.Hi != skewed.Hi {
		t.Fatalf("clock offset changed the estimate: [%v, %v] vs [%v, %v]",
			plain.Lo, plain.Hi, skewed.Lo, skewed.Hi)
	}
}

// TestMeasurementDeterminism: same topology seed, same result — the
// reproducibility contract every experiment relies on.
func TestMeasurementDeterminism(t *testing.T) {
	run := func() pathload.Result {
		net := Topology{Seed: 123}.Build()
		net.Warmup(warmup)
		prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
		res, err := pathload.Run(prober, pathload.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Lo != b.Lo || a.Hi != b.Hi || len(a.Fleets) != len(b.Fleets) {
		t.Fatalf("identical seeds diverged: %v vs %v", a, b)
	}
}

// TestLossyPathAborts: pathload on a severely underbuffered path must
// degrade via aborted fleets (rate-too-high semantics), never crash or
// fabricate a wide confident range.
func TestLossyPathAborts(t *testing.T) {
	topo := Topology{BufBytes: 3000, Seed: 13} // ~2 packets of buffer
	net := topo.Build()
	net.Warmup(warmup)
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
	res, err := pathload.Run(prober, pathload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	aborted := 0
	for _, f := range res.Fleets {
		if f.Verdict == pathload.FleetAborted {
			aborted++
		}
	}
	t.Logf("underbuffered path: %v, %d/%d fleets aborted", res, aborted, len(res.Fleets))
	if aborted == 0 {
		t.Error("no aborted fleets despite a 2-packet buffer at 60% load")
	}
}
