package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/crosstraffic"
	"repro/internal/mrtg"
	"repro/internal/netsim"
	"repro/internal/simprobe"
	"repro/internal/stats"

	pathload "repro"
)

// A VerificationRun is one of the paper's Fig. 10 experiments: an
// MRTG-style averaged reading of the tight link versus the
// duration-weighted average of back-to-back pathload runs over the same
// window (Eq. 11).
type VerificationRun struct {
	Run int
	// MRTGAvail is the exact windowed avail-bw of the tight link;
	// MRTGLo/MRTGHi quantize it to the 6 Mb/s reading buckets the
	// paper could extract from the graphs.
	MRTGAvail      float64
	MRTGLo, MRTGHi float64
	// PathloadAvg is the Eq. 11 duration-weighted average of the range
	// centers; WLo/WHi weight the bounds the same way.
	PathloadAvg float64
	WLo, WHi    float64
	PathloadN   int // pathload runs completed inside the window
	// Within reports the paper's acceptance criterion: the weighted
	// pathload estimate falls inside the quantized MRTG reading.
	Within bool
}

// Fig10Window is the MRTG averaging window (the paper's 5 minutes).
const Fig10Window = 300 * netsim.Second

// MRTGQuantum is the reading resolution of the paper's MRTG graphs.
const MRTGQuantum = 6e6

// Fig10 reproduces Fig. 10: twelve independent verification runs on a
// path whose tight link (155 Mb/s OC-3) is distinct from its narrow
// link (100 Mb/s Fast Ethernet). For each run the tight link's
// utilization is drawn afresh, pathload runs back-to-back for the full
// MRTG window, and the weighted average is compared with the quantized
// MRTG reading. The paper finds 10 of 12 within the MRTG range with the
// two misses marginal.
func Fig10(opt Options) []VerificationRun {
	opt = opt.withDefaults()
	window := opt.window(Fig10Window, 30*netsim.Second)
	const runs = 12

	var out []VerificationRun
	for r := 0; r < runs; r++ {
		rng := rand.New(rand.NewSource(opt.runSeed(r) ^ 0xf16))
		// 46–93 Mb/s avail on the OC-3, always below the narrow link's
		// 95 Mb/s so the OC-3 stays the tight link MRTG should match.
		util := 0.40 + rng.Float64()*0.30

		sim := netsim.NewSimulator()
		type hop struct {
			name string
			cap  float64
			util float64
		}
		hops := []hop{
			{"fast-ethernet(narrow)", 100e6, 0.05},
			{"oc3(tight)", 155e6, util},
			{"backbone", 622e6, 0.10},
		}
		var links []*netsim.Link
		for i, h := range hops {
			l := netsim.NewLink(sim, h.name, int64(h.cap), 10*netsim.Millisecond, 0)
			links = append(links, l)
			agg := crosstraffic.NewAggregate(sim, []*netsim.Link{l}, h.cap*h.util, 10,
				crosstraffic.ModelPareto, crosstraffic.Trimodal{}, opt.runSeed(r)+int64(i)*999_983)
			agg.Start()
		}
		tight := links[1]
		sim.RunFor(warmup)

		mon := mrtg.NewMonitor(sim, tight, window)
		mon.Start()
		prober := simprobe.New(sim, links, 10*netsim.Millisecond)

		// Back-to-back pathload runs until the window closes (Eq. 11).
		end := sim.Now() + window
		var centers, los, his, weights []float64
		for sim.Now() < end {
			res, err := pathload.Run(prober, pathload.Config{})
			if err != nil {
				panic(fmt.Sprintf("experiments: fig10 run %d: %v", r, err))
			}
			centers = append(centers, res.Mid())
			los = append(los, res.Lo)
			his = append(his, res.Hi)
			weights = append(weights, res.Elapsed.Seconds())
		}
		sim.RunFor(end - sim.Now() + netsim.Second) // close the MRTG window

		readings := mon.Readings()
		if len(readings) == 0 {
			panic("experiments: fig10: MRTG window never closed")
		}
		avail := readings[0].Avail
		lo, hi := mrtg.Quantize(avail, MRTGQuantum)
		v := VerificationRun{
			Run:         r,
			MRTGAvail:   avail,
			MRTGLo:      lo,
			MRTGHi:      hi,
			PathloadAvg: stats.WeightedMean(centers, weights),
			WLo:         stats.WeightedMean(los, weights),
			WHi:         stats.WeightedMean(his, weights),
			PathloadN:   len(centers),
		}
		v.Within = v.PathloadAvg >= lo && v.PathloadAvg <= hi
		out = append(out, v)
	}
	return out
}
