package experiments

import (
	"fmt"
	"strings"

	"repro/internal/availproc"
	"repro/internal/baseline"
	"repro/internal/crosstraffic"
	"repro/internal/fluid"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// A BaselinePoint compares the cprobe dispersion estimate, the pathload
// range, the fluid-model ADR prediction, and the true avail-bw at one
// load level — the quantitative form of the paper's §II argument that
// train dispersion measures ADR, not avail-bw.
type BaselinePoint struct {
	Util      float64
	TrueA     float64
	Cprobe    float64 // dispersion estimate
	FluidADR  float64 // analytical ADR of a saturating train
	PathloadL float64
	PathloadH float64
}

// BaselineComparison sweeps the tight-link load and measures with both
// instruments. Expected shape: pathload brackets A everywhere, while
// cprobe tracks the (higher) ADR and overestimates the avail-bw by an
// amount that grows with utilization.
func BaselineComparison(opt Options) []BaselinePoint {
	opt = opt.withDefaults()
	var out []BaselinePoint
	for i, u := range []float64{0.2, 0.4, 0.6, 0.8} {
		topo := Topology{TightUtil: u, Seed: opt.runSeed(400 + i)}
		net := topo.Build()
		net.Warmup(warmup)
		prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)

		cp, err := baseline.Cprobe(prober, baseline.CprobeConfig{})
		if err != nil {
			panic(fmt.Sprintf("experiments: baseline u=%v: %v", u, err))
		}
		pl, err := pathload.Run(prober, pathload.Config{})
		if err != nil {
			panic(fmt.Sprintf("experiments: baseline pathload u=%v: %v", u, err))
		}

		// Fluid ADR of a saturating MTU train through the topology.
		t := topo.withDefaults()
		a := t.TightCap * (1 - t.TightUtil)
		nontight := fluid.Link{C: t.Beta * a / (1 - t.NonTightUtil)}
		nontight.A = nontight.C * (1 - t.NonTightUtil)
		var fp fluid.Path
		for h := 0; h < t.Hops; h++ {
			if h == t.Hops/2 {
				fp = append(fp, fluid.Link{C: t.TightCap, A: a})
			} else {
				fp = append(fp, nontight)
			}
		}
		out = append(out, BaselinePoint{
			Util:      u,
			TrueA:     a,
			Cprobe:    cp.Estimate,
			FluidADR:  fluid.ExitRate(120e6, fp),
			PathloadL: pl.Lo,
			PathloadH: pl.Hi,
		})
	}
	return out
}

// RenderBaseline formats the comparison.
func RenderBaseline(pts []BaselinePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Baseline (§II): cprobe train dispersion vs pathload (Mb/s)\n")
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %22s\n", "u_t", "true A", "cprobe", "fluid ADR", "pathload range")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8.0f %8.2f %10.2f %10.2f [%8.2f, %8.2f ]\n",
			p.Util*100, mbps(p.TrueA), mbps(p.Cprobe), mbps(p.FluidADR), mbps(p.PathloadL), mbps(p.PathloadH))
	}
	fmt.Fprintf(&b, "cprobe tracks the ADR (between A and C), overestimating the avail-bw;\n")
	fmt.Fprintf(&b, "the overestimation grows with load, the paper's §II argument.\n")
	return b.String()
}

// A TimescaleCDF reports the avail-bw process spread at several
// averaging timescales for one traffic model.
type TimescaleCDF struct {
	Model  string
	Points []availproc.TimescalePoint
}

// TimescaleVariance measures the ground-truth avail-bw process of the
// default tight link at increasing averaging timescales (§I: the
// variance of A(t, τ) decreases with τ; heavy-tailed traffic decays
// more slowly than Poisson).
func TimescaleVariance(opt Options) []TimescaleCDF {
	opt = opt.withDefaults()
	horizon := opt.window(120*netsim.Second, 20*netsim.Second)
	taus := []netsim.Time{
		10 * netsim.Millisecond,
		40 * netsim.Millisecond,
		160 * netsim.Millisecond,
		640 * netsim.Millisecond,
		2560 * netsim.Millisecond,
	}
	var out []TimescaleCDF
	for i, model := range []struct {
		name string
		m    crosstraffic.Model
	}{{"poisson", crosstraffic.ModelPoisson}, {"pareto", crosstraffic.ModelPareto}} {
		topo := Topology{Seed: opt.runSeed(500 + i), Model: model.m}
		net := topo.Build()
		net.Warmup(warmup)
		s := availproc.NewSampler(net.Sim, net.Tight(), 10*netsim.Millisecond)
		s.Start()
		net.Sim.RunFor(horizon)
		s.Stop()
		out = append(out, TimescaleCDF{Model: model.name, Points: s.VarianceByTimescale(taus)})
	}
	return out
}

// RenderTimescale formats the variance-vs-τ relation.
func RenderTimescale(cdfs []TimescaleCDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Avail-bw process variability vs averaging timescale τ (tight link, u=60%%)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %10s\n", "model", "τ", "σ(A) Mb/s", "windows")
	for _, c := range cdfs {
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%-10s %12v %14.3f %10d\n", c.Model, p.Tau, p.StdDev/1e6, p.Windows)
		}
	}
	fmt.Fprintf(&b, "σ decreases with τ; the heavy-tailed model decays more slowly (§I).\n")
	return b.String()
}
