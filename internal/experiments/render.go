package experiments

import (
	"fmt"
	"strings"
)

// RenderOWDTraces formats Figs. 1–3 as compact text: the trend verdict
// plus a downsampled OWD series.
func RenderOWDTraces(traces []OWDTrace) string {
	var b strings.Builder
	for _, tr := range traces {
		fmt.Fprintf(&b, "%s: R=%.0f Mb/s vs A≈%.0f Mb/s → %s (PCT=%.2f PDT=%.2f, rise=%.2f ms)\n",
			tr.Figure, tr.RateMbps, mbps(tr.AvailBw), tr.Kind, tr.PCT, tr.PDT, tr.RiseMs)
		fmt.Fprintf(&b, "  OWD(ms) by packet:")
		step := len(tr.OWDms) / 10
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(tr.OWDms); i += step {
			fmt.Fprintf(&b, " %d:%.2f", tr.Seqs[i], tr.OWDms[i])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// RenderAccuracy formats Figs. 5–7 as a table.
func RenderAccuracy(title string, pts []AccuracyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d runs per condition)\n", title, pts[0].Runs)
	fmt.Fprintf(&b, "%-22s %10s %22s %10s %9s\n", "condition", "true A", "mean range (Mb/s)", "center", "bracket?")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-22s %10.2f [%8.2f, %8.2f ] %10.2f %9v\n",
			p.Label, mbps(p.TrueA), mbps(p.MeanLo), mbps(p.MeanHi),
			mbps((p.MeanLo+p.MeanHi)/2), p.Contained)
	}
	return b.String()
}

// RenderSensitivity formats Figs. 8–9 as a table.
func RenderSensitivity(title, param string, pts []SensitivityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %22s %10s %22s\n", param, "range (Mb/s)", "width", "grey (Mb/s)")
	for _, p := range pts {
		grey := "-"
		if p.GreySet {
			grey = fmt.Sprintf("[%8.2f, %8.2f ]", mbps(p.GreyLo), mbps(p.GreyHi))
		}
		fmt.Fprintf(&b, "%-8.2f [%8.2f, %8.2f ] %10.2f %22s\n",
			p.Param, mbps(p.Lo), mbps(p.Hi), mbps(p.Width()), grey)
	}
	fmt.Fprintf(&b, "true A = %.2f Mb/s\n", mbps(pts[0].TrueA))
	return b.String()
}

// RenderVerification formats Fig. 10 as a table.
func RenderVerification(runs []VerificationRun) string {
	var b strings.Builder
	within := 0
	fmt.Fprintf(&b, "Fig 10: pathload (Eq. 11 weighted average) vs quantized MRTG reading\n")
	fmt.Fprintf(&b, "%-4s %12s %20s %14s %8s\n", "run", "MRTG avail", "MRTG bucket (Mb/s)", "pathload avg", "within?")
	for _, r := range runs {
		if r.Within {
			within++
		}
		fmt.Fprintf(&b, "%-4d %12.2f [%7.2f, %7.2f ] %14.2f %8v\n",
			r.Run, mbps(r.MRTGAvail), mbps(r.MRTGLo), mbps(r.MRTGHi), mbps(r.PathloadAvg), r.Within)
	}
	fmt.Fprintf(&b, "within MRTG bucket: %d/%d (paper: 10/12, misses marginal)\n", within, len(runs))
	return b.String()
}

// RenderDynamics formats Figs. 11–14: the decile table of ρ per
// condition.
func RenderDynamics(title string, cdfs []DynamicsCDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d runs per condition; ρ deciles)\n", title, cdfs[0].Runs)
	fmt.Fprintf(&b, "%-22s", "condition")
	for _, p := range dynamicsDeciles {
		fmt.Fprintf(&b, " %6.0f%%", p)
	}
	fmt.Fprintf(&b, "\n")
	for _, c := range cdfs {
		fmt.Fprintf(&b, "%-22s", c.Label)
		for _, v := range c.Deciles {
			fmt.Fprintf(&b, " %7.2f", v)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// RenderScale formats the dynamics-at-scale fleet: one row per path
// with its configured avail-bw, MRTG reading, and per-round ranges.
func RenderScale(r ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamics at scale: %d paths × %d rounds, %d workers (%.2gM sim events, %.1fs wall)\n",
		len(r.Paths), r.Rounds, r.Workers, float64(r.Events)/1e6, r.Wall.Seconds())
	fmt.Fprintf(&b, "%-9s %8s %8s %4s  %s\n", "path", "true A", "MRTG", "cov", "ranges over time (Mb/s)")
	for _, p := range r.Paths {
		fmt.Fprintf(&b, "%-9s %8.2f %8.2f %d/%d ", p.Path, mbps(p.True), mbps(p.MRTG), p.Covered, len(p.Points))
		for _, pt := range p.Points {
			fmt.Fprintf(&b, " [%.1f,%.1f]", mbps(pt.Lo), mbps(pt.Hi))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "coverage (range brackets true A within ω+χ): %.0f%%\n", r.Coverage()*100)
	return b.String()
}

// RenderScaleSummary formats a large-fleet scale run as aggregates — a
// 10k-path tier would print ten thousand rows through RenderScale, so
// this reports fleet-wide coverage, event totals, and throughput, plus
// coverage split by utilization quartile as the per-path sanity check.
func RenderScaleSummary(r ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamics at scale (summary): %d paths × %d rounds, %d workers\n",
		len(r.Paths), r.Rounds, r.Workers)
	secs := r.Wall.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Fprintf(&b, "events: %.1fM total, %.2fM events/s; throughput: %.0f path-measurements/s (%.1fs wall)\n",
		float64(r.Events)/1e6, float64(r.Events)/1e6/secs,
		float64(len(r.Paths)*r.Rounds)/secs, r.Wall.Seconds())
	// The fleet's utilization sweeps low→high with the path index, so
	// index quartiles are utilization quartiles.
	fmt.Fprintf(&b, "%-22s %8s %8s\n", "utilization quartile", "paths", "coverage")
	n := len(r.Paths)
	for q := 0; q < 4 && n > 0; q++ {
		lo, hi := q*n/4, (q+1)*n/4
		var covered, total int
		for _, p := range r.Paths[lo:hi] {
			covered += p.Covered
			total += len(p.Points)
		}
		cov := 0.0
		if total > 0 {
			cov = float64(covered) / float64(total)
		}
		fmt.Fprintf(&b, "Q%d (paths %d..%d) %8d %7.0f%%\n", q+1, lo, hi-1, hi-lo, cov*100)
	}
	fmt.Fprintf(&b, "coverage (range brackets true A within ω+χ): %.0f%%\n", r.Coverage()*100)
	return b.String()
}

// RenderTrajectory formats the avail-bw trajectory experiment: one row
// per path with the configured avail-bw and the stored series' window
// aggregates on either side of the mid-run cross-traffic step.
func RenderTrajectory(r TrajectoryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Avail-bw trajectories: %d paths × %d rounds, cross-traffic step before round %d (tsstore windows)\n",
		len(r.Paths), r.Rounds, r.StepRound)
	fmt.Fprintf(&b, "%-9s %-5s %8s %8s %22s %22s  %s\n",
		"path", "step", "A pre", "A post", "pre [minLo,maxHi] mean", "post [minLo,maxHi] mean", "tracked")
	for _, p := range r.Paths {
		dir := "load-" // cross traffic removed: avail-bw steps up
		if p.StepUp {
			dir = "load+" // cross traffic added: avail-bw steps down
		}
		fmt.Fprintf(&b, "%-9s %-5s %8.2f %8.2f  [%5.2f,%5.2f] %6.2f   [%5.2f,%5.2f] %6.2f   %v\n",
			p.Path, dir, mbps(p.TrueBefore), mbps(p.TrueAfter),
			mbps(p.Before.MinLo), mbps(p.Before.MaxHi), mbps(p.Before.MeanMid),
			mbps(p.After.MinLo), mbps(p.After.MaxHi), mbps(p.After.MeanMid),
			p.Tracked())
	}
	fmt.Fprintf(&b, "series (Mb/s):\n")
	for _, p := range r.Paths {
		fmt.Fprintf(&b, "%-9s", p.Path)
		for i, pt := range p.Points {
			if i == r.StepRound {
				fmt.Fprintf(&b, " |step|")
			}
			fmt.Fprintf(&b, " [%.1f,%.1f]", mbps(pt.Lo), mbps(pt.Hi))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "tracked (level both sides ∧ move ≥ ½ true step): %d/%d paths\n", r.TrackedPaths(), len(r.Paths))
	return b.String()
}

// RenderBTC formats Figs. 15–16.
func RenderBTC(r BTCResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 15: avail-bw vs BTC throughput (Mb/s)\n")
	fmt.Fprintf(&b, "%-4s %6s %10s %10s %18s\n", "ivl", "BTC?", "avail", "BTC mean", "BTC 1s min/max")
	for _, iv := range r.Intervals {
		if iv.BTCActive {
			fmt.Fprintf(&b, "%-4s %6v %10.2f %10.2f [%7.2f, %7.2f ]\n",
				iv.Name, iv.BTCActive, mbps(iv.Avail), mbps(iv.BTCMean), mbps(iv.BTCMin1s), mbps(iv.BTCMax1s))
		} else {
			fmt.Fprintf(&b, "%-4s %6v %10.2f %10s %18s\n", iv.Name, iv.BTCActive, mbps(iv.Avail), "-", "-")
		}
	}
	fmt.Fprintf(&b, "BTC overshoot vs surrounding avail-bw: %+.0f%% (paper: +20–30%%)\n", r.Overshoot*100)
	fmt.Fprintf(&b, "Fig 16: RTT quiet %.0f ms; during BTC mean %.0f ms, p95 %.0f ms, max %.0f ms (paper: 200 → up to 370 ms)\n",
		r.RTTQuiet*1e3, r.RTTBusyMean*1e3, r.RTTBusyP95*1e3, r.RTTBusyMax*1e3)
	return b.String()
}

// RenderIntrusive formats Figs. 17–18.
func RenderIntrusive(r IntrusiveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 17: avail-bw with pathload running in B and D (Mb/s)\n")
	fmt.Fprintf(&b, "%-4s %10s %10s %6s %14s\n", "ivl", "pathload?", "avail", "runs", "mean estimate")
	for _, iv := range r.Intervals {
		est := "-"
		if iv.PathloadActive {
			est = fmt.Sprintf("%.2f", mbps(iv.MeanEstimate))
		}
		fmt.Fprintf(&b, "%-4s %10v %10.2f %6d %14s\n", iv.Name, iv.PathloadActive, mbps(iv.Avail), iv.Runs, est)
	}
	fmt.Fprintf(&b, "avail-bw change while probing: %+.1f%% (paper: no measurable decrease)\n", r.AvailChange*100)
	fmt.Fprintf(&b, "Fig 18: RTT quiet %.1f ms vs probing %.1f ms (%+.1f%%); probe streams with loss: %d; pings lost: %d\n",
		r.RTTQuiet*1e3, r.RTTBusy*1e3, r.RTTChange*100, r.ProbeStreamsLost, r.PingsLost)
	return b.String()
}
