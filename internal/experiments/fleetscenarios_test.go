package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// fleetOpt runs the fleet matrix at half scale (2 rounds per path) for
// the determinism test; the golden uses the full default Options so it
// matches `cmd/repro -fig fleetscenarios` literally.
var fleetOpt = Options{Scale: 0.5, Seed: 3}

// TestFleetScenariosGolden: the full fleet matrix at default Options
// must render byte-identically to the committed golden — the same bytes
// `cmd/repro -fig fleetscenarios` prints. The golden pins the ISSUE's
// replay acceptance: a sequenced MonitorFleet over a shared backbone
// with a migrating tight link reproduces its whole transcript, and the
// steady-disjoint control reports every path byte-identical to a solo
// run. Run with -update to regolden after an intentional change.
func TestFleetScenariosGolden(t *testing.T) {
	res := FleetScenarios(Options{Scale: 1, Seed: 1})
	got := RenderFleetScenarios(res)
	golden := filepath.Join("testdata", "fleetscenarios.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run once with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("fleet matrix deviates from golden %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
	assertSoloReplay(t, res)
}

// TestDeterminismFleetScenarios: identical Options must render
// byte-identically regardless of host scheduling — the whole monitored
// fleet (sessions, barrier, epoch advances, link snapshots) runs on one
// virtual clock under the sequenced driver. CI runs this with -race
// -count=2.
func TestDeterminismFleetScenarios(t *testing.T) {
	a := RenderFleetScenarios(FleetScenarios(fleetOpt))
	b := RenderFleetScenarios(FleetScenarios(fleetOpt))
	if a != b {
		t.Fatalf("two identical fleet runs rendered differently:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	assertSoloReplay(t, FleetScenarios(fleetOpt))
}

// assertSoloReplay checks the steady-disjoint control: every path's
// fleet transcript byte-identical to its solo re-run, the PR 3
// disjoint-control argument lifted to whole monitor sessions.
func assertSoloReplay(t *testing.T, res FleetScenariosResult) {
	t.Helper()
	found := false
	for _, c := range res.Cells {
		if c.Scenario != "steady-disjoint" {
			continue
		}
		found = true
		if len(c.SoloMatch) != fleetPaths {
			t.Fatalf("steady-disjoint: %d solo verdicts, want %d", len(c.SoloMatch), fleetPaths)
		}
		for i, ok := range c.SoloMatch {
			if !ok {
				t.Errorf("steady-disjoint path %d: fleet transcript differs from its solo run", i)
			}
		}
	}
	if !found {
		t.Fatal("no steady-disjoint cell in the fleet matrix")
	}
}

// TestFleetScenariosGrading pins structural properties of the matrix
// that the golden alone would not explain: every registry scenario
// produces a cell with fleetPaths×rounds graded rounds, epochs split
// rounds evenly, and the shared-backbone cells track their migrating
// truths well enough to matter (over half the rounds bracket).
func TestFleetScenariosGrading(t *testing.T) {
	res := FleetScenarios(fleetOpt)
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range res.Cells {
		if got := len(c.Rounds); got != fleetPaths*res.Rounds {
			t.Errorf("%s: %d rounds, want %d", c.Scenario, got, fleetPaths*res.Rounds)
		}
		s, err := scenario.GetFleet(c.Scenario, fleetPaths)
		if err != nil {
			t.Fatalf("%s: %v", c.Scenario, err)
		}
		for _, fr := range c.Rounds {
			if fr.Epoch != fr.Round*len(s.Epochs)/res.Rounds {
				t.Errorf("%s %s round %d: epoch %d breaks the even split", c.Scenario, fr.Path, fr.Round, fr.Epoch)
			}
			if fr.Truth <= 0 {
				t.Errorf("%s %s round %d: non-positive truth %v", c.Scenario, fr.Path, fr.Round, fr.Truth)
			}
		}
		if len(c.Links) == 0 {
			t.Errorf("%s: no link windows recorded", c.Scenario)
		}
		if c.Hits() <= len(c.Rounds)/2 {
			t.Errorf("%s: only %d/%d rounds bracket their truth", c.Scenario, c.Hits(), len(c.Rounds))
		}
	}
}
