package experiments

import (
	"strings"
	"testing"
)

// adaptOpt keeps the scheduler comparison fast while leaving every
// schedule enough rounds per window for the tracking criteria.
var adaptOpt = Options{Scale: 0.25, Seed: 1}

// TestAdaptiveSchedule is the scheduler comparison's contract: over the
// same horizon on identical fleets, the ρ-adaptive schedule must spend
// measurably fewer probe bits than the fixed one while every path still
// tracks the mid-run load step, and the budgeted schedule must hold
// aggregate probe bit-rate under the configured cap in every window.
func TestAdaptiveSchedule(t *testing.T) {
	r := AdaptiveSchedule(adaptOpt)

	for _, o := range r.Outcomes() {
		if len(o.Paths) != AdaptiveSchedulePaths {
			t.Fatalf("%s: %d paths, want %d", o.Name, len(o.Paths), AdaptiveSchedulePaths)
		}
		vols := 0
		for _, p := range o.Paths {
			if p.Volatile {
				vols++
			}
			if p.Rounds < 2 {
				t.Errorf("%s %s: only %d rounds in the horizon", o.Name, p.Path, p.Rounds)
			}
			if p.StepAt <= 0 {
				t.Errorf("%s %s: load step never fired", o.Name, p.Path)
			}
			if p.Bits <= 0 {
				t.Errorf("%s %s: no probe load accounted", o.Name, p.Path)
			}
		}
		if vols != 2 {
			t.Errorf("%s: %d volatile paths, want 2", o.Name, vols)
		}
		if len(o.Windows) == 0 {
			t.Errorf("%s: no budget windows", o.Name)
		}
	}

	// The headline claim: adaptive cuts probe load without losing the
	// step on any path.
	if r.Adaptive.Bits() >= r.Fixed.Bits() {
		t.Errorf("adaptive spent %.1f Mb, fixed %.1f — no savings", r.Adaptive.Bits()/1e6, r.Fixed.Bits()/1e6)
	}
	if got := r.Adaptive.TrackedPaths(); got != AdaptiveSchedulePaths {
		t.Errorf("adaptive tracked %d/%d paths", got, AdaptiveSchedulePaths)
	}

	// The budget claim: every window under the advertised cap, and the
	// bucket actually binding (fixed exceeds the cap, budgeted spends
	// less than fixed).
	if r.BudgetRate <= 0 {
		t.Fatal("no budget cap derived")
	}
	for _, w := range r.Budgeted.Windows {
		if w.Rate() > r.BudgetRate {
			t.Errorf("budgeted window [%v, %v): %.2f Mb/s exceeds the %.2f Mb/s cap",
				w.From, w.To, w.Rate()/1e6, r.BudgetRate/1e6)
		}
	}
	if r.Fixed.MaxWindowRate() <= r.BudgetRate {
		t.Errorf("cap %.2f Mb/s does not bind: fixed peaked at only %.2f",
			r.BudgetRate/1e6, r.Fixed.MaxWindowRate()/1e6)
	}
	if r.Budgeted.Bits() >= r.Fixed.Bits() {
		t.Errorf("budgeted spent %.1f Mb, fixed %.1f — bucket never stretched a gap",
			r.Budgeted.Bits()/1e6, r.Fixed.Bits()/1e6)
	}

	out := RenderAdaptive(r)
	for _, want := range []string{"schedule=fixed", "schedule=adaptive", "schedule=budgeted",
		"volatile", "quiet", "saved", "under cap", "path-05"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestDeterminismAdaptiveSchedule: identical Options must render
// byte-identically regardless of host scheduling — the determinism
// contract extended through the scheduler feedback loop (store → ρ →
// gap) and the budget bucket. CI runs this with -race -count=2.
func TestDeterminismAdaptiveSchedule(t *testing.T) {
	a := RenderAdaptive(AdaptiveSchedule(adaptOpt))
	b := RenderAdaptive(AdaptiveSchedule(adaptOpt))
	if a != b {
		t.Fatalf("two identical runs rendered differently:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}
