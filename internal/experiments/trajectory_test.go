package experiments

import (
	"strings"
	"testing"
)

// trajOpt gives 4 rounds per path (2 per window) so the test stays
// fast while both windows hold more than one point.
var trajOpt = Options{Scale: 0.5, Seed: 77}

// TestAvailBwTrajectory: the stored per-path series must track the
// mid-run cross-traffic step — correct level in both windows and a
// mean move in the step's direction — on every path, for both step
// directions.
func TestAvailBwTrajectory(t *testing.T) {
	res := AvailBwTrajectory(trajOpt)
	if len(res.Paths) != TrajectoryPaths {
		t.Fatalf("%d paths, want %d", len(res.Paths), TrajectoryPaths)
	}
	if res.StepRound <= 0 || res.StepRound >= res.Rounds {
		t.Fatalf("step round %d outside (0, %d)", res.StepRound, res.Rounds)
	}
	ups := 0
	for _, p := range res.Paths {
		if p.StepUp {
			ups++
		}
		if len(p.Points) != res.Rounds {
			t.Errorf("%s: %d stored points, want %d", p.Path, len(p.Points), res.Rounds)
		}
		if p.StepAt <= 0 {
			t.Errorf("%s: step boundary not found in stored series", p.Path)
		}
		if p.Before.Count != res.StepRound || p.After.Count != res.Rounds-res.StepRound {
			t.Errorf("%s: windows hold %d+%d points, want %d+%d",
				p.Path, p.Before.Count, p.After.Count, res.StepRound, res.Rounds-res.StepRound)
		}
		if p.StepUp != (p.TrueAfter < p.TrueBefore) {
			t.Errorf("%s: step direction inconsistent: up=%v, A %v → %v",
				p.Path, p.StepUp, p.TrueBefore, p.TrueAfter)
		}
		if !p.Tracked() {
			t.Errorf("%s: series did not track the step: before=%v after=%v move=%v (true %.1f → %.1f Mb/s)",
				p.Path, p.TrackedBefore, p.TrackedAfter, p.TrackedMove,
				p.TrueBefore/1e6, p.TrueAfter/1e6)
		}
	}
	if ups != TrajectoryPaths/2 {
		t.Errorf("%d step-up paths, want half of %d", ups, TrajectoryPaths)
	}

	out := RenderTrajectory(res)
	for _, want := range []string{"path-07", "|step|", "tracked", "load+", "load-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAvailBwTrajectoryDeterministic: identical Options must give
// byte-identical rendered results regardless of host scheduling — the
// monitor's reproducibility contract extended through the store and
// the windowed aggregation.
func TestAvailBwTrajectoryDeterministic(t *testing.T) {
	a := RenderTrajectory(AvailBwTrajectory(trajOpt))
	b := RenderTrajectory(AvailBwTrajectory(trajOpt))
	if a != b {
		t.Fatalf("two identical runs rendered differently:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}
