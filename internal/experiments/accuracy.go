package experiments

import (
	"fmt"

	"repro/internal/crosstraffic"
	"repro/internal/stats"

	pathload "repro"
)

// An AccuracyPoint is one bar of the paper's Figs. 5–7: the mean
// pathload range over many runs of one simulated condition, compared
// with the configured avail-bw.
type AccuracyPoint struct {
	Label  string  // condition, e.g. "pareto u_t=60%"
	Param  float64 // swept parameter value
	TrueA  float64 // configured end-to-end avail-bw, bits/s
	MeanLo float64 // mean of reported lower bounds
	MeanHi float64 // mean of reported upper bounds
	CoVLo  float64 // coefficient of variation of the lower bounds
	CoVHi  float64
	Runs   int
	// Contained reports whether the mean range brackets TrueA, the
	// paper's headline accuracy criterion.
	Contained bool
	// CenterErr is (center − TrueA)/TrueA.
	CenterErr float64
}

// paperFig5Runs is the per-condition run count of §V-A.
const paperFig5Runs = 50

type accuracyCase struct {
	label string
	param float64
	topo  Topology
}

// accuracySweep runs pathload repeatedly per case and aggregates.
func accuracySweep(opt Options, cases []accuracyCase, runsFull int) []AccuracyPoint {
	opt = opt.withDefaults()
	runs := opt.runs(runsFull)
	out := make([]AccuracyPoint, 0, len(cases))
	for ci, c := range cases {
		var los, his []float64
		for r := 0; r < runs; r++ {
			topo := c.topo
			topo.Seed = opt.runSeed(ci*1000 + r)
			res, _, err := measureOnce(topo, pathload.Config{})
			if err != nil {
				panic(fmt.Sprintf("experiments: accuracy sweep %q run %d: %v", c.label, r, err))
			}
			los = append(los, res.Lo)
			his = append(his, res.Hi)
		}
		a := c.topo.AvailBw()
		p := AccuracyPoint{
			Label:  c.label,
			Param:  c.param,
			TrueA:  a,
			MeanLo: stats.Mean(los),
			MeanHi: stats.Mean(his),
			CoVLo:  stats.CoV(los),
			CoVHi:  stats.CoV(his),
			Runs:   runs,
		}
		p.Contained = p.MeanLo <= a && a <= p.MeanHi
		p.CenterErr = ((p.MeanLo+p.MeanHi)/2 - a) / a
		out = append(out, p)
	}
	return out
}

// Fig5 reproduces the paper's Fig. 5: pathload accuracy across tight
// link utilizations 20–80% under Poisson and heavy-tailed Pareto cross
// traffic. The expected shape: every mean range brackets the true
// avail-bw, with Pareto ranges somewhat wider.
func Fig5(opt Options) []AccuracyPoint {
	var cases []accuracyCase
	for _, model := range []crosstraffic.Model{crosstraffic.ModelPoisson, crosstraffic.ModelPareto} {
		for _, u := range []float64{0.2, 0.4, 0.6, 0.8} {
			cases = append(cases, accuracyCase{
				label: fmt.Sprintf("%v u_t=%.0f%%", model, u*100),
				param: u,
				topo:  Topology{Model: crosstraffic.ModelPareto, TightUtil: u},
			})
			cases[len(cases)-1].topo.Model = model
		}
	}
	return accuracySweep(opt, cases, paperFig5Runs)
}

// Fig6 reproduces Fig. 6: accuracy as the *non-tight* links' load u_nt
// sweeps 20–80% for two path lengths. The end-to-end avail-bw stays
// 4 Mb/s throughout; the expectation is that non-tight queueing adds
// OWD noise but does not break the estimate (centers within ~10%).
func Fig6(opt Options) []AccuracyPoint {
	var cases []accuracyCase
	for _, h := range []int{3, 6} {
		for _, u := range []float64{0.2, 0.4, 0.6, 0.8} {
			cases = append(cases, accuracyCase{
				label: fmt.Sprintf("h=%d u_nt=%.0f%%", h, u*100),
				param: u,
				topo:  Topology{Hops: h, NonTightUtil: u, Model: crosstraffic.ModelPareto},
			})
		}
	}
	return accuracySweep(opt, cases, paperFig5Runs)
}

// Fig7 reproduces Fig. 7: accuracy versus the path tightness factor
// β = A_nt/A. With β well above 1 there is a single tight link and the
// range brackets A; as β → 1 every link becomes tight and pathload
// systematically underestimates, more severely on the longer path —
// the paper's one documented failure mode.
func Fig7(opt Options) []AccuracyPoint {
	var cases []accuracyCase
	for _, h := range []int{3, 6} {
		for _, beta := range []float64{4, 2, 1.33, 1} {
			cases = append(cases, accuracyCase{
				label: fmt.Sprintf("h=%d beta=%.2f", h, beta),
				param: beta,
				topo:  Topology{Hops: h, Beta: beta, Model: crosstraffic.ModelPareto},
			})
		}
	}
	return accuracySweep(opt, cases, paperFig5Runs)
}
