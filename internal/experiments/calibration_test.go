package experiments

import (
	"testing"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/simprobe"
	"repro/internal/stats"

	pathload "repro"
)

// TestCalibrationAcrossLoads is a mini Fig-5: across utilizations and
// both traffic models it checks that the mean reported range brackets
// the true avail-bw and that the range center is not badly biased.
func TestCalibrationAcrossLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run calibration is slow")
	}
	const runs = 10
	for _, model := range []crosstraffic.Model{crosstraffic.ModelPoisson, crosstraffic.ModelPareto} {
		for _, util := range []float64{0.2, 0.4, 0.6, 0.8} {
			var los, his []float64
			a := 10e6 * (1 - util)
			for r := 0; r < runs; r++ {
				net := Topology{Model: model, TightUtil: util, Seed: int64(1000*r + 17)}.Build()
				net.Warmup(3 * netsim.Second)
				prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
				res, err := pathload.Run(prober, pathload.Config{})
				if err != nil {
					t.Fatalf("u=%v run %d: %v", util, r, err)
				}
				los = append(los, res.Lo)
				his = append(his, res.Hi)
			}
			lo, hi := stats.Mean(los), stats.Mean(his)
			mid := (lo + hi) / 2
			t.Logf("%v u=%.0f%%: A=%.1f Mb/s, mean range [%.2f, %.2f], center %.2f (bias %+.0f%%)",
				model, util*100, a/1e6, lo/1e6, hi/1e6, mid/1e6, (mid-a)/a*100)
			if lo > a || hi < a {
				t.Errorf("%v u=%.0f%%: mean range [%.2f, %.2f] Mb/s misses A=%.1f",
					model, util*100, lo/1e6, hi/1e6, a/1e6)
			}
			if bias := (mid - a) / a; bias > 0.45 || bias < -0.45 {
				t.Errorf("%v u=%.0f%%: center bias %+.0f%% too large", model, util*100, bias*100)
			}
		}
	}
}
