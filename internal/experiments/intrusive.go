package experiments

import (
	"fmt"

	"repro/internal/mrtg"
	"repro/internal/netsim"
	"repro/internal/simprobe"
	"repro/internal/stats"
	"repro/internal/tcpsim"

	pathload "repro"
)

// An IntrusiveInterval is one 5-minute interval of the §VIII
// experiment: pathload runs during B and D, nothing during A, C, E.
type IntrusiveInterval struct {
	Name           string
	PathloadActive bool
	Avail          float64 // MRTG avail-bw of the tight link, bits/s
	Runs           int     // pathload runs completed
	MeanEstimate   float64 // mean of the pathload range centers
}

// An IntrusiveResult aggregates Figs. 17 and 18.
type IntrusiveResult struct {
	Intervals []IntrusiveInterval
	// AvailChange is mean avail during pathload intervals over mean
	// avail during quiet intervals, minus 1. The paper finds no
	// measurable decrease.
	AvailChange float64
	// RTT means in seconds for quiet versus pathload intervals
	// (100 ms probes, Fig. 18), and their relative change.
	RTTQuiet, RTTBusy float64
	RTTChange         float64
	// ProbeStreamsLost counts probe streams that saw any loss; the
	// paper reports none.
	ProbeStreamsLost int
	PingsLost        int
	RTTSeries        []tcpsim.PingSample
}

// Fig17and18 reproduces Figs. 17 and 18: the §VII experiment repeated
// with pathload in place of the BTC connection. Expected shape: the
// avail-bw and the 100-ms RTT series are statistically indistinguishable
// across quiet and probing intervals, no probe stream suffers loss, and
// no ping is lost — pathload is non-intrusive where a BTC transfer is
// anything but.
func Fig17and18(opt Options) IntrusiveResult {
	opt = opt.withDefaults()
	interval := opt.window(btcIntervalFull, 30*netsim.Second)

	p := buildBTCPath(opt.runSeed(170))
	p.sim.RunFor(warmup)

	mon := mrtg.NewMonitor(p.sim, p.tight, interval)
	mon.Start()
	ping := tcpsim.NewPinger(p.sim, p.links, p.reverse, 100*netsim.Millisecond, 64)
	ping.Start()
	prober := simprobe.New(p.sim, p.links, p.reverse)

	var res IntrusiveResult
	var quietAvail, busyAvail, quietRTT, busyRTT []float64
	names := []string{"A", "B", "C", "D", "E"}

	for i, name := range names {
		active := name == "B" || name == "D"
		end := p.sim.Now() + interval
		pingStart := len(ping.Samples())
		iv := IntrusiveInterval{Name: name, PathloadActive: active}

		if active {
			var centers []float64
			for p.sim.Now() < end {
				r, err := pathload.Run(prober, pathload.Config{})
				if err != nil {
					panic(fmt.Sprintf("experiments: fig17 interval %s: %v", name, err))
				}
				// The real tool spends a few seconds between runs on
				// reporting and control-channel setup.
				prober.Idle(5 * netsim.Second.Duration())
				centers = append(centers, r.Mid())
				for _, ft := range r.Fleets {
					for _, st := range ft.Streams {
						if st.Loss > 0 {
							res.ProbeStreamsLost++
						}
					}
				}
			}
			iv.Runs = len(centers)
			iv.MeanEstimate = stats.Mean(centers)
			p.sim.RunFor(end - p.sim.Now())
		} else {
			p.sim.RunFor(interval)
		}

		if len(mon.Readings()) > i {
			iv.Avail = mon.Readings()[i].Avail
		}
		for _, s := range ping.Samples()[pingStart:] {
			if active {
				busyRTT = append(busyRTT, s.RTT.Seconds())
			} else {
				quietRTT = append(quietRTT, s.RTT.Seconds())
			}
		}
		if active {
			busyAvail = append(busyAvail, iv.Avail)
		} else {
			quietAvail = append(quietAvail, iv.Avail)
		}
		res.Intervals = append(res.Intervals, iv)
	}

	// Let in-flight pings land before accounting losses.
	ping.Stop()
	p.sim.RunFor(2 * netsim.Second)

	if m := stats.Mean(quietAvail); m > 0 {
		res.AvailChange = stats.Mean(busyAvail)/m - 1
	}
	res.RTTQuiet = stats.Mean(quietRTT)
	res.RTTBusy = stats.Mean(busyRTT)
	if res.RTTQuiet > 0 {
		res.RTTChange = res.RTTBusy/res.RTTQuiet - 1
	}
	res.PingsLost = ping.Sent() - len(ping.Samples())
	res.RTTSeries = ping.Samples()
	return res
}
