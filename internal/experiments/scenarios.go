package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/baseline"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/simprobe"

	pathload "repro"
)

// ScenarioLoads are the tight-link utilizations every scenario is
// graded under.
var ScenarioLoads = []float64{0.40, 0.70}

// ScenarioEstimators names the graded estimators: SLoPS (pathload's
// iterative search) and the min-plus direct-probing baseline
// (Liebeherr et al.) — two independently derived methods over the same
// probers, so per-scenario divergence is attributable to the method,
// not the plumbing.
var ScenarioEstimators = []string{"slops", "minplus"}

// scenarioSlack is the bracketing tolerance: pathload's termination
// resolutions ω + χ, applied to both estimators so hit rates compare
// like for like.
const scenarioSlack = pathload.DefaultResolution + pathload.DefaultGreyResolution

// scenarioSettle is the simulated settling time after an epoch change
// (long enough to cover the flash scenario's 2 s ramp) and between
// rounds.
const (
	scenarioSettle   = 3 * netsim.Second
	scenarioRoundGap = 500 * netsim.Millisecond
)

// A ScenarioRound is one measurement round of one cell, graded against
// the analytic truth of the epoch it ran in.
type ScenarioRound struct {
	Epoch  int
	Truth  float64 // the epoch's analytic avail-bw
	Lo, Hi float64 // the estimator's reported range
	Grey   bool    // SLoPS reported a grey region
	Floor  bool    // the search collapsed to its minimum rate
}

// Hit reports whether the round's range brackets its epoch's truth
// within the shared slack.
func (r ScenarioRound) Hit() bool {
	return r.Truth >= r.Lo-scenarioSlack && r.Truth <= r.Hi+scenarioSlack
}

// A ScenarioCell is one (scenario, load, estimator) cell of the
// grading matrix.
type ScenarioCell struct {
	Scenario    string
	FailureMode string // documented expected failure ("" = expected to track)
	Load        float64
	Estimator   string
	Rounds      []ScenarioRound
}

// Hits counts bracketing rounds.
func (c ScenarioCell) Hits() int {
	n := 0
	for _, r := range c.Rounds {
		if r.Hit() {
			n++
		}
	}
	return n
}

// MeanWidth is the mean reported range width in bits/s.
func (c ScenarioCell) MeanWidth() float64 {
	var sum float64
	for _, r := range c.Rounds {
		sum += r.Hi - r.Lo
	}
	return sum / float64(len(c.Rounds))
}

// GreyRounds and FloorRounds count rounds with a grey region and
// rounds collapsed to the search floor.
func (c ScenarioCell) GreyRounds() int { return c.count(func(r ScenarioRound) bool { return r.Grey }) }
func (c ScenarioCell) FloorRounds() int {
	return c.count(func(r ScenarioRound) bool { return r.Floor })
}

func (c ScenarioCell) count(f func(ScenarioRound) bool) int {
	n := 0
	for _, r := range c.Rounds {
		if f(r) {
			n++
		}
	}
	return n
}

// Lag is the tracking lag: across epoch transitions, the largest
// number of rounds the estimator needed in the new epoch before first
// bracketing the new truth (0 = immediate). It returns -1 when some
// epoch's truth was never reacquired, and 0 for single-epoch cells.
func (c ScenarioCell) Lag() int {
	lag, worst := -1, 0
	epoch := 0
	inLagged := false
	for _, r := range c.Rounds {
		if r.Epoch != epoch {
			if inLagged {
				return -1 // previous epoch never reacquired
			}
			epoch = r.Epoch
			lag, inLagged = 0, true
		}
		if inLagged {
			if r.Hit() {
				if lag > worst {
					worst = lag
				}
				inLagged = false
			} else {
				lag++
			}
		}
	}
	if inLagged {
		return -1
	}
	return worst
}

// A ScenariosResult is the whole grading matrix.
type ScenariosResult struct {
	Cells []ScenarioCell
	// K and N are SLoPS's per-measurement stream parameters; Rounds the
	// rounds per cell.
	K, N, Rounds int
}

// Scenarios grades SLoPS and the min-plus baseline over the adversarial
// scenario matrix: every registry scenario × ScenarioLoads ×
// ScenarioEstimators, Rounds measurement rounds per cell, with
// multi-epoch scenarios advancing at round boundaries (rounds split
// evenly across epochs). Cells run in parallel, each on its own
// isolated, seeded simulation, so identical Options give byte-identical
// results regardless of host scheduling.
func Scenarios(opt Options) ScenariosResult {
	opt = opt.withDefaults()
	cfg := contentionConfig(opt)
	rounds := opt.runs(8)
	if rounds < 4 {
		rounds = 4
	}

	type cellSpec struct {
		name      string
		load      float64
		estimator string
	}
	var specs []cellSpec
	for _, name := range scenario.Names() {
		for _, load := range ScenarioLoads {
			for _, est := range ScenarioEstimators {
				specs = append(specs, cellSpec{name, load, est})
			}
		}
	}

	cells := make([]ScenarioCell, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		i, sp := i, sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells[i] = runScenarioCell(sp.name, sp.load, sp.estimator, rounds, opt.runSeed(i), cfg)
		}()
	}
	wg.Wait()
	return ScenariosResult{Cells: cells, K: cfg.PacketsPerStream, N: cfg.StreamsPerFleet, Rounds: rounds}
}

// runScenarioCell measures one cell: build the scenario fresh, warm it
// up, then run rounds back-to-back, advancing the epoch at its round
// boundary (the single driving goroutine owns the simulator, so
// Advance between Run calls is safe).
func runScenarioCell(name string, load float64, estimator string, rounds int, seed int64, cfg pathload.Config) ScenarioCell {
	s, err := scenario.Get(name, scenario.Params{Load: load})
	if err != nil {
		panic(fmt.Sprintf("experiments: scenarios: %v", err))
	}
	inst := s.MustBuild(seed)
	inst.Mesh.Warmup(warmup)
	p := simprobe.New(inst.Sim(), inst.Path.Route, contentionReverse)

	// The min-plus sweep needs an explicit ceiling: the route's narrow
	// (minimum-capacity) link.
	narrow := s.Spec.Links[0].Capacity
	for _, l := range s.Spec.Links {
		if l.Capacity < narrow {
			narrow = l.Capacity
		}
	}

	cell := ScenarioCell{Scenario: name, FailureMode: s.FailureMode, Load: load, Estimator: estimator}
	for r := 0; r < rounds; r++ {
		// Rounds split evenly across epochs: round r belongs to epoch
		// r·E/rounds.
		for inst.Epoch() < r*inst.Epochs()/rounds {
			inst.Advance()
			inst.Sim().RunFor(scenarioSettle)
		}
		round := ScenarioRound{Epoch: inst.Epoch(), Truth: inst.Truth()}
		switch estimator {
		case "slops":
			res, err := pathload.Run(p, cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: scenarios: %s load %.2f round %d: %v", name, load, r, err))
			}
			round.Lo, round.Hi = res.Lo, res.Hi
			round.Grey, round.Floor = res.GreySet, res.HitMin
		case "minplus":
			res, err := baseline.MinPlus(p, baseline.MinPlusConfig{MaxRate: narrow})
			if err != nil {
				panic(fmt.Sprintf("experiments: scenarios: %s load %.2f round %d: %v", name, load, r, err))
			}
			round.Lo, round.Hi = res.Lo, res.Hi
			round.Floor = res.Backlogged && res.Probed == 1
		default:
			panic(fmt.Sprintf("experiments: scenarios: unknown estimator %q", estimator))
		}
		cell.Rounds = append(cell.Rounds, round)
		inst.Sim().RunFor(scenarioRoundGap)
	}
	return cell
}

// RenderScenarios formats the grading matrix: one row per cell with
// bracketing hit rate, tracking lag, mean range width, grey and floor
// round counts, and the final round's range against its truth. The
// output contains no wall-clock fields: identical Options render
// byte-identically.
func RenderScenarios(r ScenariosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenarios: SLoPS vs min-plus direct probing across adversarial conditions\n")
	fmt.Fprintf(&b, "stream params K=%d N=%d; %d rounds per cell; slack = ω+χ = %.1f Mb/s; widths in Mb/s\n",
		r.K, r.N, r.Rounds, scenarioSlack/1e6)
	fmt.Fprintf(&b, "\n%-9s %5s %-8s %6s %5s %7s %5s %6s  %-24s %7s\n",
		"scenario", "load", "method", "hits", "lag", "width", "grey", "floor", "final [lo,hi]", "truth")
	last := ""
	for _, c := range r.Cells {
		if c.Scenario != last {
			if last != "" {
				fmt.Fprintln(&b)
			}
			last = c.Scenario
		}
		lag := fmt.Sprintf("%d", c.Lag())
		if c.Lag() < 0 {
			lag = "never"
		}
		fin := c.Rounds[len(c.Rounds)-1]
		fmt.Fprintf(&b, "%-9s %5.2f %-8s %3d/%-2d %5s %7.2f %5d %6d  [%8.2f, %8.2f ] %7.2f\n",
			c.Scenario, c.Load, c.Estimator, c.Hits(), len(c.Rounds), lag,
			c.MeanWidth()/1e6, c.GreyRounds(), c.FloorRounds(),
			fin.Lo/1e6, fin.Hi/1e6, fin.Truth/1e6)
	}

	fmt.Fprintf(&b, "\ndocumented failure modes:\n")
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if c.FailureMode == "" || seen[c.Scenario] {
			continue
		}
		seen[c.Scenario] = true
		fmt.Fprintf(&b, "  %-9s %s\n", c.Scenario, c.FailureMode)
	}
	return b.String()
}
