package experiments

import (
	"strings"
	"testing"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
)

// smallOpt keeps experiment tests fast.
var smallOpt = Options{Scale: 0.05, Seed: 77}

// TestTopologyDefaults pins the paper's §V-A defaults.
func TestTopologyDefaults(t *testing.T) {
	topo := Topology{}.withDefaults()
	if topo.Hops != 5 || topo.TightCap != 10e6 || topo.TightUtil != 0.6 {
		t.Fatalf("defaults %+v", topo)
	}
	if got := (Topology{}).AvailBw(); got != 4e6 {
		t.Fatalf("default avail-bw %v, want 4 Mb/s", got)
	}
}

// TestTopologyBuildShape checks link wiring and tight-link placement.
func TestTopologyBuildShape(t *testing.T) {
	net := Topology{Hops: 5, Seed: 1}.Build()
	if len(net.Links) != 5 {
		t.Fatalf("%d links, want 5", len(net.Links))
	}
	if net.TightIdx != 2 {
		t.Fatalf("tight index %d, want middle", net.TightIdx)
	}
	if net.Tight().Capacity() != 10_000_000 {
		t.Fatalf("tight capacity %d", net.Tight().Capacity())
	}
	for i, l := range net.Links {
		if i != net.TightIdx && l.Capacity() <= net.Tight().Capacity() {
			t.Fatalf("non-tight link %d capacity %d not above tight", i, l.Capacity())
		}
	}
}

// TestTopologyCrossRates verifies each link's configured utilization is
// realized by the generated traffic.
func TestTopologyCrossRates(t *testing.T) {
	net := Topology{Model: crosstraffic.ModelPoisson, Seed: 5}.Build()
	before := make([]netsim.LinkCounters, len(net.Links))
	net.Warmup(2 * netsim.Second)
	for i, l := range net.Links {
		before[i] = l.Counters()
	}
	start := net.Sim.Now()
	net.Sim.RunFor(60 * netsim.Second)
	window := net.Sim.Now() - start
	for i, l := range net.Links {
		util := netsim.Utilization(before[i], l.Counters(), window)
		want := 0.2
		if i == net.TightIdx {
			want = 0.6
		}
		if util < want-0.05 || util > want+0.05 {
			t.Errorf("link %d utilization %.3f, want ≈%.2f", i, util, want)
		}
	}
}

// TestTopologyBadBeta pins the β ≥ 1 contract.
func TestTopologyBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("β < 1 accepted")
		}
	}()
	Topology{Beta: 0.5}.Build()
}

// TestMeasuredAvailMatchesConfig: the counter-based ground truth agrees
// with the configured avail-bw.
func TestMeasuredAvailMatchesConfig(t *testing.T) {
	net := Topology{Seed: 9}.Build()
	net.Warmup(2 * netsim.Second)
	got := net.MeasuredAvail(func() { net.Sim.RunFor(60 * netsim.Second) })
	if got < 3.6e6 || got > 4.4e6 {
		t.Fatalf("measured avail %.2f Mb/s, want ≈4", got/1e6)
	}
}

// TestStopTraffic silences the path.
func TestStopTraffic(t *testing.T) {
	net := Topology{Seed: 2}.Build()
	net.Warmup(netsim.Second)
	net.StopTraffic()
	net.Sim.RunFor(netsim.Second) // drain
	before := net.Tight().Counters()
	net.Sim.RunFor(5 * netsim.Second)
	if got := net.Tight().Counters().BytesOut - before.BytesOut; got != 0 {
		t.Fatalf("%d bytes transmitted after StopTraffic", got)
	}
}

// TestOWDTracesShape: Fig 1 increasing, Fig 2 not.
func TestOWDTracesShape(t *testing.T) {
	traces := OWDTraces(Options{Seed: 7})
	if len(traces) != 3 {
		t.Fatalf("%d traces, want 3", len(traces))
	}
	if traces[0].Kind != "I" {
		t.Errorf("fig1 (R=96 > A≈74) classified %q", traces[0].Kind)
	}
	if traces[1].Kind == "I" {
		t.Errorf("fig2 (R=37 < A≈74) classified increasing")
	}
	if traces[0].RiseMs <= 0 {
		t.Errorf("fig1 OWD rise %.3f ms, want positive", traces[0].RiseMs)
	}
}

// TestBaselineComparisonShape: cprobe must exceed the true avail-bw at
// every load and the overestimation must grow with load.
func TestBaselineComparisonShape(t *testing.T) {
	pts := BaselineComparison(smallOpt)
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4", len(pts))
	}
	prevExcess := 0.0
	for i, p := range pts {
		if p.Cprobe <= p.TrueA {
			t.Errorf("u=%.0f%%: cprobe %.2f below true A %.2f", p.Util*100, p.Cprobe/1e6, p.TrueA/1e6)
		}
		excess := p.Cprobe - p.TrueA
		if i > 0 && excess < prevExcess*0.5 {
			t.Errorf("u=%.0f%%: overestimation %.2f Mb/s collapsed from %.2f", p.Util*100, excess/1e6, prevExcess/1e6)
		}
		prevExcess = excess
		// Cprobe should track the analytical ADR within ~15%.
		if rel := (p.Cprobe - p.FluidADR) / p.FluidADR; rel > 0.15 || rel < -0.15 {
			t.Errorf("u=%.0f%%: cprobe %.2f vs fluid ADR %.2f (rel %.2f)", p.Util*100, p.Cprobe/1e6, p.FluidADR/1e6, rel)
		}
	}
}

// TestTimescaleVarianceShape: σ(A) must fall as τ grows, per model.
func TestTimescaleVarianceShape(t *testing.T) {
	cdfs := TimescaleVariance(Options{Scale: 0.3, Seed: 5})
	for _, c := range cdfs {
		if len(c.Points) < 3 {
			t.Fatalf("%s: only %d timescale points", c.Model, len(c.Points))
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].StdDev >= c.Points[i-1].StdDev {
				t.Errorf("%s: σ(τ=%v)=%.0f not below σ(τ=%v)=%.0f",
					c.Model, c.Points[i].Tau, c.Points[i].StdDev,
					c.Points[i-1].Tau, c.Points[i-1].StdDev)
			}
		}
	}
}

// TestRenderersProduceTables smoke-tests every text renderer against
// tiny experiment runs; a renderer that panics or emits nothing is a
// broken report.
func TestRenderersProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several scaled-down experiments")
	}
	outputs := map[string]string{
		"owd":       RenderOWDTraces(OWDTraces(smallOpt)),
		"fig5":      RenderAccuracy("t", Fig5(smallOpt)),
		"fig8":      RenderSensitivity("t", "f", Fig8(smallOpt)),
		"fig11":     RenderDynamics("t", Fig11(smallOpt)),
		"fig15":     RenderBTC(Fig15and16(smallOpt)),
		"fig17":     RenderIntrusive(Fig17and18(smallOpt)),
		"baseline":  RenderBaseline(BaselineComparison(smallOpt)),
		"timescale": RenderTimescale(TimescaleVariance(smallOpt)),
	}
	for name, out := range outputs {
		if len(out) < 80 {
			t.Errorf("%s renderer produced %d bytes", name, len(out))
		}
		if !strings.Contains(out, "\n") {
			t.Errorf("%s renderer produced no table rows", name)
		}
	}
}

// TestOptionsScaling pins the run-count scaling rules.
func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.1}.withDefaults()
	if got := o.runs(110); got != 11 {
		t.Errorf("runs(110) at 0.1 = %d, want 11", got)
	}
	if got := o.runs(10); got != 3 {
		t.Errorf("runs(10) at 0.1 = %d, want floor 3", got)
	}
	if got := (Options{Scale: 5}.withDefaults()).runs(12); got != 12 {
		t.Errorf("runs(12) at 5 = %d, want cap 12", got)
	}
	if got := o.window(300*netsim.Second, 30*netsim.Second); got != 30*netsim.Second {
		t.Errorf("window floor = %v, want 30s", got)
	}
}
