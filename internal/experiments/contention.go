package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mesh"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// ContentionFleetSizes are the fleet sizes swept per backbone shape.
var ContentionFleetSizes = []int{2, 4}

// contentionShapes are the backbone shapes swept, in report order:
// three shared-link patterns plus the disjoint control fleet.
func contentionShapes() []string { return mesh.ShapeNames() }

// A ContentionPath is one path's solo-versus-co-probing comparison.
type ContentionPath struct {
	Path string
	// True is the analytic avail-bw A = min C_l·(1−u_l) over the route,
	// without probe load.
	True float64
	// SharedLinks counts the route's links that some sibling fleet path
	// also traverses; 0 marks a disjoint path.
	SharedLinks int
	// SoloLo/SoloHi is the range measured probing alone on a fresh,
	// identically seeded mesh; CoLo/CoHi the range with the whole fleet
	// co-probing.
	SoloLo, SoloHi float64
	CoLo, CoHi     float64
	// CoMRTG is the tight link's counter-measured avail-bw over the co
	// pass, fleet probe load included — the §VIII intrusiveness view of
	// the same run.
	CoMRTG float64
}

// SoloMid and CoMid are the range midpoints.
func (p ContentionPath) SoloMid() float64 { return (p.SoloLo + p.SoloHi) / 2 }
func (p ContentionPath) CoMid() float64   { return (p.CoLo + p.CoHi) / 2 }

// Shift is the fleet self-interference on this path: how far co-probing
// moved the midpoint estimate from the solo baseline (negative =
// under-reports under contention, the tool-interference direction).
func (p ContentionPath) Shift() float64 { return p.CoMid() - p.SoloMid() }

// SoloErr and CoErr are each range's distance to the true avail-bw
// (zero when the range brackets it).
func (p ContentionPath) SoloErr() float64 { return rangeErr(p.SoloLo, p.SoloHi, p.True) }
func (p ContentionPath) CoErr() float64   { return rangeErr(p.CoLo, p.CoHi, p.True) }

// rangeErr returns how far a lies outside [lo, hi].
func rangeErr(lo, hi, a float64) float64 {
	switch {
	case a < lo:
		return lo - a
	case a > hi:
		return a - hi
	default:
		return 0
	}
}

// A ContentionCase is one (shape, fleet size) cell of the sweep.
type ContentionCase struct {
	Shape string
	Fleet int
	Paths []ContentionPath
}

// A ContentionResult is the outcome of the whole sweep.
type ContentionResult struct {
	Cases []ContentionCase
	// K and N are the per-measurement stream parameters used.
	K, N int
}

// OverlappingPaths and DisjointPaths split the sweep's path results by
// whether the path shares links with fleet siblings.
func (r ContentionResult) OverlappingPaths() []ContentionPath { return r.split(true) }
func (r ContentionResult) DisjointPaths() []ContentionPath    { return r.split(false) }

func (r ContentionResult) split(shared bool) []ContentionPath {
	var out []ContentionPath
	for _, c := range r.Cases {
		for _, p := range c.Paths {
			if (p.SharedLinks > 0) == shared {
				out = append(out, p)
			}
		}
	}
	return out
}

// contentionConfig scales the per-measurement stream parameters: the
// paper's K and N at Scale 1, floored so trend classification stays
// meaningful at test scales.
func contentionConfig(o Options) pathload.Config {
	k := int(float64(pathload.DefaultPacketsPerStream)*o.Scale + 0.5)
	if k < 40 {
		k = 40
	}
	n := int(float64(pathload.DefaultStreamsPerFleet)*o.Scale + 0.5)
	if n < 4 {
		n = 4
	}
	return pathload.Config{PacketsPerStream: k, StreamsPerFleet: n}
}

// contentionReverse is the modeled reverse-path delay for mesh probers.
const contentionReverse = 10 * netsim.Millisecond

// Contention measures fleet self-interference on shared backbones: for
// every backbone shape and fleet size, each path is measured twice —
// once probing alone on a fresh mesh, once with the whole fleet
// co-probing the same (identically seeded, so identical cross-traffic)
// mesh through the deterministic sequencer, probe streams genuinely
// overlapping on the shared links. The solo/co difference is therefore
// attributable to co-probing alone. Disjoint fleets are the control:
// their sequenced timelines replay the solo runs exactly, so their
// shift is identically zero, while overlapping paths show the
// tool-interference effect — co-running SLoPS streams raise each
// other's OWD trends and push estimates down.
//
// Identical Options give byte-identical results regardless of host
// scheduling: solo passes own their simulators, and the co pass is
// co-scheduled by simprobe.Sequencer.
func Contention(opt Options) ContentionResult {
	opt = opt.withDefaults()
	cfg := contentionConfig(opt)

	res := ContentionResult{K: cfg.PacketsPerStream, N: cfg.StreamsPerFleet}
	for _, shape := range contentionShapes() {
		for _, fleet := range ContentionFleetSizes {
			res.Cases = append(res.Cases, runContentionCase(shape, fleet, opt.Seed, cfg))
		}
	}
	return res
}

// runContentionCase runs one (shape, fleet) cell: fleet solo passes and
// one co pass, in parallel — every pass owns an isolated mesh, so
// parallelism cannot perturb results.
func runContentionCase(shape string, fleet int, seed int64, cfg pathload.Config) ContentionCase {
	spec, err := mesh.Shape(shape, fleet, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: contention: %v", err))
	}

	solo := make([]pathload.Result, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := spec.MustBuild()
			m.Warmup(warmup)
			p := simprobe.New(m.Sim, m.Paths()[i].Route, contentionReverse)
			r, err := pathload.Run(p, cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: contention: %s solo %s: %v", shape, m.Paths()[i].Name, err))
			}
			solo[i] = r
		}()
	}

	co := make([]pathload.Result, fleet)
	mrtg := make([]float64, fleet)
	// Static per-path ground truth (name, analytic A, route links),
	// published by the co-pass goroutine; safe to read after wg.Wait.
	var paths []*mesh.Path
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := spec.MustBuild()
		paths = m.Paths()
		m.Warmup(warmup)
		seq, probers := m.SequencedProbers(contentionReverse)
		before := make([]netsim.LinkCounters, fleet)
		for i, p := range m.Paths() {
			before[i] = p.TightLink().Counters()
		}
		start := m.Sim.Now()

		var fleetWG sync.WaitGroup
		for i, p := range probers {
			i, p := i, p
			fleetWG.Add(1)
			go func() {
				defer fleetWG.Done()
				defer p.Retire()
				r, err := pathload.Run(p, cfg)
				if err != nil {
					panic(fmt.Sprintf("experiments: contention: %s co path %d: %v", shape, i, err))
				}
				co[i] = r
			}()
		}
		seq.Drive()
		fleetWG.Wait()

		window := m.Sim.Now() - start
		for i, p := range m.Paths() {
			link := p.TightLink()
			util := netsim.Utilization(before[i], link.Counters(), window)
			mrtg[i] = float64(link.Capacity()) * (1 - util)
		}
	}()
	wg.Wait()

	// Links shared between routes, from the spec (deterministic).
	linkRoutes := map[string]int{}
	for _, r := range spec.Routes {
		for _, l := range r.Links {
			linkRoutes[l]++
		}
	}

	c := ContentionCase{Shape: shape, Fleet: fleet}
	for i, p := range paths {
		shared := 0
		for _, l := range p.LinkNames {
			if linkRoutes[l] > 1 {
				shared++
			}
		}
		c.Paths = append(c.Paths, ContentionPath{
			Path:        p.Name,
			True:        p.AvailBw(),
			SharedLinks: shared,
			SoloLo:      solo[i].Lo, SoloHi: solo[i].Hi,
			CoLo: co[i].Lo, CoHi: co[i].Hi,
			CoMRTG: mrtg[i],
		})
	}
	return c
}

// RenderContention formats the sweep as per-case tables plus a fleet
// summary. The output contains no wall-clock fields: identical Options
// render byte-identically.
func RenderContention(r ContentionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Contention: fleet self-interference on shared backbones (solo vs co-probing)\n")
	fmt.Fprintf(&b, "stream params K=%d N=%d; ranges in Mb/s; shift = co mid − solo mid\n", r.K, r.N)
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "\nshape=%s fleet=%d\n", c.Shape, c.Fleet)
		fmt.Fprintf(&b, "  %-9s %6s %7s  %15s %6s  %15s %6s  %7s %8s\n",
			"path", "A", "shared", "solo [lo,hi]", "err", "co [lo,hi]", "err", "shift", "co-mrtg")
		for _, p := range c.Paths {
			fmt.Fprintf(&b, "  %-9s %6.2f %7d  [%6.2f,%6.2f] %6.2f  [%6.2f,%6.2f] %6.2f  %+7.2f %8.2f\n",
				p.Path, p.True/1e6, p.SharedLinks,
				p.SoloLo/1e6, p.SoloHi/1e6, p.SoloErr()/1e6,
				p.CoLo/1e6, p.CoHi/1e6, p.CoErr()/1e6,
				p.Shift()/1e6, p.CoMRTG/1e6)
		}
	}

	over := r.OverlappingPaths()
	dis := r.DisjointPaths()
	fmt.Fprintf(&b, "\nsummary:\n")
	if len(over) > 0 {
		var sum, maxAbs float64
		moved := 0
		for _, p := range over {
			sum += p.Shift()
			if a := absf(p.Shift()); a > maxAbs {
				maxAbs = a
			}
			if absf(p.Shift()) > 0 {
				moved++
			}
		}
		fmt.Fprintf(&b, "  overlapping paths: %d; mean shift %+.2f Mb/s; max |shift| %.2f; shifted: %d/%d\n",
			len(over), sum/float64(len(over))/1e6, maxAbs/1e6, moved, len(over))
	}
	if len(dis) > 0 {
		var maxAbs float64
		for _, p := range dis {
			if a := absf(p.Shift()); a > maxAbs {
				maxAbs = a
			}
		}
		fmt.Fprintf(&b, "  disjoint paths: %d; max |shift| %.2f Mb/s (control: sequenced co pass replays solo exactly)\n",
			len(dis), maxAbs/1e6)
	}
	return b.String()
}
