package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// scenarioOpt runs the grading matrix at half scale (4 rounds per cell)
// for the determinism and failure-mode tests; the golden uses the full
// default Options so it matches `cmd/repro -fig scenarios` literally.
var scenarioOpt = Options{Scale: 0.5, Seed: 3}

// TestScenariosGolden: the full grading matrix at default Options must
// render byte-identically to the committed golden — the same bytes
// `cmd/repro -fig scenarios` prints. Run with -update to regolden after
// an intentional change.
func TestScenariosGolden(t *testing.T) {
	got := RenderScenarios(Scenarios(Options{Scale: 1, Seed: 1}))
	golden := filepath.Join("testdata", "scenarios.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run once with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("grading matrix deviates from golden %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestDeterminismScenarios: identical Options must render
// byte-identically regardless of host scheduling — every cell owns an
// isolated, seeded simulation. CI runs this with -race -count=2.
func TestDeterminismScenarios(t *testing.T) {
	a := RenderScenarios(Scenarios(scenarioOpt))
	b := RenderScenarios(Scenarios(scenarioOpt))
	if a != b {
		t.Fatalf("two identical runs rendered differently:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// scenarioCell runs one cell of the matrix at full stream parameters
// with a pinned seed; everything downstream is deterministic, so the
// failure-mode assertions below are exact, not statistical.
func scenarioCell(name string, load float64, estimator string, seed int64) ScenarioCell {
	cfg := contentionConfig(Options{}.withDefaults())
	return runScenarioCell(name, load, estimator, 8, seed, cfg)
}

// TestScenarioLossyFailureMode pins the lossy scenario's documented
// failure: random loss trips SLoPS's >10% abort rule, aborted fleets
// count as "rate too high", and the search collapses to its minimum
// rate — while the min-plus baseline, which has no abort rule, keeps
// bracketing the same truth from the same impaired path.
func TestScenarioLossyFailureMode(t *testing.T) {
	slops := scenarioCell("lossy", 0.40, "slops", 11)
	if slops.FloorRounds() == 0 {
		t.Errorf("SLoPS under loss: no rounds collapsed to the minimum rate (floor %d/%d)",
			slops.FloorRounds(), len(slops.Rounds))
	}
	if slops.Hits() == len(slops.Rounds) {
		t.Errorf("SLoPS under loss bracketed every round (%d/%d); the abort collapse should cost hits",
			slops.Hits(), len(slops.Rounds))
	}
	minplus := scenarioCell("lossy", 0.40, "minplus", 11)
	if minplus.Hits() <= slops.Hits() || minplus.Hits() < 3*len(minplus.Rounds)/4 {
		t.Errorf("min-plus under loss: %d/%d hits vs SLoPS %d/%d — with no abort rule it should keep bracketing",
			minplus.Hits(), len(minplus.Rounds), slops.Hits(), len(slops.Rounds))
	}
	if minplus.FloorRounds() != 0 {
		t.Errorf("min-plus under loss: %d floor rounds, want 0", minplus.FloorRounds())
	}
}

// TestScenarioReorderFailureMode pins the reorder scenario's documented
// failure: reordering delay spikes mimic queue growth. For SLoPS the
// spurious increasing-OWD verdicts push rounds grey; for min-plus they
// inflate the train's trailing third and trigger false backlog, so the
// sweep under-reports — rounds whose entire range sits below the truth
// even with slack.
func TestScenarioReorderFailureMode(t *testing.T) {
	slops := scenarioCell("reorder", 0.40, "slops", 13)
	if g := slops.GreyRounds(); g < len(slops.Rounds)/2 {
		t.Errorf("SLoPS under reordering: %d/%d grey rounds, want a grey-dominated cell",
			g, len(slops.Rounds))
	}
	minplus := scenarioCell("reorder", 0.40, "minplus", 13)
	under := 0
	for _, r := range minplus.Rounds {
		if r.Hi+scenarioSlack < r.Truth {
			under++
		}
	}
	if under == 0 {
		t.Errorf("min-plus under reordering never under-reported; rounds %+v", minplus.Rounds)
	}
}

// TestScenarioMigrateTracking pins the migration scenario's documented
// failure and recovery: estimates from the old epoch are stale against
// the new truth (the 6.0 → 1.24 Mb/s step exceeds the slack), and the
// estimator reacquires the new truth within the remaining rounds.
func TestScenarioMigrateTracking(t *testing.T) {
	cell := scenarioCell("migrate", 0.40, "slops", 17)
	var lastOld *ScenarioRound
	sawNew := false
	for i := range cell.Rounds {
		r := &cell.Rounds[i]
		if r.Epoch == 0 {
			lastOld = r
		} else {
			sawNew = true
		}
	}
	if lastOld == nil || !sawNew {
		t.Fatalf("rounds did not span both epochs: %+v", cell.Rounds)
	}
	if !lastOld.Hit() {
		t.Errorf("last pre-migration round missed its own truth: %+v", *lastOld)
	}
	newTruth := cell.Rounds[len(cell.Rounds)-1].Truth
	if stale := (ScenarioRound{Truth: newTruth, Lo: lastOld.Lo, Hi: lastOld.Hi}); stale.Hit() {
		t.Errorf("pre-migration range [%v, %v] still brackets the post-migration truth %v — the step should exceed the slack",
			lastOld.Lo, lastOld.Hi, newTruth)
	}
	if lag := cell.Lag(); lag < 0 {
		t.Errorf("estimator never reacquired the post-migration truth: %+v", cell.Rounds)
	}
}
