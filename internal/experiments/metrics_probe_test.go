package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// TestTrendMetricDistributions is a diagnostic: it prints the PCT/PDT
// statistics of streams probing well below, near, and well above the
// true avail-bw so the classifier thresholds can be sanity-checked.
func TestTrendMetricDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	net := Topology{Seed: 7}.Build()
	net.Warmup(2 * netsim.Second)
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
	cfg := pathload.Config{}

	for _, rateMbps := range []float64{1, 2, 3, 3.9, 4.5, 5, 6, 8} {
		rate := rateMbps * 1e6
		l, tt := cfg.StreamParams(rate)
		nI := 0
		var pcts, pdts []float64
		for i := 0; i < 12; i++ {
			sr, err := prober.SendStream(pathload.StreamSpec{Rate: rate, K: 100, L: l, T: tt})
			if err != nil {
				t.Fatal(err)
			}
			owds := make([]float64, len(sr.OWDs))
			for j, s := range sr.OWDs {
				owds[j] = s.OWD.Seconds()
			}
			kind, m := core.ClassifyOWDs(owds, core.TrendConfig{})
			if kind == core.TypeIncreasing {
				nI++
			}
			pcts = append(pcts, m.PCT)
			pdts = append(pdts, m.PDT)
			prober.Idle(200 * time.Millisecond)
		}
		t.Logf("R=%.1f Mb/s (L=%dB T=%v): %d/12 increasing, PCT=%.2f PDT=%.2f",
			rateMbps, l, tt, nI, pcts, pdts)
	}
}
