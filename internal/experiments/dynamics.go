package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/crosstraffic"
	"repro/internal/stats"

	pathload "repro"
)

// A DynamicsCDF summarizes the relative-variation metric ρ (Eq. 12)
// across many pathload runs of one condition — one curve of the
// paper's Figs. 11–14.
type DynamicsCDF struct {
	Label string
	Rhos  []float64 // one ρ per run
	// Deciles holds the {5, 15, ..., 95} percentiles the paper plots.
	Deciles []float64
	Runs    int
}

// P returns the p-th percentile of the collected ρ samples.
func (d DynamicsCDF) P(p float64) float64 { return stats.Percentile(d.Rhos, p) }

// paperDynamicsRuns is the per-condition run count of §VI.
const paperDynamicsRuns = 110

// dynamicsDeciles are the percentiles the paper plots.
var dynamicsDeciles = []float64{5, 15, 25, 35, 45, 55, 65, 75, 85, 95}

// rhoSweep collects ρ across runs of per-run topologies.
func rhoSweep(opt Options, label string, runsFull int, mkTopo func(run int, rng *rand.Rand) Topology, cfg pathload.Config) DynamicsCDF {
	opt = opt.withDefaults()
	runs := opt.runs(runsFull)
	d := DynamicsCDF{Label: label, Runs: runs}
	for r := 0; r < runs; r++ {
		rng := rand.New(rand.NewSource(opt.runSeed(r) ^ 0x5eed))
		topo := mkTopo(r, rng)
		topo.Seed = opt.runSeed(r)
		res, _, err := measureOnce(topo, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: dynamics %q run %d: %v", label, r, err))
		}
		d.Rhos = append(d.Rhos, res.RelVar())
	}
	d.Deciles = stats.Percentiles(d.Rhos, dynamicsDeciles)
	return d
}

// dynTightCap is the tight link capacity of the §VI-A path (the paper's
// 12.4 Mb/s university access link).
const dynTightCap = 12.4e6

// Fig11 reproduces Fig. 11: variability of the avail-bw versus tight
// link load. Each run draws the utilization uniformly from its band.
// Expected shape: ρ grows strongly with utilization — roughly five
// times higher at 75–85% than at 20–30%.
func Fig11(opt Options) []DynamicsCDF {
	bands := []struct{ lo, hi float64 }{{0.20, 0.30}, {0.40, 0.50}, {0.75, 0.85}}
	var out []DynamicsCDF
	for _, b := range bands {
		b := b
		label := fmt.Sprintf("u=%.0f-%.0f%%", b.lo*100, b.hi*100)
		out = append(out, rhoSweep(opt, label, paperDynamicsRuns, func(run int, rng *rand.Rand) Topology {
			u := b.lo + rng.Float64()*(b.hi-b.lo)
			return Topology{TightCap: dynTightCap, TightUtil: u, Model: crosstraffic.ModelPareto}
		}, pathload.Config{}))
	}
	return out
}

// Fig12 reproduces Fig. 12: variability versus the degree of
// statistical multiplexing. Three paths run at the same ≈65%
// utilization but with tight links of different capacity and source
// counts; the per-flow share shrinks as capacity grows, so the
// aggregate smooths and ρ drops.
func Fig12(opt Options) []DynamicsCDF {
	paths := []struct {
		label   string
		cap     float64
		sources int
	}{
		{"path A (155 Mb/s)", 155e6, 100},
		{"path B (12.4 Mb/s)", 12.4e6, 30},
		{"path C (6.1 Mb/s)", 6.1e6, 10},
	}
	var out []DynamicsCDF
	for _, p := range paths {
		p := p
		out = append(out, rhoSweep(opt, p.label, paperDynamicsRuns, func(run int, rng *rand.Rand) Topology {
			u := 0.60 + rng.Float64()*0.10 // "roughly the same (around 65%)"
			return Topology{
				TightCap:      p.cap,
				TightUtil:     u,
				SourcesPerHop: p.sources,
				Model:         crosstraffic.ModelPareto,
			}
		}, pathload.Config{}))
	}
	return out
}

// Fig13 reproduces Fig. 13: variability versus the stream length K.
// Longer streams average the avail-bw over a wider timescale τ = K·T,
// so the measured variability drops.
func Fig13(opt Options) []DynamicsCDF {
	var out []DynamicsCDF
	for _, k := range []int{100, 200, 1000} {
		k := k
		label := fmt.Sprintf("K=%d", k)
		out = append(out, rhoSweep(opt, label, paperDynamicsRuns, func(run int, rng *rand.Rand) Topology {
			return Topology{TightCap: dynTightCap, TightUtil: 0.64, Model: crosstraffic.ModelPareto}
		}, pathload.Config{PacketsPerStream: k}))
	}
	return out
}

// Fig14 reproduces Fig. 14: variability versus the fleet length N.
// Longer fleets watch the avail-bw process for longer, so the grey
// region — and hence ρ — widens, while the run-to-run variation of the
// range shrinks (a steeper CDF).
func Fig14(opt Options) []DynamicsCDF {
	var out []DynamicsCDF
	for _, n := range []int{12, 24, 48} {
		n := n
		label := fmt.Sprintf("N=%d", n)
		out = append(out, rhoSweep(opt, label, paperDynamicsRuns, func(run int, rng *rand.Rand) Topology {
			return Topology{TightCap: dynTightCap, TightUtil: 0.65, Model: crosstraffic.ModelPareto}
		}, pathload.Config{StreamsPerFleet: n}))
	}
	return out
}
