package experiments

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// Options scales an experiment. The paper-scale run (Scale = 1) uses
// the publication's run counts and window lengths; benchmarks use a
// smaller Scale so the whole suite stays fast.
type Options struct {
	// Scale multiplies run counts and measurement windows (1 = paper
	// scale; 0 selects 1).
	Scale float64
	// Seed derives every run's RNG seeds; identical Options give
	// identical results.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// runs scales a paper run count, with a floor so CDFs and averages stay
// meaningful at small scales.
func (o Options) runs(full int) int {
	n := int(float64(full)*o.Scale + 0.5)
	if n < 3 {
		n = 3
	}
	if n > full {
		n = full
	}
	return n
}

// window scales a measurement window with a floor.
func (o Options) window(full, floor netsim.Time) netsim.Time {
	w := netsim.Time(float64(full) * o.Scale)
	if w < floor {
		w = floor
	}
	return w
}

// runSeed derives a per-run seed; the large odd multiplier keeps the
// per-run RNG streams far apart.
func (o Options) runSeed(run int) int64 { return o.Seed + int64(run)*7_919_317 }

// Warmup time before any measurement, letting queues and heavy-tailed
// sources reach steady state.
const warmup = 3 * netsim.Second

// measureOnce builds the topology, warms it up, and runs one pathload
// measurement with the given config.
func measureOnce(topo Topology, cfg pathload.Config) (pathload.Result, *Net, error) {
	net := topo.Build()
	net.Warmup(warmup)
	prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)
	res, err := pathload.Run(prober, cfg)
	return res, net, err
}

// mbps converts bits/s to Mb/s for reporting.
func mbps(bps float64) float64 { return bps / 1e6 }

// ms converts a duration to milliseconds for reporting.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
