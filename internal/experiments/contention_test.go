package experiments

import (
	"strings"
	"testing"
)

// TestContentionDeterministic is the mesh-fleet determinism bar (the
// shared-link analogue of the 64-path monitorscale test): a fixed
// contention sweep must render byte-identically across two runs — the
// co pass is goroutine-driven, so this pins the sequencer's
// deterministic interleaving end to end, through full pathload
// measurements.
func TestContentionDeterministic(t *testing.T) {
	a := RenderContention(Contention(smallOpt))
	b := RenderContention(Contention(smallOpt))
	if a != b {
		t.Fatalf("contention renders differ between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestContentionSelfInterference checks the experiment's physics: the
// sweep covers every shape at every fleet size, co-probing shifts
// overlapping paths' estimates (downward on average — co-running SLoPS
// streams raise each other's OWD trends), and the disjoint control
// fleet replays its solo runs exactly.
func TestContentionSelfInterference(t *testing.T) {
	res := Contention(smallOpt)

	if want := len(contentionShapes()) * len(ContentionFleetSizes); len(res.Cases) != want {
		t.Fatalf("%d cases, want %d", len(res.Cases), want)
	}
	for _, c := range res.Cases {
		if len(c.Paths) != c.Fleet {
			t.Errorf("%s fleet=%d: %d paths", c.Shape, c.Fleet, len(c.Paths))
		}
		for _, p := range c.Paths {
			if p.True <= 0 {
				t.Errorf("%s fleet=%d %s: non-positive ground truth", c.Shape, c.Fleet, p.Path)
			}
			if (c.Shape == "disjoint") != (p.SharedLinks == 0) {
				t.Errorf("%s fleet=%d %s: shared-link count %d inconsistent with shape",
					c.Shape, c.Fleet, p.Path, p.SharedLinks)
			}
			if p.CoMRTG <= 0 || p.CoMRTG >= p.True {
				// The counter view includes fleet probe load, so it must
				// sit strictly below the no-probe analytic avail-bw.
				t.Errorf("%s fleet=%d %s: co-pass MRTG %.2f Mb/s outside (0, A=%.2f)",
					c.Shape, c.Fleet, p.Path, p.CoMRTG/1e6, p.True/1e6)
			}
		}
	}

	dis := res.DisjointPaths()
	if len(dis) == 0 {
		t.Fatal("no disjoint control paths")
	}
	for _, p := range dis {
		if p.Shift() != 0 {
			t.Errorf("disjoint %s: shift %.3f Mb/s, want exactly 0 (sequenced co pass must replay solo)",
				p.Path, p.Shift()/1e6)
		}
	}

	over := res.OverlappingPaths()
	if len(over) == 0 {
		t.Fatal("no overlapping paths")
	}
	var mean float64
	moved := 0
	for _, p := range over {
		mean += p.Shift()
		if absf(p.Shift()) > 0.25e6 {
			moved++
		}
	}
	mean /= float64(len(over))
	if mean >= 0 {
		t.Errorf("mean overlapping shift %+.2f Mb/s, want negative (fleet self-interference under-reports)", mean/1e6)
	}
	if 2*moved < len(over) {
		t.Errorf("only %d/%d overlapping paths shifted beyond 0.25 Mb/s", moved, len(over))
	}

	out := RenderContention(res)
	for _, want := range []string{"shape=star fleet=2", "shape=tree fleet=4", "shape=disjoint fleet=4", "summary:", "co-mrtg"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
