package experiments

import (
	"repro/internal/crosstraffic"
	"repro/internal/mrtg"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/tcpsim"
)

// btcPath models the paper's §VII path (Univ-Ioannina → Univ-Delaware):
// an 8.2 Mb/s tight link between faster access links, ≈200 ms quiescent
// RTT, and a drop-tail buffer of ≈175 kB so a saturating TCP connection
// inflates the RTT by up to ≈170 ms — the paper's observed ceiling.
type btcPath struct {
	sim     *netsim.Simulator
	links   []*netsim.Link
	tight   *netsim.Link
	reverse netsim.Time

	crossTCP []*tcpsim.Flow
}

// Interval and probe timing for §VII/§VIII.
const (
	btcIntervalFull = 300 * netsim.Second // five 5-minute intervals
	btcTightCap     = 8_200_000
	// btcBuffer is one bandwidth-delay product: large enough that a
	// Reno halving never idles the link, and giving a ≈200 ms maximum
	// queueing delay — the paper observes RTTs climbing from a 200 ms
	// quiescent point to ≈370 ms.
	btcBuffer  = 210_000
	btcReverse = 100 * netsim.Millisecond
)

// buildBTCPath wires the path and its cross traffic: a non-responsive
// Poisson aggregate (≈3.2 Mb/s) plus two window-limited persistent TCP
// connections (≈1 Mb/s each at the quiescent RTT). The responsive
// flows are the mechanism behind the paper's key §VII finding: a
// saturating BTC connection inflates the path RTT, window-limited
// competitors slow down (throughput = window/RTT), and the BTC
// connection captures more than the formerly available bandwidth.
func buildBTCPath(seed int64) *btcPath {
	sim := netsim.NewSimulator()
	mk := func(name string, capacity float64, buf int) *netsim.Link {
		return netsim.NewLink(sim, name, int64(capacity), 33*netsim.Millisecond, buf)
	}
	links := []*netsim.Link{
		mk("access", 100e6, 0),
		mk("tight", btcTightCap, btcBuffer),
		mk("egress", 100e6, 0),
	}
	tight := links[1]

	agg := crosstraffic.NewAggregate(sim, []*netsim.Link{tight}, 1.2e6, 10,
		crosstraffic.ModelPoisson, crosstraffic.Trimodal{}, seed)
	agg.Start()

	p := &btcPath{sim: sim, links: links, tight: tight, reverse: btcReverse}
	for i := 0; i < 6; i++ {
		// Window-limited: 16 kB window at ≈200 ms RTT ⇒ ≈0.64 Mb/s
		// each, ≈3.8 Mb/s total. Their throughput is window/RTT, so
		// they shed load as soon as anything inflates the tight link's
		// queue — the responsiveness behind the paper's BTC overshoot.
		f := tcpsim.NewFlow(sim, "cross-tcp", []*netsim.Link{tight}, 167*netsim.Millisecond,
			tcpsim.Config{RcvWindow: 16_000})
		f.Start()
		p.crossTCP = append(p.crossTCP, f)
	}
	return p
}

// btcWindow is the BTC connection's advertised window: about 1.8× the
// path BDP — "sufficiently large" in the paper's sense (the transfer is
// network-limited, parking a nearly full standing queue at the tight
// link) — while finite as any real 2002 receiver socket was. A window
// far above BDP+buffer would instead alternate between burst losses
// and deep AIMD troughs, idling the link it is supposed to saturate.
const btcWindow = 370_000

// A BTCInterval is one 5-minute interval of the §VII experiment.
type BTCInterval struct {
	Name      string  // "A".."E"
	BTCActive bool    // BTC connection running (B and D)
	Avail     float64 // MRTG avail-bw of the tight link, bits/s
	// BTC throughput during the interval: the 5-minute mean and the
	// min/max of 1-second bins (the paper's high short-term
	// variability observation).
	BTCMean, BTCMin1s, BTCMax1s float64
}

// A BTCResult aggregates Figs. 15 and 16.
type BTCResult struct {
	Intervals []BTCInterval
	// Overshoot is mean BTC throughput over the B and D intervals
	// divided by the mean avail-bw of the surrounding quiet intervals,
	// minus 1 — the paper reports ≈ +20–30%.
	Overshoot float64
	// RTT statistics (Fig. 16), in seconds: the quiescent intervals'
	// mean versus the BTC intervals' mean, 95th percentile, and max.
	RTTQuiet, RTTBusyMean, RTTBusyP95, RTTBusyMax float64
	// RTTSeries is the full 1-second ping record for rendering.
	RTTSeries []tcpsim.PingSample
}

// Fig15and16 reproduces Figs. 15 and 16: a 25-minute experiment in five
// intervals A–E, with a greedy BTC connection running during B and D.
// Expected shape: the BTC throughput exceeds the quiet intervals'
// avail-bw by roughly a quarter; MRTG avail-bw collapses to near zero
// while the BTC runs; RTTs inflate from the quiescent ≈200 ms toward
// ≈370 ms with heavy jitter.
func Fig15and16(opt Options) BTCResult {
	opt = opt.withDefaults()
	interval := opt.window(btcIntervalFull, 30*netsim.Second)

	p := buildBTCPath(opt.runSeed(150))
	p.sim.RunFor(warmup)

	mon := mrtg.NewMonitor(p.sim, p.tight, interval)
	mon.Start()
	ping := tcpsim.NewPinger(p.sim, p.links, p.reverse, netsim.Second, 64)
	ping.Start()

	var res BTCResult
	names := []string{"A", "B", "C", "D", "E"}
	var quietAvail, busyMean []float64
	var quietRTT, busyRTT []float64

	for i, name := range names {
		active := name == "B" || name == "D"
		var flow *tcpsim.Flow
		start := p.sim.Now()
		pingStart := len(ping.Samples())
		var delivered0 int64
		if active {
			flow = tcpsim.NewFlow(p.sim, "btc-"+name, p.links, p.reverse, tcpsim.Config{RcvWindow: btcWindow})
			delivered0 = flow.Delivered()
			flow.Start()
		}
		p.sim.RunFor(interval)
		if flow != nil {
			flow.Stop()
		}

		iv := BTCInterval{Name: name, BTCActive: active}
		if len(mon.Readings()) > i {
			iv.Avail = mon.Readings()[i].Avail
		}
		if flow != nil {
			iv.BTCMean = float64(flow.Delivered()-delivered0) * 8 / (p.sim.Now() - start).Seconds()
			iv.BTCMin1s, iv.BTCMax1s = binThroughput(flow.Deliveries(), start, p.sim.Now())
			busyMean = append(busyMean, iv.BTCMean)
		} else {
			quietAvail = append(quietAvail, iv.Avail)
		}
		for _, s := range ping.Samples()[pingStart:] {
			if active {
				busyRTT = append(busyRTT, s.RTT.Seconds())
			} else {
				quietRTT = append(quietRTT, s.RTT.Seconds())
			}
		}
		res.Intervals = append(res.Intervals, iv)
	}

	if m := stats.Mean(quietAvail); m > 0 {
		res.Overshoot = stats.Mean(busyMean)/m - 1
	}
	res.RTTQuiet = stats.Mean(quietRTT)
	res.RTTBusyMean = stats.Mean(busyRTT)
	if len(busyRTT) > 0 {
		res.RTTBusyP95 = stats.Percentile(busyRTT, 95)
		_, res.RTTBusyMax = stats.MinMax(busyRTT)
	}
	res.RTTSeries = ping.Samples()
	return res
}

// binThroughput reduces a delivery series to the min and max 1-second
// throughput within [start, end).
func binThroughput(points []tcpsim.DeliveryPoint, start, end netsim.Time) (min, max float64) {
	if end <= start {
		return 0, 0
	}
	nbins := int((end - start) / netsim.Second)
	if nbins == 0 {
		nbins = 1
	}
	bins := make([]float64, nbins)
	var prev int64
	for _, pt := range points {
		if pt.At < start {
			prev = pt.Bytes
			continue
		}
		if pt.At >= end {
			break
		}
		idx := int((pt.At - start) / netsim.Second)
		if idx >= nbins {
			idx = nbins - 1
		}
		bins[idx] += float64(pt.Bytes-prev) * 8
		prev = pt.Bytes
	}
	min, max = bins[0], bins[0]
	for _, b := range bins[1:] {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	return min, max
}
