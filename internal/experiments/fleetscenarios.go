package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/simprobe"

	pathload "repro"
)

// Fleet-scenario parameters. The interval must comfortably exceed the
// cross-path round-end skew: a sequenced session's next round starts at
// its *own* previous round end plus its scheduler gap, so as long as
// the smallest gap (Interval·(1−Jitter)) outlasts how far siblings'
// round ends drift apart, a path's timeline is identical with or
// without the rest of the fleet probing — the solo-replay control below
// checks exactly that. Pathload rounds here take 8–18 s of virtual
// time, so round ends drift up to ~10 s apart; 15 s × 0.8 = 12 s of
// minimum gap keeps every path's next-round anchor past the barrier.
const (
	fleetPaths    = 4
	fleetInterval = 15 * time.Second // virtual, via the sequenced driver
	fleetJitter   = 0.2
)

// A FleetRound is one path's measurement round inside a fleet cell,
// graded against its own route's truth in the epoch the round ran in.
type FleetRound struct {
	Path         string
	Round, Epoch int
	// Truth is the route's analytic avail-bw in the round's epoch.
	Truth float64
	// At is the path-local virtual time offset of the round's start.
	At time.Duration
	// Lo and Hi bracket the reported range; Grey marks a grey region.
	Lo, Hi float64
	Grey   bool
	// Err is the measurement error text ("" for successful rounds).
	Err string
}

// Hit reports whether the round's range brackets its epoch truth
// within the shared scenario slack.
func (r FleetRound) Hit() bool {
	return r.Err == "" && r.Truth >= r.Lo-scenarioSlack && r.Truth <= r.Hi+scenarioSlack
}

// A FleetLinkEpoch is one backbone link's span-weighted mean
// utilization over the fleet rounds that ran in one epoch, recorded by
// mesh.LinkRecorder at the driver's round boundaries — the per-link
// view the MRTG export serves.
type FleetLinkEpoch struct {
	Link     string
	Epoch    int
	Capacity float64
	Util     float64
}

// AvailBw returns the link's windowed spare capacity C·(1−u).
func (l FleetLinkEpoch) AvailBw() float64 { return l.Capacity * (1 - l.Util) }

// A FleetCell is one fleet scenario's monitored run: every path's
// rounds plus the backbone's per-link per-epoch utilization, and — for
// the stationary control — the solo-replay verdict per path.
type FleetCell struct {
	Scenario, Info string
	Rounds         []FleetRound // sorted by (path, round)
	Links          []FleetLinkEpoch
	// SoloMatch holds, for the steady-disjoint control only, one entry
	// per path: whether the path's fleet transcript is byte-identical
	// to a fresh solo run over an identically seeded mesh.
	SoloMatch []bool
}

// Hits counts bracketing rounds.
func (c FleetCell) Hits() int {
	n := 0
	for _, r := range c.Rounds {
		if r.Hit() {
			n++
		}
	}
	return n
}

// A FleetScenariosResult is the whole fleet-scenario matrix.
type FleetScenariosResult struct {
	Cells        []FleetCell
	K, N, Rounds int
}

// FleetScenarios runs every registry fleet scenario as a sequenced
// mesh.MonitorFleet: fleetPaths sessions over one shared backbone on
// one virtual clock, epochs advanced in the driver's round-boundary
// hook so every path changes regime in the same fleet round, per-link
// utilization recorded at the same boundaries. Cells run in parallel on
// isolated seeded simulations; identical Options give byte-identical
// results regardless of host scheduling, and the steady-disjoint cell
// additionally proves each path's fleet transcript equals a fresh solo
// run (the PR 3 disjoint-control argument, lifted to whole monitor
// sessions).
func FleetScenarios(opt Options) FleetScenariosResult {
	opt = opt.withDefaults()
	cfg := contentionConfig(opt)
	rounds := opt.runs(4)

	names := scenario.FleetNames()
	cells := make([]FleetCell, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells[i] = runFleetCell(name, rounds, opt.runSeed(i), cfg)
		}()
	}
	wg.Wait()
	return FleetScenariosResult{Cells: cells, K: cfg.PacketsPerStream, N: cfg.StreamsPerFleet, Rounds: rounds}
}

// fleetMonitorConfig is the MonitorConfig shared by the fleet run and
// its solo-replay controls — identical by construction, so a transcript
// difference can only come from the co-probing itself.
func fleetMonitorConfig(rounds int, seed int64, cfg pathload.Config) pathload.MonitorConfig {
	return pathload.MonitorConfig{
		Rounds:   rounds,
		Interval: fleetInterval,
		Jitter:   fleetJitter,
		Seed:     seed,
		Config:   cfg,
		Buffer:   fleetPaths * rounds, // publish never blocks a session
	}
}

// linkWindow is one LinkRecorder observation.
type linkWindow struct {
	link     string
	round    int
	span     time.Duration
	util     float64
	capacity float64
}

// linkCollector gathers LinkRecorder windows; it implements
// mesh.LinkSink. The round-boundary hook runs them one at a time, but
// the final post-Wait snapshot comes from another goroutine, so the
// mutex stays.
type linkCollector struct {
	mu      sync.Mutex
	windows []linkWindow
}

func (c *linkCollector) ObserveLink(link string, round int, at, span time.Duration, util, capacity float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windows = append(c.windows, linkWindow{link, round, span, util, capacity})
}

// runFleetCell measures one fleet scenario end to end.
func runFleetCell(name string, rounds int, seed int64, cfg pathload.Config) FleetCell {
	s, err := scenario.GetFleet(name, fleetPaths)
	if err != nil {
		panic(fmt.Sprintf("experiments: fleetscenarios: %v", err))
	}
	inst := s.MustBuild(seed)
	inst.Mesh.Warmup(warmup)

	monCfg := fleetMonitorConfig(rounds, seed, cfg)
	mon, drv, err := inst.Mesh.MonitorFleet(monCfg, contentionReverse)
	if err != nil {
		panic(fmt.Sprintf("experiments: fleetscenarios: %s: %v", name, err))
	}

	// The round-boundary hook, running with exclusive simulator access
	// while every session is parked at the barrier: close the per-link
	// utilization window of the round just finished (so each window
	// covers exactly one regime), then advance the epoch if fleet round
	// n belongs to a later one — rounds split evenly across epochs,
	// epoch(r) = r·E/rounds, exactly like the single-path cells.
	links := &linkCollector{}
	rec := inst.Mesh.NewLinkRecorder(links)
	epochs := inst.Epochs()
	drv.OnRoundBoundary(func(n int) {
		rec.Snapshot(n)
		for inst.Epoch() < n*epochs/rounds {
			inst.Advance()
			inst.Sim().RunFor(scenarioSettle)
		}
	})

	samples := collectRun(mon)
	rec.Snapshot(rounds) // the last round's window; the fleet is done

	// Grade each sample against its own route's truth in its round's
	// epoch.
	routeIdx := map[string]int{}
	for i, p := range inst.Paths {
		routeIdx[p.Name] = i
	}
	cell := FleetCell{Scenario: s.Name, Info: s.Info}
	for _, sm := range samples {
		epoch := sm.Round * epochs / rounds
		truth, _ := s.RouteTruth(epoch, routeIdx[sm.Path])
		fr := FleetRound{Path: sm.Path, Round: sm.Round, Epoch: epoch, Truth: truth, At: sm.At}
		if sm.Err != nil {
			fr.Err = sm.Err.Error()
		} else {
			fr.Lo, fr.Hi, fr.Grey = sm.Result.Lo, sm.Result.Hi, sm.Result.GreySet
		}
		cell.Rounds = append(cell.Rounds, fr)
	}
	sort.Slice(cell.Rounds, func(i, j int) bool {
		a, b := cell.Rounds[i], cell.Rounds[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.Round < b.Round
	})
	cell.Links = epochLinkMeans(links.windows, epochs, rounds)

	if name == "steady-disjoint" {
		// The replay proof: every path re-run solo, on a fresh mesh
		// built from the same seed, must reproduce its fleet transcript
		// byte for byte.
		byPath := map[string][]pathload.Sample{}
		for _, sm := range samples {
			byPath[sm.Path] = append(byPath[sm.Path], sm)
		}
		for i, p := range inst.Paths {
			solo := runSoloPath(s, i, seed, monCfg)
			cell.SoloMatch = append(cell.SoloMatch, transcript(solo) == transcript(byPath[p.Name]))
		}
	}
	return cell
}

// collectRun starts the monitor, drains its results, and waits it out.
func collectRun(mon *pathload.Monitor) []pathload.Sample {
	if err := mon.Start(); err != nil {
		panic(fmt.Sprintf("experiments: fleetscenarios: %v", err))
	}
	var samples []pathload.Sample
	for sm := range mon.Results() {
		samples = append(samples, sm)
	}
	mon.Wait()
	return samples
}

// runSoloPath runs one path of the scenario alone: same full mesh
// (identical seed, identical cross traffic everywhere), same monitor
// configuration, but a single-prober sequencer — so the only difference
// from the fleet run is the absence of sibling probe streams.
func runSoloPath(s scenario.Scenario, pathIdx int, seed int64, monCfg pathload.MonitorConfig) []pathload.Sample {
	inst := s.MustBuild(seed)
	inst.Mesh.Warmup(warmup)
	seq := simprobe.NewSequencer(inst.Sim())
	p := seq.NewProber(inst.Paths[pathIdx].Route, contentionReverse)
	drv := simprobe.NewSequencedDriver(seq)
	pname := inst.Paths[pathIdx].Name
	drv.Register(pname, p)
	monCfg.Driver = drv
	mon, err := pathload.NewMonitor(monCfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: fleetscenarios: solo %s: %v", pname, err))
	}
	if err := mon.AddPath(pname, p); err != nil {
		panic(fmt.Sprintf("experiments: fleetscenarios: solo %s: %v", pname, err))
	}
	return collectRun(mon)
}

// transcript renders one path's samples as the canonical byte-for-byte
// comparison form: round, path-local virtual clock, probing span, range
// and grey verdict — every deterministic field, no wall clock.
func transcript(samples []pathload.Sample) string {
	sorted := append([]pathload.Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Round < sorted[j].Round })
	var b strings.Builder
	for _, sm := range sorted {
		if sm.Err != nil {
			fmt.Fprintf(&b, "[%d] @%v error: %v\n", sm.Round, sm.At, sm.Err)
			continue
		}
		fmt.Fprintf(&b, "[%d] @%v span=%v [%.4f,%.4f] grey=%t\n",
			sm.Round, sm.At, sm.Result.Elapsed, sm.Result.Lo/1e6, sm.Result.Hi/1e6, sm.Result.GreySet)
	}
	return b.String()
}

// epochLinkMeans folds the recorder's per-round windows into one
// span-weighted mean utilization per link per epoch. Window n covers
// fleet round n−1 (it is closed at boundary n before any epoch
// advance), so it belongs to epoch(n−1).
func epochLinkMeans(windows []linkWindow, epochs, rounds int) []FleetLinkEpoch {
	type key struct {
		link  string
		epoch int
	}
	sums := map[key]*FleetLinkEpoch{}
	weights := map[key]float64{}
	var order []key
	for _, w := range windows {
		k := key{w.link, (w.round - 1) * epochs / rounds}
		e := sums[k]
		if e == nil {
			e = &FleetLinkEpoch{Link: w.link, Epoch: k.epoch, Capacity: w.capacity}
			sums[k] = e
			order = append(order, k)
		}
		e.Util += w.util * w.span.Seconds()
		weights[k] += w.span.Seconds()
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].link != order[j].link {
			return order[i].link < order[j].link
		}
		return order[i].epoch < order[j].epoch
	})
	out := make([]FleetLinkEpoch, 0, len(order))
	for _, k := range order {
		e := *sums[k]
		if w := weights[k]; w > 0 {
			e.Util /= w
		}
		out = append(out, e)
	}
	return out
}

// RenderFleetScenarios formats the matrix: per scenario, every path's
// rounds against their per-epoch truths, the backbone's per-link
// per-epoch utilization, and the steady-disjoint solo-replay verdict.
// The output contains no wall-clock fields: identical Options render
// byte-identically.
func RenderFleetScenarios(r FleetScenariosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet scenarios: sequenced MonitorFleet over shared backbones, %d paths on one virtual clock\n", fleetPaths)
	fmt.Fprintf(&b, "stream params K=%d N=%d; %d rounds per path; gaps %v±%.0f%% virtual; slack = ω+χ = %.1f Mb/s\n",
		r.K, r.N, r.Rounds, fleetInterval, fleetJitter*100, scenarioSlack/1e6)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n%s — %s\n", c.Scenario, c.Info)
		fmt.Fprintf(&b, "%-9s %6s %6s %12s %-22s %7s %5s %4s\n",
			"path", "round", "epoch", "at", "range (Mb/s)", "truth", "grey", "hit")
		last := ""
		for _, fr := range c.Rounds {
			if fr.Path != last && last != "" {
				fmt.Fprintln(&b)
			}
			last = fr.Path
			if fr.Err != "" {
				fmt.Fprintf(&b, "%-9s %6d %6d %12v %-22s %7.2f %5s %4s\n",
					fr.Path, fr.Round, fr.Epoch, fr.At, "error: "+fr.Err, fr.Truth/1e6, "-", "-")
				continue
			}
			fmt.Fprintf(&b, "%-9s %6d %6d %12v [%8.2f, %8.2f ] %7.2f %5t %4t\n",
				fr.Path, fr.Round, fr.Epoch, fr.At, fr.Lo/1e6, fr.Hi/1e6, fr.Truth/1e6, fr.Grey, fr.Hit())
		}
		fmt.Fprintf(&b, "hits %d/%d\n", c.Hits(), len(c.Rounds))
		fmt.Fprintf(&b, "links (mean utilization per epoch):\n")
		for _, l := range c.Links {
			fmt.Fprintf(&b, "  %-8s epoch %d  cap %5.1f Mb/s  util %5.1f%%  avail %5.2f Mb/s\n",
				l.Link, l.Epoch, l.Capacity/1e6, l.Util*100, l.AvailBw()/1e6)
		}
		if c.SoloMatch != nil {
			ok := 0
			for _, m := range c.SoloMatch {
				if m {
					ok++
				}
			}
			fmt.Fprintf(&b, "solo replay: %d/%d paths byte-identical to their fleet transcripts\n", ok, len(c.SoloMatch))
		}
	}
	return b.String()
}
