package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/schedule"
	"repro/internal/simprobe"
	"repro/internal/tsstore"

	pathload "repro"
)

// AdaptiveSchedulePaths is the fleet size of the scheduler comparison:
// four quiet paths (well-multiplexed Poisson cross traffic, narrow
// estimate envelopes) and two volatile ones (heavy-tailed Pareto, wide
// envelopes), so an adaptive schedule has a real contrast to exploit.
const AdaptiveSchedulePaths = 6

// adaptiveFullHorizon is the paper-scale virtual observation window per
// path; every scheduler gets the same horizon and spends however many
// rounds its policy admits. The load step lands halfway through.
const adaptiveFullHorizon = 180 * time.Second

// adaptiveMinHorizon keeps scaled-down runs long enough for at least
// two rounds per window even on the slowest (budget-stretched)
// schedule.
const adaptiveMinHorizon = 36 * time.Second

// adaptiveFullBase is the paper-scale base re-measurement gap (the
// Fixed interval and the Adaptive reference gap).
const adaptiveFullBase = 10 * time.Second

// adaptiveDeltaUtil is the mid-run utilization step Δu: a fifth of the
// tight link shifts on or off, well beyond the termination slack.
const adaptiveDeltaUtil = 0.20

// adaptiveBudgetFraction sets the Budgeted variant's advertised
// aggregate cap as a fraction of the Fixed schedule's measured
// aggregate probe bit-rate: tight enough that the bucket visibly
// stretches gaps, loose enough that every path still tracks the step.
const adaptiveBudgetFraction = 0.6

// adaptiveEnforceFraction is the fraction of the advertised cap the
// token bucket actually enforces. Rounds are indivisible: a strict
// bucket keeps the long-run rate at its share, but a window a few
// rounds long can still catch a prepaid round at its edge and read
// above the share. Enforcing below the advertised cap leaves the
// headroom that keeps every window under it — the standard shaper
// discipline.
const adaptiveEnforceFraction = 0.85

// adaptiveRefRelVar is the windowed ρ at which the adaptive schedule
// probes at its base gap. At this experiment's stream parameters the
// quiet paths' trailing-window envelopes sit well below it (gaps
// stretch toward Max) and the volatile paths' above (gaps shrink
// toward Min); it is a per-deployment tuning constant, chosen here to
// split the fleet's observed ρ range.
const adaptiveRefRelVar = 1.2

// An AdaptivePathOutcome is one path's result under one scheduler.
type AdaptivePathOutcome struct {
	Path string
	// Volatile marks the heavy-tailed (Pareto) paths; quiet paths carry
	// well-multiplexed Poisson cross traffic.
	Volatile bool
	// StepUp is true when cross traffic was added mid-run.
	StepUp bool
	// TrueBefore and TrueAfter are the configured avail-bw on each side
	// of the step.
	TrueBefore, TrueAfter float64
	// StepAt is the path-local virtual time the step fired (the end of
	// the first round whose finish crossed the step time); rounds
	// starting at or after it measure the post-step path.
	StepAt time.Duration
	// Rounds is how many measurements the schedule admitted within the
	// horizon; Bits their total probe load; End the path-local end of
	// the last round.
	Rounds int
	Bits   float64
	End    time.Duration
	// Before and After aggregate the stored series on each side of the
	// step.
	Before, After tsstore.Aggregate
	// TrackedBefore/TrackedAfter/TrackedMove are the trajectory
	// experiment's criteria: right level in both windows, mean estimate
	// moving with the step by at least half the true step size.
	TrackedBefore, TrackedAfter, TrackedMove bool
}

// Tracked reports whether the path's series tracked the load step.
func (p AdaptivePathOutcome) Tracked() bool {
	return p.TrackedBefore && p.TrackedAfter && p.TrackedMove
}

// A BudgetWindow is one virtual-time window of a scheduler's aggregate
// probe load, bits attributed to windows by span overlap.
type BudgetWindow struct {
	From, To time.Duration
	Bits     float64
}

// Rate returns the window's aggregate probe bit-rate.
func (w BudgetWindow) Rate() float64 {
	if w.To <= w.From {
		return 0
	}
	return w.Bits / (w.To - w.From).Seconds()
}

// An AdaptiveOutcome is one scheduler's fleet-wide result.
type AdaptiveOutcome struct {
	// Name is "fixed", "adaptive", or "budgeted".
	Name  string
	Paths []AdaptivePathOutcome
	// Windows split the fleet's common timeline into thirds; the
	// budget assertion checks every one against the configured cap.
	Windows []BudgetWindow
}

// Rounds and Bits total the fleet's probing under this scheduler.
func (o AdaptiveOutcome) Rounds() int {
	n := 0
	for _, p := range o.Paths {
		n += p.Rounds
	}
	return n
}

func (o AdaptiveOutcome) Bits() float64 {
	b := 0.0
	for _, p := range o.Paths {
		b += p.Bits
	}
	return b
}

// TrackedPaths counts paths whose series tracked the step.
func (o AdaptiveOutcome) TrackedPaths() int {
	n := 0
	for _, p := range o.Paths {
		if p.Tracked() {
			n++
		}
	}
	return n
}

// MaxWindowRate returns the highest aggregate probe bit-rate over the
// outcome's windows.
func (o AdaptiveOutcome) MaxWindowRate() float64 {
	max := 0.0
	for _, w := range o.Windows {
		if r := w.Rate(); r > max {
			max = r
		}
	}
	return max
}

// An AdaptiveResult is the outcome of the scheduler comparison.
type AdaptiveResult struct {
	// Fixed, Adaptive, and Budgeted are the three schedulers' fleets,
	// run over identical (identically seeded) paths and horizons.
	Fixed, Adaptive, Budgeted AdaptiveOutcome
	// Horizon is the per-path virtual observation window; StepTime the
	// nominal step time (horizon/2) the per-path steps fire around.
	Horizon, StepTime time.Duration
	// Base is the base re-measurement gap.
	Base time.Duration
	// BudgetRate is the Budgeted variant's configured aggregate cap,
	// bits per virtual second.
	BudgetRate float64
	// K and N are the per-measurement stream parameters used.
	K, N int
}

// Outcomes lists the three fleets in presentation order.
func (r AdaptiveResult) Outcomes() []AdaptiveOutcome {
	return []AdaptiveOutcome{r.Fixed, r.Adaptive, r.Budgeted}
}

// adaptiveTopology derives path i's link class, cross-traffic model,
// and base load. Volatile paths (every third) carry heavy-tailed
// Pareto traffic at high load — their estimate envelopes are wide, so
// the windowed ρ feedback keeps them on short gaps; quiet paths carry
// well-multiplexed Poisson at moderate load: narrow envelopes, long
// gaps.
func adaptiveTopology(i int, seed int64) (Topology, bool) {
	volatile := i%3 == 2
	caps := []float64{10e6, 12.4e6}
	topo := Topology{
		Hops:     1,
		TightCap: caps[i%len(caps)],
		Seed:     seed + int64(i)*7_919_317,
	}
	if volatile {
		// Few heavy-tailed sources at high load: the avail-bw process
		// itself swings, so measured envelopes are wide and ρ high.
		topo.Model = crosstraffic.ModelPareto
		topo.TightUtil = 0.60
		topo.SourcesPerHop = 4
	} else {
		// Many Poisson sources at moderate load (not CBR: SLoPS needs
		// burstiness to raise detectable OWD trends — the trajectory
		// experiment's gotcha): narrow envelopes, low ρ.
		topo.Model = crosstraffic.ModelPoisson
		topo.TightUtil = 0.35
		topo.SourcesPerHop = 10
	}
	return topo, volatile
}

// timeStepSink chains in front of the tsstore sink and fires each
// path's load step exactly once, at the end of the first round whose
// finish reaches the step time on the path-local clock. Like the
// trajectory experiment's stepSink it runs on the session goroutine
// that owns the path's simulator, so toggling cross traffic is
// race-free and the step lands at a deterministic round boundary
// whatever the scheduler decides. It forwards windowed-ρ queries to
// the store so an Adaptive scheduler keeps its feedback when the sink
// is chained in between.
type timeStepSink struct {
	store  *tsstore.Store
	stepAt time.Duration

	mu      sync.Mutex
	steps   map[string]func()
	firedAt map[string]time.Duration
}

// Observe forwards the sample, then fires a pending step when the
// round's end crossed the step time.
func (s *timeStepSink) Observe(smp pathload.Sample) {
	s.store.Observe(smp)
	if end := smp.At + smp.Result.Elapsed; end >= s.stepAt {
		s.mu.Lock()
		fn := s.steps[smp.Path]
		delete(s.steps, smp.Path)
		if fn != nil {
			s.firedAt[smp.Path] = end
		}
		s.mu.Unlock()
		if fn != nil {
			fn()
		}
	}
}

// RelVar implements schedule.VarSource by delegating to the store, so
// MonitorConfig.Store can be the chained sink without severing the
// tsstore → scheduler feedback edge.
func (s *timeStepSink) RelVar(path string, window time.Duration) (float64, bool) {
	return s.store.RelVar(path, window)
}

// AdaptiveSchedule is the scheduler comparison the schedule package
// exists for: the same stepped-load fleet monitored three times over
// the same virtual horizon — under the Fixed gap, under the
// ρ-adaptive gap (feedback read back from the tsstore the monitor
// feeds, §VI-B), and under the fleet-wide probe budget (§VIII). The
// adaptive schedule must spend measurably fewer probe bits than the
// fixed one while every path still tracks the mid-run load step, and
// the budgeted schedule must hold aggregate probe bit-rate under its
// cap in every window. Identical Options give byte-identical results
// regardless of host scheduling: paths are independent, identically
// seeded simulator shards, and every scheduler decision derives from
// the path's own deterministic history.
func AdaptiveSchedule(opt Options) AdaptiveResult {
	opt = opt.withDefaults()
	cfg := contentionConfig(opt)

	horizon := time.Duration(float64(adaptiveFullHorizon) * opt.Scale)
	if horizon < adaptiveMinHorizon {
		horizon = adaptiveMinHorizon
	}
	base := time.Duration(float64(adaptiveFullBase) * opt.Scale)
	if min := adaptiveMinHorizon / 18; base < min {
		base = min
	}
	step := horizon / 2

	res := AdaptiveResult{
		Horizon: horizon, StepTime: step, Base: base,
		K: cfg.PacketsPerStream, N: cfg.StreamsPerFleet,
	}
	res.Fixed = runAdaptiveFleet("fixed", opt, cfg,
		&schedule.Fixed{Interval: base, Seed: opt.Seed}, horizon, step)

	// The budget cap derives from the fixed schedule's measured
	// aggregate rate, so it scales with Options instead of hardcoding
	// bits: 55% of what fixed spent per virtual second.
	fixedSpan := time.Duration(0)
	for _, p := range res.Fixed.Paths {
		if p.End > fixedSpan {
			fixedSpan = p.End
		}
	}
	res.BudgetRate = adaptiveBudgetFraction * res.Fixed.Bits() / fixedSpan.Seconds()

	res.Adaptive = runAdaptiveFleet("adaptive", opt, cfg,
		&schedule.Adaptive{Base: base, Min: base / 2, Max: 4 * base, Window: 8 * base, Ref: adaptiveRefRelVar},
		horizon, step)
	res.Budgeted = runAdaptiveFleet("budgeted", opt, cfg,
		&schedule.Budgeted{
			Inner: &schedule.Fixed{Interval: base, Seed: opt.Seed},
			Rate:  adaptiveEnforceFraction * res.BudgetRate,
		}, horizon, step)
	return res
}

// runAdaptiveFleet monitors one freshly built (identically seeded)
// stepped-load fleet under the given scheduler until every session's
// horizon is exhausted, then reads the verdicts back from the store.
func runAdaptiveFleet(name string, opt Options, cfg pathload.Config, sched schedule.Scheduler, horizon, step time.Duration) AdaptiveOutcome {
	type pathState struct {
		topo     Topology
		net      *Net
		extra    *crosstraffic.Aggregate
		volatile bool
		up       bool
	}
	states := make([]pathState, AdaptiveSchedulePaths)
	sims := make([]*netsim.Simulator, AdaptiveSchedulePaths)
	for i := range states {
		topo, volatile := adaptiveTopology(i, opt.Seed)
		net := topo.Build()
		extra := crosstraffic.NewAggregate(net.Sim, []*netsim.Link{net.Tight()},
			topo.TightCap*adaptiveDeltaUtil, topo.SourcesPerHop, topo.Model,
			crosstraffic.Trimodal{}, topo.Seed+500_000_009)
		up := i%2 == 0
		if !up {
			extra.Start() // step-down paths start loaded
		}
		states[i] = pathState{topo: topo, net: net, extra: extra, volatile: volatile, up: up}
		sims[i] = net.Sim
	}
	warm := netsim.NewLockstep(0, sims...)
	warm.AdvanceTo(warmup)
	warm.Close()

	store := tsstore.New(tsstore.Config{})
	sink := &timeStepSink{store: store, stepAt: step, steps: map[string]func(){}, firedAt: map[string]time.Duration{}}
	mon, err := pathload.NewMonitor(pathload.MonitorConfig{
		Workers:   runtime.GOMAXPROCS(0),
		Seed:      opt.Seed,
		Config:    cfg,
		Store:     sink,
		Scheduler: &schedule.Until{Inner: sched, Horizon: horizon},
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: adaptive: %v", err))
	}
	for i, st := range states {
		extra := st.extra
		if st.up {
			sink.steps[trajectoryID(i)] = extra.Start
		} else {
			sink.steps[trajectoryID(i)] = extra.Stop
		}
		p := simprobe.New(st.net.Sim, st.net.Links, 10*netsim.Millisecond)
		if err := mon.AddPath(trajectoryID(i), p); err != nil {
			panic(fmt.Sprintf("experiments: adaptive: %v", err))
		}
	}
	if err := mon.Start(); err != nil {
		panic(fmt.Sprintf("experiments: adaptive: %v", err))
	}
	for s := range mon.Results() {
		if s.Err != nil {
			panic(fmt.Sprintf("experiments: adaptive: %s %s round %d: %v", name, s.Path, s.Round, s.Err))
		}
	}
	mon.Wait()

	out := AdaptiveOutcome{Name: name}
	slack := pathload.DefaultResolution + pathload.DefaultGreyResolution
	var allPts [][]tsstore.Point
	span := time.Duration(0)
	for i, st := range states {
		id := trajectoryID(i)
		topo := st.topo
		baseA := topo.TightCap * (1 - topo.TightUtil)
		steppedA := topo.TightCap * (1 - topo.TightUtil - adaptiveDeltaUtil)
		po := AdaptivePathOutcome{Path: id, Volatile: st.volatile, StepUp: st.up}
		if st.up {
			po.TrueBefore, po.TrueAfter = baseA, steppedA
		} else {
			po.TrueBefore, po.TrueAfter = steppedA, baseA
		}
		po.StepAt = sink.firedAt[id]

		pts := store.Snapshot(id)
		allPts = append(allPts, pts)
		po.Rounds = len(pts)
		for _, p := range pts {
			po.Bits += p.Bits
			if end := p.At + p.Span; end > po.End {
				po.End = end
			}
		}
		if po.End > span {
			span = po.End
		}
		po.Before = store.Window(id, 0, po.StepAt)
		po.After = store.Window(id, po.StepAt, 1<<62)
		po.TrackedBefore = po.Before.Count > 0 && po.Before.MinLo-slack <= po.TrueBefore && po.TrueBefore <= po.Before.MaxHi+slack
		po.TrackedAfter = po.After.Count > 0 && po.After.MinLo-slack <= po.TrueAfter && po.TrueAfter <= po.After.MaxHi+slack
		move := po.After.MeanMid - po.Before.MeanMid
		trueMove := po.TrueAfter - po.TrueBefore
		po.TrackedMove = move*trueMove > 0 && absf(move) >= absf(trueMove)/2
		out.Paths = append(out.Paths, po)
	}

	// Split the fleet timeline into thirds and attribute every round's
	// bits to the windows its probing span overlaps.
	const windows = 3
	w := span / windows
	for k := 0; k < windows; k++ {
		win := BudgetWindow{From: time.Duration(k) * w, To: time.Duration(k+1) * w}
		if k == windows-1 {
			win.To = span
		}
		for _, pts := range allPts {
			for _, p := range pts {
				win.Bits += overlapBits(p, win.From, win.To)
			}
		}
		out.Windows = append(out.Windows, win)
	}
	return out
}

// overlapBits attributes the fraction of a round's probe bits that
// falls inside [from, to), spreading the load uniformly over the
// round's probing span.
func overlapBits(p tsstore.Point, from, to time.Duration) float64 {
	if p.Span <= 0 {
		if p.At >= from && p.At < to {
			return p.Bits
		}
		return 0
	}
	lo, hi := p.At, p.At+p.Span
	if from > lo {
		lo = from
	}
	if to < hi {
		hi = to
	}
	if hi <= lo {
		return 0
	}
	return p.Bits * float64(hi-lo) / float64(p.Span)
}

// RenderAdaptive formats the scheduler comparison: one table per
// scheduler plus the budget-window view and a savings summary. No
// wall-clock fields: identical Options render byte-identically.
func RenderAdaptive(r AdaptiveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive scheduling: fixed vs ρ-adaptive vs budgeted re-measurement\n")
	fmt.Fprintf(&b, "%d paths (4 quiet Poisson, 2 volatile Pareto), horizon %v/path, load step Δu=%.0f%% at %v\n",
		AdaptiveSchedulePaths, r.Horizon, adaptiveDeltaUtil*100, r.StepTime)
	fmt.Fprintf(&b, "base gap %v; stream params K=%d N=%d; budget cap %.2f Mb/s aggregate\n",
		r.Base, r.K, r.N, r.BudgetRate/1e6)
	for _, o := range r.Outcomes() {
		fmt.Fprintf(&b, "\nschedule=%s\n", o.Name)
		fmt.Fprintf(&b, "  %-9s %-8s %5s  %6s %9s  %15s %15s  %7s\n",
			"path", "class", "step", "rounds", "bits(Mb)", "true A (Mb/s)", "meas mid (Mb/s)", "tracked")
		for _, p := range o.Paths {
			class := "quiet"
			if p.Volatile {
				class = "volatile"
			}
			dir := "load-"
			if p.StepUp {
				dir = "load+"
			}
			fmt.Fprintf(&b, "  %-9s %-8s %5s  %6d %9.2f  %6.2f → %6.2f %6.2f → %6.2f  %7v\n",
				p.Path, class, dir, p.Rounds, p.Bits/1e6,
				p.TrueBefore/1e6, p.TrueAfter/1e6,
				p.Before.MeanMid/1e6, p.After.MeanMid/1e6, p.Tracked())
		}
		fmt.Fprintf(&b, "  total: %d rounds, %.2f Mb probe load; windows (Mb/s):", o.Rounds(), o.Bits()/1e6)
		for _, w := range o.Windows {
			fmt.Fprintf(&b, " %.2f", w.Rate()/1e6)
		}
		fmt.Fprintf(&b, "; tracked %d/%d\n", o.TrackedPaths(), len(o.Paths))
	}
	fmt.Fprintf(&b, "\nsummary:\n")
	fmt.Fprintf(&b, "  adaptive vs fixed: %.2f vs %.2f Mb probe load (%.0f%% saved), tracked %d/%d vs %d/%d\n",
		r.Adaptive.Bits()/1e6, r.Fixed.Bits()/1e6,
		100*(1-r.Adaptive.Bits()/r.Fixed.Bits()),
		r.Adaptive.TrackedPaths(), len(r.Adaptive.Paths),
		r.Fixed.TrackedPaths(), len(r.Fixed.Paths))
	fmt.Fprintf(&b, "  budgeted: max window rate %.2f Mb/s under cap %.2f Mb/s (fixed peaked at %.2f), tracked %d/%d\n",
		r.Budgeted.MaxWindowRate()/1e6, r.BudgetRate/1e6, r.Fixed.MaxWindowRate()/1e6,
		r.Budgeted.TrackedPaths(), len(r.Budgeted.Paths))
	return b.String()
}
