package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/simprobe"
	"repro/internal/tsstore"

	pathload "repro"
)

// TrajectoryPaths is the fleet size of the trajectory experiment:
// small enough to read as a table, large enough to exercise both step
// directions across different link classes.
const TrajectoryPaths = 8

// trajectoryFullRounds is the paper-scale number of monitor rounds per
// path; the cross-traffic step lands halfway through.
const trajectoryFullRounds = 8

// trajectoryDeltaUtil is the utilization step Δu applied mid-run: a
// quarter of the tight link shifts on or off, well beyond the
// termination slack, so a tracking series must visibly move.
const trajectoryDeltaUtil = 0.25

// A TrajectoryPath is one path's view of the load-step experiment: the
// configured avail-bw on either side of the step and the stored
// series' windowed aggregates over the same two spans.
type TrajectoryPath struct {
	Path string
	// StepUp is true when cross traffic was added mid-run (avail-bw
	// drops); false when it was removed (avail-bw rises).
	StepUp bool
	// TrueBefore and TrueAfter are the configured avail-bw
	// A = C_t·(1 − u_t) on each side of the step.
	TrueBefore, TrueAfter float64
	// StepAt is the path-local virtual time of the first post-step
	// round — the boundary used to window the stored series.
	StepAt time.Duration
	// Before and After aggregate the tsstore windows on each side.
	Before, After tsstore.Aggregate
	// Points is the whole stored series in round order.
	Points []ScalePoint
	// TrackedBefore/TrackedAfter report whether each window's observed
	// range [MinLo, MaxHi] brackets the configured avail-bw within the
	// termination slack ω + χ; TrackedMove reports whether the mean
	// mid-range estimate moved in the step's direction by at least half
	// the true step size.
	TrackedBefore, TrackedAfter, TrackedMove bool
}

// Tracked reports whether the stored series tracked the load change on
// this path: right level on both sides and a move in the right
// direction.
func (p TrajectoryPath) Tracked() bool {
	return p.TrackedBefore && p.TrackedAfter && p.TrackedMove
}

// A TrajectoryResult is the outcome of the avail-bw trajectory
// experiment.
type TrajectoryResult struct {
	Paths []TrajectoryPath
	// Rounds is the per-path round count; StepRound is the first round
	// measured after the cross-traffic step.
	Rounds, StepRound int
}

// TrackedPaths counts paths whose series tracked the step.
func (r TrajectoryResult) TrackedPaths() int {
	n := 0
	for _, p := range r.Paths {
		if p.Tracked() {
			n++
		}
	}
	return n
}

// stepSink chains in front of the tsstore sink and fires each path's
// load step exactly once, when that path's last pre-step round
// completes. Monitor sinks are invoked synchronously on the path's own
// session goroutine between rounds (monitor.go), which is exactly the
// round boundary a Prober cannot expose — Run interleaves its own Idle
// calls between streams — and it makes the trajectory deterministic:
// rounds 0..round measure the pre-step path, every later round the
// post-step path, regardless of host scheduling.
type stepSink struct {
	inner pathload.SampleSink
	round int // fire after this round's sample

	mu    sync.Mutex
	steps map[string]func()
}

// Observe fires the path's pending step at the boundary round, then
// forwards the sample.
func (s *stepSink) Observe(smp pathload.Sample) {
	if smp.Round == s.round {
		s.mu.Lock()
		fn := s.steps[smp.Path]
		delete(s.steps, smp.Path)
		s.mu.Unlock()
		if fn != nil {
			// Runs on the session goroutine that owns the path's
			// simulator, so toggling cross traffic here is race-free.
			fn()
		}
	}
	s.inner.Observe(smp)
}

// trajectoryTopology derives path i's link class and base load:
// capacities cycle through two of the paper's link classes and the
// base utilization sweeps 35–45%, so with the Δu = 25% step the paths
// operate between 35% and 70% load. Cross traffic is Poisson, not CBR:
// SLoPS needs burstiness to raise a detectable OWD trend within one
// stream, and perfectly smooth CBR load at low utilization makes
// pathload over-report (the flip side of the paper's §V-A choice of
// bursty traffic models).
func trajectoryTopology(i int, seed int64) Topology {
	caps := []float64{10e6, 12.4e6}
	return Topology{
		Hops:          1,
		TightCap:      caps[i%len(caps)],
		TightUtil:     0.35 + 0.05*float64(i%3),
		SourcesPerHop: 6,
		Model:         crosstraffic.ModelPoisson,
		Seed:          seed + int64(i)*7_919_317,
	}
}

// AvailBwTrajectory is the monitor-driven dynamics experiment the
// paper's §VI motivates but a one-shot tool cannot run: does a
// *monitored* avail-bw series track a load change that happens
// mid-run? Each of TrajectoryPaths simulated paths carries a base
// cross-traffic aggregate plus a Δu·C_t step aggregate; halfway
// through the monitor's rounds the step toggles — even-numbered paths
// gain load (avail-bw drops), odd-numbered paths shed it (avail-bw
// rises). Every sample lands in an internal/tsstore.Store via the
// monitor's Store sink, and the verdict is read back *from the store*:
// the windows on either side of the step must sit at the configured
// avail-bw and the mean estimate must move with the step. Identical
// Options give identical results regardless of host scheduling.
func AvailBwTrajectory(opt Options) TrajectoryResult {
	opt = opt.withDefaults()
	rounds := opt.runs(trajectoryFullRounds)
	stepRound := rounds / 2
	if stepRound == 0 {
		stepRound = 1
	}

	type pathState struct {
		net   *Net
		extra *crosstraffic.Aggregate
		up    bool
	}
	states := make([]pathState, TrajectoryPaths)
	sims := make([]*netsim.Simulator, TrajectoryPaths)
	for i := range states {
		topo := trajectoryTopology(i, opt.Seed)
		net := topo.Build()
		extra := crosstraffic.NewAggregate(net.Sim, []*netsim.Link{net.Tight()},
			topo.TightCap*trajectoryDeltaUtil, topo.SourcesPerHop, topo.Model,
			crosstraffic.Trimodal{}, topo.Seed+500_000_009)
		up := i%2 == 0
		if !up {
			// Step-down paths start loaded; the step removes the extra
			// aggregate mid-run.
			extra.Start()
		}
		states[i] = pathState{net: net, extra: extra, up: up}
		sims[i] = net.Sim
	}
	warm := netsim.NewLockstep(0, sims...)
	warm.AdvanceTo(warmup)
	warm.Close()

	store := tsstore.New(tsstore.Config{})
	sink := &stepSink{inner: store, round: stepRound - 1, steps: map[string]func(){}}
	mon, err := pathload.NewMonitor(pathload.MonitorConfig{
		Workers:  runtime.GOMAXPROCS(0),
		Rounds:   rounds,
		Interval: 100 * time.Millisecond,
		Jitter:   0.3,
		Seed:     opt.Seed,
		Store:    sink,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: trajectory: %v", err))
	}
	for i, st := range states {
		extra := st.extra
		if st.up {
			sink.steps[trajectoryID(i)] = extra.Start
		} else {
			sink.steps[trajectoryID(i)] = extra.Stop
		}
		p := simprobe.New(st.net.Sim, st.net.Links, 10*netsim.Millisecond)
		if err := mon.AddPath(trajectoryID(i), p); err != nil {
			panic(fmt.Sprintf("experiments: trajectory: %v", err))
		}
	}
	if err := mon.Start(); err != nil {
		panic(fmt.Sprintf("experiments: trajectory: %v", err))
	}
	for s := range mon.Results() {
		if s.Err != nil {
			panic(fmt.Sprintf("experiments: trajectory: %s round %d: %v", s.Path, s.Round, s.Err))
		}
	}
	mon.Wait()

	res := TrajectoryResult{Rounds: rounds, StepRound: stepRound}
	slack := pathload.DefaultResolution + pathload.DefaultGreyResolution
	for i, st := range states {
		id := trajectoryID(i)
		topo := st.net.Topo
		base := topo.TightCap * (1 - topo.TightUtil)
		stepped := topo.TightCap * (1 - topo.TightUtil - trajectoryDeltaUtil)
		tp := TrajectoryPath{Path: id, StepUp: st.up}
		if st.up {
			tp.TrueBefore, tp.TrueAfter = base, stepped
		} else {
			tp.TrueBefore, tp.TrueAfter = stepped, base
		}

		pts := store.Snapshot(id)
		for _, p := range pts {
			tp.Points = append(tp.Points, ScalePoint{At: p.At, Lo: p.Lo, Hi: p.Hi})
			if p.Round == stepRound {
				tp.StepAt = p.At
			}
		}
		tp.Before = store.Window(id, 0, tp.StepAt)
		tp.After = store.Window(id, tp.StepAt, 1<<62)

		tp.TrackedBefore = tp.Before.MinLo-slack <= tp.TrueBefore && tp.TrueBefore <= tp.Before.MaxHi+slack
		tp.TrackedAfter = tp.After.MinLo-slack <= tp.TrueAfter && tp.TrueAfter <= tp.After.MaxHi+slack
		move := tp.After.MeanMid - tp.Before.MeanMid
		trueMove := tp.TrueAfter - tp.TrueBefore
		tp.TrackedMove = move*trueMove > 0 && absf(move) >= absf(trueMove)/2
		res.Paths = append(res.Paths, tp)
	}
	return res
}

// trajectoryID names trajectory path i.
func trajectoryID(i int) string { return fmt.Sprintf("path-%02d", i) }

// absf is a float64 absolute value without importing math for one call.
func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
