package experiments

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/tcpsim"
)

// TestBTCDiagnostics inspects the §VII bulk flow on the contended path:
// it must claim clearly more than the residual avail-bw by squeezing
// the window-limited cross flows.
func TestBTCDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p := buildBTCPath(99)
	p.sim.RunFor(warmup)

	// Measure cross-TCP throughput before the BTC flow.
	before := make([]int64, len(p.crossTCP))
	for i, f := range p.crossTCP {
		before[i] = f.Delivered()
	}
	p.sim.RunFor(60 * netsim.Second)
	for i, f := range p.crossTCP {
		tput := float64(f.Delivered()-before[i]) * 8 / 60
		t.Logf("cross tcp %d pre-BTC: %.2f Mb/s (timeouts %d)", i, tput/1e6, f.Timeouts())
	}

	flow := tcpsim.NewFlow(p.sim, "btc", p.links, p.reverse, tcpsim.Config{RcvWindow: btcWindow})
	flow.Start()
	start := p.sim.Now()
	for i, f := range p.crossTCP {
		before[i] = f.Delivered()
	}
	p.sim.RunFor(120 * netsim.Second)
	el := (p.sim.Now() - start).Seconds()

	tput := float64(flow.Delivered()) * 8 / el
	t.Logf("btc: %.2f Mb/s, retrans %d, timeouts %d, cwnd %.0f, srtt %v",
		tput/1e6, flow.Retransmissions(), flow.Timeouts(), flow.Cwnd(), flow.SRTT())
	for i, f := range p.crossTCP {
		ct := float64(f.Delivered()-before[i]) * 8 / el
		t.Logf("cross tcp %d during BTC: %.2f Mb/s (timeouts %d)", i, ct/1e6, f.Timeouts())
	}
	if tput < 3e6 {
		t.Errorf("BTC throughput %.2f Mb/s: should exceed the ≈3 Mb/s residual avail-bw", tput/1e6)
	}
}
