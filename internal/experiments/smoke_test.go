package experiments

import (
	"testing"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// TestPathloadConvergesOnDefaultTopology is the headline integration
// check: on the paper's default simulation topology (A = 4 Mb/s) the
// reported range must bracket, or land within one resolution step of,
// the true avail-bw.
func TestPathloadConvergesOnDefaultTopology(t *testing.T) {
	for _, model := range []crosstraffic.Model{crosstraffic.ModelPoisson, crosstraffic.ModelPareto} {
		t.Run(model.String(), func(t *testing.T) {
			net := Topology{Model: model, Seed: 42}.Build()
			net.Warmup(2 * netsim.Second)
			prober := simprobe.New(net.Sim, net.Links, 10*netsim.Millisecond)

			res, err := pathload.Run(prober, pathload.Config{})
			if err != nil {
				t.Fatalf("pathload.Run: %v", err)
			}
			a := net.Topo.AvailBw()
			t.Logf("true A = %.2f Mb/s, reported %v after %d fleets (elapsed %v)",
				a/1e6, res, len(res.Fleets), res.Elapsed)
			slack := pathload.DefaultResolution + pathload.DefaultGreyResolution
			if res.Lo-slack > a || res.Hi+slack < a {
				t.Errorf("reported range [%.2f, %.2f] Mb/s misses true avail-bw %.2f Mb/s",
					res.Lo/1e6, res.Hi/1e6, a/1e6)
			}
		})
	}
}
