package experiments

import (
	"fmt"

	pathload "repro"
)

// A SensitivityPoint is one row of the paper's Figs. 8–9: the range
// reported by a single pathload run at one parameter setting.
type SensitivityPoint struct {
	Param          float64 // the swept parameter (f, or the PDT threshold)
	Lo, Hi         float64 // reported range, bits/s
	GreyLo, GreyHi float64
	GreySet        bool
	TrueA          float64
}

// Width returns Hi − Lo.
func (p SensitivityPoint) Width() float64 { return p.Hi - p.Lo }

// Fig8 reproduces Fig. 8: the effect of the fleet agreement fraction f
// on the reported range. Each point is a single pathload run (as in the
// paper). A larger f demands more stream agreement before a fleet is
// declared increasing or non-increasing, so the grey region — and with
// it the reported range — widens with f.
func Fig8(opt Options) []SensitivityPoint {
	opt = opt.withDefaults()
	topo := Topology{Seed: opt.runSeed(80)}
	var out []SensitivityPoint
	for _, f := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		res, _, err := measureOnce(topo, pathload.Config{FleetFraction: f})
		if err != nil {
			panic(fmt.Sprintf("experiments: fig8 f=%v: %v", f, err))
		}
		out = append(out, SensitivityPoint{
			Param: f, Lo: res.Lo, Hi: res.Hi,
			GreyLo: res.GreyLo, GreyHi: res.GreyHi, GreySet: res.GreySet,
			TrueA: topo.AvailBw(),
		})
	}
	return out
}

// Fig9 reproduces Fig. 9: the effect of the PDT decision threshold when
// PDT is the only metric (two-zone: non-increasing exactly below the
// threshold). Small thresholds mark nearly every stream increasing and
// drive the estimate toward zero (underestimation); large thresholds
// mark nearly every stream non-increasing and drive it toward the probe
// ceiling (overestimation); intermediate values recover the avail-bw.
func Fig9(opt Options) []SensitivityPoint {
	opt = opt.withDefaults()
	topo := Topology{Seed: opt.runSeed(90)}
	var out []SensitivityPoint
	for _, thr := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		cfg := pathload.Config{
			DisablePCT:       true,
			PDTIncreasing:    thr,
			PDTNonIncreasing: thr,
		}
		res, _, err := measureOnce(topo, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: fig9 thr=%v: %v", thr, err))
		}
		out = append(out, SensitivityPoint{
			Param: thr, Lo: res.Lo, Hi: res.Hi,
			GreyLo: res.GreyLo, GreyHi: res.GreyHi, GreySet: res.GreySet,
			TrueA: topo.AvailBw(),
		})
	}
	return out
}
