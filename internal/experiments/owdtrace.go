package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// An OWDTrace is the per-packet one-way delay record of a single
// periodic stream, the raw material of the paper's Figs. 1–3.
type OWDTrace struct {
	Figure   string  // "fig1", "fig2", "fig3"
	RateMbps float64 // stream rate
	AvailBw  float64 // long-term avail-bw of the path, bits/s
	// OWDms holds the relative OWD of each received packet in
	// milliseconds, shifted so the minimum is 0.
	OWDms []float64
	Seqs  []int
	// Trend metrics and the resulting classification.
	PCT, PDT float64
	Kind     string
	// RiseMs is OWD(last) − OWD(first).
	RiseMs float64
}

// wanPath builds a path shaped like the paper's Univ-Oregon →
// Univ-Delaware route: the narrow link is a 100 Mb/s Fast Ethernet
// interface while the tight link is a 155 Mb/s OC-3 carrying enough
// traffic to leave ≈ 74 Mb/s available.
func wanPath(seed int64) (*netsim.Simulator, []*netsim.Link) {
	sim := netsim.NewSimulator()
	type hop struct {
		name string
		cap  float64
		util float64
	}
	hops := []hop{
		{"gigapop", 622e6, 0.10},
		{"fast-ethernet(narrow)", 100e6, 0.05},
		{"oc3(tight)", 155e6, 0.5226}, // A ≈ 74 Mb/s
		{"abilene", 622e6, 0.10},
		{"campus", 622e6, 0.08},
	}
	var links []*netsim.Link
	for i, h := range hops {
		l := netsim.NewLink(sim, h.name, int64(h.cap), 10*netsim.Millisecond, 0)
		links = append(links, l)
		if h.util > 0 {
			agg := crosstraffic.NewAggregate(sim, []*netsim.Link{l}, h.cap*h.util, 10,
				crosstraffic.ModelPareto, crosstraffic.Trimodal{}, seed+int64(i)*999_983)
			agg.Start()
		}
	}
	return sim, links
}

// OWDTraces reproduces Figs. 1–3: three 100-packet streams on a path
// with ≈ 74 Mb/s avail-bw, at rates above (96 Mb/s), below (37 Mb/s),
// and near (82 Mb/s) the avail-bw. The first must show a clear
// increasing trend, the second none, and the third a partial one.
func OWDTraces(opt Options) []OWDTrace {
	opt = opt.withDefaults()
	cases := []struct {
		figure   string
		rateMbps float64
	}{
		{"fig1", 96},
		{"fig2", 37},
		{"fig3", 82},
	}
	cfg := pathload.Config{}
	var out []OWDTrace
	for i, c := range cases {
		sim, links := wanPath(opt.runSeed(i))
		sim.RunFor(warmup)
		prober := simprobe.New(sim, links, 10*netsim.Millisecond)
		rate := c.rateMbps * 1e6
		l, t := cfg.StreamParams(rate)
		sr, err := prober.SendStream(pathload.StreamSpec{Rate: rate, K: 100, L: l, T: t})
		if err != nil {
			panic(fmt.Sprintf("experiments: OWD trace %s: %v", c.figure, err))
		}

		tr := OWDTrace{Figure: c.figure, RateMbps: c.rateMbps, AvailBw: 155e6 * (1 - 0.5226)}
		owds := make([]float64, 0, len(sr.OWDs))
		min := 0.0
		for j, s := range sr.OWDs {
			v := s.OWD.Seconds()
			if j == 0 || v < min {
				min = v
			}
			owds = append(owds, v)
			tr.Seqs = append(tr.Seqs, s.Seq)
		}
		for _, v := range owds {
			tr.OWDms = append(tr.OWDms, (v-min)*1e3)
		}
		kind, m := core.ClassifyOWDs(owds, core.TrendConfig{})
		tr.PCT, tr.PDT = m.PCT, m.PDT
		tr.Kind = kind.String()
		if len(tr.OWDms) > 0 {
			tr.RiseMs = tr.OWDms[len(tr.OWDms)-1] - tr.OWDms[0]
		}
		out = append(out, tr)
	}
	return out
}
