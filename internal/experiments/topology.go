// Package experiments builds the paper's simulation topologies and
// reproduces every figure of its evaluation (§V–§VIII). Each FigNN
// function runs the corresponding experiment — scaled by a Scale
// parameter so benchmarks stay fast — and returns structured results
// that the cmd/repro tool renders as the paper's rows and series.
package experiments

import (
	"fmt"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
)

// Topology describes the paper's Fig. 4 simulation setup: an h-hop
// path whose middle link is the tight link, with per-hop cross-traffic
// aggregates of independent sources.
type Topology struct {
	// Hops is the number of links h. The tight link sits at index
	// Hops/2 ("the hop in the middle of the path").
	Hops int
	// TightCap and TightUtil set the tight link: capacity C_t (bits/s)
	// and average utilization u_t, so the end-to-end avail-bw is
	// A = C_t·(1 − u_t).
	TightCap  float64
	TightUtil float64
	// Beta is the path tightness factor β = A_nt/A (Eq. 10): the
	// avail-bw of every non-tight link is β·A. β = 1 makes every link
	// a tight link. Ignored for single-hop paths.
	Beta float64
	// NonTightUtil is u_nt, the utilization of the non-tight links;
	// their capacity follows as C_nt = β·A/(1 − u_nt).
	NonTightUtil float64
	// SourcesPerHop is the number of independent cross-traffic sources
	// per link (the paper uses ten); it controls the degree of
	// statistical multiplexing.
	SourcesPerHop int
	// Model selects the cross-traffic interarrival family.
	Model crosstraffic.Model
	// Sizes overrides the cross-traffic packet size distribution;
	// nil selects the paper's trimodal mix.
	Sizes crosstraffic.SizeDist
	// TotalProp is the end-to-end propagation delay, spread evenly
	// across hops (the paper uses 50 ms).
	TotalProp netsim.Time
	// BufBytes bounds each link's queue; 0 means unbounded ("links are
	// sufficiently buffered to avoid packet losses").
	BufBytes int
	// Seed makes the run reproducible; distinct seeds give
	// statistically independent runs.
	Seed int64
}

// Defaults for the paper's simulation section (§V-A).
const (
	DefaultHops          = 5
	DefaultTightCap      = 10e6
	DefaultTightUtil     = 0.6 // A = 4 Mb/s
	DefaultBeta          = 4.0
	DefaultNonTightUtil  = 0.2
	DefaultSourcesPerHop = 10
)

// DefaultTotalProp is the paper's 50 ms end-to-end propagation delay.
const DefaultTotalProp = 50 * netsim.Millisecond

// withDefaults fills zero fields with the paper's defaults.
func (t Topology) withDefaults() Topology {
	if t.Hops == 0 {
		t.Hops = DefaultHops
	}
	if t.TightCap == 0 {
		t.TightCap = DefaultTightCap
	}
	if t.TightUtil == 0 {
		t.TightUtil = DefaultTightUtil
	}
	if t.Beta == 0 {
		t.Beta = DefaultBeta
	}
	if t.NonTightUtil == 0 {
		t.NonTightUtil = DefaultNonTightUtil
	}
	if t.SourcesPerHop == 0 {
		t.SourcesPerHop = DefaultSourcesPerHop
	}
	if t.TotalProp == 0 {
		t.TotalProp = DefaultTotalProp
	}
	return t
}

// AvailBw returns the configured end-to-end available bandwidth
// A = C_t·(1 − u_t).
func (t Topology) AvailBw() float64 {
	t = t.withDefaults()
	return t.TightCap * (1 - t.TightUtil)
}

// A Net is a built topology: a live simulator with links wired in a
// chain and cross traffic attached.
type Net struct {
	Sim      *netsim.Simulator
	Links    []*netsim.Link
	TightIdx int
	Topo     Topology

	aggregates []*crosstraffic.Aggregate
}

// Tight returns the tight link.
func (n *Net) Tight() *netsim.Link { return n.Links[n.TightIdx] }

// Build constructs the simulator, links, and cross-traffic sources.
// Cross traffic is started; the probe route is Links.
func (t Topology) Build() *Net {
	t = t.withDefaults()
	if t.Hops < 1 {
		panic(fmt.Sprintf("experiments: topology needs at least one hop, got %d", t.Hops))
	}
	if t.TightUtil < 0 || t.TightUtil >= 1 || t.NonTightUtil < 0 || t.NonTightUtil >= 1 {
		panic(fmt.Sprintf("experiments: utilizations must lie in [0,1): tight %v nontight %v", t.TightUtil, t.NonTightUtil))
	}

	if t.Beta < 1 {
		// β < 1 would make the "non-tight" links the tight ones.
		panic(fmt.Sprintf("experiments: path tightness factor β=%v must be ≥ 1", t.Beta))
	}
	sim := netsim.NewSimulator()
	availEnd := t.TightCap * (1 - t.TightUtil)
	nontightCap := t.Beta * availEnd / (1 - t.NonTightUtil)
	prop := t.TotalProp / netsim.Time(t.Hops)
	tightIdx := t.Hops / 2

	n := &Net{Sim: sim, TightIdx: tightIdx, Topo: t}
	for i := 0; i < t.Hops; i++ {
		cap := nontightCap
		util := t.NonTightUtil
		name := fmt.Sprintf("hop%d", i)
		if i == tightIdx || t.Hops == 1 {
			cap, util = t.TightCap, t.TightUtil
			name = fmt.Sprintf("hop%d(tight)", i)
		}
		link := netsim.NewLink(sim, name, int64(cap), prop, t.BufBytes)
		n.Links = append(n.Links, link)

		sizes := t.Sizes
		if sizes == nil {
			sizes = crosstraffic.Trimodal{}
		}
		crossRate := cap * util
		if crossRate > 0 {
			agg := crosstraffic.NewAggregate(sim, []*netsim.Link{link}, crossRate,
				t.SourcesPerHop, t.Model, sizes, t.Seed+int64(i)*1_000_003)
			agg.Start()
			n.aggregates = append(n.aggregates, agg)
		}
	}
	return n
}

// StopTraffic halts all cross-traffic sources (used by tests that want
// a quiet path mid-run).
func (n *Net) StopTraffic() {
	for _, a := range n.aggregates {
		a.Stop()
	}
}

// Warmup advances the simulation so queues and heavy-tailed sources
// reach steady state before measurement begins.
func (n *Net) Warmup(d netsim.Time) { n.Sim.RunFor(d) }

// MeasuredAvail returns the tight link's avail-bw measured from its
// byte counters over a window that brackets fn's execution: it snapshots
// counters, runs fn, and converts the transmitted bytes to utilization.
// This is the simulation's ground truth, the "MRTG reading" of §V-B.
func (n *Net) MeasuredAvail(fn func()) float64 {
	link := n.Tight()
	before := link.Counters()
	t0 := n.Sim.Now()
	fn()
	window := n.Sim.Now() - t0
	util := netsim.Utilization(before, link.Counters(), window)
	return float64(link.Capacity()) * (1 - util)
}
