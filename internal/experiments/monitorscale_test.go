package experiments

import (
	"strings"
	"testing"
)

// TestDynamicsAtScale runs the fleet experiment at test scale: the full
// 64-path fleet, few rounds. Every path must report complete series and
// the fleet-wide coverage must be high.
func TestDynamicsAtScale(t *testing.T) {
	res := DynamicsAtScale(smallOpt)
	if len(res.Paths) != ScaleFleetPaths {
		t.Fatalf("%d paths, want %d", len(res.Paths), ScaleFleetPaths)
	}
	for _, p := range res.Paths {
		if len(p.Points) != res.Rounds {
			t.Errorf("%s: %d points, want %d", p.Path, len(p.Points), res.Rounds)
		}
		if p.True <= 0 {
			t.Errorf("%s: non-positive configured avail-bw", p.Path)
		}
		if p.MRTG <= 0 {
			t.Errorf("%s: MRTG ground truth missing", p.Path)
		}
		for i := 1; i < len(p.Points); i++ {
			if p.Points[i].At <= p.Points[i-1].At {
				t.Errorf("%s: series time not increasing at round %d", p.Path, i)
			}
		}
	}
	if cov := res.Coverage(); cov < 0.9 {
		t.Errorf("fleet coverage %.0f%%, want ≥ 90%%", cov*100)
	}

	out := RenderScale(res)
	if !strings.Contains(out, "path-63") || !strings.Contains(out, "coverage") {
		t.Errorf("render missing rows or summary:\n%s", out)
	}
}
