package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/crosstraffic"
	"repro/internal/mrtg"
	"repro/internal/netsim"
	"repro/internal/simprobe"

	pathload "repro"
)

// ScaleFleetPaths is the number of concurrent simulated paths in the
// dynamics-at-scale experiment. The monitor acceptance bar is 64; the
// experiment holds the path count fixed and scales rounds instead so
// the fleet shape is always exercised.
const ScaleFleetPaths = 64

// Scale10kPaths is the extended fleet tier: ten thousand concurrent
// path shards, the scale target the allocation-free simulator core is
// built for. Rounds drop to one — the tier exercises fleet breadth,
// not per-path dynamics.
const Scale10kPaths = 10_000

// scaleFullRounds is the paper-scale number of re-measurement rounds
// per path.
const scaleFullRounds = 6

// A ScalePoint is one timestamped avail-bw range of a path's series.
type ScalePoint struct {
	At     time.Duration // path-local virtual time of the round's start
	Lo, Hi float64       // reported range, bits/s
}

// A PathSeries is one path's avail-bw-over-time record from the
// monitored fleet — one line of the paper's §VI time-series figures,
// with the simulation's MRTG reading as ground truth.
type PathSeries struct {
	Path string
	// True is the configured avail-bw A = C_t·(1 − u_t).
	True float64
	// MRTG is the tight link's counter-measured avail-bw over the whole
	// monitored span (probe load included, as a real MRTG would see).
	MRTG float64
	// Points is the per-round series, in round order.
	Points []ScalePoint
	// Covered counts rounds whose range brackets True within the
	// termination slack ω + χ.
	Covered int
}

// A ScaleResult is the outcome of the dynamics-at-scale experiment.
type ScaleResult struct {
	Paths   []PathSeries
	Rounds  int
	Workers int
	// Events is the total number of simulator events across the fleet.
	Events uint64
	// Wall is the host time the whole fleet run took.
	Wall time.Duration
}

// Coverage returns the fraction of path-rounds whose reported range
// bracketed the configured avail-bw.
func (r ScaleResult) Coverage() float64 {
	var covered, total int
	for _, p := range r.Paths {
		covered += p.Covered
		total += len(p.Points)
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// scaleTopology derives the fleet's per-path topologies: capacities
// cycle through the paper's link classes and utilization sweeps
// [0.15, 0.75], so the fleet spans quiet to heavily loaded paths.
func scaleTopology(i, paths int, seed int64) Topology {
	caps := []float64{6.1e6, 10e6, 12.4e6, 24e6}
	return Topology{
		Hops:          1,
		TightCap:      caps[i%len(caps)],
		TightUtil:     0.15 + 0.60*float64(i)/float64(paths-1),
		SourcesPerHop: 4,
		Model:         crosstraffic.ModelCBR,
		Seed:          seed + int64(i)*7_919_317,
	}
}

// DynamicsAtScale runs the monitor subsystem over a fleet of
// ScaleFleetPaths concurrent simulated paths: every path is its own
// simulator shard (warmed up in parallel on a netsim.Lockstep clock),
// pathload.Monitor re-measures each on a jittered interval through a
// bounded worker pool, and the per-path time series are checked against
// both the configured avail-bw and the tight link's MRTG reading. The
// run is deterministic: identical Options give identical series
// regardless of host scheduling.
func DynamicsAtScale(opt Options) ScaleResult {
	opt = opt.withDefaults()
	return dynamicsAtScale(opt, ScaleFleetPaths, opt.runs(scaleFullRounds))
}

// DynamicsAtScale10k is the extended tier: the same fleet shape at
// Scale10kPaths shards and a single round per path. One 10k run sweeps
// the whole utilization range at far finer granularity than the 64-path
// tier, and its wall clock is the simulator core's scaling benchmark.
func DynamicsAtScale10k(opt Options) ScaleResult {
	return dynamicsAtScale(opt.withDefaults(), Scale10kPaths, 1)
}

func dynamicsAtScale(opt Options, paths, rounds int) ScaleResult {
	nets := make([]*Net, paths)
	sims := make([]*netsim.Simulator, paths)
	monitors := make([]*mrtg.Monitor, paths)
	for i := range nets {
		nets[i] = scaleTopology(i, paths, opt.Seed).Build()
		sims[i] = nets[i].Sim
		monitors[i] = mrtg.NewMonitor(nets[i].Sim, nets[i].Tight(), 500*netsim.Millisecond)
	}
	warm := netsim.NewLockstep(0, sims...)
	warm.AdvanceTo(warmup)
	warm.Close()
	for _, m := range monitors {
		m.Start()
	}

	workers := runtime.GOMAXPROCS(0)
	mon, err := pathload.NewMonitor(pathload.MonitorConfig{
		Workers:  workers,
		Rounds:   rounds,
		Interval: 100 * time.Millisecond,
		Jitter:   0.3,
		Seed:     opt.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: dynamics-at-scale: %v", err))
	}
	for i, n := range nets {
		p := simprobe.New(n.Sim, n.Links, 10*netsim.Millisecond)
		if err := mon.AddPath(fmt.Sprintf("path-%02d", i), p); err != nil {
			panic(fmt.Sprintf("experiments: dynamics-at-scale: %v", err))
		}
	}
	start := time.Now()
	if err := mon.Start(); err != nil {
		panic(fmt.Sprintf("experiments: dynamics-at-scale: %v", err))
	}

	series := make(map[string][]pathload.Sample, paths)
	for s := range mon.Results() {
		if s.Err != nil {
			panic(fmt.Sprintf("experiments: dynamics-at-scale: %s round %d: %v", s.Path, s.Round, s.Err))
		}
		series[s.Path] = append(series[s.Path], s)
	}
	mon.Wait()
	wall := time.Since(start)

	res := ScaleResult{Rounds: rounds, Workers: workers, Wall: wall}
	slack := pathload.DefaultResolution + pathload.DefaultGreyResolution
	for i, n := range nets {
		id := fmt.Sprintf("path-%02d", i)
		samples := series[id]
		sort.Slice(samples, func(a, b int) bool { return samples[a].Round < samples[b].Round })

		ps := PathSeries{Path: id, True: n.Topo.AvailBw()}
		for _, s := range samples {
			ps.Points = append(ps.Points, ScalePoint{At: s.At, Lo: s.Result.Lo, Hi: s.Result.Hi})
			if s.Result.Lo-slack <= ps.True && ps.True <= s.Result.Hi+slack {
				ps.Covered++
			}
		}
		monitors[i].Stop()
		if rd := monitors[i].Readings(); len(rd) > 0 {
			var sum float64
			for _, r := range rd {
				sum += r.Avail
			}
			ps.MRTG = sum / float64(len(rd))
		}
		res.Events += n.Sim.Events()
		res.Paths = append(res.Paths, ps)
	}
	return res
}
