package netsim

// A Sink receives packets at the end of their route. The at argument is
// the arrival time of the packet's last bit at the receiving host.
type Sink func(pkt *Packet, at Time)

// A Packet is a unit of transmission. Size is the wire size in bytes,
// including all link- and transport-layer headers; the simulator charges
// transmission time for the full wire size. Payload carries
// application-specific data (probe sequence numbers, TCP segment
// descriptors, ...) and is never inspected by the simulator.
type Packet struct {
	ID      uint64
	Size    int
	SentAt  Time // stamped by Inject
	Payload any

	route  []*Link
	hop    int
	sink   Sink
	pooled bool // allocated by NewPacket; recyclable via FreePacket
}

// NewPacket returns a packet from the simulator's freelist (or a fresh
// one), for allocation-free per-packet hot paths. Ownership rules: a
// pooled packet injected with a nil sink is recycled automatically when
// it leaves the network (delivery or drop); with a non-nil sink,
// ownership passes to the sink, which may return it with FreePacket
// once it no longer holds any reference (including Payload).
func (s *Simulator) NewPacket() *Packet {
	if n := len(s.pktFree); n > 0 {
		pkt := s.pktFree[n-1]
		s.pktFree[n-1] = nil
		s.pktFree = s.pktFree[:n-1]
		return pkt
	}
	return &Packet{pooled: true}
}

// FreePacket returns a pooled packet to the freelist. Packets not
// allocated by NewPacket are ignored (the caller owns them outright),
// so generic sinks can call it unconditionally.
func (s *Simulator) FreePacket(pkt *Packet) {
	if pkt == nil || !pkt.pooled {
		return
	}
	pkt.ID, pkt.Size, pkt.SentAt, pkt.Payload = 0, 0, 0, nil
	pkt.route, pkt.hop, pkt.sink = nil, 0, nil
	s.pktFree = append(s.pktFree, pkt)
}

// Inject introduces a packet into the network at the first link of
// route at the current simulated time. When the packet's last bit
// leaves the final link, sink is invoked; if the packet is dropped at a
// full buffer, sink is never invoked (drops are visible through link
// counters and the link's OnDrop observer).
//
// An empty route delivers the packet to sink immediately.
func (s *Simulator) Inject(pkt *Packet, route []*Link, sink Sink) {
	pkt.SentAt = s.now
	pkt.route = route
	pkt.hop = 0
	pkt.sink = sink
	if len(route) == 0 {
		if sink != nil {
			sink(pkt, s.now)
		} else {
			s.FreePacket(pkt)
		}
		return
	}
	route[0].arrive(pkt, s.now)
}

// forward moves the packet to its next hop, or delivers it to the sink
// when the route is exhausted.
func (pkt *Packet) forward(sim *Simulator, at Time) {
	pkt.hop++
	if pkt.hop < len(pkt.route) {
		pkt.route[pkt.hop].arrive(pkt, at)
		return
	}
	if pkt.sink != nil {
		pkt.sink(pkt, at)
	} else {
		sim.FreePacket(pkt)
	}
}
