package netsim

import (
	"fmt"
	"math/rand"
)

// LinkCounters is a snapshot of a link's cumulative activity, used by
// monitors (internal/mrtg) and ground-truth utilization accounting.
type LinkCounters struct {
	PktsIn    uint64 // packets that arrived at the queue
	PktsOut   uint64 // packets fully transmitted
	BytesOut  uint64 // bytes fully transmitted
	Drops     uint64 // packets dropped at a full buffer
	DropBytes uint64
	RandLoss  uint64 // packets erased by the random-loss impairment
	Reordered uint64 // packets delayed by the reordering impairment
	Busy      Time   // cumulative transmission (service) time
}

// A Link is a store-and-forward transmission line with a FIFO drop-tail
// queue. Service is exact: a packet arriving at time t begins
// transmission at max(t, end of previous transmission) and occupies the
// line for 8·Size/Capacity seconds; the packet then arrives at the next
// hop after the propagation delay.
//
// The per-packet event path is allocation-free: because service and
// propagation complete in FIFO order per link, the link keeps its
// in-flight packets in two rings and schedules two prebound callbacks
// (no per-packet closures), each of which pops its ring's head.
type Link struct {
	sim      *Simulator
	name     string
	capacity int64 // bits per second
	prop     Time
	buf      int // queue limit in bytes; 0 means unbounded

	queued    int // bytes queued or in service
	busyUntil Time

	ctr LinkCounters

	// inService and propagating are FIFO rings of packets being
	// transmitted and in flight to the next hop; their heads are popped
	// by txDoneFn and propFn, bound once at NewLink.
	inService   ring[txRec]
	propagating ring[propRec]
	txDoneFn    func()
	propFn      func()

	onTransmit []func(pkt *Packet, done Time)
	onDrop     []func(pkt *Packet, at Time)

	// impair, when non-nil, applies stochastic loss and reordering to
	// the link's packets; see Impair.
	impair *impairState
}

// An Impairment configures a link's stochastic packet-level failures.
// Loss erases an arriving packet with the given probability before it
// is queued (a wire erasure, distinct from a buffer drop and counted
// separately in RandLoss). Reorder delays a transmitted packet's
// delivery to the next hop by an extra ReorderDelay with the given
// probability, so it arrives behind packets transmitted after it.
// All draws come from a private RNG seeded with Seed, so an impaired
// simulation stays reproducible bit-for-bit.
type Impairment struct {
	Loss         float64 // erase probability in [0, 1)
	Reorder      float64 // delay probability in [0, 1)
	ReorderDelay Time    // extra delivery delay; must be positive when Reorder > 0
	Seed         int64
}

// impairState is a link's live impairment: the configuration plus the
// RNG its per-packet draws consume (in event order, so deterministic).
type impairState struct {
	cfg Impairment
	rng *rand.Rand
}

// Impair installs (or, with a zero Impairment, removes) the link's
// loss/reordering impairment. Reordered packets take a one-off
// scheduled event instead of the allocation-free propagation ring, so
// only impaired traffic pays for the flexibility. Out-of-range
// probabilities panic, like the NewLink parameter checks.
func (l *Link) Impair(cfg Impairment) {
	if cfg.Loss < 0 || cfg.Loss >= 1 || cfg.Reorder < 0 || cfg.Reorder >= 1 {
		panic(fmt.Sprintf("netsim: link %q: impairment probabilities loss=%v reorder=%v outside [0, 1)", l.name, cfg.Loss, cfg.Reorder))
	}
	if cfg.Reorder > 0 && cfg.ReorderDelay <= 0 {
		panic(fmt.Sprintf("netsim: link %q: reordering needs a positive ReorderDelay, got %v", l.name, cfg.ReorderDelay))
	}
	if cfg.ReorderDelay < 0 {
		panic(fmt.Sprintf("netsim: link %q: negative ReorderDelay %v", l.name, cfg.ReorderDelay))
	}
	if cfg.Loss == 0 && cfg.Reorder == 0 {
		l.impair = nil
		return
	}
	l.impair = &impairState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// txRec is one packet in service: its transmission time and completion
// instant, recorded at arrival so the completion callback needs no
// closure state.
type txRec struct {
	pkt      *Packet
	tx, done Time
}

// propRec is one packet propagating toward the next hop.
type propRec struct {
	pkt *Packet
	at  Time
}

// NewLink creates a link attached to sim. capacity is in bits per
// second and must be positive; prop is the propagation delay; bufBytes
// limits the queue (queued plus in-service bytes) and 0 disables the
// limit.
func NewLink(sim *Simulator, name string, capacity int64, prop Time, bufBytes int) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: link %q: capacity must be positive, got %d", name, capacity))
	}
	if prop < 0 || bufBytes < 0 {
		panic(fmt.Sprintf("netsim: link %q: negative propagation delay or buffer", name))
	}
	l := &Link{sim: sim, name: name, capacity: capacity, prop: prop, buf: bufBytes}
	l.txDoneFn = l.txDone
	l.propFn = l.propArrive
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link capacity in bits per second.
func (l *Link) Capacity() int64 { return l.capacity }

// PropDelay returns the link's propagation delay.
func (l *Link) PropDelay() Time { return l.prop }

// Buffer returns the drop-tail queue limit in bytes (0 = unbounded).
func (l *Link) Buffer() int { return l.buf }

// QueuedBytes returns the bytes currently queued or in service.
func (l *Link) QueuedBytes() int { return l.queued }

// Counters returns a snapshot of the link's cumulative counters.
func (l *Link) Counters() LinkCounters { return l.ctr }

// OnTransmit registers an observer invoked whenever a packet finishes
// transmission on this link, with the completion time. Monitors use it
// for windowed byte counting.
func (l *Link) OnTransmit(fn func(pkt *Packet, done Time)) { l.onTransmit = append(l.onTransmit, fn) }

// OnDrop registers an observer invoked when a packet is dropped at this
// link's full buffer.
func (l *Link) OnDrop(fn func(pkt *Packet, at Time)) { l.onDrop = append(l.onDrop, fn) }

// TxTime returns the transmission (serialization) time of size bytes on
// this link.
func (l *Link) TxTime(size int) Time {
	// 8 * size bits at capacity bits/s, in nanoseconds. Computed in
	// integer arithmetic to stay deterministic: ns = bits * 1e9 / cap.
	bits := int64(size) * 8
	return Time(bits * int64(Second) / l.capacity)
}

// Utilization returns the mean utilization over a window given the
// counter snapshots at the window's boundaries.
func Utilization(before, after LinkCounters, window Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(after.Busy-before.Busy) / float64(window)
}

// arrive handles a packet reaching this link's input queue.
func (l *Link) arrive(pkt *Packet, at Time) {
	l.ctr.PktsIn++
	if imp := l.impair; imp != nil && imp.cfg.Loss > 0 && imp.rng.Float64() < imp.cfg.Loss {
		// Wire erasure: the packet vanishes before this hop's queue.
		// Like a buffer drop the sink is never invoked, but the loss is
		// counted separately and drop observers stay buffer-only.
		l.ctr.RandLoss++
		if pkt.sink == nil {
			l.sim.FreePacket(pkt)
		}
		return
	}
	if l.buf > 0 && l.queued+pkt.Size > l.buf {
		l.ctr.Drops++
		l.ctr.DropBytes += uint64(pkt.Size)
		for _, fn := range l.onDrop {
			fn(pkt, at)
		}
		if pkt.sink == nil {
			l.sim.FreePacket(pkt)
		}
		return
	}
	l.queued += pkt.Size
	start := at
	if l.busyUntil > start {
		start = l.busyUntil
	}
	tx := l.TxTime(pkt.Size)
	done := start + tx
	l.busyUntil = done
	l.inService.push(txRec{pkt: pkt, tx: tx, done: done})
	l.sim.Schedule(done, l.txDoneFn)
}

// txDone completes the head of the in-service ring. Completions are
// FIFO because busyUntil never decreases, so the ring head is always
// the packet whose event is firing.
func (l *Link) txDone() {
	rec := l.inService.pop()
	pkt := rec.pkt
	l.queued -= pkt.Size
	l.ctr.PktsOut++
	l.ctr.BytesOut += uint64(pkt.Size)
	l.ctr.Busy += rec.tx
	for _, fn := range l.onTransmit {
		fn(pkt, rec.done)
	}
	if imp := l.impair; imp != nil && imp.cfg.Reorder > 0 && imp.rng.Float64() < imp.cfg.Reorder {
		// Reordered delivery: this packet bypasses the FIFO propagation
		// ring (whose invariant is constant per-link latency) and takes
		// its own event at prop + ReorderDelay, arriving behind packets
		// transmitted after it. The closure allocation is confined to
		// impaired packets, keeping the unimpaired hot path alloc-free.
		l.ctr.Reordered++
		at := rec.done + l.prop + imp.cfg.ReorderDelay
		l.sim.Schedule(at, func() { pkt.forward(l.sim, at) })
		return
	}
	if l.prop == 0 {
		pkt.forward(l.sim, rec.done)
	} else {
		l.propagating.push(propRec{pkt: pkt, at: rec.done + l.prop})
		l.sim.Schedule(rec.done+l.prop, l.propFn)
	}
}

// propArrive delivers the head of the propagation ring to the next hop.
// Arrivals are FIFO because completion times are nondecreasing and the
// propagation delay is constant per link.
func (l *Link) propArrive() {
	rec := l.propagating.pop()
	rec.pkt.forward(l.sim, rec.at)
}

// ring is an amortized allocation-free FIFO queue.
type ring[T any] struct {
	buf  []T
	head int
}

// push appends v, compacting the dead head region first when it
// dominates the buffer.
func (r *ring[T]) push(v T) {
	if r.head > 64 && r.head > len(r.buf)/2 {
		n := copy(r.buf, r.buf[r.head:])
		clear(r.buf[n:])
		r.buf = r.buf[:n]
		r.head = 0
	}
	r.buf = append(r.buf, v)
}

// pop removes and returns the oldest element.
func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head++
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
	return v
}
