package netsim

import "time"

// Time is a point in simulated time, in nanoseconds since the start of
// the simulation. Durations are also expressed as Time; the arithmetic
// is the caller's responsibility, mirroring time.Duration.
type Time int64

// Convenient duration units in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts simulated time to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time like a time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// FromSeconds converts a floating-point number of seconds to Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a time.Duration to simulated Time.
func FromDuration(d time.Duration) Time { return Time(d) }
