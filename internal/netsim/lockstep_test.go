package netsim

import (
	"testing"
)

// TestLockstepAdvances: every shard reaches the barrier, and events
// fired concurrently match a serial reference run exactly.
func TestLockstepAdvances(t *testing.T) {
	const shards = 16

	// Each shard schedules a self-rescheduling tick at its own period
	// and counts firings — a miniature traffic source.
	run := func(parallel int) []int {
		counts := make([]int, shards)
		sims := make([]*Simulator, shards)
		for i := range sims {
			i := i
			sims[i] = NewSimulator()
			period := Time(i+1) * Millisecond
			var tick func()
			tick = func() {
				counts[i]++
				sims[i].After(period, tick)
			}
			sims[i].After(period, tick)
		}
		ls := NewLockstep(parallel, sims...)
		for step := 0; step < 10; step++ {
			ls.AdvanceFor(100 * Millisecond)
		}
		if got := ls.Now(); got != Second {
			t.Fatalf("lockstep Now = %v, want %v", got, Second)
		}
		for i, s := range sims {
			if s.Now() != Second {
				t.Fatalf("shard %d at %v, want %v", i, s.Now(), Second)
			}
		}
		return counts
	}

	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("shard %d: serial %d ticks, parallel %d", i, serial[i], parallel[i])
		}
		want := int(Second / (Time(i+1) * Millisecond))
		if serial[i] != want {
			t.Errorf("shard %d: %d ticks, want %d", i, serial[i], want)
		}
	}
}

// TestLockstepAddBehind: a fresh shard added after advances catches up
// at the next barrier.
func TestLockstepAddBehind(t *testing.T) {
	a := NewSimulator()
	ls := NewLockstep(2, a)
	ls.AdvanceFor(50 * Millisecond)

	b := NewSimulator()
	ls.Add(b)
	ls.AdvanceFor(50 * Millisecond)
	if a.Now() != b.Now() || a.Now() != 100*Millisecond {
		t.Fatalf("shards at %v and %v, want both at %v", a.Now(), b.Now(), 100*Millisecond)
	}
}

// TestLockstepPanics: adopting a shard from the future and rewinding
// both panic — they would make the shared timeline ill-defined.
func TestLockstepPanics(t *testing.T) {
	ahead := NewSimulator()
	ahead.RunFor(Second)
	mustPanic(t, "adopting future shard", func() {
		NewLockstep(1).Add(ahead)
	})

	ls := NewLockstep(1, NewSimulator())
	ls.AdvanceTo(Second)
	mustPanic(t, "advancing backwards", func() {
		ls.AdvanceTo(Millisecond)
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}
