package netsim

import (
	"testing"
)

// TestLockstepAdvances: every shard reaches the barrier, and events
// fired concurrently match a serial reference run exactly.
func TestLockstepAdvances(t *testing.T) {
	const shards = 16

	// Each shard schedules a self-rescheduling tick at its own period
	// and counts firings — a miniature traffic source.
	run := func(parallel int) []int {
		counts := make([]int, shards)
		sims := make([]*Simulator, shards)
		for i := range sims {
			i := i
			sims[i] = NewSimulator()
			period := Time(i+1) * Millisecond
			var tick func()
			tick = func() {
				counts[i]++
				sims[i].After(period, tick)
			}
			sims[i].After(period, tick)
		}
		ls := NewLockstep(parallel, sims...)
		for step := 0; step < 10; step++ {
			ls.AdvanceFor(100 * Millisecond)
		}
		if got := ls.Now(); got != Second {
			t.Fatalf("lockstep Now = %v, want %v", got, Second)
		}
		for i, s := range sims {
			if s.Now() != Second {
				t.Fatalf("shard %d at %v, want %v", i, s.Now(), Second)
			}
		}
		return counts
	}

	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("shard %d: serial %d ticks, parallel %d", i, serial[i], parallel[i])
		}
		want := int(Second / (Time(i+1) * Millisecond))
		if serial[i] != want {
			t.Errorf("shard %d: %d ticks, want %d", i, serial[i], want)
		}
	}
}

// TestLockstepAddBehind: a fresh shard added after advances catches up
// at the next barrier.
func TestLockstepAddBehind(t *testing.T) {
	a := NewSimulator()
	ls := NewLockstep(2, a)
	ls.AdvanceFor(50 * Millisecond)

	b := NewSimulator()
	ls.Add(b)
	ls.AdvanceFor(50 * Millisecond)
	if a.Now() != b.Now() || a.Now() != 100*Millisecond {
		t.Fatalf("shards at %v and %v, want both at %v", a.Now(), b.Now(), 100*Millisecond)
	}
}

// TestLockstepPanics: adopting a shard from the future and rewinding
// both panic — they would make the shared timeline ill-defined.
func TestLockstepPanics(t *testing.T) {
	ahead := NewSimulator()
	ahead.RunFor(Second)
	mustPanic(t, "adopting future shard", func() {
		NewLockstep(1).Add(ahead)
	})

	ls := NewLockstep(1, NewSimulator())
	ls.AdvanceTo(Second)
	mustPanic(t, "advancing backwards", func() {
		ls.AdvanceTo(Millisecond)
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// lockstepTranscript drives shards paths with a deterministic
// self-rescheduling event cascade (a seeded xorshift PRNG per shard
// feeding packet sizes onto a real Link) across several barriers and
// returns an FNV-1a hash over every shard's event transcript, in shard
// order. The hash is integer-only, so it is identical on every
// platform.
func lockstepTranscript(shards, parallel int) uint64 {
	sims := make([]*Simulator, shards)
	transcripts := make([][]uint64, shards)
	for i := range sims {
		i := i
		sims[i] = NewSimulator()
		link := NewLink(sims[i], "l", 10e6, Millisecond, 64<<10)
		link.OnTransmit(func(pkt *Packet, done Time) {
			transcripts[i] = append(transcripts[i], uint64(done)^uint64(pkt.Size)<<32)
		})
		rng := uint64(i)*0x9e3779b97f4a7c15 + 1
		var tick func()
		tick = func() {
			// xorshift64: deterministic, platform-independent.
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			pkt := sims[i].NewPacket()
			pkt.Size = 40 + int(rng%1460)
			sims[i].Inject(pkt, []*Link{link}, nil)
			sims[i].After(Time(100+rng%900)*Microsecond, tick)
		}
		sims[i].After(Time(rng%1000)*Microsecond, tick)
	}
	ls := NewLockstep(parallel, sims...)
	defer ls.Close()
	for step := 0; step < 5; step++ {
		ls.AdvanceFor(20 * Millisecond)
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, tr := range transcripts {
		for _, v := range tr {
			for b := 0; b < 8; b++ {
				h ^= (v >> (8 * b)) & 0xff
				h *= prime64
			}
		}
	}
	return h
}

// lockstep1kTranscriptHash pins the 1024-shard transcript. The sharded
// parallel core must never diverge from the sequential core, and
// neither may silently change: a refactor that reorders events, alters
// event counts, or races shard state shows up here as a hash mismatch.
// Recompute the constant (printed on failure) only for an intentional
// semantic change to the simulator core.
const lockstep1kTranscriptHash uint64 = 0xfe6a92630c7649c1

// TestDeterminismLockstep1kPaths advances 1024 shards on the pinned
// worker pool and checks the combined transcript hash against both a
// sequential (parallel=1) run and the pinned constant. CI runs it under
// -race -count=2, so a divergent interleaving in the sharded core
// cannot hide.
func TestDeterminismLockstep1kPaths(t *testing.T) {
	const shards = 1024
	seq := lockstepTranscript(shards, 1)
	par := lockstepTranscript(shards, 8)
	if seq != par {
		t.Fatalf("parallel lockstep transcript %#x diverges from sequential %#x", par, seq)
	}
	if seq != lockstep1kTranscriptHash {
		t.Fatalf("lockstep transcript hash %#x, want pinned %#x — the simulator core's event order changed", seq, lockstep1kTranscriptHash)
	}
}
