package netsim

import (
	"math"
	"testing"
)

// impairFeed injects n fixed-size packets back-to-back through link and
// returns the arrival order of their IDs at the sink.
func impairFeed(sim *Simulator, link *Link, n int, gap Time) []uint64 {
	var order []uint64
	sink := func(pkt *Packet, _ Time) {
		order = append(order, pkt.ID)
		sim.FreePacket(pkt)
	}
	for i := 0; i < n; i++ {
		i := i
		sim.Schedule(sim.Now()+Time(i)*gap, func() {
			pkt := sim.NewPacket()
			pkt.ID = uint64(i + 1)
			pkt.Size = 500
			sim.Inject(pkt, []*Link{link}, sink)
		})
	}
	sim.Run(sim.Now() + Time(n)*gap + Second)
	return order
}

// TestImpairLossRate: the empirical erasure rate matches the configured
// probability, losses are counted in RandLoss (not Drops), and the
// survivors still arrive in order.
func TestImpairLossRate(t *testing.T) {
	sim := NewSimulator()
	link := NewLink(sim, "l", 10_000_000, Millisecond, 0)
	link.Impair(Impairment{Loss: 0.1, Seed: 3})

	const n = 20_000
	order := impairFeed(sim, link, n, Millisecond)

	ctr := link.Counters()
	if ctr.Drops != 0 {
		t.Errorf("random loss leaked into the buffer-drop counter: %d", ctr.Drops)
	}
	if got := float64(ctr.RandLoss) / n; math.Abs(got-0.1) > 0.01 {
		t.Errorf("loss rate %.3f, want ≈0.10", got)
	}
	if len(order)+int(ctr.RandLoss) != n {
		t.Errorf("%d arrivals + %d losses ≠ %d sent", len(order), ctr.RandLoss, n)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("loss-only impairment reordered packets: %d before %d", order[i-1], order[i])
		}
	}
}

// TestImpairReorder: with a reordering impairment some packets arrive
// out of order; without one, none do. Every packet still arrives.
func TestImpairReorder(t *testing.T) {
	inversions := func(imp *Impairment) (int, int, *Link) {
		sim := NewSimulator()
		link := NewLink(sim, "l", 10_000_000, Millisecond, 0)
		if imp != nil {
			link.Impair(*imp)
		}
		order := impairFeed(sim, link, 2000, Millisecond)
		inv := 0
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				inv++
			}
		}
		return inv, len(order), link
	}

	if inv, _, _ := inversions(nil); inv != 0 {
		t.Fatalf("unimpaired link produced %d inversions", inv)
	}
	imp := &Impairment{Reorder: 0.1, ReorderDelay: 5 * Millisecond, Seed: 7}
	inv, got, link := inversions(imp)
	if got != 2000 {
		t.Fatalf("reordering lost packets: %d/2000 arrived", got)
	}
	if inv == 0 {
		t.Fatal("reordering impairment produced no out-of-order arrivals")
	}
	if link.Counters().Reordered == 0 {
		t.Fatal("Reordered counter never advanced")
	}
}

// TestImpairDeterminism: identical seeds give identical counters and
// arrival transcripts; different seeds diverge.
func TestImpairDeterminism(t *testing.T) {
	run := func(seed int64) ([]uint64, LinkCounters) {
		sim := NewSimulator()
		link := NewLink(sim, "l", 10_000_000, Millisecond, 0)
		link.Impair(Impairment{Loss: 0.05, Reorder: 0.05, ReorderDelay: 3 * Millisecond, Seed: seed})
		order := impairFeed(sim, link, 5000, 500*Microsecond)
		return order, link.Counters()
	}
	a1, c1 := run(42)
	a2, c2 := run(42)
	if c1 != c2 {
		t.Fatalf("same-seed counters differ: %+v vs %+v", c1, c2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("same-seed arrival counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same-seed arrival order diverges at %d: %d vs %d", i, a1[i], a2[i])
		}
	}
	if _, c3 := run(43); c3 == c1 {
		t.Fatal("different seeds produced identical counters (RNG not wired to seed)")
	}
}

// TestImpairValidation: out-of-range impairments panic; a zero
// impairment removes an installed one.
func TestImpairValidation(t *testing.T) {
	sim := NewSimulator()
	link := NewLink(sim, "l", 10_000_000, 0, 0)
	for name, cfg := range map[string]Impairment{
		"loss ≥ 1":         {Loss: 1},
		"negative loss":    {Loss: -0.1},
		"reorder ≥ 1":      {Reorder: 1, ReorderDelay: Millisecond},
		"negative reorder": {Reorder: -0.1, ReorderDelay: Millisecond},
		"no reorder delay": {Reorder: 0.1},
		"negative delay":   {ReorderDelay: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			link.Impair(cfg)
		}()
	}

	link.Impair(Impairment{Loss: 0.5, Seed: 1})
	link.Impair(Impairment{})
	order := impairFeed(sim, link, 1000, Millisecond)
	if len(order) != 1000 {
		t.Fatalf("zero Impairment did not clear the installed loss: %d/1000 arrived", len(order))
	}
}
