package netsim

import (
	"fmt"
	"runtime"
	"sync"
)

// A Lockstep advances a set of independent Simulators to common barrier
// times. Each simulator is a shard — its own links, traffic, and event
// queue — but all shards share one virtual timeline: after AdvanceTo(t)
// every shard's Now() equals t. Between barriers the shards are advanced
// concurrently by a pool of persistent worker goroutines, each pinned to
// a static modulo slice of the shard list, so a fleet of per-path
// simulations scales with the host's cores — no per-barrier goroutine
// or channel churn — while each individual simulator stays
// single-threaded and deterministic.
//
// This is the sharded answer to "many concurrent measurements on one
// simulated clock": paths that must not interact get a shard each and a
// shared timeline; paths that share links belong in one simulator (see
// internal/simprobe.SharedSim for serializing multiple probers on it).
//
// A Lockstep must not be advanced while any shard is being driven from
// elsewhere (e.g. by a prober mid-measurement), and Add/AdvanceTo must
// be called from one goroutine. Call Close when done with the set to
// release the workers; a dropped Lockstep also releases them when the
// garbage collector notices (a cleanup closes the pool), so older
// callers that never Close do not leak goroutines forever.
type Lockstep struct {
	st       *lsState
	parallel int
	now      Time
}

// lsState is the part of a Lockstep shared with its workers. Workers
// reference only this state, never the Lockstep itself, so an
// unreachable Lockstep can be collected and its cleanup can stop the
// pool.
type lsState struct {
	sims  []*Simulator
	start []chan Time   // one per worker: barrier time to advance to
	done  chan struct{} // worker completion signals, len(start) per barrier
	quit  chan struct{}
	stop  sync.Once
}

// shutdown releases the worker pool; safe to call more than once.
func (st *lsState) shutdown() {
	st.stop.Do(func() {
		if st.quit != nil {
			close(st.quit)
		}
	})
}

// NewLockstep groups sims into a lockstep set. parallel bounds the
// number of worker goroutines; 0 selects GOMAXPROCS. All simulators
// must currently agree on the time (freshly created ones do: they start
// at zero).
func NewLockstep(parallel int, sims ...*Simulator) *Lockstep {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	l := &Lockstep{parallel: parallel, st: &lsState{}}
	for _, s := range sims {
		l.Add(s)
	}
	return l
}

// Add attaches a shard. The simulator must not be ahead of the set's
// common time; it is advanced to it on the next barrier.
func (l *Lockstep) Add(s *Simulator) {
	if s.Now() > l.now {
		panic(fmt.Sprintf("netsim: lockstep at %v cannot adopt simulator already at %v", l.now, s.Now()))
	}
	l.st.sims = append(l.st.sims, s)
}

// Sims returns the shards in insertion order.
func (l *Lockstep) Sims() []*Simulator { return l.st.sims }

// Now returns the common barrier time reached by the last advance.
func (l *Lockstep) Now() Time { return l.now }

// Close stops the worker pool. The Lockstep must not be advanced after
// Close. Closing is idempotent and closing a never-advanced Lockstep is
// a no-op.
func (l *Lockstep) Close() { l.st.shutdown() }

// startWorkers spins up the persistent pool on the first advance. Each
// worker owns the shards at indices ≡ w (mod pool size): the pinning is
// static, so a shard is always advanced by the same goroutine.
func (l *Lockstep) startWorkers() {
	st := l.st
	n := l.parallel
	st.start = make([]chan Time, n)
	st.done = make(chan struct{}, n)
	st.quit = make(chan struct{})
	for w := 0; w < n; w++ {
		st.start[w] = make(chan Time, 1)
		go func(w int) {
			for {
				select {
				case t := <-st.start[w]:
					for i := w; i < len(st.sims); i += n {
						st.sims[i].Run(t)
					}
					st.done <- struct{}{}
				case <-st.quit:
					return
				}
			}
		}(w)
	}
	// The pool must die with the Lockstep even if the owner never calls
	// Close; workers reference only st, so an unreachable Lockstep is
	// collectable and this cleanup fires.
	runtime.AddCleanup(l, func(st *lsState) { st.shutdown() }, st)
}

// AdvanceTo runs every shard to the absolute time t and blocks until
// all have reached it. Shards run concurrently but never share state,
// so the combined result is identical to advancing them one by one.
func (l *Lockstep) AdvanceTo(t Time) {
	if t < l.now {
		panic(fmt.Sprintf("netsim: lockstep advancing backwards from %v to %v", l.now, t))
	}
	if len(l.st.sims) == 0 {
		l.now = t
		return
	}
	if l.st.start == nil {
		l.startWorkers()
	}
	for _, c := range l.st.start {
		c <- t
	}
	for range l.st.start {
		<-l.st.done
	}
	l.now = t
}

// AdvanceFor advances every shard by d past the current barrier.
func (l *Lockstep) AdvanceFor(d Time) { l.AdvanceTo(l.now + d) }
