package netsim

import (
	"fmt"
	"runtime"
	"sync"
)

// A Lockstep advances a set of independent Simulators to common barrier
// times. Each simulator is a shard — its own links, traffic, and event
// queue — but all shards share one virtual timeline: after AdvanceTo(t)
// every shard's Now() equals t. Between barriers the shards are advanced
// concurrently (one worker goroutine per shard, bounded by Parallel), so
// a fleet of per-path simulations scales with the host's cores while
// each individual simulator stays single-threaded and deterministic.
//
// This is the sharded answer to "many concurrent measurements on one
// simulated clock": paths that must not interact get a shard each and a
// shared timeline; paths that share links belong in one simulator (see
// internal/simprobe.SharedSim for serializing multiple probers on it).
//
// A Lockstep must not be advanced while any shard is being driven from
// elsewhere (e.g. by a prober mid-measurement).
type Lockstep struct {
	sims     []*Simulator
	parallel int
	now      Time
}

// NewLockstep groups sims into a lockstep set. parallel bounds the
// number of shards advanced concurrently; 0 selects GOMAXPROCS. All
// simulators must currently agree on the time (freshly created ones do:
// they start at zero).
func NewLockstep(parallel int, sims ...*Simulator) *Lockstep {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	l := &Lockstep{parallel: parallel}
	for _, s := range sims {
		l.Add(s)
	}
	return l
}

// Add attaches a shard. The simulator must not be ahead of the set's
// common time; it is advanced to it on the next barrier.
func (l *Lockstep) Add(s *Simulator) {
	if s.Now() > l.now {
		panic(fmt.Sprintf("netsim: lockstep at %v cannot adopt simulator already at %v", l.now, s.Now()))
	}
	l.sims = append(l.sims, s)
}

// Sims returns the shards in insertion order.
func (l *Lockstep) Sims() []*Simulator { return l.sims }

// Now returns the common barrier time reached by the last advance.
func (l *Lockstep) Now() Time { return l.now }

// AdvanceTo runs every shard to the absolute time t and blocks until
// all have reached it. Shards run concurrently but never share state,
// so the combined result is identical to advancing them one by one.
func (l *Lockstep) AdvanceTo(t Time) {
	if t < l.now {
		panic(fmt.Sprintf("netsim: lockstep advancing backwards from %v to %v", l.now, t))
	}
	work := make(chan *Simulator)
	var wg sync.WaitGroup
	n := l.parallel
	if n > len(l.sims) {
		n = len(l.sims)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				s.Run(t)
			}
		}()
	}
	for _, s := range l.sims {
		work <- s
	}
	close(work)
	wg.Wait()
	l.now = t
}

// AdvanceFor advances every shard by d past the current barrier.
func (l *Lockstep) AdvanceFor(d Time) { l.AdvanceTo(l.now + d) }
