package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTimeConversions checks the unit helpers.
func TestTimeConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("1500ms = %v s, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v, want 250ms", got)
	}
	if got := FromSeconds(2.5).Duration().Seconds(); got != 2.5 {
		t.Errorf("round trip through time.Duration = %v, want 2.5", got)
	}
}

// TestSimulatorAdvancesToRequestedTime checks that Run always lands on
// the requested time, even with an empty queue.
func TestSimulatorAdvancesToRequestedTime(t *testing.T) {
	sim := NewSimulator()
	sim.Run(5 * Second)
	if sim.Now() != 5*Second {
		t.Fatalf("Now = %v after Run(5s), want 5s", sim.Now())
	}
	sim.RunFor(Second)
	if sim.Now() != 6*Second {
		t.Fatalf("Now = %v after RunFor(1s), want 6s", sim.Now())
	}
}

// TestSimulatorExecutesInOrder schedules out of order and checks
// execution order and timestamps.
func TestSimulatorExecutesInOrder(t *testing.T) {
	sim := NewSimulator()
	var order []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		sim.Schedule(at, func() {
			if sim.Now() != at {
				t.Errorf("callback at %v ran at %v", at, sim.Now())
			}
			order = append(order, at)
		})
	}
	sim.Run(100)
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Fatalf("execution order %v", order)
	}
}

// TestSchedulePastPanics: time travel is a bug, not a feature.
func TestSchedulePastPanics(t *testing.T) {
	sim := NewSimulator()
	sim.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	sim.Schedule(5, func() {})
}

// TestRunUntil checks early exit on condition.
func TestRunUntil(t *testing.T) {
	sim := NewSimulator()
	hits := 0
	for i := 1; i <= 10; i++ {
		sim.Schedule(Time(i)*Second, func() { hits++ })
	}
	ok := sim.RunUntil(func() bool { return hits == 3 }, 100*Second)
	if !ok || hits != 3 || sim.Now() != 3*Second {
		t.Fatalf("RunUntil: ok=%v hits=%d now=%v, want true,3,3s", ok, hits, sim.Now())
	}
	ok = sim.RunUntil(func() bool { return hits == 100 }, 20*Second)
	if ok || sim.Now() != 20*Second {
		t.Fatalf("RunUntil unreachable cond: ok=%v now=%v, want false,20s", ok, sim.Now())
	}
}

// TestLinkExactServiceTime checks store-and-forward timing on an idle
// link: delivery = arrival + transmission + propagation.
func TestLinkExactServiceTime(t *testing.T) {
	sim := NewSimulator()
	link := NewLink(sim, "l", 8_000_000, 10*Millisecond, 0) // 1 byte/µs
	var deliveredAt Time
	sim.Schedule(Second, func() {
		sim.Inject(&Packet{Size: 1000}, []*Link{link}, func(_ *Packet, at Time) {
			deliveredAt = at
		})
	})
	sim.Run(2 * Second)
	want := Second + 1000*Microsecond + 10*Millisecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

// TestLinkQueueingDelay checks that back-to-back packets queue: the
// second packet waits for the first's transmission.
func TestLinkQueueingDelay(t *testing.T) {
	sim := NewSimulator()
	link := NewLink(sim, "l", 8_000_000, 0, 0)
	var arrivals []Time
	sink := func(_ *Packet, at Time) { arrivals = append(arrivals, at) }
	sim.Schedule(0, func() {
		sim.Inject(&Packet{Size: 1000}, []*Link{link}, sink)
		sim.Inject(&Packet{Size: 1000}, []*Link{link}, sink)
	})
	sim.Run(Second)
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	if arrivals[0] != 1000*Microsecond || arrivals[1] != 2000*Microsecond {
		t.Fatalf("arrivals %v, want [1ms, 2ms]", arrivals)
	}
}

// TestLinkDropTail checks the buffer limit: a third packet that does
// not fit is dropped, counted, and reported to observers.
func TestLinkDropTail(t *testing.T) {
	sim := NewSimulator()
	link := NewLink(sim, "l", 8_000_000, 0, 2000)
	delivered, dropped := 0, 0
	link.OnDrop(func(*Packet, Time) { dropped++ })
	sink := func(*Packet, Time) { delivered++ }
	sim.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			sim.Inject(&Packet{Size: 1000}, []*Link{link}, sink)
		}
	})
	sim.Run(Second)
	if delivered != 2 || dropped != 1 {
		t.Fatalf("delivered %d dropped %d, want 2 and 1", delivered, dropped)
	}
	c := link.Counters()
	if c.Drops != 1 || c.PktsOut != 2 || c.PktsIn != 3 {
		t.Fatalf("counters %+v", c)
	}
}

// TestLinkFIFONoReordering is the property test: any arrival pattern
// through a link preserves order and conserves packets.
func TestLinkFIFONoReordering(t *testing.T) {
	f := func(sizes []uint16, gaps []uint32, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		sim := NewSimulator()
		rng := rand.New(rand.NewSource(seed))
		link := NewLink(sim, "l", 1_000_000+rng.Int63n(100_000_000), Time(rng.Int63n(int64(10*Millisecond))), 0)
		var got []uint64
		at := Time(0)
		for i, sz := range sizes {
			size := int(sz)%1500 + 40
			if i < len(gaps) {
				at += Time(gaps[i] % uint32(Millisecond))
			}
			id := uint64(i)
			pkt := &Packet{ID: id, Size: size}
			sim.Schedule(at, func() {
				sim.Inject(pkt, []*Link{link}, func(p *Packet, _ Time) { got = append(got, p.ID) })
			})
		}
		sim.Run(at + Time(10*Second))
		if len(got) != len(sizes) {
			return false
		}
		for i, id := range got {
			if id != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestByteConservation is the property test: after the link fully
// drains, every injected byte was either transmitted or dropped, and
// nothing remains queued.
func TestByteConservation(t *testing.T) {
	f := func(sizes []uint16, buf uint16) bool {
		sim := NewSimulator()
		link := NewLink(sim, "l", 5_000_000, Millisecond, int(buf)+100)
		var in uint64
		at := Time(0)
		for i, sz := range sizes {
			size := int(sz)%1500 + 40
			in += uint64(size)
			at += Time(i * int(Microsecond) * 50)
			pkt := &Packet{Size: size}
			sim.Schedule(at, func() { sim.Inject(pkt, []*Link{link}, nil) })
		}
		sim.Run(at + 30*Second) // enough to drain everything
		c := link.Counters()
		return c.BytesOut+c.DropBytes == in &&
			c.PktsIn == c.PktsOut+c.Drops &&
			link.QueuedBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationAccounting checks busy-time accounting against an
// exactly half-loaded link.
func TestUtilizationAccounting(t *testing.T) {
	sim := NewSimulator()
	link := NewLink(sim, "l", 8_000_000, 0, 0) // 1000B = 1ms
	before := link.Counters()
	for i := 0; i < 500; i++ {
		at := Time(i) * 2 * Millisecond
		pkt := &Packet{Size: 1000}
		sim.Schedule(at, func() { sim.Inject(pkt, []*Link{link}, nil) })
	}
	sim.Run(Second)
	util := Utilization(before, link.Counters(), Second-0)
	if util < 0.49 || util > 0.51 {
		t.Fatalf("utilization %v, want ≈0.5", util)
	}
}

// TestTxTime checks serialization time arithmetic.
func TestTxTime(t *testing.T) {
	sim := NewSimulator()
	link := NewLink(sim, "l", 10_000_000, 0, 0)
	if got := link.TxTime(1250); got != 1*Millisecond {
		t.Fatalf("TxTime(1250B @10Mb/s) = %v, want 1ms", got)
	}
}

// TestMultiHopDelivery checks a packet crossing three links
// accumulates all three transmission and propagation delays.
func TestMultiHopDelivery(t *testing.T) {
	sim := NewSimulator()
	var route []*Link
	for i := 0; i < 3; i++ {
		route = append(route, NewLink(sim, "l", 8_000_000, 5*Millisecond, 0))
	}
	var at Time
	sim.Schedule(0, func() {
		sim.Inject(&Packet{Size: 800}, route, func(_ *Packet, t Time) { at = t })
	})
	sim.Run(Second)
	want := 3 * (800*Microsecond + 5*Millisecond)
	if at != want {
		t.Fatalf("3-hop delivery at %v, want %v", at, want)
	}
}

// TestEmptyRouteDeliversImmediately documents the degenerate case.
func TestEmptyRouteDeliversImmediately(t *testing.T) {
	sim := NewSimulator()
	delivered := false
	sim.Inject(&Packet{Size: 100}, nil, func(*Packet, Time) { delivered = true })
	if !delivered {
		t.Fatal("empty-route packet not delivered synchronously")
	}
}

// TestLinkValidation checks constructor panics.
func TestLinkValidation(t *testing.T) {
	sim := NewSimulator()
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero capacity", func() { NewLink(sim, "l", 0, 0, 0) }},
		{"negative prop", func() { NewLink(sim, "l", 1, -1, 0) }},
		{"negative buffer", func() { NewLink(sim, "l", 1, 0, -1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// TestStep fires exactly one event per call, honors the limit, and
// leaves the clock untouched when nothing fires.
func TestStep(t *testing.T) {
	sim := NewSimulator()
	var fired []int
	sim.Schedule(10, func() { fired = append(fired, 1) })
	sim.Schedule(20, func() { fired = append(fired, 2) })
	sim.Schedule(30, func() { fired = append(fired, 3) })

	if !sim.Step(25) {
		t.Fatal("Step did not fire the first event")
	}
	if sim.Now() != 10 || len(fired) != 1 {
		t.Fatalf("after first Step: now=%v fired=%v", sim.Now(), fired)
	}
	if !sim.Step(25) {
		t.Fatal("Step did not fire the second event")
	}
	if sim.Now() != 20 || len(fired) != 2 {
		t.Fatalf("after second Step: now=%v fired=%v", sim.Now(), fired)
	}
	// Third event is past the limit: no fire, clock unchanged.
	if sim.Step(25) {
		t.Fatal("Step fired an event beyond the limit")
	}
	if sim.Now() != 20 {
		t.Fatalf("failed Step moved the clock to %v", sim.Now())
	}
	if !sim.Step(30) || sim.Now() != 30 {
		t.Fatalf("Step at the limit: now=%v fired=%v", sim.Now(), fired)
	}
	// Drained queue: Step reports false.
	if sim.Step(100) {
		t.Fatal("Step fired on an empty queue")
	}
	if got := sim.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}
}
