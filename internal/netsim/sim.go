// Package netsim is a deterministic discrete-event network simulator.
//
// It models a network as store-and-forward links with FIFO drop-tail
// queues, the service discipline assumed by the SLoPS analysis (Jain &
// Dovrolis, SIGCOMM 2002). Packets carry an explicit route (a sequence
// of links) and a sink callback, so path traffic and one-hop cross
// traffic share links naturally.
//
// The simulator is single-threaded and all randomness is injected by
// the caller, so simulations are reproducible bit-for-bit. Time is
// virtual: probe timing is immune to host GC pauses and scheduler
// jitter, which is what makes microsecond-scale probing measurable in
// Go at all (the real-network prober in internal/udprobe is the only
// component exposed to wall clocks).
package netsim

import (
	"fmt"

	"repro/internal/eventq"
)

// A Simulator owns virtual time and the event queue. Create one with
// NewSimulator. All network objects attached to a simulator must be
// driven only from its event loop or between Run calls.
type Simulator struct {
	q      eventq.Queue
	now    Time
	events uint64
	// pktFree recycles packets allocated by NewPacket whose ownership
	// returned to the simulator (nil-sink delivery, drop); see FreePacket.
	pktFree []*Packet
}

// NewSimulator returns a simulator with time set to zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Events returns the total number of events executed so far, a useful
// cost metric for benchmarks.
func (s *Simulator) Events() uint64 { return s.events }

// Schedule runs fn at the given absolute simulated time. Scheduling in
// the past panics: it would make the event order ill-defined. The
// returned handle is a value; keeping it past the event's firing is
// safe (it goes stale rather than aliasing a recycled event).
func (s *Simulator) Schedule(at Time, fn func()) eventq.Handle {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v before now %v", at, s.now))
	}
	return s.q.Schedule(int64(at), fn)
}

// After runs fn after duration d of simulated time.
func (s *Simulator) After(d Time, fn func()) eventq.Handle {
	return s.Schedule(s.now+d, fn)
}

// Cancel removes a pending event. It reports whether the event was
// still pending; stale and zero handles report false.
func (s *Simulator) Cancel(h eventq.Handle) bool { return s.q.Cancel(h) }

// Run executes events until the given absolute time. On return, Now()
// equals until, even if the queue drained earlier: virtual time always
// advances to the requested point so that idle periods pass correctly.
func (s *Simulator) Run(until Time) {
	for {
		at, ok := s.q.PeekTime()
		if !ok || Time(at) > until {
			break
		}
		e := s.q.Pop()
		s.now = Time(at)
		s.events++
		e.Fire()
		s.q.Recycle(e)
	}
	if until > s.now {
		s.now = until
	}
}

// RunFor executes events for duration d of simulated time.
func (s *Simulator) RunFor(d Time) { s.Run(s.now + d) }

// Step fires the single next pending event if it is scheduled no later
// than limit, advancing Now to the event's time, and reports whether an
// event fired. When nothing fired (empty queue or next event past the
// limit) the clock is unchanged; use Run to pass idle time. External
// drivers that must interleave other work between events — the
// co-scheduling sequencer in internal/simprobe — are its callers.
func (s *Simulator) Step(limit Time) bool {
	at, ok := s.q.PeekTime()
	if !ok || Time(at) > limit {
		return false
	}
	e := s.q.Pop()
	s.now = Time(at)
	s.events++
	e.Fire()
	s.q.Recycle(e)
	return true
}

// RunUntil executes events until cond reports true or the absolute
// deadline passes, whichever is first. cond is evaluated after each
// event. It reports whether cond was met.
func (s *Simulator) RunUntil(cond func() bool, deadline Time) bool {
	if cond() {
		return true
	}
	for {
		at, ok := s.q.PeekTime()
		if !ok || Time(at) > deadline {
			break
		}
		e := s.q.Pop()
		s.now = Time(at)
		s.events++
		e.Fire()
		s.q.Recycle(e)
		if cond() {
			return true
		}
	}
	if deadline > s.now {
		s.now = deadline
	}
	return false
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.q.Len() }
