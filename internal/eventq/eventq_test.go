package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPopOrder checks that events pop in time order regardless of
// scheduling order.
func TestPopOrder(t *testing.T) {
	var q Queue
	times := []int64{50, 10, 30, 20, 40, 10, 0}
	for _, at := range times {
		q.Schedule(at, func() {})
	}
	var got []int64
	for q.Len() > 0 {
		got = append(got, q.Pop().At())
	}
	want := append([]int64(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestTieBreakBySchedulingOrder checks FIFO semantics among same-time
// events — the property that makes simulations deterministic.
func TestTieBreakBySchedulingOrder(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(42, func() { fired = append(fired, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events fired in order %v, want scheduling order", fired)
		}
	}
}

// TestCancel checks that cancelled events neither pop nor fire.
func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	e1 := q.Schedule(1, func() { ran = true })
	e2 := q.Schedule(2, func() {})
	if !q.Cancel(e1) {
		t.Fatal("Cancel of pending event reported false")
	}
	if q.Cancel(e1) {
		t.Fatal("second Cancel reported true")
	}
	if e1.Pending() {
		t.Fatal("cancelled event still pending")
	}
	if got := q.Pop(); got != e2 {
		t.Fatalf("popped %v, want the uncancelled event", got)
	}
	e1.Fire() // must be a no-op
	if ran {
		t.Fatal("cancelled event callback ran")
	}
}

// TestCancelMiddleKeepsOrder cancels a middle element and verifies heap
// integrity afterwards.
func TestCancelMiddleKeepsOrder(t *testing.T) {
	var q Queue
	var events []*Event
	for i := 0; i < 100; i++ {
		events = append(events, q.Schedule(int64(i%17), func() {}))
	}
	for i := 0; i < len(events); i += 3 {
		q.Cancel(events[i])
	}
	prev := int64(-1)
	for q.Len() > 0 {
		e := q.Pop()
		if e.At() < prev {
			t.Fatalf("heap order violated after cancels: %d after %d", e.At(), prev)
		}
		prev = e.At()
	}
}

// TestPeekTime checks PeekTime against Pop.
func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
	q.Schedule(7, func() {})
	q.Schedule(3, func() {})
	if at, ok := q.PeekTime(); !ok || at != 3 {
		t.Fatalf("PeekTime = %d,%v, want 3,true", at, ok)
	}
	q.Pop()
	if at, ok := q.PeekTime(); !ok || at != 7 {
		t.Fatalf("PeekTime after pop = %d,%v, want 7,true", at, ok)
	}
}

// TestPopEmpty checks nil behavior.
func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue returned an event")
	}
	if q.Cancel(nil) {
		t.Fatal("Cancel(nil) reported true")
	}
}

// TestFireOnce checks that Fire is idempotent.
func TestFireOnce(t *testing.T) {
	var q Queue
	n := 0
	e := q.Schedule(1, func() { n++ })
	q.Pop()
	e.Fire()
	e.Fire()
	if n != 1 {
		t.Fatalf("callback ran %d times, want 1", n)
	}
}

// TestQuickSortedDrain is the property test: any multiset of scheduled
// times drains in nondecreasing order, with cancels applied.
func TestQuickSortedDrain(t *testing.T) {
	f := func(times []int64, cancelMask []bool, seed int64) bool {
		var q Queue
		rng := rand.New(rand.NewSource(seed))
		var events []*Event
		for _, at := range times {
			events = append(events, q.Schedule(at%1000, func() {}))
		}
		cancelled := 0
		for i, e := range events {
			if i < len(cancelMask) && cancelMask[i] && rng.Intn(2) == 0 {
				if q.Cancel(e) {
					cancelled++
				}
			}
		}
		if q.Len() != len(events)-cancelled {
			return false
		}
		prev := int64(-1 << 62)
		for q.Len() > 0 {
			e := q.Pop()
			if e.At() < prev {
				return false
			}
			prev = e.At()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
