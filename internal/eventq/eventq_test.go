package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPopOrder checks that events pop in time order regardless of
// scheduling order.
func TestPopOrder(t *testing.T) {
	var q Queue
	times := []int64{50, 10, 30, 20, 40, 10, 0}
	for _, at := range times {
		q.Schedule(at, func() {})
	}
	var got []int64
	for q.Len() > 0 {
		got = append(got, q.Pop().At())
	}
	want := append([]int64(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestTieBreakBySchedulingOrder checks FIFO semantics among same-time
// events — the property that makes simulations deterministic.
func TestTieBreakBySchedulingOrder(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(42, func() { fired = append(fired, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events fired in order %v, want scheduling order", fired)
		}
	}
}

// TestCancel checks that cancelled events neither pop nor fire.
func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	h1 := q.Schedule(1, func() { ran = true })
	q.Schedule(2, func() {})
	if !q.Cancel(h1) {
		t.Fatal("Cancel of pending event reported false")
	}
	if q.Cancel(h1) {
		t.Fatal("second Cancel reported true")
	}
	if h1.Pending() {
		t.Fatal("cancelled event still pending")
	}
	e := q.Pop()
	if e == nil || e.At() != 2 {
		t.Fatalf("popped %v, want the uncancelled event at t=2", e)
	}
	e.Fire()
	if ran {
		t.Fatal("cancelled event callback ran")
	}
}

// TestCancelMiddleKeepsOrder cancels a middle element and verifies heap
// integrity afterwards.
func TestCancelMiddleKeepsOrder(t *testing.T) {
	var q Queue
	var events []Handle
	for i := 0; i < 100; i++ {
		events = append(events, q.Schedule(int64(i%17), func() {}))
	}
	for i := 0; i < len(events); i += 3 {
		q.Cancel(events[i])
	}
	prev := int64(-1)
	for q.Len() > 0 {
		e := q.Pop()
		if e.At() < prev {
			t.Fatalf("heap order violated after cancels: %d after %d", e.At(), prev)
		}
		prev = e.At()
	}
}

// TestPeekTime checks PeekTime against Pop.
func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
	q.Schedule(7, func() {})
	q.Schedule(3, func() {})
	if at, ok := q.PeekTime(); !ok || at != 3 {
		t.Fatalf("PeekTime = %d,%v, want 3,true", at, ok)
	}
	q.Pop()
	if at, ok := q.PeekTime(); !ok || at != 7 {
		t.Fatalf("PeekTime after pop = %d,%v, want 7,true", at, ok)
	}
}

// TestPopEmpty checks empty-queue and zero-handle behavior.
func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue returned an event")
	}
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of the zero Handle reported true")
	}
	if (Handle{}).Pending() {
		t.Fatal("zero Handle reports pending")
	}
}

// TestFireOnce checks that Fire is idempotent.
func TestFireOnce(t *testing.T) {
	var q Queue
	n := 0
	q.Schedule(1, func() { n++ })
	e := q.Pop()
	e.Fire()
	e.Fire()
	if n != 1 {
		t.Fatalf("callback ran %d times, want 1", n)
	}
}

// TestRecycleInvalidatesStaleHandles is the freelist-safety property:
// a handle kept past its event's firing must not cancel (or report
// pending for) the recycled event's next incarnation.
func TestRecycleInvalidatesStaleHandles(t *testing.T) {
	var q Queue
	stale := q.Schedule(1, func() {})
	e := q.Pop()
	e.Fire()
	q.Recycle(e)

	ran := false
	fresh := q.Schedule(2, func() { ran = true })
	if stale.Pending() {
		t.Fatal("stale handle reports pending after its event was recycled")
	}
	if q.Cancel(stale) {
		t.Fatal("stale handle cancelled the recycled event's next incarnation")
	}
	if !fresh.Pending() {
		t.Fatal("fresh handle not pending")
	}
	e2 := q.Pop()
	e2.Fire()
	q.Recycle(e2)
	if !ran {
		t.Fatal("fresh event did not fire")
	}
}

// TestScheduleRecyclesAllocationFree pins the hot-path contract: once
// the freelist is primed, Schedule/Pop/Fire/Recycle allocates nothing.
func TestScheduleRecyclesAllocationFree(t *testing.T) {
	var q Queue
	at := int64(0)
	fn := func() {}
	// Prime the freelist and the heap's backing array.
	for i := 0; i < 64; i++ {
		q.Schedule(at, fn)
	}
	for q.Len() > 0 {
		e := q.Pop()
		e.Fire()
		q.Recycle(e)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		at++
		q.Schedule(at, fn)
		e := q.Pop()
		e.Fire()
		q.Recycle(e)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule/Pop/Recycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRecyclePendingPanics documents that events still in the heap must
// not be recycled.
func TestRecyclePendingPanics(t *testing.T) {
	var q Queue
	h := q.Schedule(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("recycling a pending event did not panic")
		}
	}()
	q.Recycle(h.e)
}

// TestQuickSortedDrain is the property test: any multiset of scheduled
// times drains in nondecreasing order, with cancels applied.
func TestQuickSortedDrain(t *testing.T) {
	f := func(times []int64, cancelMask []bool, seed int64) bool {
		var q Queue
		rng := rand.New(rand.NewSource(seed))
		var events []Handle
		for _, at := range times {
			events = append(events, q.Schedule(at%1000, func() {}))
		}
		cancelled := 0
		for i, e := range events {
			if i < len(cancelMask) && cancelMask[i] && rng.Intn(2) == 0 {
				if q.Cancel(e) {
					cancelled++
				}
			}
		}
		if q.Len() != len(events)-cancelled {
			return false
		}
		prev := int64(-1 << 62)
		for q.Len() > 0 {
			e := q.Pop()
			if e.At() < prev {
				return false
			}
			prev = e.At()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkScheduleFire measures the recycled Schedule→Pop→Fire→Recycle
// cycle at a realistic standing queue depth.
func BenchmarkScheduleFire(b *testing.B) {
	var q Queue
	fn := func() {}
	at := int64(0)
	for i := 0; i < 1024; i++ {
		q.Schedule(at+int64(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at++
		q.Schedule(at+1024, fn)
		e := q.Pop()
		e.Fire()
		q.Recycle(e)
	}
}
