// Package eventq provides a cancellable priority queue of timed events,
// the scheduling substrate for the discrete-event network simulator.
//
// Events are ordered by activation time; ties are broken by scheduling
// order, so the queue is deterministic: two runs that schedule the same
// events in the same order execute them identically.
//
// The queue is built for the simulator's per-packet hot path: fired and
// cancelled events are recycled through a freelist, so steady-state
// Schedule allocates nothing, and the heap is a flat quaternary heap
// (no container/heap interface dispatch, half the levels of a binary
// heap), which is where a discrete-event core spends most of its time.
package eventq

// An Event is a callback scheduled at a point in simulated time. Event
// structs are owned by their Queue and recycled after they fire or are
// cancelled; external code holds Handles, never *Events.
type Event struct {
	at    int64
	seq   uint64
	fn    func()
	index int    // heap index; -1 once popped or cancelled
	gen   uint32 // bumped on recycle, invalidating stale Handles
}

// At returns the simulated time at which the event fires.
func (e *Event) At() int64 { return e.at }

// Fire runs the event's callback. It is a no-op on cancelled events.
func (e *Event) Fire() {
	if e.fn != nil {
		fn := e.fn
		e.fn = nil
		fn()
	}
}

// A Handle names a scheduled event. It is a value, safe to copy and to
// keep after the event fired: a stale handle (its event fired, was
// cancelled, or was recycled for a later event) simply reports not
// pending and cancels as a no-op. The zero Handle is valid and never
// pending.
type Handle struct {
	e   *Event
	gen uint32
}

// Pending reports whether the handle's event is still queued (not yet
// fired or cancelled).
func (h Handle) Pending() bool { return h.e != nil && h.e.gen == h.gen && h.e.index >= 0 }

// At returns the simulated time at which the event fires, and ok=false
// if the handle is stale (the event already fired or was cancelled).
func (h Handle) At() (at int64, ok bool) {
	if !h.Pending() {
		return 0, false
	}
	return h.e.at, true
}

// A Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator is single-threaded
// by design so that runs are reproducible.
type Queue struct {
	h    []*Event
	seq  uint64
	free []*Event
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at and returns a handle that can
// be used to cancel it. Scheduling in the past is allowed (the event
// simply becomes the next to fire); the simulator guards against
// time travel separately. Steady state, Schedule is allocation-free:
// it reuses events recycled by Recycle and Cancel.
func (q *Queue) Schedule(at int64, fn func()) Handle {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.seq, e.fn = at, q.seq, fn
	q.seq++
	q.h = append(q.h, e)
	e.index = len(q.h) - 1
	q.up(e.index)
	return Handle{e: e, gen: e.gen}
}

// Cancel removes the handle's event from the queue and recycles it. It
// returns true if the event was pending and is now cancelled, and false
// if it had already fired, been cancelled, or the handle is zero.
func (q *Queue) Cancel(h Handle) bool {
	if !h.Pending() {
		return false
	}
	q.remove(h.e.index)
	q.Recycle(h.e)
	return true
}

// PeekTime returns the activation time of the earliest pending event.
// ok is false if the queue is empty.
func (q *Queue) PeekTime() (at int64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Pop removes and returns the earliest pending event. The caller is
// responsible for invoking its callback via Fire and then returning the
// event to the queue with Recycle. Pop returns nil if the queue is
// empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := q.h[0]
	q.remove(0)
	return e
}

// Recycle returns a popped event to the freelist after its callback
// ran. The event must be out of the heap (popped, not merely peeked);
// recycling bumps its generation, so stale Handles can never cancel the
// event's next incarnation.
func (q *Queue) Recycle(e *Event) {
	if e.index >= 0 {
		panic("eventq: recycling an event still in the queue")
	}
	e.gen++
	e.fn = nil
	q.free = append(q.free, e)
}

// less orders events by (at, seq): activation time, scheduling order.
func (q *Queue) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// remove takes the event at heap index i out of the heap, leaving its
// index at -1.
func (q *Queue) remove(i int) {
	n := len(q.h) - 1
	e := q.h[i]
	if i != n {
		q.h[i] = q.h[n]
		q.h[i].index = i
	}
	q.h[n] = nil
	q.h = q.h[:n]
	e.index = -1
	if i < n {
		q.down(i)
		q.up(i)
	}
}

// up sifts the event at index i toward the root of the 4-ary heap.
func (q *Queue) up(i int) {
	e := q.h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := q.h[parent]
		if p.at < e.at || (p.at == e.at && p.seq < e.seq) {
			break
		}
		q.h[i] = p
		p.index = i
		i = parent
	}
	q.h[i] = e
	e.index = i
}

// down sifts the event at index i toward the leaves of the 4-ary heap.
func (q *Queue) down(i int) {
	e := q.h[i]
	n := len(q.h)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, min) {
				min = c
			}
		}
		m := q.h[min]
		if e.at < m.at || (e.at == m.at && e.seq < m.seq) {
			break
		}
		q.h[i] = m
		m.index = i
		i = min
	}
	q.h[i] = e
	e.index = i
}
