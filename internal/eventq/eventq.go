// Package eventq provides a cancellable priority queue of timed events,
// the scheduling substrate for the discrete-event network simulator.
//
// Events are ordered by activation time; ties are broken by scheduling
// order, so the queue is deterministic: two runs that schedule the same
// events in the same order execute them identically.
package eventq

import "container/heap"

// An Event is a callback scheduled at a point in simulated time.
// Events are created by Queue.Schedule and may be cancelled before they
// fire. The zero Event is not usable.
type Event struct {
	at    int64
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// At returns the simulated time at which the event fires.
func (e *Event) At() int64 { return e.at }

// Pending reports whether the event is still queued (not yet fired or
// cancelled).
func (e *Event) Pending() bool { return e.index >= 0 }

// A Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator is single-threaded
// by design so that runs are reproducible.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at and returns a handle that can
// be used to cancel it. Scheduling in the past is allowed (the event
// simply becomes the next to fire); the simulator guards against
// time travel separately.
func (q *Queue) Schedule(at int64, fn func()) *Event {
	e := &Event{at: at, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Cancel removes e from the queue. It returns true if the event was
// pending and is now cancelled, and false if it had already fired or
// been cancelled.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&q.h, e.index)
	e.index = -1
	e.fn = nil
	return true
}

// PeekTime returns the activation time of the earliest pending event.
// ok is false if the queue is empty.
func (q *Queue) PeekTime() (at int64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Pop removes and returns the earliest pending event. The caller is
// responsible for invoking its callback via Fire. Pop returns nil if
// the queue is empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	return e
}

// Fire runs the event's callback. It is a no-op on cancelled events.
func (e *Event) Fire() {
	if e.fn != nil {
		fn := e.fn
		e.fn = nil
		fn()
	}
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
