package tcpsim

import (
	"testing"

	"repro/internal/netsim"
)

// testPath builds a single-link path with the given capacity, buffer,
// and one-way propagation delay.
func testPath(t *testing.T, capacity int64, buf int, prop netsim.Time) (*netsim.Simulator, []*netsim.Link) {
	t.Helper()
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "l0", capacity, prop, buf)
	return sim, []*netsim.Link{link}
}

// TestBulkFlowSaturatesEmptyLink: a lone BTC flow on an idle link must
// reach a goodput close to the link capacity.
func TestBulkFlowSaturatesEmptyLink(t *testing.T) {
	sim, route := testPath(t, 8_200_000, 64<<10, 20*netsim.Millisecond)
	f := NewFlow(sim, "btc", route, 20*netsim.Millisecond, Config{})
	f.Start()
	sim.RunFor(30 * netsim.Second)

	goodput := float64(f.Delivered()) * 8 / sim.Now().Seconds()
	t.Logf("goodput %.2f Mb/s of 8.2 Mb/s, %d retransmissions, %d timeouts, cwnd %.0f",
		goodput/1e6, f.Retransmissions(), f.Timeouts(), f.Cwnd())
	if goodput < 0.85*8.2e6 {
		t.Errorf("goodput %.2f Mb/s: lone bulk flow should approach link capacity 8.2 Mb/s", goodput/1e6)
	}
	if goodput > 8.2e6 {
		t.Errorf("goodput %.2f Mb/s exceeds link capacity", goodput/1e6)
	}
}

// TestTwoFlowsShareFairly: two identical flows should split the link
// roughly evenly and together still saturate it.
func TestTwoFlowsShareFairly(t *testing.T) {
	sim, route := testPath(t, 8_200_000, 64<<10, 20*netsim.Millisecond)
	a := NewFlow(sim, "a", route, 20*netsim.Millisecond, Config{})
	b := NewFlow(sim, "b", route, 20*netsim.Millisecond, Config{})
	a.Start()
	b.Start()
	sim.RunFor(60 * netsim.Second)

	ga := float64(a.Delivered()) * 8 / sim.Now().Seconds()
	gb := float64(b.Delivered()) * 8 / sim.Now().Seconds()
	t.Logf("goodputs %.2f and %.2f Mb/s", ga/1e6, gb/1e6)
	if ga+gb < 0.8*8.2e6 {
		t.Errorf("aggregate %.2f Mb/s: two flows should still fill the link", (ga+gb)/1e6)
	}
	ratio := ga / gb
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 3 {
		t.Errorf("unfair split %.2f vs %.2f Mb/s (ratio %.1f)", ga/1e6, gb/1e6, ratio)
	}
}
