package tcpsim

import (
	"math"
	"testing"

	"repro/internal/netsim"
)

// TestWindowLimitedThroughput: a flow with a small advertised window
// must deliver ≈ window/RTT — the §VII cross-traffic mechanism.
func TestWindowLimitedThroughput(t *testing.T) {
	sim, route := testPath(t, 100_000_000, 0, 50*netsim.Millisecond)
	// RTT = 50ms + 150ms reverse = 200ms; 25 kB window ⇒ 1 Mb/s.
	f := NewFlow(sim, "wl", route, 150*netsim.Millisecond, Config{RcvWindow: 25_000})
	f.Start()
	sim.RunFor(60 * netsim.Second)
	goodput := float64(f.Delivered()) * 8 / sim.Now().Seconds()
	want := 25_000.0 * 8 / 0.2
	if math.Abs(goodput-want)/want > 0.1 {
		t.Fatalf("window-limited goodput %.2f Mb/s, want ≈%.2f", goodput/1e6, want/1e6)
	}
	if f.Retransmissions() != 0 {
		t.Fatalf("%d retransmissions on an uncongested path", f.Retransmissions())
	}
}

// TestSlowStartDoubling: in the first RTTs, delivery grows
// exponentially (cwnd doubles per round trip).
func TestSlowStartDoubling(t *testing.T) {
	sim, route := testPath(t, 1_000_000_000, 0, 50*netsim.Millisecond)
	f := NewFlow(sim, "ss", route, 50*netsim.Millisecond, Config{})
	f.Start()
	// After k RTTs of slow start, delivered ≈ (2^k − 1)·initcwnd.
	var delivered []int64
	for k := 0; k < 5; k++ {
		sim.RunFor(100 * netsim.Millisecond) // one RTT
		delivered = append(delivered, f.Delivered())
	}
	for k := 2; k < 5; k++ {
		if delivered[k] < 3*delivered[k-1]/2 {
			t.Fatalf("round %d: delivered %d after %d — not exponential growth: %v",
				k, delivered[k], delivered[k-1], delivered)
		}
	}
}

// TestRTOOnBlackhole: if the path drops everything, the flow must back
// off with repeated timeouts instead of spinning.
func TestRTOOnBlackhole(t *testing.T) {
	sim := netsim.NewSimulator()
	// A 1-byte buffer drops every segment.
	link := netsim.NewLink(sim, "blackhole", 1_000_000, 0, 1)
	f := NewFlow(sim, "bh", []*netsim.Link{link}, 10*netsim.Millisecond, Config{})
	f.Start()
	sim.RunFor(30 * netsim.Second)
	if f.Delivered() != 0 {
		t.Fatalf("delivered %d bytes through a blackhole", f.Delivered())
	}
	if f.Timeouts() < 3 {
		t.Fatalf("%d timeouts in 30s of blackhole, want repeated backoff", f.Timeouts())
	}
	// Exponential backoff caps the timeout count: at least 1s apart on
	// average once backed off.
	if f.Timeouts() > 40 {
		t.Fatalf("%d timeouts: backoff is not slowing retransmissions", f.Timeouts())
	}
}

// TestRecoveryFromSingleLoss: drop exactly one segment mid-flow and
// verify fast retransmit repairs it without an RTO.
func TestRecoveryFromSingleLoss(t *testing.T) {
	sim, route := testPath(t, 10_000_000, 0, 10*netsim.Millisecond)
	f := NewFlow(sim, "fr", route, 10*netsim.Millisecond, Config{RcvWindow: 64_000})
	f.Start()
	sim.RunFor(2 * netsim.Second)

	// Surgically lose the next segment by shrinking the buffer for an
	// instant is not possible on an unbounded link; instead simulate a
	// one-off drop by injecting a competing burst through a tiny-buffer
	// side path is overkill. Use the observable contract instead: on an
	// unbounded link there must be no losses at all.
	if f.Retransmissions() != 0 || f.Timeouts() != 0 {
		t.Fatalf("retx=%d rto=%d on a lossless link", f.Retransmissions(), f.Timeouts())
	}
	// Now run through a drop-tail bottleneck and verify fast recovery
	// dominates over timeouts (the flow stays ack-clocked).
	sim2, route2 := testPath(t, 8_200_000, 64<<10, 20*netsim.Millisecond)
	g := NewFlow(sim2, "fr2", route2, 20*netsim.Millisecond, Config{RcvWindow: 128_000})
	g.Start()
	sim2.RunFor(60 * netsim.Second)
	if g.Recoveries() == 0 {
		t.Fatal("no fast-recovery episodes at a drop-tail bottleneck")
	}
	if g.Timeouts() > g.Recoveries() {
		t.Fatalf("timeouts %d exceed recoveries %d: loss repair degenerated", g.Timeouts(), g.Recoveries())
	}
}

// TestStopAndResume: pausing the sender must stop delivery growth;
// resuming must restart it.
func TestStopAndResume(t *testing.T) {
	sim, route := testPath(t, 10_000_000, 0, 10*netsim.Millisecond)
	// A small window keeps the in-flight backlog short so a one-second
	// drain after Stop suffices.
	f := NewFlow(sim, "sr", route, 10*netsim.Millisecond, Config{RcvWindow: 64_000})
	f.Start()
	sim.RunFor(5 * netsim.Second)
	f.Stop()
	sim.RunFor(netsim.Second) // drain in-flight
	at := f.Delivered()
	sim.RunFor(5 * netsim.Second)
	if f.Delivered() != at {
		t.Fatalf("delivery grew while stopped: %d → %d", at, f.Delivered())
	}
	f.Start()
	sim.RunFor(5 * netsim.Second)
	if f.Delivered() <= at {
		t.Fatal("no delivery after resume")
	}
}

// TestDeliveriesMonotone: the receiver's in-order byte count never
// regresses and ends equal to Delivered().
func TestDeliveriesMonotone(t *testing.T) {
	sim, route := testPath(t, 8_200_000, 32<<10, 20*netsim.Millisecond)
	f := NewFlow(sim, "mono", route, 20*netsim.Millisecond, Config{})
	f.Start()
	sim.RunFor(30 * netsim.Second)
	pts := f.Deliveries()
	if len(pts) == 0 {
		t.Fatal("no delivery points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Bytes < pts[i-1].Bytes || pts[i].At < pts[i-1].At {
			t.Fatalf("delivery series regressed at %d: %+v after %+v", i, pts[i], pts[i-1])
		}
	}
	if pts[len(pts)-1].Bytes != f.Delivered() {
		t.Fatalf("last delivery point %d != Delivered %d", pts[len(pts)-1].Bytes, f.Delivered())
	}
}

// TestSRTTTracksPathRTT: the estimator must land near the real path
// round-trip time.
func TestSRTTTracksPathRTT(t *testing.T) {
	sim, route := testPath(t, 100_000_000, 0, 40*netsim.Millisecond)
	f := NewFlow(sim, "rtt", route, 60*netsim.Millisecond, Config{RcvWindow: 20_000})
	f.Start()
	sim.RunFor(10 * netsim.Second)
	want := 100 * netsim.Millisecond // 40 prop + 60 reverse, tx negligible
	got := f.SRTT()
	if got < want || got > want+10*netsim.Millisecond {
		t.Fatalf("SRTT %v, want ≈%v", got, want)
	}
}

// TestPingerOnQuietPath measures the base RTT exactly.
func TestPingerOnQuietPath(t *testing.T) {
	sim, route := testPath(t, 8_200_000, 0, 50*netsim.Millisecond)
	p := NewPinger(sim, route, 150*netsim.Millisecond, netsim.Second, 64)
	p.Start()
	sim.RunFor(10500 * netsim.Millisecond)
	p.Stop()
	samples := p.Samples()
	if len(samples) != 11 { // t=0s..10s inclusive
		t.Fatalf("%d samples, want 11", len(samples))
	}
	txTime := 64 * 8 * netsim.Second / 8_200_000
	want := 50*netsim.Millisecond + 150*netsim.Millisecond + txTime
	for _, s := range samples {
		if s.RTT != want {
			t.Fatalf("quiet-path RTT %v, want %v", s.RTT, want)
		}
	}
}

// TestPingerSeesQueueInflation: pings through a saturated bottleneck
// must report inflated RTTs — the §VII observable.
func TestPingerSeesQueueInflation(t *testing.T) {
	sim, route := testPath(t, 8_200_000, 175_000, 50*netsim.Millisecond)
	ping := NewPinger(sim, route, 150*netsim.Millisecond, 100*netsim.Millisecond, 64)
	ping.Start()
	sim.RunFor(5 * netsim.Second)
	quiet := ping.RTTSeconds()

	btc := NewFlow(sim, "btc", route, 150*netsim.Millisecond, Config{RcvWindow: 370_000})
	btc.Start()
	sim.RunFor(30 * netsim.Second)
	all := ping.RTTSeconds()
	busy := all[len(quiet):]

	var qMean, bMax float64
	for _, v := range quiet {
		qMean += v
	}
	qMean /= float64(len(quiet))
	for _, v := range busy {
		if v > bMax {
			bMax = v
		}
	}
	if bMax < qMean+0.1 {
		t.Fatalf("max RTT under load %.0fms vs quiet %.0fms: no queue inflation visible",
			bMax*1e3, qMean*1e3)
	}
}

// TestPingerCountsLosses: pings through a blackhole are lost, and
// Sent() exposes the discrepancy.
func TestPingerCountsLosses(t *testing.T) {
	sim := netsim.NewSimulator()
	link := netsim.NewLink(sim, "blackhole", 1_000_000, 0, 1)
	p := NewPinger(sim, []*netsim.Link{link}, 0, 100*netsim.Millisecond, 64)
	p.Start()
	sim.RunFor(2 * netsim.Second)
	if got := len(p.Samples()); got != 0 {
		t.Fatalf("%d samples through a blackhole", got)
	}
	if p.Sent() < 10 {
		t.Fatalf("pinger sent %d probes in 2s at 100ms, want ≥10", p.Sent())
	}
}

// TestConfigDefaultsApplied pins the zero-value contract.
func TestConfigDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MSS != 1460 || cfg.HeaderBytes != 40 || cfg.RcvWindow != 4<<20 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.MinRTO != 200*netsim.Millisecond || cfg.MaxRTO != 60*netsim.Second {
		t.Fatalf("RTO defaults %v / %v", cfg.MinRTO, cfg.MaxRTO)
	}
}

// TestFlowValidation: empty routes are a construction bug.
func TestFlowValidation(t *testing.T) {
	sim := netsim.NewSimulator()
	defer func() {
		if recover() == nil {
			t.Fatal("empty route accepted")
		}
	}()
	NewFlow(sim, "bad", nil, 0, Config{})
}

// TestStringDiagnostics: the debug formatter includes the key state.
func TestStringDiagnostics(t *testing.T) {
	sim, route := testPath(t, 10_000_000, 0, 0)
	f := NewFlow(sim, "diag", route, 0, Config{})
	if s := f.String(); s == "" {
		t.Fatal("empty diagnostics")
	}
}
