// Package tcpsim implements a TCP Reno/NewReno bulk-transfer sender
// and receiver over the discrete-event simulator, plus a periodic
// Pinger. It is the substrate for the paper's §VII (relation between
// avail-bw and the throughput of a "greedy" BTC connection) and §VIII
// (intrusiveness): a loss-driven AIMD sender that fills drop-tail
// queues until overflow, inflating path RTTs, exactly the mechanism the
// paper credits for BTC connections grabbing more than the previously
// available bandwidth.
//
// The model: data segments traverse the forward simulated path and are
// subject to its queueing and drops; acknowledgments return over an
// uncongested reverse path with constant delay, matching the paper's
// focus on forward-path effects.
package tcpsim

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/netsim"
)

// Config parameterizes a Flow. The zero value gives a standard
// Ethernet-framed bulk transfer with an effectively unlimited receiver
// window ("a persistent TCP connection with sufficiently large
// advertised window").
type Config struct {
	// MSS is the maximum segment payload in bytes (default 1460).
	MSS int
	// HeaderBytes is the TCP/IP header overhead added to each data
	// segment's wire size (default 40, so MSS 1460 fills a 1500-byte
	// frame). Acks are pure headers.
	HeaderBytes int
	// RcvWindow is the receiver's advertised window in bytes (default
	// 4 MiB, effectively unlimited at the capacities simulated here).
	RcvWindow int
	// InitCwndSegments is the initial congestion window (default 2).
	InitCwndSegments int
	// MinRTO and MaxRTO clamp the retransmission timeout (defaults
	// 200 ms and 60 s).
	MinRTO, MaxRTO netsim.Time
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.RcvWindow == 0 {
		c.RcvWindow = 4 << 20
	}
	if c.InitCwndSegments == 0 {
		c.InitCwndSegments = 2
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * netsim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * netsim.Second
	}
	return c
}

// segment is the payload of a simulated TCP data packet.
type segment struct {
	seq  int64 // first payload byte
	len  int   // payload bytes
	retx bool  // retransmission (Karn: no RTT sample)
}

// A DeliveryPoint records cumulative in-order bytes at the receiver,
// the series the §VII throughput plots are computed from.
type DeliveryPoint struct {
	At    netsim.Time
	Bytes int64
}

// A Flow is one bulk TCP connection: sender and receiver state coupled
// through the simulated forward path and a constant-delay reverse path.
type Flow struct {
	sim     *netsim.Simulator
	route   []*netsim.Link
	reverse netsim.Time
	cfg     Config
	name    string

	running bool

	// Sender state, all in bytes.
	cwnd, ssthresh float64
	sndUna         int64 // lowest unacknowledged byte
	nextSeq        int64 // next byte to send
	dupAcks        int
	inRecovery     bool
	recover        int64 // NewReno recovery point
	partialAcks    int   // partial acks seen in this recovery episode
	highestSent    int64 // highest sequence ever transmitted

	// RTT estimation (RFC 6298 shape).
	srtt, rttvar, rto netsim.Time
	rtoBackoff        int
	rtoTimer          eventq.Handle
	sendTimes         map[int64]netsim.Time // segment end-seq → first-send time

	// Receiver state.
	rcvNext int64
	ooo     map[int64]int64 // out-of-order runs: start → end

	// Statistics.
	deliveries      []DeliveryPoint
	retransmissions int
	timeouts        int
	recoveries      int
}

// NewFlow creates a bulk flow that sends over route and receives acks
// after the constant reverse delay. name labels diagnostics.
func NewFlow(sim *netsim.Simulator, name string, route []*netsim.Link, reverse netsim.Time, cfg Config) *Flow {
	if len(route) == 0 {
		panic("tcpsim: flow needs a route")
	}
	cfg = cfg.withDefaults()
	f := &Flow{
		sim:       sim,
		route:     route,
		reverse:   reverse,
		cfg:       cfg,
		name:      name,
		ssthresh:  float64(cfg.RcvWindow),
		cwnd:      float64(cfg.InitCwndSegments * cfg.MSS),
		rto:       1 * netsim.Second, // RFC 6298 initial RTO
		sendTimes: make(map[int64]netsim.Time),
		ooo:       make(map[int64]int64),
	}
	return f
}

// Start begins (or resumes) transmission.
func (f *Flow) Start() {
	if f.running {
		return
	}
	f.running = true
	f.trySend()
}

// Stop pauses the sender. In-flight segments drain; their acks still
// update state so a later Start resumes cleanly.
func (f *Flow) Stop() {
	f.running = false
	f.stopRTOTimer()
}

// Delivered returns cumulative in-order bytes at the receiver.
func (f *Flow) Delivered() int64 { return f.rcvNext }

// Deliveries returns the timestamped in-order delivery series.
func (f *Flow) Deliveries() []DeliveryPoint { return f.deliveries }

// Retransmissions returns the count of retransmitted segments.
func (f *Flow) Retransmissions() int { return f.retransmissions }

// Timeouts returns the count of RTO expirations.
func (f *Flow) Timeouts() int { return f.timeouts }

// Recoveries returns the count of fast-recovery episodes.
func (f *Flow) Recoveries() int { return f.recoveries }

// Cwnd returns the current congestion window in bytes.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (f *Flow) SRTT() netsim.Time { return f.srtt }

// flight returns the outstanding bytes.
func (f *Flow) flight() int64 { return f.nextSeq - f.sndUna }

// window returns the sender's current usable window in bytes.
func (f *Flow) window() int64 {
	w := int64(f.cwnd)
	if rw := int64(f.cfg.RcvWindow); w > rw {
		w = rw
	}
	return w
}

// trySend emits new segments while the window allows.
func (f *Flow) trySend() {
	if !f.running {
		return
	}
	for f.flight()+int64(f.cfg.MSS) <= f.window() {
		f.sendSegment(f.nextSeq, false)
		f.nextSeq += int64(f.cfg.MSS)
		if f.nextSeq > f.highestSent {
			f.highestSent = f.nextSeq
		}
	}
	// Arm-if-idle only: restarting here would let the steady dup-ack
	// stream of a long recovery postpone the timeout forever.
	f.ensureRTOTimer()
}

// sendSegment injects one data segment into the forward path.
func (f *Flow) sendSegment(seq int64, retx bool) {
	seg := segment{seq: seq, len: f.cfg.MSS, retx: retx}
	end := seq + int64(seg.len)
	if retx {
		f.retransmissions++
		delete(f.sendTimes, end) // Karn: never sample retransmitted segments
	} else {
		f.sendTimes[end] = f.sim.Now()
	}
	pkt := &netsim.Packet{
		Size:    seg.len + f.cfg.HeaderBytes,
		Payload: seg,
	}
	f.sim.Inject(pkt, f.route, f.receive)
}

// receive is the receiver side: in-order delivery tracking and
// immediate cumulative acks (dup acks arise naturally from gaps).
func (f *Flow) receive(pkt *netsim.Packet, at netsim.Time) {
	seg := pkt.Payload.(segment)
	end := seg.seq + int64(seg.len)
	switch {
	case end <= f.rcvNext:
		// Duplicate of already-delivered data.
	case seg.seq <= f.rcvNext:
		f.rcvNext = end
		f.absorbOutOfOrder()
		f.deliveries = append(f.deliveries, DeliveryPoint{At: at, Bytes: f.rcvNext})
	default:
		// Out of order: remember the run.
		if cur, ok := f.ooo[seg.seq]; !ok || end > cur {
			f.ooo[seg.seq] = end
		}
	}
	ackNo := f.rcvNext
	f.sim.After(f.reverse, func() { f.onAck(ackNo) })
}

// absorbOutOfOrder advances rcvNext through buffered runs.
func (f *Flow) absorbOutOfOrder() {
	for {
		advanced := false
		for start, end := range f.ooo {
			if start <= f.rcvNext {
				if end > f.rcvNext {
					f.rcvNext = end
				}
				delete(f.ooo, start)
				advanced = true
			}
		}
		if !advanced {
			return
		}
	}
}

// onAck is the sender's ack processing: Reno congestion control with
// NewReno partial-ack recovery.
func (f *Flow) onAck(ackNo int64) {
	if ackNo > f.sndUna {
		f.sampleRTT(ackNo)
		newly := ackNo - f.sndUna
		f.sndUna = ackNo
		if f.inRecovery {
			if ackNo >= f.recover {
				// Full ack: leave recovery, deflate to ssthresh.
				f.inRecovery = false
				f.cwnd = f.ssthresh
				f.dupAcks = 0
			} else {
				// Partial ack: retransmit the next hole, deflate by
				// the amount acked (NewReno).
				f.partialAcks++
				f.sendSegment(f.sndUna, true)
				f.cwnd -= float64(newly)
				if f.cwnd < float64(f.cfg.MSS) {
					f.cwnd = float64(f.cfg.MSS)
				}
				f.cwnd += float64(f.cfg.MSS)
				// RFC 6582 "impatient" timer: only the first partial
				// ack resets the RTO. A burst loss of many segments
				// would otherwise be repaired one hole per RTT while
				// partial acks keep the timer alive indefinitely; the
				// impatient variant lets the RTO fire and slow start
				// resynchronize in a couple of round trips.
				if f.partialAcks == 1 {
					f.armRTOTimer()
				}
				f.trySend()
				return
			}
		} else {
			f.dupAcks = 0
			mss := float64(f.cfg.MSS)
			if f.cwnd < f.ssthresh {
				f.cwnd += mss // slow start
			} else {
				f.cwnd += mss * mss / f.cwnd // congestion avoidance
			}
		}
		f.armRTOTimer()
		f.trySend()
		return
	}

	// Duplicate ack.
	if f.flight() == 0 {
		return
	}
	f.dupAcks++
	switch {
	case f.inRecovery:
		// Inflate during recovery; each dup ack signals a departure.
		f.cwnd += float64(f.cfg.MSS)
		f.trySend()
	case f.dupAcks == 3 && f.sndUna >= f.recover:
		// RFC 6582 "avoid multiple fast retransmits": dup acks below
		// the last recovery point belong to an old window (typically
		// the duplicate flood after a go-back-N timeout) and must not
		// trigger another halving.
		f.enterRecovery()
	}
}

// enterRecovery performs fast retransmit / fast recovery.
func (f *Flow) enterRecovery() {
	mss := float64(f.cfg.MSS)
	half := float64(f.flight()) / 2
	if half < 2*mss {
		half = 2 * mss
	}
	f.ssthresh = half
	f.recover = f.nextSeq
	f.inRecovery = true
	f.partialAcks = 0
	f.recoveries++
	// Karn: abandon pending RTT samples. Segments already in flight
	// may be cumulatively acknowledged only after the holes ahead of
	// them are repaired, which would record ack-release time (which can
	// be many seconds) instead of round-trip time and freeze the RTO.
	clear(f.sendTimes)
	f.sendSegment(f.sndUna, true)
	f.cwnd = f.ssthresh + 3*mss
	f.armRTOTimer()
}

// sampleRTT updates the RFC 6298 estimator from a cumulative ack, if
// the ack exactly covers a once-transmitted segment.
func (f *Flow) sampleRTT(ackNo int64) {
	sent, ok := f.sendTimes[ackNo]
	if ok {
		r := f.sim.Now() - sent
		if f.srtt == 0 {
			f.srtt = r
			f.rttvar = r / 2
		} else {
			diff := f.srtt - r
			if diff < 0 {
				diff = -diff
			}
			f.rttvar = (3*f.rttvar + diff) / 4
			f.srtt = (7*f.srtt + r) / 8
		}
		f.rto = f.srtt + 4*f.rttvar
		f.clampRTO()
		f.rtoBackoff = 0
	}
	// Drop sample bookkeeping for everything now acknowledged.
	for end := range f.sendTimes {
		if end <= ackNo {
			delete(f.sendTimes, end)
		}
	}
}

func (f *Flow) clampRTO() {
	if f.rto < f.cfg.MinRTO {
		f.rto = f.cfg.MinRTO
	}
	if f.rto > f.cfg.MaxRTO {
		f.rto = f.cfg.MaxRTO
	}
}

// armRTOTimer restarts the retransmission timer if data is outstanding.
func (f *Flow) armRTOTimer() {
	f.stopRTOTimer()
	f.ensureRTOTimer()
}

// ensureRTOTimer arms the timer only when it is not already pending.
func (f *Flow) ensureRTOTimer() {
	if f.rtoTimer.Pending() {
		return
	}
	f.rtoTimer = eventq.Handle{}
	if f.flight() == 0 || !f.running {
		return
	}
	rto := f.rto << f.rtoBackoff
	if rto > f.cfg.MaxRTO {
		rto = f.cfg.MaxRTO
	}
	f.rtoTimer = f.sim.After(rto, f.onRTO)
}

func (f *Flow) stopRTOTimer() {
	f.sim.Cancel(f.rtoTimer)
	f.rtoTimer = eventq.Handle{}
}

// onRTO handles a retransmission timeout: multiplicative back-off,
// window collapse, go-back-N from the last cumulative ack.
func (f *Flow) onRTO() {
	f.timeouts++
	mss := float64(f.cfg.MSS)
	half := float64(f.flight()) / 2
	if half < 2*mss {
		half = 2 * mss
	}
	f.ssthresh = half
	f.cwnd = mss
	f.inRecovery = false
	f.dupAcks = 0
	// Dup acks for anything below the pre-timeout frontier must not
	// trigger fast retransmit (RFC 6582).
	f.recover = f.highestSent
	f.nextSeq = f.sndUna
	if f.rtoBackoff < 6 {
		f.rtoBackoff++
	}
	// Karn: outstanding samples are invalid after a timeout.
	clear(f.sendTimes)
	f.trySend()
}

// String identifies the flow in diagnostics.
func (f *Flow) String() string {
	return fmt.Sprintf("tcp(%s) una=%d next=%d cwnd=%.0f ssthresh=%.0f", f.name, f.sndUna, f.nextSeq, f.cwnd, f.ssthresh)
}
