package tcpsim

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

// TestQuickDataIntegrity is the property test: across random link
// capacities, buffers, and delays — i.e. arbitrary loss patterns — the
// receiver's in-order byte count never exceeds what the sender
// transmitted, the delivery series is monotone, and the flow makes
// progress whenever the path can carry anything at all.
func TestQuickDataIntegrity(t *testing.T) {
	f := func(capSel uint32, bufSel uint16, propSel uint8) bool {
		capacity := int64(200_000 + capSel%50_000_000)
		buf := 4000 + int(bufSel) // 4 kB .. 69 kB: loss-prone
		prop := netsim.Time(propSel%100) * netsim.Millisecond

		sim := netsim.NewSimulator()
		link := netsim.NewLink(sim, "l", capacity, prop, buf)
		flow := NewFlow(sim, "q", []*netsim.Link{link}, 10*netsim.Millisecond, Config{})
		flow.Start()
		sim.RunFor(20 * netsim.Second)

		if flow.Delivered() > flow.highestSent {
			return false // receiver invented data
		}
		pts := flow.Deliveries()
		for i := 1; i < len(pts); i++ {
			if pts[i].Bytes < pts[i-1].Bytes {
				return false
			}
		}
		// Any non-degenerate path must carry something in 20 s.
		return flow.Delivered() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCwndFloor: whatever happens, cwnd never drops below one MSS
// and ssthresh never below two.
func TestQuickCwndFloor(t *testing.T) {
	f := func(bufSel uint16) bool {
		sim := netsim.NewSimulator()
		// Harsh little buffer to force constant loss activity.
		link := netsim.NewLink(sim, "l", 1_000_000, netsim.Millisecond, 3000+int(bufSel)%10_000)
		flow := NewFlow(sim, "floor", []*netsim.Link{link}, 5*netsim.Millisecond, Config{})
		flow.Start()
		for i := 0; i < 40; i++ {
			sim.RunFor(500 * netsim.Millisecond)
			if flow.cwnd < float64(flow.cfg.MSS) {
				return false
			}
			if flow.ssthresh < 2*float64(flow.cfg.MSS) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFlightNeverNegative: sequence bookkeeping stays consistent
// under timeouts and go-back-N.
func TestQuickFlightNeverNegative(t *testing.T) {
	f := func(capSel uint32) bool {
		sim := netsim.NewSimulator()
		link := netsim.NewLink(sim, "l", int64(100_000+capSel%5_000_000), 2*netsim.Millisecond, 5000)
		flow := NewFlow(sim, "flight", []*netsim.Link{link}, 10*netsim.Millisecond, Config{})
		flow.Start()
		for i := 0; i < 20; i++ {
			sim.RunFor(netsim.Second)
			if flow.flight() < 0 {
				return false
			}
			if flow.sndUna > flow.nextSeq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
