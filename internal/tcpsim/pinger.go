package tcpsim

import (
	"repro/internal/eventq"
	"repro/internal/netsim"
)

// A PingSample is one round-trip time measurement.
type PingSample struct {
	At  netsim.Time // send time
	RTT netsim.Time
}

// A Pinger measures path RTT the way the paper's experiments do with
// ping: a small probe every interval through the forward path, plus the
// constant reverse delay. Forward queueing delay — the quantity a
// saturating BTC connection inflates — shows up directly in the
// samples.
type Pinger struct {
	sim      *netsim.Simulator
	route    []*netsim.Link
	reverse  netsim.Time
	interval netsim.Time
	size     int

	samples []PingSample
	sent    int
	timer   eventq.Handle
	running bool
}

// NewPinger creates a pinger sending size-byte probes (64 bytes if 0 —
// a standard ping) every interval.
func NewPinger(sim *netsim.Simulator, route []*netsim.Link, reverse, interval netsim.Time, size int) *Pinger {
	if size == 0 {
		size = 64
	}
	return &Pinger{sim: sim, route: route, reverse: reverse, interval: interval, size: size}
}

// Start begins probing immediately.
func (p *Pinger) Start() {
	if p.running {
		return
	}
	p.running = true
	p.fire()
}

// Stop cancels further probes.
func (p *Pinger) Stop() {
	if p.running {
		p.sim.Cancel(p.timer)
		p.timer = eventq.Handle{}
		p.running = false
	}
}

func (p *Pinger) fire() {
	p.sent++
	pkt := &netsim.Packet{Size: p.size}
	p.sim.Inject(pkt, p.route, func(pk *netsim.Packet, at netsim.Time) {
		p.samples = append(p.samples, PingSample{
			At:  pk.SentAt,
			RTT: (at - pk.SentAt) + p.reverse,
		})
	})
	p.timer = p.sim.After(p.interval, p.fire)
}

// Samples returns the collected RTT measurements.
func (p *Pinger) Samples() []PingSample { return p.samples }

// Sent returns the number of probes emitted; compared with
// len(Samples()) it exposes ping losses.
func (p *Pinger) Sent() int { return p.sent }

// RTTSeconds extracts the RTT values in seconds.
func (p *Pinger) RTTSeconds() []float64 {
	out := make([]float64, len(p.samples))
	for i, s := range p.samples {
		out[i] = s.RTT.Seconds()
	}
	return out
}
