package archive

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the CLI archive spec shared by `pathload -archive`
// and `pathload-coord -archive`:
//
//	dir[:opt[,opt...]]
//
// with options
//
//	seal=<bytes>[k|m]  WAL size that triggers an automatic seal
//	                   (suffixes are binary: k=KiB, m=MiB)
//	sync               fsync the WAL after every append
//
// e.g. "data/archive", "data/archive:seal=1m", "data/archive:seal=64k,sync".
func ParseSpec(spec string) (dir string, opt Options, err error) {
	dir, opts, hasOpts := strings.Cut(spec, ":")
	if dir == "" {
		return "", Options{}, fmt.Errorf("archive: empty directory in spec %q", spec)
	}
	if !hasOpts {
		return dir, opt, nil
	}
	for _, o := range strings.Split(opts, ",") {
		o = strings.TrimSpace(o)
		switch {
		case o == "sync":
			opt.Sync = true
		case strings.HasPrefix(o, "seal="):
			v := strings.TrimPrefix(o, "seal=")
			mult := int64(1)
			switch {
			case strings.HasSuffix(v, "k"), strings.HasSuffix(v, "K"):
				mult, v = 1<<10, v[:len(v)-1]
			case strings.HasSuffix(v, "m"), strings.HasSuffix(v, "M"):
				mult, v = 1<<20, v[:len(v)-1]
			}
			n, perr := strconv.ParseInt(v, 10, 64)
			if perr != nil || n <= 0 {
				return "", Options{}, fmt.Errorf("archive: bad seal size %q in spec %q (want a positive byte count, optional k/m suffix)", o, spec)
			}
			opt.SealBytes = n * mult
		case o == "":
			// tolerate a trailing comma
		default:
			return "", Options{}, fmt.Errorf("archive: unknown option %q in spec %q (have seal=<bytes>, sync)", o, spec)
		}
	}
	return dir, opt, nil
}
