package archive

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// rec builds a small test record with derived contents.
func rec(i int) Record {
	return Record{
		Kind: uint8(1 + i%3),
		Key:  fmt.Sprintf("key-%02d", i%5),
		Data: []byte(fmt.Sprintf("payload-%04d", i)),
	}
}

// openT opens dir with a scripted clock, failing the test on error.
func openT(t *testing.T, dir string, opt Options) (*Archive, OpenReport) {
	t.Helper()
	if opt.NowUnix == nil {
		clock := int64(1000)
		opt.NowUnix = func() int64 { clock++; return clock }
	}
	a, rep, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return a, rep
}

// appendN appends records rec(from)..rec(from+n-1).
func appendN(t *testing.T, a *Archive, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := a.Append(rec(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

// collect replays the archive into (sealed, tail) record slices.
func collect(t *testing.T, a *Archive) (sealed, tail []Record) {
	t.Helper()
	if err := a.ReplaySealed(func(r Record) error { sealed = append(sealed, r); return nil }); err != nil {
		t.Fatalf("ReplaySealed: %v", err)
	}
	if err := a.ReplayTail(func(r Record) error { tail = append(tail, r); return nil }); err != nil {
		t.Fatalf("ReplayTail: %v", err)
	}
	return sealed, tail
}

func TestRecordRoundtrip(t *testing.T) {
	cases := []Record{
		{Kind: 0, Key: "", Data: nil},
		{Kind: 7, Key: "path-00", Data: []byte("x")},
		{Kind: 255, Key: "k", Data: bytes.Repeat([]byte{0xA5}, 1000)},
	}
	var buf []byte
	for _, r := range cases {
		var err error
		buf, err = appendRecord(buf, r)
		if err != nil {
			t.Fatalf("appendRecord: %v", err)
		}
	}
	off := 0
	for i, want := range cases {
		got, n, err := readRecord(buf[off:])
		if err != nil {
			t.Fatalf("readRecord[%d]: %v", i, err)
		}
		if got.Kind != want.Kind || got.Key != want.Key || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestRecordBounds(t *testing.T) {
	if _, err := appendRecord(nil, Record{Data: make([]byte, MaxData+1)}); err == nil {
		t.Fatal("oversized data accepted")
	}
	// A torn frame reads as short, a bit-flipped one as corrupt.
	buf, _ := appendRecord(nil, rec(0))
	if _, _, err := readRecord(buf[:len(buf)-1]); err != errShortRecord {
		t.Fatalf("torn record: %v", err)
	}
	flipped := append([]byte(nil), buf...)
	flipped[10] ^= 0x01
	if _, _, err := readRecord(flipped); err != errCorruptRecord {
		t.Fatalf("flipped record: %v", err)
	}
}

func TestAppendSealReplay(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{})
	appendN(t, a, 0, 10)
	if err := a.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	appendN(t, a, 10, 4)
	segs := a.Segments()
	if len(segs) != 1 || segs[0].Index != 1 || segs[0].Records != 10 {
		t.Fatalf("segments: %+v", segs)
	}
	if got := a.TailRecords(); got != 4 {
		t.Fatalf("TailRecords = %d, want 4", got)
	}
	sealed, tail := collect(t, a)
	for i, r := range append(sealed, tail...) {
		if want := rec(i); !reflect.DeepEqual(r, want) {
			t.Fatalf("record %d: got %+v want %+v", i, r, want)
		}
	}
	if len(sealed) != 10 || len(tail) != 4 {
		t.Fatalf("sealed %d tail %d", len(sealed), len(tail))
	}
	// Sealing the tail makes segment 2; a further empty seal is a no-op.
	if err := a.Seal(); err != nil {
		t.Fatalf("Seal tail: %v", err)
	}
	if err := a.Seal(); err != nil {
		t.Fatalf("empty Seal: %v", err)
	}
	if got := len(a.Segments()); got != 2 {
		t.Fatalf("segments after tail seal + empty seal: %d, want 2", got)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReopenPreservesEverything(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{})
	appendN(t, a, 0, 6)
	a.Seal()
	appendN(t, a, 6, 3)
	a.Close()

	b, rep := openT(t, dir, Options{})
	defer b.Close()
	if rep.Segments != 1 || rep.TailRecords != 3 || rep.DroppedTailBytes != 0 || rep.HealedHead {
		t.Fatalf("clean reopen report: %+v", rep)
	}
	sealed, tail := collect(t, b)
	if len(sealed) != 6 || len(tail) != 3 {
		t.Fatalf("reopen: sealed %d tail %d", len(sealed), len(tail))
	}
	// The next seal chains onto the recovered newest segment.
	if err := b.Seal(); err != nil {
		t.Fatalf("Seal after reopen: %v", err)
	}
	segs := b.Segments()
	if len(segs) != 2 || segs[1].PrevHash != segs[0].Hash {
		t.Fatalf("chain after reopen: %+v", segs)
	}
}

func TestAutoSeal(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{SealBytes: 64})
	defer a.Close()
	appendN(t, a, 0, 20)
	if len(a.Segments()) < 2 {
		t.Fatalf("SealBytes=64 after 20 records: %d segments", len(a.Segments()))
	}
	sealed, tail := collect(t, a)
	if len(sealed)+len(tail) != 20 {
		t.Fatalf("lost records: %d sealed + %d tail", len(sealed), len(tail))
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{})
	for s := 0; s < 4; s++ {
		appendN(t, a, s*5, 5)
		if err := a.Seal(); err != nil {
			t.Fatalf("Seal %d: %v", s, err)
		}
	}
	removed, err := a.Compact(2*a.Segments()[3].Bytes+a.Segments()[2].Bytes, 0)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if len(removed) == 0 {
		t.Fatal("Compact removed nothing")
	}
	for _, idx := range removed {
		if _, err := os.Stat(a.segPath(idx)); !os.IsNotExist(err) {
			t.Fatalf("segment %d survived removal", idx)
		}
	}
	// The chain stays verifiable from the oldest survivor.
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("post-compact verify: %v", rep.Problems)
	}
	// Age-based compaction with a scripted clock far in the future
	// removes all but the newest.
	a.opt.NowUnix = func() int64 { return 1 << 40 }
	if _, err := a.Compact(0, time.Second); err != nil {
		t.Fatalf("age Compact: %v", err)
	}
	if got := len(a.Segments()); got != 1 {
		t.Fatalf("age compact kept %d segments, want 1 (newest is never removed)", got)
	}
	a.Close()
	// Reopen after compaction: the surviving suffix loads cleanly.
	b, rep2 := openT(t, dir, Options{})
	defer b.Close()
	if rep2.Segments != 1 {
		t.Fatalf("reopen after compact: %+v", rep2)
	}
}

// TestVerifyDetectsAnyFlippedByte is the tamper-evidence acceptance
// criterion: a single flipped byte anywhere in any sealed segment —
// header, checkpoint, record region — must fail verification via the
// hash chain or HEAD anchor.
func TestVerifyDetectsAnyFlippedByte(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{Checkpoint: func() []byte { return []byte("checkpoint-blob") }})
	for s := 0; s < 3; s++ {
		appendN(t, a, s*4, 4)
		if err := a.Seal(); err != nil {
			t.Fatalf("Seal: %v", err)
		}
	}
	a.Close()
	if rep, err := Verify(dir); err != nil || !rep.OK() {
		t.Fatalf("clean archive fails verify: %v %v", err, rep.Problems)
	}
	for seg := 1; seg <= 3; seg++ {
		path := filepath.Join(dir, fmt.Sprintf("seg-%08d", seg))
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Try a byte in every region: header, checkpoint, records.
		for _, off := range []int{6, segHdrLen + 3, len(orig) - 2} {
			mod := append([]byte(nil), orig...)
			mod[off] ^= 0x40
			if err := os.WriteFile(path, mod, 0o644); err != nil {
				t.Fatal(err)
			}
			rep, err := Verify(dir)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if rep.OK() {
				t.Fatalf("flipped byte at seg %d offset %d went undetected", seg, off)
			}
			if _, _, err := Open(dir, Options{}); err == nil {
				t.Fatalf("Open accepted tampered segment %d (offset %d)", seg, off)
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyDetectsHeadTamper(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{})
	appendN(t, a, 0, 3)
	a.Seal()
	a.Close()
	head := filepath.Join(dir, headName)
	b, err := os.ReadFile(head)
	if err != nil {
		t.Fatal(err)
	}
	// Point HEAD at a different hash (re-anchoring attack).
	mod := bytes.Replace(b, []byte("0"), []byte("1"), 1)
	if bytes.Equal(mod, b) {
		mod = bytes.Replace(b, []byte("1"), []byte("2"), 1)
	}
	if err := os.WriteFile(head, mod, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK() {
		t.Fatal("tampered HEAD went undetected")
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted tampered HEAD")
	}
}

func TestWalkStreamsEverything(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{})
	appendN(t, a, 0, 5)
	a.Seal()
	appendN(t, a, 5, 2)
	a.Close()
	var got []Record
	var sealedN int
	err := Walk(dir, func(r Record, sealed bool) error {
		if sealed {
			sealedN++
		}
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if len(got) != 7 || sealedN != 5 {
		t.Fatalf("Walk: %d records (%d sealed)", len(got), sealedN)
	}
	for i, r := range got {
		if want := rec(i); !reflect.DeepEqual(r, want) {
			t.Fatalf("walk record %d: got %+v want %+v", i, r, want)
		}
	}
}

func TestOpenRejectsSequenceGap(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{})
	for s := 0; s < 3; s++ {
		appendN(t, a, s*2, 2)
		a.Seal()
	}
	a.Close()
	if err := os.Remove(filepath.Join(dir, "seg-00000002")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a segment sequence gap")
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK() {
		t.Fatal("sequence gap went undetected by Verify")
	}
}
