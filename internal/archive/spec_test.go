package archive

import "testing"

// TestParseSpec pins the CLI archive-spec grammar.
func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		dir  string
		opt  Options
		ok   bool
	}{
		{"data/arch", "data/arch", Options{}, true},
		{"data/arch:seal=1024", "data/arch", Options{SealBytes: 1024}, true},
		{"data/arch:seal=64k", "data/arch", Options{SealBytes: 64 << 10}, true},
		{"data/arch:seal=2M,sync", "data/arch", Options{SealBytes: 2 << 20, Sync: true}, true},
		{"data/arch:sync", "data/arch", Options{Sync: true}, true},
		{"", "", Options{}, false},
		{":sync", "", Options{}, false},
		{"d:seal=0", "", Options{}, false},
		{"d:seal=-5", "", Options{}, false},
		{"d:seal=abc", "", Options{}, false},
		{"d:frob", "", Options{}, false},
	}
	for _, c := range cases {
		dir, opt, err := ParseSpec(c.spec)
		if (err == nil) != c.ok {
			t.Errorf("ParseSpec(%q) err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if dir != c.dir || opt.SealBytes != c.opt.SealBytes || opt.Sync != c.opt.Sync {
			t.Errorf("ParseSpec(%q) = %q, %+v; want %q, %+v", c.spec, dir, opt, c.dir, c.opt)
		}
	}
}
