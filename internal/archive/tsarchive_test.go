package archive

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	pathload "repro"
	"repro/internal/tsstore"
)

// sample fabricates a deterministic monitor sample for path/round.
func sample(path string, round int) pathload.Sample {
	s := pathload.Sample{
		Path:  path,
		Round: round,
		At:    time.Duration(round) * 100 * time.Millisecond,
		Wall:  time.Unix(int64(round), 0), // must NOT survive the archive
	}
	if round%7 == 3 {
		s.Err = errors.New("stream loss")
		s.Result = pathload.Result{Elapsed: 40 * time.Millisecond, Bits: 5e5}
		return s
	}
	s.Result = pathload.Result{
		Lo:      40e6 + float64(round)*1e5,
		Hi:      48e6 + float64(round)*1e5,
		Elapsed: 60 * time.Millisecond,
		Bits:    1e6,
	}
	return s
}

// feed pushes rounds [from, to) for each path into st, plus one link
// window per round.
func feed(st *tsstore.Store, paths []string, from, to int) {
	for r := from; r < to; r++ {
		for _, p := range paths {
			st.Observe(sample(p, r))
		}
		st.ObserveLink("core-link", r, time.Duration(r)*100*time.Millisecond, 100*time.Millisecond, 0.5, 100e6)
	}
}

// prom renders the store's Prometheus exposition — the deterministic
// whole-store view used to compare recovered and control stores.
func prom(t *testing.T, st *tsstore.Store) string {
	t.Helper()
	var b bytes.Buffer
	if err := st.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// openStoreT wraps OpenStore with a scripted clock.
func openStoreT(t *testing.T, dir string, opt Options, cfg tsstore.Config) (*tsstore.Store, *StoreBackend, StoreReport) {
	t.Helper()
	if opt.NowUnix == nil {
		clock := int64(2000)
		opt.NowUnix = func() int64 { clock++; return clock }
	}
	st, be, rep, err := OpenStore(dir, opt, cfg)
	if err != nil {
		t.Fatalf("OpenStore(%s): %v", dir, err)
	}
	return st, be, rep
}

var testPaths = []string{"path-00", "path-01"}

// TestOpenStoreRoundtrip pins the core recovery contract: a store
// rebuilt from its archive renders byte-identically to a control store
// fed the same samples live (minus Wall, which the archive
// deliberately does not persist).
func TestOpenStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, be, rep := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 64})
	if rep.Segments != 0 || rep.TailRecords != 0 {
		t.Fatalf("fresh archive report: %+v", rep)
	}
	feed(st, testPaths, 0, 10)
	if err := be.Archive().Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	feed(st, testPaths, 10, 15) // tail records past the checkpoint
	if n, err := st.BackendErrs(); n != 0 {
		t.Fatalf("backend errors: %d %v", n, err)
	}
	want := prom(t, st)
	wantSnap := st.Snapshot("path-00")
	be.Close()

	// Control: the same samples into a plain in-memory store, but with
	// Wall zeroed — the archive's deliberate dropped field.
	control := tsstore.New(tsstore.Config{Capacity: 64})
	feed(control, testPaths, 0, 15)
	if got := prom(t, control); got != want {
		t.Fatalf("control store renders differently from original:\n%s\nvs\n%s", got, want)
	}

	re, be2, rep2 := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 64})
	defer be2.Close()
	if rep2.SealedRecords != 10*len(testPaths)+10 || rep2.TailRecords != 5*len(testPaths)+5 {
		t.Fatalf("recovery report: %+v", rep2)
	}
	if rep2.CheckpointCorrupt {
		t.Fatalf("checkpoint misreported corrupt: %+v", rep2)
	}
	if got := prom(t, re); got != want {
		t.Fatalf("recovered store renders differently:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	gotSnap := re.Snapshot("path-00")
	for i := range wantSnap {
		w := wantSnap[i]
		w.Wall = time.Time{} // the one field recovery must NOT invent
		if !reflect.DeepEqual(gotSnap[i], w) {
			t.Fatalf("point %d: got %+v want %+v", i, gotSnap[i], w)
		}
	}
	// Digest state survives exactly: same quantiles.
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if g, w := re.Quantile("path-01", q), st.Quantile("path-01", q); g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("quantile %.1f: got %g want %g", q, g, w)
		}
	}
	// Link series survive.
	if got := re.LinkTotal("core-link"); got != 15 {
		t.Fatalf("link total = %d, want 15", got)
	}
	if !reflect.DeepEqual(re.LinkSnapshot("core-link"), st.LinkSnapshot("core-link")) {
		t.Fatal("link snapshot differs after recovery")
	}
	// Resume state: the next round continues, not rewinds.
	if round, at := tsstore.Resume(re, "path-00"); round != 15 || at <= 0 {
		t.Fatalf("Resume = (%d, %v), want round 15", round, at)
	}
}

// TestOpenStoreRingEviction pins that recovery honors ring capacity:
// totals and digests cover all records, the ring only the newest.
func TestOpenStoreRingEviction(t *testing.T) {
	dir := t.TempDir()
	st, be, _ := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 8})
	feed(st, testPaths[:1], 0, 20)
	be.Close()
	re, be2, _ := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 8})
	defer be2.Close()
	if got := re.Len("path-00"); got != 8 {
		t.Fatalf("ring length = %d, want 8", got)
	}
	total, errs := re.Totals("path-00")
	if total != 20 || errs != 3 { // rounds 3, 10, 17 fail (round%7==3)
		t.Fatalf("totals = (%d, %d), want (20, 3)", total, errs)
	}
	last, _ := re.Last("path-00")
	if last.Round != 19 {
		t.Fatalf("last round = %d, want 19", last.Round)
	}
}

// TestOpenStoreAfterCompact pins the checkpoint's reason to exist:
// dropping old segments must not lose all-time counters or digest
// mass, only the evicted raw points.
func TestOpenStoreAfterCompact(t *testing.T) {
	dir := t.TempDir()
	st, be, _ := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 256})
	for s := 0; s < 4; s++ {
		feed(st, testPaths[:1], s*5, (s+1)*5)
		if err := be.Archive().Seal(); err != nil {
			t.Fatalf("Seal: %v", err)
		}
	}
	wantTotal, wantErrs := st.Totals("path-00")
	wantMedian := st.Quantile("path-00", 0.5)
	if _, err := be.Archive().Compact(1, 0); err != nil { // keep newest only
		t.Fatalf("Compact: %v", err)
	}
	if got := len(be.Archive().Segments()); got != 1 {
		t.Fatalf("segments after compact: %d", got)
	}
	be.Close()

	re, be2, rep := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 256})
	defer be2.Close()
	total, errs := re.Totals("path-00")
	if total != wantTotal || errs != wantErrs {
		t.Fatalf("post-compact totals = (%d, %d), want (%d, %d)", total, errs, wantTotal, wantErrs)
	}
	if got := re.Quantile("path-00", 0.5); got != wantMedian {
		t.Fatalf("post-compact median = %g, want %g", got, wantMedian)
	}
	// Only the newest segment's raw points are retained.
	if got := re.Len("path-00"); got != 5 {
		t.Fatalf("retained points = %d, want 5 (newest segment only)", got)
	}
	if rep.SealedRecords != 5+20 { // 5 points + 20 link windows in seg 4
		t.Logf("sealed records replayed: %d", rep.SealedRecords)
	}
}

// TestOpenStoreCorruptCheckpoint: a checkpoint that fails to decode is
// reported, and recovery falls back to counted replay of the retained
// records — exact here because nothing was compacted.
func TestOpenStoreCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Build an archive whose checkpoints are garbage (a buggy or
	// foreign producer), with otherwise valid records.
	clock := int64(3000)
	a, _, err := Open(dir, Options{
		NowUnix:    func() int64 { clock++; return clock },
		Checkpoint: func() []byte { return []byte("not a checkpoint") },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	be := &StoreBackend{a: a, digestSize: tsstore.DefaultDigestSize, paths: map[string]*shadowSeries{}, links: map[string]uint64{}}
	st := tsstore.NewWithBackend(tsstore.Config{Capacity: 32}, be)
	feed(st, testPaths[:1], 0, 6)
	if err := a.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	feed(st, testPaths[:1], 6, 8)
	wantTotal, wantErrs := st.Totals("path-00")
	be.Close()

	re, be2, rep := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 32})
	defer be2.Close()
	if !rep.CheckpointCorrupt {
		t.Fatalf("corrupt checkpoint not reported: %+v", rep)
	}
	total, errs := re.Totals("path-00")
	if total != wantTotal || errs != wantErrs {
		t.Fatalf("fallback totals = (%d, %d), want (%d, %d)", total, errs, wantTotal, wantErrs)
	}
	if round, _ := tsstore.Resume(re, "path-00"); round != 8 {
		t.Fatalf("resume round = %d, want 8", round)
	}
}

// TestStoreBackendAutoSealCheckpointConsistency hammers the
// auto-sealing archive from concurrent observers and then proves every
// segment's checkpoint exactly summarizes its sealed records — the
// shadow-state property that makes recovery double-count-free.
func TestStoreBackendAutoSealCheckpointConsistency(t *testing.T) {
	dir := t.TempDir()
	st, be, _ := openStoreT(t, dir, Options{SealBytes: 1 << 10}, tsstore.Config{Capacity: 512})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for r := 0; r < 50; r++ {
				st.Observe(sample(fmt.Sprintf("path-%02d", w), r))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	want := prom(t, st)
	if n, err := st.BackendErrs(); n != 0 {
		t.Fatalf("backend errors: %d %v", n, err)
	}
	if len(be.Archive().Segments()) < 2 {
		t.Fatalf("auto-seal produced %d segments", len(be.Archive().Segments()))
	}
	be.Close()
	re, be2, _ := openStoreT(t, dir, Options{}, tsstore.Config{Capacity: 512})
	defer be2.Close()
	if got := prom(t, re); got != want {
		t.Fatalf("concurrent-ingest recovery diverged:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPointCodecRejectsDamage: decoders fail loudly on short or
// padded payloads instead of inventing fields.
func TestPointCodecRoundtripAndDamage(t *testing.T) {
	p := tsstore.Point{Round: 42, At: time.Second, Span: 60 * time.Millisecond, Lo: 39.5e6, Hi: 44e6, Bits: 1.25e6, Err: "loss"}
	b := encodePoint(p)
	got, err := decodePoint(b)
	if err != nil {
		t.Fatalf("decodePoint: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("roundtrip: got %+v want %+v", got, p)
	}
	if _, err := decodePoint(b[:len(b)-1]); err == nil {
		t.Fatal("short point accepted")
	}
	if _, err := decodePoint(append(b, 0)); err == nil {
		t.Fatal("padded point accepted")
	}
	lp := tsstore.LinkPoint{Round: 3, At: time.Second, Span: time.Second, Util: 0.7, Capacity: 1e8}
	lb := encodeLink(lp)
	gotL, err := decodeLink(lb)
	if err != nil || !reflect.DeepEqual(gotL, lp) {
		t.Fatalf("link roundtrip: %+v %v", gotL, err)
	}
	if _, err := decodeLink(lb[:8]); err == nil {
		t.Fatal("short link accepted")
	}
}
