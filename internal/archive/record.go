package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// A Record is one appended archive entry: an opaque payload under a
// small routing header. The archive core does not interpret Kind, Key,
// or Data — the tsstore adapter (KindPoint, KindLink) and the
// coordinator's persistence log define their own kinds over the same
// framing, so one directory can hold a mixed durability stream.
type Record struct {
	// Kind routes the record to its decoder. Kinds 0x01–0x1f are
	// reserved for the tsstore adapter, 0x20–0x2f for the coordinator.
	Kind uint8
	// Key scopes the record (a path, link, or agent name); at most
	// MaxKey bytes.
	Key string
	// Data is the payload; at most MaxData bytes.
	Data []byte
}

const (
	// recMagic opens every record frame; a scan landing on anything
	// else is off the rails and stops.
	recMagic = 0xA5
	// recOverhead is the framing cost per record: magic, kind, key
	// length (u16), data length (u32), trailing CRC-32 (u32).
	recOverhead = 1 + 1 + 2 + 4 + 4
	// MaxKey bounds Record.Key (the u16 length field's range).
	MaxKey = 1<<16 - 1
	// MaxData bounds Record.Data. The bound exists so a corrupt length
	// field reads as corruption, not as a 4 GiB allocation.
	MaxData = 4 << 20
)

// errShortRecord means the buffer ends mid-record: a torn tail, the
// expected artifact of a crash during append.
var errShortRecord = errors.New("archive: truncated record")

// errCorruptRecord means the bytes at the cursor are not a valid
// record: bad magic, an impossible length, or a CRC mismatch.
var errCorruptRecord = errors.New("archive: corrupt record")

// appendRecord appends r's frame to buf:
//
//	magic u8 | kind u8 | keyLen u16 | dataLen u32 | key | data | crc u32
//
// (big-endian lengths; the CRC-32 (IEEE) covers everything before it).
func appendRecord(buf []byte, r Record) ([]byte, error) {
	if len(r.Key) > MaxKey {
		return buf, fmt.Errorf("archive: record key %d bytes exceeds %d", len(r.Key), MaxKey)
	}
	if len(r.Data) > MaxData {
		return buf, fmt.Errorf("archive: record data %d bytes exceeds %d", len(r.Data), MaxData)
	}
	start := len(buf)
	buf = append(buf, recMagic, r.Kind)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Key)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Data)))
	buf = append(buf, r.Key...)
	buf = append(buf, r.Data...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	return buf, nil
}

// readRecord decodes the record at the head of b, returning it and the
// number of bytes consumed. errShortRecord means b ends mid-record;
// errCorruptRecord means the bytes are not a record at all.
func readRecord(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, errShortRecord
	}
	if b[0] != recMagic {
		return Record{}, 0, errCorruptRecord
	}
	keyLen := int(binary.BigEndian.Uint16(b[2:4]))
	dataLen := int(binary.BigEndian.Uint32(b[4:8]))
	if dataLen > MaxData {
		return Record{}, 0, errCorruptRecord
	}
	total := 8 + keyLen + dataLen + 4
	if len(b) < total {
		return Record{}, 0, errShortRecord
	}
	sum := binary.BigEndian.Uint32(b[total-4 : total])
	if crc32.ChecksumIEEE(b[:total-4]) != sum {
		return Record{}, 0, errCorruptRecord
	}
	r := Record{
		Kind: b[1],
		Key:  string(b[8 : 8+keyLen]),
		Data: append([]byte(nil), b[8+keyLen:total-4]...),
	}
	return r, total, nil
}

// scanRecords walks every whole record in b, calling fn for each. It
// returns the byte offset of the first defect (== len(b) on a clean
// scan), the number of records delivered, and the defect itself —
// errShortRecord for a torn tail, errCorruptRecord for garbage, or an
// error from fn (which stops the scan without consuming the record).
func scanRecords(b []byte, fn func(Record) error) (consumed, n int, err error) {
	off := 0
	for off < len(b) {
		rec, sz, err := readRecord(b[off:])
		if err != nil {
			return off, n, err
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, n, err
			}
		}
		off += sz
		n++
	}
	return off, n, nil
}
