package archive

import (
	"testing"
	"time"

	pathload "repro"
	"repro/internal/tsstore"
)

// rampProber is an analytic prober: streams above avail ramp, streams
// below arrive flat (the agent_test stubProber pattern).
type rampProber struct{ avail float64 }

func (f *rampProber) SendStream(spec pathload.StreamSpec) (pathload.StreamResult, error) {
	res := pathload.StreamResult{Sent: spec.K}
	for i := 0; i < spec.K; i++ {
		owd := 5 * time.Millisecond
		if spec.EffectiveRate() > f.avail {
			owd += time.Duration(i) * 100 * time.Microsecond
		}
		res.OWDs = append(res.OWDs, pathload.OWDSample{Seq: i, OWD: owd})
	}
	return res, nil
}
func (f *rampProber) Idle(time.Duration) error { return nil }
func (f *rampProber) RTT() time.Duration       { return time.Millisecond }

// runFleet runs one monitor incarnation over the archived store:
// every path measured `rounds` times, then a hard stop with NO
// archive Close — the files must carry the state, as after a kill.
func runFleet(t *testing.T, st *tsstore.Store, paths []string, rounds int) {
	t.Helper()
	mon, err := pathload.NewMonitor(pathload.MonitorConfig{
		Rounds:   rounds,
		Interval: time.Millisecond,
		Store:    st,
		Resume: func(path string) pathload.PathState {
			r, at := tsstore.Resume(st, path)
			return pathload.PathState{Round: r, At: at}
		},
		Config: pathload.Config{
			PacketsPerStream: 8,
			StreamsPerFleet:  3,
			DisableInitProbe: true,
		},
	})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	for i, p := range paths {
		if err := mon.AddPath(p, &rampProber{avail: 5e6 * float64(i+1)}); err != nil {
			t.Fatalf("AddPath(%s): %v", p, err)
		}
	}
	if err := mon.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for range mon.Results() {
	}
}

// TestMonitorRestartRecovery is the restart-recovery acceptance test:
// a monitor writes through to an archive, dies mid-fleet (no Close, no
// Seal — the WAL tail alone carries the newest rounds), restarts over
// the recovered store, and every path's series continues with strictly
// increasing rounds and a monotone path-local clock. No rewind to
// round 0, no duplicated rounds, no invented points. CI runs this
// under -race -count=2.
func TestMonitorRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	paths := []string{"path-00", "path-01", "path-02"}
	const perRun = 4

	// Incarnation 1: fresh archive, 4 rounds per path, killed (the
	// archive is abandoned mid-flight, like a SIGKILL after the last
	// WAL write hit the page cache).
	st1, be1, rep1 := openStoreT(t, dir, Options{}, tsstore.Config{})
	if rep1.Segments != 0 {
		t.Fatalf("fresh dir has segments: %+v", rep1)
	}
	runFleet(t, st1, paths, perRun)
	for _, p := range paths {
		if last, ok := st1.Last(p); !ok || last.Round != perRun-1 {
			t.Fatalf("incarnation 1: %s last round %v %v", p, last.Round, ok)
		}
	}
	_ = be1 // deliberately not closed: simulated kill

	// Incarnation 2: recover, run 4 more rounds, verify continuity,
	// then seal so incarnation 3 exercises the checkpoint path too.
	st2, be2, rep2 := openStoreT(t, dir, Options{}, tsstore.Config{})
	if rep2.TailRecords != perRun*len(paths) {
		t.Fatalf("incarnation 2 report: %+v", rep2)
	}
	runFleet(t, st2, paths, perRun)
	if err := be2.Archive().Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	_ = be2 // killed again

	// Incarnation 3: checkpoint + empty tail recovery, final rounds.
	st3, be3, rep3 := openStoreT(t, dir, Options{}, tsstore.Config{})
	defer be3.Close()
	if rep3.Segments != 1 || rep3.CheckpointCorrupt {
		t.Fatalf("incarnation 3 report: %+v", rep3)
	}
	runFleet(t, st3, paths, perRun)

	for _, p := range paths {
		pts := st3.Snapshot(p)
		if len(pts) != 3*perRun {
			t.Fatalf("%s: %d points, want %d", p, len(pts), 3*perRun)
		}
		for i, pt := range pts {
			if pt.Round != i {
				t.Fatalf("%s: point %d has round %d — series rewound or skipped", p, i, pt.Round)
			}
			if i > 0 && pt.At <= pts[i-1].At {
				t.Fatalf("%s: path clock not monotone at round %d: %v then %v", p, i, pts[i-1].At, pt.At)
			}
		}
		total, _ := st3.Totals(p)
		if total != uint64(3*perRun) {
			t.Fatalf("%s: total %d, want %d", p, total, 3*perRun)
		}
	}
	// And the archive the three incarnations left behind verifies.
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("post-restart archive fails verify: %v", rep.Problems)
	}
}

// TestMonitorResumeHookValidation: a Resume hook returning negative
// state must fail Start, not corrupt a session.
func TestMonitorResumeHookValidation(t *testing.T) {
	mon, err := pathload.NewMonitor(pathload.MonitorConfig{
		Rounds: 1,
		Resume: func(string) pathload.PathState { return pathload.PathState{Round: -1} },
		Config: pathload.Config{PacketsPerStream: 8, StreamsPerFleet: 3, DisableInitProbe: true},
	})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if err := mon.AddPath("p", &rampProber{avail: 5e6}); err != nil {
		t.Fatalf("AddPath: %v", err)
	}
	if err := mon.Start(); err == nil {
		t.Fatal("Start accepted a negative Resume state")
	}
}
