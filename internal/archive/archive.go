// Package archive is the durable tier behind tsstore: an append-only
// write-ahead log of Records, periodically sealed into immutable,
// hash-chained segment files with a cumulative checkpoint per segment.
// It is what makes a monitored fleet's history survive the process —
// and trustworthy after it: every sealed segment's header commits to
// the SHA-256 of its predecessor's whole file, a HEAD file anchors the
// newest hash, and a cheap chain walk (Verify) detects any flipped
// byte in sealed history. The shape follows the off-chain-data /
// on-chain-hash split of audit-log systems: bulk records live in
// ordinary files; integrity lives in one 32-byte chain head.
//
// Layout of an archive directory:
//
//	wal.log        walMagic u32 | version u16 | afterSeg u64 | records…
//	seg-NNNNNNNN   segMagic u32 | version u16 | index u64 | prevHash 32B |
//	               sealedUnix i64 | recordCount u32 | ckptLen u32 |
//	               checkpoint | records…
//	HEAD           "plarchive v1\n<index> <sha256 hex>\n"
//
// The WAL header's afterSeg names the newest segment the WAL follows;
// it is what makes crash windows around sealing unambiguous. Sealing
// writes the new segment, swaps in a fresh WAL, then rewrites HEAD —
// each step an atomic temp+rename — so a crash leaves exactly one of
// three states, and Open heals or reports each explicitly: a WAL whose
// afterSeg trails the newest segment is stale (its records were
// sealed) and is discarded with a report; a HEAD trailing the newest
// segment by one is healed after the chain link checks out; a torn WAL
// tail is truncated at the last whole record with the dropped bytes
// reported. Recovery is exact or explicit, never silent invention.
//
// The checkpoint blob carried by each segment is produced by the owner
// (Options/SetHooks Checkpoint) at seal time and must summarize every
// record up to and including that segment — it is what lets replay
// skip re-counting sealed records and what lets Compact drop old
// segments without losing all-time counters.
package archive

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	walMagic = 0x504c5741 // "PLWA"
	segMagic = 0x504c5347 // "PLSG"
	// Version is the on-disk format version of WAL and segment files.
	Version = 1

	walName    = "wal.log"
	headName   = "HEAD"
	segPrefix  = "seg-"
	walHdrLen  = 4 + 2 + 8
	segHdrLen  = 4 + 2 + 8 + sha256.Size + 8 + 4 + 4
	headPrefix = "plarchive v1\n"
)

// Options tunes an Archive.
type Options struct {
	// SealBytes seals the WAL into a segment once it holds at least
	// this many record bytes. 0 disables automatic sealing — segments
	// then appear only on explicit Seal calls.
	SealBytes int64
	// Sync fsyncs the WAL after every append. Off, durability of the
	// tail is bounded by the OS flush interval; sealed segments are
	// always synced before rename.
	Sync bool
	// NowUnix supplies segment seal timestamps; nil selects wall time.
	// Injectable so test fixtures are byte-reproducible.
	NowUnix func() int64
	// Checkpoint, when non-nil, is called at seal time (under the
	// archive lock, after the sealed records are fixed) and must return
	// a blob summarizing every record appended so far. SetHooks can
	// install it after Open for owners that need the recovered state
	// first.
	Checkpoint func() []byte
	// OnAppend, when non-nil, observes every appended record under the
	// archive lock, in append order — the hook a checkpoint producer
	// uses to keep its summary exactly in step with the WAL.
	OnAppend func(Record)
}

// An OpenReport says what Open found and what it had to do about it.
// Everything here is normal crash fallout, already healed — tampering
// and unhealable states make Open fail instead.
type OpenReport struct {
	// Segments and TailRecords describe the recovered state: sealed
	// segments on disk and live records in the WAL.
	Segments    int
	TailRecords int
	// DroppedTailBytes were truncated off the WAL because its last
	// record was torn or corrupt — the write the crash interrupted.
	DroppedTailBytes int64
	// StaleWALRecords were discarded because the WAL predates the
	// newest segment: the crash hit between segment rename and WAL
	// swap, so every one of them is already sealed.
	StaleWALRecords int
	// HealedHead is set when HEAD trailed the newest segment (crash
	// between WAL swap and HEAD rewrite) and was rewritten forward.
	HealedHead bool
}

// String renders the report for operator logs.
func (r OpenReport) String() string {
	s := fmt.Sprintf("%d segments, %d tail records", r.Segments, r.TailRecords)
	if r.DroppedTailBytes > 0 {
		s += fmt.Sprintf(", dropped %dB torn tail", r.DroppedTailBytes)
	}
	if r.StaleWALRecords > 0 {
		s += fmt.Sprintf(", discarded %d already-sealed WAL records", r.StaleWALRecords)
	}
	if r.HealedHead {
		s += ", healed HEAD"
	}
	return s
}

// SegmentInfo describes one sealed segment.
type SegmentInfo struct {
	Index      uint64
	Records    int
	Bytes      int64
	SealedUnix int64
	Hash       [sha256.Size]byte
	PrevHash   [sha256.Size]byte
}

// An Archive is an open archive directory. All methods are safe for
// concurrent use.
type Archive struct {
	dir string
	opt Options

	mu       sync.Mutex
	wal      *os.File
	walBytes int64 // record bytes in the WAL, excluding the header
	walRecs  int
	segs     []SegmentInfo // sorted by Index
	ckpt     []byte        // newest sealed segment's checkpoint blob
	closed   bool

	// failpoint, when set (tests only), is consulted between the
	// atomic steps of sealLocked to simulate a crash at that boundary.
	failpoint func(stage string) error
}

// Open opens (creating if needed) the archive directory, healing the
// crash windows described in the package comment. It fails loudly on
// anything heal rules cannot explain — a broken chain link, a HEAD
// that contradicts the newest segment, a gap in the segment sequence —
// because those are tampering or operator damage, not crash fallout.
func Open(dir string, opt Options) (*Archive, OpenReport, error) {
	var rep OpenReport
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rep, err
	}
	a := &Archive{dir: dir, opt: opt}
	if err := a.loadSegments(); err != nil {
		return nil, rep, err
	}
	if err := a.checkHead(&rep); err != nil {
		return nil, rep, err
	}
	if len(a.segs) > 0 {
		last := a.segs[len(a.segs)-1]
		blob, _, err := readSegment(a.segPath(last.Index), last.Index)
		if err != nil {
			return nil, rep, err
		}
		a.ckpt = blob
	}
	if err := a.openWAL(&rep); err != nil {
		return nil, rep, err
	}
	rep.Segments = len(a.segs)
	rep.TailRecords = a.walRecs
	return a, rep, nil
}

// Dir returns the archive directory.
func (a *Archive) Dir() string { return a.dir }

// SetHooks installs the checkpoint producer and append observer after
// Open (overriding any set via Options). Call before concurrent use.
func (a *Archive) SetHooks(onAppend func(Record), checkpoint func() []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.opt.OnAppend = onAppend
	a.opt.Checkpoint = checkpoint
}

// Segments returns the sealed segments, oldest first.
func (a *Archive) Segments() []SegmentInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]SegmentInfo(nil), a.segs...)
}

// TailRecords returns the number of live records in the WAL.
func (a *Archive) TailRecords() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.walRecs
}

// Checkpoint returns the newest sealed segment's checkpoint blob (nil
// when no segment exists or the owner seals without checkpoints).
func (a *Archive) Checkpoint() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.ckpt...)
}

// Append writes rec to the WAL, invokes the OnAppend hook, and seals
// automatically when the WAL crosses Options.SealBytes.
func (a *Archive) Append(rec Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errors.New("archive: appending to closed archive")
	}
	buf, err := appendRecord(nil, rec)
	if err != nil {
		return err
	}
	if _, err := a.wal.Write(buf); err != nil {
		return fmt.Errorf("archive: wal append: %w", err)
	}
	if a.opt.Sync {
		if err := a.wal.Sync(); err != nil {
			return fmt.Errorf("archive: wal sync: %w", err)
		}
	}
	a.walBytes += int64(len(buf))
	a.walRecs++
	if a.opt.OnAppend != nil {
		a.opt.OnAppend(rec)
	}
	if a.opt.SealBytes > 0 && a.walBytes >= a.opt.SealBytes {
		return a.sealLocked()
	}
	return nil
}

// Seal seals the current WAL records into a new segment (a no-op on an
// empty WAL).
func (a *Archive) Seal() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errors.New("archive: sealing closed archive")
	}
	return a.sealLocked()
}

// Close syncs and closes the WAL. It does not seal: the tail is
// already durable and will be recovered (and eventually sealed) by the
// next Open.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		if a.wal != nil {
			a.wal.Close()
			a.wal = nil
		}
		return nil
	}
	a.closed = true
	if err := a.wal.Sync(); err != nil {
		a.wal.Close()
		return err
	}
	return a.wal.Close()
}

// Compact removes the oldest sealed segments until the retained sealed
// bytes fit maxBytes (0 = unlimited) and the oldest is younger than
// maxAge (0 = unlimited). The newest segment is never removed — its
// checkpoint carries the cumulative counters everything after depends
// on. It returns the removed segment indexes. The chain stays
// verifiable: each surviving segment still commits to its predecessor,
// the oldest survivor's back-pointer simply points outside retention.
func (a *Archive) Compact(maxBytes int64, maxAge time.Duration) ([]uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	var removed []uint64
	for len(a.segs) > 1 {
		over := false
		if maxBytes > 0 {
			var total int64
			for _, s := range a.segs {
				total += s.Bytes
			}
			over = over || total > maxBytes
		}
		if maxAge > 0 {
			over = over || now-a.segs[0].SealedUnix > int64(maxAge/time.Second)
		}
		if !over {
			break
		}
		victim := a.segs[0]
		if err := os.Remove(a.segPath(victim.Index)); err != nil {
			return removed, err
		}
		a.segs = a.segs[1:]
		removed = append(removed, victim.Index)
	}
	return removed, nil
}

// ReplaySealed streams every record retained in sealed segments,
// oldest segment first, records in append order. These are exactly the
// records the newest checkpoint summarizes.
func (a *Archive) ReplaySealed(fn func(Record) error) error {
	for _, s := range a.Segments() {
		_, recs, err := readSegment(a.segPath(s.Index), s.Index)
		if err != nil {
			return err
		}
		if _, _, err := scanRecords(recs, fn); err != nil {
			return fmt.Errorf("archive: segment %d: %w", s.Index, err)
		}
	}
	return nil
}

// ReplayTail streams the live WAL records, in append order — the
// records no checkpoint covers yet.
func (a *Archive) ReplayTail(fn func(Record) error) error {
	a.mu.Lock()
	path := filepath.Join(a.dir, walName)
	a.mu.Unlock()
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) < walHdrLen {
		return errors.New("archive: wal truncated below header")
	}
	if _, _, err := scanRecords(b[walHdrLen:], fn); err != nil {
		return fmt.Errorf("archive: wal: %w", err)
	}
	return nil
}

func (a *Archive) now() int64 {
	if a.opt.NowUnix != nil {
		return a.opt.NowUnix()
	}
	return time.Now().Unix()
}

func (a *Archive) segPath(index uint64) string {
	return filepath.Join(a.dir, fmt.Sprintf("%s%08d", segPrefix, index))
}

// sealLocked is the three-step seal: segment rename, WAL swap, HEAD
// rewrite — each atomic, each a legal crash boundary.
func (a *Archive) sealLocked() error {
	if a.walRecs == 0 {
		return nil
	}
	walPath := filepath.Join(a.dir, walName)
	b, err := os.ReadFile(walPath)
	if err != nil {
		return err
	}
	if len(b) < walHdrLen {
		return errors.New("archive: wal truncated below header")
	}
	recs := b[walHdrLen:]
	if consumed, n, err := scanRecords(recs, nil); err != nil || n != a.walRecs {
		return fmt.Errorf("archive: wal readback: %d/%d records, %d/%d bytes, %v",
			n, a.walRecs, consumed, len(recs), err)
	}

	index := uint64(1)
	var prev [sha256.Size]byte
	if n := len(a.segs); n > 0 {
		index = a.segs[n-1].Index + 1
		prev = a.segs[n-1].Hash
	}
	var ckpt []byte
	if a.opt.Checkpoint != nil {
		ckpt = a.opt.Checkpoint()
	}
	hdr := make([]byte, 0, segHdrLen)
	hdr = binary.BigEndian.AppendUint32(hdr, segMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, Version)
	hdr = binary.BigEndian.AppendUint64(hdr, index)
	hdr = append(hdr, prev[:]...)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(a.now()))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(a.walRecs))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(ckpt)))
	file := append(hdr, ckpt...)
	file = append(file, recs...)
	if err := writeAtomic(a.segPath(index), file); err != nil {
		return err
	}
	info := SegmentInfo{
		Index:      index,
		Records:    a.walRecs,
		Bytes:      int64(len(file)),
		SealedUnix: int64(binary.BigEndian.Uint64(hdr[14+sha256.Size:])),
		Hash:       sha256.Sum256(file),
		PrevHash:   prev,
	}
	a.segs = append(a.segs, info)
	a.ckpt = ckpt
	if a.failpoint != nil {
		if err := a.failpoint("sealed-segment"); err != nil {
			a.closed = true
			return err
		}
	}
	if err := a.swapFreshWAL(index); err != nil {
		return err
	}
	if a.failpoint != nil {
		if err := a.failpoint("swapped-wal"); err != nil {
			a.closed = true
			return err
		}
	}
	return a.writeHead(info)
}

// swapFreshWAL atomically replaces the WAL with an empty one following
// segment index, and re-points the open handle at it.
func (a *Archive) swapFreshWAL(index uint64) error {
	hdr := make([]byte, 0, walHdrLen)
	hdr = binary.BigEndian.AppendUint32(hdr, walMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, Version)
	hdr = binary.BigEndian.AppendUint64(hdr, index)
	walPath := filepath.Join(a.dir, walName)
	if err := writeAtomic(walPath, hdr); err != nil {
		return err
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if a.wal != nil {
		a.wal.Close()
	}
	a.wal = f
	a.walBytes, a.walRecs = 0, 0
	return nil
}

func (a *Archive) writeHead(s SegmentInfo) error {
	body := fmt.Sprintf("%s%d %x\n", headPrefix, s.Index, s.Hash)
	return writeAtomic(filepath.Join(a.dir, headName), []byte(body))
}

// loadSegments discovers, header-checks, and hashes every segment
// file, verifying name/header agreement, sequence contiguity, and the
// hash chain.
func (a *Archive) loadSegments() error {
	ents, err := os.ReadDir(a.dir)
	if err != nil {
		return err
	}
	var idxs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || e.IsDir() {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(name, segPrefix), 10, 64)
		if err != nil {
			return fmt.Errorf("archive: unparseable segment name %q", name)
		}
		idxs = append(idxs, n)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for i, idx := range idxs {
		if i > 0 && idx != idxs[i-1]+1 {
			return fmt.Errorf("archive: segment sequence gap: %d then %d", idxs[i-1], idx)
		}
		info, err := statSegment(a.segPath(idx), idx)
		if err != nil {
			return err
		}
		if i > 0 && info.PrevHash != a.segs[len(a.segs)-1].Hash {
			return fmt.Errorf("archive: hash chain broken at segment %d", idx)
		}
		a.segs = append(a.segs, info)
	}
	return nil
}

// checkHead reconciles HEAD with the newest segment: exact match is
// healthy, trailing by one seal is healed, anything else is damage.
func (a *Archive) checkHead(rep *OpenReport) error {
	idx, hash, exists, err := readHead(a.dir)
	if err != nil {
		return err
	}
	if len(a.segs) == 0 {
		if exists {
			return fmt.Errorf("archive: HEAD names segment %d but no segments exist", idx)
		}
		return nil
	}
	newest := a.segs[len(a.segs)-1]
	switch {
	case exists && idx == newest.Index:
		if hash != newest.Hash {
			return fmt.Errorf("archive: HEAD hash mismatch for segment %d — sealed history was modified", idx)
		}
		return nil
	case exists && idx == newest.Index-1 && len(a.segs) >= 2:
		// Crash between WAL swap and HEAD rewrite. The chain link from
		// the HEAD-anchored segment to the newcomer was already checked
		// by loadSegments; re-check HEAD's own hash, then adopt.
		prev := a.segs[len(a.segs)-2]
		if hash != prev.Hash {
			return fmt.Errorf("archive: HEAD hash mismatch for segment %d — sealed history was modified", idx)
		}
	case !exists && len(a.segs) == 1:
		// Crash before the very first HEAD write.
	default:
		if !exists {
			return fmt.Errorf("archive: HEAD missing with %d segments", len(a.segs))
		}
		return fmt.Errorf("archive: HEAD names segment %d but newest is %d", idx, newest.Index)
	}
	if err := a.writeHead(newest); err != nil {
		return err
	}
	rep.HealedHead = true
	return nil
}

// openWAL opens or creates the WAL, discarding a stale one and
// truncating a torn tail, per the crash-window rules.
func (a *Archive) openWAL(rep *OpenReport) error {
	var newest uint64
	if n := len(a.segs); n > 0 {
		newest = a.segs[n-1].Index
	}
	walPath := filepath.Join(a.dir, walName)
	b, err := os.ReadFile(walPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return a.swapFreshWAL(newest)
	case err != nil:
		return err
	}
	if len(b) < walHdrLen {
		// The header is written atomically, so a short file means the
		// creating rename never happened — impossible — or external
		// truncation. Either way nothing in it is attributable.
		return fmt.Errorf("archive: wal is %d bytes, below its %d-byte header", len(b), walHdrLen)
	}
	if binary.BigEndian.Uint32(b[0:4]) != walMagic {
		return errors.New("archive: wal has wrong magic")
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != Version {
		return fmt.Errorf("archive: wal format version %d, want %d", v, Version)
	}
	after := binary.BigEndian.Uint64(b[6:walHdrLen])
	switch {
	case after == newest:
		// The live WAL. Truncate a torn tail, keep the valid prefix.
		consumed, n, err := scanRecords(b[walHdrLen:], nil)
		if err != nil && !errors.Is(err, errShortRecord) && !errors.Is(err, errCorruptRecord) {
			return err
		}
		good := walHdrLen + consumed
		if good < len(b) {
			if err := os.Truncate(walPath, int64(good)); err != nil {
				return err
			}
			rep.DroppedTailBytes = int64(len(b) - good)
		}
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		a.wal = f
		a.walBytes, a.walRecs = int64(consumed), n
		return nil
	case after == newest-1 && newest > 0:
		// Crash between segment rename and WAL swap: every record in
		// this WAL is already inside segment `newest`. Count for the
		// report, then discard.
		_, n, _ := scanRecords(b[walHdrLen:], nil)
		rep.StaleWALRecords = n
		return a.swapFreshWAL(newest)
	default:
		return fmt.Errorf("archive: wal follows segment %d but newest segment is %d", after, newest)
	}
}

// statSegment reads and validates one segment file's header and
// structure (not its chain position) and returns its info.
func statSegment(path string, wantIndex uint64) (SegmentInfo, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return SegmentInfo{}, err
	}
	info, _, _, err := parseSegment(b, wantIndex)
	if err != nil {
		return SegmentInfo{}, fmt.Errorf("archive: %s: %w", filepath.Base(path), err)
	}
	return info, nil
}

// readSegment returns a segment's checkpoint blob and raw record bytes.
func readSegment(path string, wantIndex uint64) (ckpt, recs []byte, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	_, ckpt, recs, err = parseSegment(b, wantIndex)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: %s: %w", filepath.Base(path), err)
	}
	return ckpt, recs, nil
}

// parseSegment validates a segment image: header sanity, index
// agreement, record-region integrity, and record count.
func parseSegment(b []byte, wantIndex uint64) (info SegmentInfo, ckpt, recs []byte, err error) {
	if len(b) < segHdrLen {
		return info, nil, nil, errors.New("truncated segment header")
	}
	if binary.BigEndian.Uint32(b[0:4]) != segMagic {
		return info, nil, nil, errors.New("wrong segment magic")
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != Version {
		return info, nil, nil, fmt.Errorf("segment format version %d, want %d", v, Version)
	}
	info.Index = binary.BigEndian.Uint64(b[6:14])
	if wantIndex != 0 && info.Index != wantIndex {
		return info, nil, nil, fmt.Errorf("segment header index %d disagrees with filename %d", info.Index, wantIndex)
	}
	copy(info.PrevHash[:], b[14:14+sha256.Size])
	off := 14 + sha256.Size
	info.SealedUnix = int64(binary.BigEndian.Uint64(b[off : off+8]))
	count := int(binary.BigEndian.Uint32(b[off+8 : off+12]))
	ckptLen := int(binary.BigEndian.Uint32(b[off+12 : off+16]))
	if segHdrLen+ckptLen > len(b) {
		return info, nil, nil, fmt.Errorf("checkpoint length %d overruns %d-byte segment", ckptLen, len(b))
	}
	ckpt = b[segHdrLen : segHdrLen+ckptLen]
	recs = b[segHdrLen+ckptLen:]
	if _, n, serr := scanRecords(recs, nil); serr != nil {
		return info, nil, nil, fmt.Errorf("record region: %w", serr)
	} else if n != count {
		return info, nil, nil, fmt.Errorf("header claims %d records, file holds %d", count, n)
	}
	info.Records = count
	info.Bytes = int64(len(b))
	info.Hash = sha256.Sum256(b)
	return info, ckpt, recs, nil
}

// readHead parses the HEAD file; exists is false when absent.
func readHead(dir string) (index uint64, hash [sha256.Size]byte, exists bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, headName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, hash, false, nil
	}
	if err != nil {
		return 0, hash, false, err
	}
	s, ok := strings.CutPrefix(string(b), headPrefix)
	if !ok {
		return 0, hash, false, errors.New("archive: malformed HEAD")
	}
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0, hash, false, errors.New("archive: malformed HEAD")
	}
	index, err = strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return 0, hash, false, errors.New("archive: malformed HEAD")
	}
	raw, err := hex.DecodeString(fields[1])
	if err != nil || len(raw) != sha256.Size {
		return 0, hash, false, errors.New("archive: malformed HEAD")
	}
	copy(hash[:], raw)
	return index, hash, true, nil
}

// writeAtomic writes data to path via temp file, fsync, and rename,
// then best-effort syncs the directory so the rename itself is
// durable.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
