package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/tsstore"
)

// Record kinds of the tsstore adapter.
const (
	// KindPoint is one per-path sample (tsstore.Point, Wall excluded).
	KindPoint uint8 = 0x01
	// KindLink is one per-link utilization window (tsstore.LinkPoint).
	KindLink uint8 = 0x02
)

const (
	ckptMagic   = 0x5453434b // "TSCK"
	ckptVersion = 1
)

// A StoreBackend adapts an Archive to tsstore.Backend: every sample
// and link window the store ingests becomes one WAL record. It also
// maintains the checkpoint shadow — per-path all-time totals, error
// counts, and mergeable digests, plus per-link window counts — updated
// record-by-record under the archive lock (the OnAppend hook), so the
// checkpoint sealed into a segment summarizes exactly the records that
// segment and its predecessors hold, regardless of what the live store
// ingested concurrently. Summarizing the live store instead would
// race: a sample landing between the seal boundary and the summary
// would be counted by the checkpoint *and* replayed from the next WAL.
//
// Wire up with OpenStore; the shadow state is seeded from the
// recovered store before hooks are installed.
type StoreBackend struct {
	a          *Archive
	digestSize int

	// The shadow maps are touched only under the archive lock (via the
	// OnAppend/Checkpoint hooks) after seeding.
	paths map[string]*shadowSeries
	links map[string]uint64
}

type shadowSeries struct {
	total, errs uint64
	digest      *tsstore.Digest
}

// AppendPoint implements tsstore.Backend.
func (t *StoreBackend) AppendPoint(path string, p tsstore.Point) error {
	return t.a.Append(Record{Kind: KindPoint, Key: path, Data: encodePoint(p)})
}

// AppendLink implements tsstore.Backend.
func (t *StoreBackend) AppendLink(link string, p tsstore.LinkPoint) error {
	return t.a.Append(Record{Kind: KindLink, Key: link, Data: encodeLink(p)})
}

// Close implements tsstore.Backend, closing the underlying archive.
func (t *StoreBackend) Close() error { return t.a.Close() }

// Archive returns the underlying archive (for Seal/Compact/Segments).
func (t *StoreBackend) Archive() *Archive { return t.a }

// onAppend keeps the shadow in step with the WAL; called under the
// archive lock for every appended record.
func (t *StoreBackend) onAppend(rec Record) {
	switch rec.Kind {
	case KindPoint:
		p, err := decodePoint(rec.Data)
		if err != nil {
			return
		}
		s := t.paths[rec.Key]
		if s == nil {
			s = &shadowSeries{digest: tsstore.NewDigest(t.digestSize)}
			t.paths[rec.Key] = s
		}
		s.total++
		if p.OK() {
			s.digest.Add(p.Mid())
		} else {
			s.errs++
		}
	case KindLink:
		t.links[rec.Key]++
	}
}

// checkpoint encodes the shadow; called under the archive lock at seal.
func (t *StoreBackend) checkpoint() []byte {
	b := binary.BigEndian.AppendUint32(nil, ckptMagic)
	b = binary.BigEndian.AppendUint16(b, ckptVersion)
	paths := make([]string, 0, len(t.paths))
	for p := range t.paths {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	b = binary.BigEndian.AppendUint32(b, uint32(len(paths)))
	for _, p := range paths {
		s := t.paths[p]
		b = appendCkptStr(b, p)
		b = binary.BigEndian.AppendUint64(b, s.total)
		b = binary.BigEndian.AppendUint64(b, s.errs)
		blob, _ := s.digest.MarshalBinary()
		b = binary.BigEndian.AppendUint32(b, uint32(len(blob)))
		b = append(b, blob...)
	}
	links := make([]string, 0, len(t.links))
	for l := range t.links {
		links = append(links, l)
	}
	sort.Strings(links)
	b = binary.BigEndian.AppendUint32(b, uint32(len(links)))
	for _, l := range links {
		b = appendCkptStr(b, l)
		b = binary.BigEndian.AppendUint64(b, t.links[l])
	}
	return b
}

// seedFrom primes the shadow from a just-recovered store, whose
// totals/digests equal the cumulative state over every record ever
// appended (checkpoint seed + tail replay). Must run before hooks are
// installed.
func (t *StoreBackend) seedFrom(st *tsstore.Store) {
	for _, p := range st.Paths() {
		total, errs := st.Totals(p)
		d := st.DigestSnapshot(p)
		if d == nil {
			d = tsstore.NewDigest(t.digestSize)
		}
		t.paths[p] = &shadowSeries{total: total, errs: errs, digest: d}
	}
	for _, l := range st.Links() {
		t.links[l] = st.LinkTotal(l)
	}
}

// A StoreReport extends OpenReport with what store recovery found.
type StoreReport struct {
	OpenReport
	// SealedRecords were replayed from sealed segments; the WAL tail
	// count is OpenReport.TailRecords.
	SealedRecords int
	// ForeignRecords carry kinds the tsstore adapter does not decode
	// (e.g. coordinator records sharing the directory); skipped.
	ForeignRecords int
	// CheckpointCorrupt means the newest segment's checkpoint failed
	// to decode. All-time counters and digests were rebuilt by counted
	// replay of the retained records instead — exact unless Compact
	// has dropped segments, in which case the pre-compaction history
	// is missing from the counters (explicitly, never silently).
	CheckpointCorrupt bool
}

// String renders the report for operator logs.
func (r StoreReport) String() string {
	s := r.OpenReport.String() + fmt.Sprintf(", %d sealed records", r.SealedRecords)
	if r.ForeignRecords > 0 {
		s += fmt.Sprintf(", %d foreign records skipped", r.ForeignRecords)
	}
	if r.CheckpointCorrupt {
		s += ", checkpoint corrupt (counters rebuilt from retained records)"
	}
	return s
}

// OpenStore opens the archive directory and rebuilds a tsstore.Store
// from it, wired so further ingest is teed back into the archive:
//
//  1. sealed records replay ring-only (their counter and digest
//     contribution comes from the newest checkpoint — replaying them
//     counted would double-count),
//  2. the newest checkpoint seeds each path's all-time totals, error
//     counts, and digest (and each link's window count),
//  3. the WAL tail — records no checkpoint covers — replays counted.
//
// With no (or a corrupt) checkpoint, everything replays counted and
// the report says so. The returned store serves reads from memory as
// always; Close it (or the backend) to release the archive.
func OpenStore(dir string, opt Options, cfg tsstore.Config) (*tsstore.Store, *StoreBackend, StoreReport, error) {
	a, orep, err := Open(dir, opt)
	rep := StoreReport{OpenReport: orep}
	if err != nil {
		return nil, nil, rep, err
	}
	size := cfg.DigestSize
	if size == 0 {
		size = tsstore.DefaultDigestSize
	}
	t := &StoreBackend{a: a, digestSize: size, paths: map[string]*shadowSeries{}, links: map[string]uint64{}}
	st := tsstore.NewWithBackend(cfg, t)

	ck, ckErr := decodeCheckpoint(a.Checkpoint())
	if ckErr != nil {
		rep.CheckpointCorrupt = true
	}
	counted := ck == nil
	replay := func(r Record, counted bool) error {
		switch r.Kind {
		case KindPoint:
			p, derr := decodePoint(r.Data)
			if derr != nil {
				return fmt.Errorf("archive: point record for %q: %w", r.Key, derr)
			}
			st.ReplayPoint(r.Key, p, counted)
		case KindLink:
			p, derr := decodeLink(r.Data)
			if derr != nil {
				return fmt.Errorf("archive: link record for %q: %w", r.Key, derr)
			}
			st.ReplayLink(r.Key, p, counted)
		default:
			rep.ForeignRecords++
		}
		return nil
	}
	if err := a.ReplaySealed(func(r Record) error { rep.SealedRecords++; return replay(r, counted) }); err != nil {
		a.Close()
		return nil, nil, rep, err
	}
	rep.SealedRecords -= rep.ForeignRecords
	if ck != nil {
		for _, p := range ck.pathOrder {
			s := ck.paths[p]
			st.SeedSeries(p, s.total, s.errs, s.digest)
		}
		for _, l := range ck.linkOrder {
			st.SeedLink(l, ck.links[l])
		}
	}
	if err := a.ReplayTail(func(r Record) error { return replay(r, true) }); err != nil {
		a.Close()
		return nil, nil, rep, err
	}
	t.seedFrom(st)
	a.SetHooks(t.onAppend, t.checkpoint)
	return st, t, rep, nil
}

// decodedCkpt is a parsed checkpoint blob.
type decodedCkpt struct {
	pathOrder []string
	paths     map[string]struct {
		total, errs uint64
		digest      *tsstore.Digest
	}
	linkOrder []string
	links     map[string]uint64
}

// decodeCheckpoint parses a checkpoint blob; (nil, nil) for an empty
// blob (no checkpoint sealed yet), an error for a corrupt one.
func decodeCheckpoint(b []byte) (*decodedCkpt, error) {
	if len(b) == 0 {
		return nil, nil
	}
	d := &rdr{b: b}
	if d.u32() != ckptMagic {
		return nil, errors.New("archive: checkpoint has wrong magic")
	}
	if v := d.u16(); v != ckptVersion && d.err == nil {
		return nil, fmt.Errorf("archive: checkpoint version %d, want %d", v, ckptVersion)
	}
	out := &decodedCkpt{
		paths: map[string]struct {
			total, errs uint64
			digest      *tsstore.Digest
		}{},
		links: map[string]uint64{},
	}
	nPaths := int(d.u32())
	for i := 0; i < nPaths && d.err == nil; i++ {
		key := d.str()
		total := d.u64()
		errs := d.u64()
		blob := d.bytes(int(d.u32()))
		if d.err != nil {
			break
		}
		dig, derr := tsstore.UnmarshalDigest(blob)
		if derr != nil {
			return nil, fmt.Errorf("archive: checkpoint digest for %q: %w", key, derr)
		}
		out.pathOrder = append(out.pathOrder, key)
		out.paths[key] = struct {
			total, errs uint64
			digest      *tsstore.Digest
		}{total, errs, dig}
	}
	nLinks := int(d.u32())
	for i := 0; i < nLinks && d.err == nil; i++ {
		key := d.str()
		total := d.u64()
		if d.err != nil {
			break
		}
		out.linkOrder = append(out.linkOrder, key)
		out.links[key] = total
	}
	if d.err != nil {
		return nil, fmt.Errorf("archive: checkpoint: %w", d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("archive: checkpoint has %d trailing bytes", len(d.b))
	}
	return out, nil
}

// encodePoint serializes a Point for the WAL. Wall is deliberately
// excluded, matching the coordinator wire protocol: archives must be
// byte-reproducible under the deterministic harness, and wall clocks
// are the one field that never is.
func encodePoint(p tsstore.Point) []byte {
	b := make([]byte, 0, 8*6+2+len(p.Err))
	b = binary.BigEndian.AppendUint64(b, uint64(p.Round))
	b = binary.BigEndian.AppendUint64(b, uint64(p.At))
	b = binary.BigEndian.AppendUint64(b, uint64(p.Span))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.Lo))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.Hi))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.Bits))
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Err)))
	return append(b, p.Err...)
}

// decodePoint is the inverse of encodePoint (Wall stays zero).
func decodePoint(b []byte) (tsstore.Point, error) {
	d := &rdr{b: b}
	p := tsstore.Point{
		Round: int(int64(d.u64())),
		At:    time.Duration(d.u64()),
		Span:  time.Duration(d.u64()),
		Lo:    math.Float64frombits(d.u64()),
		Hi:    math.Float64frombits(d.u64()),
		Bits:  math.Float64frombits(d.u64()),
	}
	p.Err = string(d.bytes(int(d.u16())))
	if d.err != nil {
		return tsstore.Point{}, d.err
	}
	if len(d.b) != 0 {
		return tsstore.Point{}, fmt.Errorf("archive: point record has %d trailing bytes", len(d.b))
	}
	return p, nil
}

// encodeLink serializes a LinkPoint for the WAL.
func encodeLink(p tsstore.LinkPoint) []byte {
	b := make([]byte, 0, 8*5)
	b = binary.BigEndian.AppendUint64(b, uint64(p.Round))
	b = binary.BigEndian.AppendUint64(b, uint64(p.At))
	b = binary.BigEndian.AppendUint64(b, uint64(p.Span))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.Util))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.Capacity))
	return b
}

// decodeLink is the inverse of encodeLink.
func decodeLink(b []byte) (tsstore.LinkPoint, error) {
	d := &rdr{b: b}
	p := tsstore.LinkPoint{
		Round:    int(int64(d.u64())),
		At:       time.Duration(d.u64()),
		Span:     time.Duration(d.u64()),
		Util:     math.Float64frombits(d.u64()),
		Capacity: math.Float64frombits(d.u64()),
	}
	if d.err != nil {
		return tsstore.LinkPoint{}, d.err
	}
	if len(d.b) != 0 {
		return tsstore.LinkPoint{}, fmt.Errorf("archive: link record has %d trailing bytes", len(d.b))
	}
	return p, nil
}

// DecodePointRecord decodes a KindPoint record (for cat-style tools).
func DecodePointRecord(r Record) (path string, p tsstore.Point, err error) {
	if r.Kind != KindPoint {
		return "", tsstore.Point{}, fmt.Errorf("archive: record kind 0x%02x is not a point", r.Kind)
	}
	p, err = decodePoint(r.Data)
	return r.Key, p, err
}

// DecodeLinkRecord decodes a KindLink record.
func DecodeLinkRecord(r Record) (link string, p tsstore.LinkPoint, err error) {
	if r.Kind != KindLink {
		return "", tsstore.LinkPoint{}, fmt.Errorf("archive: record kind 0x%02x is not a link window", r.Kind)
	}
	p, err = decodeLink(r.Data)
	return r.Key, p, err
}

func appendCkptStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// rdr is a bounds-checked big-endian reader; after the first failure
// every read returns zero and err is set.
type rdr struct {
	b   []byte
	err error
}

func (d *rdr) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b) < n {
		d.err = errors.New("short buffer")
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *rdr) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *rdr) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *rdr) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *rdr) bytes(n int) []byte { return append([]byte(nil), d.take(n)...) }

func (d *rdr) str() string { return string(d.take(int(d.u16()))) }
