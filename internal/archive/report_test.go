package archive

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tsstore"
)

// TestReportStrings pins the operator-log renderings: every healing
// action and recovery anomaly must be visible in the line, never
// silent.
func TestReportStrings(t *testing.T) {
	r := OpenReport{Segments: 2, TailRecords: 3}
	if got := r.String(); got != "2 segments, 3 tail records" {
		t.Errorf("clean OpenReport = %q", got)
	}
	r.DroppedTailBytes = 7
	r.StaleWALRecords = 4
	r.HealedHead = true
	s := r.String()
	for _, want := range []string{"dropped 7B torn tail", "discarded 4 already-sealed", "healed HEAD"} {
		if !strings.Contains(s, want) {
			t.Errorf("OpenReport %q missing %q", s, want)
		}
	}

	sr := StoreReport{OpenReport: OpenReport{Segments: 1}, SealedRecords: 9, ForeignRecords: 2, CheckpointCorrupt: true}
	ss := sr.String()
	for _, want := range []string{"9 sealed records", "2 foreign records skipped", "checkpoint corrupt"} {
		if !strings.Contains(ss, want) {
			t.Errorf("StoreReport %q missing %q", ss, want)
		}
	}

	vr := &VerifyReport{
		Segments:      []SegmentVerify{{Index: 1, Records: 5, Bytes: 100}},
		SealedRecords: 5, WALRecords: 1, WALTornBytes: 3,
	}
	vs := vr.String()
	for _, want := range []string{"seg", "torn tail bytes", "OK: 5 sealed + 1 tail"} {
		if !strings.Contains(vs, want) {
			t.Errorf("clean VerifyReport %q missing %q", vs, want)
		}
	}
	vr.Problems = []string{"seg 1: bad hash"}
	if vs = vr.String(); !strings.Contains(vs, "FAIL: seg 1: bad hash") {
		t.Errorf("failing VerifyReport %q missing FAIL line", vs)
	}
}

// TestDecodeRecordHelpers exercises the cat-tool decoders: full
// roundtrips and the kind-mismatch and short-payload errors.
func TestDecodeRecordHelpers(t *testing.T) {
	dir := t.TempDir()
	st, backend, _, err := OpenStore(dir, Options{}, tsstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := backend.Archive().Dir(); got != dir {
		t.Errorf("Dir() = %q, want %q", got, dir)
	}
	// Append via the Backend interface directly: Observe would derive
	// the point and this test wants exact field control.
	if err := backend.AppendPoint("p00", tsstore.Point{Round: 3, At: time.Second, Span: time.Millisecond, Lo: 1e6, Hi: 2e6, Bits: 500, Err: "late"}); err != nil {
		t.Fatal(err)
	}
	if err := backend.AppendLink("hop", tsstore.LinkPoint{Round: 3, At: time.Second, Span: time.Second, Util: 0.25, Capacity: 10e6}); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := backend.Archive().ReplayTail(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("tail holds %d records, want 2", len(recs))
	}

	path, p, err := DecodePointRecord(recs[0])
	if err != nil || path != "p00" {
		t.Fatalf("DecodePointRecord: %q, %v", path, err)
	}
	if p.Round != 3 || p.At != time.Second || p.Lo != 1e6 || p.Hi != 2e6 || p.Err != "late" {
		t.Errorf("point roundtrip = %+v", p)
	}
	link, lp, err := DecodeLinkRecord(recs[1])
	if err != nil || link != "hop" {
		t.Fatalf("DecodeLinkRecord: %q, %v", link, err)
	}
	if lp.Round != 3 || lp.Util != 0.25 || lp.Capacity != 10e6 {
		t.Errorf("link roundtrip = %+v", lp)
	}

	// Kind mismatches refuse to decode.
	if _, _, err := DecodePointRecord(recs[1]); err == nil {
		t.Error("DecodePointRecord accepted a link record")
	}
	if _, _, err := DecodeLinkRecord(recs[0]); err == nil {
		t.Error("DecodeLinkRecord accepted a point record")
	}
	// Truncated payloads error instead of inventing fields.
	if _, _, err := DecodePointRecord(Record{Kind: KindPoint, Key: "p", Data: []byte{1, 2}}); err == nil {
		t.Error("DecodePointRecord accepted a truncated payload")
	}
	if _, _, err := DecodeLinkRecord(Record{Kind: KindLink, Key: "l", Data: []byte{1}}); err == nil {
		t.Error("DecodeLinkRecord accepted a truncated payload")
	}
}
