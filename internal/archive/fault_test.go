package archive

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// errCrash simulates the process dying at a seal failpoint.
var errCrash = errors.New("injected crash")

// TestCrashMatrix is the crash-point fault-injection table: each case
// damages an archive the way a kill or corruption would at one precise
// point, then asserts recovery is exact-or-explicit — replay stops at
// the last verifiable record, and the report says exactly what was
// dropped or healed. Cases that cannot be healed (sealed-history
// damage) must refuse to open and fail Verify instead.
func TestCrashMatrix(t *testing.T) {
	// Every case starts from the same base: segment 1 sealed with
	// records 0..5, WAL tail holding records 6..9.
	mkBase := func(t *testing.T) string {
		dir := t.TempDir()
		a, _ := openT(t, dir, Options{})
		appendN(t, a, 0, 6)
		if err := a.Seal(); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		appendN(t, a, 6, 4)
		a.Close()
		return dir
	}

	cases := []struct {
		name   string
		damage func(t *testing.T, dir string)
		// check runs after damage; it reopens (or fails to) and
		// asserts the recovery contract.
		check func(t *testing.T, dir string)
	}{
		{
			name: "torn wal tail",
			damage: func(t *testing.T, dir string) {
				// Kill mid-append: the last record is half-written.
				wal := filepath.Join(dir, walName)
				fi, err := os.Stat(wal)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(wal, fi.Size()-5); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, dir string) {
				a, rep := openT(t, dir, Options{})
				defer a.Close()
				if rep.DroppedTailBytes == 0 {
					t.Fatalf("torn tail not reported: %+v", rep)
				}
				if rep.TailRecords != 3 {
					t.Fatalf("tail records = %d, want 3 (replay stops at last whole record)", rep.TailRecords)
				}
				sealed, tail := collect(t, a)
				if len(sealed) != 6 || len(tail) != 3 {
					t.Fatalf("recovered %d sealed + %d tail", len(sealed), len(tail))
				}
			},
		},
		{
			name: "garbage wal tail",
			damage: func(t *testing.T, dir string) {
				// Bit rot (or a torn write of garbage) after the last
				// good record.
				f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte{0xde, 0xad, 0xbe, 0xef})
				f.Close()
			},
			check: func(t *testing.T, dir string) {
				a, rep := openT(t, dir, Options{})
				defer a.Close()
				if rep.DroppedTailBytes != 4 || rep.TailRecords != 4 {
					t.Fatalf("garbage tail: %+v", rep)
				}
			},
		},
		{
			name: "kill between segment rename and wal swap",
			damage: func(t *testing.T, dir string) {
				a, _ := openT(t, dir, Options{})
				a.failpoint = func(stage string) error {
					if stage == "sealed-segment" {
						return errCrash
					}
					return nil
				}
				if err := a.Seal(); !errors.Is(err, errCrash) {
					t.Fatalf("failpoint not hit: %v", err)
				}
				a.Close()
			},
			check: func(t *testing.T, dir string) {
				a, rep := openT(t, dir, Options{})
				defer a.Close()
				// The records the interrupted seal captured live in
				// segment 2; the stale WAL copy must be discarded, not
				// replayed twice.
				if rep.Segments != 2 || rep.StaleWALRecords != 4 || rep.TailRecords != 0 {
					t.Fatalf("stale-wal recovery: %+v", rep)
				}
				if !rep.HealedHead {
					t.Fatalf("HEAD should trail the adopted segment: %+v", rep)
				}
				sealed, tail := collect(t, a)
				if len(sealed) != 10 || len(tail) != 0 {
					t.Fatalf("duplicated or lost records: %d sealed + %d tail", len(sealed), len(tail))
				}
			},
		},
		{
			name: "kill between wal swap and head rewrite",
			damage: func(t *testing.T, dir string) {
				a, _ := openT(t, dir, Options{})
				a.failpoint = func(stage string) error {
					if stage == "swapped-wal" {
						return errCrash
					}
					return nil
				}
				if err := a.Seal(); !errors.Is(err, errCrash) {
					t.Fatalf("failpoint not hit: %v", err)
				}
				a.Close()
			},
			check: func(t *testing.T, dir string) {
				a, rep := openT(t, dir, Options{})
				defer a.Close()
				if rep.Segments != 2 || !rep.HealedHead || rep.StaleWALRecords != 0 {
					t.Fatalf("healed-head recovery: %+v", rep)
				}
				sealed, tail := collect(t, a)
				if len(sealed) != 10 || len(tail) != 0 {
					t.Fatalf("records after heal: %d sealed + %d tail", len(sealed), len(tail))
				}
			},
		},
		{
			name: "kill before first head write",
			damage: func(t *testing.T, dir string) {
				// Rebuild the window directly: a fresh archive whose
				// only seal never reached the HEAD write.
				os.RemoveAll(dir)
				a, _ := openT(t, dir, Options{})
				a.failpoint = func(stage string) error {
					if stage == "swapped-wal" {
						return errCrash
					}
					return nil
				}
				appendN(t, a, 0, 3)
				if err := a.Seal(); !errors.Is(err, errCrash) {
					t.Fatalf("failpoint not hit: %v", err)
				}
				a.Close()
				if _, err := os.Stat(filepath.Join(dir, headName)); !os.IsNotExist(err) {
					t.Fatalf("HEAD unexpectedly exists: %v", err)
				}
			},
			check: func(t *testing.T, dir string) {
				a, rep := openT(t, dir, Options{})
				defer a.Close()
				if rep.Segments != 1 || !rep.HealedHead {
					t.Fatalf("first-head recovery: %+v", rep)
				}
				sealed, _ := collect(t, a)
				if len(sealed) != 3 {
					t.Fatalf("records after heal: %d", len(sealed))
				}
			},
		},
		{
			name: "truncated segment",
			damage: func(t *testing.T, dir string) {
				seg := filepath.Join(dir, "seg-00000001")
				fi, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(seg, fi.Size()/2); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, dir string) {
				if _, _, err := Open(dir, Options{}); err == nil {
					t.Fatal("Open accepted a truncated segment")
				}
				rep, err := Verify(dir)
				if err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if rep.OK() {
					t.Fatal("truncated segment went undetected")
				}
			},
		},
		{
			name: "broken chain link",
			damage: func(t *testing.T, dir string) {
				// Grow to 3 segments, then flip one byte in the middle
				// one: both its own hash (checked by seg 3's
				// back-pointer) and its content CRCs go stale.
				a, _ := openT(t, dir, Options{})
				a.Seal()
				appendN(t, a, 10, 4)
				a.Seal()
				a.Close()
				seg := filepath.Join(dir, "seg-00000002")
				b, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				b[len(b)/2] ^= 0x10
				if err := os.WriteFile(seg, b, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, dir string) {
				if _, _, err := Open(dir, Options{}); err == nil {
					t.Fatal("Open accepted a broken chain")
				}
				rep, err := Verify(dir)
				if err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if rep.OK() {
					t.Fatal("broken chain went undetected")
				}
				var mentioned bool
				for _, p := range rep.Problems {
					mentioned = mentioned || strings.Contains(p, "segment 2")
				}
				if !mentioned {
					t.Fatalf("problems do not name the damaged segment: %v", rep.Problems)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := mkBase(t)
			tc.damage(t, dir)
			tc.check(t, dir)
		})
	}
}

// TestCrashStateStillVerifies pins that Verify distinguishes crash
// fallout from tampering: the legal seal crash windows (stale WAL,
// trailing HEAD, torn tail) must not be reported as integrity
// problems.
func TestCrashStateStillVerifies(t *testing.T) {
	dir := t.TempDir()
	a, _ := openT(t, dir, Options{})
	appendN(t, a, 0, 4)
	a.Seal()
	appendN(t, a, 4, 4)
	a.failpoint = func(stage string) error {
		if stage == "sealed-segment" {
			return errCrash
		}
		return nil
	}
	if err := a.Seal(); !errors.Is(err, errCrash) {
		t.Fatalf("failpoint not hit: %v", err)
	}
	a.Close()
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("crash window misreported as tampering: %v", rep.Problems)
	}
}
