package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A VerifyReport is the result of a read-only integrity walk over an
// archive directory. Problems are integrity violations — tampering or
// damage in sealed history or the anchors. A torn WAL tail is ordinary
// crash fallout, reported in WALTornBytes but never a Problem.
type VerifyReport struct {
	Dir      string
	Segments []SegmentVerify
	// SealedRecords and WALRecords count the verifiable records.
	SealedRecords int
	WALRecords    int
	// WALTornBytes is the length of the unverifiable WAL tail (0 for a
	// clean WAL).
	WALTornBytes int64
	// Problems lists every integrity violation found. Empty means the
	// archive verifies.
	Problems []string
}

// A SegmentVerify is one segment's verification outcome.
type SegmentVerify struct {
	Index   uint64
	Records int
	Bytes   int64
	Err     string // "" when the segment verifies in isolation
}

// OK reports whether the archive verified clean.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// String renders the report, one line per segment plus a summary.
func (r *VerifyReport) String() string {
	var b strings.Builder
	for _, s := range r.Segments {
		status := "ok"
		if s.Err != "" {
			status = s.Err
		}
		fmt.Fprintf(&b, "seg %8d  %6d records  %8d bytes  %s\n", s.Index, s.Records, s.Bytes, status)
	}
	fmt.Fprintf(&b, "wal            %6d records", r.WALRecords)
	if r.WALTornBytes > 0 {
		fmt.Fprintf(&b, "  (%d torn tail bytes — crash fallout, not tampering)", r.WALTornBytes)
	}
	b.WriteString("\n")
	if r.OK() {
		fmt.Fprintf(&b, "OK: %d sealed + %d tail records, hash chain and HEAD verify\n",
			r.SealedRecords, r.WALRecords)
	} else {
		for _, p := range r.Problems {
			fmt.Fprintf(&b, "FAIL: %s\n", p)
		}
	}
	return b.String()
}

// Verify walks an archive directory without modifying it: every
// segment's header, record CRCs, and whole-file SHA-256; the hash
// chain between consecutive segments; the HEAD anchor; and the WAL
// framing. Because each segment's header commits to its predecessor's
// whole-file hash and HEAD commits to the newest, any flipped byte in
// sealed history breaks a link this walk checks. The error return is
// for an unreadable directory only — integrity findings go in the
// report.
func Verify(dir string) (*VerifyReport, error) {
	rep := &VerifyReport{Dir: dir}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || e.IsDir() {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimPrefix(name, segPrefix), 10, 64)
		if perr != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("unparseable segment name %q", name))
			continue
		}
		idxs = append(idxs, n)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	var prev *SegmentInfo
	for i, idx := range idxs {
		sv := SegmentVerify{Index: idx}
		b, rerr := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%s%08d", segPrefix, idx)))
		if rerr != nil {
			sv.Err = rerr.Error()
			rep.Problems = append(rep.Problems, fmt.Sprintf("segment %d: %v", idx, rerr))
			rep.Segments = append(rep.Segments, sv)
			prev = nil
			continue
		}
		sv.Bytes = int64(len(b))
		info, _, _, perr := parseSegment(b, idx)
		if perr != nil {
			sv.Err = perr.Error()
			rep.Problems = append(rep.Problems, fmt.Sprintf("segment %d: %v", idx, perr))
			rep.Segments = append(rep.Segments, sv)
			prev = nil
			continue
		}
		sv.Records = info.Records
		rep.SealedRecords += info.Records
		if i > 0 && idx != idxs[i-1]+1 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("segment sequence gap: %d then %d", idxs[i-1], idx))
		} else if prev != nil && info.PrevHash != prev.Hash {
			sv.Err = "chain link broken"
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("segment %d back-pointer does not match segment %d's hash — sealed history was modified", idx, prev.Index))
		}
		rep.Segments = append(rep.Segments, sv)
		prev = &info
	}

	headIdx, headHash, headExists, herr := readHead(dir)
	switch {
	case herr != nil:
		rep.Problems = append(rep.Problems, herr.Error())
	case prev == nil && headExists:
		rep.Problems = append(rep.Problems, fmt.Sprintf("HEAD names segment %d but no intact newest segment exists", headIdx))
	case prev != nil && !headExists:
		rep.Problems = append(rep.Problems, fmt.Sprintf("HEAD missing with %d segments", len(rep.Segments)))
	case prev != nil && headIdx == prev.Index && headHash != prev.Hash:
		rep.Problems = append(rep.Problems, fmt.Sprintf("HEAD hash mismatch for segment %d — sealed history was modified", prev.Index))
	case prev != nil && headIdx == prev.Index-1 && len(idxs) >= 2:
		// Legal crash window (heal pending): HEAD anchors the
		// predecessor; the chain link above already vouches for the
		// newest. Verify the anchor it does hold.
	case prev != nil && headIdx != prev.Index:
		rep.Problems = append(rep.Problems, fmt.Sprintf("HEAD names segment %d but newest is %d", headIdx, prev.Index))
	}

	rep.walVerify(idxs)
	return rep, nil
}

// walVerify checks the WAL's header and framing, tolerating (but
// measuring) a torn tail.
func (rep *VerifyReport) walVerify(idxs []uint64) {
	b, err := os.ReadFile(filepath.Join(rep.Dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return
	}
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("wal: %v", err))
		return
	}
	if len(b) < walHdrLen || binary.BigEndian.Uint32(b[0:4]) != walMagic {
		rep.Problems = append(rep.Problems, "wal: missing or corrupt header")
		return
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != Version {
		rep.Problems = append(rep.Problems, fmt.Sprintf("wal: format version %d, want %d", v, Version))
		return
	}
	after := binary.BigEndian.Uint64(b[6:walHdrLen])
	var newest uint64
	if len(idxs) > 0 {
		newest = idxs[len(idxs)-1]
	}
	if after != newest && !(newest > 0 && after == newest-1) {
		rep.Problems = append(rep.Problems, fmt.Sprintf("wal follows segment %d but newest segment is %d", after, newest))
	}
	consumed, n, _ := scanRecords(b[walHdrLen:], nil)
	rep.WALRecords = n
	rep.WALTornBytes = int64(len(b) - walHdrLen - consumed)
}

// Walk streams every record in an archive directory read-only, sealed
// segments oldest first and then the WAL's valid prefix, calling
// fn(record, sealed). Unlike Open it never heals or truncates; like
// recovery it stops the WAL scan at the first unverifiable record. It
// is the engine of `pathload-archive cat`.
func Walk(dir string, fn func(r Record, sealed bool) error) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var idxs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || e.IsDir() {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimPrefix(name, segPrefix), 10, 64)
		if perr != nil {
			return fmt.Errorf("archive: unparseable segment name %q", name)
		}
		idxs = append(idxs, n)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		_, recs, err := readSegment(filepath.Join(dir, fmt.Sprintf("%s%08d", segPrefix, idx)), idx)
		if err != nil {
			return err
		}
		if _, _, err := scanRecords(recs, func(r Record) error { return fn(r, true) }); err != nil {
			return fmt.Errorf("archive: segment %d: %w", idx, err)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(b) < walHdrLen {
		return nil
	}
	_, _, err = scanRecords(b[walHdrLen:], func(r Record) error { return fn(r, false) })
	if err != nil && (errors.Is(err, errShortRecord) || errors.Is(err, errCorruptRecord)) {
		return nil
	}
	return err
}
