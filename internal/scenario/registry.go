package scenario

import (
	"fmt"

	"repro/internal/crosstraffic"
	"repro/internal/mesh"
	"repro/internal/netsim"
)

// The registry's common topology: a wide access hop in front of a
// 10 Mb/s tight link, small enough that a full grading matrix runs in
// seconds of wall clock.
const (
	wideCap  = 50e6
	wideUtil = 0.10
	tightCap = 10e6

	// The migrate scenario's first hop: loaded lightly in epoch 0,
	// saturated to migrateUtil in epoch 1 so its avail-bw (1.24 Mb/s)
	// undercuts the second hop at any registry load.
	migrateCap  = 12.4e6
	migrateIdle = 0.25
	migrateUtil = 0.90

	// twinSkew separates the twin scenario's two near-tight links by
	// 0.2 Mb/s — far inside pathload's grey resolution χ, so both hops
	// sit in the estimator's grey region.
	twinSkew = 0.02

	// flashFraction of the tight link's capacity arrives as the flash
	// crowd in the flash scenario's second epoch.
	flashFraction = 0.30
)

// twoHop is the wide→tight base spec shared by most scenarios.
func twoHop(load float64, model crosstraffic.Model, tight mesh.LinkSpec) mesh.Spec {
	tight.Name = "tight"
	tight.Capacity = tightCap
	tight.Util = load
	tight.Prop = 5 * netsim.Millisecond
	return mesh.Spec{
		Links: []mesh.LinkSpec{
			{Name: "wide", Capacity: wideCap, Util: wideUtil, Prop: 2 * netsim.Millisecond},
			tight,
		},
		Routes: []mesh.RouteSpec{{Name: "path", Links: []string{"wide", "tight"}}},
		Model:  model,
	}
}

// oneEpoch is the stationary epoch sequence.
func oneEpoch() []Epoch { return []Epoch{{}} }

// registry builds the named scenarios, in presentation order.
var registry = []struct {
	name  string
	build func(Params) Scenario
}{
	{"steady", func(p Params) Scenario {
		return Scenario{
			Name: "steady",
			Info: fmt.Sprintf("stationary Poisson load %.2f on one tight link", p.Load),
			Spec: twoHop(p.Load, crosstraffic.ModelPoisson, mesh.LinkSpec{}),
			// The control: SLoPS and min-plus should both bracket.
			Epochs: oneEpoch(),
		}
	}},
	{"lrd", func(p Params) Scenario {
		return Scenario{
			Name:        "lrd",
			Info:        fmt.Sprintf("long-range-dependent on/off load %.2f (α=1.5, H≈0.75)", p.Load),
			FailureMode: "burst clusters at every timescale widen the grey region and can push single rounds off the truth",
			Spec:        twoHop(p.Load, crosstraffic.ModelOnOff, mesh.LinkSpec{}),
			Epochs:      oneEpoch(),
		}
	}},
	{"flash", func(p Params) Scenario {
		s := Scenario{
			Name:        "flash",
			Info:        fmt.Sprintf("flash crowd: +%.0f%% of tight capacity arrives mid-run and stays", flashFraction*100),
			FailureMode: "rounds straddling the ramp report the pre-crowd truth until the fleet converges again",
			Spec:        twoHop(p.Load, crosstraffic.ModelPoisson, mesh.LinkSpec{}),
		}
		s.Epochs = []Epoch{
			{},
			{Flash: &Flash{Link: "tight", Peak: flashFraction * tightCap, RampUp: 2 * netsim.Second}},
		}
		return s
	}},
	{"migrate", func(p Params) Scenario {
		s := Scenario{
			Name:        "migrate",
			Info:        "tight link migrates from hop 1 to hop 0 mid-run (utilization step)",
			FailureMode: "estimates straddling the step are stale against the new truth for at least one round",
			Spec:        twoHop(p.Load, crosstraffic.ModelPoisson, mesh.LinkSpec{}),
		}
		s.Spec.Links[0] = mesh.LinkSpec{
			Name: "wide", Capacity: migrateCap, Util: migrateIdle, Prop: 2 * netsim.Millisecond,
		}
		s.Epochs = []Epoch{
			{},
			{Util: map[string]float64{"wide": migrateUtil}},
		}
		return s
	}},
	{"twin", func(p Params) Scenario {
		s := Scenario{
			Name:        "twin",
			Info:        fmt.Sprintf("two near-tight links %.1f Mb/s apart (multi-bottleneck grey region)", twinSkew*tightCap/1e6),
			FailureMode: "both hops queue near the boundary: grey verdicts dominate and the reported range widens",
			Spec: mesh.Spec{
				Links: []mesh.LinkSpec{
					{Name: "wide", Capacity: wideCap, Util: wideUtil, Prop: 2 * netsim.Millisecond},
					{Name: "twin-a", Capacity: tightCap, Util: p.Load, Prop: 3 * netsim.Millisecond},
					{Name: "twin-b", Capacity: tightCap, Util: p.Load + twinSkew, Prop: 3 * netsim.Millisecond},
				},
				Routes: []mesh.RouteSpec{{Name: "path", Links: []string{"wide", "twin-a", "twin-b"}}},
			},
			Epochs: oneEpoch(),
		}
		return s
	}},
	{"lossy", func(p Params) Scenario {
		return Scenario{
			Name:        "lossy",
			Info:        fmt.Sprintf("random loss %.1f%% on the tight link", p.Loss*100),
			FailureMode: "stream losses trip the >10% abort rule, fleets abort as \"rate too high\", and the search collapses to its minimum rate",
			Spec:        twoHop(p.Load, crosstraffic.ModelPoisson, mesh.LinkSpec{Loss: p.Loss}),
			Epochs:      oneEpoch(),
		}
	}},
	{"reorder", func(p Params) Scenario {
		return Scenario{
			Name: "reorder",
			Info: fmt.Sprintf("%.0f%% of tight-link packets delayed %v (reordering)", p.Reorder*100, p.ReorderDelay),
			FailureMode: "delay spikes mimic queue growth, so streams classify as increasing and SLoPS under-reports " +
				"(reordered probes also count toward the loss-abort rule at the receiver's straggler cutoff)",
			Spec:   twoHop(p.Load, crosstraffic.ModelPoisson, mesh.LinkSpec{Reorder: p.Reorder, ReorderDelay: p.ReorderDelay}),
			Epochs: oneEpoch(),
		}
	}},
}

// Names lists the registry's scenarios in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// Get builds a registry scenario with the given parameters. Unknown
// names error.
func Get(name string, p Params) (Scenario, error) {
	p = p.withDefaults()
	if p.Load < 0 || p.Load > 0.95 {
		return Scenario{}, fmt.Errorf("scenario: load %v outside (0, 0.95]", p.Load)
	}
	for _, r := range registry {
		if r.name == name {
			return r.build(p), nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}
