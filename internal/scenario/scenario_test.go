package scenario

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/netsim"
)

// measureUtil runs the instance's simulator for d and returns the
// link's mean utilization over that window.
func measureUtil(inst *Instance, link string, d netsim.Time) float64 {
	l := inst.Mesh.Link(link)
	before := l.Counters()
	start := inst.Sim().Now()
	inst.Sim().RunFor(d)
	return netsim.Utilization(before, l.Counters(), inst.Sim().Now()-start)
}

// TestRegistryBuilds: every advertised scenario builds and its epoch-0
// truth is positive and below the tight capacity.
func TestRegistryBuilds(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name, Params{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name || s.Info == "" {
			t.Errorf("%s: bad registry entry %+v", name, s)
		}
		inst := s.MustBuild(7)
		if got := inst.Epochs(); got != len(s.Epochs) || got == 0 {
			t.Fatalf("%s: %d epochs", name, got)
		}
		a, hop := s.TruthForEpoch(0)
		if a <= 0 || a >= tightCap || hop < 0 || hop >= len(s.Spec.Routes[0].Links) {
			t.Errorf("%s: epoch-0 truth A=%v hop=%d out of range", name, a, hop)
		}
		if inst.Truth() != a || inst.TightHop() != hop {
			t.Errorf("%s: instance truth (%v, %d) ≠ scenario truth (%v, %d)",
				name, inst.Truth(), inst.TightHop(), a, hop)
		}
	}
	if _, err := Get("bogus", Params{}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Get("steady", Params{Load: 0.99}); err == nil {
		t.Error("out-of-range load accepted")
	}
}

// TestMigrateTruth pins the migration scenario's per-epoch ground
// truth: the tight link moves from hop 1 to hop 0 and the truth steps
// down to the saturated hop's avail-bw.
func TestMigrateTruth(t *testing.T) {
	s, err := Get("migrate", Params{Load: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	a0, h0 := s.TruthForEpoch(0)
	if h0 != 1 || a0 != tightCap*(1-0.4) {
		t.Fatalf("epoch 0: A=%v hop=%d, want 6e6 at hop 1", a0, h0)
	}
	a1, h1 := s.TruthForEpoch(1)
	if h1 != 0 || math.Abs(a1-migrateCap*(1-migrateUtil)) > 1 {
		t.Fatalf("epoch 1: A=%v hop=%d, want 1.24e6 at hop 0", a1, h1)
	}
}

// TestAdvanceRealizesUtilization: Advance must change the live traffic,
// not just the reported truth — the migrating hop's measured
// utilization steps from 0.25 to 0.90.
func TestAdvanceRealizesUtilization(t *testing.T) {
	inst := mustGet(t, "migrate", Params{Load: 0.4}).MustBuild(11)
	inst.Mesh.Warmup(2 * netsim.Second)
	if u := measureUtil(inst, "wide", 20*netsim.Second); math.Abs(u-migrateIdle) > 0.06 {
		t.Fatalf("epoch 0 wide utilization %.3f, want ≈%.2f", u, migrateIdle)
	}
	if !inst.Advance() {
		t.Fatal("Advance refused with an epoch remaining")
	}
	if inst.Epoch() != 1 {
		t.Fatalf("epoch %d after Advance, want 1", inst.Epoch())
	}
	inst.Sim().RunFor(2 * netsim.Second) // let the new regime settle
	if u := measureUtil(inst, "wide", 20*netsim.Second); math.Abs(u-migrateUtil) > 0.06 {
		t.Fatalf("epoch 1 wide utilization %.3f, want ≈%.2f", u, migrateUtil)
	}
	if inst.Advance() {
		t.Fatal("Advance past the final epoch")
	}
}

// TestFlashRealizesLoad: the flash epoch adds its peak rate to the
// tight link's measured utilization and the truth drops accordingly.
func TestFlashRealizesLoad(t *testing.T) {
	load := 0.4
	inst := mustGet(t, "flash", Params{Load: load}).MustBuild(3)
	inst.Mesh.Warmup(2 * netsim.Second)
	if u := measureUtil(inst, "tight", 20*netsim.Second); math.Abs(u-load) > 0.06 {
		t.Fatalf("epoch 0 tight utilization %.3f, want ≈%.2f", u, load)
	}
	preTruth := inst.Truth()
	inst.Advance()
	inst.Sim().RunFor(4 * netsim.Second) // ramp (2s) + settle
	want := load + flashFraction
	if u := measureUtil(inst, "tight", 20*netsim.Second); math.Abs(u-want) > 0.06 {
		t.Fatalf("flash epoch tight utilization %.3f, want ≈%.2f", u, want)
	}
	if got := inst.Truth(); math.Abs((preTruth-got)-flashFraction*tightCap) > 1 {
		t.Fatalf("flash truth step %v, want %v", preTruth-got, flashFraction*tightCap)
	}
}

// TestImpairedScenariosWired: the lossy and reorder scenarios install
// their impairments on the tight link of the built mesh.
func TestImpairedScenariosWired(t *testing.T) {
	lossy := mustGet(t, "lossy", Params{}).MustBuild(5)
	lossy.Mesh.Warmup(10 * netsim.Second)
	if got := lossy.Mesh.Link("tight").Counters().RandLoss; got == 0 {
		t.Error("lossy scenario: no random losses on the tight link")
	}
	reorder := mustGet(t, "reorder", Params{}).MustBuild(5)
	reorder.Mesh.Warmup(10 * netsim.Second)
	if got := reorder.Mesh.Link("tight").Counters().Reordered; got == 0 {
		t.Error("reorder scenario: no reordered packets on the tight link")
	}
}

// TestTwinGreyGap: the twin scenario's two bottlenecks differ by far
// less than pathload's grey resolution, and the earliest-tie rule holds
// when the skew is removed.
func TestTwinGreyGap(t *testing.T) {
	s := mustGet(t, "twin", Params{Load: 0.5})
	aA := tightCap * (1 - 0.5)
	aB := tightCap * (1 - 0.5 - twinSkew)
	a, hop := s.TruthForEpoch(0)
	if a != aB || hop != 2 {
		t.Fatalf("twin truth A=%v hop=%d, want %v at hop 2", a, hop, aB)
	}
	if gap := aA - aB; gap <= 0 || gap > 1.5e6 {
		t.Fatalf("twin gap %v outside the grey resolution", gap)
	}
	// Exact co-tight twins: earliest of the two wins.
	s.Spec.Links[2].Util = 0.5
	if _, hop := s.TruthForEpoch(0); hop != 1 {
		t.Fatalf("co-tight twins resolved to hop %d, want earliest (1)", hop)
	}
}

// TestScenarioValidation: structural errors in scenario declarations
// surface from Build.
func TestScenarioValidation(t *testing.T) {
	base := func() Scenario {
		s, _ := Get("steady", Params{})
		return s
	}
	for name, tc := range map[string]struct {
		mut  func(*Scenario)
		want string
	}{
		"no epochs":      {func(s *Scenario) { s.Epochs = nil }, "no epochs"},
		"unknown link":   {func(s *Scenario) { s.Epochs[0].Util = map[string]float64{"zzz": 0.5} }, "unknown link"},
		"bad util":       {func(s *Scenario) { s.Epochs[0].Util = map[string]float64{"tight": 1.0} }, "outside"},
		"flash unknown":  {func(s *Scenario) { s.Epochs[0].Flash = &Flash{Link: "zzz", Peak: 1e6, RampUp: 1} }, "unknown"},
		"flash peak":     {func(s *Scenario) { s.Epochs[0].Flash = &Flash{Link: "tight", Peak: 2 * tightCap, RampUp: 1} }, "peak"},
		"flash ramp":     {func(s *Scenario) { s.Epochs[0].Flash = &Flash{Link: "tight", Peak: 1e6} }, "ramp-up"},
		"no routes":      {func(s *Scenario) { s.Spec.Routes = nil }, "route"},
		"bad mesh":       {func(s *Scenario) { s.Spec.Links[0].Capacity = 0 }, "capacity"},
		"multi override": {func(s *Scenario) { s.Epochs = append(s.Epochs, Epoch{Util: map[string]float64{"tight": -0.1}}) }, "outside"},
	} {
		s := base()
		tc.mut(&s)
		_, err := s.Build(1)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
	// Multi-route scenarios are legal since the fleet lift: a second
	// route builds, shows up in Paths, and carries its own truth.
	s := base()
	s.Spec.Routes = append(s.Spec.Routes, mesh.RouteSpec{Name: "q", Links: []string{"wide"}})
	inst, err := s.Build(1)
	if err != nil {
		t.Fatalf("two-route scenario: %v", err)
	}
	if len(inst.Paths) != 2 || inst.Path != inst.Paths[0] {
		t.Fatalf("two-route instance paths = %d, Path == Paths[0] is %v", len(inst.Paths), inst.Path == inst.Paths[0])
	}
	if a, _ := inst.RouteTruth(1); a != wideCap*(1-wideUtil) {
		t.Errorf("route 1 truth = %v, want %v", a, wideCap*(1-wideUtil))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustBuild on an invalid scenario did not panic")
			}
		}()
		s := base()
		s.Epochs = nil
		s.MustBuild(1)
	}()
}

// TestParse covers the accepted grammar and a malformed-input table.
func TestParse(t *testing.T) {
	s, err := Parse("lossy:load=0.7,loss=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "lossy" || s.Spec.Links[1].Util != 0.7 || s.Spec.Links[1].Loss != 0.1 {
		t.Fatalf("parsed scenario %+v", s)
	}
	s, err = Parse("reorder:delay=10ms,reorder=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec.Links[1].Reorder != 0.2 || s.Spec.Links[1].ReorderDelay != 10*netsim.Millisecond {
		t.Fatalf("parsed reorder scenario %+v", s.Spec.Links[1])
	}
	if s, err := Parse("steady"); err != nil || s.Name != "steady" {
		t.Fatalf("bare name: %v, %v", s.Name, err)
	}
	for _, bad := range []string{
		"", ":", "steady:", "steady:load", "steady:load=", "steady:=0.5",
		"steady:load=x", "steady:load=2", "steady:load=-1", "steady:load=NaN",
		"steady:loss=1", "steady:reorder=1.5", "steady:delay=0s", "steady:delay=-5ms",
		"steady:delay=zzz", "steady:frobnicate=1", "nope", "nope:load=0.5",
		"steady:load=0.5,,", "steady:load=0.5,load",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func mustGet(t *testing.T, name string, p Params) Scenario {
	t.Helper()
	s, err := Get(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
