package scenario

import (
	"math"
	"strings"
	"testing"
)

// TestFleetRegistryTruths pins every fleet scenario's per-route
// per-epoch analytic truth on a 4-path fleet — the numbers the
// fleetscenarios experiment grades against.
func TestFleetRegistryTruths(t *testing.T) {
	const n = 4
	want := map[string][][]float64{ // scenario -> epoch -> per-route truth
		"migrate-chain":   {{4.5e6, 4.5e6, 4.5e6, 4.5e6}, {4.0e6, 4.0e6, 4.0e6, 4.0e6}},
		"flash-star":      {{4.5e6, 4.5e6, 4.5e6, 4.5e6}, {1.5e6, 1.5e6, 1.5e6, 1.5e6}},
		"surge-disjoint":  {{5e6, 5e6, 5e6, 5e6}, {2e6, 3e6, 5e6, 4e6}},
		"steady-disjoint": {{5e6, 5e6, 5e6, 5e6}},
	}
	if got := FleetNames(); len(got) != len(want) {
		t.Fatalf("FleetNames() = %v, want %d scenarios", got, len(want))
	}
	for _, name := range FleetNames() {
		s, err := GetFleet(name, n)
		if err != nil {
			t.Fatalf("GetFleet(%q): %v", name, err)
		}
		epochs := want[s.Name]
		if len(s.Epochs) != len(epochs) {
			t.Errorf("%s: %d epochs, want %d", s.Name, len(s.Epochs), len(epochs))
			continue
		}
		if len(s.Spec.Routes) != n {
			t.Errorf("%s: %d routes, want %d", s.Name, len(s.Spec.Routes), n)
			continue
		}
		for e, truths := range epochs {
			for r, truth := range truths {
				// 1 bit/s tolerance absorbs C·(1−u) float rounding.
				if a, _ := s.RouteTruth(e, r); math.Abs(a-truth) > 1 {
					t.Errorf("%s epoch %d route %d: truth %v, want %v", s.Name, e, r, a, truth)
				}
			}
		}
	}
}

// TestMigrateChainTightHopMoves: the tentpole scenario's defining
// property — every route's tight hop migrates at the epoch boundary.
func TestMigrateChainTightHopMoves(t *testing.T) {
	s, err := GetFleet("migrate-chain", 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := range s.Spec.Routes {
		_, h0 := s.RouteTruth(0, r)
		_, h1 := s.RouteTruth(1, r)
		if h0 == h1 {
			t.Errorf("route %d: tight hop stayed at %d across the swap", r, h0)
		}
	}
}

// TestFleetScenariosBuild: every fleet scenario builds and runs its
// epoch machinery end to end.
func TestFleetScenariosBuild(t *testing.T) {
	for _, name := range FleetNames() {
		s, err := GetFleet(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		inst := s.MustBuild(7)
		if len(inst.Paths) != 4 {
			t.Fatalf("%s: %d paths, want 4", name, len(inst.Paths))
		}
		for inst.Advance() {
		}
		if inst.Epoch() != inst.Epochs()-1 {
			t.Errorf("%s: ended at epoch %d of %d", name, inst.Epoch(), inst.Epochs())
		}
	}
}

func TestGetFleetErrors(t *testing.T) {
	if _, err := GetFleet("zzz", 4); err == nil || !strings.Contains(err.Error(), "unknown fleet") {
		t.Errorf("unknown fleet: err = %v", err)
	}
	if _, err := GetFleet("flash-star", 0); err == nil || !strings.Contains(err.Error(), "at least one path") {
		t.Errorf("zero paths: err = %v", err)
	}
}
