package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
)

// Parse resolves a scenario spec string of the form
//
//	name[:key=value,...]
//
// against the registry. Keys: load (tight-link utilization, (0, 0.95]),
// loss and reorder (probabilities in (0, 1)), delay (a Go duration,
// e.g. 5ms). Malformed input returns an error; it never panics, which
// FuzzParse enforces — the string arrives straight from the
// `pathload -monitor -scenario` flag.
func Parse(s string) (Scenario, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Scenario{}, fmt.Errorf("scenario: empty scenario name in %q", s)
	}
	var p Params
	if hasParams {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return Scenario{}, fmt.Errorf("scenario: malformed parameter %q (want key=value)", kv)
			}
			switch k {
			case "load":
				f, err := parseFrac(k, v, 0.95)
				if err != nil {
					return Scenario{}, err
				}
				p.Load = f
			case "loss":
				f, err := parseFrac(k, v, 1)
				if err != nil {
					return Scenario{}, err
				}
				p.Loss = f
			case "reorder":
				f, err := parseFrac(k, v, 1)
				if err != nil {
					return Scenario{}, err
				}
				p.Reorder = f
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return Scenario{}, fmt.Errorf("scenario: delay %q: %v", v, err)
				}
				if d <= 0 {
					return Scenario{}, fmt.Errorf("scenario: delay %v must be positive", d)
				}
				p.ReorderDelay = netsim.Time(d)
			default:
				return Scenario{}, fmt.Errorf("scenario: unknown parameter %q (have load, loss, reorder, delay)", k)
			}
		}
	}
	return Get(name, p)
}

// parseFrac parses an exclusive-range (0, max) fraction.
func parseFrac(key, v string, max float64) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s %q: %v", key, v, err)
	}
	if f <= 0 || f >= max || f != f {
		return 0, fmt.Errorf("scenario: %s %v outside (0, %v)", key, f, max)
	}
	return f, nil
}
