// Package scenario is a composable library of adversarial measurement
// scenarios over mesh/crosstraffic/netsim: the conditions where SLoPS
// is known to bend (§VI dynamics) — long-range-dependent cross traffic,
// flash crowds, tight-link migration, multi-bottleneck grey regions,
// random loss and reordering.
//
// A Scenario is a mesh.Spec plus a sequence of epochs. Each epoch
// overrides per-link utilizations and may add a flash-crowd ramp; the
// analytic ground truth (avail-bw and tight hop) is recomputed per
// epoch. Epochs advance at measurement-round boundaries via
// Instance.Advance — boundary-driven, not wall-clock-driven, because a
// SLoPS run's virtual duration is load-dependent and unpredictable.
// Mid-epoch the built simulation is stationary, so "ground truth during
// round r" is well defined: it is the truth of the epoch the round ran
// in.
package scenario

import (
	"fmt"

	"repro/internal/crosstraffic"
	"repro/internal/mesh"
	"repro/internal/netsim"
)

// Params tunes the registry's scenarios. Zero fields take defaults.
type Params struct {
	// Load is the tight link's cross-traffic utilization (default 0.55).
	Load float64
	// Loss is the lossy scenario's erase probability (default 0.03,
	// enough that most 100-packet streams trip pathload's 10% abort on
	// at least one stream of a fleet over a run).
	Loss float64
	// Reorder is the reorder scenario's delay probability (default 0.08).
	Reorder float64
	// ReorderDelay is the extra delivery delay of reordered packets
	// (default 5 ms, large against per-packet OWD noise).
	ReorderDelay netsim.Time
}

func (p Params) withDefaults() Params {
	if p.Load == 0 {
		p.Load = 0.55
	}
	if p.Loss == 0 {
		p.Loss = 0.03
	}
	if p.Reorder == 0 {
		p.Reorder = 0.08
	}
	if p.ReorderDelay == 0 {
		p.ReorderDelay = 5 * netsim.Millisecond
	}
	return p
}

// A Flash adds a flash-crowd ramp on one link for the duration of an
// epoch: arrivals ramp linearly to Peak bits/s over RampUp, then hold
// until the epoch ends.
type Flash struct {
	Link   string
	Peak   float64
	RampUp netsim.Time
}

// An Epoch is one stationary regime of a scenario. Util overrides the
// spec's per-link utilizations (absent links keep their spec value);
// Flash, if non-nil, runs a ramp source through the epoch.
type Epoch struct {
	Util  map[string]float64
	Flash *Flash
}

// A Scenario declares a topology plus its epoch sequence.
type Scenario struct {
	// Name identifies the scenario in the registry and CLI.
	Name string
	// Info is a one-line description for tables and docs.
	Info string
	// FailureMode documents the estimator behavior the scenario is
	// designed to expose ("" when SLoPS is expected to track).
	FailureMode string

	// Spec is the base topology: one route for the classic single-path
	// scenarios, several for fleet scenarios over a shared backbone.
	// Link utilizations are epoch-0 values (later epochs override via
	// Epochs).
	Spec mesh.Spec
	// Epochs holds at least one entry; entry 0 applies from Build on.
	Epochs []Epoch
}

// validate extends mesh validation with the epoch contract.
func (s Scenario) validate() error {
	if err := s.Spec.Validate(); err != nil {
		return err
	}
	if len(s.Spec.Routes) < 1 {
		return fmt.Errorf("scenario %q: want at least one route, got %d", s.Name, len(s.Spec.Routes))
	}
	if len(s.Epochs) == 0 {
		return fmt.Errorf("scenario %q: no epochs", s.Name)
	}
	known := map[string]float64{}
	for _, l := range s.Spec.Links {
		known[l.Name] = l.Capacity
	}
	for e, ep := range s.Epochs {
		for name, u := range ep.Util {
			if _, ok := known[name]; !ok {
				return fmt.Errorf("scenario %q: epoch %d overrides unknown link %q", s.Name, e, name)
			}
			if u < 0 || u >= 1 {
				return fmt.Errorf("scenario %q: epoch %d: link %q utilization %v outside [0, 1)", s.Name, e, name, u)
			}
		}
		if f := ep.Flash; f != nil {
			cap, ok := known[f.Link]
			if !ok {
				return fmt.Errorf("scenario %q: epoch %d: flash on unknown link %q", s.Name, e, f.Link)
			}
			if f.Peak <= 0 || f.Peak >= cap {
				return fmt.Errorf("scenario %q: epoch %d: flash peak %v outside (0, link capacity %v)", s.Name, e, f.Peak, cap)
			}
			if f.RampUp <= 0 {
				return fmt.Errorf("scenario %q: epoch %d: flash ramp-up must be positive, got %v", s.Name, e, f.RampUp)
			}
		}
	}
	return nil
}

// utilIn returns link l's utilization in epoch e (spec value unless
// overridden).
func (s Scenario) utilIn(l mesh.LinkSpec, e int) float64 {
	if u, ok := s.Epochs[e].Util[l.Name]; ok {
		return u
	}
	return l.Util
}

// RouteTruth returns the analytic ground truth of route r in epoch e:
// the end-to-end available bandwidth A = min over the route of
// C_l·(1−u_l) (the flash peak counts as utilization on its link) and
// the tight hop index, earliest hop winning exact ties. Fleet
// scenarios have one truth per route per epoch; a migrating-tight-link
// epoch moves every route's tight hop at once.
func (s Scenario) RouteTruth(e, r int) (avail float64, tightHop int) {
	byName := map[string]mesh.LinkSpec{}
	for _, l := range s.Spec.Links {
		byName[l.Name] = l
	}
	for hop, name := range s.Spec.Routes[r].Links {
		l := byName[name]
		a := l.Capacity * (1 - s.utilIn(l, e))
		if f := s.Epochs[e].Flash; f != nil && f.Link == name {
			a -= f.Peak
		}
		if hop == 0 || a < avail {
			avail, tightHop = a, hop
		}
	}
	return avail, tightHop
}

// TruthForEpoch is RouteTruth for the first route — the whole truth of
// a classic single-path scenario.
func (s Scenario) TruthForEpoch(e int) (avail float64, tightHop int) {
	return s.RouteTruth(e, 0)
}

// An Instance is one built, running scenario: a live mesh whose link
// pool carries the epoch-0 regime, plus the stopped delta aggregates
// and flash sources of every later epoch, ready to toggle at Advance.
type Instance struct {
	Scenario Scenario
	Mesh     *mesh.Mesh
	// Paths holds the scenario's monitored routes in spec order; Path
	// is the first of them, the whole fleet of a single-path scenario.
	Paths []*mesh.Path
	Path  *mesh.Path

	epoch   int
	deltas  [][]*crosstraffic.Aggregate // per epoch, the extra load above the base build
	flashes []*crosstraffic.RampSource  // per epoch, nil when the epoch has no flash
}

// Build constructs the instance. The built mesh's links carry, for each
// link, the minimum utilization across epochs; each epoch's surplus
// (u_e − u_min)·C runs as a separate delta aggregate toggled at epoch
// boundaries, so utilization shifts take effect without rebuilding the
// simulator mid-run. Epoch 0's deltas are started here — warm the mesh
// up after Build and the warmup already reflects epoch 0.
func (s Scenario) Build(seed int64) (*Instance, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	// Rewrite the spec: base util = per-link minimum across epochs.
	base := s.Spec
	base.Seed = seed
	base.Links = append([]mesh.LinkSpec(nil), s.Spec.Links...)
	for i, l := range base.Links {
		min := s.utilIn(l, 0)
		for e := 1; e < len(s.Epochs); e++ {
			if u := s.utilIn(l, e); u < min {
				min = u
			}
		}
		base.Links[i].Util = min
	}
	m, err := base.Build()
	if err != nil {
		return nil, err
	}

	inst := &Instance{Scenario: s, Mesh: m, Paths: m.Paths(), Path: m.Paths()[0]}
	sources := s.Spec.SourcesPerLink
	if sources == 0 {
		sources = mesh.DefaultSourcesPerLink
	}
	sizes := s.Spec.Sizes
	if sizes == nil {
		sizes = crosstraffic.Trimodal{}
	}
	for e := range s.Epochs {
		var ds []*crosstraffic.Aggregate
		for i, l := range s.Spec.Links {
			delta := (s.utilIn(l, e) - base.Links[i].Util) * l.Capacity
			if delta <= 0 {
				continue
			}
			ds = append(ds, crosstraffic.NewAggregate(
				m.Sim, []*netsim.Link{m.Link(l.Name)}, delta, sources,
				s.Spec.Model, sizes, seed+7_654_321*int64(e+1)+int64(i)*1_000_003))
		}
		inst.deltas = append(inst.deltas, ds)
		var ramp *crosstraffic.RampSource
		if f := s.Epochs[e].Flash; f != nil {
			ramp = crosstraffic.NewRampSource(
				m.Sim, []*netsim.Link{m.Link(f.Link)}, f.Peak,
				f.RampUp, 0, netsim.Second, sizes, seed+13*int64(e+1))
		}
		inst.flashes = append(inst.flashes, ramp)
	}
	inst.startEpoch(0)
	return inst, nil
}

// MustBuild is Build for known-good scenarios (the registry's).
func (s Scenario) MustBuild(seed int64) *Instance {
	inst, err := s.Build(seed)
	if err != nil {
		panic(err)
	}
	return inst
}

func (i *Instance) startEpoch(e int) {
	for _, d := range i.deltas[e] {
		d.Start()
	}
	if r := i.flashes[e]; r != nil {
		r.Start()
	}
}

func (i *Instance) stopEpoch(e int) {
	for _, d := range i.deltas[e] {
		d.Stop()
	}
	if r := i.flashes[e]; r != nil {
		r.Stop()
	}
}

// Epoch returns the current epoch index.
func (i *Instance) Epoch() int { return i.epoch }

// Epochs returns the scenario's epoch count.
func (i *Instance) Epochs() int { return len(i.Scenario.Epochs) }

// Advance moves the live simulation to the next epoch — stop the
// outgoing epoch's surplus load, start the incoming one's — and reports
// whether it advanced (false at the final epoch). Call it only between
// measurement rounds, from the goroutine driving the simulator.
func (i *Instance) Advance() bool {
	if i.epoch+1 >= len(i.Scenario.Epochs) {
		return false
	}
	i.stopEpoch(i.epoch)
	i.epoch++
	i.startEpoch(i.epoch)
	return true
}

// Truth returns the current epoch's analytic available bandwidth of
// the first route.
func (i *Instance) Truth() float64 {
	a, _ := i.Scenario.TruthForEpoch(i.epoch)
	return a
}

// TightHop returns the current epoch's tight hop index on the first
// route.
func (i *Instance) TightHop() int {
	_, h := i.Scenario.TruthForEpoch(i.epoch)
	return h
}

// RouteTruth returns the current epoch's analytic available bandwidth
// and tight hop of route r.
func (i *Instance) RouteTruth(r int) (avail float64, tightHop int) {
	return i.Scenario.RouteTruth(i.epoch, r)
}

// Sim returns the instance's simulator.
func (i *Instance) Sim() *netsim.Simulator { return i.Mesh.Sim }
