package scenario

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/netsim"
)

// Fleet scenarios: whole monitored fleets over a shared mesh.Shape
// backbone facing one epoch sequence, with per-route per-epoch analytic
// truth (RouteTruth). They are what a sequenced mesh.MonitorFleet is
// for — the epoch Advance fires in the driver's round-boundary hook, so
// every path sees the same regime in the same fleet round and the whole
// run replays byte-for-byte.
//
// Epoch-1 regimes below are chosen so the truth change is unambiguous
// at pathload's resolution (ω + χ = 1.5 Mb/s) and, for migrate-chain,
// so that *every* path's tight hop moves.
const (
	// migrate-chain epoch 1: the loaded even hops (10 Mb/s at 55%,
	// A = 4.5 Mb/s) calm down to 35% while the quiet odd hops surge to
	// 60% — every path's tight link migrates from its even hop to its
	// odd hop and the fleet-wide truth steps 4.5 → 4.0 Mb/s.
	chainCalmUtil  = 0.35
	chainSurgeUtil = 0.60

	// flash-star epoch 1: a flash crowd on the shared core (10 Mb/s at
	// 55%, A = 4.5 Mb/s) peaking at 3 Mb/s — every path's truth drops
	// to 1.5 Mb/s through the one hop they all share.
	starFlashPeak = 3e6

	// surge-disjoint epoch 1: per-link utilization steps on the
	// isolated 10 Mb/s / 50% lanes, patterned by path index mod 4 so
	// neighbors in the rendered table move differently (truths 5 →
	// 2 / 3 / 5 / 4 Mb/s).
	surgeHeavy = 0.80
	surgeMid   = 0.70
	surgeLight = 0.60
)

// fleetRegistry builds the named fleet scenarios for an n-path fleet,
// in presentation order.
var fleetRegistry = []struct {
	name  string
	build func(n int) Scenario
}{
	{"migrate-chain", func(n int) Scenario {
		util := map[string]float64{}
		for h := 0; h <= n; h++ {
			if h%2 == 0 {
				util[fmt.Sprintf("hop-%02d", h)] = chainCalmUtil
			} else {
				util[fmt.Sprintf("hop-%02d", h)] = chainSurgeUtil
			}
		}
		return Scenario{
			Name:        "migrate-chain",
			Info:        "every chain path's tight link migrates from its even hop to its odd hop (fleet-wide utilization swap)",
			FailureMode: "rounds straddling the swap grade against the new truth while reporting the old hop's avail-bw",
			Spec:        mesh.Chain(n, 0),
			Epochs: []Epoch{
				{},
				{Util: util},
			},
		}
	}},
	{"flash-star", func(n int) Scenario {
		return Scenario{
			Name:        "flash-star",
			Info:        "flash crowd on the star's shared core: every path's truth collapses at once",
			FailureMode: "the whole fleet goes stale together — no path has an unaffected vantage during the ramp",
			Spec:        mesh.Star(n, 0),
			Epochs: []Epoch{
				{},
				{Flash: &Flash{Link: "core", Peak: starFlashPeak, RampUp: 2 * netsim.Second}},
			},
		}
	}},
	{"surge-disjoint", func(n int) Scenario {
		util := map[string]float64{}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("lone-%02d", i)
			switch i % 4 {
			case 0:
				util[name] = surgeHeavy
			case 1:
				util[name] = surgeMid
			case 3:
				util[name] = surgeLight
				// case 2: unchanged — the in-fleet control lane.
			}
		}
		return Scenario{
			Name: "surge-disjoint",
			Info: "independent per-lane load steps on a disjoint fleet (each path has its own new truth)",
			Spec: mesh.Disjoint(n, 0),
			Epochs: []Epoch{
				{},
				{Util: util},
			},
		}
	}},
	{"steady-disjoint", func(n int) Scenario {
		return Scenario{
			Name: "steady-disjoint",
			Info: "stationary disjoint lanes: the replay control (sequenced fleet must equal per-path solo runs)",
			Spec: mesh.Disjoint(n, 0),
			Epochs: []Epoch{
				{},
			},
		}
	}},
}

// FleetNames lists the fleet scenarios in presentation order.
func FleetNames() []string {
	out := make([]string, len(fleetRegistry))
	for i, r := range fleetRegistry {
		out[i] = r.name
	}
	return out
}

// GetFleet builds the named fleet scenario for an n-path fleet.
// Unknown names and non-positive fleet sizes error.
func GetFleet(name string, n int) (Scenario, error) {
	if n < 1 {
		return Scenario{}, fmt.Errorf("scenario: fleet %q needs at least one path, got %d", name, n)
	}
	for _, r := range fleetRegistry {
		if r.name == name {
			return r.build(n), nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown fleet scenario %q (have %v)", name, FleetNames())
}
