package scenario

import (
	"strings"
	"testing"
)

// FuzzParse: the scenario spec string arrives from the CLI untrusted;
// whatever the input, Parse must either return a buildable scenario or
// an error — never panic (a panic fails the fuzzer automatically).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"steady", "lrd", "flash", "migrate", "twin", "lossy", "reorder",
		"lossy:load=0.7,loss=0.1", "reorder:delay=10ms", "twin:load=0.9",
		"", ":", "steady:", "steady:load=2", "steady:delay=-1ns",
		"steady:load=1e309", "steady:load=NaN", "steady:load=0.5,load=0.6",
		"x:y=z", "steady:frobnicate=1", "steady:load=0.5,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		// Accepted specs must name a registry scenario and build.
		if !strings.Contains(strings.Join(Names(), " "), s.Name) {
			t.Fatalf("Parse(%q) returned unregistered scenario %q", in, s.Name)
		}
		if _, err := s.Build(1); err != nil {
			t.Fatalf("Parse(%q) accepted an unbuildable scenario: %v", in, err)
		}
	})
}
