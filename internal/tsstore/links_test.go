package tsstore_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tsstore"
)

// linkStore builds a store holding two link series next to one path
// series, with hop-00 pushed past its ring capacity.
func linkStore() *tsstore.Store {
	st := tsstore.New(tsstore.Config{Capacity: 4})
	st.Observe(sample("path-a", 0, 0, 4e6, 6e6))
	for r := 0; r < 6; r++ {
		st.ObserveLink("hop-00", r, time.Duration(r)*time.Second, time.Second, 0.5+0.05*float64(r), 10e6)
	}
	st.ObserveLink("core", 0, 0, time.Second, 0.8, 40e6)
	return st
}

// TestLinkSeries: the per-link ring mirrors the per-path one — sorted
// names, retained vs lifetime counts across eviction, chronological
// snapshots — and LinkPoint derives load and avail-bw from C and u.
func TestLinkSeries(t *testing.T) {
	st := linkStore()
	if got := st.Links(); len(got) != 2 || got[0] != "core" || got[1] != "hop-00" {
		t.Fatalf("Links() = %v, want sorted [core hop-00]", got)
	}
	if n, total := st.LinkLen("hop-00"), st.LinkTotal("hop-00"); n != 4 || total != 6 {
		t.Errorf("hop-00 retained %d / total %d, want 4 / 6 (ring wrapped)", n, total)
	}
	if n, total := st.LinkLen("ghost"), st.LinkTotal("ghost"); n != 0 || total != 0 {
		t.Errorf("unknown link reports %d retained / %d total, want zeros", n, total)
	}

	pts := st.LinkSnapshot("hop-00")
	if len(pts) != 4 {
		t.Fatalf("snapshot has %d windows, want 4", len(pts))
	}
	for i, p := range pts {
		if p.Round != i+2 {
			t.Errorf("snapshot[%d].Round = %d, want %d (oldest evicted first)", i, p.Round, i+2)
		}
	}
	if st.LinkSnapshot("ghost") != nil {
		t.Error("unknown link snapshot is non-nil")
	}

	last, ok := st.LinkLast("hop-00")
	if !ok || last.Round != 5 {
		t.Fatalf("LinkLast = %+v, %t; want round 5", last, ok)
	}
	// Round 5: u = 0.75 on C = 10 Mb/s.
	if load := last.Load(); load != 7.5e6 {
		t.Errorf("Load() = %v, want 7.5e6", load)
	}
	if a := last.AvailBw(); a != 2.5e6 {
		t.Errorf("AvailBw() = %v, want 2.5e6 (C·(1−u))", a)
	}
	if _, ok := st.LinkLast("ghost"); ok {
		t.Error("unknown link has a last window")
	}
}

// TestWriteLinkMRTG: the per-link table carries the capacity header and
// quantizes each window's carried load into paper-style buckets;
// unknown links render an empty (but well-formed) table.
func TestWriteLinkMRTG(t *testing.T) {
	st := linkStore()
	var sb strings.Builder
	if err := st.WriteLinkMRTG(&sb, "core", 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# link core: 1 windows, capacity 40.0 Mb/s") {
		t.Errorf("missing capacity header:\n%s", out)
	}
	// core: u = 0.8 on C = 40 Mb/s → 32 Mb/s carried → [30, 36) at the
	// default 6 Mb/s step.
	if !strings.Contains(out, "[    30,    36)") {
		t.Errorf("missing default-step bucket row:\n%s", out)
	}

	sb.Reset()
	if err := st.WriteLinkMRTG(&sb, "ghost", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# link ghost: 0 windows") {
		t.Errorf("unknown link table:\n%s", sb.String())
	}
}

// TestHandlerLinkMRTG drives the /mrtg?link= side of the scrape
// handler, including the ambiguity and unknown-link errors.
func TestHandlerLinkMRTG(t *testing.T) {
	srv := httptest.NewServer(linkStore().Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/mrtg?link=hop-00"); code != 200 || !strings.Contains(body, "# link hop-00: 4 windows") {
		t.Errorf("/mrtg?link → %d\n%s", code, body)
	}
	if code, body := get("/mrtg?link=core&step=12"); code != 200 || !strings.Contains(body, "12 Mb/s buckets") {
		t.Errorf("/mrtg?link&step → %d\n%s", code, body)
	}
	if code, body := get("/mrtg?path=path-a&link=core"); code != 400 || !strings.Contains(body, "pick one") {
		t.Errorf("/mrtg with both selectors → %d\n%s", code, body)
	}
	if code, _ := get("/mrtg?link=ghost"); code != 404 {
		t.Errorf("/mrtg unknown link → %d, want 404", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "links:") || !strings.Contains(body, "hop-00") {
		t.Errorf("/ misses the link inventory → %d\n%s", code, body)
	}
}
