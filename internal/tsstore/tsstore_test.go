package tsstore_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/tsstore"

	pathload "repro"
)

// sample builds one OK monitor sample for tests.
func sample(path string, round int, at time.Duration, lo, hi float64) pathload.Sample {
	return pathload.Sample{
		Path: path, Round: round, At: at, Wall: time.Unix(0, 0),
		Result: pathload.Result{Lo: lo, Hi: hi, Elapsed: 100 * time.Millisecond},
	}
}

// TestStoreIsSampleSink pins the wiring contract: a *Store must
// satisfy pathload.SampleSink so MonitorConfig{Store: ...} works.
func TestStoreIsSampleSink(t *testing.T) {
	var _ pathload.SampleSink = tsstore.New(tsstore.Config{})
}

// TestRingWraparound: a capacity-4 ring fed 10 samples retains exactly
// the last 4 in chronological order, while totals keep counting.
func TestRingWraparound(t *testing.T) {
	st := tsstore.New(tsstore.Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		st.Observe(sample("p", i, time.Duration(i)*time.Second, float64(i), float64(i)+2))
	}
	if got := st.Len("p"); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	total, errs := st.Totals("p")
	if total != 10 || errs != 0 {
		t.Fatalf("Totals = %d/%d, want 10/0", total, errs)
	}
	pts := st.Snapshot("p")
	for i, p := range pts {
		wantRound := 6 + i
		if p.Round != wantRound || p.At != time.Duration(wantRound)*time.Second {
			t.Errorf("point %d: round %d @%v, want round %d @%v", i, p.Round, p.At, wantRound, time.Duration(wantRound)*time.Second)
		}
	}
	// The all-time digest survives eviction: its quantiles cover all 10
	// mids (i+1 for i in 0..9), not just the retained 4.
	if got := st.Quantile("p", 0); got != 1 {
		t.Errorf("all-time q0 = %v, want 1 (evicted point)", got)
	}
	if got := st.Quantile("p", 1); got != 10 {
		t.Errorf("all-time q1 = %v, want 10", got)
	}
}

// TestRingExactFill: filling to exactly capacity loses nothing.
func TestRingExactFill(t *testing.T) {
	st := tsstore.New(tsstore.Config{Capacity: 3})
	for i := 0; i < 3; i++ {
		st.Observe(sample("p", i, time.Duration(i)*time.Second, 1e6, 2e6))
	}
	pts := st.Snapshot("p")
	if len(pts) != 3 || pts[0].Round != 0 || pts[2].Round != 2 {
		t.Fatalf("snapshot rounds %v, want [0 1 2]", rounds(pts))
	}
}

func rounds(pts []tsstore.Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.Round
	}
	return out
}

// TestQueryWindow: Query selects [from, to) on the At axis.
func TestQueryWindow(t *testing.T) {
	st := tsstore.New(tsstore.Config{})
	for i := 0; i < 5; i++ {
		st.Observe(sample("p", i, time.Duration(i)*time.Second, 1e6, 2e6))
	}
	got := st.Query("p", 1*time.Second, 3*time.Second)
	if len(got) != 2 || got[0].Round != 1 || got[1].Round != 2 {
		t.Fatalf("Query rounds %v, want [1 2]", rounds(got))
	}
	if got := st.Query("p", 10*time.Second, 20*time.Second); got != nil {
		t.Fatalf("out-of-range Query returned %d points", len(got))
	}
	if got := st.Query("nope", 0, time.Hour); got != nil {
		t.Fatalf("unknown-path Query returned %d points", len(got))
	}
}

// TestEmptyWindowAggregation: empty and all-error windows aggregate to
// a zero Aggregate whose Quantile is NaN — never a fake 0 b/s reading.
func TestEmptyWindowAggregation(t *testing.T) {
	st := tsstore.New(tsstore.Config{})
	if a := st.Window("ghost", 0, time.Hour); a.Count != 0 || a.Digest != nil {
		t.Fatalf("empty window: Count=%d Digest=%v", a.Count, a.Digest)
	}
	a := st.Window("ghost", 0, time.Hour)
	if !math.IsNaN(a.Quantile(0.5)) {
		t.Errorf("empty window quantile = %v, want NaN", a.Quantile(0.5))
	}

	// All-failed window: counted, but no bandwidth aggregates.
	st.Observe(pathload.Sample{Path: "p", Round: 0, Err: errors.New("probe lost")})
	st.Observe(pathload.Sample{Path: "p", Round: 1, At: time.Second, Err: errors.New("probe lost")})
	agg := st.Retained("p")
	if agg.Count != 2 || agg.Errors != 2 || agg.Digest != nil {
		t.Fatalf("all-error window: %+v", agg)
	}
	if agg.MinLo != 0 || agg.MaxHi != 0 || agg.MeanMid != 0 {
		t.Errorf("all-error window leaked bandwidth stats: %+v", agg)
	}
	if !math.IsNaN(st.Quantile("p", 0.5)) {
		t.Errorf("all-error path quantile = %v, want NaN", st.Quantile("p", 0.5))
	}
}

// TestAggregateWindow: the windowed stats match hand-computed values,
// including the two ρ flavors (per-point mean vs windowed).
func TestAggregateWindow(t *testing.T) {
	st := tsstore.New(tsstore.Config{})
	// Two points: [2,6] (mid 4, ρ=1) and [6,10] (mid 8, ρ=0.5), Mb/s.
	st.Observe(sample("p", 0, 0, 2e6, 6e6))
	st.Observe(sample("p", 1, time.Second, 6e6, 10e6))
	st.Observe(pathload.Sample{Path: "p", Round: 2, At: 2 * time.Second, Err: errors.New("lost")})

	a := st.Retained("p")
	if a.Count != 3 || a.Errors != 1 {
		t.Fatalf("Count/Errors = %d/%d, want 3/1", a.Count, a.Errors)
	}
	if a.MinLo != 2e6 || a.MaxHi != 10e6 {
		t.Errorf("MinLo/MaxHi = %v/%v, want 2e6/10e6", a.MinLo, a.MaxHi)
	}
	if a.MeanMid != 6e6 {
		t.Errorf("MeanMid = %v, want 6e6", a.MeanMid)
	}
	if a.MeanRelVar != 0.75 {
		t.Errorf("MeanRelVar = %v, want 0.75", a.MeanRelVar)
	}
	// Windowed ρ: (10−2)/((10+2)/2) = 8/6.
	if want := 8.0 / 6.0; math.Abs(a.RelVar-want) > 1e-12 {
		t.Errorf("RelVar = %v, want %v", a.RelVar, want)
	}
	if a.First != 0 || a.Last != time.Second {
		t.Errorf("First/Last = %v/%v, want 0/1s", a.First, a.Last)
	}
	if got := a.Quantile(0.5); got != 6e6 {
		t.Errorf("window median = %v, want 6e6", got)
	}
}

// TestObserveConcurrent: many goroutines feeding distinct and shared
// paths must not lose samples (run under -race in CI).
func TestObserveConcurrent(t *testing.T) {
	st := tsstore.New(tsstore.Config{Capacity: 64})
	const goroutines, each = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				st.Observe(sample(fmt.Sprintf("own-%d", g), i, time.Duration(i)*time.Millisecond, 1e6, 2e6))
				st.Observe(sample("shared", i, time.Duration(i)*time.Millisecond, 1e6, 2e6))
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if total, _ := st.Totals(fmt.Sprintf("own-%d", g)); total != each {
			t.Errorf("own-%d total = %d, want %d", g, total, each)
		}
	}
	if total, _ := st.Totals("shared"); total != goroutines*each {
		t.Errorf("shared total = %d, want %d", total, goroutines*each)
	}
	if got := len(st.Paths()); got != goroutines+1 {
		t.Errorf("Paths() has %d entries, want %d", got, goroutines+1)
	}
}

// TestNewRejectsNegatives: a negative capacity must not silently build
// a store that remembers nothing.
func TestNewRejectsNegatives(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with negative capacity did not panic")
		}
	}()
	tsstore.New(tsstore.Config{Capacity: -1})
}

// BenchmarkStoreObserve measures the monitor-facing ingest path: one
// locked ring push plus a digest insert.
func BenchmarkStoreObserve(b *testing.B) {
	st := tsstore.New(tsstore.Config{})
	s := sample("bench", 0, 0, 4e6, 6e6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Round = i
		s.At = time.Duration(i) * time.Millisecond
		s.Result.Lo = 4e6 + float64(i%100)*1e3
		s.Result.Hi = 6e6 + float64(i%100)*1e3
		st.Observe(s)
	}
}

// BenchmarkStoreObserveParallel is the fleet-shaped version: many
// session goroutines feeding distinct paths through one store lock.
func BenchmarkStoreObserveParallel(b *testing.B) {
	st := tsstore.New(tsstore.Config{})
	var id atomic.Int32
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		path := fmt.Sprintf("path-%02d", id.Add(1))
		s := sample(path, 0, 0, 4e6, 6e6)
		i := 0
		for pb.Next() {
			s.Round = i
			s.At = time.Duration(i) * time.Millisecond
			st.Observe(s)
			i++
		}
	})
}

// TestRelVarFeedbackQuery pins the scheduler feedback edge: the
// windowed ρ over the trailing window of path-local time, implementing
// schedule.VarSource.
func TestRelVarFeedbackQuery(t *testing.T) {
	var _ schedule.VarSource = tsstore.New(tsstore.Config{})

	st := tsstore.New(tsstore.Config{})
	if _, ok := st.RelVar("ghost", 0); ok {
		t.Error("unknown path answered a ρ query")
	}

	// A volatile early history, then a quiet recent stretch: the full
	// series has a wide envelope, the trailing window a narrow one.
	st.Observe(sample("p", 0, 0, 2e6, 12e6))
	st.Observe(sample("p", 1, 1*time.Second, 4e6, 10e6))
	st.Observe(sample("p", 2, 10*time.Second, 6.8e6, 7.0e6))
	st.Observe(sample("p", 3, 11*time.Second, 6.9e6, 7.3e6))

	// Whole series: [2, 12] Mb/s around a 7 Mb/s center → ρ = 10/7.
	rho, ok := st.RelVar("p", 0)
	if !ok || math.Abs(rho-10.0/7.0) > 1e-9 {
		t.Errorf("full-series ρ = %v ok %v, want 10/7", rho, ok)
	}
	// Trailing 2s (anchored at the last point's At = 11s): only the two
	// quiet points → [6.8, 7.3] around 7.05 → ρ = 0.5/7.05.
	rho, ok = st.RelVar("p", 2*time.Second)
	if !ok || math.Abs(rho-0.5/7.05) > 1e-9 {
		t.Errorf("trailing ρ = %v ok %v, want 0.5/7.05", rho, ok)
	}

	// Error rounds carry no range: a window holding only failures has
	// no feedback.
	st.Observe(pathload.Sample{Path: "q", Round: 0, At: 0, Err: errors.New("down")})
	if _, ok := st.RelVar("q", 0); ok {
		t.Error("all-error series answered a ρ query")
	}
	// But errors inside a mixed window are skipped, not fatal.
	st.Observe(sample("q", 1, time.Second, 5e6, 5e6))
	rho, ok = st.RelVar("q", 0)
	if !ok || rho != 0 {
		t.Errorf("degenerate one-point window: ρ = %v ok %v, want 0 true", rho, ok)
	}
}

// TestPointBitsRetained: the probe-load cost of every round — failed
// ones included — survives into the stored series.
func TestPointBitsRetained(t *testing.T) {
	st := tsstore.New(tsstore.Config{})
	s := sample("p", 0, 0, 4e6, 6e6)
	s.Result.Bits = 123456
	st.Observe(s)
	st.Observe(pathload.Sample{
		Path: "p", Round: 1, At: time.Second,
		Result: pathload.Result{Elapsed: time.Millisecond, Bits: 789},
		Err:    errors.New("mid-round failure"),
	})
	pts := st.Snapshot("p")
	if len(pts) != 2 || pts[0].Bits != 123456 || pts[1].Bits != 789 {
		t.Fatalf("stored Bits = %v, want [123456 789]", []float64{pts[0].Bits, pts[1].Bits})
	}
}
