package tsstore

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// A Contribution is one agent's latest view of one path's series: the
// retained points, the all-time counters, and the eviction-proof
// quantile digest, stamped with an agent-local monotone sequence
// number. It is what `pathload -agent` pushes to a coordinator.
type Contribution struct {
	// Seq orders a (agent, path) stream of pushes: a Federation applies
	// a contribution only when its Seq exceeds the one it holds, so
	// re-delivered or reordered pushes are no-ops instead of
	// double-counts. Agents bump it on every push.
	Seq uint64
	// Total and Errors mirror Store.Totals: samples ever observed
	// (retained + evicted) and how many failed.
	Total, Errors uint64
	// Points is the agent's retained window, chronological.
	Points []Point
	// Digest is the all-time digest of OK mid-range estimates.
	Digest *Digest
}

// clone deep-copies the contribution so the Federation owns its state
// outright (pushers may reuse their buffers).
func (c Contribution) clone() Contribution {
	c.Points = append([]Point(nil), c.Points...)
	if c.Digest != nil {
		c.Digest = c.Digest.clone()
	}
	return c
}

// A Federation merges per-agent Contributions into one global store —
// the coordinator's side of digest federation. Its merge discipline is
// what makes multi-agent retention trustworthy:
//
//   - Replace, don't accumulate: the Federation keeps only the latest
//     contribution per (path, agent), so an agent re-pushing its state
//     (same or stale Seq) is a no-op — redelivery-idempotent by
//     construction, which a lossy control channel requires.
//   - Canonical merge order: snapshots merge contributions in sorted
//     (path, agent) order, never arrival order. Digest merges are only
//     exactly order-invariant while under the centroid budget, so the
//     canonical order is what extends byte-identical snapshots to
//     arbitrarily shuffled delivery schedules (pinned by the federation
//     property tests).
//
// All methods are safe for concurrent use.
type Federation struct {
	cfg Config

	mu       sync.RWMutex
	contribs map[string]map[string]Contribution // path → agent → latest
}

// NewFederation creates an empty federation whose materialized stores
// use cfg (ring capacity, digest budget). It panics like New on
// negative values.
func NewFederation(cfg Config) *Federation {
	if cfg.Capacity < 0 || cfg.DigestSize < 0 {
		New(cfg) // reuse the panic message
	}
	return &Federation{cfg: cfg, contribs: map[string]map[string]Contribution{}}
}

// Push offers an agent's contribution for a path. It is applied only
// when c.Seq is newer than what the federation already holds for that
// (path, agent); applied reports which. Pushing is cheap — merging is
// deferred to Snapshot.
func (f *Federation) Push(agent, path string, c Contribution) (applied bool) {
	if agent == "" || path == "" {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	byAgent := f.contribs[path]
	if byAgent == nil {
		byAgent = map[string]Contribution{}
		f.contribs[path] = byAgent
	}
	if prev, ok := byAgent[agent]; ok && c.Seq <= prev.Seq {
		return false
	}
	byAgent[agent] = c.clone()
	return true
}

// Contribution returns the latest contribution held for (agent, path);
// ok is false when none has been applied.
func (f *Federation) Contribution(agent, path string) (c Contribution, ok bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	c, ok = f.contribs[path][agent]
	if ok {
		c = c.clone()
	}
	return c, ok
}

// Paths returns the federated path identifiers, sorted.
func (f *Federation) Paths() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.contribs))
	for p := range f.contribs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Agents returns the agents contributing to a path, sorted.
func (f *Federation) Agents(path string) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.contribs[path]))
	for a := range f.contribs[path] {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Snapshot materializes the federation into a Store: per path, the
// union of every agent's points (agents in sorted order, each agent's
// window chronological, ring-evicted to the configured capacity),
// summed totals, and the canonical-order merge of the per-agent
// digests. The result serves the whole existing scrape surface
// (/metrics, /series, /mrtg) unchanged — federation happens below the
// export layer, not in it.
//
// The materialization is a pure function of the held contributions, so
// two federations holding the same state render byte-identical
// snapshots regardless of push arrival order.
func (f *Federation) Snapshot() *Store {
	f.mu.RLock()
	defer f.mu.RUnlock()
	st := New(f.cfg)
	for path, byAgent := range f.contribs {
		agents := make([]string, 0, len(byAgent))
		for a := range byAgent {
			agents = append(agents, a)
		}
		sort.Strings(agents)
		se := &series{pts: make([]Point, st.cfg.Capacity), digest: NewDigest(st.cfg.DigestSize)}
		for _, a := range agents {
			c := byAgent[a]
			for _, p := range c.Points {
				if se.n < len(se.pts) {
					se.pts[(se.head+se.n)%len(se.pts)] = p
					se.n++
				} else {
					se.pts[se.head] = p
					se.head = (se.head + 1) % len(se.pts)
				}
			}
			se.total += c.Total
			se.errs += c.Errors
			se.digest.Merge(c.Digest)
		}
		st.mem.series[path] = se
	}
	return st
}

// Handler serves the federated store over HTTP with the same endpoints
// as Store.Handler (/, /metrics, /series, /mrtg), materializing a
// fresh snapshot per request so scrapes always see the latest merged
// state.
func (f *Federation) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.Snapshot().Handler().ServeHTTP(w, r)
	})
}

// Resume derives the pathload.PathState-shaped counters — next round
// number and path-local clock offset — from a store's last retained
// point for the path. It is the agent-side helper for lease handoffs
// within one process; zero values mean "fresh path".
func Resume(st *Store, path string) (round int, at time.Duration) {
	if p, ok := st.Last(path); ok {
		return p.Round + 1, p.At + p.Span
	}
	return 0, 0
}
