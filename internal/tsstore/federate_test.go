package tsstore

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	pathload "repro"
)

// fedContribution builds a deterministic contribution for (agent,
// path): rounds of points with distinct values and a digest over their
// mid-range estimates.
func fedContribution(agent, path string, rounds int, seq uint64) Contribution {
	base := float64(len(agent)*1000+len(path)) * 1e4
	c := Contribution{Seq: seq, Digest: NewDigest(16)}
	at := time.Duration(0)
	for r := 0; r < rounds; r++ {
		lo := base + float64(r)*1e5
		hi := lo + 5e5
		c.Points = append(c.Points, Point{
			Round: r, At: at, Span: time.Second, Lo: lo, Hi: hi, Bits: 1e4,
		})
		c.Digest.Add((lo + hi) / 2)
		at += 2 * time.Second
	}
	c.Total = uint64(rounds) + 3 // some evicted history
	c.Errors = 1
	return c
}

// renderFed renders the federation's full deterministic scrape surface
// (/series + /metrics) to bytes — the equality currency of these tests.
func renderFed(t *testing.T, f *Federation) string {
	t.Helper()
	h := f.Handler()
	var out string
	for _, ep := range []string{"/series", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", ep, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", ep, rec.Code)
		}
		out += rec.Body.String()
	}
	return out
}

// TestFederationOrderInvariant: pushing the same contributions in any
// delivery order must render byte-identical snapshots — the property
// that makes a fleet of independently-pacing agents trustworthy.
func TestFederationOrderInvariant(t *testing.T) {
	type push struct {
		agent, path string
		c           Contribution
	}
	var pushes []push
	for _, agent := range []string{"a1", "a2", "agent-long"} {
		for _, path := range []string{"p00", "p01", "sim:0.4"} {
			pushes = append(pushes, push{agent, path, fedContribution(agent, path, 3+len(agent)%3, 7)})
		}
	}

	var want string
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		f := NewFederation(Config{Capacity: 16, DigestSize: 32})
		order := rng.Perm(len(pushes))
		for _, i := range order {
			if !f.Push(pushes[i].agent, pushes[i].path, pushes[i].c) {
				t.Fatalf("trial %d: fresh push (%s, %s) not applied", trial, pushes[i].agent, pushes[i].path)
			}
		}
		got := renderFed(t, f)
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trial %d: shuffled delivery order changed the snapshot\norder: %v", trial, order)
		}
	}
	if want == "" {
		t.Fatalf("rendered snapshot is empty")
	}
}

// TestFederationIdempotentRedelivery: re-pushing a contribution with
// the same (or a stale) Seq is a no-op — same bytes out, applied=false
// — so a retrying agent can never double-count its series.
func TestFederationIdempotentRedelivery(t *testing.T) {
	f := NewFederation(Config{Capacity: 16, DigestSize: 32})
	c3 := fedContribution("a1", "p00", 3, 3)
	c5 := fedContribution("a1", "p00", 5, 5)

	if !f.Push("a1", "p00", c3) {
		t.Fatalf("first push not applied")
	}
	before := renderFed(t, f)
	for i := 0; i < 3; i++ {
		if f.Push("a1", "p00", c3) {
			t.Fatalf("redelivery %d of seq 3 applied", i)
		}
	}
	if got := renderFed(t, f); got != before {
		t.Fatalf("redelivery changed the snapshot")
	}

	// A genuinely newer contribution replaces — never accumulates with —
	// the old one.
	if !f.Push("a1", "p00", c5) {
		t.Fatalf("newer push not applied")
	}
	after := renderFed(t, f)
	if after == before {
		t.Fatalf("newer contribution did not change the snapshot")
	}
	if f.Push("a1", "p00", c3) {
		t.Fatalf("stale seq 3 applied over seq 5")
	}
	if got := renderFed(t, f); got != after {
		t.Fatalf("stale redelivery changed the snapshot")
	}

	// The replacement is total: totals reflect c5 alone, not c3+c5.
	st := f.Snapshot()
	total, errs := st.Totals("p00")
	if total != c5.Total || errs != c5.Errors {
		t.Fatalf("Totals = (%d, %d), want (%d, %d) — accumulated instead of replaced", total, errs, c5.Total, c5.Errors)
	}
}

// TestFederationMergesAcrossAgents: two agents contributing to one
// path sum their totals and union their points and digests.
func TestFederationMergesAcrossAgents(t *testing.T) {
	f := NewFederation(Config{Capacity: 32, DigestSize: 32})
	c1 := fedContribution("a1", "p00", 4, 1)
	c2 := fedContribution("a2", "p00", 2, 9)
	f.Push("a1", "p00", c1)
	f.Push("a2", "p00", c2)

	st := f.Snapshot()
	total, errs := st.Totals("p00")
	if total != c1.Total+c2.Total || errs != c1.Errors+c2.Errors {
		t.Fatalf("Totals = (%d, %d), want summed (%d, %d)", total, errs, c1.Total+c2.Total, c1.Errors+c2.Errors)
	}
	if n := st.Len("p00"); n != len(c1.Points)+len(c2.Points) {
		t.Fatalf("Len = %d, want %d", n, len(c1.Points)+len(c2.Points))
	}
	d := st.DigestSnapshot("p00")
	if d == nil || d.Count() != c1.Digest.Count()+c2.Digest.Count() {
		t.Fatalf("merged digest count = %v, want %d", d, c1.Digest.Count()+c2.Digest.Count())
	}
	if got := f.Agents("p00"); len(got) != 2 || got[0] != "a1" || got[1] != "a2" {
		t.Fatalf("Agents = %v", got)
	}
}

// TestFederationIsolation: the federation must own deep copies — a
// pusher mutating its buffers after Push cannot corrupt held state.
func TestFederationIsolation(t *testing.T) {
	f := NewFederation(Config{})
	c := fedContribution("a1", "p00", 2, 1)
	f.Push("a1", "p00", c)
	before := renderFed(t, f)
	c.Points[0].Lo = -1e9
	c.Digest.Add(-1e9)
	if got := renderFed(t, f); got != before {
		t.Fatalf("pusher mutation leaked into the federation")
	}
	// And the same on the way out.
	held, ok := f.Contribution("a1", "p00")
	if !ok {
		t.Fatalf("Contribution missing")
	}
	held.Points[0].Hi = -2e9
	held.Digest.Add(-2e9)
	if got := renderFed(t, f); got != before {
		t.Fatalf("reader mutation leaked into the federation")
	}
}

// TestResume: the lease-handoff helper continues round/clock counters
// from the last retained point, and starts fresh on unknown paths.
func TestResume(t *testing.T) {
	st := New(Config{})
	if r, at := Resume(st, "p00"); r != 0 || at != 0 {
		t.Fatalf("fresh Resume = (%d, %v), want (0, 0)", r, at)
	}
	st.Observe(pathload.Sample{
		Path: "p00", Round: 4, At: 10 * time.Second,
		Result: pathload.Result{Lo: 1e6, Hi: 2e6, Elapsed: 2 * time.Second},
	})
	if r, at := Resume(st, "p00"); r != 5 || at != 12*time.Second {
		t.Fatalf("Resume = (%d, %v), want (5, 12s)", r, at)
	}
}
