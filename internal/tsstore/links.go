package tsstore

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/mrtg"
)

// A LinkPoint is one windowed utilization observation of a shared
// backbone link, as produced by mesh.LinkRecorder at fleet round
// boundaries: the per-*link* counterpart of the per-path Point. The
// link series answer the dashboard question the path series cannot —
// which common hop a fleet is saturating.
type LinkPoint struct {
	// Round is the fleet round boundary that closed the window.
	Round int
	// At is the window's start, virtual time since simulation start;
	// Span its length.
	At, Span time.Duration
	// Util is the link's mean utilization over the window.
	Util float64
	// Capacity is the link rate in bits/s.
	Capacity float64
}

// Load returns the window's mean carried load in bits/s.
func (p LinkPoint) Load() float64 { return p.Util * p.Capacity }

// AvailBw returns the window's spare capacity C·(1−u) in bits/s — the
// per-hop term of the paper's A = min over the route of C_l·(1−u_l).
func (p LinkPoint) AvailBw() float64 { return p.Capacity * (1 - p.Util) }

// linkSeries is one link's retained history, a ring like the per-path
// series but without digests: link windows are already aggregates.
type linkSeries struct {
	pts   []LinkPoint
	head  int
	n     int
	total uint64
}

// insert is the ring-only half of push, as on the per-path series.
func (s *linkSeries) insert(p LinkPoint) {
	if s.n < len(s.pts) {
		s.pts[(s.head+s.n)%len(s.pts)] = p
		s.n++
	} else {
		s.pts[s.head] = p
		s.head = (s.head + 1) % len(s.pts)
	}
}

func (s *linkSeries) push(p LinkPoint) {
	s.insert(p)
	s.total++
}

func (s *linkSeries) at(i int) LinkPoint { return s.pts[(s.head+i)%len(s.pts)] }

// ObserveLink records one windowed link utilization observation. It
// implements mesh.LinkSink, so a Store can be handed directly to
// mesh.(*Mesh).NewLinkRecorder; safe for concurrent use with every
// other store method.
func (st *Store) ObserveLink(link string, round int, at, span time.Duration, util, capacity float64) {
	p := LinkPoint{Round: round, At: at, Span: span, Util: util, Capacity: capacity}
	st.mem.AppendLink(link, p)
	if st.dur != nil {
		st.noteDurErr(st.dur.AppendLink(link, p))
	}
}

// Links returns the known link names, sorted, so every rendering of
// the link series is deterministic.
func (st *Store) Links() []string {
	st.mem.mu.RLock()
	defer st.mem.mu.RUnlock()
	names := make([]string, 0, len(st.mem.links))
	for name := range st.mem.links {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LinkLen returns the number of retained windows for link (0 for
// unknown links).
func (st *Store) LinkLen(link string) int {
	st.mem.mu.RLock()
	defer st.mem.mu.RUnlock()
	if se := st.mem.links[link]; se != nil {
		return se.n
	}
	return 0
}

// LinkTotal returns how many windows the link has ever delivered
// (retained + evicted).
func (st *Store) LinkTotal(link string) uint64 {
	st.mem.mu.RLock()
	defer st.mem.mu.RUnlock()
	if se := st.mem.links[link]; se != nil {
		return se.total
	}
	return 0
}

// LinkSnapshot copies the link's retained windows in chronological
// order (nil for unknown links).
func (st *Store) LinkSnapshot(link string) []LinkPoint {
	st.mem.mu.RLock()
	defer st.mem.mu.RUnlock()
	se := st.mem.links[link]
	if se == nil {
		return nil
	}
	out := make([]LinkPoint, se.n)
	for i := range out {
		out[i] = se.at(i)
	}
	return out
}

// LinkLast returns the link's most recent retained window; ok is false
// for unknown or empty links.
func (st *Store) LinkLast(link string) (LinkPoint, bool) {
	st.mem.mu.RLock()
	defer st.mem.mu.RUnlock()
	se := st.mem.links[link]
	if se == nil || se.n == 0 {
		return LinkPoint{}, false
	}
	return se.at(se.n - 1), true
}

// WriteLinkMRTG renders one link's retained utilization series in the
// shape of the paper's MRTG verification tables (§V-B), like WriteMRTG
// but for the carried load of one shared hop: one row per fleet-round
// window, the mean carried load quantized to step-sized buckets. step
// is in bits/s; step <= 0 selects the paper's 6 Mb/s. Unknown links
// render an empty table.
func (st *Store) WriteLinkMRTG(w io.Writer, link string, step float64) error {
	if step <= 0 {
		step = MRTGStep
	}
	pts := st.LinkSnapshot(link)
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	capBps := 0.0
	if len(pts) > 0 {
		capBps = pts[len(pts)-1].Capacity
	}
	emit("# link %s: %d windows, capacity %.1f Mb/s, %.0f Mb/s buckets\n", link, len(pts), capBps/1e6, step/1e6)
	emit("%-6s %12s %6s %12s %12s %16s\n", "round", "at", "util", "load (Mb/s)", "avail (Mb/s)", "bucket (Mb/s)")
	for _, p := range pts {
		lo, hi := mrtg.Quantize(p.Load(), step)
		emit("%-6d %12v %5.1f%% %12.2f %12.2f [%6.0f,%6.0f)\n",
			p.Round, p.At, p.Util*100, p.Load()/1e6, p.AvailBw()/1e6, lo/1e6, hi/1e6)
	}
	return err
}
