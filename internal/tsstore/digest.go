package tsstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// DefaultDigestSize is the default centroid budget of a Digest. Sixty-
// four centroids summarize the avail-bw distributions of §VI (which are
// smooth and unimodal at fixed load) to well under a percent of range
// while keeping a per-path series' memory footprint constant.
const DefaultDigestSize = 64

// A centroid is one compressed cluster of samples: their mean value and
// how many samples it stands for.
type centroid struct {
	mean   float64
	weight uint64
}

// A Digest is a small fixed-size quantile summary of a stream of
// values, in the spirit of a t-digest but with a deterministic
// compression rule: when the centroid budget is exceeded, the two
// adjacent centroids with the smallest mean gap merge (ties break
// toward the lower index). Determinism matters here because the
// monitor's stored series — and therefore the scrape output built from
// them — are pinned byte-for-byte by tests and by the reproducibility
// contract of the simulator (README "deterministic fleet" invariant).
//
// A Digest is not safe for concurrent use; the Store serializes access
// to the digests it owns.
type Digest struct {
	size int
	cs   []centroid // sorted by mean, ascending
	n    uint64
}

// NewDigest creates a digest that retains at most size centroids;
// size <= 0 selects DefaultDigestSize.
func NewDigest(size int) *Digest {
	if size <= 0 {
		size = DefaultDigestSize
	}
	return &Digest{size: size}
}

// Count returns the number of values added so far.
func (d *Digest) Count() uint64 { return d.n }

// Add records one value.
func (d *Digest) Add(x float64) { d.AddWeighted(x, 1) }

// AddWeighted records a value that stands for w samples. w == 0 is a
// no-op; NaN values panic (a NaN avail-bw is a caller bug and would
// poison every later quantile).
func (d *Digest) AddWeighted(x float64, w uint64) {
	if w == 0 {
		return
	}
	if math.IsNaN(x) {
		panic("tsstore: NaN added to digest")
	}
	i := sort.Search(len(d.cs), func(i int) bool { return d.cs[i].mean >= x })
	if i < len(d.cs) && d.cs[i].mean == x {
		// Exact hit: fold into the existing centroid, no compression
		// needed and no precision lost.
		d.cs[i].weight += w
		d.n += w
		return
	}
	d.cs = append(d.cs, centroid{})
	copy(d.cs[i+1:], d.cs[i:])
	d.cs[i] = centroid{mean: x, weight: w}
	d.n += w
	d.compress()
}

// Merge folds o's centroids into d. o may be nil or empty; merging a
// digest into itself is allowed and doubles every weight. The
// receiver's centroid budget wins when the two differ.
func (d *Digest) Merge(o *Digest) {
	if o == nil || len(o.cs) == 0 {
		return
	}
	// Snapshot first: o may alias d (self-merge), and AddWeighted
	// mutates d.cs while we iterate.
	cs := append([]centroid(nil), o.cs...)
	for _, c := range cs {
		d.AddWeighted(c.mean, c.weight)
	}
}

// compress merges adjacent centroids until the budget holds. The pair
// with the smallest mean gap merges first, so resolution is lost where
// the distribution is densest and the tails stay sharp the longest.
func (d *Digest) compress() {
	for len(d.cs) > d.size {
		best, bestGap := 0, math.Inf(1)
		for i := 0; i+1 < len(d.cs); i++ {
			if gap := d.cs[i+1].mean - d.cs[i].mean; gap < bestGap {
				best, bestGap = i, gap
			}
		}
		a, b := d.cs[best], d.cs[best+1]
		w := a.weight + b.weight
		d.cs[best] = centroid{
			mean:   (a.mean*float64(a.weight) + b.mean*float64(b.weight)) / float64(w),
			weight: w,
		}
		d.cs = append(d.cs[:best+1], d.cs[best+2:]...)
	}
}

// Quantile returns an estimate of the q-th quantile (q in [0, 1]) by
// linear interpolation between centroid midpoints. It returns NaN for
// an empty digest and panics on q outside [0, 1]. While the digest has
// not yet compressed (Count() distinct values <= size) the estimates
// are exact order statistics under midpoint interpolation.
func (d *Digest) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("tsstore: quantile %v out of range [0,1]", q))
	}
	if d.n == 0 {
		return math.NaN()
	}
	target := q * float64(d.n)
	var cum float64
	prevMid, prevMean := math.Inf(-1), 0.0
	for i, c := range d.cs {
		mid := cum + float64(c.weight)/2
		if target <= mid {
			if i == 0 || prevMid == math.Inf(-1) {
				return c.mean
			}
			frac := (target - prevMid) / (mid - prevMid)
			return prevMean + frac*(c.mean-prevMean)
		}
		cum += float64(c.weight)
		prevMid, prevMean = mid, c.mean
	}
	return d.cs[len(d.cs)-1].mean
}

// clone returns an independent deep copy of the digest.
func (d *Digest) clone() *Digest {
	return &Digest{size: d.size, n: d.n, cs: append([]centroid(nil), d.cs...)}
}

// MarshalBinary encodes the digest deterministically (big-endian:
// centroid budget, total count, then mean/weight pairs in ascending
// mean order). It is the wire and archive form of a digest: agents
// push it to the coordinator, which rebuilds it with UnmarshalDigest.
func (d *Digest) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 16+16*len(d.cs))
	buf = binary.BigEndian.AppendUint32(buf, uint32(d.size))
	buf = binary.BigEndian.AppendUint64(buf, d.n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.cs)))
	for _, c := range d.cs {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.mean))
		buf = binary.BigEndian.AppendUint64(buf, c.weight)
	}
	return buf, nil
}

// UnmarshalDigest decodes a MarshalBinary digest, validating the
// structural invariants (budget respected, means ascending and not NaN,
// weights positive, count consistent) so a corrupt or adversarial blob
// cannot poison a federated store.
func UnmarshalDigest(data []byte) (*Digest, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("tsstore: digest blob %d bytes, want >= 16", len(data))
	}
	size := int(binary.BigEndian.Uint32(data[0:]))
	n := binary.BigEndian.Uint64(data[4:])
	k := int(binary.BigEndian.Uint32(data[12:]))
	if size <= 0 || k < 0 || k > size {
		return nil, fmt.Errorf("tsstore: digest holds %d centroids against budget %d", k, size)
	}
	if len(data) != 16+16*k {
		return nil, fmt.Errorf("tsstore: digest blob %d bytes, want %d for %d centroids", len(data), 16+16*k, k)
	}
	d := &Digest{size: size, n: n, cs: make([]centroid, k)}
	var sum uint64
	for i := range d.cs {
		mean := math.Float64frombits(binary.BigEndian.Uint64(data[16+16*i:]))
		weight := binary.BigEndian.Uint64(data[24+16*i:])
		if math.IsNaN(mean) {
			return nil, fmt.Errorf("tsstore: digest centroid %d mean is NaN", i)
		}
		if weight == 0 {
			return nil, fmt.Errorf("tsstore: digest centroid %d has zero weight", i)
		}
		if i > 0 && mean < d.cs[i-1].mean {
			return nil, fmt.Errorf("tsstore: digest centroid means not ascending at %d", i)
		}
		d.cs[i] = centroid{mean: mean, weight: weight}
		sum += weight
	}
	if sum != n {
		return nil, fmt.Errorf("tsstore: digest count %d != centroid weight sum %d", n, sum)
	}
	return d, nil
}

// Min and Max return the extreme centroid means — after compression
// these are the means of the outermost clusters, which bound the true
// extremes from inside. They return NaN for an empty digest.
func (d *Digest) Min() float64 {
	if len(d.cs) == 0 {
		return math.NaN()
	}
	return d.cs[0].mean
}

// Max is the upper counterpart of Min.
func (d *Digest) Max() float64 {
	if len(d.cs) == 0 {
		return math.NaN()
	}
	return d.cs[len(d.cs)-1].mean
}
