package tsstore_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tsstore"

	pathload "repro"
)

// exportStore builds a small two-path store with one failed round.
func exportStore() *tsstore.Store {
	st := tsstore.New(tsstore.Config{Capacity: 8})
	for i := 0; i < 3; i++ {
		st.Observe(sample("path-a", i, time.Duration(i)*time.Second, 4e6+float64(i)*1e5, 6e6+float64(i)*1e5))
	}
	st.Observe(sample("path-b", 0, 0, 20e6, 22e6))
	st.Observe(pathload.Sample{Path: "path-b", Round: 1, At: time.Second, Err: io.ErrUnexpectedEOF})
	return st
}

// TestWritePrometheus: the exposition carries every family, labels the
// paths, and is byte-identical across renders (scrape determinism).
func TestWritePrometheus(t *testing.T) {
	st := exportStore()
	var a, b strings.Builder
	if err := st.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same store differ")
	}
	out := a.String()
	for _, want := range []string{
		`pathload_availbw_samples_total{path="path-a"} 3`,
		`pathload_availbw_samples_total{path="path-b"} 2`,
		`pathload_availbw_errors_total{path="path-b"} 1`,
		`pathload_availbw_retained_points{path="path-a"} 3`,
		`pathload_availbw_lo_bps{path="path-b"} 2e+07`,
		`pathload_availbw_quantile_bps{path="path-a",quantile="0.5"}`,
		"# TYPE pathload_availbw_window_relvar gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// path-a sorts before path-b within every family.
	if strings.Index(out, `samples_total{path="path-a"}`) > strings.Index(out, `samples_total{path="path-b"}`) {
		t.Error("paths not sorted in exposition")
	}
}

// TestWriteMRTG: rows quantize mids into paper-style buckets; error
// rounds render as gaps.
func TestWriteMRTG(t *testing.T) {
	st := exportStore()
	var sb strings.Builder
	if err := st.WriteMRTG(&sb, "path-b", 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// path-b round 0 mid is 21 Mb/s → [18, 24) with the 6 Mb/s default.
	if !strings.Contains(out, "[    18,    24)") {
		t.Errorf("missing 6 Mb/s bucket row:\n%s", out)
	}
	if !strings.Contains(out, "error") {
		t.Errorf("failed round not rendered:\n%s", out)
	}
}

// TestHandler drives every endpoint through httptest.
func TestHandler(t *testing.T) {
	srv := httptest.NewServer(exportStore().Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "path-a") {
		t.Errorf("/ → %d\n%s", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "pathload_availbw_samples_total") {
		t.Errorf("/metrics → %d\n%s", code, body)
	}
	if code, body := get("/mrtg?path=path-a"); code != 200 || !strings.Contains(body, "path-a: 3 points") {
		t.Errorf("/mrtg → %d\n%s", code, body)
	}
	if code, _ := get("/mrtg"); code != 400 {
		t.Errorf("/mrtg without path → %d, want 400", code)
	}
	if code, _ := get("/mrtg?path=ghost"); code != 404 {
		t.Errorf("/mrtg unknown path → %d, want 404", code)
	}
	if code, _ := get("/mrtg?path=path-a&step=-1"); code != 400 {
		t.Errorf("/mrtg bad step → %d, want 400", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope → %d, want 404", code)
	}

	code, body := get("/series?path=path-b")
	if code != 200 {
		t.Fatalf("/series → %d\n%s", code, body)
	}
	var series []struct {
		Path      string `json:"path"`
		Samples   uint64 `json:"samples_total"`
		Errors    uint64 `json:"errors_total"`
		Aggregate struct {
			Count  int `json:"count"`
			Errors int `json:"errors"`
		} `json:"aggregate"`
		Points []struct {
			Round int    `json:"round"`
			Err   string `json:"error"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("bad /series JSON: %v\n%s", err, body)
	}
	if len(series) != 1 || series[0].Path != "path-b" || series[0].Samples != 2 || series[0].Errors != 1 {
		t.Fatalf("/series content: %+v", series)
	}
	if len(series[0].Points) != 2 || series[0].Points[1].Err == "" {
		t.Fatalf("/series points: %+v", series[0].Points)
	}
	if code, _ := get("/series?path=ghost"); code != 404 {
		t.Errorf("/series unknown path → %d, want 404", code)
	}
}
